// Observation hooks: traffic accounting and switching-energy accounting.
//
// The NoC layer emits events through these interfaces; the stats and power
// layers implement them. Hooks are nullable so bare simulations pay nothing.
#pragma once

#include <cstdint>

#include "util/units.h"
#include "noc/flit.h"
#include "noc/packet.h"

namespace specnoc::noc {

class Node;

/// What kind of switch a node models; used to look up its characteristics
/// (area, latency, energy) and to label energy events.
enum class NodeKind : std::uint8_t {
  kSource,
  kSink,
  kFanoutBaseline,
  kFanoutSpeculative,
  kFanoutNonSpeculative,
  kFanoutOptSpeculative,
  kFanoutOptNonSpeculative,
  kFanin,
  kMeshRouter,  ///< 5-port XY router of the 2D-mesh comparison substrate
  kMeshRouterSpec,  ///< speculative mesh router (local speculation on mesh)
};

const char* to_string(NodeKind kind);

/// A switching operation inside a node. Energy cost = node base energy x an
/// op-specific activity factor (see power/energy_model.h).
enum class NodeOp : std::uint8_t {
  kRouteForward,   ///< route computation + forward on 1-2 channels (non-spec)
  kBroadcast,      ///< transparent broadcast on both channels (speculative)
  kFastForward,    ///< pre-allocated body/tail forward (opt non-spec)
  kThrottle,       ///< misrouted flit consumed and acked
  kArbitrate,      ///< fanin arbitration + forward
  kSourceSend,     ///< network-interface send
  kSinkConsume,    ///< network-interface receive
};

const char* to_string(NodeOp op);

/// Traffic-side events, implemented by the stats layer.
class TrafficObserver {
 public:
  virtual ~TrafficObserver() = default;

  /// A flit was consumed by destination `dest` at time `when`.
  virtual void on_flit_ejected(const Packet& packet, std::uint32_t dest,
                               FlitKind kind, TimePs when) = 0;

  /// A packet's header left its source queue and entered the network.
  virtual void on_packet_injected(const Packet& packet, TimePs when) = 0;
};

/// Switching-activity events, implemented by the power layer.
class EnergyObserver {
 public:
  virtual ~EnergyObserver() = default;

  /// A node performed `op` on one flit.
  virtual void on_node_op(const Node& node, NodeOp op, TimePs when) = 0;

  /// One flit traversed a channel of the given wire length.
  virtual void on_channel_flit(LengthUm length, TimePs when) = 0;
};

/// Bundle handed to every node and channel at construction.
struct SimHooks {
  TrafficObserver* traffic = nullptr;
  EnergyObserver* energy = nullptr;
};

}  // namespace specnoc::noc
