// Deterministic random number generation.
//
// xoshiro256++ seeded through SplitMix64: fast, high-quality, and —
// unlike std::mt19937 + std::distributions — guaranteed to produce the same
// stream on every platform, which keeps experiment results reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contract.h"

namespace specnoc {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Chooses k distinct values from [0, n) in random order. k <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Derives an independent child generator (for per-source streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace specnoc
