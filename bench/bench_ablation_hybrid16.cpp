// E7 — hybrid speculation-placement ablation on a 16x16 MoT.
//
// The paper sketches one 16x16 hybrid (Figure 3(d): speculative levels
// {0, 2}) and names the wider family as future work. This harness sweeps
// every per-level speculation pattern (leaf level always non-speculative)
// and reports zero-ish-load latency, saturation, power, and address bits —
// the cost/benefit landscape of local speculation placement.
#include <bit>
#include <vector>

#include "bench_common.h"
#include "stats/experiment.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(argc, argv);
  core::NetworkConfig cfg;
  cfg.n = 16;
  stats::ExperimentRunner runner(cfg, opts.seed);
  const mot::MotTopology topo(cfg.n);

  using traffic::BenchmarkId;
  Table table({"Spec levels", "Local?", "Addr bits", "Sat uniform",
               "Sat mcast10", "Lat uniform (ns)", "Lat mcast10 (ns)",
               "Power uniform (mW)"});

  // Enumerate subsets of levels {0, 1, 2} (level 3 = leaves, always
  // non-speculative).
  const std::uint32_t free_levels = topo.levels() - 1;
  for (std::uint32_t bits = 0; bits < (1u << free_levels); ++bits) {
    std::vector<std::uint32_t> levels;
    std::string label = "{";
    for (std::uint32_t l = 0; l < free_levels; ++l) {
      if (bits & (1u << l)) {
        if (!levels.empty()) label += ',';
        label += std::to_string(l);
        levels.push_back(l);
      }
    }
    label += "}";
    const auto spec = core::SpeculationMap::from_levels(topo, levels);
    stats::NetworkFactory factory = [&cfg, spec] {
      return std::make_unique<core::MotNetwork>(cfg, spec);
    };

    const auto sat_uniform =
        runner.run_saturation(factory, BenchmarkId::kUniformRandom);
    const auto sat_mcast =
        runner.run_saturation(factory, BenchmarkId::kMulticast10);
    const auto windows = traffic::default_windows(BenchmarkId::kUniformRandom);
    const auto lat_uniform = runner.measure_latency(
        factory, BenchmarkId::kUniformRandom,
        0.25 * sat_uniform.injected_flits_per_ns, windows);
    const auto lat_mcast = runner.measure_latency(
        factory, BenchmarkId::kMulticast10,
        0.25 * sat_mcast.injected_flits_per_ns, windows);
    const auto power = runner.measure_power(
        factory, BenchmarkId::kUniformRandom,
        0.25 * sat_uniform.injected_flits_per_ns, windows);
    const auto addr_bits =
        mot::SourceRouteEncoder(topo, spec.flags()).address_bits();

    table.add_row({label, spec.is_local() ? "yes" : "no",
                   cell(static_cast<long long>(addr_bits)),
                   cell(sat_uniform.delivered_flits_per_ns, 2),
                   cell(sat_mcast.delivered_flits_per_ns, 2),
                   cell(lat_uniform.mean_latency_ns, 2),
                   cell(lat_mcast.mean_latency_ns, 2),
                   cell(power.power_mw, 1)});
  }
  specnoc::bench::emit(table,
                       "16x16 hybrid placement ablation (paper Figure 3(d) "
                       "is spec levels {0,2})",
                       opts);
  specnoc::bench::note(
      "'Local? yes' = no speculative node feeds another speculative node "
      "(redundant copies throttled after one hop).");
  return 0;
}
