#include "core/speculation.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace specnoc::core {
namespace {

TEST(SpeculationMapTest, NoneHasNoSpeculativeNodes) {
  mot::MotTopology t(8);
  const auto map = SpeculationMap::none(t);
  EXPECT_EQ(map.speculative_count(), 0u);
  EXPECT_EQ(map.non_speculative_count(), 7u);
  EXPECT_TRUE(map.is_local());
}

TEST(SpeculationMapTest, Hybrid8x8IsRootOnly) {
  mot::MotTopology t(8);
  const auto map = SpeculationMap::hybrid(t);
  EXPECT_TRUE(map.speculative(0, 0));
  for (std::uint32_t i = 0; i < 2; ++i) EXPECT_FALSE(map.speculative(1, i));
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_FALSE(map.speculative(2, i));
  EXPECT_EQ(map.speculative_count(), 1u);
  EXPECT_TRUE(map.is_local());
}

TEST(SpeculationMapTest, Hybrid16x16IsRootPlusLevel2) {
  mot::MotTopology t(16);
  const auto map = SpeculationMap::hybrid(t);
  EXPECT_TRUE(map.speculative(0, 0));
  for (std::uint32_t i = 0; i < 2; ++i) EXPECT_FALSE(map.speculative(1, i));
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_TRUE(map.speculative(2, i));
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_FALSE(map.speculative(3, i));
  EXPECT_EQ(map.speculative_count(), 5u);
  EXPECT_TRUE(map.is_local());
}

TEST(SpeculationMapTest, AllSpeculativeSparesLeaves) {
  mot::MotTopology t(8);
  const auto map = SpeculationMap::all_speculative(t);
  EXPECT_TRUE(map.speculative(0, 0));
  EXPECT_TRUE(map.speculative(1, 0));
  EXPECT_TRUE(map.speculative(1, 1));
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_FALSE(map.speculative(2, i));
  EXPECT_EQ(map.speculative_count(), 3u);
  // Adjacent speculative levels: not local speculation.
  EXPECT_FALSE(map.is_local());
}

TEST(SpeculationMapTest, AllSpeculativeOn4x4EqualsHybrid) {
  mot::MotTopology t(4);
  // Depth 2: only the root can speculate, so hybrid == all-speculative.
  EXPECT_EQ(SpeculationMap::hybrid(t).flags(),
            SpeculationMap::all_speculative(t).flags());
}

TEST(SpeculationMapTest, FromLevelsRejectsLeafLevel) {
  mot::MotTopology t(8);
  EXPECT_THROW(SpeculationMap::from_levels(t, {2}), ConfigError);
  EXPECT_THROW(SpeculationMap::from_levels(t, {0, 2}), ConfigError);
  EXPECT_THROW(SpeculationMap::from_levels(t, {5}), ConfigError);
  EXPECT_NO_THROW(SpeculationMap::from_levels(t, {0, 1}));
}

TEST(SpeculationMapTest, FromFlagsValidatesSizeAndLeaves) {
  mot::MotTopology t(8);
  EXPECT_THROW(SpeculationMap::from_flags(t, std::vector<bool>(5, false)),
               ConfigError);
  std::vector<bool> leaf_spec(7, false);
  leaf_spec[mot::MotTopology::heap_id(2, 1)] = true;
  EXPECT_THROW(SpeculationMap::from_flags(t, leaf_spec), ConfigError);
}

TEST(SpeculationMapTest, ArbitraryPerNodeMapLocality) {
  mot::MotTopology t(16);
  // Speculate only at node (1, 0): local (its parent root and children at
  // level 2 are non-speculative).
  std::vector<bool> flags(t.nodes_per_tree(), false);
  flags[mot::MotTopology::heap_id(1, 0)] = true;
  const auto map = SpeculationMap::from_flags(t, flags);
  EXPECT_TRUE(map.is_local());
  // Add its child: no longer local.
  flags[mot::MotTopology::heap_id(2, 0)] = true;
  EXPECT_FALSE(SpeculationMap::from_flags(t, std::move(flags)).is_local());
}

TEST(SpeculationMapTest, HybridIsLocalForAllSizes) {
  for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
    mot::MotTopology t(n);
    EXPECT_TRUE(SpeculationMap::hybrid(t).is_local()) << "n=" << n;
  }
}

TEST(SpeculationMapTest, AllSpecNotLocalForDeepTrees) {
  for (std::uint32_t n : {8u, 16u, 32u, 64u}) {
    mot::MotTopology t(n);
    EXPECT_FALSE(SpeculationMap::all_speculative(t).is_local()) << "n=" << n;
  }
}

}  // namespace
}  // namespace specnoc::core
