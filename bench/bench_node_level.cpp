// E1 — Section 5.2(a): node-level area and forward latency.
//
// Area and the characterized forward latencies come from the model's
// per-kind table (paper-published values); the latency column labeled
// "simulated" is measured by driving one flit through an isolated node
// instance in the event simulator with zero-delay channels — validating
// that the behavioural models realize their characterized latencies.
#include <memory>

#include "bench_common.h"
#include "core/mot_network.h"
#include "noc/channel.h"
#include "noc/network.h"
#include "nodes/fanin_node.h"
#include "nodes/fanout_nodes.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

namespace {

/// Minimal endpoints for isolated-node micro-simulation.
class ProbeSink final : public noc::Node {
 public:
  ProbeSink(sim::Scheduler& s, noc::SimHooks& h)
      : Node(s, h, noc::NodeKind::kSink, "probe_sink") {}
  void deliver(const noc::Flit&, std::uint32_t port) override {
    if (first_arrival < 0) first_arrival = sched().now();
    input(port).ack();
  }
  void on_output_ack(std::uint32_t) override {}
  TimePs first_arrival = -1;
};

class ProbeDriver final : public noc::Node {
 public:
  ProbeDriver(sim::Scheduler& s, noc::SimHooks& h)
      : Node(s, h, noc::NodeKind::kSource, "probe_driver") {}
  void deliver(const noc::Flit&, std::uint32_t) override {}
  void on_output_ack(std::uint32_t) override {}
  void send(const noc::Flit& flit) { output(0).send(flit); }
};

/// Drives one header through a fanout node built by `make_node` and returns
/// the input-to-output latency observed at the top output.
template <typename MakeNode>
TimePs measure_fanout_latency(MakeNode&& make_node) {
  sim::Scheduler sched;
  noc::SimHooks hooks;
  noc::PacketStore store;
  ProbeDriver driver(sched, hooks);
  ProbeSink top(sched, hooks), bottom(sched, hooks);
  auto node = make_node(sched, hooks);
  noc::Channel in(sched, hooks, {}, "in"), out0(sched, hooks, {}, "o0"),
      out1(sched, hooks, {}, "o1");
  in.connect(driver, 0, *node, 0);
  out0.connect(*node, 0, top, 0);
  out1.connect(*node, 1, bottom, 0);
  const noc::Message& msg = store.create_message(0, noc::DestSet::single(0), 0,
                                                 false);
  const noc::Packet& pkt = store.create_packet(msg, noc::DestSet::single(0), 1);
  driver.send(noc::make_flit(pkt, 0));
  sched.run();
  return top.first_arrival;
}

TimePs measure_fanin_latency() {
  sim::Scheduler sched;
  noc::SimHooks hooks;
  noc::PacketStore store;
  ProbeDriver driver(sched, hooks);
  ProbeSink sink(sched, hooks);
  nodes::FaninNode node(sched, hooks, "dut",
                        nodes::default_characteristics(noc::NodeKind::kFanin));
  noc::Channel in(sched, hooks, {}, "in"), out(sched, hooks, {}, "out");
  in.connect(driver, 0, node, 0);
  out.connect(node, 0, sink, 0);
  const noc::Message& msg = store.create_message(0, noc::DestSet::single(0), 0,
                                                 false);
  const noc::Packet& pkt = store.create_packet(msg, noc::DestSet::single(0), 1);
  driver.send(noc::make_flit(pkt, 0));
  sched.run();
  return sink.first_arrival;
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_node_level",
      "Section 5.2(a): node-level characteristics.");

  struct Row {
    noc::NodeKind kind;
    const char* paper_area;
    const char* paper_latency;
  };
  const Row rows[] = {
      {noc::NodeKind::kFanoutBaseline, "342", "263"},
      {noc::NodeKind::kFanoutSpeculative, "247", "52"},
      {noc::NodeKind::kFanoutNonSpeculative, "406", "299"},
      {noc::NodeKind::kFanoutOptSpeculative, "373", "120"},
      {noc::NodeKind::kFanoutOptNonSpeculative, "366", "279"},
      {noc::NodeKind::kFanin, "(n/a)", "(n/a)"},
  };

  Table table({"Node", "Area um^2 (paper)", "Fwd ps (paper)",
               "Fwd ps (model)", "Fwd ps (simulated)", "Body ps (model)"});
  for (const Row& row : rows) {
    const auto& chars = nodes::default_characteristics(row.kind);
    TimePs simulated = -1;
    auto chars_copy = chars;
    switch (row.kind) {
      case noc::NodeKind::kFanoutBaseline:
        simulated = measure_fanout_latency([&](auto& s, auto& h) {
          return std::make_unique<nodes::BaselineFanoutNode>(
              s, h, "dut", chars_copy, noc::DestRange{0, 1},
              noc::DestRange{1, 2});
        });
        break;
      case noc::NodeKind::kFanoutSpeculative:
        simulated = measure_fanout_latency([&](auto& s, auto& h) {
          return std::make_unique<nodes::SpecFanoutNode>(
              s, h, "dut", chars_copy, noc::DestRange{0, 1},
              noc::DestRange{1, 2});
        });
        break;
      case noc::NodeKind::kFanoutNonSpeculative:
        simulated = measure_fanout_latency([&](auto& s, auto& h) {
          return std::make_unique<nodes::NonSpecFanoutNode>(
              s, h, "dut", chars_copy, noc::DestRange{0, 1},
              noc::DestRange{1, 2});
        });
        break;
      case noc::NodeKind::kFanoutOptSpeculative:
        simulated = measure_fanout_latency([&](auto& s, auto& h) {
          return std::make_unique<nodes::OptSpecFanoutNode>(
              s, h, "dut", chars_copy, noc::DestRange{0, 1},
              noc::DestRange{1, 2});
        });
        break;
      case noc::NodeKind::kFanoutOptNonSpeculative:
        simulated = measure_fanout_latency([&](auto& s, auto& h) {
          return std::make_unique<nodes::OptNonSpecFanoutNode>(
              s, h, "dut", chars_copy, noc::DestRange{0, 1},
              noc::DestRange{1, 2});
        });
        break;
      case noc::NodeKind::kFanin:
        simulated = measure_fanin_latency();
        break;
      default:
        break;
    }
    table.add_row({to_string(row.kind),
                   std::string(row.paper_area),
                   std::string(row.paper_latency),
                   cell(static_cast<long long>(chars.fwd_header)),
                   cell(static_cast<long long>(simulated)),
                   cell(static_cast<long long>(chars.fwd_body))});
  }
  specnoc::bench::emit(table, "Section 5.2(a): node-level characteristics",
                       opts);
  specnoc::bench::note(
      "Fanin characteristics are assumed (not reported in the paper); "
      "they are identical across all six networks so they cancel in every "
      "architecture comparison.");

  // Network-level switch area per architecture (derived; the speculative
  // designs trade bigger multicast-capable nodes for tiny broadcast ones).
  Table area({"Architecture", "8x8 switch area (um^2)",
              "16x16 switch area (um^2)"});
  for (const auto arch : core::all_architectures()) {
    core::NetworkConfig cfg8;
    core::NetworkConfig cfg16;
    cfg16.n = 16;
    area.add_row({to_string(arch),
                  cell(core::MotNetwork(arch, cfg8).total_node_area(), 0),
                  cell(core::MotNetwork(arch, cfg16).total_node_area(), 0)});
  }
  specnoc::bench::emit(area, "Network-level switch area (derived)", opts);
  return 0;
}
