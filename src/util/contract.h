// Contract-checking macros (Core Guidelines I.6/I.8 style Expects/Ensures).
//
// Contract violations indicate programmer error, not recoverable conditions,
// so they abort with a diagnostic rather than throw. Configuration errors
// coming from *user input* should throw specnoc::ConfigError instead
// (see error.h).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace specnoc::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "specnoc: %s violation: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace specnoc::detail

#define SPECNOC_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                           \
          : ::specnoc::detail::contract_failure("precondition", #cond,    \
                                                __FILE__, __LINE__))

#define SPECNOC_ENSURES(cond)                                              \
  ((cond) ? static_cast<void>(0)                                           \
          : ::specnoc::detail::contract_failure("postcondition", #cond,   \
                                                __FILE__, __LINE__))

#define SPECNOC_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                           \
          : ::specnoc::detail::contract_failure("invariant", #cond,       \
                                                __FILE__, __LINE__))

// Marks unreachable control flow (e.g. exhaustive switch over an enum).
#define SPECNOC_UNREACHABLE(msg)                                           \
  ::specnoc::detail::contract_failure("unreachable", msg, __FILE__, __LINE__)
