#include "nodes/fanin_node.h"

namespace specnoc::nodes {

FaninNode::FaninNode(sim::Scheduler& scheduler, noc::SimHooks& hooks,
                     std::string name, const NodeCharacteristics& chars,
                     std::uint32_t input_buffer_flits, TimePs sticky_timeout)
    : Node(scheduler, hooks, noc::NodeKind::kFanin, std::move(name)),
      chars_(&intern_characteristics(chars)),
      buffer_capacity_(input_buffer_flits), sticky_timeout_(sticky_timeout) {
  SPECNOC_EXPECTS(input_buffer_flits >= 1);
  SPECNOC_EXPECTS(sticky_timeout > 0);
  in_[0].fifo.reserve(buffer_capacity_);
  in_[1].fifo.reserve(buffer_capacity_);
}

void FaninNode::deliver(const noc::Flit& flit, std::uint32_t in_port) {
  SPECNOC_EXPECTS(in_port < 2);
  InputState& in = in_[in_port];
  SPECNOC_ASSERT(!in.channel_busy);
  in.channel_busy = true;
  // Entry stage: input latch + FIFO write take the forward latency.
  sched().schedule(disciplined_delay(chars_->fwd_header, chars_->clock_period,
                                     sched().now()),
                   [this, flit, in_port] { enqueue(flit, in_port); });
}

void FaninNode::enqueue(const noc::Flit& flit, std::uint32_t port) {
  InputState& in = in_[port];
  SPECNOC_ASSERT(in.channel_busy);
  SPECNOC_ASSERT(in.fifo.size() < buffer_capacity_);
  in.fifo.push_back({flit, arrival_seq_++});
  if (in.fifo.size() < buffer_capacity_) {
    ack_input(port);
  } else {
    in.ack_deferred = true;  // ack once a slot frees
  }
  try_grant();
}

void FaninNode::ack_input(std::uint32_t port) {
  sched().schedule(chars_->ack_delay, [this, port] {
    SPECNOC_ASSERT(in_[port].channel_busy);
    in_[port].channel_busy = false;
    input(port).ack();
  });
}

void FaninNode::try_grant() {
  if (!output_free_ || !arbiter_ready_) return;
  if (open_packet_input_ >= 0) {
    const auto owner = static_cast<std::uint32_t>(open_packet_input_);
    if (!in_[owner].fifo.empty()) {
      // Wormhole: keep streaming the open packet.
      forward_head(owner);
      return;
    }
    // The open packet's next flit has not arrived. Hold the output for it
    // (strict wormhole), but only up to the watchdog timeout — an
    // unbounded hold deadlocks under lockstep multicast replication.
    if (!watchdog_armed_) {
      watchdog_armed_ = true;
      const std::uint64_t epoch = grant_epoch_;
      sched().schedule(sticky_timeout_, [this, epoch] {
        watchdog_armed_ = false;
        if (grant_epoch_ == epoch && open_packet_input_ >= 0) {
          // Still starved: release the hold and serve whoever is waiting.
          open_packet_input_ = -1;
          record_watchdog_release();
        }
        // Always re-evaluate: a stale watchdog may be the only pending
        // wakeup for a newer hold (which this call re-arms).
        try_grant();
      });
    }
    return;
  }
  // No open packet: grant the earliest-queued head.
  int pick = -1;
  std::uint64_t best = 0;
  for (std::uint32_t p = 0; p < 2; ++p) {
    if (in_[p].fifo.empty()) continue;
    const std::uint64_t seq = in_[p].fifo.front().seq;
    if (pick < 0 || seq < best) {
      pick = static_cast<int>(p);
      best = seq;
    }
  }
  if (pick >= 0) {
    forward_head(static_cast<std::uint32_t>(pick));
  }
}

void FaninNode::forward_head(std::uint32_t port) {
  InputState& in = in_[port];
  SPECNOC_ASSERT(output_free_ && arbiter_ready_ && !in.fifo.empty());
  const noc::Flit flit = in.fifo.front().flit;
  in.fifo.pop_front();
  output_free_ = false;
  ++grant_epoch_;  // any armed watchdog is now stale
  record_op(noc::NodeOp::kArbitrate);
  if (!in_[port ^ 1u].fifo.empty()) record_contended_grant();
  output(0).send(flit);
  if (flit.is_header() && !noc::closes_packet(flit)) {
    open_packet_input_ = static_cast<int>(port);
  } else if (noc::closes_packet(flit) &&
             open_packet_input_ == static_cast<int>(port)) {
    open_packet_input_ = -1;
  }
  if (in.ack_deferred) {
    // A slot just freed; complete the postponed input handshake.
    in.ack_deferred = false;
    ack_input(port);
  }
  // Mutex + switch recovery before the next grant (rate limiting; not on
  // the zero-load latency path).
  arbiter_ready_ = false;
  sched().schedule(disciplined_delay(chars_->fwd_body + chars_->ack_delay,
                                     chars_->clock_period, sched().now()),
                   [this] {
                     arbiter_ready_ = true;
                     try_grant();
                   });
}

void FaninNode::on_output_ack(std::uint32_t out_port) {
  SPECNOC_EXPECTS(out_port == 0);
  SPECNOC_ASSERT(!output_free_);
  output_free_ = true;
  try_grant();
}

}  // namespace specnoc::nodes
