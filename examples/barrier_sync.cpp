// Barrier synchronization: the paper's other motivating multicast use.
//
// N worker cores compute for a random interval, then signal arrival at the
// barrier with a unicast to the coordinator (core 0). When all arrivals are
// in, the coordinator releases the barrier by multicasting to every worker
// — one tree packet on the parallel networks, N-1 serialized unicasts on
// the Baseline. We run a sequence of barrier rounds and report the release
// broadcast latency and the total round time per architecture.
//
// The rounds are expressed as a workload trace: each round's arrivals
// depend on the previous round's release (compute time = the record's
// delay), and the release depends on all of the round's arrivals. The
// closed-loop replay driver then plays the identical trace on every
// architecture — the barrier's wait-for-all feedback comes from trace
// dependencies, not a hand-rolled injection loop.
//
//   $ ./examples/barrier_sync [rounds]
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/mot_network.h"
#include "util/cli.h"
#include "util/rng.h"
#include "workload/replay.h"
#include "workload/trace.h"

using namespace specnoc;

namespace {

struct BarrierWorkload {
  workload::Trace trace;
  std::vector<std::size_t> releases;  ///< release record index per round
};

/// One trace record per arrival and release. Compute phases are 5-50 ns,
/// drawn once — every architecture replays the same computation schedule.
BarrierWorkload make_barrier_workload(std::uint32_t n, std::uint32_t flits,
                                      std::uint32_t rounds,
                                      std::uint64_t seed) {
  Rng rng(seed);
  BarrierWorkload workload;
  workload.trace.meta.n = n;
  workload.trace.meta.generator = "BarrierSync";
  std::uint64_t next_id = 0;
  std::uint64_t prev_release = 0;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    std::vector<std::uint64_t> arrivals;
    for (std::uint32_t w = 1; w < n; ++w) {
      workload::TraceRecord arrival;
      arrival.id = next_id++;
      arrival.src = w;
      arrival.dests = noc::DestSet::single(0);
      arrival.size = flits;
      arrival.delay = static_cast<TimePs>(rng.uniform_int(5000, 50000));
      if (round > 0) arrival.deps = {prev_release};
      arrivals.push_back(arrival.id);
      workload.trace.records.push_back(std::move(arrival));
    }
    workload::TraceRecord release;
    release.id = next_id++;
    release.src = 0;
    noc::DestSet workers;
    for (std::uint32_t w = 1; w < n; ++w) workers.set(w);
    release.dests = workers;
    release.size = flits;
    release.deps = std::move(arrivals);
    prev_release = release.id;
    workload.releases.push_back(workload.trace.records.size());
    workload.trace.records.push_back(std::move(release));
  }
  workload.trace.validate();
  return workload;
}

double mean_of(const std::vector<double>& v) {
  return v.empty() ? 0.0
                   : std::accumulate(v.begin(), v.end(), 0.0) /
                         static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t rounds = 500;
  util::CliParser cli("barrier_sync",
                      "Barrier synchronization rounds across the architectures.");
  cli.add_positional_uint32("rounds", &rounds, "barrier rounds to run (default 500)");
  cli.parse_or_exit(argc, argv);

  core::NetworkConfig config;
  const auto workload =
      make_barrier_workload(config.n, config.flits_per_packet, rounds,
                            /*seed=*/7);

  std::printf("Barrier synchronization, %u cores, %u rounds "
              "(coordinator = core 0):\n\n", config.n, rounds);
  std::printf("%-24s %22s %18s\n", "Network", "release broadcast (ns)",
              "full round (ns)");
  double baseline_release = 0.0;
  double best_release = 0.0;
  for (const auto arch : core::all_architectures()) {
    core::MotNetwork network(arch, config);
    workload::TraceReplayDriver driver(
        network, workload.trace,
        {workload::ReplayMode::kClosedLoop, /*measured=*/false});
    network.net().hooks().traffic = &driver;
    driver.start();
    network.scheduler().run();

    // Release latency: the broadcast entering the network to its last
    // header landing. Round time: previous release delivery (the workers
    // resuming) to this release delivery.
    std::vector<double> release_ns;
    std::vector<double> round_ns;
    TimePs round_start = 0;
    for (const std::size_t rel : workload.releases) {
      const TimePs delivered = driver.delivery_time(rel);
      release_ns.push_back(
          ps_to_ns(delivered - driver.injection_time(rel)));
      round_ns.push_back(ps_to_ns(delivered - round_start));
      round_start = delivered;
    }
    const double release = mean_of(release_ns);
    if (arch == core::Architecture::kBaseline) baseline_release = release;
    best_release = best_release == 0.0 ? release
                                       : std::min(best_release, release);
    std::printf("%-24s %22.2f %18.2f\n", core::to_string(arch), release,
                mean_of(round_ns));
  }
  std::printf("\nThe release broadcast is pure 1-to-all multicast: the "
              "serial Baseline pays ~%.0fx the\nparallel networks' release "
              "latency, which local speculation trims further.\n",
              best_release > 0.0 ? baseline_release / best_release : 0.0);
  return 0;
}
