// Chrome-trace / Perfetto JSON exporter.
//
// PerfettoTracer implements all three observer interfaces (attach it to
// SimHooks traffic + energy + metrics) and buffers one event per
// observation: node operations, injections/ejections, kills, pre-allocation
// checks, and watchdog releases as instant events on per-node tracks, and
// channel backpressure stalls as duration events on per-channel tracks.
// write() emits the JSON object form of the Chrome trace format
// ({"displayTimeUnit":"ns","traceEvents":[...]}), loadable in
// chrome://tracing and ui.perfetto.dev. Timestamps are microseconds
// (fractional, preserving the simulator's picosecond resolution) and events
// are emitted sorted by timestamp within each track.
//
// This complements the CSV FlitTracer (stats/trace.h): the CSV is for
// scripted offline analysis, the Perfetto JSON for interactive timeline
// inspection.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "noc/hooks.h"
#include "stats/telemetry.h"

namespace specnoc::stats {

class PerfettoTracer final : public noc::TrafficObserver,
                             public noc::EnergyObserver,
                             public noc::MetricsObserver {
 public:
  PerfettoTracer() = default;

  void on_packet_injected(const noc::Packet& packet, TimePs when) override;
  void on_flit_ejected(const noc::Packet& packet, std::uint32_t dest,
                       noc::FlitKind kind, TimePs when) override;

  void on_node_op(const noc::Node& node, noc::NodeOp op,
                  TimePs when) override;
  void on_channel_flit(LengthUm length, TimePs when) override;

  void on_flit_killed(const noc::Node& node, const noc::Flit& flit,
                      TimePs when) override;
  void on_prealloc(const noc::Node& node, bool hit, TimePs when) override;
  void on_contended_grant(const noc::Node& node, TimePs when) override;
  void on_watchdog_release(const noc::Node& node, TimePs when) override;
  void on_channel_stall(const noc::Channel& channel, TimePs start,
                        TimePs end) override;

  std::size_t num_events() const { return events_.size(); }

  /// Attaches an epoch-sampled series (TelemetrySampler::finish()); the
  /// trace then carries counter tracks ("ph":"C" — event rate, kills,
  /// prealloc hits, contention, queue depths, per-class stall occupancy)
  /// alongside the slice tracks, so the timeline shows aggregate load next
  /// to per-node events.
  void set_telemetry(TelemetrySeries series);

  /// Builds the trace document; deterministic for a deterministic run.
  util::Json trace_json() const;

  /// Writes trace_json() to `out` as one line of JSON.
  void write(std::ostream& out) const;

 private:
  struct Event {
    std::uint32_t track = 0;
    TimePs when = 0;
    TimePs duration = -1;  ///< < 0: instant event, else "X" with this dur
    const char* name = "";
    const char* category = "";
    bool has_packet = false;
    std::uint64_t packet = 0;
    std::uint32_t src = 0;
  };

  /// Track (Chrome "tid") for a node or channel name; created on first use.
  std::uint32_t track(const std::string& name);
  void instant(std::uint32_t track, TimePs when, const char* name,
               const char* category);

  std::vector<std::string> track_names_;
  std::map<std::string, std::uint32_t> track_ids_;
  std::vector<Event> events_;
  TelemetrySeries telemetry_;
};

}  // namespace specnoc::stats
