// Network: owns the scheduler, all nodes, all channels, and packet storage.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "sim/partitioned_scheduler.h"
#include "sim/scheduler.h"
#include "noc/arena.h"
#include "noc/channel.h"
#include "noc/hooks.h"
#include "noc/node.h"
#include "noc/packet.h"
#include "noc/sink.h"
#include "noc/source.h"

namespace specnoc::noc {

/// Container and factory for a simulated network. Topology layers (mot/core)
/// populate it; experiment layers drive its scheduler and hooks.
///
/// Partitioned mode: a builder may call enable_partitions() before creating
/// any nodes, then tag each node with set_build_partition() as it builds.
/// Nodes are then constructed on their partition's scheduler lane, channels
/// whose endpoints live in different partitions are split into mailbox
/// halves (Channel::make_cross_partition), and run()/run_until() execute
/// the lanes through the conservative window protocol of
/// sim::PartitionedScheduler. Without enable_partitions() everything runs
/// on the single global scheduler exactly as before.
class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Scheduler& scheduler() { return scheduler_; }
  SimHooks& hooks() { return hooks_; }
  PacketStore& packets() { return packets_; }

  /// Switches the network into partitioned mode with `lanes` scheduler
  /// lanes and the given conservative lookahead (the minimum latency of any
  /// cross-partition channel, computed by the builder from its channel
  /// delay plan). Must be called before any node exists. `lanes` == 1 is a
  /// no-op (the network stays sequential); `lookahead` <= 0 with more than
  /// one lane is a ConfigError — a zero-lookahead topology cannot be
  /// partitioned conservatively.
  void enable_partitions(std::uint32_t lanes, TimePs lookahead);

  bool partitioned() const { return psched_ != nullptr; }
  std::uint32_t partitions() const {
    return psched_ != nullptr ? psched_->lanes() : 1;
  }
  sim::PartitionedScheduler* partitioned_scheduler() { return psched_.get(); }

  /// Scheduler lane `i` (the global scheduler when not partitioned).
  sim::Scheduler& lane(std::uint32_t i) {
    return psched_ != nullptr ? psched_->lane(i) : scheduler_;
  }

  /// Partition that subsequently created nodes belong to.
  void set_build_partition(std::uint32_t partition);

  /// Worker threads for partitioned runs; 0 = hardware concurrency. The
  /// effective count is additionally clamped to the partition count. Has no
  /// effect on sequential networks.
  void set_worker_threads(unsigned threads);
  unsigned worker_threads() const { return worker_threads_; }

  /// Unified run surface: dispatches to the global scheduler or to the
  /// partitioned window executor. Drivers and experiments should use these
  /// rather than scheduler().run*() so `--threads` takes effect.
  void run();
  void run_until(TimePs t);
  TimePs now() const;
  std::uint64_t executed() const;
  std::size_t pending() const;
  std::size_t overflow_pending() const;

  /// Installs an observation-only epoch callback on whichever kernel this
  /// network runs on (the global scheduler, or the partitioned executor's
  /// window barrier — see the respective set_epoch_hook contracts). Used by
  /// stats::TelemetrySampler; enabling it changes no simulated byte.
  void set_epoch_hook(TimePs epoch_ps, sim::Scheduler::EpochHook hook);
  void clear_epoch_hook();

  /// Creates a node of type T (constructed with scheduler and hooks first)
  /// in the arena slab for T — stable address, freed with the network.
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    T* node = arena_.create<T>(lane(build_partition_), hooks_,
                               std::forward<Args>(args)...);
    node->set_partition(build_partition_);
    arena_.label_pool<T>(to_string(node->kind()));
    nodes_.push_back(node);
    return *node;
  }

  /// Creates a channel and wires it between two node ports. In partitioned
  /// mode the channel lives on the upstream node's lane and is split into
  /// cross-partition halves when the endpoints' partitions differ (the
  /// channel's min latency must be >= the declared lookahead).
  Channel& add_channel(ChannelParams params, std::string name, Node& up,
                       std::uint32_t up_port, Node& down,
                       std::uint32_t down_port);

  /// Registers network interfaces so drivers can find them by index.
  void register_source(SourceNode& source);
  void register_sink(SinkNode& sink);

  SourceNode& source(std::uint32_t i) { return *sources_.at(i); }
  SinkNode& sink(std::uint32_t i) { return *sinks_.at(i); }
  std::uint32_t num_sources() const {
    return static_cast<std::uint32_t>(sources_.size());
  }
  std::uint32_t num_sinks() const {
    return static_cast<std::uint32_t>(sinks_.size());
  }

  /// All nodes/channels in construction order (non-owning views into the
  /// arena slabs).
  const std::vector<Node*>& nodes() const { return nodes_; }
  const std::vector<Channel*>& channels() const { return channels_; }

  /// Slab accounting for metrics (per-kind object counts and bytes).
  const NetworkArena& arena() const { return arena_; }

 private:
  unsigned effective_threads() const;

  sim::Scheduler scheduler_;
  SimHooks hooks_;
  PacketStore packets_;
  NetworkArena arena_;  ///< owns every node and channel
  std::vector<Node*> nodes_;
  std::vector<Channel*> channels_;
  std::vector<SourceNode*> sources_;
  std::vector<SinkNode*> sinks_;

  std::unique_ptr<sim::PartitionedScheduler> psched_;
  std::uint32_t build_partition_ = 0;
  unsigned worker_threads_ = 1;
};

}  // namespace specnoc::noc
