#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace specnoc {
namespace {

// Atomic: experiment batches log from worker threads (parallel_runner).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  // Worker threads (parallel_runner) log concurrently; serialize the write
  // so lines never interleave.
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::fprintf(stderr, "[specnoc %s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace detail
}  // namespace specnoc
