// E8 — google-benchmark microbenchmarks of the simulation kernel and the
// end-to-end simulator (events/sec, simulated-ns/sec).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "core/mot_network.h"
#include "sim/scheduler.h"
#include "stats/recorder.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"

namespace {

using namespace specnoc;
using namespace specnoc::literals;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule(static_cast<TimePs>(i % 97),
                     [&sum, i] { sum += i; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(65536);

void BM_SchedulerCascade(benchmark::State& state) {
  // Event handlers that schedule follow-ups: the simulator's hot pattern.
  // The chain uses the kernel's native event type — exactly what the
  // pre-rewrite bench did, when the native EventFn was std::function.
  struct Tick {
    sim::Scheduler* sched;
    int* remaining;
    void operator()() const {
      if (--*remaining > 0) sched->schedule(3, Tick{sched, remaining});
    }
  };
  for (auto _ : state) {
    sim::Scheduler sched;
    int remaining = 100000;
    sched.schedule(0, Tick{&sched, &remaining});
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerCascade);

void BM_SchedulerCascadeStdFunction(benchmark::State& state) {
  // Same chain, but each event is a std::function copied into the kernel
  // event — double type erasure. Quantifies what wrapping costs relative
  // to BM_SchedulerCascade; not a pattern the simulator uses.
  for (auto _ : state) {
    sim::Scheduler sched;
    int remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sched.schedule(3, tick);
    };
    sched.schedule(0, tick);
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerCascadeStdFunction);

// Delay values the simulator actually schedules, from
// nodes/characteristics.cpp: switch/channel handshake latencies for the
// five architectures, NI issue/consume delays, and the 900 ps fanin
// watchdog timeout.
constexpr TimePs kMixedDelays[] = {50,  52,  110, 120, 130, 140,
                                   150, 263, 279, 299, 350, 900};

void BM_SchedulerMixedDelays(benchmark::State& state) {
  // 64 concurrent self-rescheduling chains with the realistic delay mix
  // above, plus a rare ~20 ns retirement timer that lands beyond the
  // bucket-queue window and exercises the overflow tier.
  struct Tick {
    sim::Scheduler* sched;
    int* remaining;
    std::uint32_t rng;
    void operator()() const {
      if (--*remaining <= 0) return;
      const std::uint32_t r = rng * 1664525u + 1013904223u;
      const TimePs delay =
          (r >> 26) == 0 ? 20000
                         : kMixedDelays[(r >> 8) %
                                        (sizeof(kMixedDelays) /
                                         sizeof(kMixedDelays[0]))];
      sched->schedule(delay, Tick{sched, remaining, r});
    }
  };
  for (auto _ : state) {
    sim::Scheduler sched;
    sched.reserve(256);
    int remaining = 100000;
    for (std::uint32_t chain = 0; chain < 64; ++chain) {
      sched.schedule(static_cast<TimePs>(chain),
                     Tick{&sched, &remaining, chain * 2654435761u + 1u});
    }
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerMixedDelays);

void BM_NetworkConstruction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    core::NetworkConfig cfg;
    cfg.n = n;
    core::MotNetwork net(core::Architecture::kOptHybridSpeculative, cfg);
    benchmark::DoNotOptimize(net.total_node_area());
  }
}
BENCHMARK(BM_NetworkConstruction)->Arg(8)->Arg(16)->Arg(32);

void BM_SaturatedSimulation(benchmark::State& state) {
  // Simulated nanoseconds per wall second under backlogged uniform load.
  const auto arch = static_cast<core::Architecture>(state.range(0));
  for (auto _ : state) {
    core::NetworkConfig cfg;
    core::MotNetwork net(arch, cfg);
    stats::TrafficRecorder rec(net.net().packets());
    net.net().hooks().traffic = &rec;
    auto pattern = traffic::make_benchmark(
        traffic::BenchmarkId::kUniformRandom, 8);
    traffic::DriverConfig dcfg;
    dcfg.mode = traffic::InjectionMode::kBacklogged;
    dcfg.seed = 7;
    traffic::TrafficDriver driver(net, *pattern, dcfg);
    driver.start();
    net.scheduler().run_until(1000_ns);
    benchmark::DoNotOptimize(net.scheduler().executed());
  }
  state.SetLabel("1000 simulated ns per iteration");
}
BENCHMARK(BM_SaturatedSimulation)
    ->Arg(static_cast<int>(core::Architecture::kBaseline))
    ->Arg(static_cast<int>(core::Architecture::kOptHybridSpeculative))
    ->Arg(static_cast<int>(core::Architecture::kOptAllSpeculative));

}  // namespace

BENCHMARK_MAIN();
