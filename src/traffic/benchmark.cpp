#include "traffic/benchmark.h"

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::traffic {

const char* to_string(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kUniformRandom: return "UniformRandom";
    case BenchmarkId::kShuffle: return "Shuffle";
    case BenchmarkId::kHotspot: return "Hotspot";
    case BenchmarkId::kMulticast5: return "Multicast5";
    case BenchmarkId::kMulticast10: return "Multicast10";
    case BenchmarkId::kMulticastStatic: return "Multicast_static";
  }
  return "?";
}

BenchmarkId benchmark_from_string(const std::string& name) {
  for (const auto id : all_benchmarks()) {
    if (name == to_string(id)) return id;
  }
  std::string valid;
  for (const auto id : all_benchmarks()) {
    if (!valid.empty()) valid += ", ";
    valid += to_string(id);
  }
  throw ConfigError("unknown benchmark '" + name +
                    "' (valid benchmarks: " + valid + ")");
}

std::unique_ptr<TrafficPattern> make_benchmark(BenchmarkId id,
                                               std::uint32_t n) {
  switch (id) {
    case BenchmarkId::kUniformRandom:
      return make_uniform_random(n);
    case BenchmarkId::kShuffle:
      return make_shuffle(n);
    case BenchmarkId::kHotspot:
      return make_hotspot(n, n / 2, 0.75);
    case BenchmarkId::kMulticast5:
      return make_multicast_mix(n, 0.05);
    case BenchmarkId::kMulticast10:
      return make_multicast_mix(n, 0.10);
    case BenchmarkId::kMulticastStatic: {
      std::vector<std::uint32_t> sources{0, 3, 5};
      for (auto& s : sources) {
        if (s >= n) s = s % n;
      }
      return make_multicast_static(n, std::move(sources));
    }
  }
  SPECNOC_UNREACHABLE("unknown benchmark");
}

SimWindows default_windows(BenchmarkId id) {
  using namespace specnoc::literals;
  if (id == BenchmarkId::kMulticastStatic) {
    return {.warmup = 640_ns, .measure = 6400_ns};
  }
  return {.warmup = 320_ns, .measure = 3200_ns};
}

}  // namespace specnoc::traffic
