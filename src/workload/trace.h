// Versioned, self-describing workload traces: the application-traffic
// interchange format of the workload subsystem.
//
// A trace is an ordered list of message records over an n-endpoint network.
// Each record names a message id, source, destination mask, size in flits,
// an earliest injection time, and the set of earlier messages it depends
// on — enough to replay the trace open loop (inject at the recorded times)
// or closed loop (inject only after the dependencies are delivered; see
// replay.h).
//
// On disk a trace is JSONL built on util::Json, one record per line:
//   {"record":"header","format":"specnoc-workload-trace","schema":1,
//    "n":8,"generator":"DnnLayers"}
//   {"record":"msg","id":0,"src":0,"dests":254,"size":5,"earliest":0,
//    "deps":[]}                                  (optionally "delay":ps)
//   {"record":"end","messages":1}
//
// Two schema versions exist, selected by the radix:
//   * schema 1 (n <= 64): "dests" is the integer 64-bit mask. Every trace
//     written before the large-radix work is schema 1, and the writer still
//     emits it for n <= 64, so existing goldens stay byte-identical.
//   * schema 2 (64 < n <= noc::kMaxEndpoints): "dests" is the lowercase
//     big-integer hex string of the destination set (DestSet::to_hex).
// The pairing is strict in both directions: a schema-1 header with n > 64
// or a schema-2 header with n <= 64 is rejected, as is a record whose
// destination set addresses an endpoint >= n (reported with the offending
// line number and the configured radix).
//
// The writer is deterministic (util::Json preserves insertion order and
// renders numbers canonically), so equal traces always serialize to equal
// bytes — trace_hash() and golden-file comparisons rely on it. The parser
// is strict: malformed lines, schema mismatches, dangling dependencies, or
// a missing end record throw ConfigError with the offending line number.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "noc/packet.h"
#include "util/units.h"

namespace specnoc::workload {

/// Schema written for traces with n <= 64 endpoints (integer dest masks).
inline constexpr int kTraceSchemaVersion = 1;
/// Schema written for larger radixes (hex-string dest sets).
inline constexpr int kTraceSchemaVersionLarge = 2;
inline constexpr const char* kTraceFormat = "specnoc-workload-trace";

/// One application message. `deps` lists ids of records earlier in the
/// trace; in closed-loop replay the message becomes eligible only after
/// every dependency has delivered all of its headers, then injects `delay`
/// picoseconds later (local computation), but never before `earliest`.
struct TraceRecord {
  std::uint64_t id = 0;
  std::uint32_t src = 0;
  noc::DestSet dests;
  std::uint32_t size = 1;  ///< flits of the message's packet
  TimePs earliest = 0;
  TimePs delay = 0;
  std::vector<std::uint64_t> deps;
};

/// Trace-level identity carried in the header record.
struct TraceMeta {
  std::uint32_t n = 0;       ///< endpoint count the trace was built for
  std::string generator;     ///< provenance label ("DnnLayers", "capture", ...)
};

struct Trace {
  TraceMeta meta;
  std::vector<TraceRecord> records;

  /// Structural validation; throws ConfigError on the first violation:
  ///  * n must be in [2, noc::kMaxEndpoints];
  ///  * record ids strictly increasing (which makes any dependency graph
  ///    acyclic by construction);
  ///  * src < n, dests nonempty and within the n endpoints, size >= 1,
  ///    earliest/delay >= 0;
  ///  * every dep names an earlier record of the trace.
  void validate() const;
};

/// Serializes a validated trace (deterministic bytes; see file comment).
void write_trace(const Trace& trace, std::ostream& out);
void save_trace(const Trace& trace, const std::string& path);
std::string trace_to_string(const Trace& trace);

/// Parses and validates one trace. Stream errors name `origin` in the
/// message; the path overload names the file.
Trace read_trace(std::istream& in, const std::string& origin = "<trace>");
Trace load_trace(const std::string& path);

/// Hex fnv1a64 fingerprint of the serialized trace: two traces hash equal
/// iff they serialize to the same bytes. Used as the trace's identity in
/// workload spec keys, so sharded sweeps refuse to mix outcomes produced
/// from different traces.
std::string trace_hash(const Trace& trace);

}  // namespace specnoc::workload
