// DestSet: the destination-addressing value type for every network layer.
//
// A destination set is logically a bitset over endpoint indices
// [0, kMaxEndpoints). The representation is small-buffer optimized: sets
// whose highest member is below 64 live in a single inline word — zero heap
// allocations and the same cost as the raw uint64_t mask this type replaced —
// and only sets that actually address endpoint >= 64 spill to a heap array
// of words (capacity grows on demand, capped at kMaxEndpoints/64 words).
//
// Semantics are *logical*, independent of storage width: two sets with the
// same members compare equal and hash identically even if one carries extra
// zero capacity. test() beyond capacity is false; set() grows.
//
// DestRange is a half-open contiguous span [lo, hi) of endpoint indices.
// MoT fanout subtrees always cover contiguous spans, so the routing hot path
// (`does this packet need output X?`) is intersects(DestRange) — O(1) on
// inline sets, O(words in range) on spilled ones — and fanout nodes store
// two 8-byte ranges instead of two multi-word masks (at radix 4096 there are
// ~n^2 nodes per network; per-node masks would cost gigabytes).
//
// Every operation the simulator needs is named here (set/test/count/
// for_each_dest/subtree_slice/intersects/subset_of/words/hash) so the bit
// arithmetic formerly scattered across ~40 files goes through one audited
// surface.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "util/contract.h"

namespace specnoc::noc {

/// Maximum endpoint count any network may address (64x64 grid).
inline constexpr std::uint32_t kMaxEndpoints = 4096;

/// Half-open span [lo, hi) of endpoint indices. MoT fanout subtrees and
/// synthesizer layer placements are contiguous, so ranges are the compact
/// routing currency at every radix.
struct DestRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  std::uint32_t width() const { return hi - lo; }
  bool empty() const { return lo >= hi; }
  bool contains(std::uint32_t d) const { return d >= lo && d < hi; }

  friend bool operator==(DestRange a, DestRange b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(DestRange a, DestRange b) { return !(a == b); }
};

class DestSet {
 public:
  static constexpr std::uint32_t kWordBits = 64;
  static constexpr std::uint32_t kMaxWords = kMaxEndpoints / kWordBits;

  constexpr DestSet() noexcept : word_(0), num_words_(1) {}

  DestSet(const DestSet& other) { copy_from(other); }
  DestSet(DestSet&& other) noexcept : num_words_(other.num_words_) {
    if (num_words_ == 1) {
      word_ = other.word_;
    } else {
      heap_ = other.heap_;
    }
    other.word_ = 0;
    other.num_words_ = 1;
  }
  DestSet& operator=(const DestSet& other) {
    if (this != &other) {
      destroy();
      copy_from(other);
    }
    return *this;
  }
  DestSet& operator=(DestSet&& other) noexcept {
    if (this != &other) {
      destroy();
      num_words_ = other.num_words_;
      if (num_words_ == 1) {
        word_ = other.word_;
      } else {
        heap_ = other.heap_;
      }
      other.word_ = 0;
      other.num_words_ = 1;
    }
    return *this;
  }
  ~DestSet() { destroy(); }

  /// The set {d}.
  static DestSet single(std::uint32_t d) {
    DestSet s;
    s.set(d);
    return s;
  }

  /// All endpoints in [range.lo, range.hi).
  static DestSet range(DestRange range);
  static DestSet range(std::uint32_t lo, std::uint32_t hi) {
    return range(DestRange{lo, hi});
  }
  /// All endpoints in [0, n) — "broadcast to an n-endpoint network".
  static DestSet first_n(std::uint32_t n) { return range(0, n); }

  /// Adopts a raw 64-bit mask (endpoints 0..63). The bridge for trace
  /// schema 1, spec files, and the radix <= 64 differential tests.
  static DestSet from_word(std::uint64_t bits) {
    DestSet s;
    s.word_ = bits;
    return s;
  }

  // -- membership ----------------------------------------------------------

  /// Adds endpoint d. Grows storage when d is beyond current capacity;
  /// never allocates while d < 64 on an inline set.
  void set(std::uint32_t d) {
    SPECNOC_EXPECTS(d < kMaxEndpoints);
    const std::uint32_t w = d / kWordBits;
    if (w >= num_words_) {
      set_slow(d);
      return;
    }
    words_ptr()[w] |= std::uint64_t{1} << (d % kWordBits);
  }

  /// Removes endpoint d (no-op if absent or beyond capacity).
  void reset(std::uint32_t d) {
    const std::uint32_t w = d / kWordBits;
    if (w < num_words_) {
      words_ptr()[w] &= ~(std::uint64_t{1} << (d % kWordBits));
    }
  }

  bool test(std::uint32_t d) const {
    const std::uint32_t w = d / kWordBits;
    if (w >= num_words_) {
      return false;
    }
    return (words_ptr()[w] >> (d % kWordBits)) & 1u;
  }

  /// Empties the set (keeps capacity).
  void clear() {
    std::uint64_t* w = words_ptr();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      w[i] = 0;
    }
  }

  // -- queries -------------------------------------------------------------

  bool none() const {
    const std::uint64_t* w = words_ptr();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      if (w[i] != 0) {
        return false;
      }
    }
    return true;
  }
  bool any() const { return !none(); }

  /// Number of members (popcount).
  std::uint32_t count() const {
    const std::uint64_t* w = words_ptr();
    std::uint32_t total = 0;
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      total += static_cast<std::uint32_t>(std::popcount(w[i]));
    }
    return total;
  }

  /// True when the set has two or more members (cheaper than count() > 1).
  bool is_multicast() const {
    const std::uint64_t* w = words_ptr();
    bool seen = false;
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      if (w[i] == 0) {
        continue;
      }
      if (seen || (w[i] & (w[i] - 1)) != 0) {
        return true;
      }
      seen = true;
    }
    return false;
  }

  /// Lowest member. Requires any().
  std::uint32_t first() const {
    const std::uint64_t* w = words_ptr();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      if (w[i] != 0) {
        return i * kWordBits +
               static_cast<std::uint32_t>(std::countr_zero(w[i]));
      }
    }
    SPECNOC_EXPECTS(false && "DestSet::first() on empty set");
    return 0;
  }

  /// True if this set and `range` share any endpoint. The routing hot path:
  /// inline sets hit the single-word fast path.
  bool intersects(DestRange range) const {
    const std::uint64_t cap = std::uint64_t{num_words_} * kWordBits;
    const std::uint64_t hi64 = range.hi < cap ? range.hi : cap;
    if (range.lo >= hi64) {
      return false;
    }
    const std::uint32_t hi = static_cast<std::uint32_t>(hi64);
    const std::uint64_t* w = words_ptr();
    const std::uint32_t w0 = range.lo / kWordBits;
    const std::uint32_t w1 = (hi - 1) / kWordBits;
    for (std::uint32_t i = w0; i <= w1; ++i) {
      std::uint64_t mask = ~std::uint64_t{0};
      if (i == w0) {
        mask &= ~std::uint64_t{0} << (range.lo % kWordBits);
      }
      if (i == w1) {
        const std::uint32_t top = hi - i * kWordBits;
        if (top < kWordBits) {
          mask &= (std::uint64_t{1} << top) - 1;
        }
      }
      if ((w[i] & mask) != 0) {
        return true;
      }
    }
    return false;
  }

  bool intersects(const DestSet& other) const {
    const std::uint32_t common =
        num_words_ < other.num_words_ ? num_words_ : other.num_words_;
    const std::uint64_t* a = words_ptr();
    const std::uint64_t* b = other.words_ptr();
    for (std::uint32_t i = 0; i < common; ++i) {
      if ((a[i] & b[i]) != 0) {
        return true;
      }
    }
    return false;
  }

  /// True when every member is < n (the set fits an n-endpoint network).
  /// Allocation-free at any radix — the admission check on every send.
  bool within(std::uint32_t n) const {
    const std::uint64_t* w = words_ptr();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      const std::uint64_t base = std::uint64_t{i} * kWordBits;
      if (base >= n) {
        if (w[i] != 0) {
          return false;
        }
        continue;
      }
      const std::uint64_t span = n - base;
      const std::uint64_t allowed =
          span >= kWordBits ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << span) - 1;
      if ((w[i] & ~allowed) != 0) {
        return false;
      }
    }
    return true;
  }

  /// True if every member of this set is also in `other`.
  bool subset_of(const DestSet& other) const {
    const std::uint64_t* a = words_ptr();
    const std::uint64_t* b = other.words_ptr();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      const std::uint64_t bw = i < other.num_words_ ? b[i] : 0;
      if ((a[i] & ~bw) != 0) {
        return false;
      }
    }
    return true;
  }

  /// The members of this set that fall inside `range` — how a fanout node
  /// splits a destination set between its two subtrees.
  DestSet subtree_slice(DestRange range) const;

  // -- set algebra ---------------------------------------------------------

  DestSet& operator|=(const DestSet& other);
  DestSet& operator&=(const DestSet& other);
  /// Removes every member of `other` from this set (and-not).
  DestSet& remove(const DestSet& other);

  friend DestSet operator|(DestSet a, const DestSet& b) { return a |= b; }
  friend DestSet operator&(DestSet a, const DestSet& b) { return a &= b; }

  friend bool operator==(const DestSet& a, const DestSet& b) {
    const std::uint32_t n =
        a.num_words_ > b.num_words_ ? a.num_words_ : b.num_words_;
    const std::uint64_t* aw = a.words_ptr();
    const std::uint64_t* bw = b.words_ptr();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t x = i < a.num_words_ ? aw[i] : 0;
      const std::uint64_t y = i < b.num_words_ ? bw[i] : 0;
      if (x != y) {
        return false;
      }
    }
    return true;
  }
  friend bool operator!=(const DestSet& a, const DestSet& b) {
    return !(a == b);
  }

  // -- iteration -----------------------------------------------------------

  /// Calls f(d) for every member d in ascending order. Multicast expansion
  /// and mesh routing depend on this order for determinism.
  template <typename F>
  void for_each_dest(F&& f) const {
    const std::uint64_t* w = words_ptr();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      std::uint64_t bits = w[i];
      while (bits != 0) {
        const std::uint32_t d =
            i * kWordBits + static_cast<std::uint32_t>(std::countr_zero(bits));
        f(d);
        bits &= bits - 1;
      }
    }
  }

  // -- raw access / codecs -------------------------------------------------

  /// Storage words, lowest endpoints first. Trailing words may be zero;
  /// use num_words() for the count. For codecs and differential tests.
  const std::uint64_t* words() const { return words_ptr(); }
  std::uint32_t num_words() const { return num_words_; }
  /// Word i of the logical value (0 beyond capacity).
  std::uint64_t word(std::uint32_t i) const {
    return i < num_words_ ? words_ptr()[i] : 0;
  }

  /// The raw 64-bit mask. Requires all members < 64 (inline or not).
  std::uint64_t to_word() const {
    const std::uint64_t* w = words_ptr();
    for (std::uint32_t i = 1; i < num_words_; ++i) {
      SPECNOC_EXPECTS(w[i] == 0 && "DestSet::to_word() with members >= 64");
    }
    return w[0];
  }

  /// Content hash (FNV-1a over the words up to the highest nonzero one).
  /// Equal sets hash equal regardless of capacity.
  std::uint64_t hash() const;

  /// Lowercase big-integer hex of the set ("0" when empty, no leading
  /// zeros) — the trace schema 2 wire form.
  std::string to_hex() const;
  /// Parses to_hex() output. Throws ConfigError on malformed or oversized
  /// input.
  static DestSet from_hex(const std::string& hex);

  // -- allocation accounting / spill pool ----------------------------------

  /// Process-wide count of *raw* heap spills (operator new[] calls on the
  /// spill path). With pooling on (the default) a released multi-word block
  /// goes to a per-word-count freelist and is reused, so this counter is
  /// the pool's high-water mark of simultaneously live blocks, not the
  /// multicast traffic volume — bounded for any steady-state workload. With
  /// pooling off every spill is a raw allocation, restoring the pre-pool
  /// meaning (the differential tests compare both modes). The zero-alloc CI
  /// assertion at radix <= 64 is unaffected: inline sets never touch the
  /// spill path in either mode.
  static std::uint64_t spill_allocations();
  /// Bytes obtained via raw spill allocations (the pool's footprint —
  /// monotonic, since pooled blocks are recycled rather than freed).
  static std::uint64_t spill_bytes();
  /// Freelist hits (spills served without allocating).
  static std::uint64_t spill_reuses();
  /// Multi-word blocks currently live (acquired and not yet released).
  static std::uint64_t spill_outstanding();
  /// Peak simultaneous demand, summed per block size (the freelists are
  /// size-segregated, so the per-size high-water marks are what bound
  /// allocations). With pooling on, spill_allocations() <=
  /// spill_high_water() always holds: a raw allocation of a given size
  /// happens only when every previously allocated block of that size is
  /// outstanding — the CI gate.
  static std::uint64_t spill_high_water();
  /// Toggles pooled spills (default on). Safe at any point: blocks are
  /// new[]-allocated in both modes, so either mode can release blocks
  /// acquired under the other.
  static void set_spill_pooling(bool enabled);
  static bool spill_pooling();
  /// Frees every block parked on the freelists (counters keep their
  /// values). For tests that want a clean heap between modes.
  static void trim_spill_pool();

 private:
  const std::uint64_t* words_ptr() const {
    return num_words_ == 1 ? &word_ : heap_;
  }
  std::uint64_t* words_ptr() { return num_words_ == 1 ? &word_ : heap_; }

  void copy_from(const DestSet& other);
  void grow(std::uint32_t words_needed);
  /// Out-of-line spill path for set(): grows then sets. Kept out of the
  /// header so the inline fast path stays small (and GCC's array-bounds
  /// analysis never sees a heap store through the union).
  void set_slow(std::uint32_t d);
  /// Spill-block lifecycle, out of line (pool bookkeeping).
  static std::uint64_t* acquire_block(std::uint32_t words);
  static void release_block(std::uint64_t* block, std::uint32_t words);
  void destroy() {
    if (num_words_ > 1) {
      release_block(heap_, num_words_);
    }
  }

  union {
    std::uint64_t word_;   ///< storage when num_words_ == 1
    std::uint64_t* heap_;  ///< storage when num_words_ > 1
  };
  std::uint32_t num_words_;
};

}  // namespace specnoc::noc
