// 2D-mesh topology math (the paper's future-work comparison topology).
//
// cols x rows routers, one core (source + sink endpoint) per router.
// Endpoint id = y * cols + x; x grows east, y grows south.
#pragma once

#include <cstdint>

#include "noc/packet.h"

namespace specnoc::mesh {

enum class Port : std::uint8_t {
  kLocal = 0,
  kNorth = 1,
  kEast = 2,
  kSouth = 3,
  kWest = 4,
};
inline constexpr std::uint32_t kNumPorts = 5;

const char* to_string(Port port);

/// The facing direction: a flit arriving on a router's `port` side came
/// from the neighbor that emitted it through opposite(port).
Port opposite(Port port);

/// Direction bitmask over the five ports.
using PortMask = std::uint8_t;
constexpr PortMask port_bit(Port port) {
  return static_cast<PortMask>(1u << static_cast<std::uint8_t>(port));
}

class MeshTopology {
 public:
  /// cols, rows >= 1 with 2 <= cols*rows <= noc::kMaxEndpoints. Throws
  /// ConfigError.
  MeshTopology(std::uint32_t cols, std::uint32_t rows);

  std::uint32_t cols() const { return cols_; }
  std::uint32_t rows() const { return rows_; }
  std::uint32_t n() const { return cols_ * rows_; }

  std::uint32_t x_of(std::uint32_t id) const;
  std::uint32_t y_of(std::uint32_t id) const;
  std::uint32_t id_at(std::uint32_t x, std::uint32_t y) const;

  bool has_neighbor(std::uint32_t id, Port port) const;
  std::uint32_t neighbor(std::uint32_t id, Port port) const;

  /// Manhattan hop distance between endpoints.
  std::uint32_t distance(std::uint32_t a, std::uint32_t b) const;

  /// Directions a packet from `src` takes at router `id` toward the
  /// destination set, under XY dimension-ordered routing: each destination
  /// d contributes the outgoing direction of the unique XY path
  /// src -> (x_d, y_src) -> d *if that path passes through `id`*, and
  /// kLocal when id == d. The union over a destination set is the
  /// dimension-ordered multicast tree: the X-leg carries the packet east
  /// and west, dropping a Y branch at each destination column. Destinations
  /// whose paths do not pass through `id` contribute nothing — they are
  /// served by other branches of the tree. An empty result cannot occur
  /// for a flit that legally reached `id`.
  PortMask route_dirs(std::uint32_t id, std::uint32_t src,
                      const noc::DestSet& dests) const;

 private:
  std::uint32_t cols_;
  std::uint32_t rows_;
};

}  // namespace specnoc::mesh
