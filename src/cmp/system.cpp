#include "cmp/system.h"

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::cmp {

const char* to_string(CmpMessageKind kind) {
  switch (kind) {
    case CmpMessageKind::kGetS:
      return "GetS";
    case CmpMessageKind::kGetX:
      return "GetX";
    case CmpMessageKind::kInv:
      return "Inv";
    case CmpMessageKind::kInvAck:
      return "InvAck";
    case CmpMessageKind::kWbData:
      return "WbData";
    case CmpMessageKind::kData:
      return "Data";
  }
  SPECNOC_UNREACHABLE("CmpMessageKind");
}

CmpSystem::CmpSystem(noc::MessageNetwork& network,
                     const AccessTraceSource& source, CmpConfig config)
    : network_(network),
      source_(source),
      config_(config),
      directory_(network.endpoints()),
      dram_(config.dram_banks, config.dram_access_ps) {
  config_.validate();
  if (source_.n() != network_.endpoints()) {
    throw ConfigError("access trace has n=" + std::to_string(source_.n()) +
                      " processors but the network has " +
                      std::to_string(network_.endpoints()) + " endpoints");
  }
  procs_.reserve(source_.n());
  for (std::uint32_t p = 0; p < source_.n(); ++p) {
    procs_.emplace_back(config_.sets, config_.ways, config_.mshr_entries);
  }
}

void CmpSystem::start() {
  SPECNOC_EXPECTS(!started_);
  started_ = true;
  if (network_.net().partitioned()) {
    throw ConfigError(
        "closed-loop cmp traffic schedules cache-miss injections from "
        "delivery events — a zero-lookahead feedback path the partitioned "
        "window protocol cannot honor; build the network with "
        "sim_threads = 1");
  }
  for (std::uint32_t p = 0; p < source_.n(); ++p) {
    if (source_.length(p) > 0) arm_next(p, sched().now());
  }
}

// --------------------------------------------------------------------------
// Issue pipeline.

void CmpSystem::arm_next(std::uint32_t p, TimePs now) {
  Proc& proc = procs_[p];
  if (proc.next >= source_.length(p)) return;
  proc.think_ready = false;
  const TimePs think = source_.at(p, proc.next).think;
  sched().schedule_at(at_or_now(now + think), [this, p] {
    procs_[p].think_ready = true;
    try_issue(p);
  });
}

void CmpSystem::try_issue(std::uint32_t p) {
  Proc& proc = procs_[p];
  if (!proc.think_ready || proc.blocked || proc.next >= source_.length(p)) {
    return;
  }
  const workload::MemAccess& access = source_.at(p, proc.next);
  const bool fence = access.kind != workload::AccessKind::kRead &&
                     access.kind != workload::AccessKind::kWrite;
  if (fence && proc.outstanding > 0) {
    proc.fence_wait = true;
    return;
  }
  if (proc.outstanding >= config_.max_outstanding) {
    proc.slot_wait = true;
    return;
  }
  proc.fence_wait = false;
  proc.slot_wait = false;
  const auto index = static_cast<std::uint32_t>(proc.next++);
  ++proc.outstanding;
  ++counters_.accesses;
  const bool write = access.kind != workload::AccessKind::kRead &&
                     access.kind != workload::AccessKind::kBarrier;
  const std::uint32_t op_id =
      make_op(p, source_.line_of(access), write, OpTag::kStream, index);
  run_op(op_id);
  // Reads/writes pipeline: the next access's think clock starts at issue.
  // Synchronization ops block the stream; their completion handlers re-arm.
  if (!fence) arm_next(p, sched().now());
}

std::uint32_t CmpSystem::make_op(std::uint32_t proc, std::uint64_t line,
                                 bool write, OpTag tag, std::uint32_t index) {
  ops_.push_back(Op{proc, line, write, tag, index});
  return static_cast<std::uint32_t>(ops_.size() - 1);
}

void CmpSystem::run_op(std::uint32_t op_id) {
  const Op& op = ops_[op_id];
  Proc& proc = procs_[op.proc];
  const LineState state = proc.cache.state(op.line);
  const bool hit = op.write ? state == LineState::kModified
                            : state != LineState::kInvalid;
  if (hit) {
    ++counters_.l1_hits;
    proc.cache.touch(op.line);
    sched().schedule_at(at_or_now(sched().now() + config_.cache_hit_ps),
                        [this, op_id] { retire_op(op_id, sched().now()); });
    return;
  }
  ++counters_.l1_misses;
  miss(op_id);
}

void CmpSystem::miss(std::uint32_t op_id) {
  const Op& op = ops_[op_id];
  Proc& proc = procs_[op.proc];
  if (Mshr* mshr = proc.mshrs.find(op.line); mshr != nullptr) {
    if (!op.write || mshr->exclusive) {
      // A read joins any in-flight miss; a write joins an exclusive one.
      mshr->waiters.push_back(op_id);
      ++counters_.mshr_merges;
    } else {
      // Write behind a GetS: runs again once the shared fill lands, then
      // upgrades.
      mshr->deferred.push_back(op_id);
      ++counters_.mshr_deferred;
    }
    return;
  }
  if (proc.mshrs.full()) {
    proc.mshr_wait.push_back(op_id);
    ++counters_.mshr_stalls;
    return;
  }
  Mshr& mshr = proc.mshrs.allocate(op.line, op.write);
  mshr.waiters.push_back(op_id);
  request(op.line, op.proc, op.write, sched().now());
}

void CmpSystem::request(std::uint64_t line, std::uint32_t proc, bool exclusive,
                        TimePs now) {
  if (exclusive) {
    ++counters_.getx;
  } else {
    ++counters_.gets;
  }
  const std::uint32_t home = directory_.home(line);
  const DirectoryRequest req{proc, exclusive};
  if (home == proc) {
    // The requester hosts the line's directory slice: no request message.
    ++counters_.local_transactions;
    sched().schedule_at(at_or_now(now + config_.directory_ps),
                        [this, line, req] {
                          home_handle_request(line, req, sched().now());
                        });
    return;
  }
  send(exclusive ? CmpMessageKind::kGetX : CmpMessageKind::kGetS, proc,
       noc::DestSet::single(home), line, exclusive);
}

void CmpSystem::retire_op(std::uint32_t op_id, TimePs when) {
  const Op op = ops_[op_id];
  Proc& proc = procs_[op.proc];
  SPECNOC_ASSERT(proc.outstanding > 0);
  --proc.outstanding;
  switch (op.tag) {
    case OpTag::kStream: {
      ++retired_;
      if (when > makespan_) makespan_ = when;
      const workload::AccessKind kind = source_.at(op.proc, op.index).kind;
      switch (kind) {
        case workload::AccessKind::kRead:
        case workload::AccessKind::kWrite:
          break;
        case workload::AccessKind::kBarrier:
          barrier_arrive(op.proc, op.line, when);
          break;
        case workload::AccessKind::kLockAcquire:
          lock_attempt(op.proc, op.line, when);
          break;
        case workload::AccessKind::kLockRelease:
          lock_release(op.proc, op.line, when);
          break;
      }
      break;
    }
    case OpTag::kBarrierRelease: {
      ++counters_.barriers;
      const auto it = barriers_.find(op.line);
      SPECNOC_ASSERT(it != barriers_.end());
      const std::vector<std::uint32_t> waiting = std::move(it->second.waiting);
      barriers_.erase(it);
      for (const std::uint32_t q : waiting) {
        procs_[q].blocked = false;
        arm_next(q, when);
      }
      break;
    }
    case OpTag::kLockGrant: {
      ++counters_.lock_acquires;
      procs_[op.proc].blocked = false;
      arm_next(op.proc, when);
      break;
    }
  }
  // A retirement may free an outstanding slot or complete a fence.
  if (proc.fence_wait || proc.slot_wait) try_issue(op.proc);
}

// --------------------------------------------------------------------------
// Home-side protocol.

void CmpSystem::home_handle_request(std::uint64_t line, DirectoryRequest req,
                                    TimePs now) {
  if (!directory_.admit(line, req)) return;  // queued behind the line's txn
  const DirectoryAction action = directory_.begin(line);
  const std::uint32_t home = directory_.home(line);
  if (action.invalidate.any()) {
    counters_.inv_targets += action.invalidate.count();
    noc::DestSet remote = action.invalidate;
    const bool local = remote.test(home);
    remote.reset(home);
    if (remote.any()) {
      // The load-bearing multicast: one message, the whole remote sharer
      // set as its DestSet.
      ++counters_.inv_messages;
      if (remote.count() >= 2) ++counters_.inv_multicasts;
      send(CmpMessageKind::kInv, home, remote, line, false);
    }
    if (local) {
      // The home's own cache holds a copy; no self-message on the network.
      sched().schedule_at(at_or_now(now + config_.cache_hit_ps),
                          [this, line, home] {
                            sharer_handle_inv(line, home, sched().now());
                          });
    }
  }
  if (action.dram_read) {
    const TimePs done = dram_.access(line, now, /*write=*/false);
    sched().schedule_at(at_or_now(done), [this, line] {
      directory_.dram_complete(line);
      maybe_complete(line, sched().now());
    });
  }
  maybe_complete(line, now);
}

void CmpSystem::sharer_handle_inv(std::uint64_t line, std::uint32_t sharer,
                                  TimePs now) {
  const bool had_data = procs_[sharer].cache.invalidate(line);
  if (had_data) ++counters_.writebacks;
  const std::uint32_t home = directory_.home(line);
  if (sharer == home) {
    sched().schedule_at(at_or_now(now + config_.directory_ps),
                        [this, line, sharer, had_data] {
                          home_handle_ack(line, sharer, had_data,
                                          sched().now());
                        });
    return;
  }
  send(had_data ? CmpMessageKind::kWbData : CmpMessageKind::kInvAck, sharer,
       noc::DestSet::single(home), line, had_data);
}

void CmpSystem::home_handle_ack(std::uint64_t line, std::uint32_t from,
                                bool with_data, TimePs now) {
  if (with_data) {
    // Modified data always lands in memory; fire-and-forget write.
    dram_.access(line, now, /*write=*/true);
  }
  directory_.ack(line, from);
  maybe_complete(line, now);
}

void CmpSystem::maybe_complete(std::uint64_t line, TimePs now) {
  if (!directory_.ready(line)) return;
  bool has_next = false;
  DirectoryRequest next;
  const DirectoryRequest done = directory_.complete(line, &has_next, &next);
  const std::uint32_t home = directory_.home(line);
  if (done.proc == home) {
    const bool exclusive = done.exclusive;
    sched().schedule_at(at_or_now(now + config_.cache_hit_ps),
                        [this, line, home, exclusive] {
                          fill_complete(home, line, exclusive, sched().now());
                        });
  } else {
    send(CmpMessageKind::kData, home, noc::DestSet::single(done.proc), line,
         done.exclusive);
  }
  if (has_next) {
    sched().schedule_at(at_or_now(now + config_.directory_ps),
                        [this, line, next] {
                          home_handle_request(line, next, sched().now());
                        });
  }
}

void CmpSystem::fill_complete(std::uint32_t proc, std::uint64_t line,
                              bool exclusive, TimePs now) {
  Proc& p = procs_[proc];
  const PrivateCache::Fill fill = p.cache.fill(
      line, exclusive ? LineState::kModified : LineState::kShared);
  if (fill.evicted_modified) {
    // Dirty victim: its line travels back to its own home. Shared victims
    // were dropped silently inside fill(), leaving the directory with a
    // stale sharer — exactly the history dependence reactive invalidation
    // fan-out is about.
    ++counters_.writebacks;
    const std::uint32_t victim_home = directory_.home(fill.victim);
    const std::uint64_t victim = fill.victim;
    if (victim_home == proc) {
      sched().schedule_at(at_or_now(now + config_.directory_ps),
                          [this, victim, proc] {
                            home_handle_ack(victim, proc, true, sched().now());
                          });
    } else {
      send(CmpMessageKind::kWbData, proc, noc::DestSet::single(victim_home),
           victim, true);
    }
  }
  Mshr mshr = p.mshrs.release(line);
  for (const std::uint32_t waiter : mshr.waiters) retire_op(waiter, now);
  // Writes parked behind this GetS re-execute now and upgrade.
  for (const std::uint32_t deferred : mshr.deferred) run_op(deferred);
  // A freed MSHR entry admits stalled misses in arrival order.
  while (!p.mshr_wait.empty() && !p.mshrs.full()) {
    const std::uint32_t op_id = p.mshr_wait.front();
    p.mshr_wait.pop_front();
    run_op(op_id);
    // run_op may have merged instead of allocating; loop re-checks fullness.
  }
}

// --------------------------------------------------------------------------
// Synchronization on top of coherence.

void CmpSystem::barrier_arrive(std::uint32_t p, std::uint64_t line,
                               TimePs /*now*/) {
  BarrierState& barrier = barriers_[line];
  barrier.waiting.push_back(p);
  procs_[p].blocked = true;
  if (barrier.waiting.size() < procs_.size()) return;
  // Last arriver flips the flag: one exclusive write whose invalidation
  // reaches every processor that read the flag line while waiting.
  Proc& proc = procs_[p];
  ++proc.outstanding;
  const std::uint32_t op_id = make_op(p, line, true, OpTag::kBarrierRelease, 0);
  run_op(op_id);
}

void CmpSystem::lock_attempt(std::uint32_t p, std::uint64_t line, TimePs now) {
  LockState& lock = locks_[line];
  if (!lock.held) {
    lock.held = true;
    lock.holder = p;
    ++counters_.lock_acquires;
    arm_next(p, now);
    return;
  }
  ++counters_.lock_contended;
  lock.waiting.push_back(p);
  procs_[p].blocked = true;
}

void CmpSystem::lock_release(std::uint32_t p, std::uint64_t line, TimePs now) {
  LockState& lock = locks_[line];
  SPECNOC_ASSERT(lock.held && lock.holder == p);
  if (lock.waiting.empty()) {
    lock.held = false;
  } else {
    // FIFO handoff (deterministic): the next waiter re-acquires the lock
    // line exclusively — the coherence traffic of a test&set on wakeup.
    const std::uint32_t q = lock.waiting.front();
    lock.waiting.pop_front();
    lock.holder = q;
    Proc& granted = procs_[q];
    ++granted.outstanding;
    const std::uint32_t op_id = make_op(q, line, true, OpTag::kLockGrant, 0);
    run_op(op_id);
  }
  arm_next(p, now);
}

// --------------------------------------------------------------------------
// Network I/O.

void CmpSystem::send(CmpMessageKind kind, std::uint32_t src,
                     noc::DestSet dests, std::uint64_t line, bool exclusive) {
  SPECNOC_ASSERT(dests.any());
  ++counters_.messages_sent;
  const std::uint32_t remaining = dests.count();
  const noc::MessageId id =
      network_.send_message(src, std::move(dests), /*measured=*/true);
  in_flight_.emplace(id, InFlight{kind, line, src, exclusive, remaining});
}

void CmpSystem::on_packet_injected(const noc::Packet& packet, TimePs when) {
  if (downstream_ != nullptr) downstream_->on_packet_injected(packet, when);
}

void CmpSystem::on_flit_ejected(const noc::Packet& packet, std::uint32_t dest,
                                noc::FlitKind kind, TimePs when) {
  if (downstream_ != nullptr) {
    downstream_->on_flit_ejected(packet, dest, kind, when);
  }
  if (kind != noc::FlitKind::kHeader) return;
  const auto it = in_flight_.find(packet.message);
  if (it == in_flight_.end()) return;
  const InFlight msg = it->second;
  if (--it->second.remaining == 0) in_flight_.erase(it);
  const std::uint64_t line = msg.line;
  switch (msg.kind) {
    case CmpMessageKind::kGetS:
    case CmpMessageKind::kGetX: {
      const DirectoryRequest req{msg.src,
                                 msg.kind == CmpMessageKind::kGetX};
      sched().schedule_at(at_or_now(when + config_.directory_ps),
                          [this, line, req] {
                            home_handle_request(line, req, sched().now());
                          });
      break;
    }
    case CmpMessageKind::kInv:
      sched().schedule_at(at_or_now(when + config_.cache_hit_ps),
                          [this, line, dest] {
                            sharer_handle_inv(line, dest, sched().now());
                          });
      break;
    case CmpMessageKind::kInvAck:
    case CmpMessageKind::kWbData: {
      const std::uint32_t from = msg.src;
      const bool with_data = msg.kind == CmpMessageKind::kWbData;
      sched().schedule_at(at_or_now(when + config_.directory_ps),
                          [this, line, from, with_data] {
                            home_handle_ack(line, from, with_data,
                                            sched().now());
                          });
      break;
    }
    case CmpMessageKind::kData: {
      const std::uint32_t proc = dest;
      const bool exclusive = msg.exclusive;
      sched().schedule_at(at_or_now(when + config_.cache_hit_ps),
                          [this, proc, line, exclusive] {
                            fill_complete(proc, line, exclusive, sched().now());
                          });
      break;
    }
  }
}

}  // namespace specnoc::cmp
