file(REMOVE_RECURSE
  "CMakeFiles/bench_power_breakdown.dir/bench_power_breakdown.cpp.o"
  "CMakeFiles/bench_power_breakdown.dir/bench_power_breakdown.cpp.o.d"
  "bench_power_breakdown"
  "bench_power_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
