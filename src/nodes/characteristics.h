// Per-node-type physical characteristics (area, latency, handshake delays).
//
// Area and forward latency for the five fanout node designs are the paper's
// own Nangate-45nm post-mapping measurements (Section 5.2(a)). The fanin
// arbiter is not characterized in the paper; we assume values comparable to
// the baseline fanout (it is identical in all six networks, so its constants
// cancel in every comparison). Ack-generation delays and the opt
// non-speculative fast-forward latency are modeling assumptions, documented
// in DESIGN.md and overridable per run.
#pragma once

#include "noc/hooks.h"
#include "util/units.h"

namespace specnoc::nodes {

struct NodeCharacteristics {
  AreaUm2 area_um2 = 0.0;
  /// Input-to-output forward latency for header flits.
  TimePs fwd_header = 0;
  /// Forward latency for body/tail flits (differs only for the
  /// performance-optimized non-speculative node's fast-forward path).
  TimePs fwd_body = 0;
  /// Delay from the last req-out to the ack edge on the input channel.
  TimePs ack_delay = 0;
  /// Latency of the kill path for a misrouted flit: the 2-bit address
  /// compare plus the Ack Module, with no route computation or output
  /// channel allocation ("throttling with almost no hardware overhead",
  /// paper Section 1). Only meaningful for the non-speculative designs and
  /// the optimized speculative node's body-flit path.
  TimePs throttle_latency = 0;
  /// 0 = asynchronous (self-timed, the paper's design). Non-zero models a
  /// synchronous implementation of the same switch: every internal delay
  /// completes at the next clock edge — the quantization overhead the
  /// paper's asynchronous design avoids (its 'sub-cycle' operation).
  TimePs clock_period = 0;

  friend bool operator==(const NodeCharacteristics& a,
                         const NodeCharacteristics& b) {
    return a.area_um2 == b.area_um2 && a.fwd_header == b.fwd_header &&
           a.fwd_body == b.fwd_body && a.ack_delay == b.ack_delay &&
           a.throttle_latency == b.throttle_latency &&
           a.clock_period == b.clock_period;
  }
  friend bool operator!=(const NodeCharacteristics& a,
                         const NodeCharacteristics& b) {
    return !(a == b);
  }
};

/// Process-wide interner: returns a stable reference to a value equal to
/// `chars`, deduplicated. Nodes store the returned pointer instead of a
/// 48-byte copy — a network has millions of nodes but only a handful of
/// distinct characteristics values (per kind, plus per-run overrides), so
/// interning shrinks every node and puts the hot latency constants on
/// shared cache lines. Thread-safe; interned values are never freed.
const NodeCharacteristics& intern_characteristics(
    const NodeCharacteristics& chars);

/// Delay from `now` until work of raw duration `raw` completes under the
/// given clocking discipline: the raw delay itself when asynchronous
/// (clock_period == 0), or the distance to the first clock edge at least
/// `raw` after `now` when synchronous.
TimePs disciplined_delay(TimePs raw, TimePs clock_period, TimePs now);

/// Default characteristics for each node kind (paper values where reported).
const NodeCharacteristics& default_characteristics(noc::NodeKind kind);

}  // namespace specnoc::nodes
