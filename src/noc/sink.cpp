#include "noc/sink.h"

#include "noc/channel.h"

namespace specnoc::noc {

SinkNode::SinkNode(sim::Scheduler& scheduler, SimHooks& hooks,
                   std::uint32_t dest_id, TimePs consume_delay)
    : Node(scheduler, hooks, NodeKind::kSink,
           "dst" + std::to_string(dest_id)),
      dest_id_(dest_id), consume_delay_(consume_delay) {
  SPECNOC_EXPECTS(consume_delay >= 0);
}

void SinkNode::deliver(const Flit& flit, std::uint32_t in_port) {
  SPECNOC_EXPECTS(in_port == 0);
  SPECNOC_ASSERT(!busy_);
  busy_ = true;
  sched().schedule(consume_delay_, [this, flit] {
    record_op(NodeOp::kSinkConsume);
    ++flits_consumed_;
    if (hooks().traffic != nullptr) {
      hooks().traffic->on_flit_ejected(*flit.packet, dest_id_, flit.kind,
                                       sched().now());
    }
    busy_ = false;
    input(0).ack();
  });
}

void SinkNode::on_output_ack(std::uint32_t) {
  SPECNOC_UNREACHABLE("sinks have no output channels");
}

}  // namespace specnoc::noc
