
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nodes/characteristics.cpp" "src/nodes/CMakeFiles/specnoc_nodes.dir/characteristics.cpp.o" "gcc" "src/nodes/CMakeFiles/specnoc_nodes.dir/characteristics.cpp.o.d"
  "/root/repo/src/nodes/fanin_node.cpp" "src/nodes/CMakeFiles/specnoc_nodes.dir/fanin_node.cpp.o" "gcc" "src/nodes/CMakeFiles/specnoc_nodes.dir/fanin_node.cpp.o.d"
  "/root/repo/src/nodes/fanout_base.cpp" "src/nodes/CMakeFiles/specnoc_nodes.dir/fanout_base.cpp.o" "gcc" "src/nodes/CMakeFiles/specnoc_nodes.dir/fanout_base.cpp.o.d"
  "/root/repo/src/nodes/fanout_nodes.cpp" "src/nodes/CMakeFiles/specnoc_nodes.dir/fanout_nodes.cpp.o" "gcc" "src/nodes/CMakeFiles/specnoc_nodes.dir/fanout_nodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/specnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specnoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specnoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
