file(REMOVE_RECURSE
  "CMakeFiles/test_traffic.dir/traffic/benchmark_test.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/benchmark_test.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/driver_test.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/driver_test.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/pattern_test.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/pattern_test.cpp.o.d"
  "test_traffic"
  "test_traffic.pdb"
  "test_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
