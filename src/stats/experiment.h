// ExperimentRunner: the paper's measurement protocols (Section 5.1/5.2).
//
//  * Saturation throughput: backlogged sources; delivered flits/ns/source
//    over a measurement window after warmup. Multicast deliveries count
//    once per ejected copy, matching Table 1's higher multicast numbers.
//  * Network latency: open-loop exponential injection at 25% of *that
//    network's* saturation (converted to an injected rate via the measured
//    delivered/injected factor); messages generated during the measurement
//    window are tagged, and the run continues until all tagged messages
//    have delivered every header ("up to the arrival of all headers").
//  * Power: open-loop injection at 25% of the *Baseline's* saturation for
//    the benchmark (identical offered load for every architecture, the
//    paper's normalized energy-per-packet comparison); power = switching
//    energy over the measurement window / window duration.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cmp/config.h"
#include "core/architecture.h"
#include "core/config.h"
#include "core/mot_network.h"
#include "power/energy_model.h"
#include "sim/parallel_runner.h"
#include "stats/metrics.h"
#include "traffic/benchmark.h"
#include "util/units.h"
#include "workload/replay.h"
#include "workload/synth.h"
#include "workload/trace.h"

namespace specnoc::stats {

struct SaturationResult {
  double delivered_flits_per_ns = 0.0;  ///< per source — the GF/s figure
  double injected_flits_per_ns = 0.0;   ///< per source
  /// delivered / injected (>1 for multicast traffic).
  double delivery_factor = 1.0;
  /// Injected packets per generated message (>1 only on the serializing
  /// Baseline, where a k-destination message becomes k unicast packets).
  double message_expansion = 1.0;
};

struct LatencyResult {
  double mean_latency_ns = 0.0;
  double p95_latency_ns = 0.0;
  double max_latency_ns = 0.0;
  std::uint64_t messages_measured = 0;
  double offered_flits_per_ns = 0.0;  ///< injected rate per source
  /// False if tagged messages were still pending at the drain cap (the
  /// network was saturated at the requested load).
  bool drained = true;
};

struct PowerResult {
  double power_mw = 0.0;
  double node_power_mw = 0.0;
  double wire_power_mw = 0.0;
  double delivered_flits_per_ns = 0.0;
  double offered_flits_per_ns = 0.0;
  std::uint64_t throttled_flits = 0;
  std::uint64_t broadcast_ops = 0;
};

/// Builds a fresh network for one run; every measurement constructs its own
/// network so runs are independent and deterministic.
using NetworkFactory = std::function<std::unique_ptr<core::MotNetwork>()>;

/// Shared knobs for the batch APIs below.
struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = inline serial execution
  /// on the calling thread (the exact serial code path).
  unsigned jobs = 0;
  /// Tries per run before reporting it failed in its outcome slot.
  unsigned max_attempts = 2;
  /// Attach a MetricsRegistry to every run and return its snapshot in the
  /// outcome. Purely observational: results are identical either way.
  bool collect_metrics = false;
  /// Live progress lines to stderr every this many ms; 0 (default) =
  /// silent. Progress goes to stderr only, so stdout tables are identical
  /// with and without it.
  unsigned progress_interval_ms = 0;
  std::string progress_label = {};  ///< prefix for progress lines
  /// Epoch-sample every run (stats/telemetry.h). Enabling this implies
  /// collect_metrics — the series rides each outcome's MetricsSnapshot.
  /// Observational only: simulated results are identical either way.
  TelemetryOptions telemetry = {};
  /// Called once per run right after it completes, from the worker thread
  /// that finished it (runs complete in nondeterministic order under
  /// jobs > 1, so the callback must be thread-safe). `metrics` is the
  /// run's snapshot when one was collected and the run succeeded, else
  /// nullptr. This is the live-streaming hook: sweep shards emit NDJSON
  /// telemetry frames through it mid-batch.
  std::function<void(std::size_t index, const sim::RunOutcome& run,
                     const MetricsSnapshot* metrics)>
      on_run_done = {};
};

/// Probe bundle threaded through the single-run workers behind the batch
/// APIs: which measurements the caller wants out of one run. Every field is
/// optional; a default RunProbes measures nothing.
struct RunProbes {
  std::uint64_t* events = nullptr;     ///< kernel events the run executed
  /// Attach a MetricsRegistry for the run and snapshot it here afterwards.
  MetricsSnapshot* metrics = nullptr;
  /// Window-protocol shape of the run (empty when sequential). Filled even
  /// without `metrics`, so batch drivers can surface PDES occupancy in
  /// progress lines without paying for full metrics collection.
  PdesMetrics* pdes = nullptr;
  /// Epoch sampling; active only when `metrics` is also set (the sampled
  /// series is delivered inside the snapshot).
  TelemetryOptions telemetry = {};
};

/// One cell of a saturation grid. `factory` (when set) overrides the
/// architecture's canonical network — used for custom design points;
/// `seed` = 0 means the runner's own seed. `custom` is a stable label for
/// the factory's network (e.g. "{0,2}" for a speculation-map design
/// point): it is part of the cell's serialized identity (spec_key in
/// serialization.h), so sharded sweeps require it to uniquely name any
/// non-canonical factory. Leave it empty for canonical architectures.
struct SaturationSpec {
  core::Architecture arch = core::Architecture::kBaseline;
  traffic::BenchmarkId bench = traffic::BenchmarkId::kUniformRandom;
  std::uint64_t seed = 0;
  NetworkFactory factory;
  std::string custom;
};

struct SaturationOutcome {
  SaturationSpec spec;
  SaturationResult result;  ///< valid only when run.ok
  sim::RunOutcome run;
  /// Present when the grid ran with BatchOptions::collect_metrics.
  std::optional<MetricsSnapshot> metrics;
};

/// One open-loop latency run at an explicit injected rate. `custom` as in
/// SaturationSpec: a stable label identifying a non-canonical factory.
struct LatencySpec {
  core::Architecture arch = core::Architecture::kBaseline;
  traffic::BenchmarkId bench = traffic::BenchmarkId::kUniformRandom;
  double injected_flits_per_ns = 0.0;
  traffic::SimWindows windows;
  std::uint64_t seed = 0;
  NetworkFactory factory;
  std::string custom;
};

struct LatencyOutcome {
  LatencySpec spec;
  LatencyResult result;  ///< valid only when run.ok
  sim::RunOutcome run;
  /// Present when the sweep ran with BatchOptions::collect_metrics.
  std::optional<MetricsSnapshot> metrics;
};

/// One open-loop power run at an explicit injected rate. `custom` as in
/// SaturationSpec: a stable label identifying a non-canonical factory.
struct PowerSpec {
  core::Architecture arch = core::Architecture::kBaseline;
  traffic::BenchmarkId bench = traffic::BenchmarkId::kUniformRandom;
  double injected_flits_per_ns = 0.0;
  traffic::SimWindows windows;
  std::uint64_t seed = 0;
  NetworkFactory factory;
  std::string custom;
};

struct PowerOutcome {
  PowerSpec spec;
  PowerResult result;  ///< valid only when run.ok
  sim::RunOutcome run;
  /// Present when the sweep ran with BatchOptions::collect_metrics.
  std::optional<MetricsSnapshot> metrics;
};

/// One trace replay (workload.h subsystem). Replay is RNG-free, so unlike
/// the open-loop specs there is no seed: the run is fully determined by
/// (network, trace, mode). The trace itself cannot travel through shard
/// files — `trace_hash` is its serialized identity instead (part of
/// spec_key, so sharded sweeps refuse to mix outcomes of different
/// traces), and `workload` is the human-readable label rendered in
/// tables. Deserialized specs come back with a null trace; a process that
/// wants to *run* (rather than merge/render) them must re-attach it.
struct WorkloadResult {
  std::uint64_t messages = 0;           ///< trace records
  std::uint64_t messages_delivered = 0;
  std::uint64_t flits_delivered = 0;
  /// Time of the last header delivery — the workload's completion time
  /// under this network (the figure of merit for closed-loop replay).
  double makespan_ns = 0.0;
  double mean_latency_ns = 0.0;
  double p95_latency_ns = 0.0;
  double max_latency_ns = 0.0;
  /// False if the scheduler drained with messages still undelivered.
  bool completed = true;
};

struct WorkloadSpec {
  core::Architecture arch = core::Architecture::kBaseline;
  std::string workload;  ///< label ("DnnLayers", "Coherence", a trace stem)
  workload::ReplayMode mode = workload::ReplayMode::kClosedLoop;
  std::shared_ptr<const workload::Trace> trace;
  std::string trace_hash;  ///< workload::trace_hash(*trace)
  NetworkFactory factory;
  std::string custom;
};

struct WorkloadOutcome {
  WorkloadSpec spec;
  WorkloadResult result;  ///< valid only when run.ok
  sim::RunOutcome run;
  /// Present when the grid ran with BatchOptions::collect_metrics.
  std::optional<MetricsSnapshot> metrics;
};

/// Builds a WorkloadSpec with the trace attached and its hash computed.
WorkloadSpec make_workload_spec(core::Architecture arch, std::string label,
                                workload::ReplayMode mode,
                                std::shared_ptr<const workload::Trace> trace);

/// One CMP co-simulation run (cmp/system.h): per-processor access streams
/// driven closed-loop through caches + directory + DRAM on a fresh network.
/// The figure of merit is application makespan — the end-to-end number the
/// source paper's open-loop protocols cannot produce. RNG-free given the
/// access trace; like WorkloadSpec, the trace travels as a hash
/// (`access_hash`) and deserialized specs must be re-armed via
/// make_cmp_spec before running.
struct CmpResult {
  std::uint64_t accesses = 0;   ///< stream accesses retired
  double makespan_ns = 0.0;     ///< last stream retirement
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t mshr_merges = 0;
  std::uint64_t inv_messages = 0;    ///< directory invalidation sends
  std::uint64_t inv_multicasts = 0;  ///< those reaching >= 2 endpoints
  std::uint64_t inv_targets = 0;     ///< summed invalidation fan-out
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_conflicts = 0;
  std::uint64_t messages = 0;         ///< protocol messages on the network
  std::uint64_t flits_delivered = 0;
  double energy_nj = 0.0;  ///< switching energy over the whole run
  /// False if the scheduler drained with accesses still un-retired.
  bool completed = true;
};

struct CmpSpec {
  core::Architecture arch = core::Architecture::kBaseline;
  std::string workload;  ///< label ("LuBlocks", "BarnesRegions")
  std::shared_ptr<const workload::AccessTrace> access;
  std::string access_hash;  ///< workload::access_trace_hash(*access)
  NetworkFactory factory;
  std::string custom;
};

struct CmpOutcome {
  CmpSpec spec;
  CmpResult result;  ///< valid only when run.ok
  sim::RunOutcome run;
  /// Present when the grid ran with BatchOptions::collect_metrics.
  std::optional<MetricsSnapshot> metrics;
};

/// Builds a CmpSpec with the access trace attached and its hash computed.
CmpSpec make_cmp_spec(core::Architecture arch, std::string label,
                      std::shared_ptr<const workload::AccessTrace> access);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(core::NetworkConfig config, std::uint64_t seed = 1,
                            power::EnergyModelParams energy = {});

  /// Saturation throughput (memoized per architecture x benchmark).
  const SaturationResult& saturation(core::Architecture arch,
                                     traffic::BenchmarkId bench);

  /// Seeds the saturation() memoization cache with an externally computed
  /// result — e.g. outcomes loaded from a sharded sweep's merged shard
  /// file — so the protocol methods reuse it instead of re-simulating.
  /// The result must come from a canonical run (runner seed, canonical
  /// network); an existing cache entry is left untouched.
  void prime_saturation(core::Architecture arch, traffic::BenchmarkId bench,
                        const SaturationResult& result);

  /// Latency at an explicit injected rate (flits/ns/source).
  LatencyResult measure_latency(core::Architecture arch,
                                traffic::BenchmarkId bench,
                                double injected_flits_per_ns,
                                traffic::SimWindows windows);

  /// The paper's protocol: latency at `fraction` of this network's own
  /// saturation, with the benchmark's default windows.
  LatencyResult latency_at_fraction(core::Architecture arch,
                                    traffic::BenchmarkId bench,
                                    double fraction = 0.25);

  /// Power at an explicit injected rate.
  PowerResult measure_power(core::Architecture arch,
                            traffic::BenchmarkId bench,
                            double injected_flits_per_ns,
                            traffic::SimWindows windows);

  /// The paper's protocol: power at `fraction` of the *Baseline's*
  /// saturation for this benchmark.
  PowerResult power_at_baseline_fraction(core::Architecture arch,
                                         traffic::BenchmarkId bench,
                                         double fraction = 0.25);

  const core::NetworkConfig& config() const { return config_; }

  /// Windows used for saturation runs (shorter than latency windows; the
  /// backlogged estimator converges quickly).
  static traffic::SimWindows saturation_windows();

  /// Factory-based variants for custom design points (e.g. arbitrary
  /// speculation maps); the architecture-based methods delegate to these.
  /// These are const and touch no shared mutable state, so they are safe to
  /// call concurrently from batch workers.
  SaturationResult run_saturation(const NetworkFactory& factory,
                                  traffic::BenchmarkId bench) const;
  /// Replays `trace` on a fresh network and reports its delivery profile.
  /// RNG-free and const: safe to call concurrently from batch workers.
  WorkloadResult run_workload(const NetworkFactory& factory,
                              const workload::Trace& trace,
                              workload::ReplayMode mode) const;
  LatencyResult measure_latency(const NetworkFactory& factory,
                                traffic::BenchmarkId bench,
                                double injected_flits_per_ns,
                                traffic::SimWindows windows) const;
  PowerResult measure_power(const NetworkFactory& factory,
                            traffic::BenchmarkId bench,
                            double injected_flits_per_ns,
                            traffic::SimWindows windows) const;

  /// Batch APIs: execute the given independent runs on options.jobs worker
  /// threads (sim::ParallelRunner). Outcomes are aggregated in spec order,
  /// so results are bit-identical to the serial path for any thread count.
  /// A run that throws is retried and, failing that, reported per-spec in
  /// its outcome — never process-fatal.
  ///
  /// Saturation outcomes computed with the default seed and factory also
  /// warm the saturation() memoization cache, so architecture-based
  /// protocol methods called afterwards reuse them for free.
  std::vector<SaturationOutcome> run_saturation_grid(
      const std::vector<SaturationSpec>& specs,
      const BatchOptions& options = {});
  std::vector<LatencyOutcome> run_latency_sweep(
      const std::vector<LatencySpec>& specs,
      const BatchOptions& options = {}) const;
  std::vector<PowerOutcome> run_power_sweep(
      const std::vector<PowerSpec>& specs,
      const BatchOptions& options = {}) const;
  /// Specs must carry their trace (make_workload_spec); a spec whose trace
  /// is null fails in its outcome slot with a ConfigError message.
  std::vector<WorkloadOutcome> run_workload_grid(
      const std::vector<WorkloadSpec>& specs,
      const BatchOptions& options = {}) const;

  /// Co-simulates `access` on a fresh network. Closed-loop (zero-lookahead
  /// feedback), so canonical networks are always built sequential; a
  /// partitioned custom factory raises ConfigError. RNG-free and const:
  /// safe to call concurrently from batch workers.
  CmpResult run_cmp(const NetworkFactory& factory,
                    const workload::AccessTrace& access,
                    const cmp::CmpConfig& cmp = {}) const;
  /// Specs must carry their access trace (make_cmp_spec); a spec whose
  /// trace is null fails in its outcome slot with a ConfigError message.
  /// All runs use `cmp` (the cache/DRAM geometry is grid-uniform, like the
  /// runner's NetworkConfig).
  std::vector<CmpOutcome> run_cmp_grid(const std::vector<CmpSpec>& specs,
                                       const BatchOptions& options = {},
                                       const cmp::CmpConfig& cmp = {}) const;

 private:
  NetworkFactory factory_for(core::Architecture arch) const;
  /// Resolves a spec's network: an explicit factory wins; otherwise a
  /// non-empty `custom` label is rebuilt from the process-wide
  /// ArchitectureRegistry (how deserialized design points — whose
  /// factories cannot travel through shard files — come back to life);
  /// otherwise the architecture's canonical network.
  NetworkFactory factory_for_spec(core::Architecture arch,
                                  const NetworkFactory& factory,
                                  const std::string& custom) const;
  /// As factory_for, but with sim_threads forced to 1. The latency drain
  /// loop, power accounting, and closed-loop replay are event-granular
  /// protocols that have no windowed equivalent, so their canonical
  /// networks are always built sequential regardless of config_.sim_threads
  /// (custom factories are the caller's contract; a partitioned network
  /// handed to these protocols raises ConfigError).
  NetworkFactory sequential_factory_for(core::Architecture arch) const;
  NetworkFactory sequential_factory_for_spec(core::Architecture arch,
                                             const NetworkFactory& factory,
                                             const std::string& custom) const;

  /// Single-run workers behind both the public serial methods and the
  /// batch APIs; `probes` selects the measurements to harvest (see
  /// RunProbes). A run that throws dumps the telemetry flight recorder to
  /// stderr (when sampling was active) before the exception propagates.
  SaturationResult saturation_run(const NetworkFactory& factory,
                                  traffic::BenchmarkId bench,
                                  std::uint64_t seed,
                                  const RunProbes& probes) const;
  LatencyResult latency_run(const NetworkFactory& factory,
                            traffic::BenchmarkId bench,
                            double injected_flits_per_ns,
                            traffic::SimWindows windows, std::uint64_t seed,
                            const RunProbes& probes) const;
  PowerResult power_run(const NetworkFactory& factory,
                        traffic::BenchmarkId bench,
                        double injected_flits_per_ns,
                        traffic::SimWindows windows, std::uint64_t seed,
                        const RunProbes& probes) const;
  WorkloadResult workload_run(const NetworkFactory& factory,
                              const workload::Trace& trace,
                              workload::ReplayMode mode,
                              const RunProbes& probes) const;
  CmpResult cmp_run(const NetworkFactory& factory,
                    const workload::AccessTrace& access,
                    const cmp::CmpConfig& cmp, const RunProbes& probes) const;

  core::NetworkConfig config_;
  std::uint64_t seed_;
  power::EnergyModelParams energy_;
  std::map<std::pair<core::Architecture, traffic::BenchmarkId>,
           SaturationResult>
      saturation_cache_;
};

}  // namespace specnoc::stats
