#include "nodes/fanout_nodes.h"

#include <gtest/gtest.h>

#include "../support/test_nodes.h"
#include "noc/channel.h"
#include "sim/scheduler.h"

namespace specnoc::nodes {
namespace {

using noc::DestRange;
using noc::DestSet;
using noc::Flit;
using noc::Packet;
using specnoc::testing::DriverEndpoint;
using specnoc::testing::RecordingEndpoint;

/// Fixture wiring: driver -> (channel in) -> node -> (two channels out) ->
/// two recorders. Node covers destinations {0,1} (top) and {2,3} (bottom).
template <typename NodeT>
class FanoutHarness {
 public:
  explicit FanoutHarness(NodeCharacteristics chars,
                         DestRange top = DestRange{0, 2},
                         DestRange bottom = DestRange{2, 4},
                         TimePs sink_ack_delay = 0)
      : node(sched, hooks, "dut", chars, top, bottom),
        driver(sched, hooks),
        top_sink(sched, hooks, sink_ack_delay),
        bottom_sink(sched, hooks, sink_ack_delay),
        in(sched, hooks, {.delay_fwd = 5, .delay_ack = 5, .length = 0}, "in"),
        out0(sched, hooks, {.delay_fwd = 5, .delay_ack = 5, .length = 0},
             "out0"),
        out1(sched, hooks, {.delay_fwd = 5, .delay_ack = 5, .length = 0},
             "out1") {
    in.connect(driver, 0, node, 0);
    out0.connect(node, 0, top_sink, 0);
    out1.connect(node, 1, bottom_sink, 0);
  }

  const Packet& make_packet(DestSet dests, std::uint32_t num_flits = 5) {
    const noc::Message& msg = store.create_message(0, dests, 0, false);
    return store.create_packet(msg, dests, num_flits);
  }

  /// Sends all flits of the packet back-to-back (respecting handshakes).
  void send_packet(const Packet& pkt) {
    next_seq_ = 1;
    driver.on_ack = [this, &pkt](std::uint32_t port) {
      if (next_seq_ < pkt.num_flits) {
        driver.send(port, make_flit(pkt, next_seq_++));
      }
    };
    driver.send(0, make_flit(pkt, 0));
  }

  sim::Scheduler sched;
  noc::SimHooks hooks;
  noc::PacketStore store;
  NodeT node;
  DriverEndpoint driver;
  RecordingEndpoint top_sink;
  RecordingEndpoint bottom_sink;
  noc::Channel in, out0, out1;

 private:
  std::uint32_t next_seq_ = 0;
};

NodeCharacteristics test_chars() {
  return {.area_um2 = 100.0, .fwd_header = 100, .fwd_body = 40,
          .ack_delay = 10};
}

TEST(NonSpecFanoutTest, UnicastRoutesToSingleOutput) {
  FanoutHarness<NonSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(2));  // bottom subtree
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(h.top_sink.deliveries.size(), 0u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 5u);
}

TEST(NonSpecFanoutTest, MulticastToBothReplicates) {
  FanoutHarness<NonSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(1) | DestSet::single(3));
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(h.top_sink.deliveries.size(), 5u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 5u);
}

TEST(NonSpecFanoutTest, MisroutedPacketThrottledEntirely) {
  FanoutHarness<NonSpecFanoutNode> h(test_chars());
  // Destination 7 lies in neither subtree of this node.
  const Packet& pkt = h.make_packet(DestSet::single(7));
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(h.top_sink.deliveries.size(), 0u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 0u);
  // All five flits were consumed and acked.
  EXPECT_EQ(h.driver.ack_times.size(), 5u);
}

TEST(NonSpecFanoutTest, HeaderForwardLatency) {
  FanoutHarness<NonSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(0), 1);
  h.send_packet(pkt);
  h.sched.run();
  ASSERT_EQ(h.top_sink.deliveries.size(), 1u);
  // in wire 5 + fwd 100 + out wire 5 = 110.
  EXPECT_EQ(h.top_sink.deliveries[0].when, 110);
}

TEST(NonSpecFanoutTest, AckAfterForwardTiming) {
  FanoutHarness<NonSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(0), 1);
  h.send_packet(pkt);
  h.sched.run();
  ASSERT_EQ(h.driver.ack_times.size(), 1u);
  // deliver@5, process@105 (send), ack gen +10, ack wire +5 = 120.
  EXPECT_EQ(h.driver.ack_times[0].second, 120);
}

TEST(SpecFanoutTest, AlwaysBroadcastsUnicast) {
  FanoutHarness<SpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(0));
  h.send_packet(pkt);
  h.sched.run();
  // Both outputs get all five flits, even though only top is correct.
  EXPECT_EQ(h.top_sink.deliveries.size(), 5u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 5u);
}

TEST(SpecFanoutTest, BroadcastsMisroutedPacketToo) {
  FanoutHarness<SpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(7), 2);
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(h.top_sink.deliveries.size(), 2u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 2u);
}

TEST(SpecFanoutTest, CElementWaitsForBothOutputs) {
  // Bottom sink acks slowly; the input ack must still occur only after the
  // flit was issued on both outputs — but issuing does not wait for the
  // downstream ack, so back-to-back flits are limited by the slow output.
  FanoutHarness<SpecFanoutNode> h(test_chars(),
                                  DestRange{0, 2}, DestRange{2, 4},
                                  /*sink_ack_delay=*/200);
  const Packet& pkt = h.make_packet(DestSet::single(0), 2);
  h.send_packet(pkt);
  h.sched.run();
  ASSERT_EQ(h.top_sink.deliveries.size(), 2u);
  ASSERT_EQ(h.bottom_sink.deliveries.size(), 2u);
  // First flit: deliver@5, send both@105 -> sinks at 110. Sinks ack at
  // 310 (200 delay), wire 5 -> outputs free at 315. Second flit was
  // delivered at 5+100+10+5(ack gen+wire)=120... then waits: processed
  // at 120+40(body fwd)=160, outputs busy until 315, so sent at 315,
  // arriving 320.
  EXPECT_EQ(h.top_sink.deliveries[1].when, 320);
}

TEST(SpecFanoutTest, FasterThanNonSpecForSameTraffic) {
  NodeCharacteristics spec = test_chars();
  spec.fwd_header = spec.fwd_body = 10;  // speculative nodes are fast
  FanoutHarness<SpecFanoutNode> fast(spec);
  FanoutHarness<NonSpecFanoutNode> slow(test_chars());
  const Packet& p1 = fast.make_packet(DestSet::single(0), 1);
  const Packet& p2 = slow.make_packet(DestSet::single(0), 1);
  fast.send_packet(p1);
  slow.send_packet(p2);
  fast.sched.run();
  slow.sched.run();
  EXPECT_LT(fast.top_sink.deliveries[0].when,
            slow.top_sink.deliveries[0].when);
}

TEST(OptSpecFanoutTest, HeaderAndTailBroadcastBodyRouted) {
  FanoutHarness<OptSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(0), 5);  // top is correct
  h.send_packet(pkt);
  h.sched.run();
  // Top (correct): header + 3 bodies + tail = 5.
  EXPECT_EQ(h.top_sink.deliveries.size(), 5u);
  // Bottom (wrong): header + tail only = 2.
  ASSERT_EQ(h.bottom_sink.deliveries.size(), 2u);
  EXPECT_TRUE(h.bottom_sink.deliveries[0].flit.is_header());
  EXPECT_TRUE(h.bottom_sink.deliveries[1].flit.is_tail());
}

TEST(OptSpecFanoutTest, MulticastBodyGoesBothWays) {
  FanoutHarness<OptSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(0) | DestSet::single(2), 5);
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(h.top_sink.deliveries.size(), 5u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 5u);
}

TEST(OptSpecFanoutTest, MisroutedBodyThrottled) {
  FanoutHarness<OptSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(7), 5);
  h.send_packet(pkt);
  h.sched.run();
  // Header and tail are still (wastefully) broadcast; bodies die here.
  EXPECT_EQ(h.top_sink.deliveries.size(), 2u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 2u);
}

TEST(OptNonSpecFanoutTest, BodyFastForwardLatency) {
  FanoutHarness<OptNonSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(0), 2);
  h.send_packet(pkt);
  h.sched.run();
  ASSERT_EQ(h.top_sink.deliveries.size(), 2u);
  // Header: 5 + 100 + 5 = 110.
  EXPECT_EQ(h.top_sink.deliveries[0].when, 110);
  // Header acked at 120; driver sends tail, deliver@125, fast fwd 40,
  // out wire 5 -> 170.
  EXPECT_EQ(h.top_sink.deliveries[1].when, 170);
}

TEST(OptNonSpecFanoutTest, RoutesLikeNonSpec) {
  FanoutHarness<OptNonSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(1) | DestSet::single(2), 5);
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(h.top_sink.deliveries.size(), 5u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 5u);
}

TEST(OptNonSpecFanoutTest, ThrottlesMisrouted) {
  FanoutHarness<OptNonSpecFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(6), 5);
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(h.top_sink.deliveries.size(), 0u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 0u);
  EXPECT_EQ(h.driver.ack_times.size(), 5u);
}

TEST(BaselineFanoutTest, RoutesUnicast) {
  FanoutHarness<BaselineFanoutNode> h(test_chars());
  const Packet& pkt = h.make_packet(DestSet::single(3), 5);
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(h.top_sink.deliveries.size(), 0u);
  EXPECT_EQ(h.bottom_sink.deliveries.size(), 5u);
}

TEST(FanoutNodesTest, EnergyOpsReported) {
  class CountingEnergy : public noc::EnergyObserver {
   public:
    void on_node_op(const noc::Node&, noc::NodeOp op, TimePs) override {
      switch (op) {
        case noc::NodeOp::kBroadcast: ++broadcasts; break;
        case noc::NodeOp::kRouteForward: ++routes; break;
        case noc::NodeOp::kThrottle: ++throttles; break;
        case noc::NodeOp::kFastForward: ++fast; break;
        default: break;
      }
    }
    void on_channel_flit(LengthUm, TimePs) override { ++channel_flits; }
    int broadcasts = 0, routes = 0, throttles = 0, fast = 0;
    int channel_flits = 0;
  };

  FanoutHarness<OptSpecFanoutNode> h(test_chars());
  CountingEnergy energy;
  h.hooks.energy = &energy;
  const Packet& pkt = h.make_packet(DestSet::single(0), 5);
  h.send_packet(pkt);
  h.sched.run();
  EXPECT_EQ(energy.broadcasts, 2);  // header + tail
  EXPECT_EQ(energy.routes, 3);      // three body flits
  EXPECT_EQ(energy.throttles, 0);
  // 5 flits in + 5 out on top + 2 out on bottom.
  EXPECT_EQ(energy.channel_flits, 12);
}

}  // namespace
}  // namespace specnoc::nodes
