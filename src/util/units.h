// Physical units used throughout the simulator.
//
// Time is integer picoseconds (the asynchronous node latencies the paper
// reports are tens-to-hundreds of ps, so 1 ps resolution loses nothing and
// integer time keeps the event queue deterministic). Energy is double
// femtojoules; area is double square micrometres.
#pragma once

#include <cstdint>

namespace specnoc {

/// Simulation time in picoseconds.
using TimePs = std::int64_t;

/// Energy in femtojoules.
using EnergyFj = double;

/// Area in square micrometres.
using AreaUm2 = double;

/// Length in micrometres.
using LengthUm = double;

namespace literals {

constexpr TimePs operator""_ps(unsigned long long v) {
  return static_cast<TimePs>(v);
}
constexpr TimePs operator""_ns(unsigned long long v) {
  return static_cast<TimePs>(v) * 1000;
}
constexpr TimePs operator""_us(unsigned long long v) {
  return static_cast<TimePs>(v) * 1'000'000;
}

}  // namespace literals

/// Converts picoseconds to (fractional) nanoseconds for reporting.
constexpr double ps_to_ns(TimePs t) { return static_cast<double>(t) / 1e3; }

/// Flits per nanosecond, the paper's "GF/s" unit.
constexpr double flits_per_ns(double flits, TimePs window) {
  return window > 0 ? flits / ps_to_ns(window) : 0.0;
}

/// Converts accumulated femtojoules over a picosecond window to milliwatts.
/// 1 fJ / 1 ps = 1 mW exactly, so this is a plain ratio.
constexpr double fj_over_ps_to_mw(EnergyFj energy, TimePs window) {
  return window > 0 ? energy / static_cast<double>(window) : 0.0;
}

}  // namespace specnoc
