#include "workload/synth.h"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "sim/shard.h"
#include "util/contract.h"
#include "util/error.h"
#include "util/rng.h"

namespace specnoc::workload {

namespace {

noc::DestSet mask_of_range(std::uint32_t first, std::uint32_t count) {
  return noc::DestSet::range(first, first + count);
}

}  // namespace

Trace make_dnn_workload(const DnnWorkloadParams& params) {
  if (params.n < 3 || params.n > 64) {
    throw ConfigError(
        "dnn workload needs n in [3, 64] (weight source + PEs + reducer), "
        "got n=" + std::to_string(params.n));
  }
  if (params.flits == 0) throw ConfigError("dnn workload: flits must be >= 1");
  if (params.layers.empty()) {
    throw ConfigError("dnn workload: at least one layer required");
  }
  if (params.layer_stagger < 0 || params.compute_delay < 0) {
    throw ConfigError("dnn workload: times must be >= 0");
  }
  const std::uint32_t weight_source = 0;
  const std::uint32_t reducer = params.n - 1;

  Trace trace;
  trace.meta.n = params.n;
  trace.meta.generator = to_string(SynthId::kDnnLayers);
  std::uint64_t next_id = 0;
  const auto add = [&](std::uint32_t src, noc::DestSet dests, TimePs earliest,
                       TimePs delay,
                       std::vector<std::uint64_t> deps) -> std::uint64_t {
    const std::uint64_t id = next_id++;
    TraceRecord rec;
    rec.id = id;
    rec.src = src;
    rec.dests = dests;
    rec.size = params.flits;
    rec.earliest = earliest;
    rec.delay = delay;
    rec.deps = std::move(deps);
    trace.records.push_back(std::move(rec));
    return id;
  };

  // Partial sums of the previous layer: the next layer's activations wait
  // on the reduction being complete.
  std::vector<std::uint64_t> prev_partials;
  for (std::size_t l = 0; l < params.layers.size(); ++l) {
    const DnnLayer& layer = params.layers[l];
    if (layer.pes == 0 || layer.pes > params.n - 2) {
      throw ConfigError("dnn workload layer " + std::to_string(l) +
                        ": pes must be in [1, n-2] = [1, " +
                        std::to_string(params.n - 2) + "], got " +
                        std::to_string(layer.pes));
    }
    if (layer.weight_tiles == 0 || layer.activation_tiles == 0) {
      throw ConfigError("dnn workload layer " + std::to_string(l) +
                        ": weight_tiles and activation_tiles must be >= 1");
    }
    const TimePs layer_start =
        static_cast<TimePs>(l) * params.layer_stagger;
    const noc::DestSet pe_mask = mask_of_range(1, layer.pes);

    // Weight broadcast: every tile is multicast from the weight source to
    // all of the layer's PEs. No dependencies — weights stream in as soon
    // as the layer's slot opens.
    std::vector<std::uint64_t> weights;
    for (std::uint32_t t = 0; t < layer.weight_tiles; ++t) {
      weights.push_back(add(weight_source, pe_mask, layer_start, 0, {}));
    }

    // Activations: unicast into each PE. Layer 0 reads from the weight
    // source (external input); later layers read the previous reduction.
    const std::uint32_t act_source = l == 0 ? weight_source : reducer;
    std::vector<std::vector<std::uint64_t>> activations(layer.pes);
    for (std::uint32_t t = 0; t < layer.activation_tiles; ++t) {
      for (std::uint32_t pe = 0; pe < layer.pes; ++pe) {
        activations[pe].push_back(add(act_source, noc::DestSet::single(1 + pe),
                                      layer_start, 0, prev_partials));
      }
    }

    // Reduction fan-in: each PE computes for compute_delay once its weights
    // and activations are in, then unicasts its partial sum to the reducer.
    std::vector<std::uint64_t> partials;
    for (std::uint32_t pe = 0; pe < layer.pes; ++pe) {
      std::vector<std::uint64_t> deps = weights;
      deps.insert(deps.end(), activations[pe].begin(), activations[pe].end());
      partials.push_back(add(1 + pe, noc::DestSet::single(reducer), layer_start,
                             params.compute_delay, std::move(deps)));
    }
    prev_partials = std::move(partials);
  }
  return trace;
}

CoherenceWorkload make_coherence_workload(
    const CoherenceWorkloadParams& params) {
  if (params.n < 2 || params.n > 64) {
    throw ConfigError("coherence workload needs n in [2, 64], got n=" +
                      std::to_string(params.n));
  }
  if (params.flits == 0) {
    throw ConfigError("coherence workload: flits must be >= 1");
  }
  if (params.writes_per_proc == 0) {
    throw ConfigError("coherence workload: writes_per_proc must be >= 1");
  }
  const std::uint32_t sharer_cap =
      std::min(params.max_sharers, params.n - 1);
  if (params.min_sharers == 0 || params.min_sharers > sharer_cap) {
    throw ConfigError(
        "coherence workload: min_sharers must be in [1, min(max_sharers, "
        "n-1)] = [1, " + std::to_string(sharer_cap) + "], got " +
        std::to_string(params.min_sharers));
  }
  if (params.think_delay < 0) {
    throw ConfigError("coherence workload: think_delay must be >= 0");
  }

  // Per-processor RNG streams split from one root, the same idiom the
  // open-loop TrafficDriver uses for its sources: sharer sets of different
  // processors are independent, and the whole trace is a function of seed.
  Rng root(params.seed);
  std::vector<Rng> procs;
  procs.reserve(params.n);
  for (std::uint32_t p = 0; p < params.n; ++p) procs.push_back(root.split());

  CoherenceWorkload workload;
  workload.trace.meta.n = params.n;
  workload.trace.meta.generator = to_string(SynthId::kCoherence);
  std::uint64_t next_id = 0;
  // Round-major so ids increase while every dependency points backward.
  std::vector<std::vector<std::uint64_t>> prev_acks(params.n);
  for (std::uint32_t round = 0; round < params.writes_per_proc; ++round) {
    for (std::uint32_t p = 0; p < params.n; ++p) {
      const auto num_sharers = static_cast<std::uint32_t>(
          procs[p].uniform_int(params.min_sharers, sharer_cap));
      // Sample distinct sharers among the other n-1 processors.
      std::vector<std::uint32_t> picks =
          procs[p].sample_without_replacement(params.n - 1, num_sharers);
      noc::DestSet sharers;
      std::vector<std::uint32_t> sharer_ids;
      for (const std::uint32_t pick : picks) {
        const std::uint32_t sharer = pick >= p ? pick + 1 : pick;
        sharers.set(sharer);
        sharer_ids.push_back(sharer);
      }

      CoherenceWrite write;
      write.writer = p;
      write.inv = workload.trace.records.size();
      TraceRecord inv;
      inv.id = next_id++;
      inv.src = p;
      inv.dests = sharers;
      inv.size = params.flits;
      inv.delay = round == 0 ? 0 : params.think_delay;
      inv.deps = prev_acks[p];  // all acks of this proc's previous write
      workload.trace.records.push_back(inv);

      std::vector<std::uint64_t> acks;
      for (const std::uint32_t sharer : sharer_ids) {
        write.acks.push_back(workload.trace.records.size());
        TraceRecord ack;
        ack.id = next_id++;
        ack.src = sharer;
        ack.dests = noc::DestSet::single(p);
        ack.size = params.flits;
        ack.deps = {inv.id};
        workload.trace.records.push_back(std::move(ack));
        acks.push_back(workload.trace.records.back().id);
      }
      prev_acks[p] = std::move(acks);
      workload.writes.push_back(std::move(write));
    }
  }
  return workload;
}

const char* to_string(SynthId id) {
  switch (id) {
    case SynthId::kDnnLayers:
      return "DnnLayers";
    case SynthId::kCoherence:
      return "Coherence";
  }
  SPECNOC_UNREACHABLE("SynthId");
}

SynthId synth_from_string(const std::string& name) {
  if (name == "DnnLayers") return SynthId::kDnnLayers;
  if (name == "Coherence") return SynthId::kCoherence;
  throw ConfigError("unknown workload synthesizer '" + name +
                    "' (valid synthesizers: DnnLayers, Coherence)");
}

Trace make_synth_workload(SynthId id, std::uint32_t n, std::uint32_t flits,
                          std::uint64_t seed) {
  switch (id) {
    case SynthId::kDnnLayers: {
      DnnWorkloadParams params;
      params.n = n;
      params.flits = flits;
      const std::uint32_t pes = n - 2;
      params.layers = {DnnLayer{std::min<std::uint32_t>(4, pes), 2, 1},
                       DnnLayer{pes, 2, 1}};
      return make_dnn_workload(params);
    }
    case SynthId::kCoherence: {
      CoherenceWorkloadParams params;
      params.n = n;
      params.flits = flits;
      params.seed = seed;
      return make_coherence_workload(params).trace;
    }
  }
  SPECNOC_UNREACHABLE("SynthId");
}

// ---------------------------------------------------------------------------
// Access streams.

namespace {

// Line-index regions of the synthetic address map. Disjoint by construction
// so data, barrier flags, and lock words never alias a cache line.
constexpr std::uint64_t kLineBytes = 64;  // synthesizers emit line-aligned
constexpr std::uint64_t kDataBase = 0;
constexpr std::uint64_t kTreeBase = 1ull << 16;
constexpr std::uint64_t kBodyBase = 1ull << 17;
constexpr std::uint64_t kCellBase = 1ull << 18;
constexpr std::uint64_t kBarrierBase = 1ull << 20;
constexpr std::uint64_t kLockBase = 1ull << 21;

std::uint64_t line_addr(std::uint64_t base, std::uint64_t index) {
  return (base + index) * kLineBytes;
}

// Per-proc think jitter in [think/2, 3*think/2): keeps streams from issuing
// in lockstep without changing the mean compute per access.
TimePs jitter(Rng& rng, TimePs think) {
  if (think <= 0) return 0;
  return think / 2 + static_cast<TimePs>(
                         rng.uniform_below(static_cast<std::uint64_t>(think)));
}

}  // namespace

const char* to_string(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return "Read";
    case AccessKind::kWrite:
      return "Write";
    case AccessKind::kBarrier:
      return "Barrier";
    case AccessKind::kLockAcquire:
      return "LockAcquire";
    case AccessKind::kLockRelease:
      return "LockRelease";
  }
  SPECNOC_UNREACHABLE("AccessKind");
}

void AccessTrace::validate() const {
  if (n < 2) {
    throw ConfigError("access trace needs n >= 2 processors, got n=" +
                      std::to_string(n));
  }
  if (streams.size() != n) {
    throw ConfigError("access trace has " + std::to_string(streams.size()) +
                      " streams for n=" + std::to_string(n) + " processors");
  }
  std::vector<std::uint64_t> barrier_seq;
  for (std::uint32_t p = 0; p < n; ++p) {
    std::vector<std::uint64_t> barriers;
    bool holding = false;
    std::uint64_t held_lock = 0;
    for (std::size_t i = 0; i < streams[p].size(); ++i) {
      const MemAccess& a = streams[p][i];
      const std::string at = "access trace proc " + std::to_string(p) +
                             " access " + std::to_string(i);
      if (a.think < 0) throw ConfigError(at + ": think must be >= 0");
      switch (a.kind) {
        case AccessKind::kRead:
        case AccessKind::kWrite:
          break;
        case AccessKind::kBarrier:
          if (holding) {
            throw ConfigError(at + ": barrier while holding a lock");
          }
          barriers.push_back(a.addr);
          break;
        case AccessKind::kLockAcquire:
          if (holding) {
            throw ConfigError(at + ": nested lock acquire");
          }
          holding = true;
          held_lock = a.addr;
          break;
        case AccessKind::kLockRelease:
          if (!holding || held_lock != a.addr) {
            throw ConfigError(at + ": release without matching acquire");
          }
          holding = false;
          break;
      }
    }
    if (holding) {
      throw ConfigError("access trace proc " + std::to_string(p) +
                        ": lock held at end of stream");
    }
    if (p == 0) {
      barrier_seq = std::move(barriers);
    } else if (barriers != barrier_seq) {
      throw ConfigError("access trace proc " + std::to_string(p) +
                        ": barrier sequence differs from proc 0 (" +
                        std::to_string(barriers.size()) + " vs " +
                        std::to_string(barrier_seq.size()) + " barriers)");
    }
  }
}

std::size_t AccessTrace::total_accesses() const {
  std::size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  return total;
}

std::string AccessTrace::canonical() const {
  std::string out = "access/1;n=" + std::to_string(n) + ";gen=" + generator;
  for (std::uint32_t p = 0; p < streams.size(); ++p) {
    out += ";p" + std::to_string(p) + ":";
    for (const MemAccess& a : streams[p]) {
      out += std::to_string(static_cast<unsigned>(a.kind)) + "," +
             std::to_string(a.addr) + "," + std::to_string(a.think) + ";";
    }
  }
  return out;
}

std::string access_trace_hash(const AccessTrace& trace) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(
                    sim::fnv1a64(trace.canonical())));
  return buffer;
}

AccessTrace make_lu_access_trace(const LuAccessParams& params) {
  if (params.n < 2) {
    throw ConfigError("lu access trace needs n >= 2, got n=" +
                      std::to_string(params.n));
  }
  if (params.blocks < 2) {
    throw ConfigError("lu access trace: blocks must be >= 2");
  }
  if (params.reads_per_block == 0) {
    throw ConfigError("lu access trace: reads_per_block must be >= 1");
  }
  if (params.think < 0) {
    throw ConfigError("lu access trace: think must be >= 0");
  }
  Rng root(params.seed);
  std::vector<Rng> rngs;
  rngs.reserve(params.n);
  for (std::uint32_t p = 0; p < params.n; ++p) rngs.push_back(root.split());

  AccessTrace trace;
  trace.n = params.n;
  trace.generator = to_string(AccessSynthId::kLuBlocks);
  trace.streams.resize(params.n);
  const std::uint32_t B = params.blocks;
  const auto block_line = [&](std::uint32_t i, std::uint32_t j) {
    return line_addr(kDataBase, static_cast<std::uint64_t>(i) * B + j);
  };
  const auto push = [&](std::uint32_t p, AccessKind kind, std::uint64_t addr) {
    trace.streams[p].push_back(
        MemAccess{addr, kind, jitter(rngs[p], params.think)});
  };
  for (std::uint32_t k = 0; k < B; ++k) {
    const std::uint64_t pivot = block_line(k, k);
    // Post-barrier temporal reuse: the previous pivot is Shared in every
    // cache (everyone read it last iteration and nothing wrote it since),
    // so these re-reads are the streams' L1 hits — the barrier guarantees
    // the original fill retired long before.
    if (k > 0) {
      const std::uint64_t prev_pivot = block_line(k - 1, k - 1);
      for (std::uint32_t p = 0; p < params.n; ++p) {
        push(p, AccessKind::kRead, prev_pivot);
      }
    }
    // The pivot owner factorizes the diagonal block, then everyone reads it
    // — after the write, so the directory sees reader after reader join the
    // sharer set before the next iteration's writes invalidate them.
    push(k % params.n, AccessKind::kWrite, pivot);
    for (std::uint32_t p = 0; p < params.n; ++p) {
      for (std::uint32_t r = 0; r < params.reads_per_block; ++r) {
        push(p, AccessKind::kRead, pivot);
      }
    }
    // Row/column updates: owner of block j updates panel blocks (k,j) and
    // (j,k) after reading the pivot it just joined the sharers of.
    for (std::uint32_t j = k + 1; j < B; ++j) {
      const std::uint32_t owner = j % params.n;
      push(owner, AccessKind::kRead, pivot);
      push(owner, AccessKind::kWrite, block_line(k, j));
      push(owner, AccessKind::kWrite, block_line(j, k));
    }
    // Iteration barrier: the last arriver's flag write is the widest
    // multicast of the iteration (every proc read the flag line to wait).
    for (std::uint32_t p = 0; p < params.n; ++p) {
      push(p, AccessKind::kBarrier, line_addr(kBarrierBase, k));
    }
  }
  trace.validate();
  return trace;
}

AccessTrace make_barnes_access_trace(const BarnesAccessParams& params) {
  if (params.n < 2) {
    throw ConfigError("barnes access trace needs n >= 2, got n=" +
                      std::to_string(params.n));
  }
  if (params.steps == 0 || params.tree_cells == 0 ||
      params.reads_per_step == 0) {
    throw ConfigError(
        "barnes access trace: steps, tree_cells, and reads_per_step must be "
        ">= 1");
  }
  if (params.locks == 0 && params.cell_updates > 0) {
    throw ConfigError("barnes access trace: cell_updates > 0 needs locks >= 1");
  }
  if (params.think < 0) {
    throw ConfigError("barnes access trace: think must be >= 0");
  }
  Rng root(params.seed);
  std::vector<Rng> rngs;
  rngs.reserve(params.n);
  for (std::uint32_t p = 0; p < params.n; ++p) rngs.push_back(root.split());

  AccessTrace trace;
  trace.n = params.n;
  trace.generator = to_string(AccessSynthId::kBarnesRegions);
  trace.streams.resize(params.n);
  const auto push = [&](std::uint32_t p, AccessKind kind, std::uint64_t addr) {
    trace.streams[p].push_back(
        MemAccess{addr, kind, jitter(rngs[p], params.think)});
  };
  for (std::uint32_t s = 0; s < params.steps; ++s) {
    for (std::uint32_t p = 0; p < params.n; ++p) {
      // Force walk: read-mostly traversal of the shared tree region. Random
      // per-proc cells, so each line's sharer set — and the fan-out of the
      // invalidation when a cell is later updated — is history-dependent.
      for (std::uint32_t r = 0; r < params.reads_per_step; ++r) {
        const std::uint64_t cell = rngs[p].uniform_below(params.tree_cells);
        push(p, AccessKind::kRead, line_addr(kTreeBase, cell));
      }
      // Private body updates: no sharing, exercises eviction/writeback.
      for (std::uint32_t b = 0; b < params.bodies_per_proc; ++b) {
        const std::uint64_t body =
            static_cast<std::uint64_t>(p) * params.bodies_per_proc + b;
        push(p, AccessKind::kWrite, line_addr(kBodyBase, body));
      }
      // Tree rebuild contributions: lock-protected updates of shared cells
      // (the lock line itself is a contended M-state line).
      for (std::uint32_t u = 0; u < params.cell_updates; ++u) {
        const std::uint64_t lock = rngs[p].uniform_below(params.locks);
        const std::uint64_t cell = rngs[p].uniform_below(params.tree_cells);
        push(p, AccessKind::kLockAcquire, line_addr(kLockBase, lock));
        push(p, AccessKind::kWrite, line_addr(kCellBase, cell));
        push(p, AccessKind::kRead, line_addr(kTreeBase, cell));
        push(p, AccessKind::kLockRelease, line_addr(kLockBase, lock));
      }
    }
    for (std::uint32_t p = 0; p < params.n; ++p) {
      push(p, AccessKind::kBarrier, line_addr(kBarrierBase, s));
    }
  }
  trace.validate();
  return trace;
}

const char* to_string(AccessSynthId id) {
  switch (id) {
    case AccessSynthId::kLuBlocks:
      return "LuBlocks";
    case AccessSynthId::kBarnesRegions:
      return "BarnesRegions";
  }
  SPECNOC_UNREACHABLE("AccessSynthId");
}

AccessSynthId access_synth_from_string(const std::string& name) {
  if (name == "LuBlocks") return AccessSynthId::kLuBlocks;
  if (name == "BarnesRegions") return AccessSynthId::kBarnesRegions;
  throw ConfigError("unknown access synthesizer '" + name +
                    "' (valid synthesizers: LuBlocks, BarnesRegions)");
}

AccessTrace make_access_workload(AccessSynthId id, std::uint32_t n,
                                 std::uint64_t seed) {
  switch (id) {
    case AccessSynthId::kLuBlocks: {
      LuAccessParams params;
      params.n = n;
      params.seed = seed;
      return make_lu_access_trace(params);
    }
    case AccessSynthId::kBarnesRegions: {
      BarnesAccessParams params;
      params.n = n;
      params.seed = seed;
      return make_barnes_access_trace(params);
    }
  }
  SPECNOC_UNREACHABLE("AccessSynthId");
}

}  // namespace specnoc::workload
