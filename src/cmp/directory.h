// Home-node directory state for the MSI protocol.
//
// Sharer sets are noc::DestSets, so the invalidation the home generates for
// a write is *one* multicast message whose fan-out is exactly the
// history-dependent sharer set — the traffic shape the source paper's
// speculation mechanism targets. The directory is pure protocol state (no
// network, no clock): the CmpSystem asks it what a request requires, feeds
// responder acks back in, and is told when the transaction can complete.
// One transaction per line is in flight at a time; later requests queue
// FIFO on the entry (the TMCoherence slice of sesc-pleasetm has the same
// home-serialized structure).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "noc/dest_set.h"
#include "util/contract.h"

namespace specnoc::cmp {

struct DirectoryRequest {
  std::uint32_t proc = 0;
  bool exclusive = false;  ///< GetX (write) vs GetS (read)
};

struct DirectoryEntry {
  // Stable state.
  noc::DestSet sharers;
  std::int32_t owner = -1;  ///< kModified holder; when set, sharers == {owner}

  // In-flight transaction (valid while busy).
  bool busy = false;
  DirectoryRequest request;
  noc::DestSet pending;    ///< responders whose ack/data is still out
  bool need_dram = false;  ///< waiting on a DRAM line read
  bool dram_done = false;
  std::deque<DirectoryRequest> queue;
};

/// What the home node must do to start a transaction.
struct DirectoryAction {
  noc::DestSet invalidate;  ///< responders to reach (one multicast message)
  bool dram_read = false;   ///< line must be fetched from memory
};

class Directory {
 public:
  explicit Directory(std::uint32_t n) : n_(n) { SPECNOC_EXPECTS(n > 0); }

  /// True when `line` can start a transaction now; otherwise the request
  /// was queued behind the line's in-flight transaction.
  bool admit(std::uint64_t line, DirectoryRequest request);

  /// Starts the admitted transaction and returns what the home must do.
  /// GetS with no owner reads DRAM; GetS with an owner recalls the line
  /// (invalidate-owner, data rides the writeback). GetX invalidates every
  /// sharer/owner other than the requester; it reads DRAM only when the
  /// requester is not already a sharer and nobody owns the line (an
  /// upgrade's data is already on chip; an owner's data rides its WbData).
  DirectoryAction begin(std::uint64_t line);

  /// Records one responder's InvAck/WbData. Stale responses on an idle
  /// entry (an eviction writeback racing the next transaction) clear
  /// ownership instead; double responses for one responder are absorbed.
  void ack(std::uint64_t line, std::uint32_t from);

  void dram_complete(std::uint64_t line);

  /// All responders in, DRAM done (when needed): the transaction can
  /// retire.
  bool ready(std::uint64_t line) const;

  /// Applies the transaction's final state (sharers/owner), returns the
  /// request that just completed, and un-queues the next request for the
  /// line (reported through `next`, nullptr-safe).
  DirectoryRequest complete(std::uint64_t line, bool* has_next,
                            DirectoryRequest* next);

  /// Eviction writeback arriving outside any transaction: the evictor
  /// stops being owner/sharer.
  void writeback_idle(std::uint64_t line, std::uint32_t from);

  const DirectoryEntry& entry(std::uint64_t line) const {
    static const DirectoryEntry kIdle;
    const auto it = entries_.find(line);
    return it != entries_.end() ? it->second : kIdle;
  }

  std::uint32_t home(std::uint64_t line) const {
    return static_cast<std::uint32_t>(line % n_);
  }

 private:
  std::uint32_t n_;
  std::unordered_map<std::uint64_t, DirectoryEntry> entries_;
};

}  // namespace specnoc::cmp
