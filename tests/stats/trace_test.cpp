#include "stats/trace.h"

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/mot_network.h"
#include "util/error.h"

namespace specnoc::stats {
namespace {

using noc::DestSet;

using core::Architecture;

std::size_t count_lines_with(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find(needle) != std::string::npos) ++count;
  }
  return count;
}

TEST(FlitTracerTest, WritesHeaderRow) {
  std::ostringstream out;
  FlitTracer tracer(out);
  EXPECT_EQ(out.str(), "time_ps,event,subject,packet,src,detail\n");
  EXPECT_EQ(tracer.rows_written(), 0u);
}

TEST(FlitTracerTest, TracesInjectionsAndEjections) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kOptHybridSpeculative, cfg);
  std::ostringstream out;
  FlitTracer tracer(out);
  net.net().hooks().traffic = &tracer;
  net.send_message(2, DestSet::single(5) | DestSet::single(6), false);
  net.scheduler().run();

  const std::string text = out.str();
  EXPECT_EQ(count_lines_with(text, "inject"), 1u);
  EXPECT_EQ(count_lines_with(text, "multicast"), 1u);
  // 5 flits to each of 2 destinations.
  EXPECT_EQ(count_lines_with(text, "eject"), 10u);
  EXPECT_EQ(count_lines_with(text, ",header"), 2u);
  EXPECT_EQ(count_lines_with(text, ",tail"), 2u);
  EXPECT_EQ(tracer.rows_written(), 11u);
}

TEST(FlitTracerTest, NodeOpsAndChannelsBehindFilter) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kBasicNonSpeculative, cfg);
  std::ostringstream out;
  TraceFilter filter;
  filter.node_ops = true;
  filter.channel_flits = true;
  FlitTracer tracer(out, filter);
  net.net().hooks().traffic = &tracer;
  net.net().hooks().energy = &tracer;
  net.send_message(0, DestSet::single(3), false);
  net.scheduler().run();

  const std::string text = out.str();
  // A unicast crosses 3 fanout + 3 fanin switches plus NIs.
  EXPECT_GT(count_lines_with(text, "node_op"), 20u);
  EXPECT_GT(count_lines_with(text, "channel"), 20u);
  EXPECT_EQ(count_lines_with(text, "route_forward"), 15u);  // 5 flits x 3
}

TEST(FlitTracerTest, FilterSuppressesClasses) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kBaseline, cfg);
  std::ostringstream out;
  TraceFilter filter;
  filter.injections = false;
  filter.ejections = false;
  FlitTracer tracer(out, filter);
  net.net().hooks().traffic = &tracer;
  net.send_message(0, DestSet::single(1), false);
  net.scheduler().run();
  EXPECT_EQ(tracer.rows_written(), 0u);
}

TEST(FlitKindNamesTest, Names) {
  EXPECT_STREQ(to_string(noc::FlitKind::kHeader), "header");
  EXPECT_STREQ(to_string(noc::FlitKind::kBody), "body");
  EXPECT_STREQ(to_string(noc::FlitKind::kTail), "tail");
}

TEST(CsvEscapeTest, PassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("fo2.l1i0>1"), "fo2.l1i0>1");
  EXPECT_EQ(csv_escape("multicast"), "multicast");
}

TEST(CsvEscapeTest, QuotesSpecialFields) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(csv_escape(","), "\",\"");
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
}

/// Event-class row counts for a fixed run under one filter setting.
struct ClassCounts {
  std::size_t injections = 0;
  std::size_t ejections = 0;
  std::size_t node_ops = 0;
  std::size_t channels = 0;
};

ClassCounts run_filtered(const TraceFilter& filter) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kOptHybridSpeculative, cfg);
  std::ostringstream out;
  FlitTracer tracer(out, filter);
  net.net().hooks().traffic = &tracer;
  net.net().hooks().energy = &tracer;
  net.send_message(1, DestSet::single(4) | DestSet::single(6), false);
  net.scheduler().run();
  const std::string text = out.str();
  ClassCounts counts;
  counts.injections = count_lines_with(text, ",inject,");
  counts.ejections = count_lines_with(text, ",eject,");
  counts.node_ops = count_lines_with(text, ",node_op,");
  counts.channels = count_lines_with(text, ",channel,");
  return counts;
}

TEST(FlitTracerTest, AllFilterCombinationsGateExactlyTheirClasses) {
  // The all-on run fixes the expected per-class volumes; the deterministic
  // simulator reproduces them for every other filter setting.
  TraceFilter everything;
  everything.node_ops = true;
  everything.channel_flits = true;
  const ClassCounts all = run_filtered(everything);
  ASSERT_GT(all.injections, 0u);
  ASSERT_GT(all.ejections, 0u);
  ASSERT_GT(all.node_ops, 0u);
  ASSERT_GT(all.channels, 0u);

  for (unsigned bits = 0; bits < 16; ++bits) {
    TraceFilter filter;
    filter.injections = (bits & 1u) != 0;
    filter.ejections = (bits & 2u) != 0;
    filter.node_ops = (bits & 4u) != 0;
    filter.channel_flits = (bits & 8u) != 0;
    const ClassCounts counts = run_filtered(filter);
    EXPECT_EQ(counts.injections, filter.injections ? all.injections : 0u)
        << "filter bits " << bits;
    EXPECT_EQ(counts.ejections, filter.ejections ? all.ejections : 0u)
        << "filter bits " << bits;
    EXPECT_EQ(counts.node_ops, filter.node_ops ? all.node_ops : 0u)
        << "filter bits " << bits;
    EXPECT_EQ(counts.channels, filter.channel_flits ? all.channels : 0u)
        << "filter bits " << bits;
  }
}

// Exhaustive switches over the enums: a new enumerator missing from
// all_node_kinds()/all_node_ops() breaks the static_asserts below, and one
// missing from these switches fails the build under -Wswitch -Werror.
constexpr bool covers(noc::NodeKind kind) {
  switch (kind) {
    case noc::NodeKind::kSource:
    case noc::NodeKind::kSink:
    case noc::NodeKind::kFanoutBaseline:
    case noc::NodeKind::kFanoutSpeculative:
    case noc::NodeKind::kFanoutNonSpeculative:
    case noc::NodeKind::kFanoutOptSpeculative:
    case noc::NodeKind::kFanoutOptNonSpeculative:
    case noc::NodeKind::kFanin:
    case noc::NodeKind::kMeshRouter:
    case noc::NodeKind::kMeshRouterSpec:
      return true;
  }
  return false;
}

constexpr bool covers(noc::NodeOp op) {
  switch (op) {
    case noc::NodeOp::kRouteForward:
    case noc::NodeOp::kBroadcast:
    case noc::NodeOp::kFastForward:
    case noc::NodeOp::kThrottle:
    case noc::NodeOp::kArbitrate:
    case noc::NodeOp::kSourceSend:
    case noc::NodeOp::kSinkConsume:
      return true;
  }
  return false;
}

static_assert(noc::all_node_kinds().size() == 10);
static_assert(noc::all_node_ops().size() == 7);

TEST(NodeEnumNamesTest, EveryNodeKindHasAUniqueNameThatRoundTrips) {
  std::set<std::string> names;
  for (const noc::NodeKind kind : noc::all_node_kinds()) {
    EXPECT_TRUE(covers(kind));
    const char* name = noc::to_string(kind);
    EXPECT_STRNE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << name;
    EXPECT_EQ(noc::node_kind_from_string(name), kind) << name;
  }
  EXPECT_EQ(names.size(), noc::all_node_kinds().size());
  EXPECT_THROW(noc::node_kind_from_string("no_such_kind"), ConfigError);
}

TEST(NodeEnumNamesTest, EveryNodeOpHasAUniqueName) {
  std::set<std::string> names;
  for (const noc::NodeOp op : noc::all_node_ops()) {
    EXPECT_TRUE(covers(op));
    const char* name = noc::to_string(op);
    EXPECT_STRNE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << name;
  }
  EXPECT_EQ(names.size(), noc::all_node_ops().size());
}

}  // namespace
}  // namespace specnoc::stats
