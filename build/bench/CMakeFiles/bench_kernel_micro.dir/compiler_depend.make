# Empty compiler generated dependencies file for bench_kernel_micro.
# This may be replaced when dependencies are built.
