file(REMOVE_RECURSE
  "CMakeFiles/test_nodes.dir/nodes/characteristics_test.cpp.o"
  "CMakeFiles/test_nodes.dir/nodes/characteristics_test.cpp.o.d"
  "CMakeFiles/test_nodes.dir/nodes/fanin_node_test.cpp.o"
  "CMakeFiles/test_nodes.dir/nodes/fanin_node_test.cpp.o.d"
  "CMakeFiles/test_nodes.dir/nodes/fanout_node_test.cpp.o"
  "CMakeFiles/test_nodes.dir/nodes/fanout_node_test.cpp.o.d"
  "test_nodes"
  "test_nodes.pdb"
  "test_nodes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
