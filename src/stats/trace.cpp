#include "stats/trace.h"

#include <ostream>
#include <string>

#include "noc/node.h"

namespace specnoc::stats {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) {
    return field;
  }
  std::string escaped = "\"";
  for (const char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

const char* to_string(noc::FlitKind kind) {
  switch (kind) {
    case noc::FlitKind::kHeader: return "header";
    case noc::FlitKind::kBody: return "body";
    case noc::FlitKind::kTail: return "tail";
  }
  return "?";
}

FlitTracer::FlitTracer(std::ostream& out, TraceFilter filter)
    : out_(out), filter_(filter) {
  out_ << "time_ps,event,subject,packet,src,detail\n";
}

void FlitTracer::row(TimePs when, const char* event,
                     const std::string& subject, std::uint64_t packet,
                     std::uint32_t src, const char* detail) {
  out_ << when << ',' << event << ',' << csv_escape(subject) << ',' << packet
       << ',' << src << ',' << csv_escape(detail) << '\n';
  ++rows_;
}

void FlitTracer::on_packet_injected(const noc::Packet& packet, TimePs when) {
  if (!filter_.injections) return;
  row(when, "inject", "src" + std::to_string(packet.src), packet.id,
      packet.src, packet.is_multicast() ? "multicast" : "unicast");
}

void FlitTracer::on_flit_ejected(const noc::Packet& packet,
                                 std::uint32_t dest, noc::FlitKind kind,
                                 TimePs when) {
  if (!filter_.ejections) return;
  row(when, "eject", "dst" + std::to_string(dest), packet.id, packet.src,
      to_string(kind));
}

void FlitTracer::on_node_op(const noc::Node& node, noc::NodeOp op,
                            TimePs when) {
  if (!filter_.node_ops) return;
  row(when, "node_op", node.name(), 0, 0, noc::to_string(op));
}

void FlitTracer::on_channel_flit(LengthUm length, TimePs when) {
  if (!filter_.channel_flits) return;
  row(when, "channel", std::to_string(static_cast<long long>(length)) + "um",
      0, 0, "");
}

}  // namespace specnoc::stats
