// E11 — CMP memory-hierarchy co-simulation: closed-loop caches, a home-node
// directory whose invalidations are genuine multicasts, and banked DRAM,
// co-simulated on all six networks.
//
// Unlike the trace-replay workloads (E9), no message schedule exists up
// front: each processor walks its access stream through a private MSI
// cache, and every protocol message — GetS/GetX to the line's home, one
// multicast invalidation to the *current* sharer set, acks and data — is
// generated reactively from delivery events. The figure of merit is
// application makespan: the wall-clock effect of multicast hardware on a
// directory protocol's sharer invalidations. The energy column shows where
// speculation's redundant-copy traffic lands once the "traffic" is a
// coherence protocol rather than synthetic load.
#include <array>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "stats/experiment.h"
#include "workload/synth.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

namespace {

constexpr std::array<core::Architecture, 6> kRowOrder = {
    core::Architecture::kBaseline,
    core::Architecture::kBasicNonSpeculative,
    core::Architecture::kBasicHybridSpeculative,
    core::Architecture::kOptNonSpeculative,
    core::Architecture::kOptHybridSpeculative,
    core::Architecture::kOptAllSpeculative,
};

constexpr std::array<workload::AccessSynthId, 2> kWorkloads = {
    workload::AccessSynthId::kLuBlocks,
    workload::AccessSynthId::kBarnesRegions,
};

std::string percent(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return cell(100.0 * static_cast<double>(part) / static_cast<double>(whole),
              1) +
         "%";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_cmp",
      "CMP co-simulation: per-endpoint MSI caches, directory-generated "
      "multicast invalidations, and banked DRAM driven closed loop on all "
      "six networks; the figure of merit is application makespan.",
      specnoc::bench::Sharding::kSupported, [&smoke](util::CliParser& cli) {
        cli.add_flag("--smoke", &smoke,
                     "small CI grid: LU pattern on Baseline and "
                     "OptHybridSpeculative only");
      });
  core::NetworkConfig cfg;  // 8x8, 5-flit packets
  opts.apply_kernel(cfg);   // --sim-threads/--partition (cmp runs force 1)
  stats::ExperimentRunner runner(cfg, opts.seed);
  stats::ShardedSweep sweep = specnoc::bench::make_sweep(opts);

  const std::vector<workload::AccessSynthId> workloads =
      smoke ? std::vector<workload::AccessSynthId>{kWorkloads[0]}
            : std::vector<workload::AccessSynthId>(kWorkloads.begin(),
                                                   kWorkloads.end());
  const std::vector<core::Architecture> rows =
      smoke ? std::vector<core::Architecture>{
                  core::Architecture::kBaseline,
                  core::Architecture::kOptHybridSpeculative}
            : std::vector<core::Architecture>(kRowOrder.begin(),
                                              kRowOrder.end());

  // Every worker of a sweep synthesizes the same access streams (pure
  // functions of n/seed), so their spec keys — which embed the trace hash —
  // and grid hash agree across shards.
  std::vector<std::shared_ptr<const workload::AccessTrace>> traces;
  for (const auto id : workloads) {
    traces.push_back(std::make_shared<const workload::AccessTrace>(
        workload::make_access_workload(id, cfg.n, opts.seed)));
  }

  std::vector<stats::CmpSpec> specs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto arch : rows) {
      specs.push_back(stats::make_cmp_spec(
          arch, workload::to_string(workloads[w]), traces[w]));
    }
  }
  const auto outcomes = sweep.cmp_grid("cmp", runner, specs);
  specnoc::bench::MetricsReport metrics;
  metrics.add_all("cmp", outcomes);
  metrics.write(opts);
  if (!sweep.should_render()) return sweep.finish();

  specnoc::bench::TelemetryTable telemetry;
  for (const auto& outcome : outcomes) {
    telemetry.add(std::string(core::to_string(outcome.spec.arch)) + "/" +
                      outcome.spec.workload,
                  outcome.run);
  }

  // One table per workload: end-to-end makespan plus the protocol shape
  // that produced it.
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const std::size_t base = w * rows.size();
    Table table({"Scheme", "Makespan (ns)", "Miss rate", "Inv msgs",
                 "Inv multicast", "Mean inv fan-out", "DRAM conflicts",
                 "Energy (nJ)"});
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const auto& outcome = outcomes[base + r];
      std::vector<std::string> row{core::to_string(rows[r])};
      if (outcome.run.ok && outcome.result.completed) {
        const auto& res = outcome.result;
        row.push_back(cell(res.makespan_ns, 1));
        row.push_back(percent(res.l1_misses, res.l1_hits + res.l1_misses));
        row.push_back(std::to_string(res.inv_messages));
        row.push_back(std::to_string(res.inv_multicasts));
        row.push_back(res.inv_messages > 0
                          ? cell(static_cast<double>(res.inv_targets) /
                                     static_cast<double>(res.inv_messages),
                                 2)
                          : "-");
        row.push_back(std::to_string(res.dram_conflicts));
        row.push_back(cell(res.energy_nj, 2));
      } else {
        row.insert(row.end(), 7, outcome.run.ok ? "STALLED" : "FAIL");
      }
      table.add_row(std::move(row));
    }
    const std::string title =
        std::string(workload::to_string(workloads[w])) + " co-simulation (" +
        std::to_string(traces[w]->total_accesses()) + " accesses, trace " +
        specs[base].access_hash + ")";
    specnoc::bench::emit(table, title, opts);
  }

  // Headline claims: multicast hardware should shorten the application's
  // critical path (makespan), and the speculative networks should pay for
  // it with redundant-copy switching energy relative to the equally-fast
  // non-speculative tree.
  Table claims({"Claim", "Measured"});
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const std::size_t base = w * rows.size();
    const auto find = [&](core::Architecture arch) -> const stats::CmpOutcome* {
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r] == arch) return &outcomes[base + r];
      }
      return nullptr;
    };
    const auto ok = [](const stats::CmpOutcome* o) {
      return o != nullptr && o->run.ok && o->result.completed;
    };
    const stats::CmpOutcome* baseline = find(core::Architecture::kBaseline);
    const stats::CmpOutcome* opt_hybrid =
        find(core::Architecture::kOptHybridSpeculative);
    const std::string workload_name = workload::to_string(workloads[w]);
    if (ok(baseline) && ok(opt_hybrid) &&
        opt_hybrid->result.makespan_ns > 0.0) {
      claims.add_row({"OptHybrid speedup over Baseline, " + workload_name +
                          " makespan",
                      cell(baseline->result.makespan_ns /
                               opt_hybrid->result.makespan_ns,
                           2) +
                          "x"});
    } else {
      claims.add_row({"OptHybrid speedup over Baseline, " + workload_name +
                          " makespan",
                      "n/a"});
    }
    const stats::CmpOutcome* opt_nonspec =
        find(core::Architecture::kOptNonSpeculative);
    if (ok(opt_nonspec) && ok(opt_hybrid) &&
        opt_nonspec->result.energy_nj > 0.0) {
      claims.add_row({"OptHybrid redundant-copy energy vs OptNonSpec, " +
                          workload_name,
                      cell(opt_hybrid->result.energy_nj /
                               opt_nonspec->result.energy_nj,
                           2) +
                          "x"});
    } else {
      claims.add_row({"OptHybrid redundant-copy energy vs OptNonSpec, " +
                          workload_name,
                      "n/a"});
    }
  }
  specnoc::bench::emit(claims, "CMP co-simulation claims", opts);
  telemetry.emit("CMP grid", opts);
  return telemetry.failures() == 0 ? 0 : 1;
}
