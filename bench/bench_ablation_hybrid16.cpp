// E7 — hybrid speculation-placement ablation on a 16x16 MoT.
//
// The paper sketches one 16x16 hybrid (Figure 3(d): speculative levels
// {0, 2}) and names the wider family as future work. This harness sweeps
// every per-level speculation pattern (leaf level always non-speculative)
// and reports zero-ish-load latency, saturation, power, and address bits —
// the cost/benefit landscape of local speculation placement.
//
// The design points go through core::ArchitectureRegistry: each label (the
// speculation-level set) is registered once in main(), and the specs carry
// only the label in their `custom` field — ExperimentRunner rebuilds the
// network from the registry. The label is also what identifies each cell
// in shard files (factories cannot travel between worker processes), so a
// phase-2 worker or --from render reconstructs identical networks simply
// by re-registering the same labels.
#include <vector>

#include "bench_common.h"
#include "core/registry.h"
#include "stats/experiment.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

namespace {

struct DesignPoint {
  std::string label;  ///< speculation-level set, e.g. "{0,2}"
  std::vector<std::uint32_t> levels;
  core::SpeculationMap spec;
};

/// Every subset of non-leaf levels, in bitmask order (the paper's Figure
/// 3(d) hybrid is "{0,2}").
std::vector<DesignPoint> design_points(const mot::MotTopology& topo) {
  std::vector<DesignPoint> points;
  const std::uint32_t free_levels = topo.levels() - 1;
  for (std::uint32_t bits = 0; bits < (1u << free_levels); ++bits) {
    std::vector<std::uint32_t> levels;
    std::string label = "{";
    for (std::uint32_t l = 0; l < free_levels; ++l) {
      if (bits & (1u << l)) {
        if (!levels.empty()) label += ',';
        label += std::to_string(l);
        levels.push_back(l);
      }
    }
    label += "}";
    auto spec = core::SpeculationMap::from_levels(topo, levels);
    points.push_back({label, std::move(levels), std::move(spec)});
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_ablation_hybrid16",
      "Hybrid speculation-placement ablation on a 16x16 MoT.",
      specnoc::bench::Sharding::kSupported);
  core::NetworkConfig cfg;
  cfg.n = 16;
  stats::ExperimentRunner runner(cfg, opts.seed);
  stats::ShardedSweep sweep = specnoc::bench::make_sweep(opts);
  specnoc::bench::TelemetryTable telemetry;
  const mot::MotTopology topo(cfg.n);
  const auto points = design_points(topo);
  auto& registry = core::ArchitectureRegistry::global();
  for (const auto& point : points) {
    registry.add_speculation_levels(point.label, point.levels);
  }

  using traffic::BenchmarkId;
  constexpr BenchmarkId kBenches[] = {BenchmarkId::kUniformRandom,
                                      BenchmarkId::kMulticast10};

  // Phase 1: saturation for every design point x benchmark — a sweep
  // anchor (the latency/power rates derive from it), so it runs in full in
  // every mode and all workers build identical downstream grids.
  std::vector<stats::SaturationSpec> sat_specs;
  for (const auto& point : points) {
    for (const auto bench : kBenches) {
      sat_specs.push_back({.arch = core::Architecture::kCustomHybrid,
                           .bench = bench,
                           .seed = 0,
                           .factory = {},
                           .custom = point.label});
    }
  }
  const auto sat_outcomes = sweep.anchor_saturation(runner, sat_specs);
  // Phase-1 workers stop here: the downstream specs need anchor results
  // this shard did not simulate.
  if (sweep.anchors_only()) return sweep.finish();
  telemetry.add_all(sat_outcomes);
  specnoc::bench::MetricsReport metrics;
  metrics.add_all("anchor", sat_outcomes);

  // Phase 2: the sharded grids — 25%-of-own-saturation latency for both
  // benchmarks, and power under UniformRandom.
  const auto windows = traffic::default_windows(BenchmarkId::kUniformRandom);
  std::vector<stats::LatencySpec> lat_specs;
  std::vector<stats::PowerSpec> power_specs;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const auto& point = points[p];
    for (std::size_t b = 0; b < 2; ++b) {
      const auto& sat = sat_outcomes[2 * p + b].result;
      lat_specs.push_back({.arch = core::Architecture::kCustomHybrid,
                           .bench = kBenches[b],
                           .injected_flits_per_ns =
                               0.25 * sat.injected_flits_per_ns,
                           .windows = windows,
                           .seed = 0,
                           .factory = {},
                           .custom = point.label});
    }
    const auto& sat_uniform = sat_outcomes[2 * p].result;
    power_specs.push_back({.arch = core::Architecture::kCustomHybrid,
                           .bench = BenchmarkId::kUniformRandom,
                           .injected_flits_per_ns =
                               0.25 * sat_uniform.injected_flits_per_ns,
                           .windows = windows,
                           .seed = 0,
                           .factory = {},
                           .custom = point.label});
  }
  const auto lat_outcomes = sweep.latency_sweep("latency", runner, lat_specs);
  const auto power_outcomes = sweep.power_sweep("power", runner, power_specs);
  metrics.add_all("latency", lat_outcomes);
  metrics.add_all("power", power_outcomes);
  metrics.write(opts);
  if (!sweep.should_render()) return sweep.finish();
  telemetry.add_all(lat_outcomes);
  telemetry.add_all(power_outcomes);

  Table table({"Spec levels", "Local?", "Addr bits", "Sat uniform",
               "Sat mcast10", "Lat uniform (ns)", "Lat mcast10 (ns)",
               "Power uniform (mW)"});
  for (std::size_t p = 0; p < points.size(); ++p) {
    const auto& point = points[p];
    const auto addr_bits =
        mot::SourceRouteEncoder(topo, point.spec.flags()).address_bits();
    const auto& lat_uniform = lat_outcomes[2 * p];
    const auto& lat_mcast = lat_outcomes[2 * p + 1];
    const auto& power = power_outcomes[p];
    table.add_row(
        {point.label, point.spec.is_local() ? "yes" : "no",
         cell(static_cast<long long>(addr_bits)),
         cell(sat_outcomes[2 * p].result.delivered_flits_per_ns, 2),
         cell(sat_outcomes[2 * p + 1].result.delivered_flits_per_ns, 2),
         lat_uniform.run.ok ? cell(lat_uniform.result.mean_latency_ns, 2)
                            : "FAIL",
         lat_mcast.run.ok ? cell(lat_mcast.result.mean_latency_ns, 2)
                          : "FAIL",
         power.run.ok ? cell(power.result.power_mw, 1) : "FAIL"});
  }
  specnoc::bench::emit(table,
                       "16x16 hybrid placement ablation (paper Figure 3(d) "
                       "is spec levels {0,2})",
                       opts);
  specnoc::bench::note(
      "'Local? yes' = no speculative node feeds another speculative node "
      "(redundant copies throttled after one hop).");
  telemetry.emit("Hybrid16 ablation grids", opts);
  return telemetry.failures() == 0 ? 0 : 1;
}
