file(REMOVE_RECURSE
  "CMakeFiles/barrier_sync.dir/barrier_sync.cpp.o"
  "CMakeFiles/barrier_sync.dir/barrier_sync.cpp.o.d"
  "barrier_sync"
  "barrier_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
