// E8 — google-benchmark microbenchmarks of the simulation kernel and the
// end-to-end simulator (events/sec, simulated-ns/sec).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <functional>

#include "core/mot_network.h"
#include "noc/hooks.h"
#include "sim/partitioned_scheduler.h"
#include "sim/scheduler.h"
#include "stats/metrics.h"
#include "stats/recorder.h"
#include "stats/telemetry.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"

namespace {

using namespace specnoc;
using namespace specnoc::literals;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule(static_cast<TimePs>(i % 97),
                     [&sum, i] { sum += i; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(65536);

void BM_SchedulerCascade(benchmark::State& state) {
  // Event handlers that schedule follow-ups: the simulator's hot pattern.
  // The chain uses the kernel's native event type — exactly what the
  // pre-rewrite bench did, when the native EventFn was std::function.
  struct Tick {
    sim::Scheduler* sched;
    int* remaining;
    void operator()() const {
      if (--*remaining > 0) sched->schedule(3, Tick{sched, remaining});
    }
  };
  for (auto _ : state) {
    sim::Scheduler sched;
    int remaining = 100000;
    sched.schedule(0, Tick{&sched, &remaining});
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerCascade);

void BM_SchedulerCascadeStdFunction(benchmark::State& state) {
  // Same chain, but each event is a std::function copied into the kernel
  // event — double type erasure. Quantifies what wrapping costs relative
  // to BM_SchedulerCascade; not a pattern the simulator uses.
  for (auto _ : state) {
    sim::Scheduler sched;
    int remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sched.schedule(3, tick);
    };
    sched.schedule(0, tick);
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerCascadeStdFunction);

// Delay values the simulator actually schedules, from
// nodes/characteristics.cpp: switch/channel handshake latencies for the
// five architectures, NI issue/consume delays, and the 900 ps fanin
// watchdog timeout.
constexpr TimePs kMixedDelays[] = {50,  52,  110, 120, 130, 140,
                                   150, 263, 279, 299, 350, 900};

void BM_SchedulerMixedDelays(benchmark::State& state) {
  // 64 concurrent self-rescheduling chains with the realistic delay mix
  // above, plus a rare ~20 ns retirement timer that lands beyond the
  // bucket-queue window and exercises the overflow tier.
  struct Tick {
    sim::Scheduler* sched;
    int* remaining;
    std::uint32_t rng;
    void operator()() const {
      if (--*remaining <= 0) return;
      const std::uint32_t r = rng * 1664525u + 1013904223u;
      const TimePs delay =
          (r >> 26) == 0 ? 20000
                         : kMixedDelays[(r >> 8) %
                                        (sizeof(kMixedDelays) /
                                         sizeof(kMixedDelays[0]))];
      sched->schedule(delay, Tick{sched, remaining, r});
    }
  };
  for (auto _ : state) {
    sim::Scheduler sched;
    sched.reserve(256);
    int remaining = 100000;
    for (std::uint32_t chain = 0; chain < 64; ++chain) {
      sched.schedule(static_cast<TimePs>(chain),
                     Tick{&sched, &remaining, chain * 2654435761u + 1u});
    }
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_SchedulerMixedDelays);

void BM_NetworkConstruction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    core::NetworkConfig cfg;
    cfg.n = n;
    core::MotNetwork net(core::Architecture::kOptHybridSpeculative, cfg);
    benchmark::DoNotOptimize(net.total_node_area());
  }
}
BENCHMARK(BM_NetworkConstruction)->Arg(8)->Arg(16)->Arg(32);

void BM_SaturatedSimulation(benchmark::State& state) {
  // Simulated nanoseconds per wall second under backlogged uniform load.
  const auto arch = static_cast<core::Architecture>(state.range(0));
  for (auto _ : state) {
    core::NetworkConfig cfg;
    core::MotNetwork net(arch, cfg);
    stats::TrafficRecorder rec(net.net().packets());
    net.net().hooks().traffic = &rec;
    auto pattern = traffic::make_benchmark(
        traffic::BenchmarkId::kUniformRandom, 8);
    traffic::DriverConfig dcfg;
    dcfg.mode = traffic::InjectionMode::kBacklogged;
    dcfg.seed = 7;
    traffic::TrafficDriver driver(net, *pattern, dcfg);
    driver.start();
    net.scheduler().run_until(1000_ns);
    benchmark::DoNotOptimize(net.scheduler().executed());
  }
  state.SetLabel("1000 simulated ns per iteration");
}
BENCHMARK(BM_SaturatedSimulation)
    ->Arg(static_cast<int>(core::Architecture::kBaseline))
    ->Arg(static_cast<int>(core::Architecture::kOptHybridSpeculative))
    ->Arg(static_cast<int>(core::Architecture::kOptAllSpeculative));

void BM_PartitionedSaturatedSimulation(benchmark::State& state) {
  // The BM_SaturatedSimulation OptHybridSpeculative run under the
  // partitioned kernel (8 per-tree lanes on the 8x8 MoT), at the worker
  // count in Arg. Results are byte-identical to sequential for this
  // workload (see kernel_determinism_test.cpp), so wall time is the only
  // thing that varies.
  //
  // Wall time is honest but only meaningful when the host has as many free
  // cores as workers; `model_speedup` is the machine-independent number:
  // total events / the largest per-worker event share under the static
  // contiguous lane blocks workers execute (the per-window critical path,
  // ignoring barrier cost). Arg 1 vs BM_SaturatedSimulation isolates the
  // pure partitioning overhead (windowing + mailbox drains, no threads).
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  double model_speedup = 0.0;
  for (auto _ : state) {
    core::NetworkConfig cfg;
    cfg.sim_threads = 8;  // one lane per source tree
    core::MotNetwork net(core::Architecture::kOptHybridSpeculative, cfg);
    net.net().set_worker_threads(workers);
    stats::TrafficRecorder rec(net.net().packets());
    net.net().hooks().traffic = &rec;
    auto pattern = traffic::make_benchmark(
        traffic::BenchmarkId::kUniformRandom, 8);
    traffic::DriverConfig dcfg;
    dcfg.mode = traffic::InjectionMode::kBacklogged;
    dcfg.seed = 7;
    traffic::TrafficDriver driver(net, *pattern, dcfg);
    driver.start();
    net.net().run_until(1000_ns);
    sim::PartitionedScheduler& psched = *net.net().partitioned_scheduler();
    events = psched.executed();
    windows = psched.windows();
    const std::vector<std::uint64_t> lane_events =
        psched.per_lane_executed();
    const std::uint32_t lanes = psched.lanes();
    std::uint64_t max_share = 0;
    for (std::uint32_t w = 0; w < workers; ++w) {
      const std::uint32_t first = w * lanes / workers;
      const std::uint32_t last = (w + 1) * lanes / workers;
      std::uint64_t share = 0;
      for (std::uint32_t lane = first; lane < last; ++lane) {
        share += lane_events[lane];
      }
      max_share = std::max(max_share, share);
    }
    model_speedup =
        static_cast<double>(events) / static_cast<double>(max_share);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
  state.counters["windows"] =
      benchmark::Counter(static_cast<double>(windows));
  state.counters["model_speedup"] = benchmark::Counter(model_speedup);
  state.SetLabel("1000 simulated ns per iteration, 8 lanes");
}
BENCHMARK(BM_PartitionedSaturatedSimulation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_TelemetrySampledSimulation(benchmark::State& state) {
  // Sampler overhead on the saturated 8x8 run: a MetricsRegistry is always
  // attached; Arg > 0 additionally arms a TelemetrySampler on it, sampling
  // every Arg simulated ns. The headline is items_per_second (kernel
  // events/wall second): the Arg 50 / Arg 0 ratio is the sampling cost,
  // recorded in BENCH_telemetry.json (budget: <= 2%).
  const auto epoch_ns = static_cast<TimePs>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    core::NetworkConfig cfg;
    core::MotNetwork net(core::Architecture::kOptHybridSpeculative, cfg);
    stats::MetricsRegistry registry;
    stats::TelemetryOptions topts;
    topts.epoch_ps = epoch_ns * 1000;
    stats::TelemetrySampler sampler(topts);
    net.net().hooks().metrics = &registry;
    if (epoch_ns > 0) sampler.arm(net.net(), registry);
    auto pattern = traffic::make_benchmark(
        traffic::BenchmarkId::kUniformRandom, 8);
    traffic::DriverConfig dcfg;
    dcfg.mode = traffic::InjectionMode::kBacklogged;
    dcfg.seed = 7;
    traffic::TrafficDriver driver(net, *pattern, dcfg);
    driver.start();
    net.scheduler().run_until(1000_ns);
    events = net.scheduler().executed();
    if (epoch_ns > 0) {
      const stats::TelemetrySeries series = sampler.finish();
      benchmark::DoNotOptimize(series.epochs.size());
    }
    benchmark::DoNotOptimize(registry.snapshot().total_kills());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
  state.SetLabel(epoch_ns == 0 ? "metrics only, no sampling"
                               : "sampled epochs over 1000 simulated ns");
}
BENCHMARK(BM_TelemetrySampledSimulation)->Arg(0)->Arg(50)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
