// Source-routing address construction for the fanout trees.
//
// Three schemes appear in the paper:
//  * Baseline (unicast only): 1 bit per fanout level — the routing bit of the
//    single destination. 3 bits for 8x8, 4 bits for 16x16.
//  * Parallel multicast: 2 bits per *addressed* fanout node, heap order,
//    encoding one of four route symbols: throttle / top / bottom / both.
//    Every non-speculative node in the tree gets a field — including nodes
//    off the packet's path, whose field is kThrottle so they can kill
//    misrouted copies arriving from speculative neighbours.
//  * Simplified source routing (local speculation): speculative nodes always
//    broadcast, so they need no field; only non-speculative nodes are
//    addressed. This is the paper's address-size benefit (Section 5.2(d)).
#pragma once

#include <cstdint>
#include <vector>

#include "mot/topology.h"
#include "noc/packet.h"

namespace specnoc::mot {

/// The 2-bit route symbol decoded by a non-speculative fanout node.
enum class RouteSymbol : std::uint8_t {
  kThrottle = 0,  ///< packet is misrouted here: consume and ack
  kTop = 1,       ///< forward on output 0
  kBottom = 2,    ///< forward on output 1
  kBoth = 3,      ///< replicate on both outputs
};

const char* to_string(RouteSymbol symbol);

/// Direction bitset corresponding to a symbol (bit0 = top, bit1 = bottom).
std::uint8_t symbol_dirs(RouteSymbol symbol);

/// Builds per-node route symbols and address-field layouts for one fanout
/// tree, given which nodes are speculative (indexed by heap id; an all-false
/// vector describes a fully non-speculative tree).
class SourceRouteEncoder {
 public:
  SourceRouteEncoder(const MotTopology& topology,
                     std::vector<bool> speculative_by_heap_id);

  /// The ground-truth symbol for node (level, index) given a destination
  /// set: which of its two subtrees contain destinations. Range-based, so
  /// no allocation at any radix.
  RouteSymbol symbol_for(std::uint32_t level, std::uint32_t index,
                         const noc::DestSet& dests) const;

  /// Encoded header fields: one symbol per *addressed* (non-speculative)
  /// node, in heap order. This is exactly what a hardware header carries.
  std::vector<RouteSymbol> encode(const noc::DestSet& dests) const;

  /// The symbol an addressed node reads from an encoded header. `field_slot`
  /// is the node's position among addressed nodes (see field_slot()).
  static RouteSymbol decode(const std::vector<RouteSymbol>& fields,
                            std::uint32_t field_slot);

  /// Position of node (level, index) among addressed nodes, or -1 if the
  /// node is speculative (carries no field).
  std::int32_t field_slot(std::uint32_t level, std::uint32_t index) const;

  /// Number of addressed (non-speculative) nodes per tree.
  std::uint32_t addressed_nodes() const;

  /// Total multicast address bits: 2 per addressed node.
  std::uint32_t address_bits() const { return 2 * addressed_nodes(); }

  /// Baseline unicast scheme: log2(n) single-bit fields.
  static std::uint32_t baseline_unicast_bits(const MotTopology& topology);

  const MotTopology& topology() const { return topology_; }

 private:
  const MotTopology& topology_;
  std::vector<bool> speculative_;
  std::vector<std::int32_t> slot_by_heap_id_;
  std::uint32_t addressed_ = 0;
};

}  // namespace specnoc::mot
