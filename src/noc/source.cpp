#include "noc/source.h"

#include "noc/channel.h"

namespace specnoc::noc {

SourceNode::SourceNode(sim::Scheduler& scheduler, SimHooks& hooks,
                       std::uint32_t src_id, TimePs issue_delay)
    : Node(scheduler, hooks, NodeKind::kSource,
           "src" + std::to_string(src_id)),
      src_id_(src_id), issue_delay_(issue_delay) {
  SPECNOC_EXPECTS(issue_delay >= 0);
}

void SourceNode::enqueue_packet(const Packet& packet) {
  SPECNOC_EXPECTS(packet.src == src_id_);
  for (std::uint32_t seq = 0; seq < packet.num_flits; ++seq) {
    queue_.push_back(make_flit(packet, seq));
  }
  flits_enqueued_ += packet.num_flits;
  ++queued_packets_;
  try_issue();
}

void SourceNode::set_refill(std::size_t low_water,
                            std::function<void()> callback) {
  low_water_ = low_water;
  refill_ = std::move(callback);
  pump_refill();
}

void SourceNode::pump_refill() {
  if (!refill_) return;
  while (queued_packets_ < low_water_) {
    const std::size_t before = queued_packets_;
    refill_();
    if (queued_packets_ == before) break;  // callback declined to produce
  }
}

void SourceNode::deliver(const Flit&, std::uint32_t) {
  SPECNOC_UNREACHABLE("sources have no input channels");
}

void SourceNode::on_output_ack(std::uint32_t out_port) {
  SPECNOC_EXPECTS(out_port == 0);
  output_free_ = true;
  try_issue();
}

void SourceNode::try_issue() {
  if (!output_free_ || queue_.empty() || issue_scheduled_) {
    return;
  }
  issue_scheduled_ = true;
  sched().schedule(issue_delay_, [this] { issue_front(); });
}

void SourceNode::issue_front() {
  SPECNOC_ASSERT(issue_scheduled_ && output_free_ && !queue_.empty());
  issue_scheduled_ = false;
  const Flit flit = queue_.front();
  queue_.pop_front();
  output_free_ = false;
  record_op(NodeOp::kSourceSend);
  if (flit.is_header() && hooks().traffic != nullptr) {
    hooks().traffic->on_packet_injected(*flit.packet, sched().now());
  }
  if (flit.is_tail() || flit.packet->num_flits == 1) {
    SPECNOC_ASSERT(queued_packets_ > 0);
    --queued_packets_;
  }
  output(0).send(flit);
  pump_refill();
}

}  // namespace specnoc::noc
