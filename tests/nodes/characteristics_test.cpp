#include "nodes/characteristics.h"

#include <gtest/gtest.h>

namespace specnoc::nodes {
namespace {

TEST(CharacteristicsTest, PaperValues) {
  const auto& baseline =
      default_characteristics(noc::NodeKind::kFanoutBaseline);
  EXPECT_DOUBLE_EQ(baseline.area_um2, 342.0);
  EXPECT_EQ(baseline.fwd_header, 263);

  const auto& spec = default_characteristics(noc::NodeKind::kFanoutSpeculative);
  EXPECT_DOUBLE_EQ(spec.area_um2, 247.0);
  EXPECT_EQ(spec.fwd_header, 52);

  const auto& nonspec =
      default_characteristics(noc::NodeKind::kFanoutNonSpeculative);
  EXPECT_DOUBLE_EQ(nonspec.area_um2, 406.0);
  EXPECT_EQ(nonspec.fwd_header, 299);

  const auto& opt_spec =
      default_characteristics(noc::NodeKind::kFanoutOptSpeculative);
  EXPECT_DOUBLE_EQ(opt_spec.area_um2, 373.0);
  EXPECT_EQ(opt_spec.fwd_header, 120);

  const auto& opt_nonspec =
      default_characteristics(noc::NodeKind::kFanoutOptNonSpeculative);
  EXPECT_DOUBLE_EQ(opt_nonspec.area_um2, 366.0);
  EXPECT_EQ(opt_nonspec.fwd_header, 279);
  // Fast-forward path is faster than the header path.
  EXPECT_LT(opt_nonspec.fwd_body, opt_nonspec.fwd_header);
}

TEST(CharacteristicsTest, ThrottlePathIsFastForMulticastDesigns) {
  EXPECT_LT(default_characteristics(noc::NodeKind::kFanoutNonSpeculative)
                .throttle_latency,
            default_characteristics(noc::NodeKind::kFanoutNonSpeculative)
                .fwd_header);
  EXPECT_LT(default_characteristics(noc::NodeKind::kFanoutOptNonSpeculative)
                .throttle_latency,
            default_characteristics(noc::NodeKind::kFanoutOptNonSpeculative)
                .fwd_header);
}

TEST(CharacteristicsTest, DefaultsAreAsynchronous) {
  for (const auto kind :
       {noc::NodeKind::kFanoutBaseline, noc::NodeKind::kFanoutSpeculative,
        noc::NodeKind::kFanoutNonSpeculative, noc::NodeKind::kFanin}) {
    EXPECT_EQ(default_characteristics(kind).clock_period, 0);
  }
}

TEST(DisciplinedDelayTest, AsynchronousIsIdentity) {
  EXPECT_EQ(disciplined_delay(0, 0, 0), 0);
  EXPECT_EQ(disciplined_delay(299, 0, 12345), 299);
}

TEST(DisciplinedDelayTest, SynchronousRoundsUpToClockEdge) {
  // now=0, raw=299, period=500 -> completes at first edge >= 299 = 500.
  EXPECT_EQ(disciplined_delay(299, 500, 0), 500);
  // now=0, raw=500 lands exactly on an edge.
  EXPECT_EQ(disciplined_delay(500, 500, 0), 500);
  // now=0, raw=501 -> 1000.
  EXPECT_EQ(disciplined_delay(501, 500, 0), 1000);
}

TEST(DisciplinedDelayTest, PhaseRelativeToAbsoluteTime) {
  // now=300, raw=100 -> ready at 400, next edge 500 -> delay 200.
  EXPECT_EQ(disciplined_delay(100, 500, 300), 200);
  // now=500 (on an edge), raw=100 -> edge 1000 -> delay 500.
  EXPECT_EQ(disciplined_delay(100, 500, 500), 500);
  // raw=0 at an edge stays at the edge.
  EXPECT_EQ(disciplined_delay(0, 500, 1000), 0);
  // raw=0 off-edge waits for the edge.
  EXPECT_EQ(disciplined_delay(0, 500, 1001), 499);
}

TEST(DisciplinedDelayTest, NeverShorterThanRaw) {
  for (TimePs raw : {0, 1, 52, 299, 750}) {
    for (TimePs period : {0, 100, 400, 1000}) {
      for (TimePs now : {0, 37, 400, 999}) {
        EXPECT_GE(disciplined_delay(raw, period, now), raw);
      }
    }
  }
}

}  // namespace
}  // namespace specnoc::nodes
