#include "noc/arena.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace specnoc::noc {

namespace {

// Chunk growth: start small (tiny test networks pay almost nothing), double
// per chunk up to a cap that keeps large-radix builds at a few dozen chunks
// per pool without megabyte-scale over-reservation for mid-sized ones.
constexpr std::size_t kFirstChunkObjects = 16;
constexpr std::size_t kMaxChunkObjects = 16384;

}  // namespace

std::size_t NetworkArena::next_type_slot() {
  static std::atomic<std::size_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void* NetworkArena::Pool::allocate() {
  if (chunks.empty() || chunk_objects.back() == chunk_capacity) {
    chunk_capacity = chunks.empty()
                         ? kFirstChunkObjects
                         : std::min(kMaxChunkObjects, chunk_capacity * 2);
    const std::size_t bytes = chunk_capacity * object_size;
    void* chunk = ::operator new(bytes, std::align_val_t{alignment});
    chunks.push_back(chunk);
    chunk_objects.push_back(0);
    reserved_bytes += bytes;
  }
  void* slot = static_cast<char*>(chunks.back()) +
               chunk_objects.back() * object_size;
  ++chunk_objects.back();
  return slot;
}

std::uint64_t NetworkArena::total_objects() const {
  std::uint64_t total = 0;
  for (const Pool* pool : order_) total += pool->objects;
  return total;
}

std::uint64_t NetworkArena::total_bytes() const {
  std::uint64_t total = 0;
  for (const Pool* pool : order_) {
    total += static_cast<std::uint64_t>(pool->objects) * pool->object_size;
  }
  return total;
}

std::uint64_t NetworkArena::total_reserved_bytes() const {
  std::uint64_t total = 0;
  for (const Pool* pool : order_) total += pool->reserved_bytes;
  return total;
}

std::vector<NetworkArena::PoolUsage> NetworkArena::usage() const {
  std::vector<PoolUsage> out;
  out.reserve(order_.size());
  for (const Pool* pool : order_) {
    if (pool->objects == 0) continue;
    PoolUsage usage;
    usage.label = pool->label;
    usage.objects = pool->objects;
    usage.bytes = static_cast<std::uint64_t>(pool->objects) *
                  pool->object_size;
    usage.reserved_bytes = pool->reserved_bytes;
    out.push_back(std::move(usage));
  }
  std::sort(out.begin(), out.end(),
            [](const PoolUsage& a, const PoolUsage& b) {
              return a.label < b.label;
            });
  return out;
}

void NetworkArena::clear() {
  for (Pool* pool : order_) {
    for (std::size_t c = 0; c < pool->chunks.size(); ++c) {
      pool->destroy(pool->chunks[c], pool->chunk_objects[c]);
      ::operator delete(pool->chunks[c], std::align_val_t{pool->alignment});
    }
    pool->chunks.clear();
    pool->chunk_objects.clear();
    pool->chunk_capacity = 0;
    pool->objects = 0;
    pool->reserved_bytes = 0;
  }
}

}  // namespace specnoc::noc
