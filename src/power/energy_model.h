// Switching-energy model.
//
// The paper measures power by annotating per-wire switching activity over a
// benchmark run and integrating with PrimeTime. Our equivalent: every node
// operation and channel traversal deposits energy,
//
//   E_node(kind, op) = node_fj_per_um2 * area(kind) * complexity(kind)
//                      * activity_factor(op)
//   E_wire(length)   = wire_fj_per_um  * length
//
// Node energy scales with the node's cell area (bigger switch, more
// capacitance switched per flit), times a per-design complexity factor
// (the multicast-capable non-speculative nodes exercise route-computation
// and channel-allocation logic on every flit — the paper's stated reason
// the serial Baseline has the lowest power), times an op activity factor:
//   * broadcast toggles both output port registers            -> 1.8
//   * route-forward toggles control + one-or-two outputs      -> 1.0
//   * fast-forward rides the pre-allocated channel            -> 0.9
//   * throttle toggles only the input monitor + ack           -> 0.35
// These factors are modeling assumptions calibrated against Table 1's
// relative numbers (DESIGN.md); the architecture comparisons are driven
// primarily by *how many* redundant operations and wire traversals
// speculation creates, which the simulation counts exactly.
#pragma once

#include "noc/hooks.h"
#include "util/units.h"

namespace specnoc::power {

struct EnergyModelParams {
  double node_fj_per_um2 = 1.34;
  double wire_fj_per_um = 0.40;
  /// Network-interface energy per flit (flat; same for all architectures).
  EnergyFj interface_fj = 107.0;

  double factor_route = 1.0;
  double factor_broadcast = 1.8;
  double factor_fast_forward = 0.9;
  double factor_throttle = 0.35;
  double factor_arbitrate = 1.0;

  /// Control-logic switching beyond pure area scaling: the multicast
  /// routing + channel-allocation protocols of the non-speculative designs
  /// cost energy on every flit.
  double complexity_baseline = 1.0;
  double complexity_spec = 1.0;
  double complexity_nonspec = 1.12;
  double complexity_opt_spec = 1.0;
  double complexity_opt_nonspec = 1.12;
  double complexity_fanin = 1.0;

  double complexity(noc::NodeKind kind) const {
    switch (kind) {
      case noc::NodeKind::kFanoutBaseline: return complexity_baseline;
      case noc::NodeKind::kFanoutSpeculative: return complexity_spec;
      case noc::NodeKind::kFanoutNonSpeculative: return complexity_nonspec;
      case noc::NodeKind::kFanoutOptSpeculative: return complexity_opt_spec;
      case noc::NodeKind::kFanoutOptNonSpeculative:
        return complexity_opt_nonspec;
      case noc::NodeKind::kFanin: return complexity_fanin;
      case noc::NodeKind::kSource:
      case noc::NodeKind::kSink:
      case noc::NodeKind::kMeshRouter:
      case noc::NodeKind::kMeshRouterSpec:
        return 1.0;
    }
    return 1.0;
  }

  double activity_factor(noc::NodeOp op) const {
    switch (op) {
      case noc::NodeOp::kRouteForward: return factor_route;
      case noc::NodeOp::kBroadcast: return factor_broadcast;
      case noc::NodeOp::kFastForward: return factor_fast_forward;
      case noc::NodeOp::kThrottle: return factor_throttle;
      case noc::NodeOp::kArbitrate: return factor_arbitrate;
      case noc::NodeOp::kSourceSend:
      case noc::NodeOp::kSinkConsume:
        return 1.0;  // interface ops use the flat interface_fj instead
    }
    return 1.0;
  }
};

}  // namespace specnoc::power
