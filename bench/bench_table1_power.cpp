// E5 — Table 1 (right): total network power, 4 benchmarks x 6 networks.
//
// Protocol: every architecture runs at the same injected rate — 25% of the
// *Baseline's* saturation for the benchmark — for a normalized comparison
// of energy per packet; power = switching energy over the measurement
// window / window duration.
#include <array>

#include "bench_common.h"
#include "stats/experiment.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

namespace {

constexpr std::array<traffic::BenchmarkId, 4> kBenchmarks = {
    traffic::BenchmarkId::kUniformRandom, traffic::BenchmarkId::kHotspot,
    traffic::BenchmarkId::kMulticast5, traffic::BenchmarkId::kMulticast10};

// Paper Table 1, total network power (mW), same order.
constexpr double kPaper[6][4] = {
    {12.6, 3.8, 14.7, 17.1},  // Baseline
    {14.1, 4.2, 16.0, 18.1},  // BasicNonSpeculative
    {15.6, 4.5, 17.4, 19.4},  // BasicHybridSpeculative
    {13.1, 3.9, 15.0, 17.0},  // OptNonSpeculative
    {13.9, 4.1, 15.7, 17.6},  // OptHybridSpeculative
    {16.1, 4.6, 17.8, 19.5},  // OptAllSpeculative
};

constexpr std::array<core::Architecture, 6> kRowOrder = {
    core::Architecture::kBaseline,
    core::Architecture::kBasicNonSpeculative,
    core::Architecture::kBasicHybridSpeculative,
    core::Architecture::kOptNonSpeculative,
    core::Architecture::kOptHybridSpeculative,
    core::Architecture::kOptAllSpeculative,
};

std::vector<std::string> header_row() {
  std::vector<std::string> h{"Scheme"};
  for (const auto bench : kBenchmarks) {
    h.emplace_back(traffic::to_string(bench));
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_table1_power",
      "Table 1 (right): total network power, 4 benchmarks x 6 networks.",
      specnoc::bench::Sharding::kSupported);
  core::NetworkConfig cfg;
  stats::ExperimentRunner runner(cfg, opts.seed);
  stats::ShardedSweep sweep = specnoc::bench::make_sweep(opts);
  specnoc::bench::TelemetryTable telemetry;

  // Phase 1: the Baseline's saturation per benchmark fixes the common
  // offered load. This is a sweep *anchor*: it runs in full in every mode
  // (it is cheap and deterministic), so all shard workers derive identical
  // downstream power grids. Phase 2: every architecture's power run at
  // that load — the grid that actually gets sharded.
  std::vector<stats::SaturationSpec> sat_specs;
  for (const auto bench : kBenchmarks) {
    sat_specs.push_back({.arch = core::Architecture::kBaseline,
                         .bench = bench,
                         .seed = 0,
                         .factory = {},
                         .custom = {}});
  }
  const auto sat_outcomes = sweep.anchor_saturation(runner, sat_specs);
  // Phase-1 workers stop here: the downstream specs need anchor results
  // this shard did not simulate.
  if (sweep.anchors_only()) return sweep.finish();
  telemetry.add_all(sat_outcomes);
  specnoc::bench::MetricsReport metrics;
  metrics.add_all("anchor", sat_outcomes);

  std::vector<stats::PowerSpec> power_specs;
  for (const auto arch : kRowOrder) {
    for (std::size_t c = 0; c < kBenchmarks.size(); ++c) {
      const auto& baseline_sat = sat_outcomes[c].result;
      power_specs.push_back(
          {.arch = arch,
           .bench = kBenchmarks[c],
           .injected_flits_per_ns = 0.25 * baseline_sat.injected_flits_per_ns /
                                    baseline_sat.message_expansion,
           .windows = traffic::default_windows(kBenchmarks[c]),
           .seed = 0,
           .factory = {},
           .custom = {}});
    }
  }
  const auto power_outcomes = sweep.power_sweep("power", runner, power_specs);
  metrics.add_all("power", power_outcomes);
  metrics.write(opts);
  if (!sweep.should_render()) return sweep.finish();
  telemetry.add_all(power_outcomes);

  double measured[6][4] = {};
  Table table(header_row());
  Table reference(header_row());
  std::size_t cursor = 0;
  for (std::size_t r = 0; r < kRowOrder.size(); ++r) {
    const auto arch = kRowOrder[r];
    std::vector<std::string> row{core::to_string(arch)};
    std::vector<std::string> ref{core::to_string(arch)};
    for (std::size_t c = 0; c < kBenchmarks.size(); ++c) {
      const auto& outcome = power_outcomes[cursor++];
      measured[r][c] = outcome.result.power_mw;
      row.push_back(outcome.run.ok ? cell(measured[r][c], 1) : "FAIL");
      ref.push_back(cell(kPaper[r][c], 1));
    }
    table.add_row(std::move(row));
    reference.add_row(std::move(ref));
  }

  specnoc::bench::emit(table,
                       "Table 1 (measured): total network power (mW) at 25% "
                       "Baseline saturation",
                       opts);
  specnoc::bench::emit(reference, "Table 1 (paper): total network power (mW)",
                       opts);

  // Relative overhead claims (rows indexed per kRowOrder).
  auto rel = [&](std::size_t a, std::size_t b, std::size_t c) {
    return measured[a][c] / measured[b][c] - 1.0;
  };
  Table claims({"Claim", "Paper", "Measured (UniformRandom)",
                "Measured (Multicast10)"});
  claims.add_row({"BasicNonSpec over Baseline", "+5.8..11.9%",
                  percent_cell(rel(1, 0, 0)), percent_cell(rel(1, 0, 3))});
  claims.add_row({"BasicHybrid over Baseline", "+13.4..23.8%",
                  percent_cell(rel(2, 0, 0)), percent_cell(rel(2, 0, 3))});
  claims.add_row({"OptHybrid over Baseline", "+2.9..10.3%",
                  percent_cell(rel(4, 0, 0)), percent_cell(rel(4, 0, 3))});
  claims.add_row({"OptHybrid over OptNonSpec", "+3.5..6.1%",
                  percent_cell(rel(4, 3, 0)), percent_cell(rel(4, 3, 3))});
  claims.add_row({"OptAllSpec over OptHybrid", "+10.8..15.8%",
                  percent_cell(rel(5, 4, 0)), percent_cell(rel(5, 4, 3))});
  claims.add_row({"OptAllSpec over OptNonSpec", "+14.7..22.9%",
                  percent_cell(rel(5, 3, 0)), percent_cell(rel(5, 3, 3))});
  specnoc::bench::emit(claims, "Relative power claims", opts);
  telemetry.emit("Table 1 power grid", opts);
  return telemetry.failures() == 0 ? 0 : 1;
}
