#include "noc/node.h"

#include "noc/channel.h"
#include "util/error.h"

namespace specnoc::noc {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSource: return "source";
    case NodeKind::kSink: return "sink";
    case NodeKind::kFanoutBaseline: return "fanout.baseline";
    case NodeKind::kFanoutSpeculative: return "fanout.spec";
    case NodeKind::kFanoutNonSpeculative: return "fanout.nonspec";
    case NodeKind::kFanoutOptSpeculative: return "fanout.opt_spec";
    case NodeKind::kFanoutOptNonSpeculative: return "fanout.opt_nonspec";
    case NodeKind::kFanin: return "fanin";
    case NodeKind::kMeshRouter: return "mesh.router";
    case NodeKind::kMeshRouterSpec: return "mesh.router.spec";
  }
  return "?";
}

NodeKind node_kind_from_string(const std::string& name) {
  for (const NodeKind kind : all_node_kinds()) {
    if (name == to_string(kind)) return kind;
  }
  throw ConfigError("unknown node kind '" + name + "'");
}

const char* to_string(NodeOp op) {
  switch (op) {
    case NodeOp::kRouteForward: return "route_forward";
    case NodeOp::kBroadcast: return "broadcast";
    case NodeOp::kFastForward: return "fast_forward";
    case NodeOp::kThrottle: return "throttle";
    case NodeOp::kArbitrate: return "arbitrate";
    case NodeOp::kSourceSend: return "source_send";
    case NodeOp::kSinkConsume: return "sink_consume";
  }
  return "?";
}

Node::Node(sim::Scheduler& scheduler, SimHooks& hooks, NodeKind kind,
           std::string name)
    : scheduler_(scheduler), hooks_(hooks), kind_(kind),
      name_(std::move(name)) {}

void Node::attach_input(std::uint32_t port, Channel& channel) {
  if (inputs_.size() <= port) inputs_.resize(port + 1, nullptr);
  SPECNOC_EXPECTS(inputs_[port] == nullptr);
  inputs_[port] = &channel;
}

void Node::attach_output(std::uint32_t port, Channel& channel) {
  if (outputs_.size() <= port) outputs_.resize(port + 1, nullptr);
  SPECNOC_EXPECTS(outputs_[port] == nullptr);
  outputs_[port] = &channel;
}

Channel& Node::input(std::uint32_t port) {
  SPECNOC_EXPECTS(port < inputs_.size() && inputs_[port] != nullptr);
  return *inputs_[port];
}

Channel& Node::output(std::uint32_t port) {
  SPECNOC_EXPECTS(port < outputs_.size() && outputs_[port] != nullptr);
  return *outputs_[port];
}

bool Node::has_output(std::uint32_t port) const {
  return port < outputs_.size() && outputs_[port] != nullptr;
}

void Node::record_op(NodeOp op) {
  if (hooks_.energy != nullptr) {
    hooks_.energy->on_node_op(*this, op, scheduler_.now());
  }
}

void Node::record_kill(const Flit& flit) {
  if (hooks_.metrics != nullptr) {
    hooks_.metrics->on_flit_killed(*this, flit, scheduler_.now());
  }
}

void Node::record_prealloc(bool hit) {
  if (hooks_.metrics != nullptr) {
    hooks_.metrics->on_prealloc(*this, hit, scheduler_.now());
  }
}

void Node::record_contended_grant() {
  if (hooks_.metrics != nullptr) {
    hooks_.metrics->on_contended_grant(*this, scheduler_.now());
  }
}

void Node::record_watchdog_release() {
  if (hooks_.metrics != nullptr) {
    hooks_.metrics->on_watchdog_release(*this, scheduler_.now());
  }
}

}  // namespace specnoc::noc
