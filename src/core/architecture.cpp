#include "core/architecture.h"

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::core {

const char* to_string(Architecture arch) {
  switch (arch) {
    case Architecture::kBaseline: return "Baseline";
    case Architecture::kBasicNonSpeculative: return "BasicNonSpeculative";
    case Architecture::kBasicHybridSpeculative:
      return "BasicHybridSpeculative";
    case Architecture::kOptNonSpeculative: return "OptNonSpeculative";
    case Architecture::kOptHybridSpeculative: return "OptHybridSpeculative";
    case Architecture::kOptAllSpeculative: return "OptAllSpeculative";
    case Architecture::kCustomHybrid: return "CustomHybrid";
  }
  return "?";
}

Architecture architecture_from_string(const std::string& name) {
  for (const auto arch : all_architectures()) {
    if (name == to_string(arch)) return arch;
  }
  throw ConfigError("unknown architecture '" + name + "'");
}

ArchitectureTraits traits(Architecture arch) {
  switch (arch) {
    case Architecture::kBaseline:
      return {.optimized = false, .multicast_capable = false};
    case Architecture::kBasicNonSpeculative:
    case Architecture::kBasicHybridSpeculative:
      return {.optimized = false, .multicast_capable = true};
    case Architecture::kOptNonSpeculative:
    case Architecture::kOptHybridSpeculative:
    case Architecture::kOptAllSpeculative:
    case Architecture::kCustomHybrid:
      return {.optimized = true, .multicast_capable = true};
  }
  SPECNOC_UNREACHABLE("unknown architecture");
}

SpeculationMap speculation_for(Architecture arch,
                               const mot::MotTopology& topology) {
  switch (arch) {
    case Architecture::kBaseline:
    case Architecture::kBasicNonSpeculative:
    case Architecture::kOptNonSpeculative:
      return SpeculationMap::none(topology);
    case Architecture::kBasicHybridSpeculative:
    case Architecture::kOptHybridSpeculative:
      return SpeculationMap::hybrid(topology);
    case Architecture::kOptAllSpeculative:
      return SpeculationMap::all_speculative(topology);
    case Architecture::kCustomHybrid:
      break;  // custom maps are supplied by the caller, not derived
  }
  SPECNOC_UNREACHABLE("kCustomHybrid has no canonical speculation map");
}

noc::NodeKind fanout_kind(Architecture arch, bool speculative) {
  if (arch == Architecture::kBaseline) {
    SPECNOC_EXPECTS(!speculative);
    return noc::NodeKind::kFanoutBaseline;
  }
  if (traits(arch).optimized) {
    return speculative ? noc::NodeKind::kFanoutOptSpeculative
                       : noc::NodeKind::kFanoutOptNonSpeculative;
  }
  return speculative ? noc::NodeKind::kFanoutSpeculative
                     : noc::NodeKind::kFanoutNonSpeculative;
}

}  // namespace specnoc::core
