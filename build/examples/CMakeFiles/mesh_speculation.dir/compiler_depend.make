# Empty compiler generated dependencies file for mesh_speculation.
# This may be replaced when dependencies are built.
