#include "stats/telemetry.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "util/contract.h"
#include "util/error.h"
#include "noc/network.h"
#include "stats/metrics.h"

namespace specnoc::stats {

double TelemetryEpoch::events_per_second() const {
  const TimePs span = end_ps - start_ps;
  if (span <= 0) return 0.0;
  // events / (span ps) * 1e12 ps/s.
  return static_cast<double>(events) * 1e12 / static_cast<double>(span);
}

bool operator==(const TelemetryEpoch& a, const TelemetryEpoch& b) {
  return a.start_ps == b.start_ps && a.end_ps == b.end_ps &&
         a.events == b.events && a.kills == b.kills &&
         a.prealloc_hits == b.prealloc_hits &&
         a.prealloc_misses == b.prealloc_misses &&
         a.contended_grants == b.contended_grants &&
         a.watchdog_releases == b.watchdog_releases &&
         a.pending == b.pending && a.overflow_pending == b.overflow_pending &&
         a.stall_time_ps == b.stall_time_ps &&
         a.lane_events == b.lane_events && a.windows == b.windows;
}

bool operator==(const TelemetrySeries& a, const TelemetrySeries& b) {
  return a.epoch_ps == b.epoch_ps && a.epochs_total == b.epochs_total &&
         a.dropped == b.dropped && a.epochs == b.epochs;
}

namespace {

util::Json epoch_to_json(const TelemetryEpoch& epoch) {
  util::Json json = util::Json::object();
  json.set("start_ps", static_cast<std::uint64_t>(epoch.start_ps));
  json.set("end_ps", static_cast<std::uint64_t>(epoch.end_ps));
  json.set("events", epoch.events);
  json.set("kills", epoch.kills);
  json.set("prealloc_hits", epoch.prealloc_hits);
  json.set("prealloc_misses", epoch.prealloc_misses);
  json.set("contended_grants", epoch.contended_grants);
  json.set("watchdog_releases", epoch.watchdog_releases);
  json.set("pending", epoch.pending);
  json.set("overflow_pending", epoch.overflow_pending);
  util::Json stalls = util::Json::object();
  for (const auto& [klass, ps] : epoch.stall_time_ps) stalls.set(klass, ps);
  json.set("stall_time_ps", std::move(stalls));
  if (!epoch.lane_events.empty()) {
    util::Json lanes = util::Json::array();
    for (const std::uint64_t events : epoch.lane_events) {
      lanes.push_back(events);
    }
    json.set("lane_events", std::move(lanes));
    json.set("windows", epoch.windows);
  }
  return json;
}

TelemetryEpoch epoch_from_json(const util::Json& json) {
  TelemetryEpoch epoch;
  epoch.start_ps = static_cast<TimePs>(json.at("start_ps").as_u64());
  epoch.end_ps = static_cast<TimePs>(json.at("end_ps").as_u64());
  epoch.events = json.at("events").as_u64();
  epoch.kills = json.at("kills").as_u64();
  epoch.prealloc_hits = json.at("prealloc_hits").as_u64();
  epoch.prealloc_misses = json.at("prealloc_misses").as_u64();
  epoch.contended_grants = json.at("contended_grants").as_u64();
  epoch.watchdog_releases = json.at("watchdog_releases").as_u64();
  epoch.pending = json.at("pending").as_u64();
  epoch.overflow_pending = json.at("overflow_pending").as_u64();
  for (const auto& [klass, ps] : json.at("stall_time_ps").members()) {
    epoch.stall_time_ps.emplace_back(klass, ps.as_u64());
  }
  if (const util::Json* lanes = json.find("lane_events")) {
    for (const util::Json& events : lanes->items()) {
      epoch.lane_events.push_back(events.as_u64());
    }
    epoch.windows = json.at("windows").as_u64();
  }
  return epoch;
}

}  // namespace

util::Json telemetry_series_to_json(const TelemetrySeries& series) {
  util::Json json = util::Json::object();
  json.set("epoch_ps", static_cast<std::uint64_t>(series.epoch_ps));
  json.set("epochs_total", series.epochs_total);
  json.set("dropped", series.dropped);
  util::Json epochs = util::Json::array();
  for (const TelemetryEpoch& epoch : series.epochs) {
    epochs.push_back(epoch_to_json(epoch));
  }
  json.set("epochs", std::move(epochs));
  return json;
}

TelemetrySeries telemetry_series_from_json(const util::Json& json) {
  TelemetrySeries series;
  series.epoch_ps = static_cast<TimePs>(json.at("epoch_ps").as_u64());
  series.epochs_total = json.at("epochs_total").as_u64();
  series.dropped = json.at("dropped").as_u64();
  for (const util::Json& epoch : json.at("epochs").items()) {
    series.epochs.push_back(epoch_from_json(epoch));
  }
  return series;
}

TelemetrySampler::TelemetrySampler(TelemetryOptions options)
    : options_(options) {
  SPECNOC_EXPECTS(!options_.enabled() || options_.ring_capacity >= 1);
  series_.epoch_ps = options_.epoch_ps;
}

void TelemetrySampler::arm(noc::Network& net,
                           const MetricsRegistry& registry) {
  SPECNOC_EXPECTS(options_.enabled());
  SPECNOC_EXPECTS(net_ == nullptr);
  net_ = &net;
  registry_ = &registry;
  interval_start_ = net.now();
  events_at_start_ = net.executed();
  counters_at_start_ = registry.telemetry_counters();
  if (sim::PartitionedScheduler* psched = net.partitioned_scheduler()) {
    lane_events_at_start_ = psched->per_lane_executed();
    windows_at_start_ = psched->windows();
  }
  net.set_epoch_hook(options_.epoch_ps,
                     [this](TimePs boundary) { sample(boundary); });
}

void TelemetrySampler::sample(TimePs boundary) {
  // The hook fires when an event first lands at or past `boundary`, so the
  // interval [interval_start_, boundary) has just completed. A quiet
  // stretch spanning several epochs closes as one wide interval.
  if (boundary > interval_start_) close_interval(boundary);
}

void TelemetrySampler::close_interval(TimePs end) {
  TelemetryEpoch epoch;
  epoch.start_ps = interval_start_;
  epoch.end_ps = end;
  const std::uint64_t executed = net_->executed();
  epoch.events = executed - events_at_start_;
  TelemetryCounters now = registry_->telemetry_counters();
  epoch.kills = now.kills - counters_at_start_.kills;
  epoch.prealloc_hits = now.prealloc_hits - counters_at_start_.prealloc_hits;
  epoch.prealloc_misses =
      now.prealloc_misses - counters_at_start_.prealloc_misses;
  epoch.contended_grants =
      now.contended_grants - counters_at_start_.contended_grants;
  epoch.watchdog_releases =
      now.watchdog_releases - counters_at_start_.watchdog_releases;
  epoch.pending = net_->pending();
  epoch.overflow_pending = net_->overflow_pending();
  // Interval stall time = run total minus the total at the previous close;
  // classes quiet in this interval are omitted (delta 0).
  for (const auto& [klass, total] : now.stall_time_ps) {
    const auto it = counters_at_start_.stall_time_ps.find(klass);
    const std::uint64_t before =
        it != counters_at_start_.stall_time_ps.end() ? it->second : 0;
    if (total != before) epoch.stall_time_ps.emplace_back(klass, total - before);
  }
  if (sim::PartitionedScheduler* psched = net_->partitioned_scheduler()) {
    std::vector<std::uint64_t> lane_now = psched->per_lane_executed();
    epoch.lane_events.resize(lane_now.size());
    for (std::size_t i = 0; i < lane_now.size(); ++i) {
      epoch.lane_events[i] = lane_now[i] - lane_events_at_start_[i];
    }
    epoch.windows = psched->windows() - windows_at_start_;
    lane_events_at_start_ = std::move(lane_now);
    windows_at_start_ = psched->windows();
  }
  push_epoch(std::move(epoch));

  interval_start_ = end;
  events_at_start_ = executed;
  counters_at_start_ = std::move(now);
}

void TelemetrySampler::push_epoch(TelemetryEpoch epoch) {
  ++series_.epochs_total;
  if (series_.epochs.size() >= options_.ring_capacity) {
    // Flight-recorder semantics: keep the most recent epochs.
    series_.epochs.erase(series_.epochs.begin());
    ++series_.dropped;
  }
  series_.epochs.push_back(std::move(epoch));
}

TelemetrySeries TelemetrySampler::finish() {
  if (net_ != nullptr) {
    const TimePs end = net_->now();
    if (end > interval_start_) close_interval(end);
    net_->clear_epoch_hook();
    net_ = nullptr;
    registry_ = nullptr;
  }
  return std::move(series_);
}

void TelemetrySampler::dump_flight_recorder(std::FILE* out) const {
  std::fprintf(out,
               "[telemetry] flight recorder: %llu interval(s) observed, "
               "%zu retained, %llu dropped (epoch %llu ps)\n",
               static_cast<unsigned long long>(series_.epochs_total),
               series_.epochs.size(),
               static_cast<unsigned long long>(series_.dropped),
               static_cast<unsigned long long>(options_.epoch_ps));
  for (const TelemetryEpoch& epoch : series_.epochs) {
    std::uint64_t stall = 0;
    for (const auto& [klass, ps] : epoch.stall_time_ps) stall += ps;
    std::fprintf(out,
                 "[telemetry]   [%llu, %llu) events=%llu kills=%llu "
                 "prealloc=%llu/%llu grants=%llu pending=%llu+%llu "
                 "stall=%llups\n",
                 static_cast<unsigned long long>(epoch.start_ps),
                 static_cast<unsigned long long>(epoch.end_ps),
                 static_cast<unsigned long long>(epoch.events),
                 static_cast<unsigned long long>(epoch.kills),
                 static_cast<unsigned long long>(epoch.prealloc_hits),
                 static_cast<unsigned long long>(epoch.prealloc_misses),
                 static_cast<unsigned long long>(epoch.contended_grants),
                 static_cast<unsigned long long>(epoch.pending),
                 static_cast<unsigned long long>(epoch.overflow_pending),
                 static_cast<unsigned long long>(stall));
  }
}

const char* to_string(TelemetryFrameKind kind) {
  switch (kind) {
    case TelemetryFrameKind::kStart:
      return "start";
    case TelemetryFrameKind::kRun:
      return "run";
    case TelemetryFrameKind::kEnd:
      return "end";
  }
  SPECNOC_UNREACHABLE("unknown TelemetryFrameKind");
}

std::string telemetry_frame_write(TelemetryFrameKind kind, util::Json body) {
  SPECNOC_EXPECTS(body.is_object());
  SPECNOC_EXPECTS(body.find("frame") == nullptr);
  util::Json frame = util::Json::object();
  frame.set("frame", to_string(kind));
  for (const auto& [key, value] : body.members()) {
    frame.set(key, value);
  }
  return util::json_write(frame);
}

TelemetryFrame telemetry_frame_parse(std::string_view line) {
  TelemetryFrame frame;
  frame.body = util::json_parse(line);
  if (!frame.body.is_object()) {
    throw ConfigError("telemetry frame is not a JSON object");
  }
  const util::Json* kind = frame.body.find("frame");
  if (kind == nullptr) {
    throw ConfigError("telemetry frame lacks a \"frame\" discriminator");
  }
  const std::string& name = kind->as_string();
  if (name == "start") {
    frame.kind = TelemetryFrameKind::kStart;
  } else if (name == "run") {
    frame.kind = TelemetryFrameKind::kRun;
  } else if (name == "end") {
    frame.kind = TelemetryFrameKind::kEnd;
  } else {
    throw ConfigError("unknown telemetry frame kind '" + name + "'");
  }
  return frame;
}

struct TelemetryStream::Impl {
  std::mutex mutex;
  std::FILE* file = nullptr;
  bool owned = false;
};

TelemetryStream::TelemetryStream(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  if (path == "-") {
    impl_->file = stdout;
    return;
  }
  impl_->file = std::fopen(path.c_str(), "w");
  if (impl_->file == nullptr) {
    throw ConfigError("cannot open telemetry output '" + path + "'");
  }
  impl_->owned = true;
}

TelemetryStream::~TelemetryStream() {
  if (impl_->owned) std::fclose(impl_->file);
}

void TelemetryStream::emit(TelemetryFrameKind kind, util::Json body) {
  std::string line = telemetry_frame_write(kind, std::move(body));
  line.push_back('\n');
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::fwrite(line.data(), 1, line.size(), impl_->file);
  std::fflush(impl_->file);
}

}  // namespace specnoc::stats
