file(REMOVE_RECURSE
  "libspecnoc_nodes.a"
)
