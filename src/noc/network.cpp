#include "noc/network.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "util/error.h"

namespace specnoc::noc {
namespace {

// Observer hooks are implemented by single-threaded stats/power code, but
// partitioned runs emit them from several lanes at once. These forwarders
// serialize every hook call behind one shared mutex for the duration of a
// multi-threaded run (installed by HookSerializer below). One mutex for all
// three streams keeps cross-stream consumers (e.g. a recorder that reads
// packet state a metrics observer also touches) trivially safe; hook
// callbacks are tiny, so a single lock is cheaper than it looks.
class LockedTraffic final : public TrafficObserver {
 public:
  LockedTraffic(std::mutex& mutex, TrafficObserver& inner)
      : mutex_(mutex), inner_(inner) {}
  void on_flit_ejected(const Packet& packet, std::uint32_t dest,
                       FlitKind kind, TimePs when) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_flit_ejected(packet, dest, kind, when);
  }
  void on_packet_injected(const Packet& packet, TimePs when) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_packet_injected(packet, when);
  }

 private:
  std::mutex& mutex_;
  TrafficObserver& inner_;
};

class LockedEnergy final : public EnergyObserver {
 public:
  LockedEnergy(std::mutex& mutex, EnergyObserver& inner)
      : mutex_(mutex), inner_(inner) {}
  void on_node_op(const Node& node, NodeOp op, TimePs when) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_node_op(node, op, when);
  }
  void on_channel_flit(LengthUm length, TimePs when) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_channel_flit(length, when);
  }

 private:
  std::mutex& mutex_;
  EnergyObserver& inner_;
};

class LockedMetrics final : public MetricsObserver {
 public:
  LockedMetrics(std::mutex& mutex, MetricsObserver& inner)
      : mutex_(mutex), inner_(inner) {}
  void on_flit_killed(const Node& node, const Flit& flit,
                      TimePs when) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_flit_killed(node, flit, when);
  }
  void on_prealloc(const Node& node, bool hit, TimePs when) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_prealloc(node, hit, when);
  }
  void on_contended_grant(const Node& node, TimePs when) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_contended_grant(node, when);
  }
  void on_watchdog_release(const Node& node, TimePs when) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_watchdog_release(node, when);
  }
  void on_channel_stall(const Channel& channel, TimePs start,
                        TimePs end) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_channel_stall(channel, start, end);
  }

 private:
  std::mutex& mutex_;
  MetricsObserver& inner_;
};

/// Scoped swap of the hook pointers for locking forwarders. Restores the
/// originals on destruction, so observers attached by tests/experiments
/// never see the wrappers outside the run call.
class HookSerializer {
 public:
  explicit HookSerializer(SimHooks& hooks) : hooks_(hooks), saved_(hooks) {
    if (saved_.traffic != nullptr) {
      traffic_.emplace(mutex_, *saved_.traffic);
      hooks_.traffic = &*traffic_;
    }
    if (saved_.energy != nullptr) {
      energy_.emplace(mutex_, *saved_.energy);
      hooks_.energy = &*energy_;
    }
    if (saved_.metrics != nullptr) {
      metrics_.emplace(mutex_, *saved_.metrics);
      hooks_.metrics = &*metrics_;
    }
  }
  ~HookSerializer() { hooks_ = saved_; }
  HookSerializer(const HookSerializer&) = delete;
  HookSerializer& operator=(const HookSerializer&) = delete;

 private:
  SimHooks& hooks_;
  SimHooks saved_;
  std::mutex mutex_;
  std::optional<LockedTraffic> traffic_;
  std::optional<LockedEnergy> energy_;
  std::optional<LockedMetrics> metrics_;
};

}  // namespace

void Network::enable_partitions(std::uint32_t lanes, TimePs lookahead) {
  SPECNOC_EXPECTS(psched_ == nullptr);
  SPECNOC_EXPECTS(nodes_.empty() && channels_.empty());
  if (lanes <= 1) return;  // degenerate partitioning: stay sequential
  if (lookahead <= 0) {
    throw ConfigError(
        "partitioned execution requires positive lookahead; a topology "
        "whose cross-partition channels have zero minimum latency must run "
        "sequentially");
  }
  psched_ = std::make_unique<sim::PartitionedScheduler>(scheduler_, lanes,
                                                        lookahead);
}

void Network::set_build_partition(std::uint32_t partition) {
  SPECNOC_EXPECTS(partition < partitions());
  build_partition_ = partition;
}

void Network::set_worker_threads(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  worker_threads_ = threads;
}

unsigned Network::effective_threads() const {
  return std::min<unsigned>(worker_threads_, partitions());
}

void Network::run() {
  if (psched_ == nullptr) {
    scheduler_.run();
    return;
  }
  psched_->set_threads(effective_threads());
  if (effective_threads() > 1) {
    HookSerializer serialize(hooks_);
    psched_->run();
  } else {
    psched_->run();
  }
}

void Network::run_until(TimePs t) {
  if (psched_ == nullptr) {
    scheduler_.run_until(t);
    return;
  }
  psched_->set_threads(effective_threads());
  if (effective_threads() > 1) {
    HookSerializer serialize(hooks_);
    psched_->run_until(t);
  } else {
    psched_->run_until(t);
  }
}

TimePs Network::now() const {
  return psched_ != nullptr ? psched_->now() : scheduler_.now();
}

std::uint64_t Network::executed() const {
  return psched_ != nullptr ? psched_->executed() : scheduler_.executed();
}

std::size_t Network::pending() const {
  return psched_ != nullptr ? psched_->pending() : scheduler_.pending();
}

std::size_t Network::overflow_pending() const {
  return psched_ != nullptr ? psched_->overflow_pending()
                            : scheduler_.overflow_pending();
}

void Network::set_epoch_hook(TimePs epoch_ps, sim::Scheduler::EpochHook hook) {
  if (psched_ != nullptr) {
    psched_->set_epoch_hook(epoch_ps, std::move(hook));
  } else {
    scheduler_.set_epoch_hook(epoch_ps, std::move(hook));
  }
}

void Network::clear_epoch_hook() {
  if (psched_ != nullptr) {
    psched_->clear_epoch_hook();
  } else {
    scheduler_.clear_epoch_hook();
  }
}

Channel& Network::add_channel(ChannelParams params, std::string name,
                              Node& up, std::uint32_t up_port, Node& down,
                              std::uint32_t down_port) {
  // The channel's home lane is the upstream node's: send() runs there.
  Channel& ref = *arena_.create<Channel>(lane(up.partition()), hooks_,
                                         params, std::move(name));
  arena_.label_pool<Channel>("channel");
  channels_.push_back(&ref);
  ref.connect(up, up_port, down, down_port);
  if (psched_ != nullptr && up.partition() != down.partition()) {
    const TimePs min_latency = std::min(params.delay_fwd, params.delay_ack);
    if (min_latency < psched_->lookahead()) {
      throw ConfigError("cross-partition channel '" + ref.name() +
                        "' has min latency " + std::to_string(min_latency) +
                        " ps below the declared lookahead " +
                        std::to_string(psched_->lookahead()) + " ps");
    }
    ref.make_cross_partition(*psched_, up.partition(), down.partition());
  }
  return ref;
}

void Network::register_source(SourceNode& source) {
  sources_.push_back(&source);
}

void Network::register_sink(SinkNode& sink) { sinks_.push_back(&sink); }

}  // namespace specnoc::noc
