#include "util/bits.h"

#include <gtest/gtest.h>

namespace specnoc {
namespace {

TEST(BitsTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(63));
}

TEST(BitsTest, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(8), 3u);
  EXPECT_EQ(log2_exact(64), 6u);
}

TEST(BitsTest, RotlShuffleOn3Bits) {
  // The shuffle permutation for an 8-node network: dst = rotl(src, 3 bits).
  EXPECT_EQ(rotl_bits(0b000, 3), 0b000u);
  EXPECT_EQ(rotl_bits(0b001, 3), 0b010u);
  EXPECT_EQ(rotl_bits(0b100, 3), 0b001u);
  EXPECT_EQ(rotl_bits(0b101, 3), 0b011u);
  EXPECT_EQ(rotl_bits(0b111, 3), 0b111u);
}

TEST(BitsTest, RotlIsPermutation) {
  for (std::uint32_t bits : {2u, 3u, 4u, 6u}) {
    const std::uint32_t n = 1u << bits;
    std::vector<bool> seen(n, false);
    for (std::uint32_t v = 0; v < n; ++v) {
      const auto r = rotl_bits(v, bits);
      ASSERT_LT(r, n);
      EXPECT_FALSE(seen[r]);
      seen[r] = true;
    }
  }
}

TEST(BitsTest, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(0b1010, 4), 0b0101u);
}

TEST(BitsTest, ReverseIsInvolution) {
  for (std::uint32_t v = 0; v < 16; ++v) {
    EXPECT_EQ(reverse_bits(reverse_bits(v, 4), 4), v);
  }
}

TEST(BitsTest, ComplementBits) {
  EXPECT_EQ(complement_bits(0b000, 3), 0b111u);
  EXPECT_EQ(complement_bits(0b101, 3), 0b010u);
}

TEST(BitsTest, TransposeBits) {
  EXPECT_EQ(transpose_bits(0b0110, 4), 0b1001u);
  EXPECT_EQ(transpose_bits(0b1100, 4), 0b0011u);
  EXPECT_EQ(transpose_bits(0b110100, 6), 0b100110u);
}

TEST(BitsTest, TransposeIsInvolution) {
  for (std::uint32_t v = 0; v < 64; ++v) {
    EXPECT_EQ(transpose_bits(transpose_bits(v, 6), 6), v);
  }
}

}  // namespace
}  // namespace specnoc
