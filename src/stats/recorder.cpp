#include "stats/recorder.h"

#include <algorithm>
#include <numeric>

#include "util/contract.h"
#include "util/summary_stats.h"
#include "util/units.h"

namespace specnoc::stats {

TrafficRecorder::TrafficRecorder(const noc::PacketStore& store)
    : store_(store) {}

void TrafficRecorder::on_flit_ejected(const noc::Packet& packet,
                                      std::uint32_t dest, noc::FlitKind kind,
                                      TimePs when) {
  if (window_open_ && !window_closed_ && when >= window_start_) {
    ++window_ejected_;
  }
  if (kind != noc::FlitKind::kHeader) return;

  const noc::Message& msg = store_.message(packet.message);
  if (!msg.measured) return;
  auto [it, inserted] =
      pending_.try_emplace(msg.id, PendingMessage{msg.dests, when});
  PendingMessage& entry = it->second;
  SPECNOC_ASSERT(entry.remaining.test(dest));
  entry.remaining.reset(dest);
  entry.last = std::max(entry.last, when);
  if (entry.remaining.none()) {
    latencies_.push_back(entry.last - msg.gen_time);
    pending_.erase(it);
  }
}

void TrafficRecorder::on_packet_injected(const noc::Packet& packet,
                                         TimePs when) {
  if (window_open_ && !window_closed_ && when >= window_start_) {
    window_injected_ += packet.num_flits;
  }
}

void TrafficRecorder::open_window(TimePs now) {
  SPECNOC_EXPECTS(!window_open_);
  window_open_ = true;
  window_start_ = now;
}

void TrafficRecorder::close_window(TimePs now) {
  SPECNOC_EXPECTS(window_open_ && !window_closed_);
  window_closed_ = true;
  window_end_ = now;
}

TimePs TrafficRecorder::window_duration() const {
  SPECNOC_EXPECTS(window_closed_);
  return window_end_ - window_start_;
}

double TrafficRecorder::delivered_flits_per_ns(
    std::uint32_t num_sources) const {
  SPECNOC_EXPECTS(num_sources > 0);
  return flits_per_ns(static_cast<double>(window_ejected_),
                      window_duration()) /
         num_sources;
}

double TrafficRecorder::injected_flits_per_ns(
    std::uint32_t num_sources) const {
  SPECNOC_EXPECTS(num_sources > 0);
  return flits_per_ns(static_cast<double>(window_injected_),
                      window_duration()) /
         num_sources;
}

double TrafficRecorder::mean_latency_ps() const {
  if (latencies_.empty()) return 0.0;
  const double sum = std::accumulate(latencies_.begin(), latencies_.end(),
                                     0.0);
  return sum / static_cast<double>(latencies_.size());
}

TimePs TrafficRecorder::max_latency_ps() const {
  if (latencies_.empty()) return 0;
  return *std::max_element(latencies_.begin(), latencies_.end());
}

double TrafficRecorder::latency_percentile_ps(double p) const {
  if (latencies_.empty()) return 0.0;
  SummaryStats stats;
  for (const TimePs latency : latencies_) {
    stats.add(static_cast<double>(latency));
  }
  return stats.percentile(p);
}

}  // namespace specnoc::stats
