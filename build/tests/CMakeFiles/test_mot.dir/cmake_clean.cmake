file(REMOVE_RECURSE
  "CMakeFiles/test_mot.dir/mot/addressing_test.cpp.o"
  "CMakeFiles/test_mot.dir/mot/addressing_test.cpp.o.d"
  "CMakeFiles/test_mot.dir/mot/layout_test.cpp.o"
  "CMakeFiles/test_mot.dir/mot/layout_test.cpp.o.d"
  "CMakeFiles/test_mot.dir/mot/topology_test.cpp.o"
  "CMakeFiles/test_mot.dir/mot/topology_test.cpp.o.d"
  "test_mot"
  "test_mot.pdb"
  "test_mot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
