#include "sim/scheduler.h"

// Regression note: the previous kernel (a std::priority_queue of
// std::function entries) moved events out of priority_queue::top() through a
// const_cast — UB-adjacent, and each pop paid an O(log n) sift plus a heap
// allocation for any capture beyond the std::function SBO. The bucket-queue
// pop path moves events out of a mutable slab entry instead; the ASan/UBSan
// CI job exercises this path across the whole test suite.

namespace specnoc::sim {

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(TimePs t) {
  SPECNOC_EXPECTS(t >= now_);
  while (!queue_.empty() && queue_.min_time() <= t) {
    step();
  }
  now_ = t;
  // Keep the bucket window tracking the clock so short relative delays
  // scheduled after a long quiet gap still land in the O(1) near tier.
  queue_.advance_to(t);
}

}  // namespace specnoc::sim
