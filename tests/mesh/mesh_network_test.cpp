#include "mesh/mesh_network.h"

#include <map>

#include <gtest/gtest.h>

#include "stats/recorder.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"

namespace specnoc::mesh {
namespace {

using namespace specnoc::literals;

class EjectionMap : public noc::TrafficObserver {
 public:
  void on_flit_ejected(const noc::Packet& packet, std::uint32_t dest,
                       noc::FlitKind kind, TimePs when) override {
    ++flits[dest];
    if (kind == noc::FlitKind::kHeader) {
      header_time[{packet.id, dest}] = when;
    }
  }
  void on_packet_injected(const noc::Packet&, TimePs) override {
    ++injected;
  }
  std::map<std::uint32_t, std::uint64_t> flits;
  std::map<std::pair<noc::PacketId, std::uint32_t>, TimePs> header_time;
  int injected = 0;
};

TEST(MeshNetworkTest, UnicastReachesExactlyItsDestination) {
  MeshConfig cfg;  // 4x4
  MeshNetwork net(cfg);
  EjectionMap rec;
  net.net().hooks().traffic = &rec;
  for (std::uint32_t src = 0; src < 16; ++src) {
    for (std::uint32_t dst = 0; dst < 16; ++dst) {
      rec.flits.clear();
      net.send_message(src, noc::DestSet::single(dst), false);
      net.scheduler().run();
      ASSERT_EQ(rec.flits.size(), 1u) << src << "->" << dst;
      EXPECT_EQ(rec.flits[dst], 5u);
    }
  }
}

TEST(MeshNetworkTest, LatencyScalesWithManhattanDistance) {
  MeshConfig cfg;
  MeshNetwork net(cfg);
  EjectionMap rec;
  net.net().hooks().traffic = &rec;
  const TimePs t0 = net.scheduler().now();
  net.send_message(0, noc::DestSet::single(1), false);  // 1 hop
  net.scheduler().run();
  const TimePs near = rec.header_time.begin()->second - t0;

  rec.header_time.clear();
  const TimePs t1 = net.scheduler().now();
  net.send_message(0, noc::DestSet::single(15), false);  // 6 hops
  net.scheduler().run();
  const TimePs far = rec.header_time.begin()->second - t1;
  EXPECT_GT(far, near + 4 * 350);  // at least 5 extra router traversals
}

TEST(MeshNetworkTest, TreeMulticastReachesAllOnce) {
  MeshConfig cfg;
  MeshNetwork net(cfg);
  EjectionMap rec;
  net.net().hooks().traffic = &rec;
  const noc::DestSet dests = noc::DestSet::single(0) | noc::DestSet::single(3) |
                              noc::DestSet::single(9) | noc::DestSet::single(15);
  net.send_message(5, dests, false);
  net.scheduler().run();
  EXPECT_EQ(rec.injected, 1);  // one tree packet
  EXPECT_EQ(rec.flits.size(), 4u);
  for (const auto& [dest, count] : rec.flits) {
    EXPECT_EQ(count, 5u) << dest;
  }
}

TEST(MeshNetworkTest, SerialModeExpandsMulticast) {
  MeshConfig cfg;
  cfg.multicast = MulticastMode::kSerial;
  MeshNetwork net(cfg);
  EjectionMap rec;
  net.net().hooks().traffic = &rec;
  net.send_message(5, noc::DestSet::single(0) | noc::DestSet::single(15), false);
  net.scheduler().run();
  EXPECT_EQ(rec.injected, 2);
  EXPECT_EQ(rec.flits[0], 5u);
  EXPECT_EQ(rec.flits[15], 5u);
}

TEST(MeshNetworkTest, BroadcastFromEveryCorner) {
  MeshConfig cfg;
  MeshNetwork net(cfg);
  EjectionMap rec;
  net.net().hooks().traffic = &rec;
  for (const std::uint32_t src : {0u, 3u, 12u, 15u}) {
    rec.flits.clear();
    net.send_message(src, noc::DestSet::from_word(0xFFFF), false);
    net.scheduler().run();
    ASSERT_EQ(rec.flits.size(), 16u) << src;
    for (const auto& [dest, count] : rec.flits) {
      EXPECT_EQ(count, 5u);
    }
  }
}

TEST(MeshNetworkTest, WorksOn8x8With64Endpoints) {
  MeshConfig cfg;
  cfg.cols = 8;
  cfg.rows = 8;
  MeshNetwork net(cfg);
  EjectionMap rec;
  net.net().hooks().traffic = &rec;
  net.send_message(0, noc::DestSet::first_n(64), false);  // broadcast to all 64
  net.scheduler().run();
  EXPECT_EQ(rec.flits.size(), 64u);
}

TEST(MeshNetworkTest, SustainsSaturatedMulticastTraffic) {
  // Deadlock regression for the mesh (same watchdog discipline as MoT).
  MeshConfig cfg;
  MeshNetwork net(cfg);
  stats::TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  auto pattern = traffic::make_benchmark(traffic::BenchmarkId::kMulticast10,
                                         16);
  traffic::DriverConfig dcfg;
  dcfg.mode = traffic::InjectionMode::kBacklogged;
  dcfg.seed = 11;
  traffic::TrafficDriver driver(net, *pattern, dcfg);
  driver.start();
  rec.open_window(0);
  net.scheduler().run_until(10000_ns);
  const auto half = rec.window_flits_ejected();
  net.scheduler().run_until(20000_ns);
  rec.close_window(net.scheduler().now());
  ASSERT_GT(half, 1000u);
  EXPECT_GT(rec.window_flits_ejected() - half, half / 2);
}

TEST(MeshNetworkTest, NonSquareShapes) {
  MeshConfig cfg;
  cfg.cols = 8;
  cfg.rows = 2;
  MeshNetwork net(cfg);
  EjectionMap rec;
  net.net().hooks().traffic = &rec;
  net.send_message(0, noc::DestSet::single(15) | noc::DestSet::single(7), false);
  net.scheduler().run();
  EXPECT_EQ(rec.flits.size(), 2u);
}

TEST(MeshNetworkTest, AreaScalesWithRouterCount) {
  MeshConfig small;  // 4x4
  MeshConfig large;
  large.cols = 8;
  large.rows = 8;
  const auto small_area = MeshNetwork(small).total_node_area();
  const auto large_area = MeshNetwork(large).total_node_area();
  EXPECT_NEAR(large_area / small_area, 4.0, 0.01);
}

}  // namespace
}  // namespace specnoc::mesh
