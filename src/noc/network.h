// Network: owns the scheduler, all nodes, all channels, and packet storage.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "sim/scheduler.h"
#include "noc/channel.h"
#include "noc/hooks.h"
#include "noc/node.h"
#include "noc/packet.h"
#include "noc/sink.h"
#include "noc/source.h"

namespace specnoc::noc {

/// Container and factory for a simulated network. Topology layers (mot/core)
/// populate it; experiment layers drive its scheduler and hooks.
class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Scheduler& scheduler() { return scheduler_; }
  SimHooks& hooks() { return hooks_; }
  PacketStore& packets() { return packets_; }

  /// Creates a node of type T (constructed with scheduler and hooks first).
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(scheduler_, hooks_,
                                    std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Creates a channel and wires it between two node ports.
  Channel& add_channel(ChannelParams params, std::string name, Node& up,
                       std::uint32_t up_port, Node& down,
                       std::uint32_t down_port);

  /// Registers network interfaces so drivers can find them by index.
  void register_source(SourceNode& source);
  void register_sink(SinkNode& sink);

  SourceNode& source(std::uint32_t i) { return *sources_.at(i); }
  SinkNode& sink(std::uint32_t i) { return *sinks_.at(i); }
  std::uint32_t num_sources() const {
    return static_cast<std::uint32_t>(sources_.size());
  }
  std::uint32_t num_sinks() const {
    return static_cast<std::uint32_t>(sinks_.size());
  }

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<Channel>>& channels() const {
    return channels_;
  }

 private:
  sim::Scheduler scheduler_;
  SimHooks hooks_;
  PacketStore packets_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<SourceNode*> sources_;
  std::vector<SinkNode*> sinks_;
};

}  // namespace specnoc::noc
