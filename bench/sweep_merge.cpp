// sweep_merge: combine shard files produced by harness --shard workers.
//
// Validates that every input belongs to the same sweep (schema version,
// tool, seed, shard count, per-grid spec-key hashes), merges the outcomes
// in spec order, and writes one merged JSONL file the harness can render
// with --from. The coverage report (missing cells, duplicates, failures)
// goes to stderr; exit code 0 means the merge is complete, 3 means it is
// valid but has holes (a worker is still missing), 2 means the inputs do
// not belong together.
//
//   bench_table1_throughput --shard 0/3 --out s0.jsonl   # on machine A
//   bench_table1_throughput --shard 1/3 --out s1.jsonl   # on machine B
//   bench_table1_throughput --shard 2/3 --out s2.jsonl   # on machine C
//   sweep_merge --out merged.jsonl s0.jsonl s1.jsonl s2.jsonl
//   bench_table1_throughput --from merged.jsonl          # the tables
#include <cstdio>
#include <string>
#include <vector>

#include "stats/sweep.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/json.h"

namespace {

/// Work done by one shard file: cell count, summed run wall time, and how
/// many cells needed more than one attempt. Read from the serialized "run"
/// objects, so it works on any shard file regardless of which harness or
/// machine produced it.
struct ShardWork {
  std::size_t cells = 0;
  double wall_ms = 0.0;
  std::uint64_t retries = 0;
};

ShardWork tally_shard(const specnoc::stats::ShardFile& file) {
  ShardWork work;
  for (const auto& [grid, records] : file.records) {
    static_cast<void>(grid);
    for (const auto& [cell, record] : records) {
      static_cast<void>(cell);
      ++work.cells;
      const specnoc::util::Json* run = record.data.find("run");
      if (run == nullptr) continue;
      if (const auto* wall = run->find("wall_ms")) {
        work.wall_ms += wall->as_double();
      }
      if (const auto* attempts = run->find("attempts")) {
        const std::uint64_t n = attempts->as_u64();
        if (n > 1) work.retries += n - 1;
      }
    }
  }
  return work;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specnoc;

  std::string out_path;
  std::vector<std::string> shard_paths;

  util::CliParser cli(
      "sweep_merge",
      "Validate and merge shard files from a sharded design-space sweep.");
  cli.add_string("--out", &out_path, "merged JSONL output path (required)");
  cli.add_positional_list("shard.jsonl", &shard_paths,
                          "shard files produced by harness --shard workers");
  cli.parse_or_exit(argc, argv);

  try {
    if (out_path.empty()) {
      throw util::UsageError("--out is required");
    }
    if (shard_paths.empty()) {
      throw util::UsageError("no shard files given");
    }

    std::vector<stats::ShardFile> inputs;
    inputs.reserve(shard_paths.size());
    for (const auto& path : shard_paths) {
      inputs.push_back(stats::load_shard_file(path));
    }

    ShardWork total;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const ShardWork work = tally_shard(inputs[i]);
      std::fprintf(stderr, "shard %s: %zu cell(s), %.1f ms run wall time, "
                   "%llu retried attempt(s)\n",
                   shard_paths[i].c_str(), work.cells, work.wall_ms,
                   static_cast<unsigned long long>(work.retries));
      total.cells += work.cells;
      total.wall_ms += work.wall_ms;
      total.retries += work.retries;
    }
    std::fprintf(stderr, "all shards: %zu cell(s), %.1f ms run wall time, "
                 "%llu retried attempt(s)\n",
                 total.cells, total.wall_ms,
                 static_cast<unsigned long long>(total.retries));

    stats::MergeReport report;
    const stats::ShardFile merged = stats::merge_shards(inputs, &report);
    stats::write_shard_file(merged, out_path);

    std::fprintf(stderr, "merged %zu shard file(s) of tool '%s' (seed %llu) "
                 "into %s\n",
                 shard_paths.size(), merged.manifest.tool.c_str(),
                 static_cast<unsigned long long>(merged.manifest.seed),
                 out_path.c_str());
    std::fputs(report.summary().c_str(), stderr);

    return report.complete() ? 0 : 3;
  } catch (const util::UsageError& error) {
    std::fprintf(stderr, "sweep_merge: %s\n", error.what());
    std::fputs(cli.usage().c_str(), stderr);
    return 2;
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "sweep_merge: %s\n", error.what());
    return 2;
  }
}
