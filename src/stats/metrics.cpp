#include "stats/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/contract.h"
#include "noc/channel.h"
#include "noc/node.h"

namespace specnoc::stats {

std::size_t stall_bucket(TimePs duration) {
  TimePs bound = kStallBucketUnitPs * 2;
  for (std::size_t b = 0; b + 1 < kNumStallBuckets; ++b) {
    if (duration < bound) return b;
    bound *= 2;
  }
  return kNumStallBuckets - 1;
}

std::string stall_bucket_label(std::size_t bucket) {
  SPECNOC_EXPECTS(bucket < kNumStallBuckets);
  // snprintf sidesteps a GCC 12 -Wrestrict false positive (PR105329) that
  // string concatenation trips here.
  char label[32];
  if (bucket + 1 == kNumStallBuckets) {
    std::snprintf(label, sizeof label, ">=%lldps",
                  static_cast<long long>(kStallBucketUnitPs << bucket));
  } else {
    std::snprintf(label, sizeof label, "<%lldps",
                  static_cast<long long>(kStallBucketUnitPs << (bucket + 1)));
  }
  return label;
}

std::string channel_class(const std::string& name) {
  const auto has_prefix = [&name](const char* prefix) {
    return name.rfind(prefix, 0) == 0;
  };
  if (has_prefix("src")) return "source_if";
  if (has_prefix("root->")) return "sink_if";
  if (has_prefix("mid.")) return "middle";
  if (has_prefix("fo")) return "fanout";
  if (has_prefix("fi")) return "fanin";
  if (has_prefix("ni")) return "mesh_inject";
  if (has_prefix("r>ni") || has_prefix("sr>ni")) return "mesh_eject";
  if (has_prefix("r") || has_prefix("sr")) return "mesh_hop";
  return "other";
}

std::uint64_t MetricsSnapshot::total_kills() const {
  std::uint64_t total = 0;
  for (const auto& site : sites) total += site.counters.kills;
  return total;
}

std::uint64_t MetricsSnapshot::kills_at_level(std::int32_t level) const {
  std::uint64_t total = 0;
  for (const auto& site : sites) {
    if (site.level == level) total += site.counters.kills;
  }
  return total;
}

std::uint64_t MetricsSnapshot::total_prealloc_hits() const {
  std::uint64_t total = 0;
  for (const auto& site : sites) total += site.counters.prealloc_hits;
  return total;
}

std::uint64_t MetricsSnapshot::total_prealloc_misses() const {
  std::uint64_t total = 0;
  for (const auto& site : sites) total += site.counters.prealloc_misses;
  return total;
}

std::uint64_t MetricsSnapshot::total_contended_grants() const {
  std::uint64_t total = 0;
  for (const auto& site : sites) total += site.counters.contended_grants;
  return total;
}

std::uint64_t MetricsSnapshot::total_watchdog_releases() const {
  std::uint64_t total = 0;
  for (const auto& site : sites) total += site.counters.watchdog_releases;
  return total;
}

std::uint64_t MetricsSnapshot::total_stalls() const {
  std::uint64_t total = 0;
  for (const auto& channel : channels) total += channel.stalls;
  return total;
}

const MetricsSite* MetricsSnapshot::find_site(noc::NodeKind kind,
                                              std::int32_t level) const {
  for (const auto& site : sites) {
    if (site.kind == kind && site.level == level) return &site;
  }
  return nullptr;
}

const ChannelClassMetrics* MetricsSnapshot::find_channel(
    const std::string& klass) const {
  for (const auto& channel : channels) {
    if (channel.klass == klass) return &channel;
  }
  return nullptr;
}

SiteCounters& MetricsRegistry::site(const noc::Node& node) {
  return sites_[{node.kind(), node.site().level}];
}

void MetricsRegistry::on_flit_killed(const noc::Node& node, const noc::Flit&,
                                     TimePs) {
  ++site(node).kills;
}

void MetricsRegistry::on_prealloc(const noc::Node& node, bool hit, TimePs) {
  if (hit) {
    ++site(node).prealloc_hits;
  } else {
    ++site(node).prealloc_misses;
  }
}

void MetricsRegistry::on_contended_grant(const noc::Node& node, TimePs) {
  ++site(node).contended_grants;
}

void MetricsRegistry::on_watchdog_release(const noc::Node& node, TimePs) {
  ++site(node).watchdog_releases;
}

void MetricsRegistry::on_channel_stall(const noc::Channel& channel,
                                       TimePs start, TimePs end) {
  SPECNOC_EXPECTS(end >= start);
  const TimePs duration = end - start;
  auto [it, inserted] = channels_.try_emplace(channel_class(channel.name()));
  ChannelClassMetrics& metrics = it->second;
  if (inserted) metrics.klass = it->first;
  ++metrics.stalls;
  metrics.stall_time_ps += static_cast<std::uint64_t>(duration);
  ++metrics.histogram[stall_bucket(duration)];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  // std::map iteration is already (kind, level)- and name-sorted.
  snap.sites.reserve(sites_.size());
  for (const auto& [key, counters] : sites_) {
    snap.sites.push_back({key.first, key.second, counters});
  }
  snap.channels.reserve(channels_.size());
  for (const auto& [klass, metrics] : channels_) {
    snap.channels.push_back(metrics);
  }
  snap.pdes = pdes_;
  snap.telemetry = telemetry_;
  snap.dest_spills = dest_spills_;
  snap.dest_spill_bytes = dest_spill_bytes_;
  snap.arena = arena_;
  snap.cmp = cmp_;
  return snap;
}

TelemetryCounters MetricsRegistry::telemetry_counters() const {
  TelemetryCounters totals;
  for (const auto& [key, counters] : sites_) {
    totals.kills += counters.kills;
    totals.prealloc_hits += counters.prealloc_hits;
    totals.prealloc_misses += counters.prealloc_misses;
    totals.contended_grants += counters.contended_grants;
    totals.watchdog_releases += counters.watchdog_releases;
  }
  for (const auto& [klass, metrics] : channels_) {
    totals.stall_time_ps.emplace(klass, metrics.stall_time_ps);
  }
  return totals;
}

}  // namespace specnoc::stats
