#include "nodes/fanout_nodes.h"

namespace specnoc::nodes {

BaselineFanoutNode::BaselineFanoutNode(sim::Scheduler& scheduler,
                                       noc::SimHooks& hooks, std::string name,
                                       const NodeCharacteristics& chars,
                                       noc::DestRange top_span,
                                       noc::DestRange bottom_span)
    : FanoutNodeBase(scheduler, hooks, noc::NodeKind::kFanoutBaseline,
                     std::move(name), chars, top_span, bottom_span) {}

void BaselineFanoutNode::process(const noc::Flit& flit) {
  const Dirs dirs = true_dirs(*flit.packet);
  // The baseline network admits unicast packets only, and has no
  // speculative nodes to misroute them, so exactly one direction is set.
  SPECNOC_ASSERT(dirs == kDirTop || dirs == kDirBottom);
  forward(flit, dirs, noc::NodeOp::kRouteForward);
}

SpecFanoutNode::SpecFanoutNode(sim::Scheduler& scheduler,
                               noc::SimHooks& hooks, std::string name,
                               const NodeCharacteristics& chars,
                               noc::DestRange top_span,
                               noc::DestRange bottom_span)
    : FanoutNodeBase(scheduler, hooks, noc::NodeKind::kFanoutSpeculative,
                     std::move(name), chars, top_span, bottom_span) {}

void SpecFanoutNode::process(const noc::Flit& flit) {
  forward(flit, kDirBoth, noc::NodeOp::kBroadcast);
}

NonSpecFanoutNode::NonSpecFanoutNode(sim::Scheduler& scheduler,
                                     noc::SimHooks& hooks, std::string name,
                                     const NodeCharacteristics& chars,
                                     noc::DestRange top_span,
                                     noc::DestRange bottom_span)
    : FanoutNodeBase(scheduler, hooks, noc::NodeKind::kFanoutNonSpeculative,
                     std::move(name), chars, top_span, bottom_span) {}

void NonSpecFanoutNode::process(const noc::Flit& flit) {
  const Dirs dirs = true_dirs(*flit.packet);
  if (dirs == kDirNone) {
    throttle(flit);
  } else {
    forward(flit, dirs, noc::NodeOp::kRouteForward);
  }
}

TimePs NonSpecFanoutNode::processing_latency(const noc::Flit& flit) const {
  return true_dirs(*flit.packet) == kDirNone
             ? characteristics().throttle_latency
             : fwd_latency(flit);
}

OptSpecFanoutNode::OptSpecFanoutNode(sim::Scheduler& scheduler,
                                     noc::SimHooks& hooks, std::string name,
                                     const NodeCharacteristics& chars,
                                     noc::DestRange top_span,
                                     noc::DestRange bottom_span)
    : FanoutNodeBase(scheduler, hooks, noc::NodeKind::kFanoutOptSpeculative,
                     std::move(name), chars, top_span, bottom_span) {}

void OptSpecFanoutNode::process(const noc::Flit& flit) {
  if (flit.is_header() || flit.is_tail()) {
    // Normally-transparent ports: header and tail go both ways.
    forward(flit, kDirBoth, noc::NodeOp::kBroadcast);
    return;
  }
  // Body flits revert to non-speculative routing (power optimization).
  const Dirs dirs = true_dirs(*flit.packet);
  if (dirs == kDirNone) {
    throttle(flit);
  } else {
    forward(flit, dirs, noc::NodeOp::kRouteForward);
  }
}

TimePs OptSpecFanoutNode::processing_latency(const noc::Flit& flit) const {
  const bool body = !flit.is_header() && !flit.is_tail();
  if (body && true_dirs(*flit.packet) == kDirNone) {
    return characteristics().throttle_latency;
  }
  return fwd_latency(flit);
}

OptNonSpecFanoutNode::OptNonSpecFanoutNode(sim::Scheduler& scheduler,
                                           noc::SimHooks& hooks,
                                           std::string name,
                                           const NodeCharacteristics& chars,
                                           noc::DestRange top_span,
                                           noc::DestRange bottom_span)
    : FanoutNodeBase(scheduler, hooks,
                     noc::NodeKind::kFanoutOptNonSpeculative, std::move(name),
                     chars, top_span, bottom_span) {}

void OptNonSpecFanoutNode::process(const noc::Flit& flit) {
  const Dirs dirs = true_dirs(*flit.packet);
  if (dirs == kDirNone) {
    throttle(flit);
    return;
  }
  if (flit.is_header()) {
    record_prealloc(false);
    forward(flit, dirs, noc::NodeOp::kRouteForward);
  } else {
    // Channel was pre-allocated by the header; body/tail fast-forward.
    record_prealloc(true);
    forward(flit, dirs, noc::NodeOp::kFastForward);
  }
}

TimePs OptNonSpecFanoutNode::processing_latency(const noc::Flit& flit) const {
  return true_dirs(*flit.packet) == kDirNone
             ? characteristics().throttle_latency
             : fwd_latency(flit);
}

}  // namespace specnoc::nodes
