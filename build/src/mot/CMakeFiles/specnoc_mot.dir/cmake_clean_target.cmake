file(REMOVE_RECURSE
  "libspecnoc_mot.a"
)
