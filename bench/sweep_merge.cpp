// sweep_merge: combine shard files produced by harness --shard workers.
//
// Validates that every input belongs to the same sweep (schema version,
// tool, seed, shard count, per-grid spec-key hashes), merges the outcomes
// in spec order, and writes one merged JSONL file the harness can render
// with --from. The coverage report (missing cells, duplicates, failures)
// goes to stderr; exit code 0 means the merge is complete, 3 means it is
// valid but has holes (a worker is still missing), 2 means the inputs do
// not belong together.
//
//   bench_table1_throughput --shard 0/3 --out s0.jsonl   # on machine A
//   bench_table1_throughput --shard 1/3 --out s1.jsonl   # on machine B
//   bench_table1_throughput --shard 2/3 --out s2.jsonl   # on machine C
//   sweep_merge --out merged.jsonl s0.jsonl s1.jsonl s2.jsonl
//   bench_table1_throughput --from merged.jsonl          # the tables
#include <cstdio>
#include <string>
#include <vector>

#include "stats/sweep.h"
#include "util/cli.h"
#include "util/error.h"

int main(int argc, char** argv) {
  using namespace specnoc;

  std::string out_path;
  std::vector<std::string> shard_paths;

  util::CliParser cli(
      "sweep_merge",
      "Validate and merge shard files from a sharded design-space sweep.");
  cli.add_string("--out", &out_path, "merged JSONL output path (required)");
  cli.add_positional_list("shard.jsonl", &shard_paths,
                          "shard files produced by harness --shard workers");
  cli.parse_or_exit(argc, argv);

  try {
    if (out_path.empty()) {
      throw util::UsageError("--out is required");
    }
    if (shard_paths.empty()) {
      throw util::UsageError("no shard files given");
    }

    std::vector<stats::ShardFile> inputs;
    inputs.reserve(shard_paths.size());
    for (const auto& path : shard_paths) {
      inputs.push_back(stats::load_shard_file(path));
    }

    stats::MergeReport report;
    const stats::ShardFile merged = stats::merge_shards(inputs, &report);
    stats::write_shard_file(merged, out_path);

    std::fprintf(stderr, "merged %zu shard file(s) of tool '%s' (seed %llu) "
                 "into %s\n",
                 shard_paths.size(), merged.manifest.tool.c_str(),
                 static_cast<unsigned long long>(merged.manifest.seed),
                 out_path.c_str());
    std::fputs(report.summary().c_str(), stderr);

    return report.complete() ? 0 : 3;
  } catch (const util::UsageError& error) {
    std::fprintf(stderr, "sweep_merge: %s\n", error.what());
    std::fputs(cli.usage().c_str(), stderr);
    return 2;
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "sweep_merge: %s\n", error.what());
    return 2;
  }
}
