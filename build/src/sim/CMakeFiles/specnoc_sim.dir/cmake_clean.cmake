file(REMOVE_RECURSE
  "CMakeFiles/specnoc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/specnoc_sim.dir/scheduler.cpp.o.d"
  "libspecnoc_sim.a"
  "libspecnoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specnoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
