// Discrete-event simulation kernel.
//
// A single-threaded scheduler ordered by (time, insertion sequence). The
// sequence tie-breaker makes runs bit-reproducible: two events at the same
// picosecond always fire in the order they were scheduled, which matters for
// arbitration fairness in the fanin nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/contract.h"
#include "util/units.h"

namespace specnoc::sim {

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// A deterministic discrete-event scheduler with picosecond resolution.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.
  TimePs now() const { return now_; }

  /// Schedules `fn` to run `delay` picoseconds from now (delay >= 0).
  void schedule(TimePs delay, EventFn fn);

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  void schedule_at(TimePs at, EventFn fn);

  /// Runs the earliest pending event. Returns false if none are pending.
  bool step();

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with time <= `t`, then advances the clock to exactly `t`.
  void run_until(TimePs t);

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Total number of events executed so far (for kernel benchmarks).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimePs time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace specnoc::sim
