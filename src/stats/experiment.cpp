#include "stats/experiment.h"

#include "power/power_meter.h"
#include "stats/recorder.h"
#include "traffic/driver.h"
#include "util/contract.h"
#include "util/log.h"

namespace specnoc::stats {

using namespace specnoc::literals;

ExperimentRunner::ExperimentRunner(core::NetworkConfig config,
                                   std::uint64_t seed,
                                   power::EnergyModelParams energy)
    : config_(std::move(config)), seed_(seed), energy_(energy) {}

traffic::SimWindows ExperimentRunner::saturation_windows() {
  return {.warmup = 1000_ns, .measure = 4000_ns};
}

NetworkFactory ExperimentRunner::factory_for(core::Architecture arch) const {
  return [arch, config = config_] {
    return std::make_unique<core::MotNetwork>(arch, config);
  };
}

const SaturationResult& ExperimentRunner::saturation(
    core::Architecture arch, traffic::BenchmarkId bench) {
  const auto key = std::make_pair(arch, bench);
  auto it = saturation_cache_.find(key);
  if (it == saturation_cache_.end()) {
    it = saturation_cache_.emplace(key, run_saturation(factory_for(arch),
                                                       bench))
             .first;
  }
  return it->second;
}

SaturationResult ExperimentRunner::run_saturation(
    const NetworkFactory& factory, traffic::BenchmarkId bench) {
  const auto network = factory();
  TrafficRecorder recorder(network->net().packets());
  network->net().hooks().traffic = &recorder;
  const auto pattern = traffic::make_benchmark(bench, network->topology().n());
  traffic::DriverConfig driver_cfg;
  driver_cfg.mode = traffic::InjectionMode::kBacklogged;
  driver_cfg.seed = seed_;
  traffic::TrafficDriver driver(*network, *pattern, driver_cfg);
  driver.start();

  const auto windows = saturation_windows();
  auto& sched = network->scheduler();
  sched.run_until(windows.warmup);
  recorder.open_window(sched.now());
  sched.run_until(windows.warmup + windows.measure);
  recorder.close_window(sched.now());

  SaturationResult result;
  const std::uint32_t n = network->topology().n();
  result.delivered_flits_per_ns = recorder.delivered_flits_per_ns(n);
  result.injected_flits_per_ns = recorder.injected_flits_per_ns(n);
  result.delivery_factor =
      result.injected_flits_per_ns > 0.0
          ? result.delivered_flits_per_ns / result.injected_flits_per_ns
          : 1.0;
  const auto& store = network->net().packets();
  result.message_expansion =
      store.num_messages() > 0
          ? static_cast<double>(store.num_packets()) /
                static_cast<double>(store.num_messages())
          : 1.0;
  return result;
}

LatencyResult ExperimentRunner::measure_latency(core::Architecture arch,
                                                traffic::BenchmarkId bench,
                                                double injected_flits_per_ns,
                                                traffic::SimWindows windows) {
  return measure_latency(factory_for(arch), bench, injected_flits_per_ns,
                         windows);
}

LatencyResult ExperimentRunner::measure_latency(const NetworkFactory& factory,
                                                traffic::BenchmarkId bench,
                                                double injected_flits_per_ns,
                                                traffic::SimWindows windows) {
  SPECNOC_EXPECTS(injected_flits_per_ns > 0.0);
  const auto network = factory();
  TrafficRecorder recorder(network->net().packets());
  network->net().hooks().traffic = &recorder;
  const auto pattern = traffic::make_benchmark(bench, network->topology().n());
  traffic::DriverConfig driver_cfg;
  driver_cfg.mode = traffic::InjectionMode::kOpenLoop;
  driver_cfg.flits_per_ns_per_source = injected_flits_per_ns;
  driver_cfg.seed = seed_;
  traffic::TrafficDriver driver(*network, *pattern, driver_cfg);
  driver.start();

  auto& sched = network->scheduler();
  sched.run_until(windows.warmup);
  driver.set_measured(true);
  sched.run_until(windows.warmup + windows.measure);
  driver.set_measured(false);

  // Drain: keep the background load flowing until every tagged message has
  // delivered all its headers, with a generous cap for saturated runs.
  const TimePs drain_cap = windows.warmup + windows.measure * 20;
  while (recorder.pending_measured() > 0 && sched.now() < drain_cap) {
    if (!sched.step()) break;
  }

  LatencyResult result;
  result.mean_latency_ns = recorder.mean_latency_ps() / 1e3;
  result.p95_latency_ns = recorder.latency_percentile_ps(95.0) / 1e3;
  result.max_latency_ns = ps_to_ns(recorder.max_latency_ps());
  result.messages_measured = recorder.completed_measured();
  result.offered_flits_per_ns = injected_flits_per_ns;
  result.drained = recorder.pending_measured() == 0;
  if (!result.drained) {
    SPECNOC_LOG(kWarn) << "latency run did not drain: "
                       << to_string(network->architecture()) << "/"
                       << to_string(bench)
                       << " offered=" << injected_flits_per_ns
                       << " pending=" << recorder.pending_measured();
  }
  return result;
}

LatencyResult ExperimentRunner::latency_at_fraction(
    core::Architecture arch, traffic::BenchmarkId bench, double fraction) {
  SPECNOC_EXPECTS(fraction > 0.0 && fraction < 1.0);
  // fraction of this network's own saturation, expressed as an injected
  // flit rate; the driver's rate parameter is a message rate in flit
  // units, so divide by the serialization expansion (1 except on the
  // Baseline) to land on the target flit rate.
  const auto& sat = saturation(arch, bench);
  const double commanded = fraction * sat.injected_flits_per_ns /
                           sat.message_expansion;
  return measure_latency(arch, bench, commanded,
                         traffic::default_windows(bench));
}

PowerResult ExperimentRunner::measure_power(core::Architecture arch,
                                            traffic::BenchmarkId bench,
                                            double injected_flits_per_ns,
                                            traffic::SimWindows windows) {
  return measure_power(factory_for(arch), bench, injected_flits_per_ns,
                       windows);
}

PowerResult ExperimentRunner::measure_power(const NetworkFactory& factory,
                                            traffic::BenchmarkId bench,
                                            double injected_flits_per_ns,
                                            traffic::SimWindows windows) {
  SPECNOC_EXPECTS(injected_flits_per_ns > 0.0);
  const auto network = factory();
  TrafficRecorder recorder(network->net().packets());
  power::PowerMeter meter(energy_);
  network->net().hooks().traffic = &recorder;
  network->net().hooks().energy = &meter;
  const auto pattern = traffic::make_benchmark(bench, network->topology().n());
  traffic::DriverConfig driver_cfg;
  driver_cfg.mode = traffic::InjectionMode::kOpenLoop;
  driver_cfg.flits_per_ns_per_source = injected_flits_per_ns;
  driver_cfg.seed = seed_;
  traffic::TrafficDriver driver(*network, *pattern, driver_cfg);
  driver.start();

  auto& sched = network->scheduler();
  sched.run_until(windows.warmup);
  recorder.open_window(sched.now());
  meter.open_window(sched.now());
  sched.run_until(windows.warmup + windows.measure);
  recorder.close_window(sched.now());
  meter.close_window(sched.now());

  PowerResult result;
  result.power_mw = meter.window_power_mw();
  result.node_power_mw =
      fj_over_ps_to_mw(meter.window_node_energy(), meter.window_duration());
  result.wire_power_mw =
      fj_over_ps_to_mw(meter.window_wire_energy(), meter.window_duration());
  result.delivered_flits_per_ns =
      recorder.delivered_flits_per_ns(network->topology().n());
  result.offered_flits_per_ns = injected_flits_per_ns;
  result.throttled_flits = meter.window_ops(noc::NodeOp::kThrottle);
  result.broadcast_ops = meter.window_ops(noc::NodeOp::kBroadcast);
  return result;
}

PowerResult ExperimentRunner::power_at_baseline_fraction(
    core::Architecture arch, traffic::BenchmarkId bench, double fraction) {
  SPECNOC_EXPECTS(fraction > 0.0 && fraction < 1.0);
  // The paper runs every network at the same offered load — 25% of the
  // Baseline's saturation — for a normalized comparison of energy per
  // packet. We equalize the *message* (application packet) rate: every
  // network then performs the same application work per second; a
  // k-destination message costs the Baseline k serialized unicasts and the
  // parallel networks one tree packet. (Equalizing raw injected flits
  // instead would hand the serial Baseline k-times less application work;
  // the paper's per-packet framing and its Table 1 ratios match the
  // message-rate reading — see EXPERIMENTS.md.)
  const auto& baseline_sat =
      saturation(core::Architecture::kBaseline, bench);
  const double commanded = fraction * baseline_sat.injected_flits_per_ns /
                           baseline_sat.message_expansion;
  return measure_power(arch, bench, commanded,
                       traffic::default_windows(bench));
}

}  // namespace specnoc::stats
