// Source network interface: injects packets flit-by-flit into the network.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "noc/node.h"
#include "noc/packet.h"

namespace specnoc::noc {

/// A source holds a FIFO of flits from enqueued packets and drives its single
/// output channel with 2-phase handshakes. Serial multicast (Baseline)
/// naturally serializes here: the k unicast copies queue behind each other.
class SourceNode : public Node {
 public:
  /// `issue_delay` models the network-interface driver latency between the
  /// output channel becoming free and the next req edge.
  SourceNode(sim::Scheduler& scheduler, SimHooks& hooks, std::uint32_t src_id,
             TimePs issue_delay);

  std::uint32_t src_id() const { return src_id_; }

  /// Appends all flits of `packet` to the injection queue.
  void enqueue_packet(const Packet& packet);

  /// Packets whose flits have not all left the source yet.
  std::size_t queued_packets() const { return queued_packets_; }

  /// Total flits ever enqueued (offered load accounting).
  std::uint64_t flits_enqueued() const { return flits_enqueued_; }

  /// Registers a callback invoked whenever the queue drops below
  /// `low_water` packets — used by backlogged (saturation) traffic drivers.
  void set_refill(std::size_t low_water, std::function<void()> callback);

  void deliver(const Flit& flit, std::uint32_t in_port) override;
  void on_output_ack(std::uint32_t out_port) override;

 private:
  void try_issue();
  void issue_front();
  /// Invokes the refill callback until the queue reaches the low-water mark
  /// (or the callback stops producing packets).
  void pump_refill();

  std::uint32_t src_id_;
  TimePs issue_delay_;
  std::deque<Flit> queue_;
  std::size_t queued_packets_ = 0;
  std::uint64_t flits_enqueued_ = 0;
  bool output_free_ = true;
  bool issue_scheduled_ = false;
  std::size_t low_water_ = 0;
  std::function<void()> refill_;
};

}  // namespace specnoc::noc
