file(REMOVE_RECURSE
  "libspecnoc_stats.a"
)
