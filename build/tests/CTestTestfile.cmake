# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_mot[1]_include.cmake")
include("/root/repo/build/tests/test_nodes[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
