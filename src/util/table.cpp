#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/contract.h"

namespace specnoc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SPECNOC_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  SPECNOC_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << "  " << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const auto& cell_text = row[c];
      if (cell_text.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell_text) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell_text;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string cell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string cell(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return buf;
}

std::string percent_cell(double ratio_minus_one) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.1f%%", ratio_minus_one * 100.0);
  return buf;
}

}  // namespace specnoc
