file(REMOVE_RECURSE
  "libspecnoc_core.a"
)
