file(REMOVE_RECURSE
  "libspecnoc_traffic.a"
)
