// Cache-coherence scenario: invalidation-based snoopy protocol traffic.
//
// The paper motivates multicast with coherence protocols that send write
// invalidates to the set of sharers (Section 2: "multicast traffic goes
// from processors to caches"). This example models 8 processors over an
// 8x8 MoT: each write to a shared line multicasts an invalidate to the
// current sharers, each sharer replies with a unicast ack, and the write
// completes when all acks are back. We measure the write-completion
// latency distribution on the serial Baseline versus the parallel
// multicast networks.
//
// The traffic comes from the workload subsystem: the directory-coherence
// synthesizer emits the invalidate/ack dependency DAG once, and the
// closed-loop replay driver plays the same trace on every architecture —
// the protocol's request->ack feedback is expressed as trace dependencies
// instead of a hand-rolled injection loop.
//
//   $ ./examples/cache_coherence [writes_per_proc]
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/mot_network.h"
#include "util/cli.h"
#include "workload/replay.h"
#include "workload/synth.h"

using namespace specnoc;

namespace {

/// Write-completion latencies: for each write, time from the invalidate
/// entering the network to the last ack header reaching the writer.
std::vector<double> completion_latencies(
    const workload::CoherenceWorkload& workload,
    const workload::TraceReplayDriver& driver) {
  std::vector<double> out;
  out.reserve(workload.writes.size());
  for (const auto& write : workload.writes) {
    const TimePs issued = driver.injection_time(write.inv);
    TimePs done = issued;
    for (const std::size_t ack : write.acks) {
      done = std::max(done, driver.delivery_time(ack));
    }
    out.push_back(ps_to_ns(done - issued));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t writes_per_proc = 200;
  util::CliParser cli("cache_coherence",
                      "Write-invalidate coherence traffic over an 8x8 MoT.");
  cli.add_positional_uint32("writes", &writes_per_proc, "writes issued per processor (default 200)");
  cli.parse_or_exit(argc, argv);

  workload::CoherenceWorkloadParams params;
  params.writes_per_proc = writes_per_proc;
  params.think_delay = 0;  // back-to-back writes, like the original loop
  params.seed = 2026;
  const auto workload = workload::make_coherence_workload(params);

  std::printf("Write-invalidate coherence over an 8x8 MoT "
              "(%u writes/processor, %u-%u sharers per line):\n\n",
              writes_per_proc, params.min_sharers, params.max_sharers);
  std::printf("%-24s %12s %12s %12s\n", "Network", "mean (ns)", "min (ns)",
              "max (ns)");
  for (const auto arch : core::all_architectures()) {
    core::NetworkConfig config;
    core::MotNetwork network(arch, config);
    workload::TraceReplayDriver driver(
        network, workload.trace,
        {workload::ReplayMode::kClosedLoop, /*measured=*/false});
    network.net().hooks().traffic = &driver;
    driver.start();
    network.scheduler().run();

    const auto c = completion_latencies(workload, driver);
    const double mean =
        std::accumulate(c.begin(), c.end(), 0.0) / static_cast<double>(c.size());
    const auto [lo, hi] = std::minmax_element(c.begin(), c.end());
    std::printf("%-24s %12.2f %12.2f %12.2f   (%zu writes)\n",
                core::to_string(arch), mean, *lo, *hi, c.size());
  }
  std::printf("\nParallel multicast shortens the invalidate fan-out, which "
              "dominates write completion;\nlocal speculation shaves the "
              "per-hop latency on top.\n");
  return 0;
}
