// End-to-end kernel determinism: a full 8x8 OptHybridSpeculative run under
// backlogged uniform-random traffic must reproduce these golden statistics
// bit-for-bit. The values were captured from the pre-rewrite kernel
// (std::priority_queue of std::function), so this test pins the bucket-queue
// kernel to the exact (time, insertion seq) event order of the original —
// any ordering deviation shifts arbitration outcomes and changes every
// number below.
#include <gtest/gtest.h>

#include "core/mot_network.h"
#include "stats/recorder.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"

namespace specnoc {
namespace {

using namespace specnoc::literals;

TEST(KernelDeterminismTest, Golden8x8OptHybridSpeculativeRun) {
  core::NetworkConfig cfg;  // n = 8
  core::MotNetwork net(core::Architecture::kOptHybridSpeculative, cfg);
  stats::TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  auto pattern =
      traffic::make_benchmark(traffic::BenchmarkId::kUniformRandom, 8);
  traffic::DriverConfig dcfg;
  dcfg.mode = traffic::InjectionMode::kBacklogged;
  dcfg.seed = 7;
  traffic::TrafficDriver driver(net, *pattern, dcfg);
  driver.set_measured(true);
  rec.open_window(0);
  driver.start();
  net.scheduler().run_until(2000_ns);
  rec.close_window(net.scheduler().now());

  EXPECT_EQ(net.scheduler().executed(), 923768u);
  EXPECT_EQ(driver.messages_generated(), 5648u);
  EXPECT_EQ(rec.window_flits_injected(), 28200u);
  EXPECT_EQ(rec.window_flits_ejected(), 28134u);
  EXPECT_EQ(rec.completed_measured(), 5629u);
  EXPECT_EQ(rec.pending_measured(), 0u);
  EXPECT_EQ(rec.max_latency_ps(), 36822);
  // Exact double compare on purpose: identical event order gives an
  // identical accumulation order.
  EXPECT_EQ(rec.mean_latency_ps(), 7534.8138212826434);
}

// Aggregate statistics of one golden run; every field is insensitive to
// the wall-clock order in which worker threads fire the delivery hooks
// (counts, maxima, and exact integer-valued double sums), so byte-equality
// across thread counts is a meaningful determinism check.
struct GoldenStats {
  std::uint64_t executed = 0;
  std::uint64_t generated = 0;
  std::uint64_t injected = 0;
  std::uint64_t ejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t pending = 0;
  TimePs max_latency = 0;
  double mean_latency = 0.0;

  bool operator==(const GoldenStats& o) const {
    return executed == o.executed && generated == o.generated &&
           injected == o.injected && ejected == o.ejected &&
           completed == o.completed && pending == o.pending &&
           max_latency == o.max_latency && mean_latency == o.mean_latency;
  }
};

void PrintTo(const GoldenStats& s, std::ostream* os) {
  *os << "{executed=" << s.executed << " generated=" << s.generated
      << " injected=" << s.injected << " ejected=" << s.ejected
      << " completed=" << s.completed << " pending=" << s.pending
      << " max=" << s.max_latency << " mean=" << s.mean_latency << "}";
}

GoldenStats golden_run(core::Architecture arch, unsigned threads,
                       TimePs horizon) {
  core::NetworkConfig cfg;  // n = 8
  cfg.sim_threads = threads;
  core::MotNetwork net(arch, cfg);
  stats::TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  auto pattern =
      traffic::make_benchmark(traffic::BenchmarkId::kUniformRandom, 8);
  traffic::DriverConfig dcfg;
  dcfg.mode = traffic::InjectionMode::kBacklogged;
  dcfg.seed = 7;
  traffic::TrafficDriver driver(net, *pattern, dcfg);
  driver.set_measured(true);
  rec.open_window(0);
  driver.start();
  net.net().run_until(horizon);
  rec.close_window(net.net().now());

  GoldenStats s;
  s.executed = net.net().executed();
  s.generated = driver.messages_generated();
  s.injected = rec.window_flits_injected();
  s.ejected = rec.window_flits_ejected();
  s.completed = rec.completed_measured();
  s.pending = rec.pending_measured();
  s.max_latency = rec.max_latency_ps();
  s.mean_latency = rec.mean_latency_ps();
  return s;
}

// The same golden run must be byte-identical at every worker-thread count:
// sim_threads == 1 takes today's sequential code path, sim_threads > 1 the
// per-tree partitioned kernel, and the window protocol guarantees the two
// produce identical event orders per lane (DESIGN.md §9).
TEST(KernelDeterminismTest, Golden8x8ByteIdenticalAcrossThreadCounts) {
  const GoldenStats expected = {923768u, 5648u,  28200u, 28134u,
                                5629u,   0u,     36822,  7534.8138212826434};
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(golden_run(core::Architecture::kOptHybridSpeculative, threads,
                         2000_ns),
              expected);
  }
}

TEST(KernelDeterminismTest, Baseline8x8ByteIdenticalAcrossThreadCounts) {
  const GoldenStats reference =
      golden_run(core::Architecture::kBaseline, 1, 800_ns);
  for (const unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(golden_run(core::Architecture::kBaseline, threads, 800_ns),
              reference);
  }
}

}  // namespace
}  // namespace specnoc
