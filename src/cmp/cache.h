// Private per-processor cache model: set-associative LRU tag array plus an
// MSHR table that merges same-line misses. Traffic-shape simulation only —
// tags and states are tracked, data values are not (the sesc-pleasetm
// PrivateCache plays the same role for its TM coherence layer).
#pragma once

#include <cstdint>
#include <vector>

#include "util/contract.h"

namespace specnoc::cmp {

/// MSI stable states of a line in a private cache.
enum class LineState : std::uint8_t { kInvalid, kShared, kModified };

class PrivateCache {
 public:
  PrivateCache(std::uint32_t sets, std::uint32_t ways);

  /// State of `line`, kInvalid when not present.
  LineState state(std::uint64_t line) const;

  /// LRU-bumps a present line (a hit).
  void touch(std::uint64_t line);

  struct Fill {
    bool evicted_modified = false;
    std::uint64_t victim = 0;  ///< line that must be written back
  };

  /// Installs `line` in `state`, upgrading in place when already present.
  /// A full set evicts its LRU way: modified victims are reported for
  /// writeback, shared victims are dropped silently — the directory keeps
  /// the stale sharer, so later invalidation fan-outs depend on history.
  Fill fill(std::uint64_t line, LineState state);

  /// Drops `line` (directory-initiated); returns true when it held kModified
  /// (the responder owes data, not just an ack). Missing lines are fine:
  /// a silently evicted sharer still gets invalidated.
  bool invalidate(std::uint64_t line);

 private:
  struct Way {
    std::uint64_t line = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t stamp = 0;  ///< LRU timestamp (monotone per cache)
  };

  Way* find(std::uint64_t line);
  const Way* find(std::uint64_t line) const;

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Way> slots_;  ///< sets_ * ways_, set-major
};

/// One miss entry: all accesses that merged into the same in-flight line.
struct Mshr {
  std::uint64_t line = 0;
  bool exclusive = false;            ///< GetX (write miss / upgrade)
  std::vector<std::uint32_t> waiters;   ///< op ids retired by this fill
  std::vector<std::uint32_t> deferred;  ///< writes queued behind a GetS
};

/// Fixed-size per-processor MSHR file; linear scan (entries are single-digit).
class MshrTable {
 public:
  explicit MshrTable(std::uint32_t entries) : entries_(entries) {}

  Mshr* find(std::uint64_t line) {
    for (Mshr& m : mshrs_) {
      if (m.line == line) return &m;
    }
    return nullptr;
  }

  bool full() const { return mshrs_.size() >= entries_; }
  std::size_t in_flight() const { return mshrs_.size(); }

  Mshr& allocate(std::uint64_t line, bool exclusive) {
    SPECNOC_EXPECTS(!full() && find(line) == nullptr);
    mshrs_.push_back(Mshr{line, exclusive, {}, {}});
    return mshrs_.back();
  }

  /// Removes and returns the entry for `line` (must exist).
  Mshr release(std::uint64_t line) {
    for (std::size_t i = 0; i < mshrs_.size(); ++i) {
      if (mshrs_[i].line == line) {
        Mshr out = std::move(mshrs_[i]);
        mshrs_.erase(mshrs_.begin() + static_cast<std::ptrdiff_t>(i));
        return out;
      }
    }
    SPECNOC_UNREACHABLE("mshr release of untracked line");
  }

 private:
  std::uint32_t entries_;
  std::vector<Mshr> mshrs_;
};

}  // namespace specnoc::cmp
