// Extension — where does the power go?
//
// Per-architecture breakdown of the Table-1 power measurement (Multicast10
// at 25% Baseline saturation): fanout switches by design, fanin arbiters,
// network interfaces, and wires, plus the redundant-activity counters that
// explain the speculation overheads (throttled flits, broadcast ops).
#include "bench_common.h"
#include "power/power_meter.h"
#include "stats/recorder.h"
#include "stats/experiment.h"
#include "traffic/driver.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_power_breakdown",
      "Per-component power breakdown at the paper's operating point.");
  core::NetworkConfig cfg;
  stats::ExperimentRunner runner(cfg, opts.seed);
  const auto bench = traffic::BenchmarkId::kMulticast10;

  // The same commanded rate the Table-1 power protocol uses.
  const auto& baseline_sat =
      runner.saturation(core::Architecture::kBaseline, bench);
  const double commanded = 0.25 * baseline_sat.injected_flits_per_ns /
                           baseline_sat.message_expansion;

  Table table({"Architecture", "Total mW", "Fanout mW", "Fanin mW", "NI mW",
               "Wires mW", "Throttled flits", "Broadcast ops"});
  for (const auto arch : core::all_architectures()) {
    core::MotNetwork network(arch, cfg);
    stats::TrafficRecorder recorder(network.net().packets());
    power::PowerMeter meter;
    network.net().hooks().traffic = &recorder;
    network.net().hooks().energy = &meter;
    auto pattern = traffic::make_benchmark(bench, cfg.n);
    traffic::DriverConfig dcfg;
    dcfg.flits_per_ns_per_source = commanded;
    dcfg.seed = opts.seed;
    traffic::TrafficDriver driver(network, *pattern, dcfg);
    driver.start();
    const auto windows = traffic::default_windows(bench);
    auto& sched = network.scheduler();
    sched.run_until(windows.warmup);
    meter.open_window(sched.now());
    sched.run_until(windows.warmup + windows.measure);
    meter.close_window(sched.now());

    const auto duration = meter.window_duration();
    auto mw = [&](EnergyFj energy) {
      return fj_over_ps_to_mw(energy, duration);
    };
    const EnergyFj fanout =
        meter.window_kind_energy(noc::NodeKind::kFanoutBaseline) +
        meter.window_kind_energy(noc::NodeKind::kFanoutSpeculative) +
        meter.window_kind_energy(noc::NodeKind::kFanoutNonSpeculative) +
        meter.window_kind_energy(noc::NodeKind::kFanoutOptSpeculative) +
        meter.window_kind_energy(noc::NodeKind::kFanoutOptNonSpeculative);
    const EnergyFj fanin = meter.window_kind_energy(noc::NodeKind::kFanin);
    const EnergyFj ni = meter.window_kind_energy(noc::NodeKind::kSource) +
                        meter.window_kind_energy(noc::NodeKind::kSink);
    table.add_row(
        {core::to_string(arch), cell(meter.window_power_mw(), 2),
         cell(mw(fanout), 2), cell(mw(fanin), 2), cell(mw(ni), 2),
         cell(fj_over_ps_to_mw(meter.window_wire_energy(), duration), 2),
         cell(static_cast<long long>(
             meter.window_ops(noc::NodeOp::kThrottle))),
         cell(static_cast<long long>(
             meter.window_ops(noc::NodeOp::kBroadcast)))});
  }
  specnoc::bench::emit(table,
                       "Power breakdown, Multicast10 at 25% Baseline "
                       "saturation (equal message rate)",
                       opts);
  specnoc::bench::note(
      "OptHybrid's broadcast ops are header+tail only (the power "
      "optimization); OptAllSpec's throttle count shows the wider "
      "speculative region the paper warns about.");
  return 0;
}
