
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/benchmark.cpp" "src/traffic/CMakeFiles/specnoc_traffic.dir/benchmark.cpp.o" "gcc" "src/traffic/CMakeFiles/specnoc_traffic.dir/benchmark.cpp.o.d"
  "/root/repo/src/traffic/driver.cpp" "src/traffic/CMakeFiles/specnoc_traffic.dir/driver.cpp.o" "gcc" "src/traffic/CMakeFiles/specnoc_traffic.dir/driver.cpp.o.d"
  "/root/repo/src/traffic/pattern.cpp" "src/traffic/CMakeFiles/specnoc_traffic.dir/pattern.cpp.o" "gcc" "src/traffic/CMakeFiles/specnoc_traffic.dir/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/specnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specnoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specnoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
