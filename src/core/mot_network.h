// MotNetwork: a fully built, runnable MoT NoC in one of the six
// architectures, plus its message-admission layer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/architecture.h"
#include "core/config.h"
#include "core/speculation.h"
#include "mot/addressing.h"
#include "mot/layout.h"
#include "mot/topology.h"
#include "noc/message_network.h"
#include "noc/network.h"
#include "nodes/fanout_base.h"

namespace specnoc::core {

/// Builds and owns the simulated network. The public surface a user needs:
/// construct, send_message(), run the scheduler, observe via hooks.
class MotNetwork final : public noc::MessageNetwork {
 public:
  MotNetwork(Architecture arch, NetworkConfig config);

  /// Custom design point: an arbitrary (legal) speculation map with the
  /// optimized node designs — the wider hybrid design space the paper
  /// sketches for 16x16 networks (Figure 3(d)). Reported as kCustomHybrid.
  MotNetwork(NetworkConfig config, SpeculationMap speculation);

  noc::Network& net() override { return net_; }
  std::uint32_t endpoints() const override { return topology_.n(); }
  std::uint32_t flits_per_packet() const override {
    return config_.flits_per_packet;
  }
  sim::Scheduler& scheduler() { return net_.scheduler(); }
  const mot::MotTopology& topology() const { return topology_; }
  const SpeculationMap& speculation() const { return speculation_; }
  const mot::SourceRouteEncoder& encoder() const { return encoder_; }
  Architecture architecture() const { return arch_; }
  const NetworkConfig& config() const { return config_; }

  /// Sends a message from `src` to the destination set `dests` at the
  /// current simulation time. On the Baseline network a multicast message
  /// is expanded into one unicast packet per destination, queued
  /// back-to-back (serial multicast); every other architecture injects a
  /// single (multicast-capable) packet. Returns the message id.
  noc::MessageId send_message(std::uint32_t src, noc::DestSet dests,
                              bool measured) override;

  /// Header address bits for this architecture (Section 5.2(d)): the
  /// baseline's log2(n) single-bit scheme, or 2 bits per non-speculative
  /// node for the parallel-multicast schemes.
  std::uint32_t address_bits() const;

  /// Sum of the characterized areas of all switch nodes (fanout + fanin).
  AreaUm2 total_node_area() const;

  /// Test access to individual switches.
  nodes::FanoutNodeBase& fanout_node(std::uint32_t tree, std::uint32_t level,
                                     std::uint32_t index);
  noc::Node& fanin_node(std::uint32_t tree, std::uint32_t level,
                        std::uint32_t index);

 private:
  void build();

  Architecture arch_;
  NetworkConfig config_;
  mot::MotTopology topology_;
  SpeculationMap speculation_;
  mot::SourceRouteEncoder encoder_;
  mot::HTreeLayout layout_;
  noc::Network net_;
  // [tree][heap_id]
  std::vector<std::vector<nodes::FanoutNodeBase*>> fanout_;
  std::vector<std::vector<noc::Node*>> fanin_;
};

}  // namespace specnoc::core
