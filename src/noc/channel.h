// A point-to-point 2-phase bundled-data channel, optionally pipelined.
//
// capacity == 1 models a plain wire segment between two latches: one
// transaction outstanding; send() raises req, the flit arrives downstream
// after the forward wire delay, and the channel frees only after the
// downstream node acks and the ack edge travels back. Per-hop cycle time is
// then node forward latency + ack generation + round-trip wire delay — the
// throughput-limiting quantity in the paper's asynchronous pipelines.
//
// capacity > 1 models a long wire pipelined with asynchronous latch FIFOs
// (standard GALS practice for cross-die channels; the MoT "middle" channels
// between fanout and fanin leaves are built this way). The channel then
// accepts up to `capacity` flits; the upstream ack is returned as soon as a
// slot remains. Giving middle channels >= packet-length capacity is also
// what makes parallel multicast deadlock-free: a branch blocked at a fanin
// arbiter absorbs its whole packet, so replicated branches never hold the
// fanout fork hostage while waiting for each other's fanin locks
// (see DESIGN.md "Multicast deadlock freedom").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "util/ring.h"
#include "util/units.h"
#include "noc/flit.h"
#include "noc/hooks.h"

namespace specnoc::sim {
class PartitionedScheduler;
}  // namespace specnoc::sim

namespace specnoc::noc {

class Node;

/// Physical parameters of one channel.
struct ChannelParams {
  TimePs delay_fwd = 0;        ///< req/data wire delay end-to-end
  TimePs delay_ack = 0;        ///< ack wire delay (per handshake)
  LengthUm length = 0.0;       ///< wire length, for switching energy
  std::uint32_t capacity = 1;  ///< flits buffered in-flight (FIFO stages)
};

class Channel {
 public:
  Channel(sim::Scheduler& scheduler, SimHooks& hooks, ChannelParams params,
          std::string name);
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Wires the channel between `up`'s output port and `down`'s input port.
  void connect(Node& up, std::uint32_t up_port, Node& down,
               std::uint32_t down_port);

  /// True when the upstream node may send (previous send acked and a slot
  /// is available).
  bool free() const { return !send_outstanding_; }

  /// Launches a flit. Precondition: free() and connected.
  void send(const Flit& flit);

  /// Called by the downstream node when it has disposed of the delivered
  /// flit; frees the head slot.
  void ack();

  const ChannelParams& params() const { return params_; }
  const std::string& name() const { return name_; }
  Node* upstream() const { return up_; }
  Node* downstream() const { return down_; }

  /// Flits currently inside the channel (queued or delivered-unacked).
  std::uint32_t occupancy() const;

  /// Introspection (tests, deadlock diagnostics).
  bool awaiting_node_ack() const { return awaiting_node_ack_; }

  /// Total flits that have traversed this channel (activity statistics).
  std::uint64_t flits_carried() const { return flits_carried_; }

  /// Splits the channel across a partition boundary: the upstream half
  /// (send/ack-release accounting) stays on the constructing scheduler —
  /// which must be the upstream node's lane — while delivery runs on
  /// `down_lane`. Flits and downstream acks travel through mailboxes whose
  /// drains are registered with `psched` here, so registration order (=
  /// channel creation order) is the canonical cross-partition merge order.
  /// Must be called before any traffic flows.
  void make_cross_partition(sim::PartitionedScheduler& psched,
                            std::uint32_t up_lane, std::uint32_t down_lane);
  bool cross_partition() const { return cross_ != nullptr; }

 private:
  struct QueuedFlit {
    Flit flit;
    TimePs ready_at;  ///< when it reaches the far end of the wire
  };

  // Cross-partition state, boxed: almost every channel of a partitioned
  // network is intra-partition (only the MoT middle / mesh row-boundary
  // links cross lanes), so the mailboxes and credit bookkeeping live behind
  // one pointer instead of widening all ~3M channels of a large-radix
  // build. The upstream lane owns sends/credits_seen and the release
  // bookkeeping; the downstream lane owns queue_ and the delivery
  // handshake. The mailboxes are written by one lane during a window and
  // read only in the window barrier's serial section, so they need no
  // locks.
  struct CrossState {
    sim::PartitionedScheduler* psched = nullptr;
    std::uint32_t up_lane = 0;
    std::uint32_t down_lane = 0;
    std::uint32_t fwd_drain = 0;
    std::uint32_t credit_drain = 0;
    std::uint64_t sends = 0;         ///< flits sent (up lane)
    std::uint64_t credits_seen = 0;  ///< downstream acks drained (up lane)
    bool release_pending = false;    ///< a send is waiting for a credit
    std::uint64_t release_needs = 0; ///< credit count that frees the slot
    TimePs release_send_time = 0;    ///< when the waiting send happened
    std::vector<QueuedFlit> fwd_box;  ///< up -> down mailbox
    std::vector<TimePs> credit_box;   ///< down -> up mailbox (ack times)
  };

  void try_deliver();
  void release_upstream();
  void send_cross(const Flit& flit);
  void drain_forward();
  void drain_credits();

  sim::Scheduler& scheduler_;
  SimHooks& hooks_;
  ChannelParams params_;
  std::string name_;
  Node* up_ = nullptr;
  Node* down_ = nullptr;
  std::uint32_t up_port_ = 0;
  std::uint32_t down_port_ = 0;

  /// In-flight flits; never holds more than params_.capacity entries (the
  /// send()/credit preconditions bound occupancy), so the default capacity-2
  /// pipelines stay heap-free.
  util::BoundedRing<QueuedFlit, 2> queue_;
  bool head_scheduled_ = false;    ///< delivery event pending for the head
  bool awaiting_node_ack_ = false; ///< a flit is at the node, not yet acked
  bool send_outstanding_ = false;  ///< upstream has not been re-acked yet
  bool stalled_ = false;           ///< last send filled the pipe to capacity
  TimePs stall_start_ = 0;         ///< when the pipe went full
  std::uint64_t flits_carried_ = 0;

  sim::Scheduler* down_sched_ = nullptr;  ///< == &scheduler_ when !cross
  std::unique_ptr<CrossState> cross_;     ///< null for intra-lane channels
};

}  // namespace specnoc::noc
