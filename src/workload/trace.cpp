#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/shard.h"
#include "util/error.h"
#include "util/json.h"

namespace specnoc::workload {

using util::Json;

namespace {

std::uint32_t highest_dest(const noc::DestSet& dests) {
  std::uint32_t highest = 0;
  dests.for_each_dest([&](std::uint32_t d) { highest = d; });
  return highest;
}

}  // namespace

void Trace::validate() const {
  if (meta.n < 2 || meta.n > noc::kMaxEndpoints) {
    throw ConfigError("workload trace radix must be in [2, " +
                      std::to_string(noc::kMaxEndpoints) + "], got n=" +
                      std::to_string(meta.n));
  }
  bool first = true;
  std::uint64_t prev_id = 0;
  for (const TraceRecord& rec : records) {
    const auto fail = [&rec](const std::string& why) -> ConfigError {
      return ConfigError("trace message " + std::to_string(rec.id) + ": " +
                         why);
    };
    if (!first && rec.id <= prev_id) {
      throw fail("ids must be strictly increasing (previous was " +
                 std::to_string(prev_id) + ")");
    }
    first = false;
    prev_id = rec.id;
    if (rec.src >= meta.n) {
      throw fail("source " + std::to_string(rec.src) +
                 " out of range for n=" + std::to_string(meta.n));
    }
    if (rec.dests.none()) throw fail("empty destination set");
    if (!rec.dests.within(meta.n)) {
      throw fail("destination set addresses endpoint " +
                 std::to_string(highest_dest(rec.dests)) +
                 ", beyond the trace's configured radix n=" +
                 std::to_string(meta.n));
    }
    if (rec.size == 0) throw fail("size must be >= 1 flit");
    if (rec.earliest < 0) throw fail("earliest time must be >= 0");
    if (rec.delay < 0) throw fail("delay must be >= 0");
    for (const std::uint64_t dep : rec.deps) {
      if (dep >= rec.id) {
        throw fail("dependency " + std::to_string(dep) +
                   " does not precede the message (deps must reference "
                   "earlier records)");
      }
      // ids are strictly increasing, so binary search finds the dep.
      const auto it = std::lower_bound(
          records.begin(), records.end(), dep,
          [](const TraceRecord& r, std::uint64_t id) { return r.id < id; });
      if (it == records.end() || it->id != dep) {
        throw fail("dependency " + std::to_string(dep) +
                   " names no record of this trace");
      }
    }
  }
}

namespace {

/// Schema a trace of radix n serializes with: schema 1 keeps the integer
/// mask wire form (and the bytes of every existing golden); schema 2
/// carries hex-string destination sets for radixes beyond one word.
int schema_for(std::uint32_t n) {
  return n <= 64 ? kTraceSchemaVersion : kTraceSchemaVersionLarge;
}

Json header_to_json(const TraceMeta& meta) {
  Json json = Json::object();
  json.set("record", "header");
  json.set("format", kTraceFormat);
  json.set("schema", static_cast<std::int64_t>(schema_for(meta.n)));
  json.set("n", meta.n);
  if (!meta.generator.empty()) json.set("generator", meta.generator);
  return json;
}

Json record_to_json(const TraceRecord& rec, int schema) {
  Json json = Json::object();
  json.set("record", "msg");
  json.set("id", rec.id);
  json.set("src", rec.src);
  if (schema == kTraceSchemaVersion) {
    json.set("dests", rec.dests.to_word());
  } else {
    json.set("dests", rec.dests.to_hex());
  }
  json.set("size", rec.size);
  json.set("earliest", static_cast<std::int64_t>(rec.earliest));
  if (rec.delay != 0) json.set("delay", static_cast<std::int64_t>(rec.delay));
  Json deps = Json::array();
  for (const std::uint64_t dep : rec.deps) deps.push_back(dep);
  json.set("deps", std::move(deps));
  return json;
}

TraceRecord record_from_json(const Json& json, int schema) {
  TraceRecord rec;
  rec.id = json.at("id").as_u64();
  rec.src = static_cast<std::uint32_t>(json.at("src").as_u64());
  if (schema == kTraceSchemaVersion) {
    rec.dests = noc::DestSet::from_word(json.at("dests").as_u64());
  } else {
    rec.dests = noc::DestSet::from_hex(json.at("dests").as_string());
  }
  rec.size = static_cast<std::uint32_t>(json.at("size").as_u64());
  rec.earliest = json.at("earliest").as_i64();
  const Json* delay = json.find("delay");
  if (delay != nullptr) rec.delay = delay->as_i64();
  for (const Json& dep : json.at("deps").items()) {
    rec.deps.push_back(dep.as_u64());
  }
  return rec;
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  trace.validate();
  const int schema = schema_for(trace.meta.n);
  out << util::json_write(header_to_json(trace.meta)) << "\n";
  for (const TraceRecord& rec : trace.records) {
    out << util::json_write(record_to_json(rec, schema)) << "\n";
  }
  Json end = Json::object();
  end.set("record", "end");
  end.set("messages", static_cast<std::uint64_t>(trace.records.size()));
  out << util::json_write(end) << "\n";
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot write trace file '" + path + "'");
  write_trace(trace, out);
  out.flush();
  if (!out) throw ConfigError("short write to trace file '" + path + "'");
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream out;
  write_trace(trace, out);
  return out.str();
}

Trace read_trace(std::istream& in, const std::string& origin) {
  Trace trace;
  bool have_header = false;
  bool have_end = false;
  int schema = kTraceSchemaVersion;
  std::uint64_t declared = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fail = [&](const std::string& why) -> ConfigError {
      return ConfigError(origin + ":" + std::to_string(line_no) + ": " + why);
    };
    Json json;
    try {
      json = util::json_parse(line);
    } catch (const ConfigError& error) {
      throw fail(error.what());
    }
    try {
      const std::string& record = json.at("record").as_string();
      if (record == "header") {
        if (have_header) throw fail("duplicate header record");
        if (json.at("format").as_string() != kTraceFormat) {
          throw fail("not a " + std::string(kTraceFormat) + " file (format '" +
                     json.at("format").as_string() + "')");
        }
        const auto declared_schema = json.at("schema").as_i64();
        if (declared_schema != kTraceSchemaVersion &&
            declared_schema != kTraceSchemaVersionLarge) {
          throw fail("unsupported trace schema version " +
                     std::to_string(declared_schema) +
                     " (this build reads versions " +
                     std::to_string(kTraceSchemaVersion) + " and " +
                     std::to_string(kTraceSchemaVersionLarge) + ")");
        }
        schema = static_cast<int>(declared_schema);
        trace.meta.n = static_cast<std::uint32_t>(json.at("n").as_u64());
        if (trace.meta.n < 2 || trace.meta.n > noc::kMaxEndpoints) {
          throw fail("trace radix n=" + std::to_string(trace.meta.n) +
                     " outside the supported range [2, " +
                     std::to_string(noc::kMaxEndpoints) + "]");
        }
        // The schema <-> radix pairing is strict both ways: integer masks
        // cannot express n > 64, and hex sets for n <= 64 would fork the
        // byte-exact wire form the goldens pin.
        if (schema == kTraceSchemaVersion && trace.meta.n > 64) {
          throw fail("schema 1 carries integer 64-bit destination masks and "
                     "cannot address n=" + std::to_string(trace.meta.n) +
                     " endpoints (schema 2 required beyond radix 64)");
        }
        if (schema == kTraceSchemaVersionLarge && trace.meta.n <= 64) {
          throw fail("schema 2 is reserved for radixes above 64; a trace "
                     "with n=" + std::to_string(trace.meta.n) +
                     " must use schema 1");
        }
        const Json* generator = json.find("generator");
        if (generator != nullptr) trace.meta.generator = generator->as_string();
        have_header = true;
        continue;
      }
      if (!have_header) throw fail("first record must be the header");
      if (have_end) throw fail("record after the end record");
      if (record == "msg") {
        TraceRecord rec = record_from_json(json, schema);
        if (!rec.dests.within(trace.meta.n)) {
          throw fail("destination set of message " + std::to_string(rec.id) +
                     " addresses endpoint " +
                     std::to_string(highest_dest(rec.dests)) +
                     ", beyond the configured radix n=" +
                     std::to_string(trace.meta.n));
        }
        trace.records.push_back(std::move(rec));
        continue;
      }
      if (record == "end") {
        declared = json.at("messages").as_u64();
        have_end = true;
        continue;
      }
      throw fail("unknown record type '" + record + "'");
    } catch (const ConfigError&) {
      throw;
    }
  }
  if (!have_header) {
    throw ConfigError(origin + ": no header record (empty or truncated file)");
  }
  if (!have_end) {
    throw ConfigError(origin + ": no end record (truncated trace)");
  }
  if (declared != trace.records.size()) {
    throw ConfigError(origin + ": end record declares " +
                      std::to_string(declared) + " messages but " +
                      std::to_string(trace.records.size()) + " are present");
  }
  trace.validate();
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open trace file '" + path + "'");
  return read_trace(in, path);
}

std::string trace_hash(const Trace& trace) {
  const std::uint64_t hash = sim::fnv1a64(trace_to_string(trace));
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace specnoc::workload
