// Flits: the unit of transfer on an asynchronous bundled-data channel.
#pragma once

#include <cstdint>

namespace specnoc::noc {

struct Packet;  // packet.h

/// Position of a flit within its packet. Single-flit packets use kHeader
/// semantics with kTail behaviour folded in via Flit::is_tail().
enum class FlitKind : std::uint8_t { kHeader, kBody, kTail };

/// A flit is a lightweight value: a reference to its packet plus position.
/// The data payload itself is not modeled — only its movement and the
/// switching activity it causes.
struct Flit {
  const Packet* packet = nullptr;
  FlitKind kind = FlitKind::kHeader;
  std::uint32_t seq = 0;  ///< 0-based index within the packet.

  bool is_header() const { return kind == FlitKind::kHeader; }
  bool is_tail() const { return kind == FlitKind::kTail; }
};

}  // namespace specnoc::noc
