#!/usr/bin/env bash
# Measures telemetry-sampler overhead on the saturated 8x8 kernel run and
# writes google-benchmark JSON to BENCH_telemetry.json at the repo root.
# BM_TelemetrySampledSimulation/0 is the no-sampling baseline (metrics
# registry only); /50 and /10 sample every 50 / 10 simulated ns. The
# committed JSON documents that the /50 events-per-second rate stays within
# 2% of /0 — sampling is cheap enough to leave on for whole sweeps.
#
# Usage: bench/run_telemetry_bench.sh [build-dir] [output-json]
#   SPECNOC_BENCH_MIN_TIME   per-benchmark min time (default 0.5; append
#                            an "s" suffix on google-benchmark >= 1.8)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="${2:-$repo_root/BENCH_telemetry.json}"
min_time="${SPECNOC_BENCH_MIN_TIME:-0.5}"

bench="$build_dir/bench/bench_kernel_micro"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bench" \
  --benchmark_min_time="$min_time" \
  --benchmark_filter='BM_TelemetrySampledSimulation' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$out" \
  --benchmark_out_format=json

echo "wrote $out"
