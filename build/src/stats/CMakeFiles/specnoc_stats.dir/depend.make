# Empty dependencies file for specnoc_stats.
# This may be replaced when dependencies are built.
