// sweep_merge: combine shard files produced by harness --shard workers.
//
// Validates that every input belongs to the same sweep (schema version,
// tool, seed, shard count, per-grid spec-key hashes), merges the outcomes
// in spec order, and writes one merged JSONL file the harness can render
// with --from. The coverage report (missing cells, duplicates, failures)
// goes to stderr; exit code 0 means the merge is complete, 3 means it is
// valid but has holes (a worker is still missing), 2 means the inputs do
// not belong together.
//
//   bench_table1_throughput --shard 0/3 --out s0.jsonl   # on machine A
//   bench_table1_throughput --shard 1/3 --out s1.jsonl   # on machine B
//   bench_table1_throughput --shard 2/3 --out s2.jsonl   # on machine C
//   sweep_merge --out merged.jsonl s0.jsonl s1.jsonl s2.jsonl
//   bench_table1_throughput --from merged.jsonl          # the tables
//
// --follow FILE tails a live NDJSON telemetry stream (harness
// --telemetry-out) instead of merging: one rendered line per completed run
// as frames arrive, a summary on the end frame. --once renders what is
// already in the file and exits; --poll-ms sets the tail poll interval.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "stats/sweep.h"
#include "stats/telemetry.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/fswait.h"
#include "util/json.h"

namespace {

/// Work done by one shard file: cell count, summed run wall time, and how
/// many cells needed more than one attempt. Read from the serialized "run"
/// objects, so it works on any shard file regardless of which harness or
/// machine produced it.
struct ShardWork {
  std::size_t cells = 0;
  double wall_ms = 0.0;
  std::uint64_t retries = 0;
  std::size_t telemetry_runs = 0;  ///< cells carrying an epoch series
  std::uint64_t epochs = 0;        ///< total retained epochs across them
};

/// Tallies one shard and validates any embedded telemetry blocks: each
/// series must parse under the strict codec and re-serialize to the exact
/// bytes stored in the shard, so the merged file provably carries the
/// worker's time series unmodified.
ShardWork tally_shard(const specnoc::stats::ShardFile& file,
                      const std::string& path) {
  using specnoc::stats::telemetry_series_from_json;
  using specnoc::stats::telemetry_series_to_json;
  ShardWork work;
  for (const auto& [grid, records] : file.records) {
    for (const auto& [cell, record] : records) {
      ++work.cells;
      const specnoc::util::Json* run = record.data.find("run");
      if (run != nullptr) {
        if (const auto* wall = run->find("wall_ms")) {
          work.wall_ms += wall->as_double();
        }
        if (const auto* attempts = run->find("attempts")) {
          const std::uint64_t n = attempts->as_u64();
          if (n > 1) work.retries += n - 1;
        }
      }
      const specnoc::util::Json* metrics = record.data.find("metrics");
      const specnoc::util::Json* series =
          metrics != nullptr ? metrics->find("telemetry") : nullptr;
      if (series == nullptr) continue;
      const auto parsed = telemetry_series_from_json(*series);
      const std::string original = specnoc::util::json_write(*series);
      const std::string round =
          specnoc::util::json_write(telemetry_series_to_json(parsed));
      if (round != original) {
        throw specnoc::ConfigError(
            path + ": telemetry series for " + grid + " cell " +
            std::to_string(cell) + " does not round-trip byte-identically");
      }
      ++work.telemetry_runs;
      work.epochs += parsed.epochs.size();
    }
  }
  return work;
}

/// One `s ▄▆█...` sparkline character per epoch (most recent last),
/// scaled to the series' own peak; at most `width` trailing epochs.
std::string sparkline(const specnoc::stats::TelemetrySeries& series,
                      std::size_t width) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  const std::size_t first =
      series.epochs.size() > width ? series.epochs.size() - width : 0;
  std::uint64_t peak = 0;
  for (std::size_t i = first; i < series.epochs.size(); ++i) {
    peak = std::max(peak, series.epochs[i].events);
  }
  std::string out;
  for (std::size_t i = first; i < series.epochs.size(); ++i) {
    const std::size_t level =
        peak == 0 ? 0 : (series.epochs[i].events * 8 + peak - 1) / peak;
    out += kLevels[std::min<std::size_t>(level, 8)];
  }
  return out;
}

/// Rendered --follow state: one line per run frame, a summary at the end.
struct FollowView {
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  bool done = false;

  void render(const specnoc::stats::TelemetryFrame& frame) {
    using specnoc::stats::TelemetryFrameKind;
    const specnoc::util::Json& body = frame.body;
    if (frame.kind == TelemetryFrameKind::kStart) {
      const auto* tool = body.find("tool");
      const auto* epoch = body.find("epoch_ps");
      std::printf("-- %s sweep started%s --\n",
                  tool != nullptr ? tool->as_string().c_str() : "?",
                  epoch != nullptr
                      ? (" (epoch " + std::to_string(epoch->as_u64()) + " ps)")
                            .c_str()
                      : "");
      return;
    }
    if (frame.kind == TelemetryFrameKind::kEnd) {
      std::printf("-- done: %llu run(s), %llu failed, %llu events, "
                  "%.1f ms run wall time --\n",
                  static_cast<unsigned long long>(runs),
                  static_cast<unsigned long long>(failures),
                  static_cast<unsigned long long>(events), wall_ms);
      done = true;
      return;
    }
    ++runs;
    const auto* status = body.find("status");
    const bool ok = status != nullptr && status->as_string() == "ok";
    if (!ok) ++failures;
    const auto* run_events = body.find("events");
    if (run_events != nullptr) events += run_events->as_u64();
    const auto* wall = body.find("wall_ms");
    if (wall != nullptr) wall_ms += wall->as_double();
    std::string spark;
    if (const auto* series = body.find("telemetry")) {
      spark = "  " + sparkline(
          specnoc::stats::telemetry_series_from_json(*series), 32);
    }
    std::printf("[%4llu] %-12s %-40s %-4s %9llu ev %8.1f ms%s\n",
                static_cast<unsigned long long>(body.at("cell").as_u64()),
                body.at("grid").as_string().c_str(),
                body.at("key").as_string().c_str(), ok ? "ok" : "FAIL",
                static_cast<unsigned long long>(
                    run_events != nullptr ? run_events->as_u64() : 0),
                wall != nullptr ? wall->as_double() : 0.0, spark.c_str());
    std::fflush(stdout);
  }
};

/// How many --poll-ms intervals follow_stream waits for a stream file
/// that does not exist yet (the harness usually starts a beat after the
/// tail does). 120 polls at the default 500 ms = one minute.
constexpr unsigned kAppearPolls = 120;

/// Tails an NDJSON telemetry stream. Only complete lines (newline-
/// terminated) are parsed — a frame mid-write is left for the next poll.
/// Returns 0 after the end frame, 3 when --once hit EOF before it.
int follow_stream(const std::string& path, bool once, unsigned poll_ms) {
  const bool from_stdin = path == "-";
  std::ifstream file;
  if (!from_stdin) {
    // A not-yet-created file is the normal start-order race, not an error:
    // poll until the writer creates it. --once keeps the immediate check
    // (render what exists *now*), and a genuinely absent file still fails,
    // just after the bounded wait.
    const unsigned budget_ms = once ? 0 : kAppearPolls * std::max(poll_ms, 1u);
    if (!specnoc::util::wait_for_file(path, poll_ms, budget_ms)) {
      throw specnoc::ConfigError(
          "cannot read telemetry stream '" + path + "' (waited " +
          std::to_string(budget_ms) + " ms for it to appear)");
    }
    file.open(path);
    if (!file) {
      throw specnoc::ConfigError("cannot read telemetry stream '" + path +
                                 "'");
    }
  }
  std::istream& in = from_stdin ? std::cin : file;

  FollowView view;
  std::string line;
  while (!view.done) {
    if (!std::getline(in, line)) {
      if (from_stdin || once) break;
      in.clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      continue;
    }
    if (in.eof()) {
      // Partial trailing line (no newline yet): rewind to its start and
      // wait for the writer to finish it.
      if (from_stdin || once) break;
      in.clear();
      in.seekg(-static_cast<std::streamoff>(line.size()), std::ios::cur);
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      continue;
    }
    view.render(specnoc::stats::telemetry_frame_parse(line));
  }
  return view.done ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specnoc;

  std::string out_path;
  std::vector<std::string> shard_paths;
  bool follow = false;
  bool once = false;
  unsigned poll_ms = 500;

  util::CliParser cli(
      "sweep_merge",
      "Validate and merge shard files from a sharded design-space sweep, "
      "or tail a live telemetry stream with --follow.");
  cli.add_string("--out", &out_path,
                 "merged JSONL output path (required unless --follow)");
  cli.add_flag("--follow", &follow,
               "tail an NDJSON telemetry stream (harness --telemetry-out; "
               "'-' = stdin) and render one line per completed run");
  cli.add_flag("--once", &once,
               "with --follow: render the frames already present, then exit "
               "instead of waiting for the end frame");
  cli.add_unsigned("--poll-ms", &poll_ms,
                   "with --follow: tail poll interval in ms; also sizes the "
                   "wait for a not-yet-created stream file (120 polls)");
  cli.add_positional_list("shard.jsonl", &shard_paths,
                          "shard files produced by harness --shard workers "
                          "(with --follow: one telemetry stream file)");
  cli.parse_or_exit(argc, argv);

  try {
    if (follow) {
      if (shard_paths.size() != 1) {
        throw util::UsageError("--follow takes exactly one stream file");
      }
      if (!out_path.empty()) {
        throw util::UsageError("--follow cannot be combined with --out");
      }
      return follow_stream(shard_paths[0], once, poll_ms);
    }
    if (out_path.empty()) {
      throw util::UsageError("--out is required");
    }
    if (shard_paths.empty()) {
      throw util::UsageError("no shard files given");
    }

    std::vector<stats::ShardFile> inputs;
    inputs.reserve(shard_paths.size());
    for (const auto& path : shard_paths) {
      inputs.push_back(stats::load_shard_file(path));
    }

    ShardWork total;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const ShardWork work = tally_shard(inputs[i], shard_paths[i]);
      std::fprintf(stderr, "shard %s: %zu cell(s), %.1f ms run wall time, "
                   "%llu retried attempt(s)\n",
                   shard_paths[i].c_str(), work.cells, work.wall_ms,
                   static_cast<unsigned long long>(work.retries));
      total.cells += work.cells;
      total.wall_ms += work.wall_ms;
      total.retries += work.retries;
      total.telemetry_runs += work.telemetry_runs;
      total.epochs += work.epochs;
    }
    std::fprintf(stderr, "all shards: %zu cell(s), %.1f ms run wall time, "
                 "%llu retried attempt(s)\n",
                 total.cells, total.wall_ms,
                 static_cast<unsigned long long>(total.retries));
    if (total.telemetry_runs > 0) {
      std::fprintf(stderr, "telemetry: %zu cell(s) carry an epoch series "
                   "(%llu epochs total, validated byte-identical)\n",
                   total.telemetry_runs,
                   static_cast<unsigned long long>(total.epochs));
    }

    stats::MergeReport report;
    const stats::ShardFile merged = stats::merge_shards(inputs, &report);
    stats::write_shard_file(merged, out_path);

    std::fprintf(stderr, "merged %zu shard file(s) of tool '%s' (seed %llu) "
                 "into %s\n",
                 shard_paths.size(), merged.manifest.tool.c_str(),
                 static_cast<unsigned long long>(merged.manifest.seed),
                 out_path.c_str());
    std::fputs(report.summary().c_str(), stderr);

    return report.complete() ? 0 : 3;
  } catch (const util::UsageError& error) {
    std::fprintf(stderr, "sweep_merge: %s\n", error.what());
    std::fputs(cli.usage().c_str(), stderr);
    return 2;
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "sweep_merge: %s\n", error.what());
    return 2;
  }
}
