#include "cmp/directory.h"

namespace specnoc::cmp {

bool Directory::admit(std::uint64_t line, DirectoryRequest request) {
  DirectoryEntry& e = entries_[line];
  if (e.busy) {
    e.queue.push_back(request);
    return false;
  }
  e.busy = true;
  e.request = request;
  e.pending.clear();
  e.need_dram = false;
  e.dram_done = false;
  return true;
}

DirectoryAction Directory::begin(std::uint64_t line) {
  DirectoryEntry& e = entries_[line];
  SPECNOC_EXPECTS(e.busy);
  const std::uint32_t p = e.request.proc;
  DirectoryAction action;
  if (e.request.exclusive) {
    // GetX: every other holder must drop the line. The requester may itself
    // be a (stale or live) sharer — it never acks its own transaction.
    action.invalidate = e.sharers;
    action.invalidate.reset(p);
    const bool upgrade = e.sharers.test(p);
    const bool owned = e.owner >= 0 && e.owner != static_cast<std::int32_t>(p);
    action.dram_read = !upgrade && !owned;
  } else {
    // GetS: a modified owner is recalled (its WbData carries the line);
    // otherwise memory supplies it. The "owner" can be the requester itself
    // when its eviction writeback is still in flight behind this re-read —
    // then nobody holds the line and memory supplies it.
    if (e.owner >= 0 && e.owner != static_cast<std::int32_t>(p)) {
      const auto owner = static_cast<std::uint32_t>(e.owner);
      action.invalidate.set(owner);
      e.sharers.reset(owner);  // the recall drops the owner's copy
      e.owner = -1;
    } else {
      e.owner = -1;
      action.dram_read = true;
    }
  }
  e.pending = action.invalidate;
  e.need_dram = action.dram_read;
  return action;
}

void Directory::ack(std::uint64_t line, std::uint32_t from) {
  DirectoryEntry& e = entries_[line];
  if (!e.busy) {
    // Eviction writeback that raced past the transaction it answered, or
    // arrived between transactions: just forget the evictor.
    writeback_idle(line, from);
    return;
  }
  // test-before-reset absorbs a double response (an owner that both evicted
  // and answered the recall).
  if (e.pending.test(from)) e.pending.reset(from);
}

void Directory::dram_complete(std::uint64_t line) {
  DirectoryEntry& e = entries_[line];
  SPECNOC_EXPECTS(e.busy && e.need_dram);
  e.dram_done = true;
}

bool Directory::ready(std::uint64_t line) const {
  const auto it = entries_.find(line);
  if (it == entries_.end() || !it->second.busy) return false;
  const DirectoryEntry& e = it->second;
  return e.pending.none() && (!e.need_dram || e.dram_done);
}

DirectoryRequest Directory::complete(std::uint64_t line, bool* has_next,
                                     DirectoryRequest* next) {
  DirectoryEntry& e = entries_[line];
  SPECNOC_EXPECTS(e.busy && e.pending.none());
  const DirectoryRequest done = e.request;
  if (done.exclusive) {
    e.sharers = noc::DestSet::single(done.proc);
    e.owner = static_cast<std::int32_t>(done.proc);
  } else {
    e.sharers.set(done.proc);
    e.owner = -1;  // a recalled owner downgraded to memory-backed sharing
  }
  e.busy = false;
  if (has_next != nullptr) *has_next = false;
  if (!e.queue.empty()) {
    if (has_next != nullptr) *has_next = true;
    if (next != nullptr) *next = e.queue.front();
    e.queue.pop_front();
  }
  return done;
}

void Directory::writeback_idle(std::uint64_t line, std::uint32_t from) {
  DirectoryEntry& e = entries_[line];
  if (e.owner == static_cast<std::int32_t>(from)) e.owner = -1;
  e.sharers.reset(from);
}

}  // namespace specnoc::cmp
