// Quickstart: build a network, send messages, observe deliveries.
//
//   $ ./examples/quickstart
//
// Walks through the core public API: MotNetwork construction, message
// admission (unicast / multicast / broadcast), the traffic observer hook,
// and per-architecture comparison of one multicast's completion latency.
#include <cstdio>
#include <map>
#include <vector>

#include "core/mot_network.h"

using namespace specnoc;

namespace {

/// Minimal observer: records header arrival times per destination.
class HeaderLog final : public noc::TrafficObserver {
 public:
  void on_flit_ejected(const noc::Packet& packet, std::uint32_t dest,
                       noc::FlitKind kind, TimePs when) override {
    static_cast<void>(packet);
    if (kind == noc::FlitKind::kHeader) {
      arrivals[dest] = when;
    }
  }
  void on_packet_injected(const noc::Packet&, TimePs) override {}
  std::map<std::uint32_t, TimePs> arrivals;
};

}  // namespace

int main() {
  // 1. Build an 8x8 MoT network with the paper's headline architecture:
  //    local speculation (speculative root, non-speculative elsewhere)
  //    plus protocol optimizations.
  core::NetworkConfig config;  // defaults: n=8, 5-flit packets
  core::MotNetwork network(core::Architecture::kOptHybridSpeculative,
                           config);

  std::printf("Built %s: %ux%u MoT, %u speculative / %u non-speculative "
              "fanout nodes per tree, %u-bit multicast addresses\n",
              core::to_string(network.architecture()),
              network.topology().n(), network.topology().n(),
              network.speculation().speculative_count(),
              network.speculation().non_speculative_count(),
              network.address_bits());

  // 2. Attach an observer and send one unicast and one multicast message.
  HeaderLog log;
  network.net().hooks().traffic = &log;

  network.send_message(/*src=*/0, noc::DestSet::single(5),
                       /*measured=*/false);
  network.scheduler().run();
  std::printf("\nunicast 0 -> 5 : header delivered at %.2f ns\n",
              ps_to_ns(log.arrivals.at(5)));

  log.arrivals.clear();
  noc::DestSet dests;
  dests.set(1);
  dests.set(4);
  dests.set(6);
  const TimePs t0 = network.scheduler().now();
  network.send_message(/*src=*/3, dests, /*measured=*/false);
  network.scheduler().run();
  std::printf("multicast 3 -> {1,4,6} : one packet, headers at");
  for (const auto& [dest, when] : log.arrivals) {
    std::printf("  d%u=%.2fns", dest, ps_to_ns(when - t0));
  }
  std::printf("\n");

  // 3. Compare the same broadcast across all six architectures.
  std::printf("\nbroadcast 2 -> all, completion of last header:\n");
  for (const auto arch : core::all_architectures()) {
    core::MotNetwork net(arch, config);
    HeaderLog arch_log;
    net.net().hooks().traffic = &arch_log;
    net.send_message(2, noc::DestSet::from_word(0xFF), false);
    net.scheduler().run();
    TimePs last = 0;
    for (const auto& [dest, when] : arch_log.arrivals) {
      last = std::max(last, when);
    }
    std::printf("  %-24s %6.2f ns  (%u-bit addresses)\n",
                core::to_string(arch), ps_to_ns(last), net.address_bits());
  }
  return 0;
}
