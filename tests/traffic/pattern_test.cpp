#include "traffic/pattern.h"

#include <bit>
#include <map>

#include <gtest/gtest.h>

#include "util/error.h"

namespace specnoc::traffic {
namespace {

TEST(UniformRandomTest, SingleDestInRange) {
  auto p = make_uniform_random(8);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto dests = p->next_dests(0, rng);
    EXPECT_EQ(dests.count(), 1u);
    EXPECT_TRUE(dests.within(8));
  }
}

TEST(PatternRadixTest, RejectsRadixAboveMaxEndpoints) {
  // noc::DestSet caps out at kMaxEndpoints; a wider radix would silently
  // truncate destination sets, so every pattern factory refuses it up front.
  const std::uint32_t over = noc::kMaxEndpoints * 2;
  EXPECT_THROW(make_uniform_random(over), ConfigError);
  EXPECT_THROW(make_shuffle(over), ConfigError);
  EXPECT_THROW(make_bit_reverse(over), ConfigError);
  EXPECT_THROW(make_bit_complement(over), ConfigError);
  EXPECT_THROW(make_transpose(over), ConfigError);
  EXPECT_THROW(make_hotspot(over, 0, 0.7), ConfigError);
  EXPECT_THROW(make_multicast_mix(over, 0.1, 2, 8), ConfigError);
  // Radixes past the old 64-endpoint ceiling are now in range.
  EXPECT_NO_THROW(make_uniform_random(64));
  EXPECT_NO_THROW(make_uniform_random(128));
  EXPECT_NO_THROW(make_uniform_random(noc::kMaxEndpoints));
}

TEST(UniformRandomTest, CoversAllDestinations) {
  auto p = make_uniform_random(8);
  Rng rng(2);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 8000; ++i) {
    ++counts[p->next_dests(3, rng).to_word()];
  }
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [mask, count] : counts) {
    EXPECT_GT(count, 700);  // ~1000 each
    EXPECT_LT(count, 1300);
  }
}

TEST(ShuffleTest, FixedPermutation8) {
  auto p = make_shuffle(8);
  Rng rng(1);
  // dst = rotl3(src): 0->0, 1->2, 2->4, 3->6, 4->1, 5->3, 6->5, 7->7.
  const std::uint32_t expected[] = {0, 2, 4, 6, 1, 3, 5, 7};
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(p->next_dests(s, rng), noc::DestSet::single(expected[s]));
  }
}

TEST(ShuffleTest, IsPermutationForAllSizes) {
  for (std::uint32_t n : {4u, 8u, 16u, 32u}) {
    auto p = make_shuffle(n);
    Rng rng(1);
    noc::DestSet seen;
    for (std::uint32_t s = 0; s < n; ++s) {
      seen |= p->next_dests(s, rng);
    }
    EXPECT_EQ(seen.count(), n);
  }
}

TEST(BitReverseTest, FixedMapping) {
  auto p = make_bit_reverse(8);
  Rng rng(1);
  EXPECT_EQ(p->next_dests(1, rng), noc::DestSet::single(4));
  EXPECT_EQ(p->next_dests(3, rng), noc::DestSet::single(6));
}

TEST(BitComplementTest, FixedMapping) {
  auto p = make_bit_complement(8);
  Rng rng(1);
  EXPECT_EQ(p->next_dests(0, rng), noc::DestSet::single(7));
  EXPECT_EQ(p->next_dests(5, rng), noc::DestSet::single(2));
}

TEST(TransposeTest, FixedMapping16) {
  auto p = make_transpose(16);
  Rng rng(1);
  // 16 nodes = 4 bits; (x,y) -> (y,x): 0b0110 (1,2) -> 0b1001 (2,1).
  EXPECT_EQ(p->next_dests(0b0110, rng), noc::DestSet::single(0b1001));
  EXPECT_EQ(p->next_dests(0b0000, rng), noc::DestSet::single(0b0000));
  EXPECT_EQ(p->next_dests(0b1111, rng), noc::DestSet::single(0b1111));
}

TEST(TransposeTest, RequiresEvenBits) {
  EXPECT_THROW(make_transpose(8), ConfigError);
  EXPECT_THROW(make_transpose(32), ConfigError);
  EXPECT_NO_THROW(make_transpose(4));
  EXPECT_NO_THROW(make_transpose(64));
}

TEST(TransposeTest, IsInvolution) {
  auto p = make_transpose(64);
  Rng rng(1);
  for (std::uint32_t s = 0; s < 64; ++s) {
    const auto d = p->next_dests(s, rng);
    const auto dest = d.first();
    EXPECT_EQ(p->next_dests(dest, rng), noc::DestSet::single(s));
  }
}

TEST(HotspotTest, FractionGoesToHotDest) {
  auto p = make_hotspot(8, 4, 0.7);
  Rng rng(5);
  int hot = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    if (p->next_dests(0, rng) == noc::DestSet::single(4)) ++hot;
  }
  // 0.7 direct + 0.3 * 1/8 uniform spillover = 0.7375.
  EXPECT_NEAR(static_cast<double>(hot) / samples, 0.7375, 0.02);
}

TEST(HotspotTest, RejectsBadConfig) {
  EXPECT_THROW(make_hotspot(8, 9, 0.5), ConfigError);
  EXPECT_THROW(make_hotspot(8, 0, 1.5), ConfigError);
}

TEST(MulticastMixTest, FractionOfMulticasts) {
  auto p = make_multicast_mix(8, 0.10);
  Rng rng(7);
  int multicast = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    if (p->next_dests(2, rng).is_multicast()) ++multicast;
  }
  EXPECT_NEAR(static_cast<double>(multicast) / samples, 0.10, 0.01);
}

TEST(MulticastMixTest, SubsetSizesWithinBounds) {
  auto p = make_multicast_mix(8, 1.0, 3, 5);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const int size = static_cast<int>(p->next_dests(0, rng).count());
    EXPECT_GE(size, 3);
    EXPECT_LE(size, 5);
  }
}

TEST(MulticastMixTest, RejectsBadBounds) {
  EXPECT_THROW(make_multicast_mix(8, 0.5, 0, 4), ConfigError);
  EXPECT_THROW(make_multicast_mix(8, 0.5, 5, 4), ConfigError);
  EXPECT_THROW(make_multicast_mix(8, 0.5, 2, 9), ConfigError);
  EXPECT_THROW(make_multicast_mix(8, 1.5), ConfigError);
}

TEST(MulticastStaticTest, OnlyListedSourcesMulticast) {
  auto p = make_multicast_static(8, {0, 3, 5});
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    for (std::uint32_t s : {0u, 3u, 5u}) {
      EXPECT_GT(p->next_dests(s, rng).count(), 1u);
    }
    for (std::uint32_t s : {1u, 2u, 4u, 6u, 7u}) {
      EXPECT_EQ(p->next_dests(s, rng).count(), 1u);
    }
  }
}

TEST(MulticastStaticTest, AllSourcesActive) {
  auto p = make_multicast_static(8, {0, 3, 5});
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(p->source_active(s));
  }
}

TEST(PatternNamesTest, Names) {
  EXPECT_EQ(make_uniform_random(8)->name(), "UniformRandom");
  EXPECT_EQ(make_shuffle(8)->name(), "Shuffle");
  EXPECT_EQ(make_hotspot(8, 0, 0.5)->name(), "Hotspot");
  EXPECT_EQ(make_multicast_mix(8, 0.05)->name(), "Multicast5");
  EXPECT_EQ(make_multicast_mix(8, 0.10)->name(), "Multicast10");
  EXPECT_EQ(make_multicast_static(8, {0})->name(), "Multicast_static");
}

TEST(PatternRadixTest, RejectsBadRadix) {
  EXPECT_THROW(make_uniform_random(0), ConfigError);
  EXPECT_THROW(make_uniform_random(5), ConfigError);
  EXPECT_THROW(make_shuffle(65), ConfigError);
}

}  // namespace
}  // namespace specnoc::traffic
