# Empty dependencies file for bench_ablation_hybrid16.
# This may be replaced when dependencies are built.
