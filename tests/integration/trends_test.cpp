// Integration tests asserting the paper's headline qualitative trends.
// These use shortened windows relative to the bench harnesses but the same
// protocols; they guard the reproduction against regressions.
#include <gtest/gtest.h>

#include "stats/experiment.h"

namespace specnoc {
namespace {

using core::Architecture;
using stats::ExperimentRunner;
using traffic::BenchmarkId;

class TrendsTest : public ::testing::Test {
 protected:
  TrendsTest() : runner_(core::NetworkConfig{}, 42) {}
  ExperimentRunner runner_;
};

TEST_F(TrendsTest, MulticastSaturation_ParallelBeatsSerial) {
  // Table 1: BasicNonSpeculative gains 14.8-39.5% over Baseline on
  // multicast benchmarks.
  for (const auto bench : traffic::multicast_benchmarks()) {
    const auto base =
        runner_.saturation(Architecture::kBaseline, bench)
            .delivered_flits_per_ns;
    const auto tree =
        runner_.saturation(Architecture::kBasicNonSpeculative, bench)
            .delivered_flits_per_ns;
    EXPECT_GT(tree, base * 1.05) << traffic::to_string(bench);
  }
}

TEST_F(TrendsTest, MulticastSaturation_OrderingAcrossTrajectory) {
  // Baseline < BasicNonSpec < BasicHybrid < OptHybrid on Multicast_static.
  const auto bench = BenchmarkId::kMulticastStatic;
  const auto v = [&](Architecture a) {
    return runner_.saturation(a, bench).delivered_flits_per_ns;
  };
  EXPECT_LT(v(Architecture::kBaseline),
            v(Architecture::kBasicNonSpeculative));
  EXPECT_LT(v(Architecture::kBasicNonSpeculative),
            v(Architecture::kBasicHybridSpeculative) * 1.02);
  EXPECT_LT(v(Architecture::kBasicHybridSpeculative),
            v(Architecture::kOptHybridSpeculative) * 1.02);
}

TEST_F(TrendsTest, HotspotSaturationIdenticalAcrossArchitectures) {
  // Table 1: hotspot is fanin-limited; every network shows the same number.
  const auto v = [&](Architecture a) {
    return runner_.saturation(a, BenchmarkId::kHotspot)
        .delivered_flits_per_ns;
  };
  const auto base = v(Architecture::kBaseline);
  for (const auto arch : core::all_architectures()) {
    EXPECT_NEAR(v(arch), base, base * 0.06) << core::to_string(arch);
  }
}

TEST_F(TrendsTest, Latency_TreeMulticastBeatsSerialHeavily) {
  // Figure 6(a): 39-74% latency reduction on multicast benchmarks.
  const auto base = runner_.latency_at_fraction(
      Architecture::kBaseline, BenchmarkId::kMulticastStatic);
  const auto tree = runner_.latency_at_fraction(
      Architecture::kBasicNonSpeculative, BenchmarkId::kMulticastStatic);
  ASSERT_TRUE(base.drained);
  ASSERT_TRUE(tree.drained);
  EXPECT_LT(tree.mean_latency_ns, base.mean_latency_ns * 0.75);
}

TEST_F(TrendsTest, Latency_SpeculationHelpsUnicast) {
  // Figure 6(b): OptHybrid ~10% faster than OptNonSpec; OptAllSpec fastest.
  const auto nonspec = runner_.latency_at_fraction(
      Architecture::kOptNonSpeculative, BenchmarkId::kUniformRandom);
  const auto hybrid = runner_.latency_at_fraction(
      Architecture::kOptHybridSpeculative, BenchmarkId::kUniformRandom);
  const auto allspec = runner_.latency_at_fraction(
      Architecture::kOptAllSpeculative, BenchmarkId::kUniformRandom);
  EXPECT_LT(hybrid.mean_latency_ns, nonspec.mean_latency_ns);
  EXPECT_LT(allspec.mean_latency_ns, hybrid.mean_latency_ns);
}

TEST_F(TrendsTest, Power_SpeculationOrdering) {
  // Table 1 power: OptNonSpec < OptHybrid < OptAllSpec at the same load.
  const auto bench = BenchmarkId::kUniformRandom;
  const auto p = [&](Architecture a) {
    return runner_.power_at_baseline_fraction(a, bench).power_mw;
  };
  const auto nonspec = p(Architecture::kOptNonSpeculative);
  const auto hybrid = p(Architecture::kOptHybridSpeculative);
  const auto allspec = p(Architecture::kOptAllSpeculative);
  EXPECT_LT(nonspec, hybrid);
  EXPECT_LT(hybrid, allspec);
  // Hybrid overhead is small (paper: 3.5-6.1%); all-spec considerable
  // (14.7-22.9%). Allow generous bands.
  EXPECT_LT(hybrid / nonspec, 1.18);
  EXPECT_GT(allspec / nonspec, 1.05);
}

TEST_F(TrendsTest, Power_OptimizationRecoversHybridOverhead) {
  // Table 1: BasicHybrid is the most power-hungry trajectory network;
  // OptHybrid recovers most of the overhead. Baseline has the lowest
  // power on unicast traffic (its serial multicast energy on the
  // multicast benchmarks is within a few percent of BasicNonSpeculative;
  // see EXPERIMENTS.md).
  const auto p = [&](Architecture a, BenchmarkId b) {
    return runner_.power_at_baseline_fraction(a, b).power_mw;
  };
  EXPECT_LT(p(Architecture::kOptHybridSpeculative, BenchmarkId::kMulticast10),
            p(Architecture::kBasicHybridSpeculative,
              BenchmarkId::kMulticast10));
  EXPECT_LT(p(Architecture::kBaseline, BenchmarkId::kUniformRandom),
            p(Architecture::kBasicNonSpeculative,
              BenchmarkId::kUniformRandom));
  EXPECT_LT(p(Architecture::kBaseline, BenchmarkId::kMulticast10),
            p(Architecture::kBasicHybridSpeculative,
              BenchmarkId::kMulticast10));
}

}  // namespace
}  // namespace specnoc
