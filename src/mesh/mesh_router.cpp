#include "mesh/mesh_router.h"

#include <bit>

namespace specnoc::mesh {

MeshRouter::MeshRouter(sim::Scheduler& scheduler, noc::SimHooks& hooks,
                       std::string name,
                       const nodes::NodeCharacteristics& chars,
                       const MeshTopology& topology, std::uint32_t router_id,
                       std::uint32_t input_buffer_flits,
                       TimePs sticky_timeout)
    : MeshRouter(scheduler, hooks, noc::NodeKind::kMeshRouter,
                 std::move(name), chars, topology, router_id,
                 input_buffer_flits, sticky_timeout) {}

MeshRouter::MeshRouter(sim::Scheduler& scheduler, noc::SimHooks& hooks,
                       noc::NodeKind kind, std::string name,
                       const nodes::NodeCharacteristics& chars,
                       const MeshTopology& topology, std::uint32_t router_id,
                       std::uint32_t input_buffer_flits,
                       TimePs sticky_timeout)
    : Node(scheduler, hooks, kind, std::move(name)), topology_(topology),
      id_(router_id), chars_(&nodes::intern_characteristics(chars)),
      buffer_capacity_(input_buffer_flits), sticky_timeout_(sticky_timeout) {
  SPECNOC_EXPECTS(router_id < topology.n());
  SPECNOC_EXPECTS(input_buffer_flits >= 1);
  SPECNOC_EXPECTS(sticky_timeout > 0);
}

bool MeshRouter::valid_tree_arrival(const noc::Flit& flit,
                                    std::uint32_t in_port) const {
  if (in_port == static_cast<std::uint32_t>(Port::kLocal)) {
    return true;  // fresh injection from this router's own NI
  }
  // The flit arrived on side `in_port`, i.e. from the neighbor in that
  // direction; the edge is on the packet's XY tree iff that neighbor
  // routes toward us.
  const auto side = static_cast<Port>(in_port);
  if (!topology_.has_neighbor(id_, side)) {
    return false;
  }
  const std::uint32_t upstream = topology_.neighbor(id_, side);
  const PortMask up_dirs = topology_.route_dirs(
      upstream, flit.packet->src, flit.packet->dests);
  return (up_dirs & port_bit(opposite(side))) != 0;
}

PortMask MeshRouter::compute_needed(const noc::Flit& flit,
                                    std::uint32_t in_port) const {
  if (!valid_tree_arrival(flit, in_port)) {
    return 0;  // redundant copy from a speculative neighbor: throttle
  }
  return topology_.route_dirs(id_, flit.packet->src, flit.packet->dests);
}

PortMask MeshRouter::speculative_ports(const noc::Flit&, std::uint32_t) const {
  return 0;  // conventional routers do not speculate
}

void MeshRouter::deliver(const noc::Flit& flit, std::uint32_t in_port) {
  SPECNOC_EXPECTS(in_port < kNumPorts);
  InputState& in = in_[in_port];
  SPECNOC_ASSERT(!in.channel_busy);
  in.channel_busy = true;
  in.spec_sent = 0;
  in.spec_window_open = true;
  // Opportunistic early copies (speculative routers only): fire on idle
  // ports after the short speculation latency, never waited on.
  const PortMask spec_request = speculative_ports(flit, in_port);
  if (spec_request != 0) {
    sched().schedule(
        nodes::disciplined_delay(speculation_latency(), chars_->clock_period,
                                 sched().now()),
        [this, flit, in_port, spec_request] {
          in_[in_port].spec_sent =
              fire_speculative(flit, in_port, spec_request);
        });
  }
  const PortMask needed = compute_needed(flit, in_port);
  const TimePs raw =
      needed == 0 ? chars_->throttle_latency : chars_->fwd_header;
  sched().schedule(
      nodes::disciplined_delay(raw, chars_->clock_period, sched().now()),
      [this, flit, in_port, needed] {
        // The conventional path now owns the flit; a speculative event
        // firing after this instant must not re-send it.
        in_[in_port].spec_window_open = false;
        // Tree ports already covered by an early copy are done.
        const PortMask remaining =
            static_cast<PortMask>(needed & ~in_[in_port].spec_sent);
        if (needed == 0) {
          throttle(flit, in_port);
        } else if (remaining == 0) {
          // Fully covered speculatively: dispose of the flit directly.
          record_op(noc::NodeOp::kFastForward);
          record_prealloc(true);
          ack_input(in_port);
        } else {
          enqueue(flit, in_port, remaining);
        }
      });
}

PortMask MeshRouter::fire_speculative(const noc::Flit& flit,
                                      std::uint32_t in_port,
                                      PortMask request) {
  // Two guards. The window: once the conventional path has taken the
  // flit (possible under custom timings where fwd latency < speculation
  // latency), a late early-copy would duplicate it. The backlog: an early
  // copy must not overtake an earlier flit of the same input still queued
  // for a busy port.
  if (!in_[in_port].spec_window_open || !in_[in_port].fifo.empty()) {
    return 0;
  }
  PortMask sent = 0;
  for (std::uint32_t out = 0; out < kNumPorts; ++out) {
    if ((request & (1u << out)) == 0) continue;
    if (out_[out].busy || !out_[out].ready) continue;  // skip, never wait
    // A sticky hold (open_input) means a granted packet is streaming; do
    // not splice early copies into its inter-flit gaps.
    if (out_[out].open_input >= 0) continue;
    transmit(flit, out);
    sent = static_cast<PortMask>(sent | (1u << out));
  }
  if (sent != 0) {
    record_op(noc::NodeOp::kBroadcast);
  }
  return sent;
}

void MeshRouter::transmit(const noc::Flit& flit, std::uint32_t out) {
  OutputState& output_state = out_[out];
  SPECNOC_ASSERT(!output_state.busy && output_state.ready);
  output_state.busy = true;
  ++output_state.grant_epoch;
  output(out).send(flit);
  output_state.ready = false;
  sched().schedule(nodes::disciplined_delay(chars_->fwd_body + chars_->ack_delay,
                                            chars_->clock_period,
                                            sched().now()),
                   [this, out] {
                     out_[out].ready = true;
                     try_serve(out);
                   });
}

void MeshRouter::throttle(const noc::Flit& flit, std::uint32_t port) {
  record_op(noc::NodeOp::kThrottle);
  record_kill(flit);
  ++throttled_;
  ack_input(port);
}

void MeshRouter::enqueue(const noc::Flit& flit, std::uint32_t port,
                         PortMask needed) {
  InputState& in = in_[port];
  SPECNOC_ASSERT(in.channel_busy);
  SPECNOC_ASSERT(in.fifo.size() < buffer_capacity_);
  record_op(std::popcount(needed) > 1 ? noc::NodeOp::kBroadcast
                                      : noc::NodeOp::kRouteForward);
  in.fifo.push_back({flit, arrival_seq_++, needed});
  if (in.fifo.size() < buffer_capacity_) {
    ack_input(port);
  } else {
    in.ack_deferred = true;
  }
  for (std::uint32_t out = 0; out < kNumPorts; ++out) {
    if (needed & (1u << out)) {
      try_serve(out);
    }
  }
}

void MeshRouter::ack_input(std::uint32_t port) {
  sched().schedule(nodes::disciplined_delay(chars_->ack_delay,
                                            chars_->clock_period,
                                            sched().now()),
                   [this, port] {
                     SPECNOC_ASSERT(in_[port].channel_busy);
                     in_[port].channel_busy = false;
                     input(port).ack();
                   });
}

bool MeshRouter::head_needs(std::uint32_t in, std::uint32_t out) const {
  const InputState& input_state = in_[in];
  return !input_state.fifo.empty() &&
         (input_state.fifo.front().needed & (1u << out)) != 0;
}

void MeshRouter::try_serve(std::uint32_t out) {
  OutputState& output_state = out_[out];
  if (output_state.busy || !output_state.ready) return;
  if (output_state.open_input >= 0) {
    const auto owner = static_cast<std::uint32_t>(output_state.open_input);
    if (head_needs(owner, out)) {
      send_part(owner, out);
      return;
    }
    // Hold the output for the open packet's next flit, bounded by the
    // watchdog (multicast lockstep can starve it permanently otherwise).
    if (!output_state.watchdog_armed) {
      output_state.watchdog_armed = true;
      const std::uint64_t epoch = output_state.grant_epoch;
      sched().schedule(sticky_timeout_, [this, out, epoch] {
        OutputState& os = out_[out];
        os.watchdog_armed = false;
        if (os.grant_epoch == epoch && os.open_input >= 0) {
          os.open_input = -1;
          record_watchdog_release();
        }
        try_serve(out);
      });
    }
    return;
  }
  // No open packet on this output: FCFS among heads that need it.
  int pick = -1;
  std::uint64_t best = 0;
  for (std::uint32_t in = 0; in < kNumPorts; ++in) {
    if (!head_needs(in, out)) continue;
    const std::uint64_t seq = in_[in].fifo.front().seq;
    if (pick < 0 || seq < best) {
      pick = static_cast<int>(in);
      best = seq;
    }
  }
  if (pick >= 0) {
    send_part(static_cast<std::uint32_t>(pick), out);
  }
}

void MeshRouter::send_part(std::uint32_t in, std::uint32_t out) {
  InputState& input_state = in_[in];
  OutputState& output_state = out_[out];
  SPECNOC_ASSERT(!output_state.busy && output_state.ready);
  SPECNOC_ASSERT(head_needs(in, out));
  BufferedFlit& head = input_state.fifo.front();
  const noc::Flit flit = head.flit;

  record_op(noc::NodeOp::kArbitrate);
  for (std::uint32_t other = 0; other < kNumPorts; ++other) {
    if (other != in && head_needs(other, out)) {
      record_contended_grant();
      break;
    }
  }
  transmit(flit, out);

  // Sticky open/close per output.
  if (flit.is_header() && !noc::closes_packet(flit)) {
    output_state.open_input = static_cast<int>(in);
  } else if (noc::closes_packet(flit) &&
             output_state.open_input == static_cast<int>(in)) {
    output_state.open_input = -1;
  }

  head.needed = static_cast<PortMask>(head.needed & ~(1u << out));
  if (head.needed == 0) {
    input_state.fifo.pop_front();
    if (input_state.ack_deferred) {
      input_state.ack_deferred = false;
      ack_input(in);
    }
    // The next head may be waiting for outputs that are currently idle.
    if (!input_state.fifo.empty()) {
      const PortMask dirs = input_state.fifo.front().needed;
      for (std::uint32_t o = 0; o < kNumPorts; ++o) {
        if ((dirs & (1u << o)) && o != out) {
          try_serve(o);
        }
      }
    }
  }

}

void MeshRouter::on_output_ack(std::uint32_t out_port) {
  SPECNOC_EXPECTS(out_port < kNumPorts);
  SPECNOC_ASSERT(out_[out_port].busy);
  out_[out_port].busy = false;
  try_serve(out_port);
}

SpecMeshRouter::SpecMeshRouter(sim::Scheduler& scheduler,
                               noc::SimHooks& hooks, std::string name,
                               const nodes::NodeCharacteristics& chars,
                               const MeshTopology& topology,
                               std::uint32_t router_id,
                               std::uint32_t input_buffer_flits,
                               TimePs sticky_timeout,
                               TimePs speculation_latency)
    : MeshRouter(scheduler, hooks, noc::NodeKind::kMeshRouterSpec,
                 std::move(name), chars, topology, router_id,
                 input_buffer_flits, sticky_timeout),
      speculation_latency_(speculation_latency) {
  SPECNOC_EXPECTS(speculation_latency > 0);
}

PortMask SpecMeshRouter::speculative_ports(const noc::Flit&,
                                           std::uint32_t in_port) const {
  // Every connected mesh direction except the arrival side; the Local
  // ejection port is never speculated on (mesh paths are not unique, so
  // membership-based ejection would deliver duplicates — see class
  // comment).
  PortMask mask = 0;
  for (const Port port :
       {Port::kNorth, Port::kEast, Port::kSouth, Port::kWest}) {
    if (static_cast<std::uint32_t>(port) == in_port) continue;
    if (topology().has_neighbor(router_id(), port)) {
      mask |= port_bit(port);
    }
  }
  return mask;
}

}  // namespace specnoc::mesh
