// Per-node memory footprint regression pins.
//
// At 1024 endpoints a MoT network holds ~2M nodes and ~3M channels, so
// every byte of per-object state is megabytes of RSS. The arena refactor
// shrank these footprints deliberately: bounded-ring FIFOs replaced
// std::deque (80-byte object + ~600-byte heap map each), shared
// NodeCharacteristics are interned behind one pointer, port lists hold two
// inline slots, and cross-partition channel state is boxed behind one
// pointer. These static_asserts pin the result — growing any of them past
// the bound is an error a reviewer must see (raise the bound consciously,
// with the RSS math in DESIGN.md §11 updated).
//
// Bounds are the measured x86-64 (libstdc++, -m64) sizes rounded up to the
// next 8 bytes of headroom; they are ceilings, not exact layouts.
#include <gtest/gtest.h>

#include "mesh/mesh_router.h"
#include "noc/channel.h"
#include "noc/node.h"
#include "noc/sink.h"
#include "noc/source.h"
#include "nodes/fanin_node.h"
#include "nodes/fanout_nodes.h"

namespace specnoc {
namespace {

static_assert(sizeof(noc::Node) <= 136, "Node footprint grew");
static_assert(sizeof(noc::Channel) <= 216,
              "Channel footprint grew — at radix 1024 there are ~3M of "
              "these; keep cross-partition state boxed");
static_assert(sizeof(nodes::FaninNode) <= 336,
              "FaninNode footprint grew — input FIFOs must stay inline");
static_assert(sizeof(nodes::BaselineFanoutNode) <= 216,
              "fanout node footprint grew");
static_assert(sizeof(nodes::SpecFanoutNode) <= 216,
              "fanout node footprint grew");
static_assert(sizeof(nodes::NonSpecFanoutNode) <= 216,
              "fanout node footprint grew");
static_assert(sizeof(nodes::OptSpecFanoutNode) <= 216,
              "fanout node footprint grew");
static_assert(sizeof(nodes::OptNonSpecFanoutNode) <= 216,
              "fanout node footprint grew");
static_assert(sizeof(noc::SourceNode) <= 296, "SourceNode footprint grew");
static_assert(sizeof(noc::SinkNode) <= 168, "SinkNode footprint grew");
static_assert(sizeof(mesh::MeshRouter) <= 752,
              "MeshRouter footprint grew (5 ports; still worth watching)");

// A runtime mirror so the suite reports the numbers (static_asserts alone
// are silent when green).
TEST(FootprintTest, ReportSizes) {
  RecordProperty("Node", static_cast<int>(sizeof(noc::Node)));
  RecordProperty("Channel", static_cast<int>(sizeof(noc::Channel)));
  RecordProperty("FaninNode", static_cast<int>(sizeof(nodes::FaninNode)));
  RecordProperty("SourceNode", static_cast<int>(sizeof(noc::SourceNode)));
  RecordProperty("SinkNode", static_cast<int>(sizeof(noc::SinkNode)));
  RecordProperty("MeshRouter", static_cast<int>(sizeof(mesh::MeshRouter)));
  SUCCEED();
}

}  // namespace
}  // namespace specnoc
