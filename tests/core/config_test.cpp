#include "core/config.h"

#include <gtest/gtest.h>

#include "core/mot_network.h"

namespace specnoc::core {
namespace {

TEST(NetworkConfigTest, DefaultsMatchPaper) {
  NetworkConfig cfg;
  EXPECT_EQ(cfg.n, 8u);
  EXPECT_EQ(cfg.flits_per_packet, 5u);
  EXPECT_EQ(cfg.clock_period, 0);  // asynchronous
}

TEST(NetworkConfigTest, CharsForReturnsDefaultsWhenNoOverride) {
  NetworkConfig cfg;
  EXPECT_EQ(cfg.chars_for(noc::NodeKind::kFanoutBaseline).fwd_header, 263);
  EXPECT_EQ(cfg.chars_for(noc::NodeKind::kFanoutSpeculative).fwd_header, 52);
}

TEST(NetworkConfigTest, OverridesAreHonored) {
  NetworkConfig cfg;
  nodes::NodeCharacteristics fast{100.0, 10, 10, 10, 10};
  cfg.char_overrides[noc::NodeKind::kFanoutNonSpeculative] = fast;
  EXPECT_EQ(cfg.chars_for(noc::NodeKind::kFanoutNonSpeculative).fwd_header,
            10);
  // Other kinds unaffected.
  EXPECT_EQ(cfg.chars_for(noc::NodeKind::kFanoutBaseline).fwd_header, 263);
}

TEST(NetworkConfigTest, OverriddenTimingChangesNetworkBehaviour) {
  // A network with near-zero non-spec node latency must beat the default.
  class HeaderTime : public noc::TrafficObserver {
   public:
    void on_flit_ejected(const noc::Packet&, std::uint32_t,
                         noc::FlitKind kind, TimePs when) override {
      if (kind == noc::FlitKind::kHeader) at = when;
    }
    void on_packet_injected(const noc::Packet&, TimePs) override {}
    TimePs at = 0;
  };
  auto header_latency = [](const NetworkConfig& cfg) {
    MotNetwork net(Architecture::kBasicNonSpeculative, cfg);
    HeaderTime obs;
    net.net().hooks().traffic = &obs;
    net.send_message(0, noc::DestSet::single(7), false);
    net.scheduler().run();
    return obs.at;
  };
  NetworkConfig fast_cfg;
  fast_cfg.char_overrides[noc::NodeKind::kFanoutNonSpeculative] = {
      406.0, 10, 10, 10, 10};
  EXPECT_LT(header_latency(fast_cfg), header_latency(NetworkConfig{}));
}

TEST(NetworkConfigTest, SmallestAndLargestRadixBuild) {
  for (const std::uint32_t n : {2u, 64u}) {
    NetworkConfig cfg;
    cfg.n = n;
    MotNetwork net(Architecture::kOptHybridSpeculative, cfg);
    EXPECT_EQ(net.endpoints(), n);
    // End-to-end smoke: broadcast reaches everyone.
    std::uint32_t headers = 0;
    class Count : public noc::TrafficObserver {
     public:
      explicit Count(std::uint32_t& c) : c_(c) {}
      void on_flit_ejected(const noc::Packet&, std::uint32_t,
                           noc::FlitKind kind, TimePs) override {
        if (kind == noc::FlitKind::kHeader) ++c_;
      }
      void on_packet_injected(const noc::Packet&, TimePs) override {}
      std::uint32_t& c_;
    } obs(headers);
    net.net().hooks().traffic = &obs;
    const noc::DestSet all = noc::DestSet::first_n(n);
    net.send_message(0, all, false);
    net.scheduler().run();
    EXPECT_EQ(headers, n);
  }
}

}  // namespace
}  // namespace specnoc::core
