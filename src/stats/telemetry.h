// Time-resolved telemetry: epoch-sampled delta counters, a bounded
// flight-recorder ring, and a live NDJSON frame stream.
//
// TelemetrySampler slices the run-total counters that MetricsRegistry
// aggregates (kills, prealloc hits, contended grants, per-class stall
// occupancy) into fixed simulated-time epochs, and at each epoch boundary
// also probes the kernel itself: events executed, event-queue depth,
// overflow-tier depth, and — for partitioned runs — per-lane executed and
// window counts. The sampler reads the registry's running totals at each
// boundary and stores the deltas; it installs no per-event observer of its
// own, so a sampled run pays nothing on the event path beyond the
// scheduler's one epoch compare per step. arm() it on the network and the
// registry before running.
//
// Sampling is observational by construction: the epoch hook never schedules
// events and only reads counters the registry was accumulating anyway, so
// enabling telemetry changes no simulated byte (tested by
// telemetry_neutrality_test). On sequential kernels epochs close exactly at
// each boundary; on partitioned kernels they close at window granularity
// (see sim::PartitionedScheduler::set_epoch_hook) but identically for any
// worker-thread count.
//
// Epochs land in a bounded ring (TelemetryOptions::ring_capacity). When the
// ring fills, the oldest epoch is evicted and counted in
// TelemetrySeries::dropped, so the retained suffix doubles as a flight
// recorder: on a failed run the experiment layer dumps the last epochs to
// stderr (dump_flight_recorder) before rethrowing.
//
// Layering: this header must not include stats/metrics.h —
// MetricsSnapshot embeds a TelemetrySeries, so metrics.h includes this
// file. The .cpp uses channel_class() from metrics.h freely.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/units.h"

namespace specnoc::noc {
class Network;
}  // namespace specnoc::noc

namespace specnoc::stats {

class MetricsRegistry;

/// The registry's running totals a sampler diffs at epoch boundaries
/// (MetricsRegistry::telemetry_counters()). Cheap to build: five integers
/// plus one small map keyed by channel class.
struct TelemetryCounters {
  std::uint64_t kills = 0;
  std::uint64_t prealloc_hits = 0;
  std::uint64_t prealloc_misses = 0;
  std::uint64_t contended_grants = 0;
  std::uint64_t watchdog_releases = 0;
  std::map<std::string, std::uint64_t> stall_time_ps;
};

struct TelemetryOptions {
  /// Epoch length in simulated picoseconds; 0 disables sampling entirely
  /// (an unarmed sampler costs nothing and yields an empty series).
  TimePs epoch_ps = 0;
  /// Maximum epochs retained in the ring; older epochs are evicted (and
  /// counted as dropped) once the ring is full. Must be >= 1 when sampling
  /// is enabled.
  std::size_t ring_capacity = 4096;

  bool enabled() const { return epoch_ps > 0; }
};

/// One closed sampling interval [start_ps, end_ps). Counter fields are
/// deltas over the interval; depth fields are instantaneous probes taken at
/// the moment the interval closed. Intervals normally span exactly one
/// epoch, but a burst-free stretch of simulated time closes as a single
/// wider interval (the hook fires when an event first lands at or past a
/// boundary), and the final interval of a run closes at the run's end time.
struct TelemetryEpoch {
  TimePs start_ps = 0;
  TimePs end_ps = 0;

  std::uint64_t events = 0;  ///< kernel events executed in the interval
  std::uint64_t kills = 0;
  std::uint64_t prealloc_hits = 0;
  std::uint64_t prealloc_misses = 0;
  std::uint64_t contended_grants = 0;
  std::uint64_t watchdog_releases = 0;

  std::uint64_t pending = 0;           ///< event-queue depth at close
  std::uint64_t overflow_pending = 0;  ///< overflow-tier depth at close

  /// Stall time accumulated per channel class in the interval, sorted by
  /// class name (deterministic). Classes with zero stall time are omitted.
  std::vector<std::pair<std::string, std::uint64_t>> stall_time_ps;

  /// Partitioned runs only: per-lane events executed in the interval and
  /// windows the executor closed. Empty/zero on sequential kernels.
  std::vector<std::uint64_t> lane_events;
  std::uint64_t windows = 0;

  /// Events per simulated second over the interval (derived, not stored).
  double events_per_second() const;
};

/// The per-run time series: the retained epoch ring plus enough metadata to
/// interpret it. Rides MetricsSnapshot and therefore sweep JSONL records;
/// empty() series are omitted from serialization so pre-telemetry records
/// stay byte-stable.
struct TelemetrySeries {
  TimePs epoch_ps = 0;  ///< 0 = sampling was not enabled
  std::uint64_t epochs_total = 0;  ///< intervals observed, incl. dropped
  std::uint64_t dropped = 0;       ///< intervals evicted from the ring
  std::vector<TelemetryEpoch> epochs;  ///< retained suffix, in time order

  bool empty() const { return epoch_ps == 0; }
};

bool operator==(const TelemetryEpoch& a, const TelemetryEpoch& b);
bool operator==(const TelemetrySeries& a, const TelemetrySeries& b);

/// Exact JSON codec for the series (integers stay integers, so round trips
/// are byte-identical under util::json_write). Used by the MetricsSnapshot
/// codec, the NDJSON run frames, and sweep_merge validation.
util::Json telemetry_series_to_json(const TelemetrySeries& series);
TelemetrySeries telemetry_series_from_json(const util::Json& json);

class TelemetrySampler final {
 public:
  explicit TelemetrySampler(TelemetryOptions options);

  const TelemetryOptions& options() const { return options_; }

  /// Installs the epoch hook on `net` and remembers the network as the
  /// kernel probe source and `registry` as the counter source (it must be
  /// attached as the network's metrics observer, directly or via a tee).
  /// Requires options().enabled(); call once, after the network is built
  /// and before it runs. The sampler must outlive the run (the hook holds
  /// a pointer to it).
  void arm(noc::Network& net, const MetricsRegistry& registry);

  /// Closes the final partial interval at the network's current time,
  /// removes the epoch hook, and returns the collected series. The sampler
  /// is inert afterwards.
  TelemetrySeries finish();

  /// True between arm() and finish().
  bool armed() const { return net_ != nullptr; }

  /// Flight recorder: writes the retained epochs (most recent last) to
  /// `out` in a compact human-readable form. Safe to call at any point,
  /// including from a catch block mid-run.
  void dump_flight_recorder(std::FILE* out) const;

 private:
  /// Epoch-hook body: closes the interval ending at `boundary`.
  void sample(TimePs boundary);
  void close_interval(TimePs end);
  void push_epoch(TelemetryEpoch epoch);

  TelemetryOptions options_;
  noc::Network* net_ = nullptr;
  const MetricsRegistry* registry_ = nullptr;
  TelemetrySeries series_;

  // Baselines at the open interval's start; deltas are taken at close.
  TimePs interval_start_ = 0;
  std::uint64_t events_at_start_ = 0;
  std::vector<std::uint64_t> lane_events_at_start_;
  std::uint64_t windows_at_start_ = 0;
  TelemetryCounters counters_at_start_;
};

/// NDJSON telemetry frames. A stream is bracketed by one `start` and one
/// `end` frame, with one `run` frame per completed run in completion order
/// (nondeterministic under --jobs > 1 — consumers must key on the frame's
/// run index, not its position).
enum class TelemetryFrameKind : std::uint8_t { kStart, kRun, kEnd };

const char* to_string(TelemetryFrameKind kind);

struct TelemetryFrame {
  TelemetryFrameKind kind = TelemetryFrameKind::kRun;
  util::Json body;  ///< the full frame object, "frame" key included
};

/// Serializes one frame as a single NDJSON line (no trailing newline). The
/// "frame" discriminator is written first; `body` must be an object and
/// must not already contain a "frame" key.
std::string telemetry_frame_write(TelemetryFrameKind kind, util::Json body);

/// Strict inverse: parses one NDJSON line into a frame. Throws ConfigError
/// on malformed JSON, a missing/unknown "frame" discriminator, or a
/// non-object line.
TelemetryFrame telemetry_frame_parse(std::string_view line);

/// Append-only NDJSON sink for telemetry frames. "-" writes to stdout
/// (unbuffered per line, so `specnoc ... --telemetry-out - | tool` streams
/// live); anything else is opened as a file for writing. Thread-safe: each
/// frame is one serialized write + flush, so frames from concurrent worker
/// threads never interleave mid-line.
class TelemetryStream {
 public:
  /// Throws ConfigError when the path cannot be opened.
  explicit TelemetryStream(const std::string& path);
  ~TelemetryStream();
  TelemetryStream(const TelemetryStream&) = delete;
  TelemetryStream& operator=(const TelemetryStream&) = delete;

  void emit(TelemetryFrameKind kind, util::Json body);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace specnoc::stats
