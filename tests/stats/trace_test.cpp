#include "stats/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/mot_network.h"

namespace specnoc::stats {
namespace {

using core::Architecture;
using noc::dest_bit;

std::size_t count_lines_with(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find(needle) != std::string::npos) ++count;
  }
  return count;
}

TEST(FlitTracerTest, WritesHeaderRow) {
  std::ostringstream out;
  FlitTracer tracer(out);
  EXPECT_EQ(out.str(), "time_ps,event,subject,packet,src,detail\n");
  EXPECT_EQ(tracer.rows_written(), 0u);
}

TEST(FlitTracerTest, TracesInjectionsAndEjections) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kOptHybridSpeculative, cfg);
  std::ostringstream out;
  FlitTracer tracer(out);
  net.net().hooks().traffic = &tracer;
  net.send_message(2, dest_bit(5) | dest_bit(6), false);
  net.scheduler().run();

  const std::string text = out.str();
  EXPECT_EQ(count_lines_with(text, "inject"), 1u);
  EXPECT_EQ(count_lines_with(text, "multicast"), 1u);
  // 5 flits to each of 2 destinations.
  EXPECT_EQ(count_lines_with(text, "eject"), 10u);
  EXPECT_EQ(count_lines_with(text, ",header"), 2u);
  EXPECT_EQ(count_lines_with(text, ",tail"), 2u);
  EXPECT_EQ(tracer.rows_written(), 11u);
}

TEST(FlitTracerTest, NodeOpsAndChannelsBehindFilter) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kBasicNonSpeculative, cfg);
  std::ostringstream out;
  TraceFilter filter;
  filter.node_ops = true;
  filter.channel_flits = true;
  FlitTracer tracer(out, filter);
  net.net().hooks().traffic = &tracer;
  net.net().hooks().energy = &tracer;
  net.send_message(0, dest_bit(3), false);
  net.scheduler().run();

  const std::string text = out.str();
  // A unicast crosses 3 fanout + 3 fanin switches plus NIs.
  EXPECT_GT(count_lines_with(text, "node_op"), 20u);
  EXPECT_GT(count_lines_with(text, "channel"), 20u);
  EXPECT_EQ(count_lines_with(text, "route_forward"), 15u);  // 5 flits x 3
}

TEST(FlitTracerTest, FilterSuppressesClasses) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kBaseline, cfg);
  std::ostringstream out;
  TraceFilter filter;
  filter.injections = false;
  filter.ejections = false;
  FlitTracer tracer(out, filter);
  net.net().hooks().traffic = &tracer;
  net.send_message(0, dest_bit(1), false);
  net.scheduler().run();
  EXPECT_EQ(tracer.rows_written(), 0u);
}

TEST(FlitKindNamesTest, Names) {
  EXPECT_STREQ(to_string(noc::FlitKind::kHeader), "header");
  EXPECT_STREQ(to_string(noc::FlitKind::kBody), "body");
  EXPECT_STREQ(to_string(noc::FlitKind::kTail), "tail");
}

}  // namespace
}  // namespace specnoc::stats
