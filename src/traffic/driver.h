// Traffic driver: turns a pattern into message injections on a MotNetwork.
//
// Two modes:
//  * Open loop (rate-driven): each active source generates messages with
//    exponentially distributed inter-arrival times, independent of network
//    backpressure (the standard latency-measurement setup; the paper's
//    "injection of headers ... follows an exponential distribution").
//  * Backlogged: each active source always has packets queued — the network
//    runs at its saturation point and delivered throughput *is* the
//    saturation throughput.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "noc/message_network.h"
#include "traffic/pattern.h"
#include "util/rng.h"
#include "util/units.h"

namespace specnoc::traffic {

enum class InjectionMode : std::uint8_t { kOpenLoop, kBacklogged };

struct DriverConfig {
  InjectionMode mode = InjectionMode::kOpenLoop;
  /// Offered load for open-loop mode: flits per nanosecond per active
  /// source (the paper's GF/s unit). Ignored when backlogged.
  double flits_per_ns_per_source = 0.1;
  std::uint64_t seed = 1;
  /// Backlogged mode: packets kept queued per source.
  std::size_t backlog_packets = 2;
};

class TrafficDriver {
 public:
  /// The driver keeps references to network and pattern; both must outlive
  /// it. Call start() once before running the scheduler. Works on any
  /// noc::MessageNetwork (MoT or mesh).
  TrafficDriver(noc::MessageNetwork& network, TrafficPattern& pattern,
                DriverConfig config);

  void start();

  /// Tags messages generated from now on as measured (latency protocol:
  /// enable at the start of the measurement window, disable at its end).
  void set_measured(bool measured) { measured_ = measured; }

  /// Stops open-loop generation (lets the network drain).
  void stop() { stopped_ = true; }

  std::uint64_t messages_generated() const { return messages_generated_; }
  std::uint32_t active_sources() const { return active_sources_; }

 private:
  void schedule_next_arrival(std::uint32_t src);
  void generate(std::uint32_t src);
  TimePs draw_interarrival(std::uint32_t src);

  noc::MessageNetwork& network_;
  TrafficPattern& pattern_;
  DriverConfig config_;
  std::vector<Rng> rng_per_source_;  ///< each touched only by its source lane
  bool measured_ = false;
  // stopped_/messages_generated_ are written from source-lane events, which
  // run on different worker threads in a partitioned simulation; relaxed
  // atomics suffice (counters, no ordering dependencies).
  std::atomic<bool> stopped_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> messages_generated_{0};
  std::uint32_t active_sources_ = 0;
};

}  // namespace specnoc::traffic
