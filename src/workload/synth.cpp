#include "workload/synth.h"

#include <algorithm>

#include "util/contract.h"
#include "util/error.h"
#include "util/rng.h"

namespace specnoc::workload {

namespace {

noc::DestSet mask_of_range(std::uint32_t first, std::uint32_t count) {
  return noc::DestSet::range(first, first + count);
}

}  // namespace

Trace make_dnn_workload(const DnnWorkloadParams& params) {
  if (params.n < 3 || params.n > 64) {
    throw ConfigError(
        "dnn workload needs n in [3, 64] (weight source + PEs + reducer), "
        "got n=" + std::to_string(params.n));
  }
  if (params.flits == 0) throw ConfigError("dnn workload: flits must be >= 1");
  if (params.layers.empty()) {
    throw ConfigError("dnn workload: at least one layer required");
  }
  if (params.layer_stagger < 0 || params.compute_delay < 0) {
    throw ConfigError("dnn workload: times must be >= 0");
  }
  const std::uint32_t weight_source = 0;
  const std::uint32_t reducer = params.n - 1;

  Trace trace;
  trace.meta.n = params.n;
  trace.meta.generator = to_string(SynthId::kDnnLayers);
  std::uint64_t next_id = 0;
  const auto add = [&](std::uint32_t src, noc::DestSet dests, TimePs earliest,
                       TimePs delay,
                       std::vector<std::uint64_t> deps) -> std::uint64_t {
    const std::uint64_t id = next_id++;
    TraceRecord rec;
    rec.id = id;
    rec.src = src;
    rec.dests = dests;
    rec.size = params.flits;
    rec.earliest = earliest;
    rec.delay = delay;
    rec.deps = std::move(deps);
    trace.records.push_back(std::move(rec));
    return id;
  };

  // Partial sums of the previous layer: the next layer's activations wait
  // on the reduction being complete.
  std::vector<std::uint64_t> prev_partials;
  for (std::size_t l = 0; l < params.layers.size(); ++l) {
    const DnnLayer& layer = params.layers[l];
    if (layer.pes == 0 || layer.pes > params.n - 2) {
      throw ConfigError("dnn workload layer " + std::to_string(l) +
                        ": pes must be in [1, n-2] = [1, " +
                        std::to_string(params.n - 2) + "], got " +
                        std::to_string(layer.pes));
    }
    if (layer.weight_tiles == 0 || layer.activation_tiles == 0) {
      throw ConfigError("dnn workload layer " + std::to_string(l) +
                        ": weight_tiles and activation_tiles must be >= 1");
    }
    const TimePs layer_start =
        static_cast<TimePs>(l) * params.layer_stagger;
    const noc::DestSet pe_mask = mask_of_range(1, layer.pes);

    // Weight broadcast: every tile is multicast from the weight source to
    // all of the layer's PEs. No dependencies — weights stream in as soon
    // as the layer's slot opens.
    std::vector<std::uint64_t> weights;
    for (std::uint32_t t = 0; t < layer.weight_tiles; ++t) {
      weights.push_back(add(weight_source, pe_mask, layer_start, 0, {}));
    }

    // Activations: unicast into each PE. Layer 0 reads from the weight
    // source (external input); later layers read the previous reduction.
    const std::uint32_t act_source = l == 0 ? weight_source : reducer;
    std::vector<std::vector<std::uint64_t>> activations(layer.pes);
    for (std::uint32_t t = 0; t < layer.activation_tiles; ++t) {
      for (std::uint32_t pe = 0; pe < layer.pes; ++pe) {
        activations[pe].push_back(add(act_source, noc::DestSet::single(1 + pe),
                                      layer_start, 0, prev_partials));
      }
    }

    // Reduction fan-in: each PE computes for compute_delay once its weights
    // and activations are in, then unicasts its partial sum to the reducer.
    std::vector<std::uint64_t> partials;
    for (std::uint32_t pe = 0; pe < layer.pes; ++pe) {
      std::vector<std::uint64_t> deps = weights;
      deps.insert(deps.end(), activations[pe].begin(), activations[pe].end());
      partials.push_back(add(1 + pe, noc::DestSet::single(reducer), layer_start,
                             params.compute_delay, std::move(deps)));
    }
    prev_partials = std::move(partials);
  }
  return trace;
}

CoherenceWorkload make_coherence_workload(
    const CoherenceWorkloadParams& params) {
  if (params.n < 2 || params.n > 64) {
    throw ConfigError("coherence workload needs n in [2, 64], got n=" +
                      std::to_string(params.n));
  }
  if (params.flits == 0) {
    throw ConfigError("coherence workload: flits must be >= 1");
  }
  if (params.writes_per_proc == 0) {
    throw ConfigError("coherence workload: writes_per_proc must be >= 1");
  }
  const std::uint32_t sharer_cap =
      std::min(params.max_sharers, params.n - 1);
  if (params.min_sharers == 0 || params.min_sharers > sharer_cap) {
    throw ConfigError(
        "coherence workload: min_sharers must be in [1, min(max_sharers, "
        "n-1)] = [1, " + std::to_string(sharer_cap) + "], got " +
        std::to_string(params.min_sharers));
  }
  if (params.think_delay < 0) {
    throw ConfigError("coherence workload: think_delay must be >= 0");
  }

  // Per-processor RNG streams split from one root, the same idiom the
  // open-loop TrafficDriver uses for its sources: sharer sets of different
  // processors are independent, and the whole trace is a function of seed.
  Rng root(params.seed);
  std::vector<Rng> procs;
  procs.reserve(params.n);
  for (std::uint32_t p = 0; p < params.n; ++p) procs.push_back(root.split());

  CoherenceWorkload workload;
  workload.trace.meta.n = params.n;
  workload.trace.meta.generator = to_string(SynthId::kCoherence);
  std::uint64_t next_id = 0;
  // Round-major so ids increase while every dependency points backward.
  std::vector<std::vector<std::uint64_t>> prev_acks(params.n);
  for (std::uint32_t round = 0; round < params.writes_per_proc; ++round) {
    for (std::uint32_t p = 0; p < params.n; ++p) {
      const auto num_sharers = static_cast<std::uint32_t>(
          procs[p].uniform_int(params.min_sharers, sharer_cap));
      // Sample distinct sharers among the other n-1 processors.
      std::vector<std::uint32_t> picks =
          procs[p].sample_without_replacement(params.n - 1, num_sharers);
      noc::DestSet sharers;
      std::vector<std::uint32_t> sharer_ids;
      for (const std::uint32_t pick : picks) {
        const std::uint32_t sharer = pick >= p ? pick + 1 : pick;
        sharers.set(sharer);
        sharer_ids.push_back(sharer);
      }

      CoherenceWrite write;
      write.writer = p;
      write.inv = workload.trace.records.size();
      TraceRecord inv;
      inv.id = next_id++;
      inv.src = p;
      inv.dests = sharers;
      inv.size = params.flits;
      inv.delay = round == 0 ? 0 : params.think_delay;
      inv.deps = prev_acks[p];  // all acks of this proc's previous write
      workload.trace.records.push_back(inv);

      std::vector<std::uint64_t> acks;
      for (const std::uint32_t sharer : sharer_ids) {
        write.acks.push_back(workload.trace.records.size());
        TraceRecord ack;
        ack.id = next_id++;
        ack.src = sharer;
        ack.dests = noc::DestSet::single(p);
        ack.size = params.flits;
        ack.deps = {inv.id};
        workload.trace.records.push_back(std::move(ack));
        acks.push_back(workload.trace.records.back().id);
      }
      prev_acks[p] = std::move(acks);
      workload.writes.push_back(std::move(write));
    }
  }
  return workload;
}

const char* to_string(SynthId id) {
  switch (id) {
    case SynthId::kDnnLayers:
      return "DnnLayers";
    case SynthId::kCoherence:
      return "Coherence";
  }
  SPECNOC_UNREACHABLE("SynthId");
}

SynthId synth_from_string(const std::string& name) {
  if (name == "DnnLayers") return SynthId::kDnnLayers;
  if (name == "Coherence") return SynthId::kCoherence;
  throw ConfigError("unknown workload synthesizer '" + name +
                    "' (valid synthesizers: DnnLayers, Coherence)");
}

Trace make_synth_workload(SynthId id, std::uint32_t n, std::uint32_t flits,
                          std::uint64_t seed) {
  switch (id) {
    case SynthId::kDnnLayers: {
      DnnWorkloadParams params;
      params.n = n;
      params.flits = flits;
      const std::uint32_t pes = n - 2;
      params.layers = {DnnLayer{std::min<std::uint32_t>(4, pes), 2, 1},
                       DnnLayer{pes, 2, 1}};
      return make_dnn_workload(params);
    }
    case SynthId::kCoherence: {
      CoherenceWorkloadParams params;
      params.n = n;
      params.flits = flits;
      params.seed = seed;
      return make_coherence_workload(params).trace;
    }
  }
  SPECNOC_UNREACHABLE("SynthId");
}

}  // namespace specnoc::workload
