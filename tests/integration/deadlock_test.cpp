// Deadlock-freedom regression tests.
//
// Tree-replicated multicast over wormhole fanin arbitration is the
// classically dangerous combination: a packet's branches advance in
// lockstep through the fanout forks (C-element joins), so fanin arbiters
// that hold their output unboundedly for an absent flit couple different
// fanin trees into circular waits. During development a strict-lock
// arbiter deadlocked reproducibly under saturated Multicast_static within
// a few microseconds — these tests pin the fix (the bounded sticky hold in
// nodes::FaninNode) by driving every architecture at saturation for long
// windows and asserting sustained forward progress.
#include <gtest/gtest.h>

#include "core/mot_network.h"
#include "stats/recorder.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"

namespace specnoc {
namespace {

using namespace specnoc::literals;

struct Progress {
  std::uint64_t first_half = 0;
  std::uint64_t second_half = 0;
};

Progress run_saturated(core::Architecture arch, traffic::BenchmarkId bench,
                       TimePs horizon, core::NetworkConfig cfg = {}) {
  core::MotNetwork net(arch, cfg);
  stats::TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  auto pattern = traffic::make_benchmark(bench, cfg.n);
  traffic::DriverConfig dcfg;
  dcfg.mode = traffic::InjectionMode::kBacklogged;
  dcfg.seed = 99;
  traffic::TrafficDriver driver(net, *pattern, dcfg);
  driver.start();
  rec.open_window(0);
  auto& sched = net.scheduler();
  sched.run_until(horizon / 2);
  Progress p;
  p.first_half = rec.window_flits_ejected();
  sched.run_until(horizon);
  rec.close_window(sched.now());
  p.second_half = rec.window_flits_ejected() - p.first_half;
  return p;
}

class DeadlockFreedomTest
    : public ::testing::TestWithParam<core::Architecture> {};

TEST_P(DeadlockFreedomTest, SustainsSaturatedMulticastStatic) {
  const auto p = run_saturated(GetParam(),
                               traffic::BenchmarkId::kMulticastStatic,
                               20000_ns);
  ASSERT_GT(p.first_half, 1000u);
  // Sustained progress: the second half must deliver comparable volume.
  EXPECT_GT(p.second_half, p.first_half / 2);
}

TEST_P(DeadlockFreedomTest, SustainsSaturatedMulticast10) {
  const auto p = run_saturated(GetParam(), traffic::BenchmarkId::kMulticast10,
                               20000_ns);
  ASSERT_GT(p.first_half, 1000u);
  EXPECT_GT(p.second_half, p.first_half / 2);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, DeadlockFreedomTest,
                         ::testing::ValuesIn(core::all_architectures()),
                         [](const auto& param_info) {
                           return std::string(core::to_string(
                               param_info.param));
                         });

TEST(DeadlockFreedomTest16, SustainsSaturatedMulticastAt16x16) {
  core::NetworkConfig cfg;
  cfg.n = 16;
  for (const auto arch : {core::Architecture::kOptHybridSpeculative,
                          core::Architecture::kOptAllSpeculative}) {
    const auto p = run_saturated(arch, traffic::BenchmarkId::kMulticast10,
                                 8000_ns, cfg);
    ASSERT_GT(p.first_half, 1000u) << core::to_string(arch);
    EXPECT_GT(p.second_half, p.first_half / 2) << core::to_string(arch);
  }
}

TEST(DeadlockFreedomTest, AllSourcesBroadcastSimultaneouslyAndDrain) {
  // The densest possible multicast pattern, repeated back-to-back.
  core::NetworkConfig cfg;
  core::MotNetwork net(core::Architecture::kBasicNonSpeculative, cfg);
  stats::TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  rec.open_window(0);
  for (int wave = 0; wave < 50; ++wave) {
    for (std::uint32_t s = 0; s < 8; ++s) {
      net.send_message(s, noc::DestSet::from_word(0xFF), false);
    }
  }
  net.scheduler().run();
  rec.close_window(net.scheduler().now());
  // 50 waves x 8 sources x 8 dests x 5 flits all delivered.
  EXPECT_EQ(rec.window_flits_ejected(), 50u * 8u * 8u * 5u);
}

}  // namespace
}  // namespace specnoc
