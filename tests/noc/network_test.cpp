#include "noc/network.h"

#include <gtest/gtest.h>

#include "../support/test_nodes.h"

namespace specnoc::noc {
namespace {

using specnoc::testing::DriverEndpoint;
using specnoc::testing::RecordingEndpoint;

TEST(NetworkTest, OwnsNodesAndChannels) {
  Network net;
  auto& src = net.add_node<SourceNode>(0, 10);
  auto& sink = net.add_node<SinkNode>(0, 10);
  net.register_source(src);
  net.register_sink(sink);
  net.add_channel({.delay_fwd = 5, .delay_ack = 5, .length = 100.0}, "c",
                  src, 0, sink, 0);
  EXPECT_EQ(net.nodes().size(), 2u);
  EXPECT_EQ(net.channels().size(), 1u);
  EXPECT_EQ(net.num_sources(), 1u);
  EXPECT_EQ(net.num_sinks(), 1u);
  EXPECT_EQ(&net.source(0), &src);
  EXPECT_EQ(&net.sink(0), &sink);
}

TEST(NetworkTest, ChannelWiringIsBidirectionallyVisible) {
  Network net;
  auto& up = net.add_node<SourceNode>(0, 0);
  auto& down = net.add_node<SinkNode>(0, 0);
  auto& ch = net.add_channel({}, "link", up, 0, down, 0);
  EXPECT_EQ(ch.upstream(), &up);
  EXPECT_EQ(ch.downstream(), &down);
  EXPECT_EQ(ch.name(), "link");
  EXPECT_DOUBLE_EQ(ch.params().length, 0.0);
}

TEST(NetworkTest, EndToEndThroughContainer) {
  Network net;
  auto& src = net.add_node<SourceNode>(0, 0);
  auto& sink = net.add_node<SinkNode>(7, 20);
  net.register_source(src);
  net.register_sink(sink);
  net.add_channel({.delay_fwd = 10, .delay_ack = 10, .length = 0}, "c", src,
                  0, sink, 0);

  const Message& msg = net.packets().create_message(0, DestSet::single(7), 0, true);
  const Packet& pkt = net.packets().create_packet(msg, DestSet::single(7), 3);
  src.enqueue_packet(pkt);
  net.scheduler().run();
  EXPECT_EQ(sink.flits_consumed(), 3u);
  EXPECT_EQ(net.packets().num_packets(), 1u);
}

TEST(NetworkTest, SharedHooksReachAllComponents) {
  class Counter : public EnergyObserver {
   public:
    void on_node_op(const Node&, NodeOp, TimePs) override { ++ops; }
    void on_channel_flit(LengthUm, TimePs) override { ++wires; }
    int ops = 0, wires = 0;
  };
  Network net;
  Counter counter;
  net.hooks().energy = &counter;
  auto& src = net.add_node<SourceNode>(0, 0);
  auto& sink = net.add_node<SinkNode>(0, 0);
  net.add_channel({}, "c", src, 0, sink, 0);
  const Message& msg = net.packets().create_message(0, DestSet::single(0), 0, false);
  src.enqueue_packet(net.packets().create_packet(msg, DestSet::single(0), 2));
  net.scheduler().run();
  EXPECT_EQ(counter.wires, 2);
  EXPECT_EQ(counter.ops, 4);  // 2 source sends + 2 sink consumes
}

}  // namespace
}  // namespace specnoc::noc
