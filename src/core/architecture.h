// The six network architectures evaluated in the paper (Section 3/5).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/speculation.h"
#include "mot/topology.h"
#include "noc/hooks.h"

namespace specnoc::core {

enum class Architecture : std::uint8_t {
  /// Unicast-only async MoT [Horak et al.]; multicast via serial unicasts.
  kBaseline,
  /// Simple tree-based parallel multicast, unoptimized non-spec nodes.
  kBasicNonSpeculative,
  /// Local speculation, unoptimized node designs.
  kBasicHybridSpeculative,
  /// Protocol-optimized nodes, no speculation.
  kOptNonSpeculative,
  /// Local speculation + protocol optimizations (the paper's headline).
  kOptHybridSpeculative,
  /// Speculative everywhere except the leaf level (extreme design point).
  kOptAllSpeculative,
  /// User-supplied speculation map (design-space exploration beyond the
  /// paper's three points; see MotNetwork's custom constructor).
  kCustomHybrid,
};

const char* to_string(Architecture arch);

/// Parses a name produced by to_string (exact match). Throws ConfigError
/// on unknown names; kCustomHybrid is not parseable (it has no canonical
/// speculation map).
Architecture architecture_from_string(const std::string& name);

/// All six architectures in the paper's presentation order.
constexpr std::array<Architecture, 6> all_architectures() {
  return {Architecture::kBaseline, Architecture::kBasicNonSpeculative,
          Architecture::kBasicHybridSpeculative,
          Architecture::kOptNonSpeculative,
          Architecture::kOptHybridSpeculative,
          Architecture::kOptAllSpeculative};
}

/// The contribution-trajectory case study (Section 5.2(b)).
constexpr std::array<Architecture, 4> trajectory_architectures() {
  return {Architecture::kBaseline, Architecture::kBasicNonSpeculative,
          Architecture::kBasicHybridSpeculative,
          Architecture::kOptHybridSpeculative};
}

/// The design-space-exploration case study (Section 5.2(c)).
constexpr std::array<Architecture, 3> dse_architectures() {
  return {Architecture::kOptNonSpeculative,
          Architecture::kOptHybridSpeculative,
          Architecture::kOptAllSpeculative};
}

struct ArchitectureTraits {
  bool optimized = false;          ///< uses the protocol-optimized nodes
  bool multicast_capable = false;  ///< false => serialize multicast messages
};

ArchitectureTraits traits(Architecture arch);

/// The speculation map an architecture prescribes for a given topology.
SpeculationMap speculation_for(Architecture arch,
                               const mot::MotTopology& topology);

/// The concrete fanout node kind used at a (non-)speculative position.
noc::NodeKind fanout_kind(Architecture arch, bool speculative);

}  // namespace specnoc::core
