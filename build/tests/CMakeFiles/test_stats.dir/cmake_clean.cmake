file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/experiment_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/experiment_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/recorder_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/recorder_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/trace_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/trace_test.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
