#include "traffic/pattern.h"

#include <algorithm>

#include "util/bits.h"
#include "util/contract.h"
#include "util/error.h"

namespace specnoc::traffic {
namespace {

void check_radix(std::uint32_t n) {
  if (n < 2 || n > noc::kMaxEndpoints || !is_pow2(n)) {
    throw ConfigError("traffic pattern radix must be a power of two in "
                      "[2, " + std::to_string(noc::kMaxEndpoints) +
                      "], got " + std::to_string(n));
  }
}

class UniformRandom final : public TrafficPattern {
 public:
  explicit UniformRandom(std::uint32_t n) : n_(n) { check_radix(n); }
  noc::DestSet next_dests(std::uint32_t, Rng& rng) override {
    return noc::DestSet::single(static_cast<std::uint32_t>(rng.uniform_below(n_)));
  }
  std::string name() const override { return "UniformRandom"; }

 private:
  std::uint32_t n_;
};

class Permutation final : public TrafficPattern {
 public:
  Permutation(std::uint32_t n, std::string name,
              std::uint32_t (*map)(std::uint32_t, std::uint32_t))
      : n_(n), name_(std::move(name)), map_(map) {
    check_radix(n);
  }
  noc::DestSet next_dests(std::uint32_t src, Rng&) override {
    SPECNOC_EXPECTS(src < n_);
    return noc::DestSet::single(map_(src, log2_exact(n_)));
  }
  std::string name() const override { return name_; }

 private:
  std::uint32_t n_;
  std::string name_;
  std::uint32_t (*map_)(std::uint32_t, std::uint32_t);
};

class Hotspot final : public TrafficPattern {
 public:
  Hotspot(std::uint32_t n, std::uint32_t hot, double fraction)
      : n_(n), hot_(hot), fraction_(fraction) {
    check_radix(n);
    if (hot >= n) throw ConfigError("hotspot destination out of range");
    if (fraction < 0.0 || fraction > 1.0) {
      throw ConfigError("hotspot fraction must be in [0, 1]");
    }
  }
  noc::DestSet next_dests(std::uint32_t, Rng& rng) override {
    if (rng.bernoulli(fraction_)) {
      return noc::DestSet::single(hot_);
    }
    return noc::DestSet::single(static_cast<std::uint32_t>(rng.uniform_below(n_)));
  }
  std::string name() const override { return "Hotspot"; }

 private:
  std::uint32_t n_;
  std::uint32_t hot_;
  double fraction_;
};

noc::DestSet random_subset(std::uint32_t n, std::uint32_t min_dests,
                           std::uint32_t max_dests, Rng& rng) {
  const auto k = static_cast<std::uint32_t>(
      rng.uniform_int(min_dests, max_dests));
  noc::DestSet dests;
  for (const auto d : rng.sample_without_replacement(n, k)) {
    dests.set(d);
  }
  return dests;
}

void check_subset_bounds(std::uint32_t n, std::uint32_t min_dests,
                         std::uint32_t& max_dests) {
  if (max_dests == 0) max_dests = n;
  if (min_dests < 1 || min_dests > max_dests || max_dests > n) {
    throw ConfigError("invalid multicast subset size bounds");
  }
}

class MulticastMix final : public TrafficPattern {
 public:
  MulticastMix(std::uint32_t n, double fraction, std::uint32_t min_dests,
               std::uint32_t max_dests)
      : n_(n), fraction_(fraction), min_(min_dests), max_(max_dests) {
    check_radix(n);
    if (fraction < 0.0 || fraction > 1.0) {
      throw ConfigError("multicast fraction must be in [0, 1]");
    }
    check_subset_bounds(n, min_, max_);
  }
  noc::DestSet next_dests(std::uint32_t, Rng& rng) override {
    if (rng.bernoulli(fraction_)) {
      return random_subset(n_, min_, max_, rng);
    }
    return noc::DestSet::single(static_cast<std::uint32_t>(rng.uniform_below(n_)));
  }
  std::string name() const override {
    return "Multicast" + std::to_string(static_cast<int>(fraction_ * 100));
  }

 private:
  std::uint32_t n_;
  double fraction_;
  std::uint32_t min_;
  std::uint32_t max_;
};

class MulticastStatic final : public TrafficPattern {
 public:
  MulticastStatic(std::uint32_t n, std::vector<std::uint32_t> sources,
                  std::uint32_t min_dests, std::uint32_t max_dests)
      : n_(n), min_(min_dests), max_(max_dests) {
    check_radix(n);
    check_subset_bounds(n, min_, max_);
    is_multicast_source_.assign(n, false);
    for (const auto s : sources) {
      if (s >= n) throw ConfigError("multicast source out of range");
      is_multicast_source_[s] = true;
    }
  }
  noc::DestSet next_dests(std::uint32_t src, Rng& rng) override {
    SPECNOC_EXPECTS(src < n_);
    if (is_multicast_source_[src]) {
      return random_subset(n_, min_, max_, rng);
    }
    return noc::DestSet::single(static_cast<std::uint32_t>(rng.uniform_below(n_)));
  }
  std::string name() const override { return "Multicast_static"; }

 private:
  std::uint32_t n_;
  std::uint32_t min_;
  std::uint32_t max_;
  std::vector<bool> is_multicast_source_;
};

}  // namespace

std::unique_ptr<TrafficPattern> make_uniform_random(std::uint32_t n) {
  return std::make_unique<UniformRandom>(n);
}

std::unique_ptr<TrafficPattern> make_shuffle(std::uint32_t n) {
  return std::make_unique<Permutation>(n, "Shuffle", &rotl_bits);
}

std::unique_ptr<TrafficPattern> make_bit_reverse(std::uint32_t n) {
  return std::make_unique<Permutation>(n, "BitReverse", &reverse_bits);
}

std::unique_ptr<TrafficPattern> make_bit_complement(std::uint32_t n) {
  return std::make_unique<Permutation>(n, "BitComplement", &complement_bits);
}

std::unique_ptr<TrafficPattern> make_transpose(std::uint32_t n) {
  check_radix(n);
  if (log2_exact(n) % 2 != 0) {
    throw ConfigError("transpose needs an even number of index bits "
                      "(n in {4, 16, 64})");
  }
  return std::make_unique<Permutation>(n, "Transpose", &transpose_bits);
}

std::unique_ptr<TrafficPattern> make_hotspot(std::uint32_t n,
                                             std::uint32_t hot_dest,
                                             double hot_fraction) {
  return std::make_unique<Hotspot>(n, hot_dest, hot_fraction);
}

std::unique_ptr<TrafficPattern> make_multicast_mix(std::uint32_t n,
                                                   double multicast_fraction,
                                                   std::uint32_t min_dests,
                                                   std::uint32_t max_dests) {
  return std::make_unique<MulticastMix>(n, multicast_fraction, min_dests,
                                        max_dests);
}

std::unique_ptr<TrafficPattern> make_multicast_static(
    std::uint32_t n, std::vector<std::uint32_t> multicast_sources,
    std::uint32_t min_dests, std::uint32_t max_dests) {
  return std::make_unique<MulticastStatic>(n, std::move(multicast_sources),
                                           min_dests, max_dests);
}

}  // namespace specnoc::traffic
