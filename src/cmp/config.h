// Configuration for the CMP memory-hierarchy co-simulation.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"
#include "util/units.h"

namespace specnoc::cmp {

/// Parameters of one co-simulated CMP: every endpoint of the underlying
/// MessageNetwork hosts a processor + private L1; line homes (directory
/// slices + DRAM ports) are distributed line-interleaved across the same
/// endpoints.
struct CmpConfig {
  std::uint32_t sets = 16;       ///< L1 sets (direct index: line % sets)
  std::uint32_t ways = 2;        ///< L1 associativity
  std::uint32_t line_bytes = 64;
  std::uint32_t mshr_entries = 4;     ///< distinct outstanding miss lines
  std::uint32_t max_outstanding = 4;  ///< in-flight accesses per processor

  TimePs cache_hit_ps = 200;    ///< L1 lookup / fill latency
  TimePs directory_ps = 200;    ///< directory slice occupancy per message
  TimePs dram_access_ps = 4000; ///< fixed DRAM array access time
  std::uint32_t dram_banks = 4;

  void validate() const {
    if (sets == 0 || ways == 0) {
      throw ConfigError("cmp: sets and ways must be >= 1");
    }
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0) {
      throw ConfigError("cmp: line_bytes must be a power of two, got " +
                        std::to_string(line_bytes));
    }
    if (mshr_entries == 0 || max_outstanding == 0) {
      throw ConfigError("cmp: mshr_entries and max_outstanding must be >= 1");
    }
    if (cache_hit_ps < 0 || directory_ps < 0 || dram_access_ps < 0) {
      throw ConfigError("cmp: latencies must be >= 0");
    }
    if (dram_banks == 0) throw ConfigError("cmp: dram_banks must be >= 1");
  }
};

}  // namespace specnoc::cmp
