file(REMOVE_RECURSE
  "CMakeFiles/mesh_speculation.dir/mesh_speculation.cpp.o"
  "CMakeFiles/mesh_speculation.dir/mesh_speculation.cpp.o.d"
  "mesh_speculation"
  "mesh_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
