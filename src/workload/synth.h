// Workload synthesizers: application-shaped traffic emitted as traces.
//
// Unlike the open-loop patterns in src/traffic/ (which draw destinations
// per-injection from a rate process), these generate a complete dependency
// DAG up front and hand it to the replay driver — the traffic's timing then
// comes from the network itself via closed-loop replay.
//
// Two generators:
//  * DNN-layer dataflow: per layer, weight-tile multicasts from a weight
//    source to the layer's PEs, activation unicasts into each PE, and a
//    partial-sum reduction fan-in to a reducer node; each layer's
//    activations depend on the previous layer's reduction. This is the
//    broadcast + fan-in shape a Mesh-of-Trees accelerates. RNG-free: the
//    trace is a pure function of the layer shapes.
//  * Directory coherence: per-processor chains of multicast invalidations,
//    each answered by unicast acks from the sharers; the next write of a
//    processor depends on all acks of its previous one (an invalidation
//    storm with request→ack dependencies). Sharer sets come from per-proc
//    deterministic RNG streams, so the trace depends only on the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace specnoc::workload {

/// One layer of the DNN dataflow. PEs are endpoints 1..pes; endpoint 0 is
/// the weight/activation source and endpoint n-1 the reduction target, so
/// pes must be <= n - 2.
struct DnnLayer {
  std::uint32_t pes = 4;
  std::uint32_t weight_tiles = 2;       ///< weight multicasts per layer
  std::uint32_t activation_tiles = 1;   ///< activation unicasts per PE
};

struct DnnWorkloadParams {
  std::uint32_t n = 8;
  std::uint32_t flits = 5;  ///< must match the target network's packet size
  std::vector<DnnLayer> layers = {DnnLayer{4, 2, 1}, DnnLayer{6, 2, 1}};
  /// Earliest-time offset between consecutive layers' weight loads (the
  /// weights of layer l may stream in while layer l-1 still computes).
  TimePs layer_stagger = 0;
  /// Local MAC time: a PE emits its partial sum this long after its weights
  /// and activations arrived.
  TimePs compute_delay = 2000;
};

/// Deterministic (RNG-free); throws ConfigError on inconsistent shapes.
Trace make_dnn_workload(const DnnWorkloadParams& params);

struct CoherenceWorkloadParams {
  std::uint32_t n = 8;
  std::uint32_t flits = 5;
  std::uint32_t writes_per_proc = 4;
  std::uint32_t min_sharers = 1;
  std::uint32_t max_sharers = 5;  ///< clamped to n - 1 other processors
  /// Writer-side think time between collecting all acks and issuing its
  /// next invalidation.
  TimePs think_delay = 1000;
  std::uint64_t seed = 2026;
};

/// One write: the invalidation record and its ack records (indexes into
/// CoherenceWorkload::trace.records).
struct CoherenceWrite {
  std::uint32_t writer = 0;
  std::size_t inv = 0;
  std::vector<std::size_t> acks;
};

struct CoherenceWorkload {
  Trace trace;
  std::vector<CoherenceWrite> writes;  ///< round-major, proc-minor order
};

CoherenceWorkload make_coherence_workload(
    const CoherenceWorkloadParams& params);

/// Named synthesizers for the harness layer.
enum class SynthId : std::uint8_t { kDnnLayers, kCoherence };

const char* to_string(SynthId id);

/// Parses a synthesizer name; the ConfigError on unknown names lists the
/// valid ones (mirrors traffic::benchmark_from_string).
SynthId synth_from_string(const std::string& name);

/// Builds a synthesizer's default workload scaled to an n-endpoint network
/// with `flits`-flit packets. The seed only affects kCoherence.
Trace make_synth_workload(SynthId id, std::uint32_t n, std::uint32_t flits,
                          std::uint64_t seed);

// ---------------------------------------------------------------------------
// Per-processor memory access streams (cmp co-simulation inputs).
//
// Unlike the message traces above, these carry no network destinations at
// all: they are byte-addressed load/store/synchronization streams, one per
// processor. The cmp layer turns them into coherence traffic reactively —
// which endpoints an invalidation reaches depends on the sharer sets the
// directory accumulated, which in turn depend on the timing the network
// itself produced.

/// One entry of a processor's access stream.
enum class AccessKind : std::uint8_t {
  kRead,
  kWrite,
  kBarrier,      ///< global barrier; addr names the barrier flag line
  kLockAcquire,  ///< addr names the lock line; blocks until granted
  kLockRelease,  ///< must pair with the processor's held lock
};

const char* to_string(AccessKind kind);

struct MemAccess {
  std::uint64_t addr = 0;              ///< byte address
  AccessKind kind = AccessKind::kRead;
  TimePs think = 0;  ///< local compute before this access issues
};

/// Per-processor access streams driving the cmp co-simulation.
struct AccessTrace {
  std::uint32_t n = 0;     ///< processors == network endpoints
  std::string generator;
  std::vector<std::vector<MemAccess>> streams;  ///< one per processor

  /// Structural checks: stream count matches n, every processor sees the
  /// same barrier sequence (same flag lines in the same order), locks are
  /// non-nested and acquire/release pair on the same line. Throws
  /// ConfigError with the offending processor/index.
  void validate() const;

  std::size_t total_accesses() const;

  /// Canonical serialization fed to access_trace_hash (exposed for tests).
  std::string canonical() const;
};

/// Stable content hash (fnv1a64 over a canonical serialization), the
/// cmp analogue of trace_hash(): spec keys and sweep manifests use it to
/// detect two runners disagreeing about the workload.
std::string access_trace_hash(const AccessTrace& trace);

/// Blocked LU decomposition sharing pattern: each iteration k, the pivot
/// block is read by every processor (wide sharer sets), then the owners of
/// row/column blocks update them (each write multicast-invalidates the
/// accumulated readers), and a barrier closes the iteration.
struct LuAccessParams {
  std::uint32_t n = 8;
  std::uint32_t blocks = 6;           ///< matrix is blocks x blocks tiles
  std::uint32_t reads_per_block = 2;  ///< pivot re-reads per proc
  TimePs think = 400;                 ///< mean local compute per access
  std::uint64_t seed = 2026;          ///< jitters per-proc think times only
};

AccessTrace make_lu_access_trace(const LuAccessParams& params);

/// Barnes-hut-style sharing: a read-mostly shared tree region, per-processor
/// private body updates, lock-protected updates to a few shared cells, and
/// a barrier per step. Read sets are per-proc random (seeded), so sharer
/// sets — and thus invalidation fan-outs — vary across lines and steps.
struct BarnesAccessParams {
  std::uint32_t n = 8;
  std::uint32_t steps = 3;
  std::uint32_t tree_cells = 24;       ///< shared read-mostly region size
  std::uint32_t reads_per_step = 12;   ///< tree reads per proc per step
  std::uint32_t bodies_per_proc = 6;   ///< private writes per proc per step
  std::uint32_t cell_updates = 2;      ///< locked shared writes per proc/step
  std::uint32_t locks = 4;
  TimePs think = 400;
  std::uint64_t seed = 2026;
};

AccessTrace make_barnes_access_trace(const BarnesAccessParams& params);

/// Named access-stream synthesizers for the harness layer (E11).
enum class AccessSynthId : std::uint8_t { kLuBlocks, kBarnesRegions };

const char* to_string(AccessSynthId id);
AccessSynthId access_synth_from_string(const std::string& name);

/// Default-parameter workload scaled to n processors.
AccessTrace make_access_workload(AccessSynthId id, std::uint32_t n,
                                 std::uint64_t seed);

}  // namespace specnoc::workload
