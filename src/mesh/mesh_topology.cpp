#include "mesh/mesh_topology.h"

#include <bit>
#include <string>

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::mesh {

const char* to_string(Port port) {
  switch (port) {
    case Port::kLocal: return "local";
    case Port::kNorth: return "north";
    case Port::kEast: return "east";
    case Port::kSouth: return "south";
    case Port::kWest: return "west";
  }
  return "?";
}

Port opposite(Port port) {
  switch (port) {
    case Port::kNorth: return Port::kSouth;
    case Port::kSouth: return Port::kNorth;
    case Port::kEast: return Port::kWest;
    case Port::kWest: return Port::kEast;
    case Port::kLocal: break;
  }
  SPECNOC_UNREACHABLE("local port has no opposite");
}

MeshTopology::MeshTopology(std::uint32_t cols, std::uint32_t rows)
    : cols_(cols), rows_(rows) {
  if (cols < 1 || rows < 1 || cols * rows < 2 ||
      cols * rows > noc::kMaxEndpoints) {
    throw ConfigError("mesh must have 2.." +
                      std::to_string(noc::kMaxEndpoints) + " routers, got " +
                      std::to_string(cols) + "x" + std::to_string(rows));
  }
}

std::uint32_t MeshTopology::x_of(std::uint32_t id) const {
  SPECNOC_EXPECTS(id < n());
  return id % cols_;
}

std::uint32_t MeshTopology::y_of(std::uint32_t id) const {
  SPECNOC_EXPECTS(id < n());
  return id / cols_;
}

std::uint32_t MeshTopology::id_at(std::uint32_t x, std::uint32_t y) const {
  SPECNOC_EXPECTS(x < cols_ && y < rows_);
  return y * cols_ + x;
}

bool MeshTopology::has_neighbor(std::uint32_t id, Port port) const {
  const std::uint32_t x = x_of(id);
  const std::uint32_t y = y_of(id);
  switch (port) {
    case Port::kNorth: return y > 0;
    case Port::kSouth: return y + 1 < rows_;
    case Port::kEast: return x + 1 < cols_;
    case Port::kWest: return x > 0;
    case Port::kLocal: return false;
  }
  return false;
}

std::uint32_t MeshTopology::neighbor(std::uint32_t id, Port port) const {
  SPECNOC_EXPECTS(has_neighbor(id, port));
  switch (port) {
    case Port::kNorth: return id - cols_;
    case Port::kSouth: return id + cols_;
    case Port::kEast: return id + 1;
    case Port::kWest: return id - 1;
    case Port::kLocal: break;
  }
  SPECNOC_UNREACHABLE("local port has no neighbor");
}

std::uint32_t MeshTopology::distance(std::uint32_t a, std::uint32_t b) const {
  const auto dx = x_of(a) > x_of(b) ? x_of(a) - x_of(b) : x_of(b) - x_of(a);
  const auto dy = y_of(a) > y_of(b) ? y_of(a) - y_of(b) : y_of(b) - y_of(a);
  return dx + dy;
}

PortMask MeshTopology::route_dirs(std::uint32_t id, std::uint32_t src,
                                  const noc::DestSet& dests) const {
  SPECNOC_EXPECTS(id < n());
  SPECNOC_EXPECTS(src < n());
  const std::uint32_t x = x_of(id);
  const std::uint32_t y = y_of(id);
  const std::uint32_t sx = x_of(src);
  const std::uint32_t sy = y_of(src);
  PortMask dirs = 0;
  dests.for_each_dest([&](std::uint32_t d) {
    if (d >= n()) return;  // members beyond the mesh are ignored
    const std::uint32_t dx = x_of(d);
    const std::uint32_t dy = y_of(d);
    // X-leg of the path (row y_src, still short of the turn column):
    if (y == sy && ((sx <= x && x < dx) || (dx < x && x <= sx))) {
      dirs |= dx > x ? port_bit(Port::kEast) : port_bit(Port::kWest);
      return;
    }
    // Y-leg (the destination's column, short of the destination row):
    if (x == dx && ((sy <= y && y < dy) || (dy < y && y <= sy))) {
      dirs |= dy > y ? port_bit(Port::kSouth) : port_bit(Port::kNorth);
      return;
    }
    if (x == dx && y == dy) {
      dirs |= port_bit(Port::kLocal);
    }
    // Otherwise this router is not on src's XY path to d: another branch
    // of the multicast tree serves it.
  });
  return dirs;
}

}  // namespace specnoc::mesh
