file(REMOVE_RECURSE
  "libspecnoc_util.a"
)
