file(REMOVE_RECURSE
  "CMakeFiles/specnoc_util.dir/log.cpp.o"
  "CMakeFiles/specnoc_util.dir/log.cpp.o.d"
  "CMakeFiles/specnoc_util.dir/rng.cpp.o"
  "CMakeFiles/specnoc_util.dir/rng.cpp.o.d"
  "CMakeFiles/specnoc_util.dir/summary_stats.cpp.o"
  "CMakeFiles/specnoc_util.dir/summary_stats.cpp.o.d"
  "CMakeFiles/specnoc_util.dir/table.cpp.o"
  "CMakeFiles/specnoc_util.dir/table.cpp.o.d"
  "libspecnoc_util.a"
  "libspecnoc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specnoc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
