// Extension — load-latency curves.
//
// The classic NoC characterization underlying the paper's two operating
// points (25% load for Figure 6, backlogged for Table 1): average latency
// as offered load sweeps toward saturation, for the three optimized
// architectures on UniformRandom and Multicast10. The curves show the
// knee moving right with speculation — the same information as Table 1's
// saturation numbers, but as the full series.
#include <vector>

#include "bench_common.h"
#include "stats/experiment.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;
using namespace specnoc::literals;

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_load_latency",
      "Load-latency curves for the optimized architectures.",
      specnoc::bench::Sharding::kSupported);
  core::NetworkConfig cfg;
  stats::ExperimentRunner runner(cfg, opts.seed);
  stats::ShardedSweep sweep = specnoc::bench::make_sweep(opts);
  specnoc::bench::TelemetryTable telemetry;
  const double fractions[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  const traffic::SimWindows windows{.warmup = 300_ns, .measure = 2000_ns};
  const auto benches = {traffic::BenchmarkId::kUniformRandom,
                        traffic::BenchmarkId::kMulticast10};

  // Phase 1: saturation anchors for every (arch, bench). Phase 2: the full
  // 54-run load sweep in one parallel batch, aggregated in spec order.
  std::vector<stats::SaturationSpec> sat_specs;
  for (const auto bench : benches) {
    for (const auto arch : core::dse_architectures()) {
      sat_specs.push_back({.arch = arch, .bench = bench, .seed = 0,
                          .factory = {}, .custom = {}});
    }
  }
  const auto sat_outcomes = sweep.anchor_saturation(runner, sat_specs);
  // Phase-1 workers stop here: the downstream specs need anchor results
  // this shard did not simulate.
  if (sweep.anchors_only()) return sweep.finish();
  telemetry.add_all(sat_outcomes);
  specnoc::bench::MetricsReport metrics;
  metrics.add_all("anchor", sat_outcomes);

  std::vector<stats::LatencySpec> lat_specs;
  std::size_t anchor = 0;
  for (const auto bench : benches) {
    for (const double fraction : fractions) {
      for (std::size_t a = 0; a < core::dse_architectures().size(); ++a) {
        const auto& sat = sat_outcomes[anchor + a].result;
        lat_specs.push_back(
            {.arch = core::dse_architectures()[a],
             .bench = bench,
             .injected_flits_per_ns = fraction * sat.injected_flits_per_ns /
                                      sat.message_expansion,
             .windows = windows,
             .seed = 0,
             .factory = {},
             .custom = {}});
      }
    }
    anchor += core::dse_architectures().size();
  }
  const auto lat_outcomes = sweep.latency_sweep("latency", runner, lat_specs);
  metrics.add_all("latency", lat_outcomes);
  metrics.write(opts);
  if (!sweep.should_render()) return sweep.finish();
  telemetry.add_all(lat_outcomes);

  std::size_t cursor = 0;
  for (const auto bench : benches) {
    Table table({"Offered (x sat)", "OptNonSpec (ns)", "OptHybrid (ns)",
                 "OptAllSpec (ns)"});
    for (const double fraction : fractions) {
      std::vector<std::string> row{cell(fraction, 1)};
      for (std::size_t a = 0; a < core::dse_architectures().size(); ++a) {
        const auto& outcome = lat_outcomes[cursor++];
        row.push_back(!outcome.run.ok
                          ? "FAIL"
                          : cell(outcome.result.mean_latency_ns, 2) +
                                (outcome.result.drained ? "" : "*"));
      }
      table.add_row(std::move(row));
    }
    specnoc::bench::emit(table,
                         std::string("Load-latency curve, ") +
                             traffic::to_string(bench) +
                             " ('*' = undrained/saturated)",
                         opts);
  }
  telemetry.emit("Load-latency sweep", opts);
  return telemetry.failures() == 0 ? 0 : 1;
}
