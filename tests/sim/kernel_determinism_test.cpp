// End-to-end kernel determinism: a full 8x8 OptHybridSpeculative run under
// backlogged uniform-random traffic must reproduce these golden statistics
// bit-for-bit. The values were captured from the pre-rewrite kernel
// (std::priority_queue of std::function), so this test pins the bucket-queue
// kernel to the exact (time, insertion seq) event order of the original —
// any ordering deviation shifts arbitration outcomes and changes every
// number below.
#include <gtest/gtest.h>

#include "core/mot_network.h"
#include "stats/recorder.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"

namespace specnoc {
namespace {

using namespace specnoc::literals;

TEST(KernelDeterminismTest, Golden8x8OptHybridSpeculativeRun) {
  core::NetworkConfig cfg;  // n = 8
  core::MotNetwork net(core::Architecture::kOptHybridSpeculative, cfg);
  stats::TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  auto pattern =
      traffic::make_benchmark(traffic::BenchmarkId::kUniformRandom, 8);
  traffic::DriverConfig dcfg;
  dcfg.mode = traffic::InjectionMode::kBacklogged;
  dcfg.seed = 7;
  traffic::TrafficDriver driver(net, *pattern, dcfg);
  driver.set_measured(true);
  rec.open_window(0);
  driver.start();
  net.scheduler().run_until(2000_ns);
  rec.close_window(net.scheduler().now());

  EXPECT_EQ(net.scheduler().executed(), 923768u);
  EXPECT_EQ(driver.messages_generated(), 5648u);
  EXPECT_EQ(rec.window_flits_injected(), 28200u);
  EXPECT_EQ(rec.window_flits_ejected(), 28134u);
  EXPECT_EQ(rec.completed_measured(), 5629u);
  EXPECT_EQ(rec.pending_measured(), 0u);
  EXPECT_EQ(rec.max_latency_ps(), 36822);
  // Exact double compare on purpose: identical event order gives an
  // identical accumulation order.
  EXPECT_EQ(rec.mean_latency_ps(), 7534.8138212826434);
}

}  // namespace
}  // namespace specnoc
