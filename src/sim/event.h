// InplaceEvent: the kernel's allocation-free callback type.
//
// A move-only `void()` callable with fixed inline storage. Unlike
// std::function there is no heap fallback: a capture larger than kCapacity
// is a compile error (static_assert), so every event the simulator
// schedules is guaranteed to cost zero heap allocations. The simulator's
// hot-path captures are small — `[this, flit]` and friends are at most
// 32 bytes — and keeping them inline is what makes the bucket-queue slab
// (bucket_queue.h) a flat array of fixed-size entries.
//
// Type erasure goes through a single pointer to a static per-type ops
// table. The scheduler's fire path uses the fused invoke_and_dispose entry
// — call the callable, then destroy it — so a one-shot event costs exactly
// one indirect call of wrapper overhead, the same as invoking a
// std::function. For trivially destructible callables (every plain lambda
// over pointers/ints, i.e. all simulator events) invoke_and_dispose is the
// invoke function itself: destruction is free.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/contract.h"

namespace specnoc::sim {

class InplaceEvent {
 public:
  /// Inline storage for the callable's captures. 48 bytes holds the
  /// largest simulator capture with headroom (and a libstdc++
  /// std::function, which the kernel microbenchmarks copy in).
  static constexpr std::size_t kCapacity = 48;

  InplaceEvent() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceEvent> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceEvent(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Destroys any held callable and constructs `f` in place. This is the
  /// zero-move path the scheduler uses to build events directly inside the
  /// bucket-queue slab.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceEvent> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "event capture exceeds InplaceEvent inline storage; "
                  "shrink the lambda capture (there is deliberately no "
                  "heap fallback — see src/sim/event.h)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned event captures are not supported");
    reset();
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &kOps<Fn>;
  }

  InplaceEvent(InplaceEvent&& other) noexcept { move_from(other); }

  InplaceEvent& operator=(InplaceEvent&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceEvent(const InplaceEvent&) = delete;
  InplaceEvent& operator=(const InplaceEvent&) = delete;

  ~InplaceEvent() { reset(); }

  /// True when a callable is stored.
  explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the stored callable (must hold one); it remains stored.
  void operator()() {
    SPECNOC_EXPECTS(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  /// Invokes the stored callable and destroys it, leaving this event
  /// empty: one indirect call for the whole fire-and-free sequence.
  void invoke_and_dispose() {
    SPECNOC_EXPECTS(ops_ != nullptr);
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  /// Destroys the stored callable, if any.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*invoke_destroy)(void*);
    void (*relocate)(void* dst, void* src);  ///< move to dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static void do_invoke(void* s) {
    (*static_cast<Fn*>(s))();
  }
  template <typename Fn>
  static void do_invoke_destroy(void* s) {
    Fn* f = static_cast<Fn*>(s);
    (*f)();
    f->~Fn();
  }
  template <typename Fn>
  static void do_relocate(void* dst, void* src) {
    if constexpr (std::is_trivially_copyable_v<Fn>) {
      std::memcpy(dst, src, sizeof(Fn));
    } else {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
  }
  template <typename Fn>
  static void do_destroy(void* s) {
    static_cast<Fn*>(s)->~Fn();
  }
  static void do_nothing(void*) {}

  template <typename Fn>
  static constexpr Ops kOps{
      &do_invoke<Fn>,
      std::is_trivially_destructible_v<Fn> ? &do_invoke<Fn>
                                           : &do_invoke_destroy<Fn>,
      &do_relocate<Fn>,
      std::is_trivially_destructible_v<Fn> ? &do_nothing : &do_destroy<Fn>,
  };

  void move_from(InplaceEvent& other) noexcept {
    if (other.ops_ == nullptr) return;
    other.ops_->relocate(storage_, other.storage_);
    ops_ = other.ops_;
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace specnoc::sim
