# Empty compiler generated dependencies file for bench_addressing.
# This may be replaced when dependencies are built.
