#include "sim/shard.h"

#include <limits>
#include <unordered_set>

#include "util/cli.h"
#include "util/error.h"

namespace specnoc::sim {

ShardRef ShardRef::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    throw util::UsageError("--shard: expected i/K (e.g. 0/3), got '" + text +
                           "'");
  }
  ShardRef ref;
  const std::uint64_t index =
      util::parse_u64(text.substr(0, slash), "--shard index");
  const std::uint64_t count =
      util::parse_u64(text.substr(slash + 1), "--shard count");
  if (count == 0) throw util::UsageError("--shard: count must be >= 1");
  if (count > std::numeric_limits<unsigned>::max()) {
    throw util::UsageError("--shard: count out of range");
  }
  if (index >= count) {
    throw util::UsageError("--shard: index " + std::to_string(index) +
                           " out of range for " + std::to_string(count) +
                           " shards (0-based)");
  }
  ref.index = static_cast<unsigned>(index);
  ref.count = static_cast<unsigned>(count);
  return ref;
}

std::string ShardRef::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

ShardPlan::ShardPlan(unsigned shards) : shards_(shards) {
  if (shards == 0) throw ConfigError("ShardPlan: shard count must be >= 1");
}

std::vector<std::size_t> ShardPlan::cells_of(
    const std::vector<std::string>& keys, unsigned shard) const {
  if (shard >= shards_) {
    throw ConfigError("ShardPlan: shard " + std::to_string(shard) +
                      " out of range for " + std::to_string(shards_) +
                      " shards");
  }
  std::unordered_set<std::string_view> seen;
  std::vector<std::size_t> cells;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!seen.insert(keys[i]).second) {
      throw ConfigError("ShardPlan: duplicate spec key '" + keys[i] + "'");
    }
    if (shard_of(keys[i]) == shard) cells.push_back(i);
  }
  return cells;
}

}  // namespace specnoc::sim
