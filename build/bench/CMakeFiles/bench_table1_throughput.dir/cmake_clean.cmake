file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_throughput.dir/bench_table1_throughput.cpp.o"
  "CMakeFiles/bench_table1_throughput.dir/bench_table1_throughput.cpp.o.d"
  "bench_table1_throughput"
  "bench_table1_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
