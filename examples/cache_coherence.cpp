// Cache-coherence scenario: invalidation-based snoopy protocol traffic.
//
// The paper motivates multicast with coherence protocols that send write
// invalidates to the set of sharers (Section 2: "multicast traffic goes
// from processors to caches"). This example models 8 processors over an
// 8x8 MoT: each write to a shared line multicasts an invalidate to the
// current sharers, each sharer replies with a unicast ack, and the write
// completes when all acks are back. We measure the write-completion
// latency distribution on the serial Baseline versus the parallel
// multicast networks.
//
//   $ ./examples/cache_coherence [writes_per_proc]
#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <numeric>
#include <vector>

#include "core/mot_network.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace specnoc;

namespace {

/// Tracks one outstanding write: invalidate out, acks back.
struct OutstandingWrite {
  std::uint32_t writer = 0;
  noc::DestMask pending_acks = 0;
  TimePs issued = 0;
};

/// Coherence controller: reacts to delivered headers, issues acks, and
/// completes writes. Invalidate packets are told apart from acks by their
/// message id (invalidates are multicast or tracked explicitly).
class CoherenceDriver final : public noc::TrafficObserver {
 public:
  CoherenceDriver(core::MotNetwork& network, std::uint32_t writes_per_proc,
                  std::uint64_t seed)
      : network_(network), writes_per_proc_(writes_per_proc), rng_(seed) {}

  void start() {
    for (std::uint32_t p = 0; p < network_.topology().n(); ++p) {
      issue_next_write(p);
    }
  }

  void on_flit_ejected(const noc::Packet& packet, std::uint32_t dest,
                       noc::FlitKind kind, TimePs when) override {
    if (kind != noc::FlitKind::kHeader) return;
    const auto inv = invalidate_of_message_.find(packet.message);
    if (inv != invalidate_of_message_.end()) {
      // An invalidate header reached sharer `dest`: the sharer's cache
      // controller sends the ack (unicast dest -> writer).
      OutstandingWrite& write = writes_[inv->second];
      const auto ack_msg = network_.send_message(
          dest, noc::dest_bit(write.writer), false);
      ack_of_message_[ack_msg] = inv->second;
      return;
    }
    const auto ack = ack_of_message_.find(packet.message);
    if (ack != ack_of_message_.end()) {
      OutstandingWrite& write = writes_[ack->second];
      write.pending_acks &= ~noc::dest_bit(packet.src);
      if (write.pending_acks == 0) {
        completion_ns_.push_back(ps_to_ns(when - write.issued));
        issue_next_write(write.writer);
      }
    }
  }

  void on_packet_injected(const noc::Packet&, TimePs) override {}

  const std::vector<double>& completions() const { return completion_ns_; }

 private:
  void issue_next_write(std::uint32_t proc) {
    if (writes_issued_[proc] >= writes_per_proc_) return;
    ++writes_issued_[proc];
    // Sharer set: 1..5 random other caches hold the line.
    const auto k = static_cast<std::uint32_t>(rng_.uniform_int(1, 5));
    noc::DestMask sharers = 0;
    for (const auto d :
         rng_.sample_without_replacement(network_.topology().n(), k + 1)) {
      if (d != proc && static_cast<std::uint32_t>(
                           std::popcount(sharers)) < k) {
        sharers |= noc::dest_bit(d);
      }
    }
    if (sharers == 0) sharers = noc::dest_bit((proc + 1) % 8);

    const std::size_t id = writes_.size();
    writes_.push_back({proc, sharers, network_.scheduler().now()});
    const auto msg = network_.send_message(proc, sharers, false);
    invalidate_of_message_[msg] = id;
  }

  core::MotNetwork& network_;
  std::uint32_t writes_per_proc_;
  Rng rng_;
  std::vector<OutstandingWrite> writes_;
  std::map<noc::MessageId, std::size_t> invalidate_of_message_;
  std::map<noc::MessageId, std::size_t> ack_of_message_;
  std::map<std::uint32_t, std::uint32_t> writes_issued_;
  std::vector<double> completion_ns_;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t writes_per_proc = 200;
  util::CliParser cli("cache_coherence",
                      "Write-invalidate coherence traffic over an 8x8 MoT.");
  cli.add_positional_uint32("writes", &writes_per_proc, "writes issued per processor (default 200)");
  cli.parse_or_exit(argc, argv);

  std::printf("Write-invalidate coherence over an 8x8 MoT "
              "(%u writes/processor, 1-5 sharers per line):\n\n",
              writes_per_proc);
  std::printf("%-24s %12s %12s %12s\n", "Network", "mean (ns)", "min (ns)",
              "max (ns)");
  for (const auto arch : core::all_architectures()) {
    core::NetworkConfig config;
    core::MotNetwork network(arch, config);
    CoherenceDriver driver(network, writes_per_proc, /*seed=*/2026);
    network.net().hooks().traffic = &driver;
    driver.start();
    network.scheduler().run();

    const auto& c = driver.completions();
    const double mean =
        std::accumulate(c.begin(), c.end(), 0.0) / static_cast<double>(c.size());
    const auto [lo, hi] = std::minmax_element(c.begin(), c.end());
    std::printf("%-24s %12.2f %12.2f %12.2f   (%zu writes)\n",
                core::to_string(arch), mean, *lo, *hi, c.size());
  }
  std::printf("\nParallel multicast shortens the invalidate fan-out, which "
              "dominates write completion;\nlocal speculation shaves the "
              "per-hop latency on top.\n");
  return 0;
}
