file(REMOVE_RECURSE
  "CMakeFiles/bench_mesh_speculation.dir/bench_mesh_speculation.cpp.o"
  "CMakeFiles/bench_mesh_speculation.dir/bench_mesh_speculation.cpp.o.d"
  "bench_mesh_speculation"
  "bench_mesh_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
