#include "noc/dest_set.h"

#include <algorithm>
#include <bit>
#include <mutex>

#include "util/error.h"

namespace specnoc::noc {

namespace {

std::atomic<std::uint64_t> g_spill_allocations{0};
std::atomic<std::uint64_t> g_spill_bytes{0};
std::atomic<std::uint64_t> g_spill_reuses{0};
std::atomic<bool> g_spill_pooling{true};

// Outstanding blocks and their high-water mark, tracked *per word count*:
// the freelists are size-segregated, so the bound "raw allocations never
// exceed peak simultaneous demand" only holds class by class (a raw
// allocation for 5-word sets can happen while 3-word blocks sit parked).
// spill_outstanding()/spill_high_water() report the sums.
std::atomic<std::uint64_t> g_spill_out_by_words[DestSet::kMaxWords + 1]{};
std::atomic<std::uint64_t> g_spill_hw_by_words[DestSet::kMaxWords + 1]{};

/// Per-word-count freelists of released spill blocks, linked intrusively
/// through each block's first word (every block has >= 2 words, so the link
/// always fits). Blocks stay parked here until trim_spill_pool(), keeping
/// them reachable from this static for leak checkers.
struct SpillPool {
  std::mutex mu;
  std::uint64_t* free_head[DestSet::kMaxWords + 1] = {};
};

SpillPool& spill_pool() {
  static SpillPool pool;
  return pool;
}

}  // namespace

std::uint64_t DestSet::spill_allocations() {
  return g_spill_allocations.load(std::memory_order_relaxed);
}
std::uint64_t DestSet::spill_bytes() {
  return g_spill_bytes.load(std::memory_order_relaxed);
}
std::uint64_t DestSet::spill_reuses() {
  return g_spill_reuses.load(std::memory_order_relaxed);
}
std::uint64_t DestSet::spill_outstanding() {
  std::uint64_t total = 0;
  for (std::uint32_t w = 0; w <= kMaxWords; ++w) {
    total += g_spill_out_by_words[w].load(std::memory_order_relaxed);
  }
  return total;
}
std::uint64_t DestSet::spill_high_water() {
  std::uint64_t total = 0;
  for (std::uint32_t w = 0; w <= kMaxWords; ++w) {
    total += g_spill_hw_by_words[w].load(std::memory_order_relaxed);
  }
  return total;
}
void DestSet::set_spill_pooling(bool enabled) {
  g_spill_pooling.store(enabled, std::memory_order_relaxed);
}
bool DestSet::spill_pooling() {
  return g_spill_pooling.load(std::memory_order_relaxed);
}

void DestSet::trim_spill_pool() {
  SpillPool& pool = spill_pool();
  const std::lock_guard<std::mutex> lock(pool.mu);
  for (std::uint32_t words = 0; words <= kMaxWords; ++words) {
    std::uint64_t* block = pool.free_head[words];
    pool.free_head[words] = nullptr;
    while (block != nullptr) {
      std::uint64_t* next = std::bit_cast<std::uint64_t*>(block[0]);
      delete[] block;
      block = next;
    }
  }
}

std::uint64_t* DestSet::acquire_block(std::uint32_t words) {
  SPECNOC_EXPECTS(words >= 2 && words <= kMaxWords);
  std::uint64_t* block = nullptr;
  if (g_spill_pooling.load(std::memory_order_relaxed)) {
    SpillPool& pool = spill_pool();
    const std::lock_guard<std::mutex> lock(pool.mu);
    block = pool.free_head[words];
    if (block != nullptr) {
      pool.free_head[words] = std::bit_cast<std::uint64_t*>(block[0]);
    }
  }
  if (block != nullptr) {
    g_spill_reuses.fetch_add(1, std::memory_order_relaxed);
    std::fill(block, block + words, 0);
  } else {
    g_spill_allocations.fetch_add(1, std::memory_order_relaxed);
    g_spill_bytes.fetch_add(std::uint64_t{words} * sizeof(std::uint64_t),
                            std::memory_order_relaxed);
    block = new std::uint64_t[words]();
  }
  const std::uint64_t live =
      g_spill_out_by_words[words].fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hw = g_spill_hw_by_words[words].load(std::memory_order_relaxed);
  while (live > hw && !g_spill_hw_by_words[words].compare_exchange_weak(
                          hw, live, std::memory_order_relaxed)) {
  }
  return block;
}

void DestSet::release_block(std::uint64_t* block, std::uint32_t words) {
  g_spill_out_by_words[words].fetch_sub(1, std::memory_order_relaxed);
  if (g_spill_pooling.load(std::memory_order_relaxed)) {
    SpillPool& pool = spill_pool();
    const std::lock_guard<std::mutex> lock(pool.mu);
    block[0] = std::bit_cast<std::uint64_t>(pool.free_head[words]);
    pool.free_head[words] = block;
    return;
  }
  delete[] block;
}

void DestSet::copy_from(const DestSet& other) {
  num_words_ = other.num_words_;
  if (num_words_ == 1) {
    word_ = other.word_;
    return;
  }
  std::uint64_t* fresh = acquire_block(num_words_);
  std::copy(other.heap_, other.heap_ + num_words_, fresh);
  heap_ = fresh;
}

void DestSet::grow(std::uint32_t words_needed) {
  SPECNOC_EXPECTS(words_needed <= kMaxWords);
  if (words_needed <= num_words_) {
    return;
  }
  // Double to amortize incremental set() loops (pattern generators add one
  // destination at a time).
  const std::uint32_t new_words =
      std::min(kMaxWords, std::max(words_needed, num_words_ * 2));
  std::uint64_t* fresh = acquire_block(new_words);
  const std::uint64_t* old = words_ptr();
  std::copy(old, old + num_words_, fresh);
  destroy();
  heap_ = fresh;
  num_words_ = new_words;
}

void DestSet::set_slow(std::uint32_t d) {
  grow(d / kWordBits + 1);
  heap_[d / kWordBits] |= std::uint64_t{1} << (d % kWordBits);
}

DestSet DestSet::range(DestRange range) {
  SPECNOC_EXPECTS(range.hi <= kMaxEndpoints);
  SPECNOC_EXPECTS(range.lo <= range.hi);
  DestSet s;
  if (range.empty()) {
    return s;
  }
  const std::uint32_t w1 = (range.hi - 1) / kWordBits;
  if (w1 >= 1) {
    s.grow(w1 + 1);
  }
  std::uint64_t* w = s.words_ptr();
  const std::uint32_t w0 = range.lo / kWordBits;
  for (std::uint32_t i = w0; i <= w1; ++i) {
    std::uint64_t mask = ~std::uint64_t{0};
    if (i == w0) {
      mask &= ~std::uint64_t{0} << (range.lo % kWordBits);
    }
    if (i == w1) {
      const std::uint32_t top = range.hi - i * kWordBits;
      if (top < kWordBits) {
        mask &= (std::uint64_t{1} << top) - 1;
      }
    }
    w[i] = mask;
  }
  return s;
}

DestSet DestSet::subtree_slice(DestRange range) const {
  DestSet out;
  const std::uint64_t cap = std::uint64_t{num_words_} * kWordBits;
  const std::uint64_t hi64 = range.hi < cap ? range.hi : cap;
  if (range.lo >= hi64) {
    return out;
  }
  const std::uint32_t hi = static_cast<std::uint32_t>(hi64);
  const std::uint32_t w0 = range.lo / kWordBits;
  const std::uint32_t w1 = (hi - 1) / kWordBits;
  if (w1 >= 1) {
    out.grow(w1 + 1);
  }
  const std::uint64_t* src = words_ptr();
  std::uint64_t* dst = out.words_ptr();
  for (std::uint32_t i = w0; i <= w1; ++i) {
    std::uint64_t mask = ~std::uint64_t{0};
    if (i == w0) {
      mask &= ~std::uint64_t{0} << (range.lo % kWordBits);
    }
    if (i == w1) {
      const std::uint32_t top = hi - i * kWordBits;
      if (top < kWordBits) {
        mask &= (std::uint64_t{1} << top) - 1;
      }
    }
    dst[i] = src[i] & mask;
  }
  return out;
}

DestSet& DestSet::operator|=(const DestSet& other) {
  if (other.num_words_ > num_words_) {
    // Only grow as far as other's logical content actually needs.
    std::uint32_t needed = other.num_words_;
    const std::uint64_t* ow = other.words_ptr();
    while (needed > num_words_ && ow[needed - 1] == 0) {
      --needed;
    }
    if (needed > num_words_) {
      grow(needed);
    }
  }
  std::uint64_t* w = words_ptr();
  const std::uint64_t* ow = other.words_ptr();
  const std::uint32_t common =
      num_words_ < other.num_words_ ? num_words_ : other.num_words_;
  for (std::uint32_t i = 0; i < common; ++i) {
    w[i] |= ow[i];
  }
  return *this;
}

DestSet& DestSet::operator&=(const DestSet& other) {
  std::uint64_t* w = words_ptr();
  const std::uint64_t* ow = other.words_ptr();
  for (std::uint32_t i = 0; i < num_words_; ++i) {
    w[i] &= i < other.num_words_ ? ow[i] : 0;
  }
  return *this;
}

DestSet& DestSet::remove(const DestSet& other) {
  std::uint64_t* w = words_ptr();
  const std::uint64_t* ow = other.words_ptr();
  const std::uint32_t common =
      num_words_ < other.num_words_ ? num_words_ : other.num_words_;
  for (std::uint32_t i = 0; i < common; ++i) {
    w[i] &= ~ow[i];
  }
  return *this;
}

std::uint64_t DestSet::hash() const {
  const std::uint64_t* w = words_ptr();
  std::uint32_t top = num_words_;
  while (top > 0 && w[top - 1] == 0) {
    --top;
  }
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (std::uint32_t i = 0; i < top; ++i) {
    std::uint64_t word = w[i];
    for (std::uint32_t b = 0; b < 8; ++b) {
      h ^= word & 0xffu;
      h *= 1099511628211ull;  // FNV-1a prime
      word >>= 8;
    }
  }
  return h;
}

std::string DestSet::to_hex() const {
  const std::uint64_t* w = words_ptr();
  std::uint32_t top = num_words_;
  while (top > 0 && w[top - 1] == 0) {
    --top;
  }
  if (top == 0) {
    return "0";
  }
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  // Highest word prints without leading zeros; lower words zero-padded to
  // 16 digits each.
  bool leading = true;
  for (std::uint32_t i = top; i-- > 0;) {
    for (std::uint32_t nib = 16; nib-- > 0;) {
      const std::uint32_t digit =
          static_cast<std::uint32_t>((w[i] >> (4 * nib)) & 0xfu);
      if (leading) {
        if (digit == 0) {
          continue;
        }
        leading = false;
      }
      out.push_back(kDigits[digit]);
    }
  }
  return out;
}

DestSet DestSet::from_hex(const std::string& hex) {
  if (hex.empty()) {
    throw ConfigError("DestSet hex string is empty");
  }
  if (hex.size() > kMaxEndpoints / 4) {
    throw ConfigError("DestSet hex string has " + std::to_string(hex.size()) +
                      " digits; max is " +
                      std::to_string(kMaxEndpoints / 4) + " (" +
                      std::to_string(kMaxEndpoints) + " endpoints)");
  }
  DestSet s;
  const std::uint32_t words_needed =
      static_cast<std::uint32_t>((hex.size() * 4 + kWordBits - 1) / kWordBits);
  if (words_needed > 1) {
    s.grow(words_needed);
  }
  std::uint64_t* w = s.words_ptr();
  std::uint32_t nibble = 0;
  for (std::uint32_t i = static_cast<std::uint32_t>(hex.size()); i-- > 0;
       ++nibble) {
    const char c = hex[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw ConfigError(std::string("DestSet hex string has invalid digit '") +
                        c + "'");
    }
    w[nibble / 16] |= digit << (4 * (nibble % 16));
  }
  return s;
}

}  // namespace specnoc::noc
