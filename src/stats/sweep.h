// Sharded design-space sweeps: shard files, merging, and the harness
// session that ties them to ExperimentRunner's batch APIs.
//
// A sweep is a harness's set of run grids. To spread a large grid over K
// machines, run the same harness K times with --shard i/K --out shard.jsonl:
// each *worker* executes only the cells sim::ShardPlan assigns to it (a
// pure function of each cell's spec key) and appends them to a JSONL shard
// file. `sweep_merge` validates that the K files came from the same sweep
// (schema version, tool, seed, per-grid hash) and combines them into one
// merged file; the harness then renders its normal tables from that file
// with --from, byte-identical to a single-process --jobs 1 run. That
// invariant — merge(shard outputs) == single-process output — is what the
// whole format is built around, and it holds because outcomes are merged
// in spec order and every number round-trips JSON exactly.
//
// Shard file layout (JSONL, one record per line, schema_version 2;
// version-1 files — which predate shared grids — still load):
//   {"record":"manifest","format":"specnoc-sweep","schema":2,"tool":...,
//    "shard":i,"shards":K,"seed":S}
//   {"record":"grid","name":...,"kind":"saturation|latency|power",
//    "size":N,"hash":<hex fnv1a64 of the N spec keys>[,"shared":true]}
//   {"record":"outcome","grid":...,"cell":c,"key":...,
//    "status":"ok|retried|failed","data":{spec,run[,result]}}   (x many)
//   {"record":"done","outcomes":M}
//
// Partial files (no "done" record, or grids cut short) are legal inputs:
// merging reports their missing cells, and re-running a worker with the
// same --out resumes it — completed cells are carried over, failed and
// missing ones re-run.
//
// Anchor grids (schema 2) are *shared* grids: cheap prerequisite runs
// whose results parameterize the downstream sharded specs (e.g. the
// saturation points that fix the 25%-load operating rates). Because every
// worker needs every anchor result to even construct its downstream grid,
// anchors historically re-ran in full in each of the K workers. Shared
// grids break that duplication with a two-phase protocol:
//   phase 1: each worker runs with --anchors-only; it simulates only its
//            owned anchor cells, records them under a shared grid, and
//            exits before touching the downstream grids.
//   merge:   sweep_merge combines the anchor shards as usual.
//   phase 2: each worker runs with --anchors-from <merged.jsonl>; anchor
//            outcomes load from the file (zero anchor simulation), the
//            downstream grids run sharded as before, and the anchors are
//            copied into each shard file so the final merge stays
//            self-contained.
// The classic single-invocation worker (neither flag) still runs the full
// anchor grid but now records its owned cells under the shared grid, so a
// merged file always carries the anchors and --from renders without
// resimulating them. Shared grids are the one place the merge accepts the
// same cell from multiple files: records are value-identical by
// construction (same spec key, same deterministic runner), so the first
// input wins and the duplicate is not an error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/shard.h"
#include "stats/experiment.h"
#include "stats/serialization.h"
#include "stats/telemetry.h"
#include "util/json.h"

namespace specnoc::stats {

inline constexpr int kSweepSchemaVersion = 2;
/// Oldest schema the loader still reads (1 = before shared anchor grids).
inline constexpr int kSweepSchemaVersionMin = 1;
inline constexpr const char* kSweepFormat = "specnoc-sweep";

struct SweepManifest {
  int schema_version = kSweepSchemaVersion;
  std::string tool;      ///< harness name; merge refuses mixed tools
  sim::ShardRef shard;   ///< which worker produced the file (0/1 = merged)
  std::uint64_t seed = 0;
};

/// One registered grid: identity shared by every worker of the sweep.
struct SweepGrid {
  std::string name;  ///< unique within the tool ("latency", "power", ...)
  std::string kind;  ///< "saturation" | "latency" | "power" | "workload" |
                     ///< "cmp"
  std::size_t size = 0;  ///< full grid size across all shards
  std::string hash;      ///< grid_hash() of all spec keys, in grid order
  /// Anchor grids: multiple workers may record the same cell (identical
  /// bytes); the merge keeps the first and does not flag the overlap.
  bool shared = false;
};

/// One recorded cell. `data` holds the serialized outcome (spec/run, plus
/// result when the run succeeded).
struct SweepRecord {
  std::size_t cell = 0;
  std::string key;
  std::string status;  ///< "ok" | "retried" | "failed"
  util::Json data;
};

/// A parsed shard (or merged) file. Within one file, a later record for
/// the same cell replaces an earlier one — that is what makes appending
/// re-runs a valid resume.
struct ShardFile {
  SweepManifest manifest;
  std::vector<SweepGrid> grids;
  std::map<std::string, std::map<std::size_t, SweepRecord>> records;
  bool complete = false;  ///< saw the "done" record

  const SweepGrid* find_grid(const std::string& name) const;
};

/// Parses a shard file; throws ConfigError (with the line number) on
/// malformed records or schema mismatches.
ShardFile load_shard_file(const std::string& path);

/// Serializes a ShardFile back to disk (manifest, grids, outcomes in cell
/// order, plus the "done" record when `file.complete`).
void write_shard_file(const ShardFile& file, const std::string& path);

/// What the merge found, per grid. Cells are indexes into the grid.
struct MergeReport {
  struct Grid {
    std::string name;
    std::size_t size = 0;
    std::size_t present = 0;
    bool shared = false;
    std::vector<std::size_t> missing;
    /// Recorded by more than one file. Expected (and not reported) for
    /// shared grids, where overlap is by construction.
    std::vector<std::size_t> duplicates;
    std::vector<std::size_t> failed;      ///< status "failed"
  };
  std::vector<Grid> grids;
  unsigned incomplete_inputs = 0;  ///< input files without a "done" record

  /// True when every grid is fully covered with no duplicates. Failed
  /// cells do not make a merge incomplete — they are real outcomes, and
  /// the rendered table shows them as FAIL exactly like the single-process
  /// path would.
  bool complete() const;

  std::string summary() const;  ///< deterministic multi-line report
};

/// Validates that the inputs belong to one sweep (same format, schema,
/// tool, seed, and shard count; distinct shard indexes; identical grid
/// identities) and merges their outcomes in spec order. On conflicting
/// duplicates the first input in argument order wins and the cell is
/// reported. Throws ConfigError for files that cannot belong to the same
/// sweep.
ShardFile merge_shards(const std::vector<ShardFile>& inputs,
                       MergeReport* report);

/// How a harness executes its grids this invocation.
enum class SweepMode {
  kRun,     ///< plain single-process run (no sharding involved)
  kWorker,  ///< --shard i/K --out: run our cells, write the shard file
  kRender,  ///< --from: take outcomes from a merged file, render tables
};

struct SweepOptions {
  SweepMode mode = SweepMode::kRun;
  std::string tool;       ///< manifest identity; must match across workers
  std::uint64_t seed = 0; ///< ExperimentRunner seed; validated on --from
  BatchOptions batch;
  sim::ShardRef shard;    ///< worker mode
  std::string out_path;   ///< worker mode
  std::string from_path;  ///< render mode
  /// Worker mode, phase 1: simulate only this shard's anchor cells and
  /// stop — the harness must skip its downstream grids (anchors_only()).
  bool anchors_only = false;
  /// Worker mode, phase 2: load anchor outcomes from this merged shard
  /// file instead of simulating them.
  std::string anchors_from;
  /// Live telemetry sink (non-owning; the harness opens it from
  /// --telemetry-out). Every simulated grid then emits one NDJSON "run"
  /// frame per cell as it completes, mid-batch — grid, cell, key, status,
  /// events, wall time, summary counters, and the sampled series when
  /// batch.telemetry is enabled. Render mode simulates nothing and emits
  /// nothing.
  TelemetryStream* telemetry_stream = nullptr;
};

/// The harness-facing session. Grids registered through it execute
/// according to the mode; anchor grids (cheap prerequisites whose results
/// parameterize the sharded specs, e.g. the saturation points that fix
/// 25%-load operating rates) always run in full so every worker can build
/// identical downstream grids.
class ShardedSweep {
 public:
  explicit ShardedSweep(SweepOptions options);

  SweepMode mode() const { return options_.mode; }

  /// False in worker mode: the harness should skip its table rendering and
  /// return finish() instead.
  bool should_render() const { return options_.mode != SweepMode::kWorker; }

  /// True when this worker runs with --anchors-only: the harness should
  /// return finish() right after its anchor grids, never constructing the
  /// downstream grids (their specs would need the missing anchor results).
  bool anchors_only() const { return options_.anchors_only; }

  /// Anchors: a shared grid of cheap prerequisite runs whose results
  /// parameterize the downstream sharded specs. Mode behavior:
  ///  - run: simulate in full (unchanged).
  ///  - worker, classic: simulate in full, record owned cells.
  ///  - worker --anchors-only: simulate owned cells only; unowned cells
  ///    come back run.ok == false (the harness exits via finish() next).
  ///  - worker --anchors-from: load every cell from the merged anchor
  ///    file — zero anchor simulation — and copy the records into this
  ///    shard file so the final merge is self-contained.
  ///  - render: load from the --from file; files predating shared grids
  ///    (schema 1) fall back to simulating, as before.
  std::vector<SaturationOutcome> anchor_saturation(
      ExperimentRunner& runner, const std::vector<SaturationSpec>& specs,
      const std::string& name = "anchor");

  /// Sharded grids. `name` must be unique within the harness and identical
  /// across its workers. In worker mode, cells not owned by this shard
  /// come back with run.ok == false and an informative error (the harness
  /// never renders them). In render mode, canonical saturation outcomes
  /// also prime the runner's saturation() cache.
  std::vector<SaturationOutcome> saturation_grid(
      const std::string& name, ExperimentRunner& runner,
      const std::vector<SaturationSpec>& specs);
  std::vector<LatencyOutcome> latency_sweep(
      const std::string& name, ExperimentRunner& runner,
      const std::vector<LatencySpec>& specs);
  std::vector<PowerOutcome> power_sweep(
      const std::string& name, ExperimentRunner& runner,
      const std::vector<PowerSpec>& specs);
  /// Workload specs embed their trace hash in the spec key, so workers
  /// replaying different trace bytes produce different grid hashes and the
  /// merge refuses to combine them.
  std::vector<WorkloadOutcome> workload_grid(
      const std::string& name, ExperimentRunner& runner,
      const std::vector<WorkloadSpec>& specs);
  /// CMP co-simulation grids: like workload grids, the access-trace hash
  /// rides each spec key, so mismatched trace bytes fail the merge.
  std::vector<CmpOutcome> cmp_grid(const std::string& name,
                                   ExperimentRunner& runner,
                                   const std::vector<CmpSpec>& specs);

  /// Worker mode: writes the "done" record, prints a one-line summary to
  /// stderr, and returns the process exit code (1 if any owned cell
  /// failed). Other modes: returns 0.
  int finish();

 private:
  template <typename Traits>
  std::vector<typename Traits::Outcome> run_grid(
      const std::string& name, ExperimentRunner& runner,
      const std::vector<typename Traits::Spec>& specs, bool shared = false);

  /// Reads a whole grid's outcomes out of `src` (a loaded --from or
  /// --anchors-from file), validating grid identity and per-cell keys.
  /// `strict` — used for anchors, whose results feed downstream spec
  /// construction — turns missing or failed cells into ConfigError instead
  /// of failed outcomes.
  template <typename Traits>
  std::vector<typename Traits::Outcome> load_grid(
      const ShardFile& src, const std::string& origin, const SweepGrid& grid,
      const std::vector<std::string>& keys,
      const std::vector<typename Traits::Spec>& specs, bool strict);

  /// options_.batch with "/<name>" appended to a non-empty progress label,
  /// so live progress lines identify the grid being executed.
  BatchOptions labeled_batch(const std::string& name) const;

  /// labeled_batch() plus the live-telemetry hook when a stream is
  /// attached: on_run_done emits one "run" frame per completed run.
  /// `cells` maps batch index -> grid cell (empty = identity, for grids
  /// run in full); `keys` are the grid's spec keys, indexed by cell.
  BatchOptions streaming_batch(const std::string& name,
                               std::vector<std::string> keys,
                               std::vector<std::size_t> cells) const;
  bool streaming() const { return options_.telemetry_stream != nullptr; }

  void flush() const;

  SweepOptions options_;
  ShardFile file_;     ///< worker: being built; render: the loaded file
  ShardFile anchors_;  ///< worker: the loaded --anchors-from file, if any
  ShardFile resume_;   ///< worker: previous contents of out_path, if any
  bool resuming_ = false;
  std::size_t executed_ = 0;
  std::size_t carried_ = 0;
  std::size_t failures_ = 0;
};

}  // namespace specnoc::stats
