# Empty compiler generated dependencies file for specnoc_sim.
# This may be replaced when dependencies are built.
