file(REMOVE_RECURSE
  "CMakeFiles/specnoc_mesh.dir/mesh_network.cpp.o"
  "CMakeFiles/specnoc_mesh.dir/mesh_network.cpp.o.d"
  "CMakeFiles/specnoc_mesh.dir/mesh_router.cpp.o"
  "CMakeFiles/specnoc_mesh.dir/mesh_router.cpp.o.d"
  "CMakeFiles/specnoc_mesh.dir/mesh_topology.cpp.o"
  "CMakeFiles/specnoc_mesh.dir/mesh_topology.cpp.o.d"
  "libspecnoc_mesh.a"
  "libspecnoc_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specnoc_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
