# Empty dependencies file for cache_coherence.
# This may be replaced when dependencies are built.
