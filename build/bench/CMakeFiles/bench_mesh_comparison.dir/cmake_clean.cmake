file(REMOVE_RECURSE
  "CMakeFiles/bench_mesh_comparison.dir/bench_mesh_comparison.cpp.o"
  "CMakeFiles/bench_mesh_comparison.dir/bench_mesh_comparison.cpp.o.d"
  "bench_mesh_comparison"
  "bench_mesh_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
