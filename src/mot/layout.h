// Wire-length and wire-delay model for an H-tree style MoT floorplan.
//
// The paper borrows channel lengths from a synchronous MoT chip layout
// (Balkan et al., HOTI'07) scaled to 45 nm. We model the structural
// property that matters: channels near the tree roots and the long
// fanout-leaf -> fanin-leaf "middle" channels are the longest, halving per
// level toward the leaves. Absolute constants are configurable; defaults are
// chosen so end-to-end network latencies land in the same few-nanosecond
// range the paper's figures imply.
#pragma once

#include <cstdint>

#include "mot/topology.h"
#include "noc/channel.h"
#include "util/units.h"

namespace specnoc::mot {

struct LayoutConfig {
  /// Die span of the network region.
  LengthUm chip_side_um = 1800.0;
  /// Repeated-wire delay per micron (45 nm repeated wire, ~250 ps/mm).
  double wire_delay_ps_per_um = 0.2;
  /// Short local hookup between a network interface and its tree root.
  LengthUm interface_link_um = 100.0;
};

/// Computes per-channel physical parameters from the floorplan model.
class HTreeLayout {
 public:
  HTreeLayout(const MotTopology& topology, LayoutConfig config);

  /// Source NI -> fanout root (and fanin root -> sink NI).
  LengthUm interface_link_length() const;

  /// Fanout node at `level` -> its child at level+1 (level in [0, L-2]).
  /// Mirrored for fanin internal links.
  LengthUm tree_link_length(std::uint32_t level) const;

  /// Fanout leaf -> fanin leaf: the long cross-network channel.
  LengthUm middle_link_length() const;

  /// Packages a length as ChannelParams (symmetric req/ack wire delay).
  noc::ChannelParams channel_params(LengthUm length) const;

  noc::ChannelParams interface_channel() const;
  noc::ChannelParams tree_channel(std::uint32_t level) const;
  noc::ChannelParams middle_channel() const;

 private:
  const MotTopology& topology_;
  LayoutConfig config_;
};

}  // namespace specnoc::mot
