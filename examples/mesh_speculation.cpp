// Mesh local speculation walk-through (the paper's future-work topology).
//
//   $ ./examples/mesh_speculation [cols rows]
//
// Builds a plain XY mesh and a checkerboard-speculative mesh of the same
// shape, sends the same multicast through both, and prints the per-
// destination header arrival times plus the redundant-copy accounting —
// the mesh analogue of the quickstart's MoT comparison.
#include <cstdio>
#include <map>

#include "mesh/mesh_network.h"
#include "util/cli.h"

using namespace specnoc;

namespace {

class HeaderLog final : public noc::TrafficObserver {
 public:
  void on_flit_ejected(const noc::Packet&, std::uint32_t dest,
                       noc::FlitKind kind, TimePs when) override {
    if (kind == noc::FlitKind::kHeader) arrivals[dest] = when;
  }
  void on_packet_injected(const noc::Packet&, TimePs) override {}
  std::map<std::uint32_t, TimePs> arrivals;
};

std::uint64_t total_throttled(mesh::MeshNetwork& net) {
  std::uint64_t total = 0;
  for (std::uint32_t id = 0; id < net.topology().n(); ++id) {
    total += net.router(id).throttled_flits();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t cols = 4;
  std::uint32_t rows = 4;
  util::CliParser cli("mesh_speculation",
                      "Compare a plain XY mesh against a checkerboard-"
                      "speculative mesh on one multicast.");
  cli.add_positional_uint32("cols", &cols, "mesh columns (default 4)");
  cli.add_positional_uint32("rows", &rows, "mesh rows (default 4)");
  cli.parse_or_exit(argc, argv);

  mesh::MeshConfig plain_cfg;
  plain_cfg.cols = cols;
  plain_cfg.rows = rows;
  mesh::MeshConfig spec_cfg = plain_cfg;
  spec_cfg.speculative_routers = mesh::MeshNetwork::checkerboard_speculation(
      mesh::MeshTopology(cols, rows));

  const std::uint32_t n = cols * rows;
  const std::uint32_t src = 0;
  noc::DestSet dests;
  // A spread-out destination set: the four quadrant corners-ish.
  dests.set(n - 1);
  dests.set(cols - 1);
  dests.set(n - cols);
  dests.set(n / 2);

  std::printf("%ux%u mesh, multicast from endpoint %u to 4 destinations\n\n",
              cols, rows, src);
  for (const bool speculative : {false, true}) {
    mesh::MeshNetwork net(speculative ? spec_cfg : plain_cfg);
    HeaderLog log;
    net.net().hooks().traffic = &log;
    net.send_message(src, dests, false);
    net.scheduler().run();
    TimePs last = 0;
    std::printf("%s:\n", speculative
                             ? "checkerboard speculative routers"
                             : "plain XY routers");
    for (const auto& [dest, when] : log.arrivals) {
      std::printf("  dest %2u (x=%u,y=%u): header at %6.2f ns\n", dest,
                  net.topology().x_of(dest), net.topology().y_of(dest),
                  ps_to_ns(when));
      last = std::max(last, when);
    }
    std::printf("  multicast complete at %.2f ns; redundant flits "
                "throttled: %llu\n\n",
                ps_to_ns(last),
                static_cast<unsigned long long>(total_throttled(net)));
  }
  std::printf("Speculative routers forward early copies on idle ports at "
              "sub-cycle latency;\nthe non-speculative neighbors throttle "
              "the redundant ones one hop away.\n");
  return 0;
}
