#include "workload/record.h"

#include <algorithm>
#include <utility>

namespace specnoc::workload {

TraceRecorder::TraceRecorder(const noc::PacketStore& store, std::uint32_t n,
                             std::string generator)
    : store_(store) {
  meta_.n = n;
  meta_.generator = std::move(generator);
}

void TraceRecorder::on_flit_ejected(const noc::Packet& packet,
                                    std::uint32_t dest, noc::FlitKind kind,
                                    TimePs when) {
  if (downstream_ != nullptr) {
    downstream_->on_flit_ejected(packet, dest, kind, when);
  }
}

void TraceRecorder::on_packet_injected(const noc::Packet& packet,
                                       TimePs when) {
  if (downstream_ != nullptr) downstream_->on_packet_injected(packet, when);
  // The Baseline network expands a k-destination message into k unicast
  // packets; capture the message once, on its first packet.
  if (!seen_.insert(packet.message).second) return;
  const noc::Message& msg = store_.message(packet.message);
  TraceRecord rec;
  rec.id = msg.id;
  rec.src = msg.src;
  rec.dests = msg.dests;
  rec.size = packet.num_flits;
  rec.earliest = msg.gen_time;
  records_.push_back(std::move(rec));
  ++captured_;
}

Trace TraceRecorder::trace() const {
  Trace trace;
  trace.meta = meta_;
  trace.records = records_;
  std::sort(trace.records.begin(), trace.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.id < b.id;
            });
  return trace;
}

}  // namespace specnoc::workload
