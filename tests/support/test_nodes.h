// Test doubles for exercising channels and switch nodes in isolation.
#pragma once

#include <functional>
#include <vector>

#include "noc/channel.h"
#include "noc/node.h"
#include "noc/packet.h"

namespace specnoc::testing {

/// Records every delivered flit and acks after a fixed delay (or manually).
class RecordingEndpoint : public noc::Node {
 public:
  struct Delivery {
    noc::Flit flit;
    std::uint32_t port;
    TimePs when;
  };

  RecordingEndpoint(sim::Scheduler& scheduler, noc::SimHooks& hooks,
                    TimePs ack_delay = 0, bool auto_ack = true)
      : Node(scheduler, hooks, noc::NodeKind::kSink, "recorder"),
        ack_delay_(ack_delay), auto_ack_(auto_ack) {}

  void deliver(const noc::Flit& flit, std::uint32_t in_port) override {
    deliveries.push_back({flit, in_port, sched().now()});
    if (auto_ack_) {
      sched().schedule(ack_delay_, [this, in_port] { input(in_port).ack(); });
    }
  }

  void on_output_ack(std::uint32_t) override {}

  /// Manual ack of the most recent delivery's port (auto_ack = false mode).
  void ack_port(std::uint32_t port) { input(port).ack(); }

  std::vector<Delivery> deliveries;

 private:
  TimePs ack_delay_;
  bool auto_ack_;
};

/// Upstream driver: exposes send-on-output and records acks.
class DriverEndpoint : public noc::Node {
 public:
  DriverEndpoint(sim::Scheduler& scheduler, noc::SimHooks& hooks)
      : Node(scheduler, hooks, noc::NodeKind::kSource, "driver") {}

  void deliver(const noc::Flit&, std::uint32_t) override {
    SPECNOC_UNREACHABLE("driver has no inputs");
  }

  void on_output_ack(std::uint32_t out_port) override {
    ack_times.push_back({out_port, sched().now()});
    if (on_ack) on_ack(out_port);
  }

  void send(std::uint32_t port, const noc::Flit& flit) {
    output(port).send(flit);
  }

  bool output_free(std::uint32_t port) { return output(port).free(); }

  std::vector<std::pair<std::uint32_t, TimePs>> ack_times;
  std::function<void(std::uint32_t)> on_ack;
};

}  // namespace specnoc::testing
