// Extension — load-latency curves.
//
// The classic NoC characterization underlying the paper's two operating
// points (25% load for Figure 6, backlogged for Table 1): average latency
// as offered load sweeps toward saturation, for the three optimized
// architectures on UniformRandom and Multicast10. The curves show the
// knee moving right with speculation — the same information as Table 1's
// saturation numbers, but as the full series.
#include <vector>

#include "bench_common.h"
#include "stats/experiment.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;
using namespace specnoc::literals;

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(argc, argv);
  core::NetworkConfig cfg;
  stats::ExperimentRunner runner(cfg, opts.seed);
  const double fractions[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  const traffic::SimWindows windows{.warmup = 300_ns, .measure = 2000_ns};

  for (const auto bench : {traffic::BenchmarkId::kUniformRandom,
                           traffic::BenchmarkId::kMulticast10}) {
    Table table({"Offered (x sat)", "OptNonSpec (ns)", "OptHybrid (ns)",
                 "OptAllSpec (ns)"});
    for (const double fraction : fractions) {
      std::vector<std::string> row{cell(fraction, 1)};
      for (const auto arch : core::dse_architectures()) {
        const auto& sat = runner.saturation(arch, bench);
        const double commanded = fraction * sat.injected_flits_per_ns /
                                 sat.message_expansion;
        const auto result =
            runner.measure_latency(arch, bench, commanded, windows);
        row.push_back(cell(result.mean_latency_ns, 2) +
                      (result.drained ? "" : "*"));
      }
      table.add_row(std::move(row));
    }
    specnoc::bench::emit(table,
                         std::string("Load-latency curve, ") +
                             traffic::to_string(bench) +
                             " ('*' = undrained/saturated)",
                         opts);
  }
  return 0;
}
