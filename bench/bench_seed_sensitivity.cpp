// Extension — statistical robustness of the headline numbers.
//
// The paper reports single numbers; our runs are seeded and deterministic,
// so we can quantify how much the key comparisons move across independent
// traffic seeds. Reported: mean +/- sample stddev over 5 seeds for the
// central claims (Table 1 saturation and the Figure 6 improvement
// percentages). Tight spreads justify comparing single-seed tables against
// the paper.
#include <array>

#include "bench_common.h"
#include "stats/experiment.h"
#include "util/summary_stats.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

namespace {

constexpr std::array<std::uint64_t, 5> kSeeds = {11, 42, 137, 1009, 9999};

std::string mean_pm_std(const SummaryStats& stats, int decimals) {
  return cell(stats.mean(), decimals) + " +/- " +
         cell(stats.stddev(), decimals);
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_seed_sensitivity",
      "Seed sensitivity of the headline numbers.");
  static_cast<void>(opts);
  core::NetworkConfig cfg;

  using core::Architecture;
  using traffic::BenchmarkId;

  SummaryStats sat_baseline_uniform;
  SummaryStats sat_opthybrid_mstatic;
  SummaryStats impr_tree_vs_serial;     // latency, Multicast_static
  SummaryStats impr_opthybrid_vs_bns;   // latency, Multicast10
  SummaryStats impr_hybrid_vs_nonspec;  // latency, UniformRandom (fig 6b)

  for (const auto seed : kSeeds) {
    stats::ExperimentRunner runner(cfg, seed);
    sat_baseline_uniform.add(
        runner.saturation(Architecture::kBaseline,
                          BenchmarkId::kUniformRandom)
            .delivered_flits_per_ns);
    sat_opthybrid_mstatic.add(
        runner.saturation(Architecture::kOptHybridSpeculative,
                          BenchmarkId::kMulticastStatic)
            .delivered_flits_per_ns);

    const auto base_static = runner.latency_at_fraction(
        Architecture::kBaseline, BenchmarkId::kMulticastStatic);
    const auto tree_static = runner.latency_at_fraction(
        Architecture::kBasicNonSpeculative, BenchmarkId::kMulticastStatic);
    impr_tree_vs_serial.add(
        100.0 * (1.0 - tree_static.mean_latency_ns /
                           base_static.mean_latency_ns));

    const auto bns_m10 = runner.latency_at_fraction(
        Architecture::kBasicNonSpeculative, BenchmarkId::kMulticast10);
    const auto opt_m10 = runner.latency_at_fraction(
        Architecture::kOptHybridSpeculative, BenchmarkId::kMulticast10);
    impr_opthybrid_vs_bns.add(
        100.0 * (1.0 - opt_m10.mean_latency_ns / bns_m10.mean_latency_ns));

    const auto nonspec_uni = runner.latency_at_fraction(
        Architecture::kOptNonSpeculative, BenchmarkId::kUniformRandom);
    const auto hybrid_uni = runner.latency_at_fraction(
        Architecture::kOptHybridSpeculative, BenchmarkId::kUniformRandom);
    impr_hybrid_vs_nonspec.add(
        100.0 * (1.0 -
                 hybrid_uni.mean_latency_ns / nonspec_uni.mean_latency_ns));
  }

  Table table({"Quantity", "Paper", "Measured (5 seeds)"});
  table.add_row({"Baseline saturation, UniformRandom (f/ns/src)", "1.26",
                 mean_pm_std(sat_baseline_uniform, 3)});
  table.add_row({"OptHybrid saturation, Multicast_static", "1.96",
                 mean_pm_std(sat_opthybrid_mstatic, 3)});
  table.add_row({"Tree vs serial latency gain, Multicast_static (%)",
                 "74.1", mean_pm_std(impr_tree_vs_serial, 1)});
  table.add_row({"OptHybrid vs BasicNonSpec latency gain, Mcast10 (%)",
                 "17.8..21.4", mean_pm_std(impr_opthybrid_vs_bns, 1)});
  table.add_row({"OptHybrid vs OptNonSpec latency gain, Uniform (%)",
                 "9.7..11.9", mean_pm_std(impr_hybrid_vs_nonspec, 1)});
  specnoc::bench::emit(table, "Seed sensitivity of the headline numbers",
                       opts);
  return 0;
}
