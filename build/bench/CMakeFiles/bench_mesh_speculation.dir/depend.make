# Empty dependencies file for bench_mesh_speculation.
# This may be replaced when dependencies are built.
