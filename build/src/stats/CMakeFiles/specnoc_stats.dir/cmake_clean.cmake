file(REMOVE_RECURSE
  "CMakeFiles/specnoc_stats.dir/experiment.cpp.o"
  "CMakeFiles/specnoc_stats.dir/experiment.cpp.o.d"
  "CMakeFiles/specnoc_stats.dir/recorder.cpp.o"
  "CMakeFiles/specnoc_stats.dir/recorder.cpp.o.d"
  "CMakeFiles/specnoc_stats.dir/trace.cpp.o"
  "CMakeFiles/specnoc_stats.dir/trace.cpp.o.d"
  "libspecnoc_stats.a"
  "libspecnoc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specnoc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
