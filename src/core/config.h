// Run configuration for building a MoT network.
#pragma once

#include <cstdint>
#include <map>

#include "mot/layout.h"
#include "nodes/characteristics.h"
#include "noc/hooks.h"
#include "noc/partition.h"
#include "util/units.h"

namespace specnoc::core {

struct NetworkConfig {
  /// Radix: N sources, N destinations. Power of two in
  /// [2, noc::kMaxEndpoints].
  std::uint32_t n = 8;

  /// Fixed packet size; the paper uses 5 flits.
  std::uint32_t flits_per_packet = 5;

  /// Per-input async FIFO depth in the fanin arbiters.
  std::uint32_t fanin_buffer_flits = 2;

  /// Fanin watchdog: how long an arbiter holds its output for the open
  /// packet's missing next flit before releasing (deadlock recovery; must
  /// exceed any normal inter-flit gap).
  TimePs fanin_sticky_timeout = 900;

  /// Pipeline depth (flits) of the long fanout-leaf -> fanin-leaf "middle"
  /// channels (asynchronous latch stages on the cross-die wires).
  std::uint32_t middle_channel_flits = 2;

  /// Network-interface delays.
  TimePs source_issue_delay = 50;
  TimePs sink_consume_delay = 50;

  /// 0 = asynchronous switches (the paper's design). Non-zero builds a
  /// synchronous-equivalent network: every switch-internal delay completes
  /// at the next edge of a clock with this period — the quantization the
  /// paper's "sub-cycle" asynchronous operation avoids. Used by the
  /// sync-vs-async ablation (paper future work: "as well as synchronous
  /// NoCs").
  TimePs clock_period = 0;

  /// Floorplan / wire model.
  mot::LayoutConfig layout{};

  /// Worker threads for the conservative PDES kernel. 1 (default) keeps the
  /// classic single-scheduler network; 0 means hardware concurrency. Any
  /// value produces identical simulation results — see DESIGN.md §9.
  unsigned sim_threads = 1;

  /// How to map trees onto scheduler lanes when sim_threads != 1.
  noc::PartitionStrategy partition = noc::PartitionStrategy::kAuto;

  /// Per-kind overrides of the default node characteristics (tests and
  /// sensitivity studies); unlisted kinds use default_characteristics().
  std::map<noc::NodeKind, nodes::NodeCharacteristics> char_overrides;

  /// Resolved characteristics for a node kind.
  const nodes::NodeCharacteristics& chars_for(noc::NodeKind kind) const {
    const auto it = char_overrides.find(kind);
    return it != char_overrides.end() ? it->second
                                      : nodes::default_characteristics(kind);
  }

  /// This configuration with the PDES kernel disabled. Zero-lookahead
  /// feedback protocols (closed-loop replay, cmp co-simulation, the
  /// latency drain) build their networks from this copy.
  NetworkConfig sequential() const {
    NetworkConfig config = *this;
    config.sim_threads = 1;
    return config;
  }
};

}  // namespace specnoc::core
