#include "workload/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "noc/packet.h"
#include "util/error.h"

namespace specnoc::workload {
namespace {

Trace small_trace() {
  Trace trace;
  trace.meta.n = 8;
  trace.meta.generator = "test";
  trace.records.push_back({0, 0, noc::DestSet::single(3) | noc::DestSet::single(5), 5, 0,
                           0, {}});
  trace.records.push_back({1, 3, noc::DestSet::single(0), 5, 1000, 500, {0}});
  trace.records.push_back({2, 5, noc::DestSet::single(0), 5, 1000, 0, {0, 1}});
  return trace;
}

TEST(TraceTest, WriteReadRoundTrip) {
  const Trace trace = small_trace();
  const std::string bytes = trace_to_string(trace);
  std::istringstream in(bytes);
  const Trace back = read_trace(in, "roundtrip");
  ASSERT_EQ(back.records.size(), trace.records.size());
  EXPECT_EQ(back.meta.n, trace.meta.n);
  EXPECT_EQ(back.meta.generator, trace.meta.generator);
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(back.records[i].id, trace.records[i].id);
    EXPECT_EQ(back.records[i].src, trace.records[i].src);
    EXPECT_EQ(back.records[i].dests, trace.records[i].dests);
    EXPECT_EQ(back.records[i].size, trace.records[i].size);
    EXPECT_EQ(back.records[i].earliest, trace.records[i].earliest);
    EXPECT_EQ(back.records[i].delay, trace.records[i].delay);
    EXPECT_EQ(back.records[i].deps, trace.records[i].deps);
  }
  // The writer is deterministic, so re-serializing reproduces the bytes.
  EXPECT_EQ(trace_to_string(back), bytes);
  EXPECT_EQ(trace_hash(back), trace_hash(trace));
}

TEST(TraceTest, HashChangesWithContent) {
  Trace a = small_trace();
  Trace b = small_trace();
  b.records[1].earliest += 1;
  EXPECT_NE(trace_hash(a), trace_hash(b));
}

TEST(TraceTest, ValidateEnforcesRadixCeiling) {
  // noc::DestSet caps at kMaxEndpoints; traces for wider networks would
  // silently truncate destination sets.
  Trace trace = small_trace();
  trace.meta.n = noc::kMaxEndpoints * 2;
  EXPECT_THROW(trace.validate(), ConfigError);
  trace.meta.n = 1;
  EXPECT_THROW(trace.validate(), ConfigError);
  trace.meta.n = 65;  // past the old 64-endpoint ceiling, now in range
  EXPECT_NO_THROW(trace.validate());
  trace.meta.n = 64;
  EXPECT_NO_THROW(trace.validate());
}

TEST(TraceTest, ValidateRejectsStructuralErrors) {
  {
    Trace trace = small_trace();
    trace.records[1].id = 0;  // ids must be strictly increasing
    EXPECT_THROW(trace.validate(), ConfigError);
  }
  {
    Trace trace = small_trace();
    trace.records[0].src = 8;  // src out of range
    EXPECT_THROW(trace.validate(), ConfigError);
  }
  {
    Trace trace = small_trace();
    trace.records[0].dests = noc::DestSet::single(8);  // dest beyond n endpoints
    EXPECT_THROW(trace.validate(), ConfigError);
  }
  {
    Trace trace = small_trace();
    trace.records[0].dests = noc::DestSet{};  // empty destination set
    EXPECT_THROW(trace.validate(), ConfigError);
  }
  {
    Trace trace = small_trace();
    trace.records[0].size = 0;
    EXPECT_THROW(trace.validate(), ConfigError);
  }
  {
    Trace trace = small_trace();
    trace.records[2].deps = {7};  // dangling dependency
    EXPECT_THROW(trace.validate(), ConfigError);
  }
  {
    Trace trace = small_trace();
    trace.records[1].deps = {1};  // self/forward dependency
    EXPECT_THROW(trace.validate(), ConfigError);
  }
}

TEST(TraceTest, ParserRejectsMalformedStreams) {
  const std::string good = trace_to_string(small_trace());
  {
    std::istringstream in("not json\n");
    EXPECT_THROW(read_trace(in, "bad"), ConfigError);
  }
  {
    // Missing header: first line is a msg record.
    std::istringstream in(good.substr(good.find('\n') + 1));
    EXPECT_THROW(read_trace(in, "headerless"), ConfigError);
  }
  {
    // Truncated: drop the end record.
    std::istringstream in(good.substr(0, good.rfind("{\"record\":\"end\"")));
    EXPECT_THROW(read_trace(in, "truncated"), ConfigError);
  }
  {
    // Wrong message count in the end record.
    std::string tampered = good;
    const auto pos = tampered.find("\"messages\":3");
    ASSERT_NE(pos, std::string::npos);
    tampered.replace(pos, 12, "\"messages\":2");
    std::istringstream in(tampered);
    EXPECT_THROW(read_trace(in, "count"), ConfigError);
  }
}

Trace large_trace() {
  Trace trace;
  trace.meta.n = 1024;
  trace.meta.generator = "test-large";
  noc::DestSet wide;
  wide.set(3);
  wide.set(500);
  wide.set(1023);
  trace.records.push_back({0, 0, wide, 5, 0, 0, {}});
  trace.records.push_back({1, 900, noc::DestSet::single(65), 5, 1000, 0, {0}});
  return trace;
}

TEST(TraceTest, LargeRadixWritesSchema2HexDests) {
  const std::string bytes = trace_to_string(large_trace());
  EXPECT_NE(bytes.find("\"schema\":2"), std::string::npos);
  // Destination sets are hex strings, not integers, on the schema-2 wire.
  EXPECT_NE(bytes.find("\"dests\":\""), std::string::npos);
  // Radix <= 64 keeps the schema-1 integer wire form, byte-compatible with
  // every pre-existing golden.
  const std::string small_bytes = trace_to_string(small_trace());
  EXPECT_NE(small_bytes.find("\"schema\":1"), std::string::npos);
  EXPECT_EQ(small_bytes.find("\"dests\":\""), std::string::npos);
}

TEST(TraceTest, LargeRadixRoundTripPreservesDests) {
  const Trace trace = large_trace();
  const std::string bytes = trace_to_string(trace);
  std::istringstream in(bytes);
  const Trace back = read_trace(in, "large");
  ASSERT_EQ(back.records.size(), trace.records.size());
  EXPECT_EQ(back.meta.n, 1024u);
  EXPECT_EQ(back.records[0].dests, trace.records[0].dests);
  EXPECT_EQ(back.records[1].dests, trace.records[1].dests);
  EXPECT_EQ(trace_to_string(back), bytes);  // deterministic writer
  EXPECT_EQ(trace_hash(back), trace_hash(trace));
}

TEST(TraceTest, SchemaRadixPairingIsStrictBothWays) {
  // A schema-1 header claiming a large radix must be refused (its integer
  // masks cannot address endpoints >= 64)...
  std::string schema1_large = trace_to_string(large_trace());
  const auto pos = schema1_large.find("\"schema\":2");
  ASSERT_NE(pos, std::string::npos);
  schema1_large.replace(pos, 10, "\"schema\":1");
  std::istringstream in1(schema1_large);
  EXPECT_THROW(read_trace(in1, "schema1-large"), ConfigError);

  // ...and schema 2 is reserved for radixes that need it.
  std::string schema2_small = trace_to_string(small_trace());
  const auto pos2 = schema2_small.find("\"schema\":1");
  ASSERT_NE(pos2, std::string::npos);
  schema2_small.replace(pos2, 10, "\"schema\":2");
  std::istringstream in2(schema2_small);
  EXPECT_THROW(read_trace(in2, "schema2-small"), ConfigError);
}

TEST(TraceTest, ParserNamesOffendingLine) {
  std::istringstream in(
      "{\"record\":\"header\",\"format\":\"specnoc-workload-trace\","
      "\"schema\":1,\"n\":8,\"generator\":\"t\"}\n"
      "garbage\n");
  try {
    read_trace(in, "lined");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("lined:2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace specnoc::workload
