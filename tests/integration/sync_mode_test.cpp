// Synchronous-equivalent mode: quantized switch delays (extension).
#include <gtest/gtest.h>

#include "core/mot_network.h"
#include "stats/experiment.h"

namespace specnoc {
namespace {

using core::Architecture;
using traffic::BenchmarkId;

/// Records the last header arrival for a single message.
class LastHeader : public noc::TrafficObserver {
 public:
  void on_flit_ejected(const noc::Packet&, std::uint32_t,
                       noc::FlitKind kind, TimePs when) override {
    if (kind == noc::FlitKind::kHeader) last = std::max(last, when);
  }
  void on_packet_injected(const noc::Packet&, TimePs) override {}
  TimePs last = 0;
};

TimePs unicast_header_latency(Architecture arch, TimePs clock_period) {
  core::NetworkConfig cfg;
  cfg.clock_period = clock_period;
  core::MotNetwork net(arch, cfg);
  LastHeader obs;
  net.net().hooks().traffic = &obs;
  net.send_message(0, noc::DestSet::single(5), false);
  net.scheduler().run();
  return obs.last;
}

TEST(SyncModeTest, ClockedNetworkIsSlowerThanAsync) {
  const auto async_lat =
      unicast_header_latency(Architecture::kOptHybridSpeculative, 0);
  const auto sync_lat =
      unicast_header_latency(Architecture::kOptHybridSpeculative, 600);
  EXPECT_GT(sync_lat, async_lat);
}

TEST(SyncModeTest, LatencyMonotoneInClockPeriod) {
  TimePs previous = 0;
  for (const TimePs period : {0, 300, 500, 800}) {
    const auto lat =
        unicast_header_latency(Architecture::kBasicNonSpeculative, period);
    EXPECT_GE(lat, previous) << "period=" << period;
    previous = lat;
  }
}

TEST(SyncModeTest, SubCycleSpeculationAdvantageShrinksWhenClocked) {
  // Asynchronously, the speculative root's 52 ps vs 299 ps shows directly;
  // under a coarse clock both nodes take a full cycle, so the gap between
  // hybrid and non-speculative collapses.
  const auto async_gap =
      unicast_header_latency(Architecture::kBasicNonSpeculative, 0) -
      unicast_header_latency(Architecture::kBasicHybridSpeculative, 0);
  const auto sync_gap =
      unicast_header_latency(Architecture::kBasicNonSpeculative, 800) -
      unicast_header_latency(Architecture::kBasicHybridSpeculative, 800);
  EXPECT_GT(async_gap, 0);
  EXPECT_LT(sync_gap, async_gap);
}

TEST(SyncModeTest, ClockedNetworkStillRoutesCorrectly) {
  core::NetworkConfig cfg;
  cfg.clock_period = 700;
  core::MotNetwork net(Architecture::kOptAllSpeculative, cfg);
  // Reuse the throughput recorder to check deliveries.
  stats::ExperimentRunner runner(cfg, 3);
  const auto& sat = runner.saturation(Architecture::kOptAllSpeculative,
                                      BenchmarkId::kMulticast10);
  EXPECT_GT(sat.delivered_flits_per_ns, 0.2);
  // And a clocked run saturates below the async equivalent.
  stats::ExperimentRunner async_runner(core::NetworkConfig{}, 3);
  const auto& async_sat = async_runner.saturation(
      Architecture::kOptAllSpeculative, BenchmarkId::kMulticast10);
  EXPECT_LT(sat.delivered_flits_per_ns, async_sat.delivered_flits_per_ns);
}

}  // namespace
}  // namespace specnoc
