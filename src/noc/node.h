// Node base class: anything with handshake-controlled input/output channels.
#pragma once

#include <cstdint>
#include <string>

#include "sim/scheduler.h"
#include "noc/flit.h"
#include "noc/hooks.h"

namespace specnoc::noc {

class Channel;

/// Small-buffer channel-pointer array. Every tree node has degree <= 2, so
/// ports 0..1 live inline and only the 5-port mesh routers touch the heap —
/// at 1024 endpoints the old per-node vectors were ~4M small allocations.
class PortList {
 public:
  PortList() { inline_[0] = inline_[1] = nullptr; }
  ~PortList() {
    if (cap_ > kInline) delete[] heap_;
  }
  PortList(const PortList&) = delete;
  PortList& operator=(const PortList&) = delete;

  /// Highest attached port + 1.
  std::uint32_t size() const { return size_; }

  /// Channel at `port` (nullptr when unattached or out of range).
  Channel* get(std::uint32_t port) const {
    return port < size_ ? data()[port] : nullptr;
  }

  /// Attaches `channel` at `port`; the slot must be empty (out-of-line:
  /// wiring happens once, at build time).
  void put(std::uint32_t port, Channel& channel);

 private:
  static constexpr std::uint32_t kInline = 2;

  Channel* const* data() const {
    return cap_ <= kInline ? inline_ : heap_;
  }
  Channel** data() { return cap_ <= kInline ? inline_ : heap_; }

  union {
    Channel* inline_[kInline];
    Channel** heap_;
  };
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInline;
};

/// Base class for switches and network interfaces.
///
/// The handshake contract between Channel and Node:
///  * `deliver(flit, port)` is called by the input channel when the flit's
///    req edge (plus wire delay) reaches the node. The channel guarantees it
///    never delivers a new flit on a port before the node acked the previous
///    one (2-phase protocol: one outstanding transaction per channel).
///  * The node calls `Channel::ack()` on that input channel once it has
///    issued req-out on every required output (or throttled the flit) — the
///    paper's ack-after-forward protocol.
///  * `on_output_ack(port)` is called (after ack wire delay) when the
///    downstream node acked the flit previously sent on output `port`; the
///    output channel is free again.
class Node {
 public:
  Node(sim::Scheduler& scheduler, SimHooks& hooks, NodeKind kind,
       std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  /// Structural position inside the network, set by the network builder.
  const NodeSite& site() const { return site_; }
  void set_site(const NodeSite& site) { site_ = site; }

  /// Scheduler lane this node's events run on. Equals the network's global
  /// scheduler unless the network was built with partitions enabled.
  sim::Scheduler& lane() { return scheduler_; }

  /// Partition this node belongs to (0 when partitioning is disabled).
  std::uint32_t partition() const { return partition_; }
  void set_partition(std::uint32_t partition) { partition_ = partition; }

  virtual void deliver(const Flit& flit, std::uint32_t in_port) = 0;
  virtual void on_output_ack(std::uint32_t out_port) = 0;

  /// Wiring, called by Network::connect.
  void attach_input(std::uint32_t port, Channel& channel);
  void attach_output(std::uint32_t port, Channel& channel);

  std::uint32_t num_inputs() const { return inputs_.size(); }
  std::uint32_t num_outputs() const { return outputs_.size(); }

 protected:
  sim::Scheduler& sched() { return scheduler_; }
  SimHooks& hooks() { return hooks_; }
  Channel& input(std::uint32_t port);
  Channel& output(std::uint32_t port);
  bool has_output(std::uint32_t port) const;

  /// Emits a node-op energy event if an energy observer is attached.
  void record_op(NodeOp op);

  /// Metrics emit helpers; each is a no-op unless a metrics observer is
  /// attached (hooks are nullable, so bare simulations pay one branch).
  void record_kill(const Flit& flit);
  void record_prealloc(bool hit);
  void record_contended_grant();
  void record_watchdog_release();

 private:
  sim::Scheduler& scheduler_;
  SimHooks& hooks_;
  NodeKind kind_;
  std::uint32_t partition_ = 0;
  NodeSite site_;
  std::string name_;
  PortList inputs_;
  PortList outputs_;
};

}  // namespace specnoc::noc
