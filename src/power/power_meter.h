// PowerMeter: accumulates switching energy and reports power over a window.
#pragma once

#include <array>
#include <cstdint>

#include "power/energy_model.h"

namespace specnoc::power {

/// EnergyObserver implementation. Attach to Network hooks, open a window at
/// the start of the measurement phase, close it at the end; window power =
/// window energy / window duration.
class PowerMeter final : public noc::EnergyObserver {
 public:
  explicit PowerMeter(EnergyModelParams params = {});

  void on_node_op(const noc::Node& node, noc::NodeOp op,
                  TimePs when) override;
  void on_channel_flit(LengthUm length, TimePs when) override;

  void open_window(TimePs now);
  void close_window(TimePs now);

  EnergyFj total_energy() const { return total_energy_; }
  EnergyFj window_energy() const { return window_energy_; }
  TimePs window_duration() const;
  /// Milliwatts over the closed window (fJ/ps == mW).
  double window_power_mw() const;

  /// Breakdown counters (per NodeOp) over the window, for reports/tests.
  std::uint64_t window_ops(noc::NodeOp op) const;
  std::uint64_t window_channel_flits() const { return window_channel_flits_; }
  EnergyFj window_node_energy() const { return window_node_energy_; }
  EnergyFj window_wire_energy() const { return window_wire_energy_; }
  /// Window energy attributed to switches of one kind (fJ).
  EnergyFj window_kind_energy(noc::NodeKind kind) const;

 private:
  bool in_window(TimePs when) const;
  void deposit(EnergyFj energy, TimePs when, bool is_wire);

  EnergyModelParams params_;
  EnergyFj total_energy_ = 0.0;
  EnergyFj window_energy_ = 0.0;
  EnergyFj window_node_energy_ = 0.0;
  EnergyFj window_wire_energy_ = 0.0;
  TimePs window_start_ = 0;
  TimePs window_end_ = 0;
  bool window_open_ = false;
  bool window_closed_ = false;
  std::array<std::uint64_t, 8> window_op_counts_{};
  std::array<EnergyFj, 8> window_kind_energy_{};
  std::uint64_t window_channel_flits_ = 0;
};

}  // namespace specnoc::power
