#!/usr/bin/env bash
# Runs the kernel microbenchmarks and writes google-benchmark JSON to
# BENCH_kernel.json at the repo root. The JSON is committed alongside kernel
# changes so perf regressions/improvements show up in review diffs.
#
# The suite includes the PDES section (BM_PartitionedSaturatedSimulation):
# the saturated 8x8 run under the partitioned kernel at 1/2/4 workers. On
# hosts with fewer cores than workers the wall time is honest but
# serialized; the machine-independent headline is its `model_speedup`
# counter (total events / largest per-worker event share).
#
# Usage: bench/run_kernel_bench.sh [build-dir] [output-json]
#   SPECNOC_BENCH_MIN_TIME   per-benchmark min time (default 0.2; append
#                            an "s" suffix on google-benchmark >= 1.8)
#   SPECNOC_BENCH_FILTER     --benchmark_filter regex (default: all)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="${2:-$repo_root/BENCH_kernel.json}"
min_time="${SPECNOC_BENCH_MIN_TIME:-0.2}"

bench="$build_dir/bench/bench_kernel_micro"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bench" \
  --benchmark_min_time="$min_time" \
  --benchmark_filter="${SPECNOC_BENCH_FILTER:-.*}" \
  --benchmark_out="$out" \
  --benchmark_out_format=json

echo "wrote $out"
