#include "util/fswait.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace specnoc::util {
namespace {

/// Self-deleting temp path in the test's working directory.
class TempPath {
 public:
  explicit TempPath(std::string name) : path_(std::move(name)) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }
  void create() { std::ofstream(path_) << "x\n"; }

 private:
  std::string path_;
};

TEST(FsWaitTest, ExistingFileNeedsNoPolling) {
  TempPath path("fswait_existing.tmp");
  path.create();
  EXPECT_TRUE(wait_for_file(path.str(), /*poll_ms=*/1, /*budget_ms=*/0));
}

TEST(FsWaitTest, MissingFileFailsAfterTheBudget) {
  // Regression: a not-yet-created stream file used to fail immediately in
  // sweep_merge --follow; the wait must be bounded, not infinite.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(wait_for_file("fswait_never_created.tmp", /*poll_ms=*/1,
                             /*budget_ms=*/30));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(30));
  EXPECT_LT(elapsed, std::chrono::seconds(10));  // bounded, generously
}

TEST(FsWaitTest, PicksUpAFileCreatedMidWait) {
  TempPath path("fswait_appears.tmp");
  std::thread writer([&path] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    path.create();
  });
  EXPECT_TRUE(wait_for_file(path.str(), /*poll_ms=*/2, /*budget_ms=*/5000));
  writer.join();
}

}  // namespace
}  // namespace specnoc::util
