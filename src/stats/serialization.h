// JSON codecs and canonical keys for experiment specs and outcomes.
//
// Sharded sweeps move specs and outcomes between processes as values, so
// every spec/result struct in experiment.h (plus sim::RunOutcome) gets a
// JSON representation with an exact round trip: integers stay integers and
// doubles are written in their shortest exact decimal form, so a value
// that travels through a shard file renders the same table bytes as one
// that never left the process.
//
// A spec's *identity* is its declarative fields. The NetworkFactory
// closure is deliberately excluded: it cannot travel between processes.
// Custom design points instead carry a `custom` label naming the factory's
// network; deserialized specs come back with an empty factory, and any
// process that wants to *run* (rather than merge/render) them must rebuild
// the factory locally from the same label.
//
// spec_key() renders that identity as one canonical line — the sharding
// key (sim::ShardPlan), the per-cell validation key in shard files, and
// the input to grid_hash(), which fingerprints an entire grid so merge
// tooling can refuse shards produced from different grids.
#pragma once

#include <string>
#include <vector>

#include "sim/parallel_runner.h"
#include "stats/experiment.h"
#include "stats/metrics.h"
#include "util/json.h"

namespace specnoc::stats {

// --- specs ---------------------------------------------------------------

util::Json to_json(const SaturationSpec& spec);
util::Json to_json(const LatencySpec& spec);
util::Json to_json(const PowerSpec& spec);
/// The trace itself does not travel (like NetworkFactory, it cannot);
/// its trace_hash identity does, and deserialized specs come back with a
/// null trace — re-arm with make_workload_spec before running.
util::Json to_json(const WorkloadSpec& spec);
/// Like WorkloadSpec: the access trace travels as its hash only, and
/// deserialized specs must be re-armed with make_cmp_spec before running.
util::Json to_json(const CmpSpec& spec);

SaturationSpec saturation_spec_from_json(const util::Json& json);
LatencySpec latency_spec_from_json(const util::Json& json);
PowerSpec power_spec_from_json(const util::Json& json);
WorkloadSpec workload_spec_from_json(const util::Json& json);
CmpSpec cmp_spec_from_json(const util::Json& json);

// --- results -------------------------------------------------------------

util::Json to_json(const SaturationResult& result);
util::Json to_json(const LatencyResult& result);
util::Json to_json(const PowerResult& result);
util::Json to_json(const WorkloadResult& result);
util::Json to_json(const CmpResult& result);

SaturationResult saturation_result_from_json(const util::Json& json);
LatencyResult latency_result_from_json(const util::Json& json);
PowerResult power_result_from_json(const util::Json& json);
WorkloadResult workload_result_from_json(const util::Json& json);
CmpResult cmp_result_from_json(const util::Json& json);

// --- run outcomes --------------------------------------------------------

util::Json to_json(const sim::RunOutcome& run);
sim::RunOutcome run_outcome_from_json(const util::Json& json);

// --- metrics -------------------------------------------------------------

/// MetricsSnapshot holds only integers and enum names, so this round trip
/// is byte-exact: a snapshot that travels through a shard file serializes
/// to the same line as one that never left the process.
util::Json to_json(const MetricsSnapshot& snapshot);
MetricsSnapshot metrics_snapshot_from_json(const util::Json& json);

// --- full outcomes (spec + result + run) ---------------------------------

util::Json to_json(const SaturationOutcome& outcome);
util::Json to_json(const LatencyOutcome& outcome);
util::Json to_json(const PowerOutcome& outcome);
util::Json to_json(const WorkloadOutcome& outcome);
util::Json to_json(const CmpOutcome& outcome);

SaturationOutcome saturation_outcome_from_json(const util::Json& json);
LatencyOutcome latency_outcome_from_json(const util::Json& json);
PowerOutcome power_outcome_from_json(const util::Json& json);
WorkloadOutcome workload_outcome_from_json(const util::Json& json);
CmpOutcome cmp_outcome_from_json(const util::Json& json);

// --- identity ------------------------------------------------------------

/// Canonical one-line identity of a spec, unique within a grid. Two specs
/// with equal keys must describe the same run.
std::string spec_key(const SaturationSpec& spec);
std::string spec_key(const LatencySpec& spec);
std::string spec_key(const PowerSpec& spec);
std::string spec_key(const WorkloadSpec& spec);
std::string spec_key(const CmpSpec& spec);

/// Keys of a whole grid, in grid order.
template <typename Spec>
std::vector<std::string> spec_keys(const std::vector<Spec>& specs) {
  std::vector<std::string> keys;
  keys.reserve(specs.size());
  for (const auto& spec : specs) keys.push_back(spec_key(spec));
  return keys;
}

/// Order-sensitive fingerprint of a grid (hex fnv1a64 over its keys).
/// Every shard worker of a sweep must compute the same hash, or the merge
/// refuses to combine their outputs.
std::string grid_hash(const std::vector<std::string>& keys);

/// Per-run status recorded in shard files: "ok" (first attempt), "retried"
/// (succeeded after >= 1 retry), or "failed".
const char* run_status(const sim::RunOutcome& run);

}  // namespace specnoc::stats
