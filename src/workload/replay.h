// TraceReplayDriver: injects a workload trace into any noc::MessageNetwork.
//
// Two replay modes:
//  * Timed (open loop): every message is injected at its recorded
//    `earliest` time, dependencies ignored — reproduces the exact offered
//    load of the run that produced the trace.
//  * Closed loop (dependency-aware): a message becomes eligible only after
//    every message in its `deps` list has delivered all of its headers
//    (observed through the existing noc::TrafficObserver delivery hook),
//    then injects `delay` ps later, but never before `earliest`. The
//    network's own latencies feed back into the injection schedule — the
//    application behavior open-loop patterns cannot express.
//
// Replay is RNG-free: injection times are pure functions of the trace and
// of delivery events, so replay output is byte-identical across processes,
// shards, and job counts (the same determinism contract the per-source RNG
// streams give the synthetic patterns).
//
// The driver must be installed as the network's traffic observer before
// start() (it is how deliveries are detected); observers that want the
// same event stream (TrafficRecorder, tracers) chain via set_downstream().
//
// Timed replay runs under the partitioned kernel unchanged (injections are
// scheduled per source lane). Closed-loop replay requires a sequential
// network: its delivery->injection feedback has no lookahead, which the
// window protocol cannot honor, so start() throws ConfigError on a
// partitioned network.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "noc/hooks.h"
#include "noc/message_network.h"
#include "workload/trace.h"

namespace specnoc::workload {

enum class ReplayMode : std::uint8_t { kTimed, kClosedLoop };

const char* to_string(ReplayMode mode);

/// Parses a name produced by to_string; the ConfigError on unknown names
/// lists the valid ones.
ReplayMode replay_mode_from_string(const std::string& name);

struct ReplayConfig {
  ReplayMode mode = ReplayMode::kClosedLoop;
  /// Tag injected messages as measured, so a downstream TrafficRecorder
  /// collects a latency record per trace message.
  bool measured = true;
};

class TraceReplayDriver final : public noc::TrafficObserver {
 public:
  /// Keeps references to both; they must outlive the driver. Throws
  /// ConfigError when the trace does not fit the network (validate()
  /// failure, endpoint-count mismatch, or message sizes that differ from
  /// the network's fixed flits-per-packet).
  TraceReplayDriver(noc::MessageNetwork& network, const Trace& trace,
                    ReplayConfig config = {});

  /// Forwards every observed traffic event to `downstream` (nullable).
  void set_downstream(noc::TrafficObserver* downstream) {
    downstream_ = downstream;
  }

  /// Schedules the initial injections. The driver must already be the
  /// network's hooks().traffic observer. Call once, then run the scheduler
  /// to completion (the trace is finite, so the event queue drains).
  void start();

  // -- TrafficObserver (delivery detection; events forwarded downstream) --
  void on_flit_ejected(const noc::Packet& packet, std::uint32_t dest,
                       noc::FlitKind kind, TimePs when) override;
  void on_packet_injected(const noc::Packet& packet, TimePs when) override;

  std::uint64_t messages_injected() const { return injected_; }
  std::uint64_t messages_delivered() const { return delivered_; }

  /// All trace messages injected and fully delivered. False after the
  /// scheduler drains means the trace could not complete on this network
  /// (e.g. a dependency never delivered).
  bool finished() const { return delivered_ == states_.size(); }

  /// Delivery time of the last header of the last message (the workload
  /// makespan); 0 until the first delivery.
  TimePs completion_time() const { return completion_time_; }

  /// Per-message observability (indexed like trace.records; -1 = not yet).
  TimePs injection_time(std::size_t index) const {
    return states_[index].injected_at;
  }
  TimePs delivery_time(std::size_t index) const {
    return states_[index].delivered_at;
  }

 private:
  struct MessageState {
    noc::DestSet remaining;  ///< dests still missing a header
    std::uint32_t pending_deps = 0;
    TimePs injected_at = -1;
    TimePs delivered_at = -1;
    /// Indexes of messages whose deps include this one.
    std::vector<std::uint32_t> dependents;
  };

  void inject(std::size_t index);
  void complete(std::size_t index, TimePs when);

  noc::MessageNetwork& network_;
  const Trace& trace_;
  ReplayConfig config_;
  noc::TrafficObserver* downstream_ = nullptr;
  bool started_ = false;
  std::vector<MessageState> states_;
  /// Guards index_of_message_ and injected_: timed replay on a partitioned
  /// network injects from several source lanes concurrently while the
  /// (serialized) delivery hook reads the map. Message ids are opaque
  /// labels here — map keys only, never ordering — so assignment-order
  /// nondeterminism across lanes is invisible to replay results.
  mutable std::mutex mutex_;
  std::unordered_map<noc::MessageId, std::uint32_t> index_of_message_;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  TimePs completion_time_ = 0;
};

}  // namespace specnoc::workload
