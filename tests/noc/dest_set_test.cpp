// DestSet property suite.
//
// Two layers of evidence that the addressing redesign is safe:
//  * radix <= 64: every operation is differential-tested against the raw
//    uint64_t mask semantics the type replaced, under randomized op
//    sequences — the DestSet must be bit-for-bit the old alias;
//  * radix 1024/4096: multi-word structural properties (popcount,
//    ascending iteration, subtree splits, codec round-trips, capacity-
//    independent equality/hash) that have no single-word counterpart.
// Plus the allocation contract: inline (radix <= 64) op sequences must
// never touch the spill counter CI asserts on.
#include "noc/dest_set.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace specnoc::noc {
namespace {

// ---------------------------------------------------------------------------
// Differential layer: DestSet vs the uint64_t mask it replaced (radix <= 64).

/// The reference model: the exact bit arithmetic the simulator used before
/// DestSet existed.
struct WordModel {
  std::uint64_t bits = 0;

  void set(std::uint32_t d) { bits |= std::uint64_t{1} << d; }
  void reset(std::uint32_t d) { bits &= ~(std::uint64_t{1} << d); }
  bool test(std::uint32_t d) const { return (bits >> d) & 1u; }
  std::uint32_t count() const {
    return static_cast<std::uint32_t>(std::popcount(bits));
  }
  bool is_multicast() const { return (bits & (bits - 1)) != 0; }
  std::uint32_t first() const {
    return static_cast<std::uint32_t>(std::countr_zero(bits));
  }
  bool within(std::uint32_t n) const {
    return n >= 64 || (bits >> n) == 0;
  }
  std::uint64_t slice(std::uint32_t lo, std::uint32_t hi) const {
    const std::uint64_t below =
        hi >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << hi) - 1;
    const std::uint64_t above =
        lo >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lo) - 1;
    return bits & below & ~above;
  }
};

void expect_matches(const DestSet& set, const WordModel& model) {
  ASSERT_EQ(set.to_word(), model.bits);
  EXPECT_EQ(set.count(), model.count());
  EXPECT_EQ(set.any(), model.bits != 0);
  EXPECT_EQ(set.none(), model.bits == 0);
  EXPECT_EQ(set.is_multicast(), model.is_multicast());
  if (model.bits != 0) {
    EXPECT_EQ(set.first(), model.first());
  }
  for (std::uint32_t n : {1u, 7u, 8u, 33u, 64u}) {
    EXPECT_EQ(set.within(n), model.within(n)) << "within(" << n << ")";
  }
  // Iteration visits exactly the model's members, ascending.
  std::uint64_t seen = 0;
  std::uint32_t last = 0;
  bool first_dest = true;
  set.for_each_dest([&](std::uint32_t d) {
    EXPECT_TRUE(first_dest || d > last);
    first_dest = false;
    last = d;
    seen |= std::uint64_t{1} << d;
  });
  EXPECT_EQ(seen, model.bits);
}

TEST(DestSetDifferentialTest, RandomOpSequencesMatchWordSemantics) {
  Rng rng(0xD1FFu);
  for (int round = 0; round < 50; ++round) {
    DestSet set;
    WordModel model;
    for (int op = 0; op < 200; ++op) {
      const std::uint32_t d = static_cast<std::uint32_t>(rng.uniform_below(64));
      switch (rng.uniform_below(4)) {
        case 0:
          set.set(d);
          model.set(d);
          break;
        case 1:
          set.reset(d);
          model.reset(d);
          break;
        case 2: {
          // subtree_slice == masked extraction on the word model.
          const auto lo = static_cast<std::uint32_t>(rng.uniform_below(65));
          const auto hi =
              lo + static_cast<std::uint32_t>(rng.uniform_below(65 - lo));
          EXPECT_EQ(set.subtree_slice({lo, hi}).to_word(),
                    model.slice(lo, hi));
          EXPECT_EQ(set.intersects(DestRange{lo, hi}),
                    model.slice(lo, hi) != 0);
          break;
        }
        default:
          EXPECT_EQ(set.test(d), model.test(d));
          break;
      }
      expect_matches(set, model);
    }
  }
}

TEST(DestSetDifferentialTest, SetAlgebraMatchesWordSemantics) {
  Rng rng(0xA16EB7Au);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    EXPECT_EQ((DestSet::from_word(a) | DestSet::from_word(b)).to_word(),
              a | b);
    EXPECT_EQ((DestSet::from_word(a) & DestSet::from_word(b)).to_word(),
              a & b);
    DestSet removed = DestSet::from_word(a);
    removed.remove(DestSet::from_word(b));
    EXPECT_EQ(removed.to_word(), a & ~b);
    EXPECT_EQ(DestSet::from_word(a).intersects(DestSet::from_word(b)),
              (a & b) != 0);
    EXPECT_EQ(DestSet::from_word(a).subset_of(DestSet::from_word(b)),
              (a & ~b) == 0);
    EXPECT_EQ(DestSet::from_word(a) == DestSet::from_word(b), a == b);
  }
}

TEST(DestSetDifferentialTest, InlineOperationsNeverSpill) {
  const std::uint64_t spills_before = DestSet::spill_allocations();
  Rng rng(0x90u);
  DestSet set;
  for (int op = 0; op < 5000; ++op) {
    const std::uint32_t d = static_cast<std::uint32_t>(rng.uniform_below(64));
    set.set(d);
    set.test(d);
    set.intersects(DestRange{0, 32});
    DestSet copy = set;         // inline copy: no heap involved
    copy.reset(d);
    copy |= DestSet::single(63);
    copy.subtree_slice({16, 48});
    copy.for_each_dest([](std::uint32_t) {});
  }
  EXPECT_EQ(DestSet::spill_allocations(), spills_before);
}

// ---------------------------------------------------------------------------
// Multi-word layer: radix 1024 / 4096 structure.

TEST(DestSetMultiWordTest, PopcountAndAscendingIterationAt1024) {
  Rng rng(0x400u);
  DestSet set;
  std::vector<std::uint32_t> members;
  std::vector<bool> present(1024, false);
  for (int i = 0; i < 300; ++i) {
    const auto d = static_cast<std::uint32_t>(rng.uniform_below(1024));
    if (!present[d]) {
      present[d] = true;
      set.set(d);
    }
  }
  for (std::uint32_t d = 0; d < 1024; ++d) {
    if (present[d]) members.push_back(d);
    EXPECT_EQ(set.test(d), static_cast<bool>(present[d]));
  }
  EXPECT_EQ(set.count(), members.size());
  std::vector<std::uint32_t> visited;
  set.for_each_dest([&](std::uint32_t d) { visited.push_back(d); });
  EXPECT_EQ(visited, members);  // ascending by construction
  EXPECT_EQ(set.first(), members.front());
  EXPECT_TRUE(set.within(1024));
  EXPECT_EQ(set.within(members.back()), false);
}

TEST(DestSetMultiWordTest, SubtreeSplitPartitionsAt4096) {
  // A fanout node splits its incoming set between two half-spans; the two
  // slices must partition the parent slice at every level of a 4096 tree.
  Rng rng(0x1000u);
  DestSet set;
  for (int i = 0; i < 500; ++i) {
    set.set(static_cast<std::uint32_t>(rng.uniform_below(4096)));
  }
  for (std::uint32_t width = 4096; width >= 2; width /= 2) {
    for (std::uint32_t lo = 0; lo < 4096; lo += width) {
      const DestRange span{lo, lo + width};
      const DestSet parent = set.subtree_slice(span);
      const DestRange top{lo, lo + width / 2};
      const DestRange bottom{lo + width / 2, lo + width};
      const DestSet a = set.subtree_slice(top);
      const DestSet b = set.subtree_slice(bottom);
      EXPECT_FALSE(a.intersects(b));
      EXPECT_EQ(a | b, parent);
      EXPECT_EQ(a.count() + b.count(), parent.count());
      EXPECT_EQ(set.intersects(span), parent.any());
    }
    if (width > 256) width = 512;  // keep the quadratic sweep bounded
  }
}

TEST(DestSetMultiWordTest, EqualityAndHashIgnoreCapacity) {
  // Growing to 4096 and shrinking back to low members must compare and
  // hash identically to a set that never spilled.
  DestSet grown;
  grown.set(5);
  grown.set(4095);
  grown.reset(4095);
  const DestSet inline_set = DestSet::single(5);
  EXPECT_EQ(grown, inline_set);
  EXPECT_EQ(inline_set, grown);
  EXPECT_EQ(grown.hash(), inline_set.hash());
  EXPECT_EQ(grown.to_word(), inline_set.to_word());
  EXPECT_TRUE(grown.within(6));

  DestSet other = grown;
  other.set(64);
  EXPECT_NE(other, grown);
  EXPECT_NE(other.hash(), grown.hash());
}

TEST(DestSetMultiWordTest, HexCodecRoundTripsAt4096) {
  Rng rng(0xC0DECu);
  for (int round = 0; round < 50; ++round) {
    DestSet set;
    for (int i = 0; i < 64; ++i) {
      set.set(static_cast<std::uint32_t>(rng.uniform_below(4096)));
    }
    const DestSet back = DestSet::from_hex(set.to_hex());
    EXPECT_EQ(back, set);
    EXPECT_EQ(back.hash(), set.hash());
  }
  EXPECT_EQ(DestSet{}.to_hex(), "0");
  EXPECT_EQ(DestSet::from_hex("0"), DestSet{});
  EXPECT_THROW(DestSet::from_hex(""), ConfigError);
  EXPECT_THROW(DestSet::from_hex("xyz"), ConfigError);
  // 4097 bits cannot fit kMaxEndpoints.
  EXPECT_THROW(DestSet::from_hex("1" + std::string(1024, '0')), ConfigError);
}

TEST(DestSetMultiWordTest, RangeAndFirstNCrossWordBoundaries) {
  const DestSet all = DestSet::first_n(4096);
  EXPECT_EQ(all.count(), 4096u);
  EXPECT_TRUE(all.within(4096));
  const DestSet mid = DestSet::range(60, 70);
  EXPECT_EQ(mid.count(), 10u);
  EXPECT_TRUE(mid.test(60));
  EXPECT_TRUE(mid.test(69));
  EXPECT_FALSE(mid.test(59));
  EXPECT_FALSE(mid.test(70));
  EXPECT_TRUE(mid.subset_of(all));
  EXPECT_FALSE(all.subset_of(mid));
  EXPECT_TRUE(mid.intersects(DestRange{63, 64}));
  EXPECT_FALSE(mid.intersects(DestRange{70, 4096}));
}

TEST(DestSetMultiWordTest, CopyAndMovePreserveValue) {
  DestSet spilled;
  spilled.set(3);
  spilled.set(3000);
  DestSet copy = spilled;
  EXPECT_EQ(copy, spilled);
  copy.set(7);
  EXPECT_FALSE(spilled.test(7));  // deep copy, no aliasing

  DestSet moved = std::move(copy);
  EXPECT_TRUE(moved.test(7));
  EXPECT_TRUE(moved.test(3000));

  DestSet assigned;
  assigned = spilled;
  EXPECT_EQ(assigned, spilled);
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.test(7));
}

// ---------------------------------------------------------------------------
// Spill pool: pooled and raw modes must be observably identical, and the
// pool's accounting must uphold the boundedness invariant CI gates on.

/// The randomized multi-word op sequence (the radix-4096 counterpart of the
/// differential suite above), fingerprinted: every observable output —
/// membership, algebra results, codec round-trips, hashes — folds into the
/// returned strings, so two runs agree iff every observable byte agreed.
std::vector<std::string> spill_op_fingerprint(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> log;
  DestSet a;
  DestSet b;
  for (int op = 0; op < 2000; ++op) {
    const auto d = static_cast<std::uint32_t>(rng.uniform_below(4096));
    switch (rng.uniform_below(8)) {
      case 0:
        a.set(d);
        break;
      case 1:
        b.set(d);
        break;
      case 2:
        a.reset(d);
        break;
      case 3:
        a |= b;
        break;
      case 4:
        b &= a;
        break;
      case 5:
        a.remove(b);
        break;
      case 6: {
        const auto lo = static_cast<std::uint32_t>(rng.uniform_below(4096));
        const auto hi = lo + static_cast<std::uint32_t>(
                                 rng.uniform_below(4097 - lo));
        a = a.subtree_slice({lo, hi}) | b;
        break;
      }
      default: {
        DestSet copy = a;  // exercise spill copy + destroy
        copy.set(d);
        log.push_back(copy.to_hex());
        break;
      }
    }
    if (op % 97 == 0) {
      log.push_back(a.to_hex() + "/" + std::to_string(a.hash()) + "/" +
                    std::to_string(b.count()));
      EXPECT_EQ(DestSet::from_hex(a.to_hex()), a);
    }
  }
  log.push_back(a.to_hex());
  log.push_back(b.to_hex());
  return log;
}

TEST(DestSetSpillPoolTest, PooledAndRawModesAreObservablyIdentical) {
  const bool was_pooling = DestSet::spill_pooling();
  DestSet::set_spill_pooling(true);
  const auto pooled = spill_op_fingerprint(0x9001u);
  DestSet::set_spill_pooling(false);
  const auto raw = spill_op_fingerprint(0x9001u);
  DestSet::set_spill_pooling(was_pooling);
  DestSet::trim_spill_pool();
  EXPECT_EQ(pooled, raw);
}

TEST(DestSetSpillPoolTest, PoolReusesBlocksAndBoundsRawAllocations) {
  const bool was_pooling = DestSet::spill_pooling();
  DestSet::set_spill_pooling(true);
  const auto allocs_before = DestSet::spill_allocations();
  const auto reuses_before = DestSet::spill_reuses();
  // Sequentially create and destroy spilled sets of one size: after the
  // first, every acquisition must come from the freelist.
  for (int i = 0; i < 100; ++i) {
    DestSet s;
    s.set(100);  // 2-word spill
    EXPECT_TRUE(s.test(100));
  }
  const auto allocs = DestSet::spill_allocations() - allocs_before;
  const auto reuses = DestSet::spill_reuses() - reuses_before;
  EXPECT_LE(allocs, 1u);  // 0 if a 2-word block was already parked
  EXPECT_GE(reuses, 99u);
  // The process-wide boundedness invariant (the CI gate): raw allocations
  // of each size only happen when all prior blocks of that size are live.
  EXPECT_LE(DestSet::spill_allocations(), DestSet::spill_high_water());
  DestSet::set_spill_pooling(was_pooling);
}

TEST(DestSetSpillPoolTest, OutstandingTracksLiveSpilledSets) {
  const auto outstanding_before = DestSet::spill_outstanding();
  {
    DestSet s = DestSet::single(4000);
    DestSet t = s;
    EXPECT_EQ(DestSet::spill_outstanding(), outstanding_before + 2);
  }
  EXPECT_EQ(DestSet::spill_outstanding(), outstanding_before);
}

}  // namespace
}  // namespace specnoc::noc
