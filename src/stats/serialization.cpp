#include "stats/serialization.h"

#include <cstdio>

#include "sim/shard.h"
#include "util/error.h"

namespace specnoc::stats {

using util::Json;

namespace {

Json windows_to_json(const traffic::SimWindows& windows) {
  Json json = Json::object();
  json.set("warmup_ps", static_cast<std::int64_t>(windows.warmup));
  json.set("measure_ps", static_cast<std::int64_t>(windows.measure));
  return json;
}

traffic::SimWindows windows_from_json(const Json& json) {
  traffic::SimWindows windows;
  windows.warmup = json.at("warmup_ps").as_i64();
  windows.measure = json.at("measure_ps").as_i64();
  return windows;
}

void set_spec_base(Json& json, core::Architecture arch,
                   traffic::BenchmarkId bench, std::uint64_t seed,
                   const std::string& custom) {
  json.set("arch", core::to_string(arch));
  json.set("bench", traffic::to_string(bench));
  json.set("seed", seed);
  if (!custom.empty()) json.set("custom", custom);
}

core::Architecture arch_from_json(const Json& json) {
  const std::string& name = json.at("arch").as_string();
  // kCustomHybrid is not parseable via architecture_from_string (it has no
  // canonical speculation map), but serialized custom design points carry
  // it; the factory must be rebuilt locally from the `custom` label.
  if (name == core::to_string(core::Architecture::kCustomHybrid)) {
    return core::Architecture::kCustomHybrid;
  }
  return core::architecture_from_string(name);
}

std::string custom_from_json(const Json& json) {
  const Json* custom = json.find("custom");
  return custom != nullptr ? custom->as_string() : std::string();
}

}  // namespace

Json to_json(const SaturationSpec& spec) {
  Json json = Json::object();
  json.set("kind", "saturation");
  set_spec_base(json, spec.arch, spec.bench, spec.seed, spec.custom);
  return json;
}

Json to_json(const LatencySpec& spec) {
  Json json = Json::object();
  json.set("kind", "latency");
  set_spec_base(json, spec.arch, spec.bench, spec.seed, spec.custom);
  json.set("injected_flits_per_ns", spec.injected_flits_per_ns);
  json.set("windows", windows_to_json(spec.windows));
  return json;
}

Json to_json(const PowerSpec& spec) {
  Json json = Json::object();
  json.set("kind", "power");
  set_spec_base(json, spec.arch, spec.bench, spec.seed, spec.custom);
  json.set("injected_flits_per_ns", spec.injected_flits_per_ns);
  json.set("windows", windows_to_json(spec.windows));
  return json;
}

Json to_json(const WorkloadSpec& spec) {
  Json json = Json::object();
  json.set("kind", "workload");
  json.set("arch", core::to_string(spec.arch));
  json.set("workload", spec.workload);
  json.set("mode", workload::to_string(spec.mode));
  json.set("trace_hash", spec.trace_hash);
  if (!spec.custom.empty()) json.set("custom", spec.custom);
  return json;
}

Json to_json(const CmpSpec& spec) {
  Json json = Json::object();
  json.set("kind", "cmp");
  json.set("arch", core::to_string(spec.arch));
  json.set("workload", spec.workload);
  json.set("access_hash", spec.access_hash);
  if (!spec.custom.empty()) json.set("custom", spec.custom);
  return json;
}

namespace {

void expect_kind(const Json& json, const char* kind) {
  const std::string& got = json.at("kind").as_string();
  if (got != kind) {
    throw ConfigError(std::string("spec kind mismatch: expected ") + kind +
                      ", got " + got);
  }
}

}  // namespace

SaturationSpec saturation_spec_from_json(const Json& json) {
  expect_kind(json, "saturation");
  SaturationSpec spec;
  spec.arch = arch_from_json(json);
  spec.bench = traffic::benchmark_from_string(json.at("bench").as_string());
  spec.seed = json.at("seed").as_u64();
  spec.custom = custom_from_json(json);
  return spec;
}

LatencySpec latency_spec_from_json(const Json& json) {
  expect_kind(json, "latency");
  LatencySpec spec;
  spec.arch = arch_from_json(json);
  spec.bench = traffic::benchmark_from_string(json.at("bench").as_string());
  spec.seed = json.at("seed").as_u64();
  spec.custom = custom_from_json(json);
  spec.injected_flits_per_ns = json.at("injected_flits_per_ns").as_double();
  spec.windows = windows_from_json(json.at("windows"));
  return spec;
}

PowerSpec power_spec_from_json(const Json& json) {
  expect_kind(json, "power");
  PowerSpec spec;
  spec.arch = arch_from_json(json);
  spec.bench = traffic::benchmark_from_string(json.at("bench").as_string());
  spec.seed = json.at("seed").as_u64();
  spec.custom = custom_from_json(json);
  spec.injected_flits_per_ns = json.at("injected_flits_per_ns").as_double();
  spec.windows = windows_from_json(json.at("windows"));
  return spec;
}

WorkloadSpec workload_spec_from_json(const Json& json) {
  expect_kind(json, "workload");
  WorkloadSpec spec;
  spec.arch = arch_from_json(json);
  spec.workload = json.at("workload").as_string();
  spec.mode = workload::replay_mode_from_string(json.at("mode").as_string());
  spec.trace_hash = json.at("trace_hash").as_string();
  spec.custom = custom_from_json(json);
  return spec;
}

CmpSpec cmp_spec_from_json(const Json& json) {
  expect_kind(json, "cmp");
  CmpSpec spec;
  spec.arch = arch_from_json(json);
  spec.workload = json.at("workload").as_string();
  spec.access_hash = json.at("access_hash").as_string();
  spec.custom = custom_from_json(json);
  return spec;
}

Json to_json(const SaturationResult& result) {
  Json json = Json::object();
  json.set("delivered_flits_per_ns", result.delivered_flits_per_ns);
  json.set("injected_flits_per_ns", result.injected_flits_per_ns);
  json.set("delivery_factor", result.delivery_factor);
  json.set("message_expansion", result.message_expansion);
  return json;
}

SaturationResult saturation_result_from_json(const Json& json) {
  SaturationResult result;
  result.delivered_flits_per_ns =
      json.at("delivered_flits_per_ns").as_double();
  result.injected_flits_per_ns = json.at("injected_flits_per_ns").as_double();
  result.delivery_factor = json.at("delivery_factor").as_double();
  result.message_expansion = json.at("message_expansion").as_double();
  return result;
}

Json to_json(const LatencyResult& result) {
  Json json = Json::object();
  json.set("mean_latency_ns", result.mean_latency_ns);
  json.set("p95_latency_ns", result.p95_latency_ns);
  json.set("max_latency_ns", result.max_latency_ns);
  json.set("messages_measured", result.messages_measured);
  json.set("offered_flits_per_ns", result.offered_flits_per_ns);
  json.set("drained", result.drained);
  return json;
}

LatencyResult latency_result_from_json(const Json& json) {
  LatencyResult result;
  result.mean_latency_ns = json.at("mean_latency_ns").as_double();
  result.p95_latency_ns = json.at("p95_latency_ns").as_double();
  result.max_latency_ns = json.at("max_latency_ns").as_double();
  result.messages_measured = json.at("messages_measured").as_u64();
  result.offered_flits_per_ns = json.at("offered_flits_per_ns").as_double();
  result.drained = json.at("drained").as_bool();
  return result;
}

Json to_json(const PowerResult& result) {
  Json json = Json::object();
  json.set("power_mw", result.power_mw);
  json.set("node_power_mw", result.node_power_mw);
  json.set("wire_power_mw", result.wire_power_mw);
  json.set("delivered_flits_per_ns", result.delivered_flits_per_ns);
  json.set("offered_flits_per_ns", result.offered_flits_per_ns);
  json.set("throttled_flits", result.throttled_flits);
  json.set("broadcast_ops", result.broadcast_ops);
  return json;
}

PowerResult power_result_from_json(const Json& json) {
  PowerResult result;
  result.power_mw = json.at("power_mw").as_double();
  result.node_power_mw = json.at("node_power_mw").as_double();
  result.wire_power_mw = json.at("wire_power_mw").as_double();
  result.delivered_flits_per_ns =
      json.at("delivered_flits_per_ns").as_double();
  result.offered_flits_per_ns = json.at("offered_flits_per_ns").as_double();
  result.throttled_flits = json.at("throttled_flits").as_u64();
  result.broadcast_ops = json.at("broadcast_ops").as_u64();
  return result;
}

Json to_json(const WorkloadResult& result) {
  Json json = Json::object();
  json.set("messages", result.messages);
  json.set("messages_delivered", result.messages_delivered);
  json.set("flits_delivered", result.flits_delivered);
  json.set("makespan_ns", result.makespan_ns);
  json.set("mean_latency_ns", result.mean_latency_ns);
  json.set("p95_latency_ns", result.p95_latency_ns);
  json.set("max_latency_ns", result.max_latency_ns);
  json.set("completed", result.completed);
  return json;
}

WorkloadResult workload_result_from_json(const Json& json) {
  WorkloadResult result;
  result.messages = json.at("messages").as_u64();
  result.messages_delivered = json.at("messages_delivered").as_u64();
  result.flits_delivered = json.at("flits_delivered").as_u64();
  result.makespan_ns = json.at("makespan_ns").as_double();
  result.mean_latency_ns = json.at("mean_latency_ns").as_double();
  result.p95_latency_ns = json.at("p95_latency_ns").as_double();
  result.max_latency_ns = json.at("max_latency_ns").as_double();
  result.completed = json.at("completed").as_bool();
  return result;
}

Json to_json(const CmpResult& result) {
  Json json = Json::object();
  json.set("accesses", result.accesses);
  json.set("makespan_ns", result.makespan_ns);
  json.set("l1_hits", result.l1_hits);
  json.set("l1_misses", result.l1_misses);
  json.set("mshr_merges", result.mshr_merges);
  json.set("inv_messages", result.inv_messages);
  json.set("inv_multicasts", result.inv_multicasts);
  json.set("inv_targets", result.inv_targets);
  json.set("dram_reads", result.dram_reads);
  json.set("dram_writes", result.dram_writes);
  json.set("dram_conflicts", result.dram_conflicts);
  json.set("messages", result.messages);
  json.set("flits_delivered", result.flits_delivered);
  json.set("energy_nj", result.energy_nj);
  json.set("completed", result.completed);
  return json;
}

CmpResult cmp_result_from_json(const Json& json) {
  CmpResult result;
  result.accesses = json.at("accesses").as_u64();
  result.makespan_ns = json.at("makespan_ns").as_double();
  result.l1_hits = json.at("l1_hits").as_u64();
  result.l1_misses = json.at("l1_misses").as_u64();
  result.mshr_merges = json.at("mshr_merges").as_u64();
  result.inv_messages = json.at("inv_messages").as_u64();
  result.inv_multicasts = json.at("inv_multicasts").as_u64();
  result.inv_targets = json.at("inv_targets").as_u64();
  result.dram_reads = json.at("dram_reads").as_u64();
  result.dram_writes = json.at("dram_writes").as_u64();
  result.dram_conflicts = json.at("dram_conflicts").as_u64();
  result.messages = json.at("messages").as_u64();
  result.flits_delivered = json.at("flits_delivered").as_u64();
  result.energy_nj = json.at("energy_nj").as_double();
  result.completed = json.at("completed").as_bool();
  return result;
}

Json to_json(const sim::RunOutcome& run) {
  Json json = Json::object();
  json.set("ok", run.ok);
  if (!run.error.empty()) json.set("error", run.error);
  json.set("attempts", static_cast<std::uint64_t>(run.telemetry.attempts));
  json.set("events", run.telemetry.events_executed);
  json.set("wall_ms", run.telemetry.wall_ms);
  return json;
}

sim::RunOutcome run_outcome_from_json(const Json& json) {
  sim::RunOutcome run;
  run.ok = json.at("ok").as_bool();
  const Json* error = json.find("error");
  if (error != nullptr) run.error = error->as_string();
  run.telemetry.attempts = static_cast<unsigned>(json.at("attempts").as_u64());
  run.telemetry.events_executed = json.at("events").as_u64();
  run.telemetry.wall_ms = json.at("wall_ms").as_double();
  return run;
}

Json to_json(const MetricsSnapshot& snapshot) {
  Json json = Json::object();
  Json sites = Json::array();
  for (const auto& site : snapshot.sites) {
    Json entry = Json::object();
    entry.set("kind", noc::to_string(site.kind));
    entry.set("level", static_cast<std::int64_t>(site.level));
    entry.set("kills", site.counters.kills);
    entry.set("prealloc_hits", site.counters.prealloc_hits);
    entry.set("prealloc_misses", site.counters.prealloc_misses);
    entry.set("contended_grants", site.counters.contended_grants);
    entry.set("watchdog_releases", site.counters.watchdog_releases);
    sites.push_back(std::move(entry));
  }
  json.set("sites", std::move(sites));
  Json channels = Json::array();
  for (const auto& channel : snapshot.channels) {
    Json entry = Json::object();
    entry.set("class", channel.klass);
    entry.set("stalls", channel.stalls);
    entry.set("stall_ps", channel.stall_time_ps);
    Json histogram = Json::array();
    for (const std::uint64_t count : channel.histogram) {
      histogram.push_back(count);
    }
    entry.set("hist", std::move(histogram));
    channels.push_back(std::move(entry));
  }
  json.set("channels", std::move(channels));
  // Omitted entirely for sequential runs, which keeps pre-PDES golden
  // records byte-stable.
  if (!snapshot.pdes.empty()) {
    Json pdes = Json::object();
    pdes.set("lanes", static_cast<std::uint64_t>(snapshot.pdes.lanes));
    pdes.set("lookahead_ps",
             static_cast<std::int64_t>(snapshot.pdes.lookahead_ps));
    pdes.set("windows", snapshot.pdes.windows);
    Json lane_events = Json::array();
    for (const std::uint64_t events : snapshot.pdes.lane_events) {
      lane_events.push_back(events);
    }
    pdes.set("lane_events", std::move(lane_events));
    Json lane_idle = Json::array();
    for (const std::uint64_t idle : snapshot.pdes.lane_idle_windows) {
      lane_idle.push_back(idle);
    }
    pdes.set("lane_idle_windows", std::move(lane_idle));
    json.set("pdes", std::move(pdes));
  }
  // Also omit-when-empty, for the same byte-stability reason: records from
  // unsampled runs are identical to pre-telemetry records.
  if (!snapshot.telemetry.empty()) {
    json.set("telemetry", telemetry_series_to_json(snapshot.telemetry));
  }
  if (snapshot.dest_spills != 0) json.set("spills", snapshot.dest_spills);
  if (snapshot.dest_spill_bytes != 0) {
    json.set("spill_bytes", snapshot.dest_spill_bytes);
  }
  // Omit-when-empty like pdes/telemetry: records harvested without arena
  // accounting (and all pre-arena records) keep their byte layout.
  if (!snapshot.arena.empty()) {
    Json arena = Json::array();
    for (const auto& pool : snapshot.arena) {
      Json entry = Json::object();
      entry.set("pool", pool.label);
      entry.set("objects", pool.objects);
      entry.set("bytes", pool.bytes);
      entry.set("reserved_bytes", pool.reserved_bytes);
      arena.push_back(std::move(entry));
    }
    json.set("arena", std::move(arena));
  }
  // Omit-when-empty: only cmp co-simulation runs carry these counters, so
  // every non-cmp record keeps its byte layout.
  if (!snapshot.cmp.empty()) {
    Json cmp = Json::object();
    cmp.set("accesses", snapshot.cmp.accesses);
    cmp.set("l1_hits", snapshot.cmp.l1_hits);
    cmp.set("l1_misses", snapshot.cmp.l1_misses);
    cmp.set("mshr_merges", snapshot.cmp.mshr_merges);
    cmp.set("inv_messages", snapshot.cmp.inv_messages);
    cmp.set("inv_multicasts", snapshot.cmp.inv_multicasts);
    cmp.set("inv_targets", snapshot.cmp.inv_targets);
    cmp.set("writebacks", snapshot.cmp.writebacks);
    cmp.set("dram_reads", snapshot.cmp.dram_reads);
    cmp.set("dram_writes", snapshot.cmp.dram_writes);
    cmp.set("dram_conflicts", snapshot.cmp.dram_conflicts);
    cmp.set("barriers", snapshot.cmp.barriers);
    cmp.set("lock_acquires", snapshot.cmp.lock_acquires);
    cmp.set("lock_contended", snapshot.cmp.lock_contended);
    json.set("cmp", std::move(cmp));
  }
  return json;
}

MetricsSnapshot metrics_snapshot_from_json(const Json& json) {
  MetricsSnapshot snapshot;
  for (const Json& entry : json.at("sites").items()) {
    MetricsSite site;
    site.kind = noc::node_kind_from_string(entry.at("kind").as_string());
    site.level = static_cast<std::int32_t>(entry.at("level").as_i64());
    site.counters.kills = entry.at("kills").as_u64();
    site.counters.prealloc_hits = entry.at("prealloc_hits").as_u64();
    site.counters.prealloc_misses = entry.at("prealloc_misses").as_u64();
    site.counters.contended_grants = entry.at("contended_grants").as_u64();
    site.counters.watchdog_releases = entry.at("watchdog_releases").as_u64();
    snapshot.sites.push_back(site);
  }
  for (const Json& entry : json.at("channels").items()) {
    ChannelClassMetrics channel;
    channel.klass = entry.at("class").as_string();
    channel.stalls = entry.at("stalls").as_u64();
    channel.stall_time_ps = entry.at("stall_ps").as_u64();
    const auto& histogram = entry.at("hist").items();
    if (histogram.size() != kNumStallBuckets) {
      throw ConfigError("metrics histogram has " +
                        std::to_string(histogram.size()) + " buckets, want " +
                        std::to_string(kNumStallBuckets));
    }
    for (std::size_t b = 0; b < kNumStallBuckets; ++b) {
      channel.histogram[b] = histogram[b].as_u64();
    }
    snapshot.channels.push_back(std::move(channel));
  }
  if (const Json* pdes = json.find("pdes"); pdes != nullptr) {
    snapshot.pdes.lanes = static_cast<std::uint32_t>(pdes->at("lanes").as_u64());
    snapshot.pdes.lookahead_ps = pdes->at("lookahead_ps").as_i64();
    snapshot.pdes.windows = pdes->at("windows").as_u64();
    for (const Json& events : pdes->at("lane_events").items()) {
      snapshot.pdes.lane_events.push_back(events.as_u64());
    }
    for (const Json& idle : pdes->at("lane_idle_windows").items()) {
      snapshot.pdes.lane_idle_windows.push_back(idle.as_u64());
    }
  }
  if (const Json* telemetry = json.find("telemetry"); telemetry != nullptr) {
    snapshot.telemetry = telemetry_series_from_json(*telemetry);
  }
  if (const Json* spills = json.find("spills"); spills != nullptr) {
    snapshot.dest_spills = spills->as_u64();
  }
  if (const Json* bytes = json.find("spill_bytes"); bytes != nullptr) {
    snapshot.dest_spill_bytes = bytes->as_u64();
  }
  if (const Json* arena = json.find("arena"); arena != nullptr) {
    for (const Json& entry : arena->items()) {
      ArenaPoolMetrics pool;
      pool.label = entry.at("pool").as_string();
      pool.objects = entry.at("objects").as_u64();
      pool.bytes = entry.at("bytes").as_u64();
      pool.reserved_bytes = entry.at("reserved_bytes").as_u64();
      snapshot.arena.push_back(std::move(pool));
    }
  }
  if (const Json* cmp = json.find("cmp"); cmp != nullptr) {
    snapshot.cmp.accesses = cmp->at("accesses").as_u64();
    snapshot.cmp.l1_hits = cmp->at("l1_hits").as_u64();
    snapshot.cmp.l1_misses = cmp->at("l1_misses").as_u64();
    snapshot.cmp.mshr_merges = cmp->at("mshr_merges").as_u64();
    snapshot.cmp.inv_messages = cmp->at("inv_messages").as_u64();
    snapshot.cmp.inv_multicasts = cmp->at("inv_multicasts").as_u64();
    snapshot.cmp.inv_targets = cmp->at("inv_targets").as_u64();
    snapshot.cmp.writebacks = cmp->at("writebacks").as_u64();
    snapshot.cmp.dram_reads = cmp->at("dram_reads").as_u64();
    snapshot.cmp.dram_writes = cmp->at("dram_writes").as_u64();
    snapshot.cmp.dram_conflicts = cmp->at("dram_conflicts").as_u64();
    snapshot.cmp.barriers = cmp->at("barriers").as_u64();
    snapshot.cmp.lock_acquires = cmp->at("lock_acquires").as_u64();
    snapshot.cmp.lock_contended = cmp->at("lock_contended").as_u64();
  }
  return snapshot;
}

namespace {

template <typename Outcome>
Json outcome_to_json(const Outcome& outcome) {
  Json json = Json::object();
  json.set("spec", to_json(outcome.spec));
  json.set("run", to_json(outcome.run));
  // The result slot is only meaningful for successful runs; omitting it
  // for failures keeps failed rows small and makes the round trip yield
  // the same default-constructed result the in-process path reports.
  if (outcome.run.ok) json.set("result", to_json(outcome.result));
  if (outcome.run.ok && outcome.metrics.has_value()) {
    json.set("metrics", to_json(*outcome.metrics));
  }
  return json;
}

template <typename Outcome>
void metrics_from_json(Outcome& outcome, const Json& json) {
  const Json* metrics = json.find("metrics");
  if (metrics != nullptr) {
    outcome.metrics = metrics_snapshot_from_json(*metrics);
  }
}

}  // namespace

Json to_json(const SaturationOutcome& outcome) {
  return outcome_to_json(outcome);
}
Json to_json(const LatencyOutcome& outcome) { return outcome_to_json(outcome); }
Json to_json(const PowerOutcome& outcome) { return outcome_to_json(outcome); }
Json to_json(const WorkloadOutcome& outcome) {
  return outcome_to_json(outcome);
}
Json to_json(const CmpOutcome& outcome) { return outcome_to_json(outcome); }

SaturationOutcome saturation_outcome_from_json(const Json& json) {
  SaturationOutcome outcome;
  outcome.spec = saturation_spec_from_json(json.at("spec"));
  outcome.run = run_outcome_from_json(json.at("run"));
  if (outcome.run.ok) {
    outcome.result = saturation_result_from_json(json.at("result"));
  }
  metrics_from_json(outcome, json);
  return outcome;
}

LatencyOutcome latency_outcome_from_json(const Json& json) {
  LatencyOutcome outcome;
  outcome.spec = latency_spec_from_json(json.at("spec"));
  outcome.run = run_outcome_from_json(json.at("run"));
  if (outcome.run.ok) {
    outcome.result = latency_result_from_json(json.at("result"));
  }
  metrics_from_json(outcome, json);
  return outcome;
}

PowerOutcome power_outcome_from_json(const Json& json) {
  PowerOutcome outcome;
  outcome.spec = power_spec_from_json(json.at("spec"));
  outcome.run = run_outcome_from_json(json.at("run"));
  if (outcome.run.ok) {
    outcome.result = power_result_from_json(json.at("result"));
  }
  metrics_from_json(outcome, json);
  return outcome;
}

WorkloadOutcome workload_outcome_from_json(const Json& json) {
  WorkloadOutcome outcome;
  outcome.spec = workload_spec_from_json(json.at("spec"));
  outcome.run = run_outcome_from_json(json.at("run"));
  if (outcome.run.ok) {
    outcome.result = workload_result_from_json(json.at("result"));
  }
  metrics_from_json(outcome, json);
  return outcome;
}

CmpOutcome cmp_outcome_from_json(const Json& json) {
  CmpOutcome outcome;
  outcome.spec = cmp_spec_from_json(json.at("spec"));
  outcome.run = run_outcome_from_json(json.at("run"));
  if (outcome.run.ok) {
    outcome.result = cmp_result_from_json(json.at("result"));
  }
  metrics_from_json(outcome, json);
  return outcome;
}

namespace {

std::string key_base(const char* kind, core::Architecture arch,
                     traffic::BenchmarkId bench, std::uint64_t seed,
                     const std::string& custom) {
  std::string key = kind;
  key += '|';
  key += core::to_string(arch);
  key += '|';
  key += traffic::to_string(bench);
  key += "|seed=";
  key += std::to_string(seed);
  if (!custom.empty()) {
    key += '|';
    key += custom;
  }
  return key;
}

std::string key_rate_windows(double rate, const traffic::SimWindows& windows) {
  return "|rate=" + util::format_double(rate) +
         "|w=" + std::to_string(windows.warmup) + ":" +
         std::to_string(windows.measure);
}

}  // namespace

std::string spec_key(const SaturationSpec& spec) {
  return key_base("sat", spec.arch, spec.bench, spec.seed, spec.custom);
}

std::string spec_key(const LatencySpec& spec) {
  return key_base("lat", spec.arch, spec.bench, spec.seed, spec.custom) +
         key_rate_windows(spec.injected_flits_per_ns, spec.windows);
}

std::string spec_key(const PowerSpec& spec) {
  return key_base("pow", spec.arch, spec.bench, spec.seed, spec.custom) +
         key_rate_windows(spec.injected_flits_per_ns, spec.windows);
}

std::string spec_key(const WorkloadSpec& spec) {
  // The trace hash is part of the identity: shards replayed from different
  // trace bytes hash to different grids, so the merge refuses to mix them.
  std::string key = "wl|";
  key += core::to_string(spec.arch);
  key += '|';
  key += spec.workload;
  key += '|';
  key += workload::to_string(spec.mode);
  key += "|trace=";
  key += spec.trace_hash;
  if (!spec.custom.empty()) {
    key += '|';
    key += spec.custom;
  }
  return key;
}

std::string spec_key(const CmpSpec& spec) {
  // Like the workload key, the access-trace hash is part of the identity.
  std::string key = "cmp|";
  key += core::to_string(spec.arch);
  key += '|';
  key += spec.workload;
  key += "|access=";
  key += spec.access_hash;
  if (!spec.custom.empty()) {
    key += '|';
    key += spec.custom;
  }
  return key;
}

std::string grid_hash(const std::vector<std::string>& keys) {
  std::string blob;
  for (const auto& key : keys) {
    blob += key;
    blob += '\n';
  }
  const std::uint64_t hash = sim::fnv1a64(blob);
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

const char* run_status(const sim::RunOutcome& run) {
  if (!run.ok) return "failed";
  return run.telemetry.attempts > 1 ? "retried" : "ok";
}

}  // namespace specnoc::stats
