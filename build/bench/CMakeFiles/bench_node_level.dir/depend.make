# Empty dependencies file for bench_node_level.
# This may be replaced when dependencies are built.
