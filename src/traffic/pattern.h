// Traffic patterns: per-source destination-set generators.
//
// Patterns are deterministic functions of (source, RNG stream); the driver
// owns one RNG per source so results do not depend on event interleaving.
//
// Choices the paper leaves unspecified (documented substitutions):
//  * "random subsets of destinations" for multicast — we draw the subset
//    size uniformly from [min_dests, max_dests] (default [2, N]) and then
//    that many distinct destinations uniformly.
//  * hotspot — a fraction `hot_fraction` (default 0.7) of packets go to the
//    hot destination, the rest uniform random.
//  * Multicast_static — sources {0, 3, 5} send only multicast.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/packet.h"
#include "util/rng.h"

namespace specnoc::traffic {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Draws the destination set for the next message from `src`.
  virtual noc::DestSet next_dests(std::uint32_t src, Rng& rng) = 0;

  /// False for sources that inject nothing in this pattern.
  virtual bool source_active(std::uint32_t src) const {
    static_cast<void>(src);
    return true;
  }

  virtual std::string name() const = 0;
};

/// Every packet unicast to a uniformly random destination.
std::unique_ptr<TrafficPattern> make_uniform_random(std::uint32_t n);

/// Fixed bit-permutation: dst = rotate-left(src) over log2(n) bits
/// (Dally & Towles "shuffle").
std::unique_ptr<TrafficPattern> make_shuffle(std::uint32_t n);

/// Fixed bit-reversal permutation.
std::unique_ptr<TrafficPattern> make_bit_reverse(std::uint32_t n);

/// Fixed bit-complement permutation.
std::unique_ptr<TrafficPattern> make_bit_complement(std::uint32_t n);

/// Fixed transpose permutation: swaps the high and low halves of the index
/// bits (requires an even number of index bits, i.e. n a perfect square of
/// a power of two: 4, 16, 64).
std::unique_ptr<TrafficPattern> make_transpose(std::uint32_t n);

/// `hot_fraction` of packets to `hot_dest`, the rest uniform random.
std::unique_ptr<TrafficPattern> make_hotspot(std::uint32_t n,
                                             std::uint32_t hot_dest,
                                             double hot_fraction);

/// With probability `multicast_fraction` a multicast to a random subset
/// (size uniform in [min_dests, max_dests]); otherwise uniform unicast.
std::unique_ptr<TrafficPattern> make_multicast_mix(std::uint32_t n,
                                                   double multicast_fraction,
                                                   std::uint32_t min_dests = 2,
                                                   std::uint32_t max_dests = 0);

/// The listed sources send only random multicast; all other sources send
/// only uniform-random unicast (the paper's Multicast_static).
std::unique_ptr<TrafficPattern> make_multicast_static(
    std::uint32_t n, std::vector<std::uint32_t> multicast_sources,
    std::uint32_t min_dests = 2, std::uint32_t max_dests = 0);

}  // namespace specnoc::traffic
