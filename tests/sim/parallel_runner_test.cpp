// ParallelRunner: determinism and failure-isolation regression suite.
//
// The contract under test: a batch of independent runs produces outcomes
// keyed by run index, byte-identical for any --jobs value (1 thread, N
// threads, or repeated executions), and a run that throws is retried and
// then reported in its own outcome slot without poisoning the batch.
#include <atomic>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "sim/parallel_runner.h"
#include "stats/experiment.h"
#include "util/error.h"

namespace specnoc {
namespace {

using sim::ParallelRunner;
using sim::RunOutcome;

TEST(ParallelRunnerTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(sim::default_jobs(), 1u);
  EXPECT_EQ(ParallelRunner({.jobs = 0}).jobs(), sim::default_jobs());
  EXPECT_EQ(ParallelRunner({.jobs = 3}).jobs(), 3u);
}

TEST(ParallelRunnerTest, ExecutesEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 97;
  for (const unsigned jobs : {1u, 4u}) {
    std::vector<std::atomic<int>> hits(kCount);
    ParallelRunner pool({.jobs = jobs});
    const auto outcomes = pool.run(kCount, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      return std::uint64_t{i};
    });
    ASSERT_EQ(outcomes.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", jobs " << jobs;
      EXPECT_TRUE(outcomes[i].ok);
      EXPECT_EQ(outcomes[i].telemetry.events_executed, i);
      EXPECT_EQ(outcomes[i].telemetry.attempts, 1u);
    }
  }
}

TEST(ParallelRunnerTest, ResultsIdenticalAcrossThreadCounts) {
  constexpr std::size_t kCount = 64;
  auto run_with = [&](unsigned jobs) {
    std::vector<std::uint64_t> results(kCount, 0);
    ParallelRunner pool({.jobs = jobs});
    pool.run(kCount, [&](std::size_t i) {
      // A deterministic function of the index alone, as every simulation
      // run is of its spec.
      std::uint64_t h = 0x9e3779b97f4a7c15ull * (i + 1);
      h ^= h >> 31;
      results[i] = h;
      return h;
    });
    return results;
  };
  const auto serial = run_with(1);
  EXPECT_EQ(serial, run_with(4));
  EXPECT_EQ(serial, run_with(4));  // and across repeated executions
}

TEST(ParallelRunnerTest, ThrowingRunIsIsolatedAndRetried) {
  constexpr std::size_t kCount = 8;
  for (const unsigned jobs : {1u, 4u}) {
    ParallelRunner pool({.jobs = jobs, .max_attempts = 3});
    const auto outcomes = pool.run(kCount, [&](std::size_t i) {
      if (i == 3) throw ConfigError("bad spec 3");
      return std::uint64_t{1};
    });
    ASSERT_EQ(outcomes.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      if (i == 3) {
        EXPECT_FALSE(outcomes[i].ok);
        EXPECT_NE(outcomes[i].error.find("bad spec 3"), std::string::npos);
        EXPECT_EQ(outcomes[i].telemetry.attempts, 3u);
      } else {
        EXPECT_TRUE(outcomes[i].ok) << "run " << i << " poisoned by run 3";
        EXPECT_EQ(outcomes[i].telemetry.attempts, 1u);
      }
    }
  }
}

TEST(ParallelRunnerTest, TransientFailureSucceedsOnRetry) {
  std::atomic<int> first_attempts{0};
  ParallelRunner pool({.jobs = 1, .max_attempts = 2});
  const auto outcomes = pool.run(4, [&](std::size_t i) {
    if (i == 2 && first_attempts.fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
    return std::uint64_t{7};
  });
  EXPECT_TRUE(outcomes[2].ok);
  EXPECT_EQ(outcomes[2].telemetry.attempts, 2u);
  EXPECT_EQ(outcomes[2].telemetry.events_executed, 7u);
}

// ---------------------------------------------------------------------------
// Determinism of the stats-layer batch APIs: the same grid of real
// simulation runs must aggregate to bit-identical results for --jobs 1,
// --jobs 4, and repeated executions.

std::vector<stats::LatencySpec> small_grid() {
  using core::Architecture;
  const traffic::SimWindows windows{.warmup = 100'000, .measure = 300'000};
  std::vector<stats::LatencySpec> specs;
  for (const auto arch : {Architecture::kBasicNonSpeculative,
                          Architecture::kOptHybridSpeculative}) {
    for (const auto bench : {traffic::BenchmarkId::kUniformRandom,
                             traffic::BenchmarkId::kMulticast5}) {
      specs.push_back({.arch = arch,
                       .bench = bench,
                       .injected_flits_per_ns = 0.05,
                       .windows = windows,
                       .seed = 0,
                       .factory = {},
                       .custom = {}});
    }
  }
  return specs;
}

bool bitwise_equal(const stats::LatencyResult& a,
                   const stats::LatencyResult& b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

TEST(BatchDeterminismTest, LatencySweepIdenticalForAnyJobCount) {
  core::NetworkConfig cfg;
  cfg.n = 4;
  const stats::ExperimentRunner runner(cfg, /*seed=*/9);
  const auto specs = small_grid();

  const auto serial = runner.run_latency_sweep(specs, {.jobs = 1});
  const auto parallel = runner.run_latency_sweep(specs, {.jobs = 4});
  const auto repeat = runner.run_latency_sweep(specs, {.jobs = 4});
  ASSERT_EQ(serial.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(serial[i].run.ok);
    EXPECT_GT(serial[i].result.messages_measured, 0u);
    EXPECT_TRUE(bitwise_equal(serial[i].result, parallel[i].result))
        << "spec " << i << ": jobs=4 diverged from jobs=1";
    EXPECT_TRUE(bitwise_equal(serial[i].result, repeat[i].result))
        << "spec " << i << ": repeated run diverged";
  }
}

TEST(BatchDeterminismTest, SaturationGridIdenticalForAnyJobCount) {
  core::NetworkConfig cfg;
  cfg.n = 4;
  std::vector<stats::SaturationSpec> specs;
  for (const auto arch : {core::Architecture::kBaseline,
                          core::Architecture::kOptAllSpeculative}) {
    specs.push_back({.arch = arch,
                     .bench = traffic::BenchmarkId::kMulticastStatic,
                     .seed = 0,
                     .factory = {},
                     .custom = {}});
  }
  stats::ExperimentRunner a(cfg, 9), b(cfg, 9);
  const auto serial = a.run_saturation_grid(specs, {.jobs = 1});
  const auto parallel = b.run_saturation_grid(specs, {.jobs = 4});
  ASSERT_EQ(serial.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(serial[i].run.ok);
    EXPECT_GT(serial[i].result.delivered_flits_per_ns, 0.0);
    EXPECT_EQ(std::memcmp(&serial[i].result, &parallel[i].result,
                          sizeof(serial[i].result)),
              0);
  }
  // The grid warmed the memoization cache: the protocol accessor returns
  // the very same values without re-running.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& cached = b.saturation(specs[i].arch, specs[i].bench);
    EXPECT_EQ(std::memcmp(&cached, &parallel[i].result, sizeof(cached)), 0);
  }
}

TEST(BatchDeterminismTest, BadSpecReportedPerOutcomeNotFatal) {
  core::NetworkConfig cfg;
  cfg.n = 4;
  const stats::ExperimentRunner runner(cfg, 9);
  auto specs = small_grid();
  specs[1].injected_flits_per_ns = 0.0;  // rejected by the rate check
  const auto outcomes =
      runner.run_latency_sweep(specs, {.jobs = 4, .max_attempts = 2});
  ASSERT_EQ(outcomes.size(), specs.size());
  EXPECT_FALSE(outcomes[1].run.ok);
  EXPECT_NE(outcomes[1].run.error.find("positive"), std::string::npos);
  EXPECT_EQ(outcomes[1].run.telemetry.attempts, 2u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    EXPECT_TRUE(outcomes[i].run.ok) << "outcome " << i;
    EXPECT_GT(outcomes[i].result.messages_measured, 0u);
  }
}

}  // namespace
}  // namespace specnoc
