#include "noc/packet.h"

#include <gtest/gtest.h>

namespace specnoc::noc {
namespace {

TEST(PacketStoreTest, CreateMessageAssignsSequentialIds) {
  PacketStore store;
  const Message& m0 = store.create_message(0, DestSet::single(3), 100, true);
  const Message& m1 = store.create_message(1, DestSet::single(2) | DestSet::single(5), 200,
                                           false);
  EXPECT_EQ(m0.id, 0u);
  EXPECT_EQ(m1.id, 1u);
  EXPECT_EQ(store.num_messages(), 2u);
  EXPECT_EQ(store.message(1).gen_time, 200);
  EXPECT_FALSE(store.message(1).measured);
}

TEST(PacketStoreTest, PacketsInheritMessageProperties) {
  PacketStore store;
  const Message& msg = store.create_message(2, DestSet::single(1) | DestSet::single(4), 50,
                                            true);
  const Packet& pkt = store.create_packet(msg, DestSet::single(1), 5);
  EXPECT_EQ(pkt.message, msg.id);
  EXPECT_EQ(pkt.src, 2u);
  EXPECT_EQ(pkt.gen_time, 50);
  EXPECT_TRUE(pkt.measured);
  EXPECT_EQ(pkt.num_flits, 5u);
  EXPECT_EQ(store.message(msg.id).num_packets, 1u);
}

TEST(PacketStoreTest, SerializedCopiesCountPackets) {
  PacketStore store;
  const Message& msg =
      store.create_message(0, DestSet::single(0) | DestSet::single(1) | DestSet::single(2), 0,
                           false);
  store.create_packet(msg, DestSet::single(0), 5);
  store.create_packet(msg, DestSet::single(1), 5);
  store.create_packet(msg, DestSet::single(2), 5);
  EXPECT_EQ(store.message(msg.id).num_packets, 3u);
  EXPECT_EQ(store.num_packets(), 3u);
}

TEST(PacketStoreTest, ReferencesStableAcrossGrowth) {
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& first = store.create_packet(msg, DestSet::single(0), 1);
  const Packet* first_addr = &first;
  for (int i = 0; i < 10000; ++i) {
    store.create_packet(msg, DestSet::single(0), 1);
  }
  EXPECT_EQ(first_addr->id, 0u);  // still valid and unchanged
}

TEST(PacketTest, MulticastPredicate) {
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(2) | DestSet::single(7), 0,
                                            false);
  const Packet& uni = store.create_packet(msg, DestSet::single(2), 5);
  const Packet& multi = store.create_packet(msg, DestSet::single(2) | DestSet::single(7), 5);
  EXPECT_FALSE(uni.is_multicast());
  EXPECT_TRUE(multi.is_multicast());
}

TEST(FlitTest, MakeFlitKinds) {
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);
  EXPECT_EQ(make_flit(pkt, 0).kind, FlitKind::kHeader);
  EXPECT_EQ(make_flit(pkt, 1).kind, FlitKind::kBody);
  EXPECT_EQ(make_flit(pkt, 3).kind, FlitKind::kBody);
  EXPECT_EQ(make_flit(pkt, 4).kind, FlitKind::kTail);
}

TEST(FlitTest, SingleFlitPacketClosesOnHeader) {
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 1);
  const Flit flit = make_flit(pkt, 0);
  EXPECT_TRUE(flit.is_header());
  EXPECT_FALSE(flit.is_tail());
  EXPECT_TRUE(closes_packet(flit));
}

TEST(FlitTest, TailClosesPacket) {
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 3);
  EXPECT_FALSE(closes_packet(make_flit(pkt, 0)));
  EXPECT_FALSE(closes_packet(make_flit(pkt, 1)));
  EXPECT_TRUE(closes_packet(make_flit(pkt, 2)));
}

TEST(DestBitTest, MaskHelpers) {
  EXPECT_EQ(DestSet::single(0).to_word(), 1ull);
  EXPECT_EQ(DestSet::single(5).to_word(), 32ull);
  EXPECT_EQ(DestSet::single(63).to_word(), 1ull << 63);
}

}  // namespace
}  // namespace specnoc::noc
