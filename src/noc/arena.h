// NetworkArena: typed slab storage for everything a Network owns.
//
// A large-radix MoT is ~2M nodes and ~3M channels. Holding each behind its
// own unique_ptr scatters them across the heap (allocator metadata per
// object, pointer-chasing on every hop) and makes teardown ~5M frees. The
// arena instead placement-constructs objects of each concrete type into
// contiguous per-type chunks, in construction order:
//
//   * stable addresses — chunks never move or reallocate, so Node*/Channel*
//     taken at build time stay valid for the network's lifetime;
//   * deterministic layout — the same build sequence produces the same
//     object order within every slab, which is what the arena determinism
//     test pins (two constructions of one spec iterate identically);
//   * dense iteration — all fanin nodes (say) are adjacent, so the hot
//     event loop's working set collapses;
//   * O(chunks) teardown — destructors run in-place, then whole chunks are
//     freed; no per-object delete.
//
// Ownership: create<T>() constructs and the arena destroys everything in
// ~NetworkArena (per-pool, construction order). Objects are never destroyed
// individually; this matches Network's grow-only build model.
//
// usage() reports per-pool object counts and bytes (sorted by label) for
// stats::ArenaMetrics and the --metrics report.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "util/contract.h"

namespace specnoc::noc {

class NetworkArena {
 public:
  /// Per-pool accounting for metrics: `objects` constructed, `bytes` they
  /// occupy, `reserved_bytes` including unused chunk tails.
  struct PoolUsage {
    std::string label;
    std::uint64_t objects = 0;
    std::uint64_t bytes = 0;
    std::uint64_t reserved_bytes = 0;
  };

  NetworkArena() = default;
  ~NetworkArena() { clear(); }
  NetworkArena(const NetworkArena&) = delete;
  NetworkArena& operator=(const NetworkArena&) = delete;

  /// Constructs a T in its type's slab and returns a stable pointer.
  /// Forwarding is as lenient as std::make_unique's (which lives in a
  /// system header, where conversion warnings are suppressed).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wsign-conversion"
#pragma GCC diagnostic ignored "-Wconversion"
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    Pool& pool = pool_for<T>();
    void* slot = pool.allocate();
    T* object = new (slot) T(std::forward<Args>(args)...);
    ++pool.objects;
    return object;
  }
#pragma GCC diagnostic pop

  /// Names T's pool for usage() reporting (first call wins; the Network
  /// labels node pools by their NodeKind string after construction, when
  /// the kind is known).
  template <typename T>
  void label_pool(const char* label) {
    Pool& pool = pool_for<T>();
    if (!pool.labeled) {
      pool.label = label;
      pool.labeled = true;
    }
  }

  /// Objects constructed across all pools.
  std::uint64_t total_objects() const;
  /// Bytes occupied by constructed objects across all pools.
  std::uint64_t total_bytes() const;
  /// Bytes reserved (chunk allocations) across all pools.
  std::uint64_t total_reserved_bytes() const;

  /// Per-pool accounting, sorted by label (unlabeled pools report their
  /// mangled-free fallback label "pool<slot>"). Deterministic for a
  /// deterministic build sequence.
  std::vector<PoolUsage> usage() const;

  /// Destroys every object (per pool, construction order) and frees all
  /// chunks. The arena is reusable afterwards.
  void clear();

 private:
  struct Pool {
    std::size_t object_size = 0;
    std::size_t alignment = 0;
    void (*destroy)(void* first, std::size_t count) = nullptr;
    std::string label;
    bool labeled = false;
    std::vector<void*> chunks;
    std::vector<std::size_t> chunk_objects;  ///< constructed per chunk
    std::size_t chunk_capacity = 0;          ///< slots in the newest chunk
    std::size_t objects = 0;
    std::size_t reserved_bytes = 0;

    void* allocate();
  };

  /// Process-wide slot assignment: each concrete T gets one index, on first
  /// use. Slot values depend only on first-touch order, which is itself
  /// deterministic for a deterministic program.
  static std::size_t next_type_slot();
  template <typename T>
  static std::size_t type_slot() {
    static const std::size_t slot = next_type_slot();
    return slot;
  }

  template <typename T>
  Pool& pool_for() {
    const std::size_t slot = type_slot<T>();
    if (slot >= pools_.size()) pools_.resize(slot + 1);
    std::unique_ptr<Pool>& pool = pools_[slot];
    if (pool == nullptr) {
      pool = std::make_unique<Pool>();
      pool->object_size = sizeof(T);
      pool->alignment = alignof(T);
      pool->destroy = [](void* first, std::size_t count) {
        T* objects = static_cast<T*>(first);
        for (std::size_t i = 0; i < count; ++i) objects[i].~T();
      };
      pool->label = "pool" + std::to_string(slot);
      order_.push_back(pool.get());
    }
    return *pool;
  }

  std::vector<std::unique_ptr<Pool>> pools_;  ///< indexed by type slot
  std::vector<Pool*> order_;                  ///< first-use order, for clear()
};

}  // namespace specnoc::noc
