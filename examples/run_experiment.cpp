// run_experiment — command-line driver for single simulation runs.
//
// Examples:
//   ./run_experiment --mode saturation --arch OptHybridSpeculative
//                    --bench Multicast10
//   ./run_experiment --mode latency --arch Baseline --bench UniformRandom
//                    --fraction 0.25
//   ./run_experiment --mode power --arch OptAllSpeculative
//                    --bench Multicast5 --n 16 --clock 600
//   ./run_experiment --mode trace --arch OptHybridSpeculative
//                    --bench Multicast10 --trace out.csv --horizon-ns 200
//   ./run_experiment --mode trace --arch OptHybridSpeculative
//                    --bench Multicast10 --perfetto out.json --horizon-ns 200
//
// --list prints the available architectures and benchmarks.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "stats/experiment.h"
#include "stats/perfetto_trace.h"
#include "stats/trace.h"
#include "traffic/driver.h"
#include "util/cli.h"
#include "util/error.h"

using namespace specnoc;
using namespace specnoc::literals;

namespace {

struct Options {
  std::string mode = "saturation";
  std::string arch = "OptHybridSpeculative";
  std::string bench = "UniformRandom";
  std::uint32_t n = 8;
  double fraction = 0.25;
  double rate = 0.0;  // explicit flits/ns/source (overrides fraction)
  std::uint64_t seed = 42;
  TimePs clock = 0;
  std::string trace_path;
  std::string perfetto_path;
  TimePs horizon = 200_ns;
};

void list_names() {
  std::printf("architectures:\n");
  for (const auto arch : core::all_architectures()) {
    std::printf("  %s\n", core::to_string(arch));
  }
  std::printf("benchmarks:\n");
  for (const auto bench : traffic::all_benchmarks()) {
    std::printf("  %s\n", traffic::to_string(bench));
  }
}

Options parse(int argc, char** argv) {
  Options opts;
  util::CliParser cli("run_experiment",
                      "Run one simulation (saturation, latency, power, or "
                      "trace) and print its results.");
  cli.add_string("--mode", &opts.mode, "saturation | latency | power | trace");
  cli.add_string("--arch", &opts.arch, "architecture name (see --list)");
  cli.add_string("--bench", &opts.bench, "benchmark name (see --list)");
  cli.add_uint32("--n", &opts.n, "network radix");
  cli.add_double("--fraction", &opts.fraction,
                 "operating point as a fraction of saturation");
  cli.add_double("--rate", &opts.rate,
                 "explicit flits/ns/source (overrides --fraction)");
  cli.add_uint64("--seed", &opts.seed, "traffic seed");
  cli.add_int64("--clock", &opts.clock, "clock period in ps (0 = async)");
  cli.add_string("--trace", &opts.trace_path, "trace CSV path (trace mode)");
  cli.add_string("--perfetto", &opts.perfetto_path,
                 "Chrome-trace JSON path (trace mode; open in ui.perfetto.dev "
                 "or chrome://tracing)");
  cli.add_custom("--horizon-ns", "NS", "trace horizon in ns",
                 [&opts](const std::string& v) {
                   opts.horizon = util::parse_i64(v, "--horizon-ns") * 1000;
                 });
  cli.add_action("--list", "print available architectures and benchmarks",
                 [] {
                   list_names();
                   std::exit(0);
                 });
  cli.parse_or_exit(argc, argv);
  return opts;
}

int run(const Options& opts) {
  const auto arch = core::architecture_from_string(opts.arch);
  const auto bench = traffic::benchmark_from_string(opts.bench);
  core::NetworkConfig cfg;
  cfg.n = opts.n;
  cfg.clock_period = opts.clock;
  stats::ExperimentRunner runner(cfg, opts.seed);

  if (opts.mode == "saturation") {
    const auto& sat = runner.saturation(arch, bench);
    std::printf("%s / %s (n=%u%s)\n", opts.arch.c_str(), opts.bench.c_str(),
                opts.n, opts.clock ? ", clocked" : "");
    std::printf("  delivered: %.3f flits/ns/source\n",
                sat.delivered_flits_per_ns);
    std::printf("  injected:  %.3f flits/ns/source\n",
                sat.injected_flits_per_ns);
    std::printf("  delivery factor: %.3f, serialization expansion: %.3f\n",
                sat.delivery_factor, sat.message_expansion);
    return 0;
  }
  if (opts.mode == "latency") {
    const auto result =
        opts.rate > 0.0
            ? runner.measure_latency(arch, bench, opts.rate,
                                     traffic::default_windows(bench))
            : runner.latency_at_fraction(arch, bench, opts.fraction);
    if (opts.rate > 0.0) {
      std::printf("%s / %s at %.3f flits/ns/src\n", opts.arch.c_str(),
                  opts.bench.c_str(), opts.rate);
    } else {
      std::printf("%s / %s at %.0f%% of own saturation\n",
                  opts.arch.c_str(), opts.bench.c_str(),
                  opts.fraction * 100.0);
    }
    std::printf("  mean latency: %.3f ns   p95: %.3f ns   max: %.3f ns\n",
                result.mean_latency_ns, result.p95_latency_ns,
                result.max_latency_ns);
    std::printf("  messages measured: %llu   drained: %s\n",
                static_cast<unsigned long long>(result.messages_measured),
                result.drained ? "yes" : "NO (saturated)");
    return 0;
  }
  if (opts.mode == "power") {
    const auto result =
        opts.rate > 0.0
            ? runner.measure_power(arch, bench, opts.rate,
                                   traffic::default_windows(bench))
            : runner.power_at_baseline_fraction(arch, bench, opts.fraction);
    std::printf("%s / %s\n", opts.arch.c_str(), opts.bench.c_str());
    std::printf("  total power: %.2f mW (nodes %.2f + wires %.2f)\n",
                result.power_mw, result.node_power_mw, result.wire_power_mw);
    std::printf("  delivered: %.3f flits/ns/src; throttled flits: %llu; "
                "broadcast ops: %llu\n",
                result.delivered_flits_per_ns,
                static_cast<unsigned long long>(result.throttled_flits),
                static_cast<unsigned long long>(result.broadcast_ops));
    return 0;
  }
  if (opts.mode == "trace") {
    if (opts.trace_path.empty() == opts.perfetto_path.empty()) {
      std::fprintf(stderr,
                   "trace mode needs exactly one of --trace FILE (CSV) or "
                   "--perfetto FILE (Chrome-trace JSON)\n");
      return 2;
    }
    const std::string& path =
        opts.trace_path.empty() ? opts.perfetto_path : opts.trace_path;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    stats::TraceFilter filter;
    filter.node_ops = true;
    std::unique_ptr<stats::FlitTracer> csv;
    std::unique_ptr<stats::PerfettoTracer> perfetto;
    core::MotNetwork network(arch, cfg);
    if (!opts.trace_path.empty()) {
      csv = std::make_unique<stats::FlitTracer>(out, filter);
      network.net().hooks().traffic = csv.get();
      network.net().hooks().energy = csv.get();
    } else {
      perfetto = std::make_unique<stats::PerfettoTracer>();
      network.net().hooks().traffic = perfetto.get();
      network.net().hooks().energy = perfetto.get();
      network.net().hooks().metrics = perfetto.get();
    }
    auto pattern = traffic::make_benchmark(bench, cfg.n);
    traffic::DriverConfig dcfg;
    dcfg.mode = traffic::InjectionMode::kOpenLoop;
    dcfg.flits_per_ns_per_source = opts.rate > 0.0 ? opts.rate : 0.3;
    dcfg.seed = opts.seed;
    traffic::TrafficDriver driver(network, *pattern, dcfg);
    driver.start();
    network.scheduler().run_until(opts.horizon);
    if (csv != nullptr) {
      std::printf("wrote %llu trace rows to %s (%lld ns simulated)\n",
                  static_cast<unsigned long long>(csv->rows_written()),
                  path.c_str(), static_cast<long long>(opts.horizon / 1000));
    } else {
      perfetto->write(out);
      std::printf("wrote %llu trace events to %s (%lld ns simulated); open "
                  "in ui.perfetto.dev or chrome://tracing\n",
                  static_cast<unsigned long long>(perfetto->num_events()),
                  path.c_str(), static_cast<long long>(opts.horizon / 1000));
    }
    return 0;
  }
  std::fprintf(stderr, "unknown mode '%s'\n", opts.mode.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse(argc, argv));
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::fprintf(stderr, "use --list to see valid names\n");
    return 2;
  }
}
