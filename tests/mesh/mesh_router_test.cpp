// Isolated mesh-router unit tests: a single router wired to test endpoints.
#include "mesh/mesh_router.h"

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../support/test_nodes.h"
#include "noc/channel.h"

namespace specnoc::mesh {
namespace {

using noc::DestSet;

using noc::Packet;
using specnoc::testing::DriverEndpoint;
using specnoc::testing::RecordingEndpoint;

/// One router of a 3x3 mesh at the center (id 4, coords (1,1)), with a
/// driver on one input and recorders on all five outputs.
template <typename RouterT>
class RouterHarness {
 public:
  explicit RouterHarness(std::uint32_t in_port, TimePs sink_ack_delay = 0,
                         TimePs fwd_header = 100)
      : topo(3, 3),
        router(sched, hooks, "dut",
               {.area_um2 = 100.0, .fwd_header = fwd_header, .fwd_body = 50,
                .ack_delay = 10, .throttle_latency = 30},
               topo, /*router_id=*/4, /*buffer=*/4, /*timeout=*/900),
        driver(sched, hooks) {
    in = std::make_unique<noc::Channel>(
        sched, hooks,
        noc::ChannelParams{.delay_fwd = 5, .delay_ack = 5, .length = 0},
        "in");
    in->connect(driver, 0, router, in_port);
    // Outputs are distinct channels from inputs: every port gets a sink,
    // including the one whose input carries the driver.
    for (std::uint32_t p = 0; p < kNumPorts; ++p) {
      sinks.push_back(std::make_unique<RecordingEndpoint>(sched, hooks,
                                                          sink_ack_delay));
      outs.push_back(std::make_unique<noc::Channel>(
          sched, hooks,
          noc::ChannelParams{.delay_fwd = 5, .delay_ack = 5, .length = 0},
          "out" + std::to_string(p)));
      outs.back()->connect(router, p, *sinks.back(), 0);
      sink_of_port[p] = sinks.back().get();
    }
  }

  const Packet& make_packet(std::uint32_t src, noc::DestSet dests,
                            std::uint32_t num_flits = 5) {
    const noc::Message& msg = store.create_message(src, dests, 0, false);
    return store.create_packet(msg, dests, num_flits);
  }

  void stream(const Packet& pkt) {
    auto seq = std::make_shared<std::uint32_t>(1);
    driver.on_ack = [this, &pkt, seq](std::uint32_t port) {
      if (*seq < pkt.num_flits) {
        driver.send(port, noc::make_flit(pkt, (*seq)++));
      }
    };
    driver.send(0, noc::make_flit(pkt, 0));
  }

  std::size_t delivered(Port port) const {
    const auto it = sink_of_port.find(static_cast<std::uint32_t>(port));
    return it == sink_of_port.end() ? 0 : it->second->deliveries.size();
  }

  sim::Scheduler sched;
  noc::SimHooks hooks;
  noc::PacketStore store;
  MeshTopology topo;
  RouterT router;
  DriverEndpoint driver;
  std::unique_ptr<noc::Channel> in;
  std::vector<std::unique_ptr<RecordingEndpoint>> sinks;
  std::vector<std::unique_ptr<noc::Channel>> outs;
  std::map<std::uint32_t, RecordingEndpoint*> sink_of_port;
};

constexpr auto kLocalIn = static_cast<std::uint32_t>(Port::kLocal);
constexpr auto kWestIn = static_cast<std::uint32_t>(Port::kWest);

TEST(MeshRouterUnitTest, UnicastLocalInjectionRoutesXFirst) {
  RouterHarness<MeshRouter> h(kLocalIn);
  // Router 4 is (1,1). Destination (2,2) = id 8: east first.
  const Packet& pkt = h.make_packet(4, DestSet::single(8));
  h.stream(pkt);
  h.sched.run();
  EXPECT_EQ(h.delivered(Port::kEast), 5u);
  EXPECT_EQ(h.delivered(Port::kSouth), 0u);
  EXPECT_EQ(h.delivered(Port::kNorth), 0u);
}

TEST(MeshRouterUnitTest, MulticastForksToAllNeededPorts) {
  RouterHarness<MeshRouter> h(kLocalIn);
  // From (1,1): dest 3 (0,1) west, dest 5 (2,1) east, dest 7 (1,2) south,
  // dest 4 itself local.
  const Packet& pkt =
      h.make_packet(4, DestSet::single(3) | DestSet::single(5) | DestSet::single(7) | DestSet::single(4));
  h.stream(pkt);
  h.sched.run();
  EXPECT_EQ(h.delivered(Port::kWest), 5u);
  EXPECT_EQ(h.delivered(Port::kEast), 5u);
  EXPECT_EQ(h.delivered(Port::kSouth), 5u);
  EXPECT_EQ(h.delivered(Port::kLocal), 5u);
  EXPECT_EQ(h.delivered(Port::kNorth), 0u);
}

TEST(MeshRouterUnitTest, MisroutedFlitThrottledFast) {
  // A flit arriving from the west whose packet's tree does not pass
  // through router 4 (src (0,0) -> dest (0,2): pure Y-leg in column 0).
  RouterHarness<MeshRouter> h(kWestIn);
  const Packet& pkt = h.make_packet(0, DestSet::single(6), 2);
  h.stream(pkt);
  h.sched.run();
  for (const Port port : {Port::kLocal, Port::kNorth, Port::kEast,
                          Port::kSouth}) {
    EXPECT_EQ(h.delivered(port), 0u);
  }
  EXPECT_EQ(h.router.throttled_flits(), 2u);
  // Both flits acked to the driver.
  EXPECT_EQ(h.driver.ack_times.size(), 2u);
}

TEST(MeshRouterUnitTest, ValidTreeArrivalForwarded) {
  // src (0,1)=3 -> dest (2,1)=5: the x-leg passes through (1,1) from west.
  RouterHarness<MeshRouter> h(kWestIn);
  const Packet& pkt = h.make_packet(3, DestSet::single(5));
  h.stream(pkt);
  h.sched.run();
  EXPECT_EQ(h.delivered(Port::kEast), 5u);
  EXPECT_EQ(h.router.throttled_flits(), 0u);
}

TEST(MeshRouterUnitTest, HeaderLatencyIsEntryPlusWires) {
  RouterHarness<MeshRouter> h(kLocalIn);
  const Packet& pkt = h.make_packet(4, DestSet::single(5), 1);
  h.stream(pkt);
  h.sched.run();
  ASSERT_EQ(h.delivered(Port::kEast), 1u);
  // wire 5 + entry 100 + out wire 5 = 110 (grant is immediate).
  EXPECT_EQ(h.sink_of_port[static_cast<std::uint32_t>(Port::kEast)]
                ->deliveries[0]
                .when,
            110);
}

TEST(SpecMeshRouterUnitTest, EarlyCopiesOnIdlePorts) {
  // Conventional path (400 ps) slower than the speculation stage (150 ps),
  // as in the default characteristics.
  RouterHarness<SpecMeshRouter> h(kLocalIn, 0, /*fwd_header=*/400);
  const Packet& pkt = h.make_packet(4, DestSet::single(5), 1);  // east dest
  h.stream(pkt);
  h.sched.run();
  // The speculative stage (150 ps) broadcast to all four idle mesh ports;
  // the east copy doubles as the tree copy, so east got exactly one flit.
  EXPECT_EQ(h.delivered(Port::kEast), 1u);
  EXPECT_EQ(h.delivered(Port::kWest), 1u);
  EXPECT_EQ(h.delivered(Port::kNorth), 1u);
  EXPECT_EQ(h.delivered(Port::kSouth), 1u);
  // Local ejection is never speculative and the packet is not for 4.
  EXPECT_EQ(h.delivered(Port::kLocal), 0u);
}

TEST(SpecMeshRouterUnitTest, EarlyCopyArrivesAtSpeculationLatency) {
  RouterHarness<SpecMeshRouter> h(kLocalIn, 0, /*fwd_header=*/400);
  const Packet& pkt = h.make_packet(4, DestSet::single(5), 1);
  h.stream(pkt);
  h.sched.run();
  // in wire 5 + speculation 150 + out wire 5 = 160, well before the
  // conventional 400 ps path would have forwarded it.
  ASSERT_EQ(h.delivered(Port::kEast), 1u);
  EXPECT_EQ(h.sink_of_port[static_cast<std::uint32_t>(Port::kEast)]
                ->deliveries[0]
                .when,
            160);
}

TEST(SpecMeshRouterUnitTest, FastConventionalPathClosesSpeculationWindow) {
  // With a conventional path faster than the speculation stage, the flit
  // is forwarded conventionally and the late speculative event must not
  // re-send it (duplicate) — only the tree port sees the flit.
  RouterHarness<SpecMeshRouter> h(kLocalIn, 0, /*fwd_header=*/100);
  const Packet& pkt = h.make_packet(4, DestSet::single(5), 1);
  h.stream(pkt);
  h.sched.run();
  EXPECT_EQ(h.delivered(Port::kEast), 1u);
  EXPECT_EQ(h.delivered(Port::kWest), 0u);
  EXPECT_EQ(h.delivered(Port::kNorth), 0u);
}

TEST(SpecMeshRouterUnitTest, BusyPortsAreSkippedNotWaitedOn) {
  // Make the east sink very slow so its port is busy when later flits'
  // speculation fires; those flits must still pop (tree port = east is
  // needed, so they wait for east only; but the *north/west/south*
  // speculative copies of later flits are skipped without stalling).
  RouterHarness<SpecMeshRouter> h(kLocalIn, /*sink_ack_delay=*/2000,
                                  /*fwd_header=*/400);
  const Packet& pkt = h.make_packet(4, DestSet::single(5), 3);  // east dest
  h.stream(pkt);
  h.sched.run();
  // All three flits eventually delivered east (the guaranteed tree path).
  EXPECT_EQ(h.delivered(Port::kEast), 3u);
  // The sideways ports got at most one early copy each (the first flit's);
  // later flits found them busy (slow acks) and skipped.
  EXPECT_LE(h.delivered(Port::kNorth), 3u);
}

TEST(SpecMeshRouterUnitTest, LocalEjectionStillExact) {
  RouterHarness<SpecMeshRouter> h(kWestIn, 0, /*fwd_header=*/400);
  // src (0,1) -> dest (1,1) = router 4 itself: valid arrival, local only.
  const Packet& pkt = h.make_packet(3, DestSet::single(4), 5);
  h.stream(pkt);
  h.sched.run();
  EXPECT_EQ(h.delivered(Port::kLocal), 5u);
}

}  // namespace
}  // namespace specnoc::mesh
