# Empty compiler generated dependencies file for specnoc_mesh.
# This may be replaced when dependencies are built.
