file(REMOVE_RECURSE
  "CMakeFiles/bench_seed_sensitivity.dir/bench_seed_sensitivity.cpp.o"
  "CMakeFiles/bench_seed_sensitivity.dir/bench_seed_sensitivity.cpp.o.d"
  "bench_seed_sensitivity"
  "bench_seed_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
