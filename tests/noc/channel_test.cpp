#include "noc/channel.h"

#include <gtest/gtest.h>

#include "../support/test_nodes.h"
#include "sim/scheduler.h"

namespace specnoc::noc {
namespace {

using specnoc::testing::DriverEndpoint;
using specnoc::testing::RecordingEndpoint;

TEST(ChannelTest, DeliversAfterForwardDelay) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  DriverEndpoint up(sched, hooks);
  RecordingEndpoint down(sched, hooks, /*ack_delay=*/0);
  Channel ch(sched, hooks, {.delay_fwd = 120, .delay_ack = 80, .length = 900},
             "ch");
  ch.connect(up, 0, down, 0);

  EXPECT_TRUE(ch.free());
  up.send(0, make_flit(pkt, 0));
  EXPECT_FALSE(ch.free());
  sched.run();
  ASSERT_EQ(down.deliveries.size(), 1u);
  EXPECT_EQ(down.deliveries[0].when, 120);
  EXPECT_EQ(down.deliveries[0].flit.packet, &pkt);
}

TEST(ChannelTest, AckFreesChannelAfterAckDelay) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  DriverEndpoint up(sched, hooks);
  RecordingEndpoint down(sched, hooks, /*ack_delay=*/50);
  Channel ch(sched, hooks, {.delay_fwd = 100, .delay_ack = 70, .length = 0},
             "ch");
  ch.connect(up, 0, down, 0);

  up.send(0, make_flit(pkt, 0));
  sched.run();
  // deliver @100, downstream ack @150, ack wire 70 -> upstream free @220.
  ASSERT_EQ(up.ack_times.size(), 1u);
  EXPECT_EQ(up.ack_times[0].second, 220);
  EXPECT_TRUE(ch.free());
}

TEST(ChannelTest, BackToBackTransactions) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  DriverEndpoint up(sched, hooks);
  RecordingEndpoint down(sched, hooks, /*ack_delay=*/0);
  Channel ch(sched, hooks, {.delay_fwd = 10, .delay_ack = 10, .length = 0},
             "ch");
  ch.connect(up, 0, down, 0);

  std::uint32_t next_seq = 1;
  up.on_ack = [&](std::uint32_t port) {
    if (next_seq < 3) {
      up.send(port, make_flit(pkt, next_seq++));
    }
  };
  up.send(0, make_flit(pkt, 0));
  sched.run();
  ASSERT_EQ(down.deliveries.size(), 3u);
  // Cycle: fwd 10 + ack 0 + ack wire 10 = 20 between sends; arrivals at
  // 10, 30, 50.
  EXPECT_EQ(down.deliveries[0].when, 10);
  EXPECT_EQ(down.deliveries[1].when, 30);
  EXPECT_EQ(down.deliveries[2].when, 50);
}

TEST(ChannelTest, CountsFlitsCarried) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  DriverEndpoint up(sched, hooks);
  RecordingEndpoint down(sched, hooks, 0);
  Channel ch(sched, hooks, {.delay_fwd = 1, .delay_ack = 1, .length = 0},
             "ch");
  ch.connect(up, 0, down, 0);

  std::uint32_t next_seq = 1;
  up.on_ack = [&](std::uint32_t port) {
    if (next_seq < 5) up.send(port, make_flit(pkt, next_seq++));
  };
  up.send(0, make_flit(pkt, 0));
  sched.run();
  EXPECT_EQ(ch.flits_carried(), 5u);
}

TEST(PipelinedChannelTest, CapacityTwoAcksUpstreamBeforeNodeAck) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  DriverEndpoint up(sched, hooks);
  RecordingEndpoint down(sched, hooks, /*ack_delay=*/1000);  // slow node
  Channel ch(sched, hooks,
             {.delay_fwd = 10, .delay_ack = 10, .length = 0, .capacity = 2},
             "ch");
  ch.connect(up, 0, down, 0);

  up.send(0, make_flit(pkt, 0));
  sched.run_until(100);
  // First FIFO stage freed immediately: upstream ack at +10, long before
  // the slow node acks (at ~1020).
  ASSERT_EQ(up.ack_times.size(), 1u);
  EXPECT_EQ(up.ack_times[0].second, 10);
  EXPECT_EQ(ch.occupancy(), 1u);
  sched.run();
}

TEST(PipelinedChannelTest, FullPipeDefersUpstreamAck) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  DriverEndpoint up(sched, hooks);
  RecordingEndpoint down(sched, hooks, /*ack_delay=*/500);
  Channel ch(sched, hooks,
             {.delay_fwd = 10, .delay_ack = 10, .length = 0, .capacity = 2},
             "ch");
  ch.connect(up, 0, down, 0);

  std::uint32_t next_seq = 1;
  up.on_ack = [&](std::uint32_t port) {
    if (next_seq < 3) up.send(port, make_flit(pkt, next_seq++));
  };
  up.send(0, make_flit(pkt, 0));
  sched.run();
  // All three flits delivered, in order, despite the slow consumer.
  ASSERT_EQ(down.deliveries.size(), 3u);
  EXPECT_EQ(down.deliveries[0].flit.seq, 0u);
  EXPECT_EQ(down.deliveries[1].flit.seq, 1u);
  EXPECT_EQ(down.deliveries[2].flit.seq, 2u);
  // Flit 1 delivered only after the node acked flit 0 (~520);
  // flit 2's send was deferred until a slot freed.
  EXPECT_GE(down.deliveries[1].when, 510);
  EXPECT_EQ(ch.flits_carried(), 3u);
  EXPECT_TRUE(ch.free());
  EXPECT_EQ(ch.occupancy(), 0u);
}

TEST(PipelinedChannelTest, CapacityOneMatchesPlainWireTiming) {
  // capacity=1 must behave exactly like the unpipelined channel: upstream
  // ack only after the downstream node disposes of the flit.
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  DriverEndpoint up(sched, hooks);
  RecordingEndpoint down(sched, hooks, /*ack_delay=*/50);
  Channel ch(sched, hooks,
             {.delay_fwd = 100, .delay_ack = 70, .length = 0, .capacity = 1},
             "ch");
  ch.connect(up, 0, down, 0);
  up.send(0, make_flit(pkt, 0));
  sched.run();
  ASSERT_EQ(up.ack_times.size(), 1u);
  EXPECT_EQ(up.ack_times[0].second, 220);  // 100 + 50 + 70
}

TEST(ChannelTest, ZeroDelayChannelStillHandshakes) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  DriverEndpoint up(sched, hooks);
  RecordingEndpoint down(sched, hooks, 0);
  Channel ch(sched, hooks, {.delay_fwd = 0, .delay_ack = 0, .length = 0},
             "ch");
  ch.connect(up, 0, down, 0);
  up.send(0, make_flit(pkt, 0));
  sched.run();
  EXPECT_EQ(down.deliveries.size(), 1u);
  EXPECT_EQ(up.ack_times.size(), 1u);
  EXPECT_TRUE(ch.free());
}

}  // namespace
}  // namespace specnoc::noc
