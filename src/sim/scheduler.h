// Discrete-event simulation kernel.
//
// A single-threaded scheduler ordered by (time, insertion sequence). The
// sequence tie-breaker makes runs bit-reproducible: two events at the same
// picosecond always fire in the order they were scheduled, which matters for
// arbitration fairness in the fanin nodes.
//
// The pending set is a hierarchical bucket queue (bucket_queue.h): O(1)
// schedule/pop for the short-delay handshake events that dominate the
// simulator, an overflow heap for far-future timers, and zero heap
// allocations per event — callbacks are sim::InplaceEvent (event.h), whose
// captures must fit 48 bytes of inline storage by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <utility>

#include "sim/bucket_queue.h"
#include "sim/event.h"
#include "util/contract.h"
#include "util/units.h"

namespace specnoc::sim {

/// Callback invoked when an event fires. Move-only, fixed-capacity inline
/// storage — oversized captures are a compile error, not a heap allocation.
using EventFn = InplaceEvent;

/// A deterministic discrete-event scheduler with picosecond resolution.
class Scheduler {
 public:
  /// next_time() when the queue is empty: later than any real event.
  static constexpr TimePs kIdleTime = std::numeric_limits<TimePs>::max();

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.
  TimePs now() const { return now_; }

  /// Schedules `fn` to run `delay` picoseconds from now (delay >= 0).
  /// The callable is constructed directly into the kernel's event slab —
  /// its captures must fit InplaceEvent's inline storage (compile error
  /// otherwise; see event.h).
  template <typename F>
  void schedule(TimePs delay, F&& fn) {
    SPECNOC_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  template <typename F>
  void schedule_at(TimePs at, F&& fn) {
    SPECNOC_EXPECTS(at >= now_);
    if constexpr (std::is_same_v<std::decay_t<F>, InplaceEvent>) {
      SPECNOC_EXPECTS(static_cast<bool>(fn));
    }
    queue_.push(at, std::forward<F>(fn));
  }

  /// Observation-only callback fired from step() before the first event at
  /// or after each epoch boundary executes (boundaries are the multiples of
  /// the configured epoch length). The argument is the start time of the
  /// epoch being entered; everything executed so far belongs to earlier
  /// epochs. The hook must not schedule events or otherwise touch the
  /// simulation — it exists for delta sampling (stats::TelemetrySampler),
  /// and enabling it changes no simulated byte: the run's event sequence is
  /// identical with and without a hook installed.
  using EpochHook = std::function<void(TimePs epoch_start)>;

  /// Installs the epoch hook. `epoch_ps` must be > 0; the next boundary is
  /// the first multiple of `epoch_ps` strictly after now().
  void set_epoch_hook(TimePs epoch_ps, EpochHook hook);
  void clear_epoch_hook();

  /// Runs the earliest pending event. Returns false if none are pending.
  bool step() {
    if (queue_.empty()) return false;
    const BucketQueue::PopRef ref = queue_.pop();
    SPECNOC_ASSERT(ref.time >= now_);
    if (ref.time >= epoch_next_) cross_epoch(ref.time);
    now_ = ref.time;
    ++executed_;
    // Fire in place: the chunked slab keeps the entry's address stable
    // while the handler schedules new events; recycle only afterwards.
    queue_.invoke_and_dispose(ref);
    queue_.recycle(ref);
    return true;
  }

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with time <= `t`, then advances the clock to exactly `t`.
  void run_until(TimePs t);

  /// Pre-sizes internal storage for `events` concurrently pending events
  /// (optional; the slab grows on demand and is reused thereafter).
  void reserve(std::size_t events) { queue_.reserve(events); }

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Pending events parked in the far-future overflow heap (telemetry: a
  /// growing overflow tier means the O(1) near window is being outrun).
  std::size_t overflow_pending() const { return queue_.overflow_size(); }

  /// Timestamp of the earliest pending event, or kIdleTime when none are
  /// pending (used by the partitioned scheduler's window computation).
  TimePs next_time() const {
    return queue_.empty() ? kIdleTime : queue_.min_time();
  }

  /// Total number of events executed so far (for kernel benchmarks).
  std::uint64_t executed() const { return executed_; }

 private:
  /// Cold path of the epoch check in step(): advances epoch_next_ past `t`
  /// and fires the hook once with the largest crossed boundary. Out of line
  /// so the hot path pays one predictable compare.
  void cross_epoch(TimePs t);

  TimePs now_ = 0;
  std::uint64_t executed_ = 0;
  /// kIdleTime when no hook is installed, so the step() check is one
  /// always-false compare on unsampled runs.
  TimePs epoch_next_ = kIdleTime;
  TimePs epoch_ps_ = 0;
  EpochHook epoch_hook_;
  BucketQueue queue_;
};

}  // namespace specnoc::sim
