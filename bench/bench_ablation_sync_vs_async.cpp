// Extension ablation — asynchronous vs synchronous switch implementations.
//
// The paper's conclusion lists extending local speculation to synchronous
// NoCs as future work, and argues throughout that the "sub-cycle" operation
// of asynchronous broadcast/throttling is what makes speculation cheap. This
// harness quantifies that: the same OptHybridSpeculative (and Baseline)
// networks are rebuilt with every switch-internal delay quantized to a
// clock edge (Section "clock_period" in core::NetworkConfig) and compared
// against the self-timed original.
//
// Expected shape: the asynchronous network's zero-ish-load latency and
// saturation beat every clocked variant, and the *benefit of speculation
// shrinks* as the clock coarsens — a 52 ps speculative root still costs a
// full cycle in a clocked switch.
#include <vector>

#include "bench_common.h"
#include "stats/experiment.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_ablation_sync_vs_async",
      "Async vs synchronous switch implementations.");
  const TimePs periods[] = {0, 400, 600, 800};
  const auto bench = traffic::BenchmarkId::kUniformRandom;

  Table table({"Clock", "Arch", "Saturation (flits/ns/src)",
               "Latency @25% (ns)", "p95 (ns)"});
  double lat_nonspec = 0.0, lat_hybrid = 0.0;
  Table spec_benefit({"Clock", "OptNonSpec lat (ns)", "OptHybrid lat (ns)",
                      "Speculation benefit"});

  for (const TimePs period : periods) {
    core::NetworkConfig cfg;
    cfg.clock_period = period;
    stats::ExperimentRunner runner(cfg, opts.seed);
    const std::string clock_label =
        period == 0 ? "async" : std::to_string(period) + " ps";

    for (const auto arch : {core::Architecture::kBaseline,
                            core::Architecture::kOptHybridSpeculative}) {
      const auto& sat = runner.saturation(arch, bench);
      const auto lat = runner.latency_at_fraction(arch, bench);
      table.add_row({clock_label, core::to_string(arch),
                     cell(sat.delivered_flits_per_ns, 2),
                     cell(lat.mean_latency_ns, 2),
                     cell(lat.p95_latency_ns, 2)});
    }

    lat_nonspec =
        runner.latency_at_fraction(core::Architecture::kOptNonSpeculative,
                                   bench)
            .mean_latency_ns;
    lat_hybrid =
        runner.latency_at_fraction(core::Architecture::kOptHybridSpeculative,
                                   bench)
            .mean_latency_ns;
    spec_benefit.add_row({clock_label, cell(lat_nonspec, 2),
                          cell(lat_hybrid, 2),
                          percent_cell(lat_hybrid / lat_nonspec - 1.0)});
  }

  specnoc::bench::emit(table, "Async vs synchronous switch implementations",
                       opts);
  specnoc::bench::emit(
      spec_benefit,
      "Does local speculation survive clocking? (negative = still helps)",
      opts);
  specnoc::bench::note(
      "The asynchronous design exploits sub-cycle node latencies (52-299 "
      "ps); a clocked switch pays a full period per stage regardless, so "
      "both absolute performance and the relative value of fast "
      "speculative nodes degrade with the clock.");
  return 0;
}
