#include "mot/topology.h"

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::mot {

MotTopology::MotTopology(std::uint32_t n) : n_(n) {
  if (n < 2 || n > kMaxRadix || !is_pow2(n)) {
    throw ConfigError("MoT radix must be a power of two in [2, 64], got " +
                      std::to_string(n));
  }
  levels_ = log2_exact(n);
}

std::uint32_t MotTopology::heap_id(std::uint32_t level, std::uint32_t index) {
  SPECNOC_EXPECTS(index < (1u << level));
  return (1u << level) - 1u + index;
}

std::pair<std::uint32_t, std::uint32_t> MotTopology::from_heap_id(
    std::uint32_t id) {
  std::uint32_t level = 0;
  while ((2u << level) - 1u <= id) {
    ++level;
  }
  return {level, id - ((1u << level) - 1u)};
}

std::uint32_t MotTopology::nodes_at_level(std::uint32_t level) const {
  SPECNOC_EXPECTS(level < levels_);
  return 1u << level;
}

std::pair<std::uint32_t, std::uint32_t> MotTopology::fanout_span(
    std::uint32_t level, std::uint32_t index) const {
  SPECNOC_EXPECTS(level < levels_);
  SPECNOC_EXPECTS(index < nodes_at_level(level));
  const std::uint32_t width = n_ >> level;
  return {index * width, (index + 1) * width};
}

noc::DestMask MotTopology::span_mask(std::uint32_t level,
                                     std::uint32_t index) const {
  const auto [lo, hi] = fanout_span(level, index);
  const std::uint32_t width = hi - lo;
  const noc::DestMask ones =
      width >= 64 ? ~noc::DestMask{0} : ((noc::DestMask{1} << width) - 1);
  return ones << lo;
}

noc::DestMask MotTopology::subtree_mask(std::uint32_t level,
                                        std::uint32_t index,
                                        std::uint32_t child) const {
  SPECNOC_EXPECTS(child < 2);
  const auto [lo, hi] = fanout_span(level, index);
  const std::uint32_t half = (hi - lo) / 2;
  SPECNOC_ASSERT(half >= 1);
  const noc::DestMask ones = (half >= 64) ? ~noc::DestMask{0}
                                          : ((noc::DestMask{1} << half) - 1);
  return ones << (lo + child * half);
}

std::uint32_t MotTopology::route_bit(std::uint32_t dest,
                                     std::uint32_t level) const {
  SPECNOC_EXPECTS(dest < n_);
  SPECNOC_EXPECTS(level < levels_);
  return (dest >> (levels_ - 1 - level)) & 1u;
}

std::uint32_t MotTopology::path_index(std::uint32_t dest,
                                      std::uint32_t level) const {
  SPECNOC_EXPECTS(dest < n_);
  SPECNOC_EXPECTS(level < levels_);
  return dest >> (levels_ - level);
}

std::uint32_t MotTopology::leaf_dest(std::uint32_t leaf_index,
                                     std::uint32_t out_port) const {
  SPECNOC_EXPECTS(leaf_index < nodes_at_level(levels_ - 1));
  SPECNOC_EXPECTS(out_port < 2);
  return leaf_index * 2 + out_port;
}

std::uint32_t MotTopology::fanin_leaf_index(std::uint32_t src) const {
  SPECNOC_EXPECTS(src < n_);
  return src / 2;
}

std::uint32_t MotTopology::fanin_leaf_port(std::uint32_t src) const {
  SPECNOC_EXPECTS(src < n_);
  return src % 2;
}

}  // namespace specnoc::mot
