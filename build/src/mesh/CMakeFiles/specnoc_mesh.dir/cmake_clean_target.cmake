file(REMOVE_RECURSE
  "libspecnoc_mesh.a"
)
