#include "mot/layout.h"

#include <cmath>

#include "util/contract.h"

namespace specnoc::mot {

HTreeLayout::HTreeLayout(const MotTopology& topology, LayoutConfig config)
    : topology_(topology), config_(config) {
  SPECNOC_EXPECTS(config.chip_side_um > 0);
  SPECNOC_EXPECTS(config.wire_delay_ps_per_um >= 0);
}

LengthUm HTreeLayout::interface_link_length() const {
  return config_.interface_link_um;
}

LengthUm HTreeLayout::tree_link_length(std::uint32_t level) const {
  SPECNOC_EXPECTS(level + 1 < topology_.levels());
  // Root-level links span a quarter of the die; each level halves.
  return config_.chip_side_um / static_cast<double>(4u << level);
}

LengthUm HTreeLayout::middle_link_length() const {
  // Fanout leaves sit on one side of the die, fanin leaves on the other.
  return config_.chip_side_um / 2.0;
}

noc::ChannelParams HTreeLayout::channel_params(LengthUm length) const {
  noc::ChannelParams params;
  params.length = length;
  const double delay = length * config_.wire_delay_ps_per_um;
  params.delay_fwd = static_cast<TimePs>(std::llround(delay));
  params.delay_ack = params.delay_fwd;
  return params;
}

noc::ChannelParams HTreeLayout::interface_channel() const {
  return channel_params(interface_link_length());
}

noc::ChannelParams HTreeLayout::tree_channel(std::uint32_t level) const {
  return channel_params(tree_link_length(level));
}

noc::ChannelParams HTreeLayout::middle_channel() const {
  return channel_params(middle_link_length());
}

}  // namespace specnoc::mot
