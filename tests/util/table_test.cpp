#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace specnoc {
namespace {

TEST(TableTest, PrintAlignsColumns) {
  Table t({"Scheme", "GF/s"});
  t.add_row({"Baseline", "1.26"});
  t.add_row({"OptHybridSpeculative", "1.60"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Scheme"), std::string::npos);
  EXPECT_NE(out.find("OptHybridSpeculative"), std::string::npos);
  EXPECT_NE(out.find("1.60"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, RowArityAccessors) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.row(0)[2], "3");
}

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(cell(1.2649, 2), "1.26");
  EXPECT_EQ(cell(12.55, 1), "12.6");
  EXPECT_EQ(cell(static_cast<long long>(42)), "42");
}

TEST(TableTest, PercentCell) {
  EXPECT_EQ(percent_cell(0.178), "+17.8%");
  EXPECT_EQ(percent_cell(-0.391), "-39.1%");
}

}  // namespace
}  // namespace specnoc
