// Shared helpers for the experiment harnesses.
//
// Every harness prints (a) the measured table in the paper's layout and
// (b) the paper's published values for side-by-side comparison, then key
// derived ratios. Absolute units differ from the paper's testbed (our
// substrate is a calibrated simulator); the claims under reproduction are
// the relative numbers.
//
// Grids run through stats::ExperimentRunner's batch APIs on a work-stealing
// pool (--jobs N, default: hardware concurrency). Results are aggregated in
// spec order, so the tables are byte-identical for any thread count;
// --jobs 1 preserves the exact serial code path.
//
// Harnesses that pass Sharding::kSupported to parse_args additionally
// accept the sharded-sweep flags (stats/sweep.h): --shard i/K --out writes
// this worker's cells to a JSONL shard file, and --from renders the normal
// tables from a merged shard file — byte-identical to a --jobs 1 run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/registry.h"
#include "noc/partition.h"
#include "sim/parallel_runner.h"
#include "sim/shard.h"
#include "stats/experiment.h"
#include "stats/serialization.h"
#include "stats/sweep.h"
#include "stats/telemetry.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace specnoc::bench {

/// Routes every emitted table to stdout plus the optional --csv / --json
/// mirrors. The mirror files are opened (truncating) once per process and
/// kept open, so a re-run never leaves stale sections from a previous
/// invocation behind — the old per-emit append-mode open did.
class OutputSink {
 public:
  void mirror_csv(const std::string& path) {
    csv_.open(path, std::ios::trunc);
    if (!csv_) throw ConfigError("cannot write CSV file '" + path + "'");
  }

  void mirror_jsonl(const std::string& path) {
    jsonl_.open(path, std::ios::trunc);
    if (!jsonl_) throw ConfigError("cannot write JSONL file '" + path + "'");
  }

  void table(const Table& table, const std::string& title) {
    std::cout << "\n== " << title << " ==\n";
    table.print(std::cout);
    if (csv_.is_open()) {
      csv_ << "# " << title << "\n";
      table.write_csv(csv_);
      csv_.flush();
    }
    if (jsonl_.is_open()) {
      util::Json json = util::Json::object();
      json.set("record", "table");
      json.set("title", title);
      util::Json header = util::Json::array();
      for (const auto& column : table.header()) header.push_back(column);
      json.set("header", std::move(header));
      util::Json rows = util::Json::array();
      for (std::size_t i = 0; i < table.num_rows(); ++i) {
        util::Json row = util::Json::array();
        for (const auto& value : table.row(i)) row.push_back(value);
        rows.push_back(std::move(row));
      }
      json.set("rows", std::move(rows));
      jsonl_ << util::json_write(json) << "\n";
      jsonl_.flush();
    }
  }

  void note(const std::string& text) { std::cout << text << "\n"; }

 private:
  std::ofstream csv_;
  std::ofstream jsonl_;
};

/// Whether a harness wires up the sharded-sweep worker/render flags.
enum class Sharding { kNone, kSupported };

struct HarnessOptions {
  std::string tool;       ///< harness name (shard-file manifest identity)
  std::uint64_t seed = 42;
  /// Worker threads for experiment grids; 0 = hardware concurrency,
  /// 1 = the exact serial code path.
  unsigned jobs = 0;
  /// Print the per-run telemetry table (wall ms / events / attempts) —
  /// kept off the default output because wall times are nondeterministic.
  bool telemetry = false;
  std::string csv_path;   ///< --csv: mirror tables to a CSV file
  std::string json_path;  ///< --json: mirror tables to a JSONL file
  sim::ShardRef shard;    ///< --shard i/K (worker mode)
  std::string out_path;   ///< --out (worker mode)
  std::string from_path;  ///< --from (render mode)
  bool anchors_only = false;   ///< --anchors-only (worker mode, phase 1)
  std::string anchors_from;    ///< --anchors-from (worker mode, phase 2)
  /// --metrics: collect a per-run MetricsSnapshot and write them all to
  /// this JSON file. Observational only — tables are byte-identical with
  /// and without it.
  std::string metrics_path;
  /// --telemetry-epoch: sample epoch-delta time series every this many
  /// simulated ps (flag takes ns; 0 = off). Observational only — enabling
  /// sampling changes no simulated byte.
  TimePs telemetry_epoch = 0;
  /// --telemetry-ring: epochs retained per run (flight-recorder depth).
  std::uint64_t telemetry_ring = 4096;
  /// --telemetry-out: live NDJSON frame stream ("-" = stdout), one frame
  /// per completed run as the sweep executes. Opened in parse_args; the
  /// end frame is emitted when the last HarnessOptions copy goes away.
  std::shared_ptr<stats::TelemetryStream> telemetry_stream;
  /// --progress: live progress lines to stderr every this many ms.
  unsigned progress_ms = 0;
  /// --sim-threads: scheduler lanes/worker threads for the partitioned
  /// kernel inside each simulation (distinct from --jobs, which
  /// parallelizes across grid cells). 1 = the exact sequential path;
  /// results are identical for any count (DESIGN.md §9).
  unsigned sim_threads = 1;
  /// --partition: static partition strategy for the partitioned kernel.
  noc::PartitionStrategy partition = noc::PartitionStrategy::kAuto;
  std::shared_ptr<OutputSink> sink = std::make_shared<OutputSink>();

  /// Applies the kernel flags to a harness's NetworkConfig.
  void apply_kernel(core::NetworkConfig& cfg) const {
    cfg.sim_threads = sim_threads;
    cfg.partition = partition;
  }

  stats::BatchOptions batch() const {
    stats::BatchOptions options;
    options.jobs = jobs;
    // A live frame stream wants per-run counters even when --metrics was
    // not given; collection is observational either way.
    options.collect_metrics =
        !metrics_path.empty() || telemetry_stream != nullptr;
    options.progress_interval_ms = progress_ms;
    if (progress_ms > 0) options.progress_label = tool;
    options.telemetry.epoch_ps = telemetry_epoch;
    options.telemetry.ring_capacity = telemetry_ring;
    return options;
  }

  stats::SweepMode sweep_mode() const {
    if (!from_path.empty()) return stats::SweepMode::kRender;
    if (!out_path.empty()) return stats::SweepMode::kWorker;
    return stats::SweepMode::kRun;
  }

  stats::SweepOptions sweep() const {
    stats::SweepOptions options;
    options.mode = sweep_mode();
    options.tool = tool;
    options.seed = seed;
    options.batch = batch();
    options.shard = shard;
    options.out_path = out_path;
    options.from_path = from_path;
    options.anchors_only = anchors_only;
    options.anchors_from = anchors_from;
    options.telemetry_stream = telemetry_stream.get();
    return options;
  }
};

/// Declarative argument parsing for all harnesses: the standard flag set
/// (--seed, --jobs, --csv, --json, --telemetry, and — when `sharding` is
/// kSupported — --shard/--out/--from), plus any harness-specific flags
/// registered by `extra`. Bad usage exits 2 with the message and the
/// generated usage text; --help exits 0.
inline HarnessOptions parse_args(
    int argc, char** argv, const std::string& tool, const std::string& summary,
    Sharding sharding = Sharding::kNone,
    const std::function<void(util::CliParser&)>& extra = {}) {
  HarnessOptions opts;
  opts.tool = tool;
  bool shard_given = false;

  util::CliParser cli(tool, summary);
  cli.add_uint64("--seed", &opts.seed, "experiment seed");
  cli.add_unsigned("--jobs", &opts.jobs,
                   "grid worker threads (0: hardware concurrency, 1: exact "
                   "serial path); tables are byte-identical for any N");
  cli.add_string("--csv", &opts.csv_path, "also mirror tables to this CSV");
  cli.add_string("--json", &opts.json_path,
                 "also mirror tables to this JSONL file");
  cli.add_flag("--telemetry", &opts.telemetry,
               "also print per-run wall time / events / attempts");
  cli.add_string("--metrics", &opts.metrics_path,
                 "collect per-run speculation/stall metrics and write them "
                 "to this JSON file (observational; tables are unchanged)");
  cli.add_custom("--telemetry-epoch", "NS",
                 "sample an epoch-delta time series every NS simulated ns; "
                 "the series rides each run's metrics (observational — "
                 "results are byte-identical with sampling on)",
                 [&opts](const std::string& value) {
                   opts.telemetry_epoch =
                       util::parse_i64(value, "--telemetry-epoch") * 1000;
                 });
  cli.add_uint64("--telemetry-ring", &opts.telemetry_ring,
                 "epochs retained per run (flight-recorder depth)");
  std::string telemetry_out;
  cli.add_string("--telemetry-out", &telemetry_out,
                 "stream one NDJSON telemetry frame per completed run to "
                 "this file as the sweep executes ('-' = stdout); tail with "
                 "sweep_merge --follow");
  cli.add_unsigned("--progress", &opts.progress_ms,
                   "live progress lines to stderr every N ms (0: off)");
  cli.add_unsigned("--sim-threads", &opts.sim_threads,
                   "partitioned-kernel worker threads inside each simulation "
                   "(1: exact sequential path; results identical for any N)");
  bool list_arch = false;
  cli.add_flag("--list-arch", &list_arch,
               "list the registered network architectures and exit (the "
               "canonical set; harnesses may register design points later)");
  cli.add_custom("--partition", "NAME",
                 "partition strategy: auto | none | tree | quadrant | rows",
                 [&opts](const std::string& value) {
                   opts.partition = noc::partition_strategy_from_string(value);
                 });
  if (sharding == Sharding::kSupported) {
    cli.add_custom("--shard", "i/K",
                   "worker mode: run only shard i of K (requires --out)",
                   [&opts, &shard_given](const std::string& value) {
                     opts.shard = sim::ShardRef::parse(value);
                     shard_given = true;
                   });
    cli.add_string("--out", &opts.out_path,
                   "worker mode: write this shard's results to a JSONL file");
    cli.add_string("--from", &opts.from_path,
                   "render tables from a merged shard file (see sweep_merge) "
                   "instead of simulating");
    cli.add_flag("--anchors-only", &opts.anchors_only,
                 "worker mode, phase 1: run only this shard's anchor cells "
                 "and exit (merge the anchor shards, then run phase 2 with "
                 "--anchors-from)");
    cli.add_string("--anchors-from", &opts.anchors_from,
                   "worker mode, phase 2: load anchor outcomes from this "
                   "merged shard file instead of simulating them");
  }
  if (extra) extra(cli);

  try {
    if (!cli.parse(argc, argv)) std::exit(0);
    if (list_arch) {
      for (const auto& name : core::ArchitectureRegistry::global().names()) {
        std::printf("%s\n", name.c_str());
      }
      std::exit(0);
    }
    if (shard_given && opts.out_path.empty()) {
      throw util::UsageError("--shard requires --out <shard.jsonl>");
    }
    if (!opts.from_path.empty() &&
        (shard_given || !opts.out_path.empty())) {
      throw util::UsageError("--from cannot be combined with --shard/--out");
    }
    if ((opts.anchors_only || !opts.anchors_from.empty()) &&
        opts.out_path.empty()) {
      throw util::UsageError(
          "--anchors-only/--anchors-from require worker mode (--shard/--out)");
    }
    if (opts.anchors_only && !opts.anchors_from.empty()) {
      throw util::UsageError(
          "--anchors-only cannot be combined with --anchors-from");
    }
    if (!opts.csv_path.empty()) opts.sink->mirror_csv(opts.csv_path);
    if (!opts.json_path.empty()) opts.sink->mirror_jsonl(opts.json_path);
    if (!telemetry_out.empty()) {
      // The custom deleter bookends the stream: the start frame is emitted
      // here, the end frame when the last HarnessOptions copy releases the
      // stream (i.e. at harness exit, success or failure).
      auto* stream = new stats::TelemetryStream(telemetry_out);
      opts.telemetry_stream = std::shared_ptr<stats::TelemetryStream>(
          stream, [tool](stats::TelemetryStream* s) {
            util::Json body = util::Json::object();
            body.set("tool", tool);
            s->emit(stats::TelemetryFrameKind::kEnd, std::move(body));
            delete s;
          });
      util::Json body = util::Json::object();
      body.set("tool", tool);
      body.set("seed", opts.seed);
      if (opts.telemetry_epoch > 0) {
        body.set("epoch_ps", static_cast<std::uint64_t>(opts.telemetry_epoch));
      }
      opts.telemetry_stream->emit(stats::TelemetryFrameKind::kStart,
                                  std::move(body));
    }
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "%s: %s\n", tool.c_str(), error.what());
    std::fputs(cli.usage().c_str(), stderr);
    std::exit(2);
  }
  return opts;
}

/// Builds the harness's sweep session. Sweep configuration errors — a
/// --from file from another tool or seed, an --out file belonging to a
/// different sweep — are user errors, reported cleanly as exit 2 rather
/// than escaping main as exceptions.
inline stats::ShardedSweep make_sweep(const HarnessOptions& opts) {
  try {
    return stats::ShardedSweep(opts.sweep());
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "%s: %s\n", opts.tool.c_str(), error.what());
    std::exit(2);
  }
}

inline void emit(const Table& table, const std::string& title,
                 const HarnessOptions& opts) {
  opts.sink->table(table, title);
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

/// Accumulates per-run telemetry rows; emitted only under --telemetry.
/// A failed run shows its (truncated) error in place of numbers, so one bad
/// cell is visible without poisoning the batch.
class TelemetryTable {
 public:
  void add(const std::string& label, const sim::RunOutcome& run) {
    rows_.push_back({label, run});
    events_total_ += run.telemetry.events_executed;
    wall_total_ms_ += run.telemetry.wall_ms;
    if (!run.ok) ++failures_;
  }

  template <typename Outcome>
  void add_all(const std::vector<Outcome>& outcomes) {
    for (const auto& outcome : outcomes) {
      add(std::string(core::to_string(outcome.spec.arch)) + "/" +
              traffic::to_string(outcome.spec.bench),
          outcome.run);
    }
  }

  std::uint64_t failures() const { return failures_; }

  void emit(const std::string& title, const HarnessOptions& opts) const {
    if (!opts.telemetry) return;
    Table table({"Run", "Status", "Attempts", "Events", "Wall (ms)"});
    for (const auto& row : rows_) {
      if (row.run.ok) {
        table.add_row({row.label, "ok",
                       std::to_string(row.run.telemetry.attempts),
                       std::to_string(row.run.telemetry.events_executed),
                       cell(row.run.telemetry.wall_ms, 1)});
      } else {
        table.add_row({row.label, "FAIL: " + row.run.error.substr(0, 40),
                       std::to_string(row.run.telemetry.attempts), "-", "-"});
      }
    }
    table.add_row({"total",
                   failures_ == 0 ? "ok"
                                  : std::to_string(failures_) + " failed",
                   "-", std::to_string(events_total_),
                   cell(wall_total_ms_, 1)});
    bench::emit(table, title + " (per-run telemetry)", opts);
  }

 private:
  struct Row {
    std::string label;
    sim::RunOutcome run;
  };
  std::vector<Row> rows_;
  std::uint64_t events_total_ = 0;
  double wall_total_ms_ = 0.0;
  std::uint64_t failures_ = 0;
};

/// Accumulates the MetricsSnapshots collected under --metrics and writes
/// them as one JSON document (see EXPERIMENTS.md for the schema). Inactive
/// — add_all() and write() are no-ops — unless --metrics was given.
class MetricsReport {
 public:
  template <typename Outcome>
  void add_all(const std::string& grid,
               const std::vector<Outcome>& outcomes) {
    for (const auto& outcome : outcomes) {
      if (!outcome.metrics.has_value()) continue;
      util::Json entry = util::Json::object();
      entry.set("grid", grid);
      entry.set("key", stats::spec_key(outcome.spec));
      entry.set("metrics", stats::to_json(*outcome.metrics));
      spills_total_ += outcome.metrics->dest_spills;
      spill_bytes_total_ += outcome.metrics->dest_spill_bytes;
      std::uint64_t arena_bytes = 0;
      for (const auto& pool : outcome.metrics->arena) {
        arena_bytes += pool.reserved_bytes;
      }
      if (arena_bytes > arena_bytes_peak_) arena_bytes_peak_ = arena_bytes;
      runs_.push_back(std::move(entry));
    }
  }

  void write(const HarnessOptions& opts) {
    if (opts.metrics_path.empty()) return;
    util::Json doc = util::Json::object();
    doc.set("format", "specnoc-metrics");
    doc.set("schema", std::uint64_t{1});
    doc.set("tool", opts.tool);
    doc.set("seed", opts.seed);
    // Aggregate DestSet heap-spill count: the zero-spill-at-radix-64 claim
    // is checkable from the report alone (exact at --jobs 1, an upper
    // bound under concurrent grids).
    doc.set("dest_spills_total", spills_total_);
    doc.set("dest_spill_bytes_total", spill_bytes_total_);
    // Largest single-run arena footprint (slab reservations, all pools) —
    // the peak simulated-structure memory any one network needed.
    doc.set("arena_bytes_peak", arena_bytes_peak_);
    util::Json runs = util::Json::array();
    for (auto& entry : runs_) runs.push_back(std::move(entry));
    doc.set("runs", std::move(runs));
    std::ofstream out(opts.metrics_path, std::ios::trunc);
    if (!out) {
      throw ConfigError("cannot write metrics file '" + opts.metrics_path +
                        "'");
    }
    out << util::json_write(doc) << "\n";
  }

 private:
  std::vector<util::Json> runs_;
  std::uint64_t spills_total_ = 0;
  std::uint64_t spill_bytes_total_ = 0;
  std::uint64_t arena_bytes_peak_ = 0;
};

}  // namespace specnoc::bench
