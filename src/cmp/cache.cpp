#include "cmp/cache.h"

namespace specnoc::cmp {

PrivateCache::PrivateCache(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways), slots_(std::size_t{sets} * ways) {
  SPECNOC_EXPECTS(sets > 0 && ways > 0);
}

PrivateCache::Way* PrivateCache::find(std::uint64_t line) {
  Way* base = &slots_[(line % sets_) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].state != LineState::kInvalid && base[w].line == line) {
      return &base[w];
    }
  }
  return nullptr;
}

const PrivateCache::Way* PrivateCache::find(std::uint64_t line) const {
  return const_cast<PrivateCache*>(this)->find(line);
}

LineState PrivateCache::state(std::uint64_t line) const {
  const Way* way = find(line);
  return way != nullptr ? way->state : LineState::kInvalid;
}

void PrivateCache::touch(std::uint64_t line) {
  Way* way = find(line);
  SPECNOC_EXPECTS(way != nullptr);
  way->stamp = ++tick_;
}

PrivateCache::Fill PrivateCache::fill(std::uint64_t line, LineState state) {
  SPECNOC_EXPECTS(state != LineState::kInvalid);
  if (Way* way = find(line); way != nullptr) {
    // Upgrade (S -> M grant) or refill: update in place, no eviction.
    way->state = state;
    way->stamp = ++tick_;
    return Fill{};
  }
  Way* base = &slots_[(line % sets_) * ways_];
  Way* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].state == LineState::kInvalid) {
      victim = &base[w];
      break;
    }
    if (base[w].stamp < victim->stamp) victim = &base[w];
  }
  Fill result;
  if (victim->state == LineState::kModified) {
    result.evicted_modified = true;
    result.victim = victim->line;
  }
  victim->line = line;
  victim->state = state;
  victim->stamp = ++tick_;
  return result;
}

bool PrivateCache::invalidate(std::uint64_t line) {
  Way* way = find(line);
  if (way == nullptr) return false;
  const bool was_modified = way->state == LineState::kModified;
  way->state = LineState::kInvalid;
  return was_modified;
}

}  // namespace specnoc::cmp
