// E10 — large-radix scaling of the addressing redesign and the arena
// memory layout.
//
// The DestSet API (DESIGN.md §10) claims the 64-endpoint ceiling fell for
// free: radix <= 64 keeps the single-word inline representation (zero
// allocations on the hot path), and larger grids spill to pooled heap words
// with cost proportional to the words actually touched. The NetworkArena
// (DESIGN.md §11) claims large-radix construction stays affordable: every
// node and channel lives in per-type slabs instead of individual heap
// objects. This harness is the proof for both: it drives backlogged
// saturation at 8x8 through 32x32 (and optionally 64x64) and records, per
// cell,
//   * scheduler events/s (the simulator's throughput figure of merit),
//   * DestSet raw spill allocations (must be 0 for radix <= 64; bounded by
//     the pool high-water mark above that),
//   * the network's arena footprint (slab reservations, all pools),
//   * the process peak RSS (getrusage ru_maxrss; cells run in ascending
//     radix order, so each cell's value is the high-water mark after it),
//   * and, for the partitioned cells at the largest radix, model_speedup:
//     total events / the largest per-worker event share (the
//     machine-independent speedup bound; wall time on a shared builder is
//     not it).
// With --json-out the grid is written as one JSON document — committed as
// BENCH_radix.json at the repo root and refreshed with
// bench/run_radix_bench.sh.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "core/mot_network.h"
#include "noc/dest_set.h"
#include "sim/partitioned_scheduler.h"
#include "stats/recorder.h"
#include "traffic/driver.h"
#include "util/units.h"

using namespace specnoc;
using namespace specnoc::literals;
using specnoc::bench::HarnessOptions;

namespace {

long peak_rss_kb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

struct CellResult {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double delivered_flits_per_ns = 0.0;  ///< per source
  std::uint64_t spill_allocations = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t spill_reuses = 0;
  std::uint64_t arena_reserved_bytes = 0;
  std::uint64_t arena_object_bytes = 0;
  double model_speedup = 0.0;  ///< 0 when the cell ran sequentially
  long peak_rss_kb = 0;
};

/// One backlogged saturation run, windows scaled for a single-core
/// builder (the absolute rates are what matter, not paper windows).
CellResult run_cell(std::uint32_t n, core::Architecture arch,
                    traffic::BenchmarkId bench, std::uint64_t seed,
                    unsigned sim_threads) {
  core::NetworkConfig cfg;
  cfg.n = n;
  cfg.sim_threads = sim_threads;
  core::MotNetwork network(arch, cfg);
  const auto pattern = traffic::make_benchmark(bench, n);
  traffic::DriverConfig driver_cfg;
  driver_cfg.mode = traffic::InjectionMode::kBacklogged;
  driver_cfg.seed = seed;
  traffic::TrafficDriver driver(network, *pattern, driver_cfg);
  stats::TrafficRecorder recorder(network.net().packets());
  network.net().hooks().traffic = &recorder;

  const auto spills_before = noc::DestSet::spill_allocations();
  const auto spill_bytes_before = noc::DestSet::spill_bytes();
  const auto spill_reuses_before = noc::DestSet::spill_reuses();
  const auto start = std::chrono::steady_clock::now();
  driver.start();
  auto& net = network.net();
  net.run_until(100_ns);  // warmup
  recorder.open_window(net.now());
  net.run_until(400_ns);  // measure window end
  recorder.close_window(net.now());
  const auto stop = std::chrono::steady_clock::now();

  CellResult result;
  result.events = net.executed();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.events_per_sec =
      result.wall_ms > 0.0
          ? static_cast<double>(result.events) / (result.wall_ms / 1000.0)
          : 0.0;
  result.delivered_flits_per_ns = recorder.delivered_flits_per_ns(n);
  result.spill_allocations =
      noc::DestSet::spill_allocations() - spills_before;
  result.spill_bytes = noc::DestSet::spill_bytes() - spill_bytes_before;
  result.spill_reuses = noc::DestSet::spill_reuses() - spill_reuses_before;
  result.arena_reserved_bytes = net.arena().total_reserved_bytes();
  result.arena_object_bytes = net.arena().total_bytes();
  if (const sim::PartitionedScheduler* psched = net.partitioned_scheduler();
      psched != nullptr && sim_threads > 1) {
    // Static contiguous lane blocks, as the worker pool assigns them: the
    // largest per-worker event share is the per-window critical path.
    const std::vector<std::uint64_t> lane_events = psched->per_lane_executed();
    const std::uint32_t lanes = psched->lanes();
    std::uint64_t max_share = 0;
    for (std::uint32_t w = 0; w < sim_threads; ++w) {
      const std::uint32_t first = w * lanes / sim_threads;
      const std::uint32_t last = (w + 1) * lanes / sim_threads;
      std::uint64_t share = 0;
      for (std::uint32_t lane = first; lane < last; ++lane) {
        share += lane_events[lane];
      }
      max_share = std::max(max_share, share);
    }
    if (max_share > 0) {
      result.model_speedup =
          static_cast<double>(result.events) / static_cast<double>(max_share);
    }
  }
  result.peak_rss_kb = peak_rss_kb();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  unsigned max_radix = 1024;
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_radix",
      "E10: events/s, arena footprint and peak RSS across radixes 64..1024 "
      "(or 4096) — the cost profile of the multi-word DestSet addressing "
      "and the arena memory layout.",
      specnoc::bench::Sharding::kNone, [&](util::CliParser& cli) {
        cli.add_string("--json-out", &json_out,
                       "write the grid as one JSON document (BENCH_radix "
                       "format) to this path");
        cli.add_unsigned("--max-radix", &max_radix,
                         "largest endpoint count to run (default 1024; "
                         "4096 exercises the full DestSet range)");
      });

  std::vector<std::uint32_t> radixes;
  for (std::uint32_t n = 64; n <= max_radix; n *= 4) radixes.push_back(n);
  // The largest radix also runs under the partitioned kernel: same
  // simulation (byte-identical results), different execution engine.
  const unsigned kPartitionedThreads =
      opts.sim_threads > 1 ? opts.sim_threads : 4;
  constexpr core::Architecture kArch =
      core::Architecture::kOptHybridSpeculative;
  constexpr traffic::BenchmarkId kBenches[] = {
      traffic::BenchmarkId::kUniformRandom,
      traffic::BenchmarkId::kMulticast10};

  Table table({"Endpoints", "Benchmark", "Threads", "Events", "Wall (ms)",
               "Events/s", "Delivered (flits/ns/src)", "DestSet spills",
               "Model speedup", "Arena (MiB)", "Peak RSS (KiB)"});
  util::Json cells = util::Json::array();
  for (const auto n : radixes) {
    std::vector<unsigned> thread_counts = {1};
    if (n == radixes.back()) thread_counts.push_back(kPartitionedThreads);
    for (const auto bench : kBenches) {
      for (const unsigned sim_threads : thread_counts) {
        const auto cell_result =
            run_cell(n, kArch, bench, opts.seed, sim_threads);
        table.add_row(
            {cell(static_cast<long long>(n)), traffic::to_string(bench),
             cell(static_cast<long long>(sim_threads)),
             cell(static_cast<long long>(cell_result.events)),
             cell(cell_result.wall_ms, 1),
             cell(cell_result.events_per_sec, 0),
             cell(cell_result.delivered_flits_per_ns, 3),
             cell(static_cast<long long>(cell_result.spill_allocations)),
             cell(cell_result.model_speedup, 2),
             cell(static_cast<double>(cell_result.arena_reserved_bytes) /
                      (1024.0 * 1024.0),
                  1),
             cell(static_cast<long long>(cell_result.peak_rss_kb))});
        util::Json record = util::Json::object();
        record.set("endpoints", n);
        record.set("arch", core::to_string(kArch));
        record.set("bench", traffic::to_string(bench));
        record.set("sim_threads", sim_threads);
        record.set("events", cell_result.events);
        record.set("wall_ms", cell_result.wall_ms);
        record.set("events_per_sec", cell_result.events_per_sec);
        record.set("delivered_flits_per_ns",
                   cell_result.delivered_flits_per_ns);
        record.set("destset_spill_allocations",
                   cell_result.spill_allocations);
        record.set("destset_spill_bytes", cell_result.spill_bytes);
        record.set("destset_spill_reuses", cell_result.spill_reuses);
        record.set("arena_reserved_bytes", cell_result.arena_reserved_bytes);
        record.set("arena_object_bytes", cell_result.arena_object_bytes);
        if (sim_threads > 1) {
          record.set("model_speedup", cell_result.model_speedup);
        }
        record.set("peak_rss_kb",
                   static_cast<std::uint64_t>(cell_result.peak_rss_kb));
        cells.push_back(std::move(record));
        // The inline-word claim, enforced: radix <= 64 must not allocate.
        if (n <= noc::DestSet::kWordBits &&
            cell_result.spill_allocations != 0) {
          std::fprintf(stderr,
                       "bench_radix: %u endpoints spilled %llu DestSet "
                       "allocations (expected 0)\n",
                       n,
                       static_cast<unsigned long long>(
                           cell_result.spill_allocations));
          return 1;
        }
      }
    }
  }
  // The pooled-spill claim, enforced: with pooling on, a raw allocation
  // happens only when every previously allocated block is live, so the
  // process-wide raw-allocation count can never exceed the high-water mark
  // of simultaneously outstanding blocks. Unbounded raw spills (a leak or
  // a pool bypass) break this immediately.
  if (noc::DestSet::spill_pooling() &&
      noc::DestSet::spill_allocations() > noc::DestSet::spill_high_water()) {
    std::fprintf(
        stderr,
        "bench_radix: %llu raw spill allocations exceed the outstanding "
        "high-water mark %llu — the spill pool is not bounding allocations\n",
        static_cast<unsigned long long>(noc::DestSet::spill_allocations()),
        static_cast<unsigned long long>(noc::DestSet::spill_high_water()));
    return 1;
  }
  specnoc::bench::emit(
      table, "E10: saturation throughput across radix (OptHybridSpeculative)",
      opts);
  specnoc::bench::note(
      "Peak RSS is the process high-water mark; cells run in ascending "
      "radix order so each value is the watermark after that cell. "
      "Model speedup (partitioned cells) is total events over the largest "
      "per-worker share — the machine-independent bound.");

  if (!json_out.empty()) {
    util::Json doc = util::Json::object();
    doc.set("format", "specnoc-bench-radix");
    doc.set("schema", 2);
    doc.set("arch", core::to_string(kArch));
    doc.set("windows", [] {
      util::Json windows = util::Json::object();
      windows.set("warmup_ns", 100);
      windows.set("measure_ns", 300);
      return windows;
    }());
    doc.set("destset_spill_pool", [] {
      util::Json pool = util::Json::object();
      pool.set("pooling", noc::DestSet::spill_pooling());
      pool.set("raw_allocations", noc::DestSet::spill_allocations());
      pool.set("raw_bytes", noc::DestSet::spill_bytes());
      pool.set("reuses", noc::DestSet::spill_reuses());
      pool.set("outstanding_high_water", noc::DestSet::spill_high_water());
      return pool;
    }());
    doc.set("cells", std::move(cells));
    std::ofstream out(json_out);
    out << util::json_write(doc) << "\n";
    if (!out) {
      std::fprintf(stderr, "bench_radix: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
  }
  return 0;
}
