// Speculation-mechanism metrics: typed counters and fixed-bucket histograms
// keyed by (node kind, tree level) and by channel class.
//
// MetricsRegistry implements noc::MetricsObserver; attach it to
// SimHooks::metrics before running and take a MetricsSnapshot afterwards.
// The snapshot is plain sorted data — deterministic for a deterministic
// simulation — and serializes exactly through util::Json (see
// stats/serialization.h), so it rides sweep JSONL records and sweep_merge
// byte-identically. Collection is purely observational: attaching a
// registry changes no simulation outcome.
//
// This is the measurement substrate for the paper's confinement claim:
// kills per tree level show redundant multicast copies dying at the first
// non-speculative level below each speculative one (DAC'16 §4).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/units.h"
#include "noc/hooks.h"
#include "stats/telemetry.h"

namespace specnoc::stats {

/// Stall-duration histogram: bucket b counts stalls with duration in
/// [unit*2^b, unit*2^(b+1)) ps (bucket 0 also takes shorter stalls, the
/// last bucket is open-ended).
inline constexpr std::size_t kNumStallBuckets = 8;
inline constexpr TimePs kStallBucketUnitPs = 100;

std::size_t stall_bucket(TimePs duration);

/// Human-readable bucket bound, e.g. "<200ps" ... ">=12800ps".
std::string stall_bucket_label(std::size_t bucket);

/// Per-(kind, level) event counters.
struct SiteCounters {
  std::uint64_t kills = 0;              ///< throttled misrouted flits
  std::uint64_t prealloc_hits = 0;      ///< pre-allocated fast-forwards
  std::uint64_t prealloc_misses = 0;    ///< header route computations
  std::uint64_t contended_grants = 0;   ///< grants that resolved contention
  std::uint64_t watchdog_releases = 0;  ///< starvation watchdog firings

  bool any() const {
    return kills != 0 || prealloc_hits != 0 || prealloc_misses != 0 ||
           contended_grants != 0 || watchdog_releases != 0;
  }
};

/// One aggregation site: all nodes of `kind` at tree level `level`
/// (level -1 collects unlevelled nodes such as mesh routers).
struct MetricsSite {
  noc::NodeKind kind = noc::NodeKind::kSource;
  std::int32_t level = -1;
  SiteCounters counters;
};

/// Backpressure-stall statistics for one channel class.
struct ChannelClassMetrics {
  std::string klass;
  std::uint64_t stalls = 0;         ///< completed stall intervals
  std::uint64_t stall_time_ps = 0;  ///< summed interval durations
  std::array<std::uint64_t, kNumStallBuckets> histogram{};
};

/// Aggregation class of a channel, derived from its builder-assigned name
/// ("mid.s3.d5" -> "middle", "fo2.l1i0>1" -> "fanout", ...).
std::string channel_class(const std::string& name);

/// One slab pool of the network arena (see noc/arena.h), harvested after a
/// run: `label` is the node-kind string (or "channel"), `bytes` the live
/// object bytes, `reserved_bytes` the slab capacity including the unused
/// tail of the last chunk. Purely a memory-layout observation — identical
/// simulations report identical arena shapes.
struct ArenaPoolMetrics {
  std::string label;
  std::uint64_t objects = 0;
  std::uint64_t bytes = 0;
  std::uint64_t reserved_bytes = 0;
};

/// Memory-hierarchy counters of a cmp co-simulation run (see cmp/system.h).
/// All zero unless the run drove a CmpSystem; serialized only when
/// non-empty, so non-cmp records keep their byte layout.
struct CmpMetrics {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t mshr_merges = 0;
  std::uint64_t inv_messages = 0;
  std::uint64_t inv_multicasts = 0;
  std::uint64_t inv_targets = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_conflicts = 0;
  std::uint64_t barriers = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_contended = 0;

  bool empty() const { return accesses == 0; }
};

/// Execution-shape statistics of a partitioned (PDES) run: how the window
/// protocol behaved, not what the simulation computed. `lanes == 0` means
/// the run was sequential. Everything here is a function of the topology
/// and the partition strategy alone — deliberately independent of the
/// worker-thread count, so snapshots of the same partitioned simulation are
/// equal at any thread count.
struct PdesMetrics {
  std::uint32_t lanes = 0;
  TimePs lookahead_ps = 0;
  std::uint64_t windows = 0;
  std::vector<std::uint64_t> lane_events;        ///< events executed per lane
  std::vector<std::uint64_t> lane_idle_windows;  ///< windows a lane sat idle

  bool empty() const { return lanes == 0; }
};

/// Immutable per-run aggregate. Sites are sorted by (kind, level) and
/// channel classes by name, so equal simulations produce equal snapshots.
struct MetricsSnapshot {
  std::vector<MetricsSite> sites;
  std::vector<ChannelClassMetrics> channels;
  PdesMetrics pdes;  ///< window/stall shape of partitioned runs
  /// Epoch-sampled time series (empty unless the run was sampled — see
  /// stats/telemetry.h). Serialized only when non-empty, so unsampled
  /// records keep their pre-telemetry byte layout.
  TelemetrySeries telemetry;
  /// noc::DestSet heap spills attributed to this run. The underlying
  /// counter is process-wide, so the per-run delta is exact for serial
  /// execution (--jobs 1) and an upper bound when other runs execute
  /// concurrently; at radix <= 64 it is exactly zero either way (the
  /// zero-alloc invariant the CI smoke checks).
  std::uint64_t dest_spills = 0;
  /// Raw bytes those spills allocated (same per-run-delta caveats). With
  /// pooling on this is the growth of the spill pool's footprint during
  /// the run, not traffic volume.
  std::uint64_t dest_spill_bytes = 0;
  /// Per-pool arena usage of the run's network (empty when not harvested —
  /// serialized only when present, keeping older records byte-stable).
  std::vector<ArenaPoolMetrics> arena;
  /// Cache/directory/DRAM counters of cmp co-simulation runs (empty
  /// otherwise; serialized only when non-empty).
  CmpMetrics cmp;

  bool empty() const { return sites.empty() && channels.empty(); }

  std::uint64_t total_kills() const;
  /// Kills summed over every kind at one tree level — the per-level
  /// confinement profile.
  std::uint64_t kills_at_level(std::int32_t level) const;
  std::uint64_t total_prealloc_hits() const;
  std::uint64_t total_prealloc_misses() const;
  std::uint64_t total_contended_grants() const;
  std::uint64_t total_watchdog_releases() const;
  std::uint64_t total_stalls() const;

  const MetricsSite* find_site(noc::NodeKind kind, std::int32_t level) const;
  const ChannelClassMetrics* find_channel(const std::string& klass) const;
};

class MetricsRegistry final : public noc::MetricsObserver {
 public:
  MetricsRegistry() = default;

  void on_flit_killed(const noc::Node& node, const noc::Flit& flit,
                      TimePs when) override;
  void on_prealloc(const noc::Node& node, bool hit, TimePs when) override;
  void on_contended_grant(const noc::Node& node, TimePs when) override;
  void on_watchdog_release(const noc::Node& node, TimePs when) override;
  void on_channel_stall(const noc::Channel& channel, TimePs start,
                        TimePs end) override;

  /// Attaches the window-protocol shape of a partitioned run (called by
  /// the experiment layer after the run; no-op data until then).
  void record_pdes(PdesMetrics pdes) { pdes_ = std::move(pdes); }

  /// Attaches the run's sampled time series (TelemetrySampler::finish()).
  void record_telemetry(TelemetrySeries telemetry) {
    telemetry_ = std::move(telemetry);
  }

  /// Attaches the run's DestSet spill delta (see MetricsSnapshot field).
  void record_dest_spills(std::uint64_t spills) { dest_spills_ = spills; }
  void record_dest_spill_bytes(std::uint64_t bytes) {
    dest_spill_bytes_ = bytes;
  }

  /// Attaches the network's arena usage (see MetricsSnapshot field).
  void record_arena(std::vector<ArenaPoolMetrics> arena) {
    arena_ = std::move(arena);
  }

  /// Attaches the cmp co-simulation counters (see MetricsSnapshot field).
  void record_cmp(CmpMetrics cmp) { cmp_ = cmp; }

  MetricsSnapshot snapshot() const;

  /// Running totals for the epoch sampler (TelemetrySampler diffs these at
  /// epoch boundaries); much cheaper than snapshot().
  TelemetryCounters telemetry_counters() const;

 private:
  SiteCounters& site(const noc::Node& node);

  std::map<std::pair<noc::NodeKind, std::int32_t>, SiteCounters> sites_;
  std::map<std::string, ChannelClassMetrics> channels_;
  PdesMetrics pdes_;
  TelemetrySeries telemetry_;
  std::uint64_t dest_spills_ = 0;
  std::uint64_t dest_spill_bytes_ = 0;
  std::vector<ArenaPoolMetrics> arena_;
  CmpMetrics cmp_;
};

}  // namespace specnoc::stats
