#include "noc/packet.h"

namespace specnoc::noc {

Message& PacketStore::create_message(std::uint32_t src, DestSet dests,
                                     TimePs gen_time, bool measured) {
  SPECNOC_EXPECTS(dests.any());
  const std::lock_guard<std::mutex> lock(mutex_);
  Message msg;
  msg.id = messages_.size();
  msg.src = src;
  msg.dests = std::move(dests);
  msg.gen_time = gen_time;
  msg.measured = measured;
  messages_.push_back(msg);
  return messages_.back();
}

Packet& PacketStore::create_packet(const Message& msg, DestSet dests,
                                   std::uint32_t num_flits) {
  SPECNOC_EXPECTS(dests.any());
  SPECNOC_EXPECTS(dests.subset_of(msg.dests));
  SPECNOC_EXPECTS(num_flits >= 1);
  const std::lock_guard<std::mutex> lock(mutex_);
  Packet pkt;
  pkt.id = packets_.size();
  pkt.message = msg.id;
  pkt.src = msg.src;
  pkt.dests = std::move(dests);
  pkt.num_flits = num_flits;
  pkt.gen_time = msg.gen_time;
  pkt.measured = msg.measured;
  packets_.push_back(pkt);
  ++messages_[msg.id].num_packets;
  return packets_.back();
}

Flit make_flit(const Packet& packet, std::uint32_t seq) {
  SPECNOC_EXPECTS(seq < packet.num_flits);
  Flit flit;
  flit.packet = &packet;
  flit.seq = seq;
  if (seq == 0) {
    flit.kind = FlitKind::kHeader;
  } else if (seq + 1 == packet.num_flits) {
    flit.kind = FlitKind::kTail;
  } else {
    flit.kind = FlitKind::kBody;
  }
  return flit;
}

}  // namespace specnoc::noc
