// Small bit-manipulation helpers for power-of-two network sizes.
#pragma once

#include <bit>
#include <cstdint>

#include "util/contract.h"

namespace specnoc {

/// True if v is a power of two (and nonzero).
constexpr bool is_pow2(std::uint32_t v) { return std::has_single_bit(v); }

/// Integer log2 of a power of two.
constexpr std::uint32_t log2_exact(std::uint32_t v) {
  SPECNOC_EXPECTS(is_pow2(v));
  return static_cast<std::uint32_t>(std::bit_width(v) - 1);
}

/// Rotates the low `bits` bits of v left by one (used by the shuffle
/// permutation: dst = rotl(src)).
constexpr std::uint32_t rotl_bits(std::uint32_t v, std::uint32_t bits) {
  SPECNOC_EXPECTS(bits > 0 && bits < 32);
  const std::uint32_t mask = (1u << bits) - 1u;
  return ((v << 1) | (v >> (bits - 1))) & mask;
}

/// Reverses the low `bits` bits of v (bit-reversal permutation).
constexpr std::uint32_t reverse_bits(std::uint32_t v, std::uint32_t bits) {
  SPECNOC_EXPECTS(bits > 0 && bits < 32);
  std::uint32_t out = 0;
  for (std::uint32_t i = 0; i < bits; ++i) {
    out = (out << 1) | ((v >> i) & 1u);
  }
  return out;
}

/// Complements the low `bits` bits of v (bit-complement permutation).
constexpr std::uint32_t complement_bits(std::uint32_t v, std::uint32_t bits) {
  SPECNOC_EXPECTS(bits > 0 && bits < 32);
  const std::uint32_t mask = (1u << bits) - 1u;
  return ~v & mask;
}

/// Swaps the high and low halves of the low `bits` bits (transpose
/// permutation); `bits` must be even.
constexpr std::uint32_t transpose_bits(std::uint32_t v, std::uint32_t bits) {
  SPECNOC_EXPECTS(bits > 0 && bits < 32 && bits % 2 == 0);
  const std::uint32_t half = bits / 2;
  const std::uint32_t low_mask = (1u << half) - 1u;
  return ((v & low_mask) << half) | ((v >> half) & low_mask);
}

}  // namespace specnoc
