#include "sim/parallel_runner.h"

#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

namespace specnoc::sim {

unsigned default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

RunOutcome execute(const ParallelRunner::Job& job, std::size_t index,
                   unsigned max_attempts) {
  RunOutcome outcome;
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    outcome.telemetry.attempts = attempt;
    const auto start = Clock::now();
    try {
      outcome.telemetry.events_executed = job(index);
      outcome.telemetry.wall_ms = ms_since(start);
      outcome.ok = true;
      return outcome;
    } catch (const std::exception& e) {
      outcome.telemetry.wall_ms = ms_since(start);
      outcome.error = e.what();
    } catch (...) {
      outcome.telemetry.wall_ms = ms_since(start);
      outcome.error = "unknown exception";
    }
  }
  return outcome;
}

/// One worker's run queue. The owner pops from the front; thieves steal
/// from the back, so a stolen run is the one its owner would reach last.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<std::size_t> runs;
};

}  // namespace

ParallelRunner::ParallelRunner(Options options)
    : jobs_(options.jobs == 0 ? default_jobs() : options.jobs),
      max_attempts_(options.max_attempts == 0 ? 1 : options.max_attempts) {}

std::vector<RunOutcome> ParallelRunner::run(std::size_t count,
                                            const Job& job) const {
  std::vector<RunOutcome> outcomes(count);
  if (count == 0) return outcomes;
  if (jobs_ == 1 || count == 1) {
    // Serial path: inline on the calling thread, in index order.
    for (std::size_t i = 0; i < count; ++i) {
      outcomes[i] = execute(job, i, max_attempts_);
    }
    return outcomes;
  }

  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  std::vector<WorkerQueue> queues(workers);
  // Deal all runs up front, round-robin. No work is ever added after this,
  // so a worker may exit once every queue reads empty.
  for (std::size_t i = 0; i < count; ++i) {
    queues[i % workers].runs.push_back(i);
  }

  auto worker_loop = [&](unsigned self) {
    for (;;) {
      std::size_t index = 0;
      bool found = false;
      {
        auto& own = queues[self];
        const std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.runs.empty()) {
          index = own.runs.front();
          own.runs.pop_front();
          found = true;
        }
      }
      for (unsigned v = 1; v < workers && !found; ++v) {
        auto& victim = queues[(self + v) % workers];
        const std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.runs.empty()) {
          index = victim.runs.back();
          victim.runs.pop_back();
          found = true;
        }
      }
      if (!found) return;
      // Distinct vector slots: no synchronization needed on the write.
      outcomes[index] = execute(job, index, max_attempts_);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (auto& thread : threads) thread.join();
  return outcomes;
}

}  // namespace specnoc::sim
