#include "stats/sweep.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/error.h"

namespace specnoc::stats {

using util::Json;

namespace {

Json manifest_to_json(const SweepManifest& manifest) {
  Json json = Json::object();
  json.set("record", "manifest");
  json.set("format", kSweepFormat);
  json.set("schema", static_cast<std::int64_t>(manifest.schema_version));
  json.set("tool", manifest.tool);
  json.set("shard", manifest.shard.index);
  json.set("shards", manifest.shard.count);
  json.set("seed", manifest.seed);
  return json;
}

SweepManifest manifest_from_json(const Json& json) {
  if (json.at("format").as_string() != kSweepFormat) {
    throw ConfigError("not a " + std::string(kSweepFormat) + " file (format '" +
                      json.at("format").as_string() + "')");
  }
  SweepManifest manifest;
  manifest.schema_version = static_cast<int>(json.at("schema").as_i64());
  if (manifest.schema_version < kSweepSchemaVersionMin ||
      manifest.schema_version > kSweepSchemaVersion) {
    throw ConfigError("unsupported sweep schema version " +
                      std::to_string(manifest.schema_version) + " (this build "
                      "reads versions " +
                      std::to_string(kSweepSchemaVersionMin) + ".." +
                      std::to_string(kSweepSchemaVersion) + ")");
  }
  manifest.tool = json.at("tool").as_string();
  manifest.shard.index = static_cast<unsigned>(json.at("shard").as_u64());
  manifest.shard.count = static_cast<unsigned>(json.at("shards").as_u64());
  if (manifest.shard.count == 0 ||
      manifest.shard.index >= manifest.shard.count) {
    throw ConfigError("manifest has invalid shard " +
                      manifest.shard.to_string());
  }
  manifest.seed = json.at("seed").as_u64();
  return manifest;
}

Json grid_to_json(const SweepGrid& grid) {
  Json json = Json::object();
  json.set("record", "grid");
  json.set("name", grid.name);
  json.set("kind", grid.kind);
  json.set("size", static_cast<std::uint64_t>(grid.size));
  json.set("hash", grid.hash);
  if (grid.shared) json.set("shared", true);
  return json;
}

SweepGrid grid_from_json(const Json& json) {
  SweepGrid grid;
  grid.name = json.at("name").as_string();
  grid.kind = json.at("kind").as_string();
  grid.size = static_cast<std::size_t>(json.at("size").as_u64());
  grid.hash = json.at("hash").as_string();
  const Json* shared = json.find("shared");  // absent in schema-1 files
  grid.shared = shared != nullptr && shared->as_bool();
  return grid;
}

Json record_to_json(const std::string& grid_name, const SweepRecord& record) {
  Json json = Json::object();
  json.set("record", "outcome");
  json.set("grid", grid_name);
  json.set("cell", static_cast<std::uint64_t>(record.cell));
  json.set("key", record.key);
  json.set("status", record.status);
  json.set("data", record.data);
  return json;
}

bool valid_status(const std::string& status) {
  return status == "ok" || status == "retried" || status == "failed";
}

// One live NDJSON "run" frame: identity (grid/cell/key), outcome shape
// (status/events/wall), the run's headline speculation counters, and the
// full sampled series when telemetry was enabled. Called from worker
// threads mid-batch; TelemetryStream serializes the writes.
void emit_run_frame(TelemetryStream& stream, const std::string& grid,
                    std::size_t cell, const std::string& key,
                    const sim::RunOutcome& run,
                    const MetricsSnapshot* metrics) {
  Json body = Json::object();
  body.set("grid", grid);
  body.set("cell", static_cast<std::uint64_t>(cell));
  body.set("key", key);
  body.set("status", run_status(run));
  if (!run.error.empty()) body.set("error", run.error);
  body.set("events", run.telemetry.events_executed);
  body.set("wall_ms", run.telemetry.wall_ms);
  if (metrics != nullptr) {
    body.set("kills", metrics->total_kills());
    body.set("prealloc_hits", metrics->total_prealloc_hits());
    body.set("contended_grants", metrics->total_contended_grants());
    body.set("stalls", metrics->total_stalls());
    if (metrics->dest_spills != 0) body.set("spills", metrics->dest_spills);
    if (!metrics->telemetry.empty()) {
      body.set("telemetry", telemetry_series_to_json(metrics->telemetry));
    }
  }
  stream.emit(TelemetryFrameKind::kRun, std::move(body));
}

bool same_grid(const SweepGrid& a, const SweepGrid& b) {
  return a.name == b.name && a.kind == b.kind && a.size == b.size &&
         a.hash == b.hash && a.shared == b.shared;
}

void append_cells(std::string& out, const std::vector<std::size_t>& cells) {
  constexpr std::size_t kMaxListed = 8;
  for (std::size_t i = 0; i < cells.size() && i < kMaxListed; ++i) {
    out += (i == 0 ? " [" : ", ");
    out += std::to_string(cells[i]);
  }
  if (!cells.empty()) {
    if (cells.size() > kMaxListed) out += ", ...";
    out += "]";
  }
}

}  // namespace

const SweepGrid* ShardFile::find_grid(const std::string& name) const {
  for (const auto& grid : grids) {
    if (grid.name == name) return &grid;
  }
  return nullptr;
}

ShardFile load_shard_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open shard file '" + path + "'");
  ShardFile file;
  bool have_manifest = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fail = [&](const std::string& why) -> ConfigError {
      return ConfigError(path + ":" + std::to_string(line_no) + ": " + why);
    };
    Json json;
    try {
      json = util::json_parse(line);
    } catch (const ConfigError& error) {
      throw fail(error.what());
    }
    try {
      const std::string& record = json.at("record").as_string();
      if (record == "manifest") {
        if (have_manifest) throw fail("duplicate manifest record");
        file.manifest = manifest_from_json(json);
        have_manifest = true;
        continue;
      }
      if (!have_manifest) throw fail("first record must be the manifest");
      if (file.complete) throw fail("record after the done record");
      if (record == "grid") {
        SweepGrid grid = grid_from_json(json);
        if (file.find_grid(grid.name) != nullptr) {
          throw fail("duplicate grid '" + grid.name + "'");
        }
        file.grids.push_back(std::move(grid));
        continue;
      }
      if (record == "outcome") {
        const std::string& grid_name = json.at("grid").as_string();
        const SweepGrid* grid = file.find_grid(grid_name);
        if (grid == nullptr) {
          throw fail("outcome for unregistered grid '" + grid_name + "'");
        }
        SweepRecord rec;
        rec.cell = static_cast<std::size_t>(json.at("cell").as_u64());
        if (rec.cell >= grid->size) {
          throw fail("cell " + std::to_string(rec.cell) +
                     " out of range for grid '" + grid_name + "' (size " +
                     std::to_string(grid->size) + ")");
        }
        rec.key = json.at("key").as_string();
        rec.status = json.at("status").as_string();
        if (!valid_status(rec.status)) {
          throw fail("unknown status '" + rec.status + "'");
        }
        rec.data = json.at("data");
        // Later records replace earlier ones: an appended re-run of a
        // previously failed cell supersedes it.
        file.records[grid_name].insert_or_assign(rec.cell, std::move(rec));
        continue;
      }
      if (record == "done") {
        file.complete = true;
        continue;
      }
      throw fail("unknown record type '" + record + "'");
    } catch (const ConfigError&) {
      throw;
    }
  }
  if (!have_manifest) {
    throw ConfigError(path + ": no manifest record (empty or truncated file)");
  }
  return file;
}

void write_shard_file(const ShardFile& file, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot write shard file '" + path + "'");
  out << util::json_write(manifest_to_json(file.manifest)) << "\n";
  std::size_t outcomes = 0;
  for (const auto& grid : file.grids) {
    out << util::json_write(grid_to_json(grid)) << "\n";
    const auto records = file.records.find(grid.name);
    if (records == file.records.end()) continue;
    for (const auto& [cell, record] : records->second) {
      static_cast<void>(cell);
      out << util::json_write(record_to_json(grid.name, record)) << "\n";
      ++outcomes;
    }
  }
  if (file.complete) {
    Json done = Json::object();
    done.set("record", "done");
    done.set("outcomes", static_cast<std::uint64_t>(outcomes));
    out << util::json_write(done) << "\n";
  }
  out.flush();
  if (!out) throw ConfigError("short write to shard file '" + path + "'");
}

bool MergeReport::complete() const {
  for (const auto& grid : grids) {
    if (!grid.missing.empty() || !grid.duplicates.empty()) return false;
  }
  return true;
}

std::string MergeReport::summary() const {
  std::string out;
  for (const auto& grid : grids) {
    out += "grid " + grid.name + (grid.shared ? " (shared)" : "") + ": " +
           std::to_string(grid.size) +
           " cells, " + std::to_string(grid.present) + " present, " +
           std::to_string(grid.missing.size()) + " missing";
    append_cells(out, grid.missing);
    out += ", " + std::to_string(grid.duplicates.size()) + " duplicate";
    append_cells(out, grid.duplicates);
    out += ", " + std::to_string(grid.failed.size()) + " failed";
    append_cells(out, grid.failed);
    out += "\n";
  }
  if (incomplete_inputs > 0) {
    out += std::to_string(incomplete_inputs) +
           " input shard(s) had no done record (interrupted worker?)\n";
  }
  out += complete() ? "merge: complete\n" : "merge: INCOMPLETE\n";
  return out;
}

ShardFile merge_shards(const std::vector<ShardFile>& inputs,
                       MergeReport* report) {
  if (inputs.empty()) throw ConfigError("no shard files to merge");
  const SweepManifest& ref = inputs.front().manifest;
  std::vector<bool> seen_shard(ref.shard.count, false);
  for (const auto& input : inputs) {
    const SweepManifest& m = input.manifest;
    if (m.tool != ref.tool) {
      throw ConfigError("shard files are from different tools ('" + ref.tool +
                        "' vs '" + m.tool + "')");
    }
    if (m.seed != ref.seed) {
      throw ConfigError("shard files are from different seeds (" +
                        std::to_string(ref.seed) + " vs " +
                        std::to_string(m.seed) + ")");
    }
    if (m.shard.count != ref.shard.count) {
      throw ConfigError("shard files disagree on the shard count (" +
                        std::to_string(ref.shard.count) + " vs " +
                        std::to_string(m.shard.count) + ")");
    }
    if (seen_shard[m.shard.index]) {
      throw ConfigError("two inputs claim shard " + m.shard.to_string());
    }
    seen_shard[m.shard.index] = true;
  }

  ShardFile merged;
  merged.manifest.tool = ref.tool;
  merged.manifest.seed = ref.seed;
  merged.manifest.shard = {0, 1};

  // Grid identities must agree wherever they overlap; the union (in
  // first-seen order) is the merged grid list, so a worker that died
  // before registering a later grid still merges.
  for (const auto& input : inputs) {
    for (const auto& grid : input.grids) {
      const SweepGrid* existing = merged.find_grid(grid.name);
      if (existing == nullptr) {
        merged.grids.push_back(grid);
      } else if (!same_grid(*existing, grid)) {
        throw ConfigError(
            "grid '" + grid.name +
            "' differs between shard files (size/hash mismatch); the shards "
            "were not produced from the same sweep configuration");
      }
    }
  }

  MergeReport local_report;
  MergeReport& rep = report != nullptr ? *report : local_report;
  rep = MergeReport{};
  for (const auto& input : inputs) {
    if (!input.complete) ++rep.incomplete_inputs;
  }

  for (const auto& grid : merged.grids) {
    MergeReport::Grid coverage;
    coverage.name = grid.name;
    coverage.size = grid.size;
    coverage.shared = grid.shared;
    auto& out_records = merged.records[grid.name];
    for (const auto& input : inputs) {
      const auto records = input.records.find(grid.name);
      if (records == input.records.end()) continue;
      for (const auto& [cell, record] : records->second) {
        const auto existing = out_records.find(cell);
        if (existing != out_records.end()) {
          if (existing->second.key != record.key) {
            throw ConfigError("grid '" + grid.name + "' cell " +
                              std::to_string(cell) +
                              " has conflicting keys across shard files");
          }
          // Shared (anchor) grids overlap by construction — every worker
          // may carry the full grid — so the duplicate is expected, not a
          // coverage defect.
          if (!grid.shared) coverage.duplicates.push_back(cell);
          continue;  // first input in argument order wins
        }
        out_records.emplace(cell, record);
      }
    }
    coverage.present = out_records.size();
    for (std::size_t cell = 0; cell < grid.size; ++cell) {
      const auto it = out_records.find(cell);
      if (it == out_records.end()) {
        coverage.missing.push_back(cell);
      } else if (it->second.status == "failed") {
        coverage.failed.push_back(cell);
      }
    }
    std::sort(coverage.duplicates.begin(), coverage.duplicates.end());
    coverage.duplicates.erase(
        std::unique(coverage.duplicates.begin(), coverage.duplicates.end()),
        coverage.duplicates.end());
    rep.grids.push_back(std::move(coverage));
  }
  merged.complete = rep.complete();
  return merged;
}

// --- ShardedSweep --------------------------------------------------------

namespace {

struct SaturationTraits {
  using Spec = SaturationSpec;
  using Outcome = SaturationOutcome;
  static constexpr const char* kKind = "saturation";
  static std::vector<Outcome> run(ExperimentRunner& runner,
                                  const std::vector<Spec>& specs,
                                  const BatchOptions& batch) {
    return runner.run_saturation_grid(specs, batch);
  }
  static Outcome from_json(const Json& json) {
    return saturation_outcome_from_json(json);
  }
};

struct LatencyTraits {
  using Spec = LatencySpec;
  using Outcome = LatencyOutcome;
  static constexpr const char* kKind = "latency";
  static std::vector<Outcome> run(ExperimentRunner& runner,
                                  const std::vector<Spec>& specs,
                                  const BatchOptions& batch) {
    return runner.run_latency_sweep(specs, batch);
  }
  static Outcome from_json(const Json& json) {
    return latency_outcome_from_json(json);
  }
};

struct PowerTraits {
  using Spec = PowerSpec;
  using Outcome = PowerOutcome;
  static constexpr const char* kKind = "power";
  static std::vector<Outcome> run(ExperimentRunner& runner,
                                  const std::vector<Spec>& specs,
                                  const BatchOptions& batch) {
    return runner.run_power_sweep(specs, batch);
  }
  static Outcome from_json(const Json& json) {
    return power_outcome_from_json(json);
  }
};

struct WorkloadTraits {
  using Spec = WorkloadSpec;
  using Outcome = WorkloadOutcome;
  static constexpr const char* kKind = "workload";
  static std::vector<Outcome> run(ExperimentRunner& runner,
                                  const std::vector<Spec>& specs,
                                  const BatchOptions& batch) {
    return runner.run_workload_grid(specs, batch);
  }
  static Outcome from_json(const Json& json) {
    return workload_outcome_from_json(json);
  }
};

struct CmpTraits {
  using Spec = CmpSpec;
  using Outcome = CmpOutcome;
  static constexpr const char* kKind = "cmp";
  static std::vector<Outcome> run(ExperimentRunner& runner,
                                  const std::vector<Spec>& specs,
                                  const BatchOptions& batch) {
    return runner.run_cmp_grid(specs, batch);
  }
  static Outcome from_json(const Json& json) {
    return cmp_outcome_from_json(json);
  }
};

/// Rendered saturation outcomes seed the runner's memoization cache so
/// protocol methods (saturation(), power_at_baseline_fraction(), ...)
/// reuse them exactly as a live run_saturation_grid() call would.
void prime_runner(ExperimentRunner& runner,
                  const std::vector<SaturationOutcome>& outcomes) {
  for (const auto& outcome : outcomes) {
    if (outcome.run.ok && outcome.spec.seed == 0 && !outcome.spec.factory &&
        outcome.spec.custom.empty()) {
      runner.prime_saturation(outcome.spec.arch, outcome.spec.bench,
                              outcome.result);
    }
  }
}
void prime_runner(ExperimentRunner&, const std::vector<LatencyOutcome>&) {}
void prime_runner(ExperimentRunner&, const std::vector<PowerOutcome>&) {}
void prime_runner(ExperimentRunner&, const std::vector<WorkloadOutcome>&) {}
void prime_runner(ExperimentRunner&, const std::vector<CmpOutcome>&) {}

bool file_has_content(const std::string& path) {
  std::ifstream in(path);
  return in.good() && in.peek() != std::ifstream::traits_type::eof();
}

}  // namespace

ShardedSweep::ShardedSweep(SweepOptions options)
    : options_(std::move(options)) {
  if (options_.mode != SweepMode::kWorker &&
      (options_.anchors_only || !options_.anchors_from.empty())) {
    throw ConfigError(
        "--anchors-only/--anchors-from apply to worker mode (--shard/--out)");
  }
  if (options_.anchors_only && !options_.anchors_from.empty()) {
    throw ConfigError("--anchors-only cannot be combined with --anchors-from");
  }
  switch (options_.mode) {
    case SweepMode::kRun:
      break;
    case SweepMode::kWorker: {
      if (options_.out_path.empty()) {
        throw ConfigError("worker mode requires --out <shard.jsonl>");
      }
      if (!options_.anchors_from.empty()) {
        anchors_ = load_shard_file(options_.anchors_from);
        const SweepManifest& m = anchors_.manifest;
        if (m.tool != options_.tool) {
          throw ConfigError("--anchors-from file '" + options_.anchors_from +
                            "' was produced by tool '" + m.tool +
                            "', not by this harness ('" + options_.tool +
                            "')");
        }
        if (m.seed != options_.seed) {
          throw ConfigError("--anchors-from file '" + options_.anchors_from +
                            "' was produced with seed " +
                            std::to_string(m.seed) + "; rerun with --seed " +
                            std::to_string(m.seed) +
                            " (anchors would not match)");
        }
      }
      file_.manifest.tool = options_.tool;
      file_.manifest.shard = options_.shard;
      file_.manifest.seed = options_.seed;
      // An existing non-empty output resumes the shard: completed cells
      // are carried over, failed and missing ones re-run. A file from a
      // different sweep is an error, never silently clobbered.
      if (file_has_content(options_.out_path)) {
        resume_ = load_shard_file(options_.out_path);
        const SweepManifest& m = resume_.manifest;
        if (m.tool != options_.tool || m.seed != options_.seed ||
            !(m.shard == options_.shard)) {
          throw ConfigError(
              "existing shard file '" + options_.out_path +
              "' belongs to a different sweep (tool " + m.tool + ", shard " +
              m.shard.to_string() + ", seed " + std::to_string(m.seed) +
              "); delete it or choose another --out to start fresh");
        }
        resuming_ = true;
      }
      break;
    }
    case SweepMode::kRender: {
      if (options_.from_path.empty()) {
        throw ConfigError("render mode requires --from <merged.jsonl>");
      }
      file_ = load_shard_file(options_.from_path);
      const SweepManifest& m = file_.manifest;
      if (m.tool != options_.tool) {
        throw ConfigError("--from file '" + options_.from_path +
                          "' was produced by tool '" + m.tool +
                          "', not by this harness ('" + options_.tool + "')");
      }
      if (m.seed != options_.seed) {
        throw ConfigError("--from file '" + options_.from_path +
                          "' was produced with seed " + std::to_string(m.seed) +
                          "; rerun with --seed " + std::to_string(m.seed) +
                          " (tables would not match)");
      }
      break;
    }
  }
}

std::vector<SaturationOutcome> ShardedSweep::anchor_saturation(
    ExperimentRunner& runner, const std::vector<SaturationSpec>& specs,
    const std::string& name) {
  if (options_.mode == SweepMode::kRun) {
    if (streaming()) {
      return runner.run_saturation_grid(
          specs, streaming_batch(name, spec_keys(specs), {}));
    }
    return runner.run_saturation_grid(specs, labeled_batch(name));
  }

  const std::vector<std::string> keys = spec_keys(specs);
  SweepGrid grid{name, SaturationTraits::kKind, specs.size(),
                 grid_hash(keys)};
  grid.shared = true;

  if (options_.mode == SweepMode::kRender) {
    if (file_.find_grid(name) == nullptr) {
      // The merged file predates shared anchor grids (schema-1 workers
      // never recorded anchors): simulate them, exactly as before.
      return runner.run_saturation_grid(specs, labeled_batch(name));
    }
    auto outcomes = load_grid<SaturationTraits>(
        file_, "--from file '" + options_.from_path + "'", grid, keys, specs,
        /*strict=*/false);
    prime_runner(runner, outcomes);
    return outcomes;
  }

  // Worker. --anchors-only and the classic single-invocation worker both
  // go through run_grid, which registers the shared grid and records this
  // shard's owned cells. --anchors-from skips simulation entirely.
  if (!options_.anchors_from.empty()) {
    if (file_.find_grid(name) != nullptr) {
      throw ConfigError("sweep grid '" + name + "' registered twice");
    }
    auto outcomes = load_grid<SaturationTraits>(
        anchors_, "--anchors-from file '" + options_.anchors_from + "'", grid,
        keys, specs, /*strict=*/true);
    // Copy the anchor records into this shard file: the merged downstream
    // file then carries the anchors itself, so --from never needs the
    // phase-1 file. The merge accepts the K-way overlap (shared grid).
    file_.grids.push_back(grid);
    auto& out_records = file_.records[name];
    const auto records = anchors_.records.find(name);
    if (records != anchors_.records.end()) {
      for (const auto& [cell, record] : records->second) {
        out_records.emplace(cell, record);
      }
    }
    flush();
    prime_runner(runner, outcomes);
    return outcomes;
  }

  if (options_.anchors_only) {
    // Phase 1: simulate only the owned cells (resume carry-over included);
    // the harness exits via finish() before building downstream grids.
    return run_grid<SaturationTraits>(name, runner, specs, /*shared=*/true);
  }

  // Classic worker: every anchor result is needed to construct the
  // downstream specs, so the full grid still runs — but the owned cells
  // are now recorded, giving the merged file complete anchor coverage.
  auto outcomes = runner.run_saturation_grid(
      specs, streaming() ? streaming_batch(name, keys, {})
                         : labeled_batch(name));
  if (file_.find_grid(name) != nullptr) {
    throw ConfigError("sweep grid '" + name + "' registered twice");
  }
  file_.grids.push_back(grid);
  auto& out_records = file_.records[name];
  const sim::ShardPlan plan(options_.shard.count);
  for (const std::size_t cell :
       plan.cells_of(keys, options_.shard.index)) {
    SweepRecord record;
    record.cell = cell;
    record.key = keys[cell];
    record.status = run_status(outcomes[cell].run);
    record.data = to_json(outcomes[cell]);
    out_records.insert_or_assign(cell, std::move(record));
    if (!outcomes[cell].run.ok) ++failures_;
  }
  flush();
  return outcomes;
}

BatchOptions ShardedSweep::labeled_batch(const std::string& name) const {
  BatchOptions batch = options_.batch;
  if (!batch.progress_label.empty()) batch.progress_label += "/" + name;
  return batch;
}

BatchOptions ShardedSweep::streaming_batch(
    const std::string& name, std::vector<std::string> keys,
    std::vector<std::size_t> cells) const {
  BatchOptions batch = labeled_batch(name);
  TelemetryStream* stream = options_.telemetry_stream;
  if (stream == nullptr) return batch;
  batch.on_run_done = [stream, name, keys = std::move(keys),
                       cells = std::move(cells)](
                          std::size_t index, const sim::RunOutcome& run,
                          const MetricsSnapshot* metrics) {
    const std::size_t cell = cells.empty() ? index : cells[index];
    emit_run_frame(*stream, name, cell, keys[cell], run, metrics);
  };
  return batch;
}

template <typename Traits>
std::vector<typename Traits::Outcome> ShardedSweep::run_grid(
    const std::string& name, ExperimentRunner& runner,
    const std::vector<typename Traits::Spec>& specs, bool shared) {
  using Outcome = typename Traits::Outcome;
  using Spec = typename Traits::Spec;

  if (options_.mode == SweepMode::kRun) {
    if (streaming()) {
      return Traits::run(runner, specs,
                         streaming_batch(name, spec_keys(specs), {}));
    }
    return Traits::run(runner, specs, labeled_batch(name));
  }

  const std::vector<std::string> keys = spec_keys(specs);
  SweepGrid grid{name, Traits::kKind, specs.size(), grid_hash(keys)};
  grid.shared = shared;

  if (options_.mode == SweepMode::kWorker) {
    if (file_.find_grid(name) != nullptr) {
      throw ConfigError("sweep grid '" + name + "' registered twice");
    }
    file_.grids.push_back(grid);

    const sim::ShardPlan plan(options_.shard.count);
    const std::vector<std::size_t> mine =
        plan.cells_of(keys, options_.shard.index);

    std::vector<Outcome> outcomes(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      outcomes[i].spec = specs[i];
      outcomes[i].run.ok = false;
      outcomes[i].run.error =
          "cell not owned by shard " + options_.shard.to_string();
    }

    const SweepGrid* prev =
        resuming_ ? resume_.find_grid(name) : nullptr;
    if (prev != nullptr && !same_grid(*prev, grid)) {
      throw ConfigError("existing shard file '" + options_.out_path +
                        "' recorded grid '" + name +
                        "' with a different identity; it was produced from a "
                        "different sweep configuration — delete it to rerun");
    }
    const std::map<std::size_t, SweepRecord>* prev_records = nullptr;
    if (prev != nullptr) {
      const auto it = resume_.records.find(name);
      if (it != resume_.records.end()) prev_records = &it->second;
    }

    auto& out_records = file_.records[name];
    std::vector<std::size_t> to_run;
    for (const std::size_t cell : mine) {
      const SweepRecord* carried = nullptr;
      if (prev_records != nullptr) {
        const auto it = prev_records->find(cell);
        if (it != prev_records->end() && it->second.status != "failed") {
          carried = &it->second;
        }
      }
      if (carried != nullptr) {
        outcomes[cell] = Traits::from_json(carried->data);
        outcomes[cell].spec = specs[cell];
        out_records.emplace(cell, *carried);
        ++carried_;
      } else {
        to_run.push_back(cell);
      }
    }

    std::vector<Spec> subset;
    subset.reserve(to_run.size());
    for (const std::size_t cell : to_run) subset.push_back(specs[cell]);
    const std::vector<Outcome> fresh =
        Traits::run(runner, subset,
                    streaming() ? streaming_batch(name, keys, to_run)
                                : labeled_batch(name));
    for (std::size_t j = 0; j < to_run.size(); ++j) {
      const std::size_t cell = to_run[j];
      outcomes[cell] = fresh[j];
      SweepRecord record;
      record.cell = cell;
      record.key = keys[cell];
      record.status = run_status(fresh[j].run);
      record.data = to_json(fresh[j]);
      out_records.insert_or_assign(cell, std::move(record));
      ++executed_;
      if (!fresh[j].run.ok) ++failures_;
    }
    flush();
    return outcomes;
  }

  // kRender: outcomes come from the loaded (merged) file.
  auto outcomes = load_grid<Traits>(
      file_, "--from file '" + options_.from_path + "'", grid, keys, specs,
      /*strict=*/false);
  prime_runner(runner, outcomes);
  return outcomes;
}

template <typename Traits>
std::vector<typename Traits::Outcome> ShardedSweep::load_grid(
    const ShardFile& src, const std::string& origin, const SweepGrid& grid,
    const std::vector<std::string>& keys,
    const std::vector<typename Traits::Spec>& specs, bool strict) {
  using Outcome = typename Traits::Outcome;

  const SweepGrid* loaded = src.find_grid(grid.name);
  if (loaded == nullptr) {
    throw ConfigError(origin + " has no grid '" + grid.name + "'");
  }
  if (!same_grid(*loaded, grid)) {
    throw ConfigError(
        origin + " grid '" + grid.name + "' (size " +
        std::to_string(loaded->size) + ", hash " + loaded->hash +
        ") does not match this invocation's grid (size " +
        std::to_string(grid.size) + ", hash " + grid.hash +
        "); was the sweep run with the same configuration?");
  }
  const std::map<std::size_t, SweepRecord>* records = nullptr;
  const auto it = src.records.find(grid.name);
  if (it != src.records.end()) records = &it->second;

  std::vector<Outcome> outcomes(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    outcomes[i].spec = specs[i];
    const SweepRecord* record = nullptr;
    if (records != nullptr) {
      const auto rec = records->find(i);
      if (rec != records->end()) record = &rec->second;
    }
    if (record == nullptr) {
      if (strict) {
        throw ConfigError(origin + " is missing grid '" + grid.name +
                          "' cell " + std::to_string(i) +
                          " (merge every anchor shard before phase 2)");
      }
      outcomes[i].run.ok = false;
      outcomes[i].run.error = "cell missing from " + origin +
                              " (partial merge?)";
      ++failures_;
      continue;
    }
    if (record->key != keys[i]) {
      throw ConfigError(origin + " grid '" + grid.name + "' cell " +
                        std::to_string(i) + " records key '" + record->key +
                        "' but this invocation expects '" + keys[i] + "'");
    }
    outcomes[i] = Traits::from_json(record->data);
    outcomes[i].spec = specs[i];
    if (!outcomes[i].run.ok) {
      if (strict) {
        throw ConfigError(origin + " grid '" + grid.name + "' cell " +
                          std::to_string(i) + " failed in phase 1 (" +
                          outcomes[i].run.error +
                          "); re-run that anchor worker before phase 2");
      }
      ++failures_;
    }
  }
  return outcomes;
}

std::vector<SaturationOutcome> ShardedSweep::saturation_grid(
    const std::string& name, ExperimentRunner& runner,
    const std::vector<SaturationSpec>& specs) {
  return run_grid<SaturationTraits>(name, runner, specs);
}

std::vector<LatencyOutcome> ShardedSweep::latency_sweep(
    const std::string& name, ExperimentRunner& runner,
    const std::vector<LatencySpec>& specs) {
  return run_grid<LatencyTraits>(name, runner, specs);
}

std::vector<PowerOutcome> ShardedSweep::power_sweep(
    const std::string& name, ExperimentRunner& runner,
    const std::vector<PowerSpec>& specs) {
  return run_grid<PowerTraits>(name, runner, specs);
}

std::vector<WorkloadOutcome> ShardedSweep::workload_grid(
    const std::string& name, ExperimentRunner& runner,
    const std::vector<WorkloadSpec>& specs) {
  return run_grid<WorkloadTraits>(name, runner, specs);
}

std::vector<CmpOutcome> ShardedSweep::cmp_grid(
    const std::string& name, ExperimentRunner& runner,
    const std::vector<CmpSpec>& specs) {
  return run_grid<CmpTraits>(name, runner, specs);
}

void ShardedSweep::flush() const {
  write_shard_file(file_, options_.out_path);
}

int ShardedSweep::finish() {
  if (options_.mode != SweepMode::kWorker) return 0;
  file_.complete = true;
  flush();
  std::fprintf(stderr,
               "[%s] shard %s: %zu cells run, %zu carried over, %zu failed "
               "-> %s\n",
               options_.tool.c_str(), options_.shard.to_string().c_str(),
               executed_, carried_, failures_, options_.out_path.c_str());
  return failures_ == 0 ? 0 : 1;
}

}  // namespace specnoc::stats
