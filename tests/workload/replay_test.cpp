#include "workload/replay.h"

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/mot_network.h"
#include "stats/recorder.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/record.h"
#include "workload/synth.h"

namespace specnoc::workload {
namespace {

using namespace specnoc::literals;
using core::Architecture;

struct ReplayOutput {
  std::uint64_t flits_ejected = 0;
  std::vector<TimePs> latencies;
};

/// Replays `trace` in timed mode on a fresh network of `arch`, stopping at
/// `horizon` like the run that produced it. `sim_threads`/`workers` select
/// the partitioned kernel (workers = 0 keeps the config's thread count).
ReplayOutput timed_replay(Architecture arch, const Trace& trace,
                          TimePs horizon, unsigned sim_threads = 1,
                          unsigned workers = 0) {
  core::NetworkConfig cfg;
  cfg.sim_threads = sim_threads;
  core::MotNetwork network(arch, cfg);
  if (workers != 0) network.net().set_worker_threads(workers);
  stats::TrafficRecorder recorder(network.net().packets());
  TraceReplayDriver driver(network, trace,
                           {ReplayMode::kTimed, /*measured=*/true});
  driver.set_downstream(&recorder);
  network.net().hooks().traffic = &driver;
  recorder.open_window(0);
  driver.start();
  network.net().run_until(horizon);
  recorder.close_window(horizon);
  return {recorder.window_flits_ejected(), recorder.measured_latencies()};
}

/// The record -> replay round trip: capture an open-loop Multicast10 run
/// into a trace, replay it in timed mode on an identical network, and the
/// delivered flit counts and per-message latency records come back
/// byte-identical — the replay re-issues the exact send_message() sequence.
TEST(ReplayRoundTripTest, CapturedRunReplaysByteIdentical) {
  constexpr TimePs kHorizon = 200_ns;
  for (const auto arch :
       {Architecture::kBaseline, Architecture::kOptHybridSpeculative}) {
    core::MotNetwork network(arch, core::NetworkConfig{});
    TraceRecorder capture(network.net().packets(), network.endpoints(),
                          "capture-test");
    stats::TrafficRecorder recorder(network.net().packets());
    capture.set_downstream(&recorder);
    network.net().hooks().traffic = &capture;
    auto pattern = traffic::make_benchmark(traffic::BenchmarkId::kMulticast10,
                                           network.endpoints());
    traffic::DriverConfig dcfg;
    dcfg.flits_per_ns_per_source = 0.3;
    dcfg.seed = 11;
    traffic::TrafficDriver driver(network, *pattern, dcfg);
    driver.set_measured(true);
    driver.start();
    recorder.open_window(0);
    network.scheduler().run_until(kHorizon);
    recorder.close_window(kHorizon);

    const Trace trace = capture.trace();
    ASSERT_GT(trace.records.size(), 10u);
    const auto replayed = timed_replay(arch, trace, kHorizon);
    EXPECT_EQ(replayed.flits_ejected, recorder.window_flits_ejected())
        << core::to_string(arch);
    EXPECT_EQ(replayed.latencies, recorder.measured_latencies())
        << core::to_string(arch);
  }
}

TEST(ReplayTest, TimedReplayIsDeterministic) {
  const Trace trace = make_synth_workload(SynthId::kCoherence, 8, 5, 3);
  const auto a = timed_replay(Architecture::kOptHybridSpeculative, trace,
                              1000_ns);
  const auto b = timed_replay(Architecture::kOptHybridSpeculative, trace,
                              1000_ns);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.latencies, b.latencies);
}

/// Timed replay under the partitioned kernel: per-message latency records
/// and delivered flit counts are a pure function of (network, trace) — the
/// worker-thread count never changes them.
TEST(ReplayTest, TimedReplayIsWorkerCountInvariantUnderPartitions) {
  const Trace trace = make_synth_workload(SynthId::kCoherence, 8, 5, 3);
  auto reference = timed_replay(Architecture::kOptHybridSpeculative, trace,
                                1000_ns, /*sim_threads=*/2, /*workers=*/1);
  EXPECT_GT(reference.flits_ejected, 0u);
  // The recorder's latency list is push-ordered by hook arrival, which is
  // wall-clock dependent across workers; the multiset of latencies is the
  // invariant, so compare sorted.
  std::sort(reference.latencies.begin(), reference.latencies.end());
  for (const unsigned workers : {2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    auto run = timed_replay(Architecture::kOptHybridSpeculative, trace,
                            1000_ns, /*sim_threads=*/2, workers);
    std::sort(run.latencies.begin(), run.latencies.end());
    EXPECT_EQ(run.flits_ejected, reference.flits_ejected);
    EXPECT_EQ(run.latencies, reference.latencies);
  }
}

/// Closed-loop replay feeds delivery times back into the injection
/// schedule with no lookahead, which the window protocol cannot honor —
/// pinned: requesting it on a partitioned network is a ConfigError, not a
/// silently different simulation.
TEST(ReplayTest, ClosedLoopOnPartitionedNetworkIsAConfigError) {
  const Trace trace = make_synth_workload(SynthId::kCoherence, 8, 5, 3);
  core::NetworkConfig cfg;
  cfg.sim_threads = 2;
  core::MotNetwork network(Architecture::kOptHybridSpeculative, cfg);
  ASSERT_TRUE(network.net().partitioned());
  TraceReplayDriver driver(network, trace,
                           {ReplayMode::kClosedLoop, /*measured=*/true});
  network.net().hooks().traffic = &driver;
  EXPECT_THROW(driver.start(), ConfigError);
}

/// Randomized dependency DAG over 8 endpoints: every message picks a
/// source, a destination set excluding the source, up to 3 backward
/// dependencies, and a local delay.
Trace random_dag(std::uint32_t n, std::size_t messages, std::uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  trace.meta.n = n;
  trace.meta.generator = "random-dag";
  for (std::size_t i = 0; i < messages; ++i) {
    TraceRecord rec;
    rec.id = i;
    rec.src = static_cast<std::uint32_t>(rng.uniform_below(n));
    const auto num_dests = 1 + rng.uniform_below(3);
    for (const std::uint32_t pick : rng.sample_without_replacement(
             n - 1, static_cast<std::uint32_t>(num_dests))) {
      rec.dests |= noc::DestSet::single(pick >= rec.src ? pick + 1 : pick);
    }
    rec.size = 5;
    rec.earliest = static_cast<TimePs>(rng.uniform_below(4)) * 500;
    rec.delay = static_cast<TimePs>(rng.uniform_below(3)) * 700;
    if (i > 0) {
      std::set<std::uint64_t> deps;
      const auto num_deps = rng.uniform_below(4);  // 0..3
      for (std::uint64_t d = 0; d < num_deps; ++d) {
        deps.insert(rng.uniform_below(i));
      }
      rec.deps.assign(deps.begin(), deps.end());
    }
    trace.records.push_back(std::move(rec));
  }
  trace.validate();
  return trace;
}

using DepParam = std::tuple<Architecture, std::uint64_t>;

class ClosedLoopDepTest : public ::testing::TestWithParam<DepParam> {};

std::string dep_param_name(const ::testing::TestParamInfo<DepParam>& info) {
  const auto& [arch, seed] = info.param;
  return std::string(core::to_string(arch)) + "_s" + std::to_string(seed);
}

/// The dependency-ordering property: closed-loop replay never injects a
/// message before every one of its deps has delivered all headers, and
/// honors both the per-message earliest time and the post-dependency delay.
TEST_P(ClosedLoopDepTest, NeverInjectsBeforeDepsDelivered) {
  const auto& [arch, seed] = GetParam();
  const Trace trace = random_dag(8, 40, seed);
  core::MotNetwork network(arch, core::NetworkConfig{});
  TraceReplayDriver driver(network, trace,
                           {ReplayMode::kClosedLoop, /*measured=*/true});
  network.net().hooks().traffic = &driver;
  driver.start();
  network.scheduler().run();

  ASSERT_TRUE(driver.finished())
      << driver.messages_delivered() << "/" << trace.records.size()
      << " messages delivered";
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const auto& rec = trace.records[i];
    const TimePs injected = driver.injection_time(i);
    ASSERT_GE(injected, TimePs{0}) << "message " << rec.id;
    EXPECT_GE(injected, rec.earliest) << "message " << rec.id;
    TimePs ready = 0;
    for (const std::uint64_t dep : rec.deps) {
      const TimePs dep_delivered = driver.delivery_time(dep);
      ASSERT_GE(dep_delivered, TimePs{0})
          << "dep " << dep << " of message " << rec.id;
      EXPECT_LE(dep_delivered, injected)
          << "message " << rec.id << " injected before dep " << dep;
      ready = std::max(ready, dep_delivered);
    }
    if (!rec.deps.empty()) {
      EXPECT_GE(injected, ready + rec.delay) << "message " << rec.id;
    }
    EXPECT_GT(driver.delivery_time(i), injected) << "message " << rec.id;
  }
  // The makespan is the last header delivery; the network may still drain
  // body flits and handshakes afterwards.
  EXPECT_LE(driver.completion_time(), network.scheduler().now());
  EXPECT_GT(driver.completion_time(), TimePs{0});
}

INSTANTIATE_TEST_SUITE_P(
    ArchsAndSeeds, ClosedLoopDepTest,
    ::testing::Combine(::testing::ValuesIn(core::all_architectures()),
                       ::testing::Values(1u, 2u, 3u)),
    dep_param_name);

TEST(ReplayTest, RejectsTraceThatDoesNotFitNetwork) {
  core::MotNetwork network(Architecture::kOptNonSpeculative,
                           core::NetworkConfig{});  // 8 endpoints, 5 flits
  {
    Trace trace = make_synth_workload(SynthId::kDnnLayers, 16, 5, 1);
    EXPECT_THROW(TraceReplayDriver(network, trace), ConfigError);
  }
  {
    Trace trace = make_synth_workload(SynthId::kDnnLayers, 8, 3, 1);
    EXPECT_THROW(TraceReplayDriver(network, trace), ConfigError);
  }
}

TEST(ReplayTest, ModeNamesRoundTripAndErrorListsValidModes) {
  EXPECT_EQ(replay_mode_from_string("timed"), ReplayMode::kTimed);
  EXPECT_EQ(replay_mode_from_string("closed"), ReplayMode::kClosedLoop);
  EXPECT_STREQ(to_string(ReplayMode::kTimed), "timed");
  EXPECT_STREQ(to_string(ReplayMode::kClosedLoop), "closed");
  try {
    replay_mode_from_string("open");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timed"), std::string::npos) << what;
    EXPECT_NE(what.find("closed"), std::string::npos) << what;
  }
}

/// Counts raw packet injections behind the recorder, to observe the
/// Baseline's multicast -> unicast expansion directly.
class InjectionCounter final : public noc::TrafficObserver {
 public:
  void on_packet_injected(const noc::Packet& /*packet*/,
                          TimePs /*when*/) override {
    ++injected;
  }
  void on_flit_ejected(const noc::Packet& /*packet*/, std::uint32_t /*dest*/,
                       noc::FlitKind /*kind*/, TimePs /*when*/) override {}
  std::uint64_t injected = 0;
};

/// Satellite regression for large-radix capture: on a 256-endpoint Baseline
/// network every logical multicast is expanded into one unicast packet per
/// destination (all sharing a MessageId). The recorder must collapse that
/// expansion back to ONE record per logical message, keep the full DestSet,
/// and the resulting schema-2 trace (hex dests, n > 64) must round-trip
/// byte-identically.
TEST(TraceRecorderTest, Radix256BaselineCollapsesUnicastExpansion) {
  core::NetworkConfig cfg;
  cfg.n = 256;
  core::MotNetwork network(Architecture::kBaseline, cfg);
  TraceRecorder capture(network.net().packets(), network.endpoints(),
                        "radix256-capture");
  InjectionCounter counter;
  capture.set_downstream(&counter);
  network.net().hooks().traffic = &capture;

  // 12 logical multicasts with fan-outs spanning both DestSet words,
  // including dests >= 64 (only representable by schema 2).
  std::uint64_t expanded = 0;
  std::vector<noc::DestSet> sent;
  for (std::uint32_t m = 0; m < 12; ++m) {
    noc::DestSet dests;
    const std::uint32_t fan_out = 2 + m;
    for (std::uint32_t d = 0; d < fan_out; ++d) {
      dests |= noc::DestSet::single((31 + 83 * m + 17 * d) % 256);
    }
    network.send_message(/*src=*/m % 256, dests, /*measured=*/false);
    expanded += dests.count();
    sent.push_back(dests);
  }
  network.scheduler().run();

  const Trace trace = capture.trace();
  ASSERT_EQ(trace.records.size(), sent.size());
  EXPECT_EQ(counter.injected, expanded);  // expansion really happened
  EXPECT_GT(counter.injected, trace.records.size());
  for (std::size_t m = 0; m < sent.size(); ++m) {
    EXPECT_EQ(trace.records[m].dests, sent[m]) << "message " << m;
  }

  const std::string bytes = trace_to_string(trace);
  EXPECT_NE(bytes.find("\"schema\":2"), std::string::npos);
  std::istringstream in(bytes);
  const Trace back = read_trace(in, "radix256-roundtrip");
  EXPECT_EQ(trace_to_string(back), bytes);
}

}  // namespace
}  // namespace specnoc::workload
