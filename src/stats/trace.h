// Event tracing: stream simulation events to CSV for offline analysis.
//
// Attach a FlitTracer to Network hooks to log injections, ejections, node
// operations, and channel traversals. Useful for debugging routing/protocol
// behaviour and for visualizing flit timelines (one CSV row per event).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "noc/hooks.h"

namespace specnoc::stats {

/// RFC-4180 CSV field escaping: fields containing commas, quotes, or
/// newlines are quoted, with embedded quotes doubled; anything else passes
/// through unchanged.
std::string csv_escape(const std::string& field);

/// Which event classes to record.
struct TraceFilter {
  bool injections = true;
  bool ejections = true;
  bool node_ops = false;        // verbose: one row per switch operation
  bool channel_flits = false;   // very verbose
};

class FlitTracer final : public noc::TrafficObserver,
                         public noc::EnergyObserver {
 public:
  /// Writes CSV rows to `out` (header row immediately). The stream must
  /// outlive the tracer.
  explicit FlitTracer(std::ostream& out, TraceFilter filter = {});

  void on_packet_injected(const noc::Packet& packet, TimePs when) override;
  void on_flit_ejected(const noc::Packet& packet, std::uint32_t dest,
                       noc::FlitKind kind, TimePs when) override;
  void on_node_op(const noc::Node& node, noc::NodeOp op,
                  TimePs when) override;
  void on_channel_flit(LengthUm length, TimePs when) override;

  std::uint64_t rows_written() const { return rows_; }

 private:
  void row(TimePs when, const char* event, const std::string& subject,
           std::uint64_t packet, std::uint32_t src, const char* detail);

  std::ostream& out_;
  TraceFilter filter_;
  std::uint64_t rows_ = 0;
};

const char* to_string(noc::FlitKind kind);

}  // namespace specnoc::stats
