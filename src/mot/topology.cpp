#include "mot/topology.h"

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::mot {

MotTopology::MotTopology(std::uint32_t n) : n_(n) {
  if (n < 2 || n > kMaxRadix || !is_pow2(n)) {
    throw ConfigError("MoT radix must be a power of two in [2, " +
                      std::to_string(kMaxRadix) + "], got " +
                      std::to_string(n));
  }
  levels_ = log2_exact(n);
}

std::uint32_t MotTopology::heap_id(std::uint32_t level, std::uint32_t index) {
  SPECNOC_EXPECTS(index < (1u << level));
  return (1u << level) - 1u + index;
}

std::pair<std::uint32_t, std::uint32_t> MotTopology::from_heap_id(
    std::uint32_t id) {
  std::uint32_t level = 0;
  while ((2u << level) - 1u <= id) {
    ++level;
  }
  return {level, id - ((1u << level) - 1u)};
}

std::uint32_t MotTopology::nodes_at_level(std::uint32_t level) const {
  SPECNOC_EXPECTS(level < levels_);
  return 1u << level;
}

std::pair<std::uint32_t, std::uint32_t> MotTopology::fanout_span(
    std::uint32_t level, std::uint32_t index) const {
  SPECNOC_EXPECTS(level < levels_);
  SPECNOC_EXPECTS(index < nodes_at_level(level));
  const std::uint32_t width = n_ >> level;
  return {index * width, (index + 1) * width};
}

noc::DestRange MotTopology::subtree_span(std::uint32_t level,
                                         std::uint32_t index,
                                         std::uint32_t child) const {
  SPECNOC_EXPECTS(child < 2);
  const auto [lo, hi] = fanout_span(level, index);
  const std::uint32_t half = (hi - lo) / 2;
  SPECNOC_ASSERT(half >= 1);
  return noc::DestRange{lo + child * half, lo + (child + 1) * half};
}

noc::DestSet MotTopology::span_mask(std::uint32_t level,
                                    std::uint32_t index) const {
  const auto [lo, hi] = fanout_span(level, index);
  return noc::DestSet::range(lo, hi);
}

noc::DestSet MotTopology::subtree_mask(std::uint32_t level,
                                       std::uint32_t index,
                                       std::uint32_t child) const {
  const noc::DestRange span = subtree_span(level, index, child);
  return noc::DestSet::range(span.lo, span.hi);
}

std::uint32_t MotTopology::route_bit(std::uint32_t dest,
                                     std::uint32_t level) const {
  SPECNOC_EXPECTS(dest < n_);
  SPECNOC_EXPECTS(level < levels_);
  return (dest >> (levels_ - 1 - level)) & 1u;
}

std::uint32_t MotTopology::path_index(std::uint32_t dest,
                                      std::uint32_t level) const {
  SPECNOC_EXPECTS(dest < n_);
  SPECNOC_EXPECTS(level < levels_);
  return dest >> (levels_ - level);
}

std::uint32_t MotTopology::leaf_dest(std::uint32_t leaf_index,
                                     std::uint32_t out_port) const {
  SPECNOC_EXPECTS(leaf_index < nodes_at_level(levels_ - 1));
  SPECNOC_EXPECTS(out_port < 2);
  return leaf_index * 2 + out_port;
}

std::uint32_t MotTopology::fanin_leaf_index(std::uint32_t src) const {
  SPECNOC_EXPECTS(src < n_);
  return src / 2;
}

std::uint32_t MotTopology::fanin_leaf_port(std::uint32_t src) const {
  SPECNOC_EXPECTS(src < n_);
  return src % 2;
}

}  // namespace specnoc::mot
