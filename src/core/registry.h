// ArchitectureRegistry: an open name -> network-builder map.
//
// The Architecture enum is closed: it names the six networks the paper
// evaluates (plus kCustomHybrid as an escape hatch), and every harness
// used to dispatch on it directly. The registry replaces that closed
// dispatch with a process-wide table so new design points — or entirely
// third-party MessageNetwork implementations wrapped in a MotNetwork
// builder — plug into every harness and sharded sweep for free:
//
//  * Harnesses register design points under stable labels (e.g. the
//    speculation-level set "{0,2}") and put only the label in their
//    specs' `custom` field; ExperimentRunner rebuilds the factory from
//    the registry whenever a spec carries a label but no factory.
//  * Shard files serialize only the label (factories cannot travel
//    between processes, see stats/serialization.h), so a phase-2 worker
//    or a --from render process reconstructs exactly the same networks
//    as long as it registered the same labels — which it does, because
//    registration happens in the harness main() before any grid runs.
//
// Entries are builders, not bound factories: they take the caller's
// NetworkConfig, so one entry serves every radix/thread-count the
// harness sweeps.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/architecture.h"
#include "core/config.h"
#include "core/mot_network.h"

namespace specnoc::core {

/// Builds a fresh network for one run under the caller's config. Every
/// measurement constructs its own network, so builders must be safe to
/// invoke repeatedly and from worker threads.
using NetworkBuilder =
    std::function<std::unique_ptr<MotNetwork>(const NetworkConfig&)>;

class ArchitectureRegistry {
 public:
  struct Entry {
    /// The architecture reported in serialized spec identity. Canonical
    /// names report themselves; registered design points report
    /// kCustomHybrid (their real identity is the registered name).
    Architecture arch = Architecture::kCustomHybrid;
    NetworkBuilder build;
  };

  /// A fresh registry seeded with the six canonical architectures under
  /// their to_string() names.
  ArchitectureRegistry();

  /// The process-wide instance every ExperimentRunner consults.
  static ArchitectureRegistry& global();

  /// Registers a named builder. Throws ConfigError on an empty name or a
  /// name that is already registered (re-binding a label would silently
  /// change the identity of previously serialized results).
  void add(const std::string& name, NetworkBuilder build,
           Architecture reported = Architecture::kCustomHybrid);

  /// Registers the common kind of design point: optimized nodes with
  /// speculation at exactly `levels` (SpeculationMap::from_levels). The
  /// map is derived per build, so the entry works at any radix whose
  /// trees have those levels.
  void add_speculation_levels(const std::string& name,
                              std::vector<std::uint32_t> levels);

  bool contains(const std::string& name) const;

  /// Registered names, sorted (deterministic listing for --list-arch).
  std::vector<std::string> names() const;

  /// Looks up `name` and builds a network. Throws ConfigError for
  /// unknown names, listing what is registered.
  std::unique_ptr<MotNetwork> build(const std::string& name,
                                    const NetworkConfig& config) const;

  /// The architecture `name` reports in spec identity.
  Architecture reported(const std::string& name) const;

 private:
  Entry entry(const std::string& name) const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace specnoc::core
