#include "power/power_meter.h"

#include "nodes/characteristics.h"
#include "noc/node.h"
#include "util/contract.h"

namespace specnoc::power {

PowerMeter::PowerMeter(EnergyModelParams params) : params_(params) {}

bool PowerMeter::in_window(TimePs when) const {
  return window_open_ && !window_closed_ && when >= window_start_;
}

void PowerMeter::deposit(EnergyFj energy, TimePs when, bool is_wire) {
  total_energy_ += energy;
  if (in_window(when)) {
    window_energy_ += energy;
    if (is_wire) {
      window_wire_energy_ += energy;
    } else {
      window_node_energy_ += energy;
    }
  }
}

void PowerMeter::on_node_op(const noc::Node& node, noc::NodeOp op,
                            TimePs when) {
  EnergyFj energy = 0.0;
  if (op == noc::NodeOp::kSourceSend || op == noc::NodeOp::kSinkConsume) {
    energy = params_.interface_fj;
  } else {
    const auto& chars = nodes::default_characteristics(node.kind());
    energy = params_.node_fj_per_um2 * chars.area_um2 *
             params_.complexity(node.kind()) * params_.activity_factor(op);
  }
  if (in_window(when)) {
    ++window_op_counts_[static_cast<std::size_t>(op)];
    window_kind_energy_[static_cast<std::size_t>(node.kind())] += energy;
  }
  deposit(energy, when, /*is_wire=*/false);
}

void PowerMeter::on_channel_flit(LengthUm length, TimePs when) {
  if (in_window(when)) {
    ++window_channel_flits_;
  }
  deposit(params_.wire_fj_per_um * length, when, /*is_wire=*/true);
}

void PowerMeter::open_window(TimePs now) {
  SPECNOC_EXPECTS(!window_open_);
  window_open_ = true;
  window_start_ = now;
}

void PowerMeter::close_window(TimePs now) {
  SPECNOC_EXPECTS(window_open_ && !window_closed_);
  SPECNOC_EXPECTS(now >= window_start_);
  window_closed_ = true;
  window_end_ = now;
}

TimePs PowerMeter::window_duration() const {
  SPECNOC_EXPECTS(window_closed_);
  return window_end_ - window_start_;
}

double PowerMeter::window_power_mw() const {
  return fj_over_ps_to_mw(window_energy_, window_duration());
}

std::uint64_t PowerMeter::window_ops(noc::NodeOp op) const {
  return window_op_counts_[static_cast<std::size_t>(op)];
}

EnergyFj PowerMeter::window_kind_energy(noc::NodeKind kind) const {
  return window_kind_energy_[static_cast<std::size_t>(kind)];
}

}  // namespace specnoc::power
