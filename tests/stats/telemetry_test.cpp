// Unit coverage for the time-resolved telemetry layer: epoch interval
// semantics of TelemetrySampler, flight-recorder ring eviction, the exact
// JSON codec for series, the NDJSON frame protocol, and the Perfetto
// counter-track export.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "core/mot_network.h"
#include "noc/hooks.h"
#include "stats/metrics.h"
#include "stats/perfetto_trace.h"
#include "stats/serialization.h"
#include "stats/telemetry.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"
#include "util/error.h"
#include "util/json.h"

namespace specnoc {
namespace {

using namespace specnoc::literals;

struct SampledRun {
  stats::TelemetrySeries series;
  stats::MetricsSnapshot snapshot;
  TimePs end_time = 0;
};

/// Saturated multicast on the 8x8 hybrid network with a sampler armed on
/// the registry — the same attachment shape the experiment layer uses.
SampledRun run_sampled(TimePs epoch_ps, std::size_t ring, TimePs horizon,
                       unsigned sim_threads = 1) {
  core::NetworkConfig cfg;  // 8x8
  cfg.sim_threads = sim_threads;
  core::MotNetwork net(core::Architecture::kOptHybridSpeculative, cfg);
  stats::MetricsRegistry registry;
  stats::TelemetryOptions options;
  options.epoch_ps = epoch_ps;
  options.ring_capacity = ring;
  stats::TelemetrySampler sampler(options);
  net.net().hooks().metrics = &registry;
  sampler.arm(net.net(), registry);
  auto pattern =
      traffic::make_benchmark(traffic::BenchmarkId::kMulticast10, cfg.n);
  traffic::DriverConfig dcfg;
  dcfg.mode = traffic::InjectionMode::kBacklogged;
  dcfg.seed = 99;
  traffic::TrafficDriver driver(net, *pattern, dcfg);
  driver.start();
  net.net().run_until(horizon);
  SampledRun run;
  run.series = sampler.finish();
  run.snapshot = registry.snapshot();
  run.end_time = net.net().now();
  return run;
}

TEST(TelemetrySamplerTest, IntervalsAreContiguousAndEpochAligned) {
  const SampledRun run = run_sampled(10_ns, 4096, 100_ns);
  const auto& series = run.series;
  ASSERT_EQ(series.epoch_ps, 10_ns);
  ASSERT_FALSE(series.epochs.empty());
  EXPECT_EQ(series.dropped, 0u);
  EXPECT_EQ(series.epochs_total, series.epochs.size());

  EXPECT_EQ(series.epochs.front().start_ps, 0);
  for (std::size_t i = 0; i < series.epochs.size(); ++i) {
    const auto& epoch = series.epochs[i];
    EXPECT_LT(epoch.start_ps, epoch.end_ps) << "epoch " << i;
    if (i > 0) {
      EXPECT_EQ(epoch.start_ps, series.epochs[i - 1].end_ps) << "epoch " << i;
    }
    // Every interior interval closes on an epoch boundary; a quiet stretch
    // closes as one wider interval, still a whole number of epochs.
    if (i + 1 < series.epochs.size()) {
      EXPECT_EQ(epoch.end_ps % series.epoch_ps, 0) << "epoch " << i;
    }
  }
  // The final interval is closed by finish() at the run's end time.
  EXPECT_LE(series.epochs.back().end_ps, run.end_time);
}

TEST(TelemetrySamplerTest, DeltasSumToRunTotals) {
  const SampledRun run = run_sampled(10_ns, 4096, 500_ns);
  ASSERT_FALSE(run.snapshot.empty());
  ASSERT_GT(run.snapshot.total_kills(), 0u);

  std::uint64_t kills = 0, hits = 0, misses = 0, grants = 0, events = 0;
  std::map<std::string, std::uint64_t> stalls;
  for (const auto& epoch : run.series.epochs) {
    kills += epoch.kills;
    hits += epoch.prealloc_hits;
    misses += epoch.prealloc_misses;
    grants += epoch.contended_grants;
    events += epoch.events;
    for (const auto& [klass, stall_ps] : epoch.stall_time_ps) {
      stalls[klass] += stall_ps;
    }
  }
  EXPECT_EQ(kills, run.snapshot.total_kills());
  EXPECT_EQ(hits, run.snapshot.total_prealloc_hits());
  EXPECT_EQ(misses, run.snapshot.total_prealloc_misses());
  EXPECT_GT(events, 0u);
  std::uint64_t grants_total = 0;
  for (const auto& site : run.snapshot.sites) {
    grants_total += site.counters.contended_grants;
  }
  EXPECT_EQ(grants, grants_total);
  for (const auto& channel : run.snapshot.channels) {
    EXPECT_EQ(stalls[channel.klass], channel.stall_time_ps) << channel.klass;
  }
}

TEST(TelemetrySamplerTest, RingEvictsOldestAndCountsDropped) {
  const SampledRun run = run_sampled(1_ns, 8, 200_ns);
  const auto& series = run.series;
  ASSERT_EQ(series.epochs.size(), 8u);
  EXPECT_GT(series.dropped, 0u);
  EXPECT_EQ(series.epochs_total, series.dropped + series.epochs.size());
  // The retained suffix is the most recent one.
  EXPECT_GT(series.epochs.front().start_ps, 0);
  EXPECT_LE(series.epochs.back().end_ps, run.end_time);
}

TEST(TelemetrySamplerTest, FlightRecorderDumpIsNonEmpty) {
  core::NetworkConfig cfg;
  core::MotNetwork net(core::Architecture::kOptHybridSpeculative, cfg);
  stats::MetricsRegistry registry;
  stats::TelemetryOptions options;
  options.epoch_ps = 10_ns;
  stats::TelemetrySampler sampler(options);
  net.net().hooks().metrics = &registry;
  sampler.arm(net.net(), registry);
  auto pattern =
      traffic::make_benchmark(traffic::BenchmarkId::kMulticast10, cfg.n);
  traffic::DriverConfig dcfg;
  dcfg.mode = traffic::InjectionMode::kBacklogged;
  dcfg.seed = 99;
  traffic::TrafficDriver driver(net, *pattern, dcfg);
  driver.start();
  net.net().run_until(100_ns);

  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  sampler.dump_flight_recorder(out);
  EXPECT_GT(std::ftell(out), 0);
  std::fclose(out);
}

TEST(TelemetrySeriesTest, JsonRoundTripIsByteIdentical) {
  const SampledRun run = run_sampled(10_ns, 4096, 200_ns);
  const util::Json json = stats::telemetry_series_to_json(run.series);
  const stats::TelemetrySeries back =
      stats::telemetry_series_from_json(json);
  EXPECT_TRUE(back == run.series);
  EXPECT_EQ(util::json_write(stats::telemetry_series_to_json(back)),
            util::json_write(json));
}

TEST(TelemetrySeriesTest, EmptySeriesIsOmittedFromSnapshotJson) {
  stats::MetricsSnapshot snapshot;
  const std::string plain = util::json_write(stats::to_json(snapshot));
  EXPECT_EQ(plain.find("telemetry"), std::string::npos);
  EXPECT_EQ(plain.find("spills"), std::string::npos);

  snapshot.telemetry.epoch_ps = 10_ns;
  snapshot.dest_spills = 3;
  const std::string with = util::json_write(stats::to_json(snapshot));
  EXPECT_NE(with.find("telemetry"), std::string::npos);
  EXPECT_NE(with.find("spills"), std::string::npos);

  const stats::MetricsSnapshot back =
      stats::metrics_snapshot_from_json(stats::to_json(snapshot));
  EXPECT_EQ(back.dest_spills, 3u);
  EXPECT_TRUE(back.telemetry == snapshot.telemetry);
}

TEST(TelemetryFrameTest, RoundTripsAllKinds) {
  for (const auto kind :
       {stats::TelemetryFrameKind::kStart, stats::TelemetryFrameKind::kRun,
        stats::TelemetryFrameKind::kEnd}) {
    util::Json body = util::Json::object();
    body.set("tool", "test");
    body.set("cell", std::uint64_t{7});
    const std::string line = stats::telemetry_frame_write(kind, body);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const stats::TelemetryFrame frame = stats::telemetry_frame_parse(line);
    EXPECT_EQ(frame.kind, kind);
    EXPECT_EQ(frame.body.at("frame").as_string(), stats::to_string(kind));
    EXPECT_EQ(frame.body.at("tool").as_string(), "test");
    EXPECT_EQ(frame.body.at("cell").as_u64(), 7u);
    // The line is stable under a parse/re-write cycle.
    util::Json again = frame.body;
    // body round-trips exactly: the discriminator stays the first key.
    EXPECT_EQ(util::json_write(again), line);
  }
}

TEST(TelemetryFrameTest, ParseRejectsMalformedLines) {
  EXPECT_THROW(stats::telemetry_frame_parse("not json"), ConfigError);
  EXPECT_THROW(stats::telemetry_frame_parse("[1,2]"), ConfigError);
  EXPECT_THROW(stats::telemetry_frame_parse("{\"a\":1}"), ConfigError);
  EXPECT_THROW(stats::telemetry_frame_parse("{\"frame\":\"bogus\"}"),
               ConfigError);
}

TEST(TelemetryPerfettoTest, CounterTracksRideTheTrace) {
  const SampledRun run = run_sampled(10_ns, 4096, 100_ns);
  ASSERT_FALSE(run.series.epochs.empty());
  stats::PerfettoTracer tracer;
  tracer.set_telemetry(run.series);
  const util::Json doc = tracer.trace_json();

  std::size_t counters = 0;
  bool saw_rate = false, saw_kills = false, saw_stall = false;
  for (const util::Json& event : doc.at("traceEvents").items()) {
    const util::Json* ph = event.find("ph");
    if (ph == nullptr || ph->as_string() != "C") continue;
    ++counters;
    const std::string name = event.at("name").as_string();
    if (name == "telemetry.events_per_s") saw_rate = true;
    if (name == "telemetry.kills") saw_kills = true;
    if (name.rfind("telemetry.stall_ps.", 0) == 0) saw_stall = true;
    EXPECT_NO_THROW(event.at("args").at("value"));
  }
  EXPECT_GE(counters, run.series.epochs.size() * 6);
  EXPECT_TRUE(saw_rate);
  EXPECT_TRUE(saw_kills);
  EXPECT_TRUE(saw_stall);
}

}  // namespace
}  // namespace specnoc
