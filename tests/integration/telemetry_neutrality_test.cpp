// The telemetry layer's core invariant, tested end-to-end: enabling epoch
// sampling changes no simulated byte. For every canonical architecture in
// the registry, on both the sequential and the partitioned kernel, a run
// with a TelemetrySampler armed produces the same event count, the same
// final simulated time, and a byte-identical MetricsSnapshot (compared
// through the exact JSON codec) as the same run without one.
#include <gtest/gtest.h>

#include <string>

#include "core/mot_network.h"
#include "core/registry.h"
#include "noc/hooks.h"
#include "stats/metrics.h"
#include "stats/serialization.h"
#include "stats/telemetry.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"
#include "util/json.h"

namespace specnoc {
namespace {

using namespace specnoc::literals;

struct RunResult {
  std::uint64_t events = 0;
  TimePs end_time = 0;
  std::string snapshot_json;
};

RunResult run_once(const std::string& arch, unsigned sim_threads,
                   bool sampled) {
  core::NetworkConfig cfg;  // 8x8
  cfg.sim_threads = sim_threads;
  auto net = core::ArchitectureRegistry::global().build(arch, cfg);

  stats::MetricsRegistry registry;
  stats::TelemetryOptions options;
  options.epoch_ps = 5_ns;
  stats::TelemetrySampler sampler(options);
  net->net().hooks().metrics = &registry;
  if (sampled) sampler.arm(net->net(), registry);

  auto pattern =
      traffic::make_benchmark(traffic::BenchmarkId::kMulticast10, cfg.n);
  traffic::DriverConfig dcfg;
  dcfg.mode = traffic::InjectionMode::kBacklogged;
  dcfg.seed = 7;
  traffic::TrafficDriver driver(*net, *pattern, dcfg);
  driver.start();
  net->net().run_until(500_ns);

  RunResult result;
  result.events = net->net().executed();
  result.end_time = net->net().now();
  if (sampled) {
    // Sampling produced a real series — the invariant is only meaningful
    // when the sampler actually fired.
    EXPECT_FALSE(sampler.finish().epochs.empty()) << arch;
  }
  result.snapshot_json = util::json_write(stats::to_json(registry.snapshot()));
  return result;
}

class TelemetryNeutralityTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(TelemetryNeutralityTest, SamplingChangesNoSimulatedByte) {
  const std::string arch = GetParam();
  for (const unsigned sim_threads : {1u, 4u}) {
    SCOPED_TRACE(arch + " sim_threads=" + std::to_string(sim_threads));
    const RunResult plain = run_once(arch, sim_threads, /*sampled=*/false);
    const RunResult sampled = run_once(arch, sim_threads, /*sampled=*/true);
    EXPECT_EQ(plain.events, sampled.events);
    EXPECT_EQ(plain.end_time, sampled.end_time);
    EXPECT_EQ(plain.snapshot_json, sampled.snapshot_json);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistryArchitectures, TelemetryNeutralityTest,
    ::testing::ValuesIn(core::ArchitectureRegistry::global().names()),
    [](const ::testing::TestParamInfo<std::string>& p) { return p.param; });

}  // namespace
}  // namespace specnoc
