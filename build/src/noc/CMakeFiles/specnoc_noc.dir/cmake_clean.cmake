file(REMOVE_RECURSE
  "CMakeFiles/specnoc_noc.dir/channel.cpp.o"
  "CMakeFiles/specnoc_noc.dir/channel.cpp.o.d"
  "CMakeFiles/specnoc_noc.dir/network.cpp.o"
  "CMakeFiles/specnoc_noc.dir/network.cpp.o.d"
  "CMakeFiles/specnoc_noc.dir/node.cpp.o"
  "CMakeFiles/specnoc_noc.dir/node.cpp.o.d"
  "CMakeFiles/specnoc_noc.dir/packet.cpp.o"
  "CMakeFiles/specnoc_noc.dir/packet.cpp.o.d"
  "CMakeFiles/specnoc_noc.dir/sink.cpp.o"
  "CMakeFiles/specnoc_noc.dir/sink.cpp.o.d"
  "CMakeFiles/specnoc_noc.dir/source.cpp.o"
  "CMakeFiles/specnoc_noc.dir/source.cpp.o.d"
  "libspecnoc_noc.a"
  "libspecnoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specnoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
