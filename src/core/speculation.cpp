#include "core/speculation.h"

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::core {

SpeculationMap::SpeculationMap(mot::MotTopology topology,
                               std::vector<bool> flags)
    : topology_(topology), flags_(std::move(flags)) {
  SPECNOC_ASSERT(flags_.size() == topology_.nodes_per_tree());
}

SpeculationMap SpeculationMap::none(const mot::MotTopology& topology) {
  return SpeculationMap(topology,
                        std::vector<bool>(topology.nodes_per_tree(), false));
}

SpeculationMap SpeculationMap::hybrid(const mot::MotTopology& topology) {
  std::vector<std::uint32_t> levels;
  for (std::uint32_t l = 0; l + 1 < topology.levels(); l += 2) {
    levels.push_back(l);
  }
  return from_levels(topology, levels);
}

SpeculationMap SpeculationMap::all_speculative(
    const mot::MotTopology& topology) {
  std::vector<std::uint32_t> levels;
  for (std::uint32_t l = 0; l + 1 < topology.levels(); ++l) {
    levels.push_back(l);
  }
  return from_levels(topology, levels);
}

SpeculationMap SpeculationMap::from_levels(
    const mot::MotTopology& topology,
    const std::vector<std::uint32_t>& levels) {
  std::vector<bool> flags(topology.nodes_per_tree(), false);
  for (const std::uint32_t level : levels) {
    if (level >= topology.levels()) {
      throw ConfigError("speculative level " + std::to_string(level) +
                        " out of range for depth " +
                        std::to_string(topology.levels()));
    }
    for (std::uint32_t i = 0; i < topology.nodes_at_level(level); ++i) {
      flags[mot::MotTopology::heap_id(level, i)] = true;
    }
  }
  return from_flags(topology, std::move(flags));
}

SpeculationMap SpeculationMap::from_flags(const mot::MotTopology& topology,
                                          std::vector<bool> by_heap_id) {
  if (by_heap_id.size() != topology.nodes_per_tree()) {
    throw ConfigError("speculation flag vector size mismatch");
  }
  const std::uint32_t leaf_level = topology.levels() - 1;
  for (std::uint32_t i = 0; i < topology.nodes_at_level(leaf_level); ++i) {
    if (by_heap_id[mot::MotTopology::heap_id(leaf_level, i)]) {
      throw ConfigError(
          "leaf-level fanout nodes must be non-speculative: the fanin "
          "network cannot throttle misrouted packets");
    }
  }
  return SpeculationMap(topology, std::move(by_heap_id));
}

bool SpeculationMap::speculative(std::uint32_t level,
                                 std::uint32_t index) const {
  return flags_[mot::MotTopology::heap_id(level, index)];
}

bool SpeculationMap::is_local() const {
  for (std::uint32_t level = 0; level + 1 < topology_.levels(); ++level) {
    for (std::uint32_t i = 0; i < topology_.nodes_at_level(level); ++i) {
      if (!speculative(level, i)) continue;
      if (speculative(level + 1, 2 * i) || speculative(level + 1, 2 * i + 1)) {
        return false;
      }
    }
  }
  return true;
}

std::uint32_t SpeculationMap::speculative_count() const {
  std::uint32_t count = 0;
  for (const bool flag : flags_) {
    if (flag) ++count;
  }
  return count;
}

std::uint32_t SpeculationMap::non_speculative_count() const {
  return topology_.nodes_per_tree() - speculative_count();
}

}  // namespace specnoc::core
