# Empty compiler generated dependencies file for barrier_sync.
# This may be replaced when dependencies are built.
