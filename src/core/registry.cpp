#include "core/registry.h"

#include <utility>

#include "mot/topology.h"
#include "util/error.h"

namespace specnoc::core {

ArchitectureRegistry::ArchitectureRegistry() {
  for (const auto arch : all_architectures()) {
    add(
        to_string(arch),
        [arch](const NetworkConfig& config) {
          return std::make_unique<MotNetwork>(arch, config);
        },
        arch);
  }
}

ArchitectureRegistry& ArchitectureRegistry::global() {
  static ArchitectureRegistry registry;
  return registry;
}

void ArchitectureRegistry::add(const std::string& name, NetworkBuilder build,
                               Architecture reported) {
  if (name.empty()) throw ConfigError("architecture name must be non-empty");
  if (!build) {
    throw ConfigError("architecture '" + name + "' needs a builder");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      entries_.emplace(name, Entry{reported, std::move(build)});
  if (!inserted) {
    throw ConfigError("architecture '" + name +
                      "' is already registered; re-binding a name would "
                      "change the identity of serialized results");
  }
}

void ArchitectureRegistry::add_speculation_levels(
    const std::string& name, std::vector<std::uint32_t> levels) {
  add(name, [levels = std::move(levels)](const NetworkConfig& config) {
    const mot::MotTopology topology(config.n);
    return std::make_unique<MotNetwork>(
        config, SpeculationMap::from_levels(topology, levels));
  });
}

bool ArchitectureRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> ArchitectureRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

ArchitectureRegistry::Entry ArchitectureRegistry::entry(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [known_name, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += known_name;
    }
    throw ConfigError("unknown architecture '" + name +
                      "' (registered: " + known + ")");
  }
  return it->second;
}

std::unique_ptr<MotNetwork> ArchitectureRegistry::build(
    const std::string& name, const NetworkConfig& config) const {
  return entry(name).build(config);
}

Architecture ArchitectureRegistry::reported(const std::string& name) const {
  return entry(name).arch;
}

}  // namespace specnoc::core
