#include "core/architecture.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace specnoc::core {
namespace {

TEST(ArchitectureTest, Names) {
  EXPECT_STREQ(to_string(Architecture::kBaseline), "Baseline");
  EXPECT_STREQ(to_string(Architecture::kOptHybridSpeculative),
               "OptHybridSpeculative");
}

TEST(ArchitectureTest, Traits) {
  EXPECT_FALSE(traits(Architecture::kBaseline).multicast_capable);
  EXPECT_FALSE(traits(Architecture::kBaseline).optimized);
  EXPECT_TRUE(traits(Architecture::kBasicNonSpeculative).multicast_capable);
  EXPECT_FALSE(traits(Architecture::kBasicHybridSpeculative).optimized);
  EXPECT_TRUE(traits(Architecture::kOptNonSpeculative).optimized);
  EXPECT_TRUE(traits(Architecture::kOptAllSpeculative).optimized);
}

TEST(ArchitectureTest, SpeculationProfiles) {
  mot::MotTopology t(8);
  EXPECT_EQ(speculation_for(Architecture::kBaseline, t).speculative_count(),
            0u);
  EXPECT_EQ(
      speculation_for(Architecture::kBasicNonSpeculative, t)
          .speculative_count(),
      0u);
  EXPECT_EQ(speculation_for(Architecture::kBasicHybridSpeculative, t)
                .speculative_count(),
            1u);
  EXPECT_EQ(speculation_for(Architecture::kOptHybridSpeculative, t)
                .speculative_count(),
            1u);
  EXPECT_EQ(
      speculation_for(Architecture::kOptAllSpeculative, t)
          .speculative_count(),
      3u);
}

TEST(ArchitectureTest, FanoutKinds) {
  using noc::NodeKind;
  EXPECT_EQ(fanout_kind(Architecture::kBaseline, false),
            NodeKind::kFanoutBaseline);
  EXPECT_EQ(fanout_kind(Architecture::kBasicNonSpeculative, false),
            NodeKind::kFanoutNonSpeculative);
  EXPECT_EQ(fanout_kind(Architecture::kBasicHybridSpeculative, true),
            NodeKind::kFanoutSpeculative);
  EXPECT_EQ(fanout_kind(Architecture::kBasicHybridSpeculative, false),
            NodeKind::kFanoutNonSpeculative);
  EXPECT_EQ(fanout_kind(Architecture::kOptHybridSpeculative, true),
            NodeKind::kFanoutOptSpeculative);
  EXPECT_EQ(fanout_kind(Architecture::kOptAllSpeculative, false),
            NodeKind::kFanoutOptNonSpeculative);
}

TEST(ArchitectureTest, FromStringRoundTrip) {
  for (const auto arch : all_architectures()) {
    EXPECT_EQ(architecture_from_string(to_string(arch)), arch);
  }
}

TEST(ArchitectureTest, FromStringRejectsUnknown) {
  EXPECT_THROW(architecture_from_string("NotAnArch"), ConfigError);
  EXPECT_THROW(architecture_from_string(""), ConfigError);
  // kCustomHybrid has no canonical map and is not parseable.
  EXPECT_THROW(architecture_from_string("CustomHybrid"), ConfigError);
}

TEST(ArchitectureTest, CaseStudyLists) {
  EXPECT_EQ(all_architectures().size(), 6u);
  EXPECT_EQ(trajectory_architectures().size(), 4u);
  EXPECT_EQ(dse_architectures().size(), 3u);
  EXPECT_EQ(trajectory_architectures()[0], Architecture::kBaseline);
  EXPECT_EQ(dse_architectures()[0], Architecture::kOptNonSpeculative);
}

}  // namespace
}  // namespace specnoc::core
