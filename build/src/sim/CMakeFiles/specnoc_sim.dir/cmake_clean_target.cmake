file(REMOVE_RECURSE
  "libspecnoc_sim.a"
)
