# Empty dependencies file for bench_power_breakdown.
# This may be replaced when dependencies are built.
