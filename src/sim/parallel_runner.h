// Work-stealing execution of independent simulation runs.
//
// Every run in an experiment grid is an isolated simulation — its own
// Scheduler, Rng streams, and network are constructed inside the job — so
// runs can execute on any thread in any order. Determinism is preserved by
// construction: outcomes are collected into a slot keyed by run index,
// never by completion order, so aggregated results are bit-identical to
// the serial path regardless of thread count. With jobs() == 1 the runner
// executes every run inline on the calling thread (the exact serial code
// path; no threads are spawned).
//
// Failure policy: a run that throws is retried up to Options::max_attempts
// times and, if it keeps throwing, reported failed in its own outcome slot.
// One bad run never aborts the batch or the process.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace specnoc::sim {

/// Worker count used when Options::jobs == 0: the hardware concurrency,
/// at least 1.
unsigned default_jobs();

/// Per-run measurement data, surfaced in the harnesses' output tables.
struct RunTelemetry {
  double wall_ms = 0.0;  ///< wall time of the last attempt
  /// Scheduler events the run executed (whatever the job returned).
  std::uint64_t events_executed = 0;
  unsigned attempts = 0;  ///< 1 = succeeded on the first try
};

struct RunOutcome {
  bool ok = false;
  std::string error;  ///< what() of the last failure when !ok
  RunTelemetry telemetry;
};

struct RunnerOptions {
  unsigned jobs = 0;          ///< worker threads; 0 = default_jobs()
  unsigned max_attempts = 2;  ///< tries per run before reporting failure
  /// Live progress reporting: a line to stderr every this many ms
  /// (completed/total, rate, ETA, retried/failed counts) plus a final
  /// summary line. 0 (default) = silent. stderr only, so stdout stays
  /// byte-identical with and without it.
  unsigned progress_interval_ms = 0;
  std::string progress_label = {};  ///< line prefix, e.g. the harness name
  /// Extra detail appended to each progress line (e.g. the PDES lane shape
  /// of partitioned runs). Called on the progress thread, so it must be
  /// thread-safe; an empty return adds nothing.
  std::function<std::string()> progress_note = {};
  /// Called once per run right after its final attempt resolves (ok or
  /// failed), from whichever worker thread finished it — the live
  /// streaming hook (stats::TelemetryStream frames go out through this
  /// mid-batch, before the batch returns). Must be thread-safe; runs
  /// complete in nondeterministic order under jobs > 1.
  std::function<void(std::size_t index, const RunOutcome& outcome)>
      on_run_done = {};
};

class ParallelRunner {
 public:
  using Options = RunnerOptions;

  explicit ParallelRunner(Options options = {});

  unsigned jobs() const { return jobs_; }

  /// One run: executes simulation `index` and returns the number of
  /// scheduler events it executed (telemetry only; return 0 if unknown).
  /// Must be safe to call concurrently for distinct indices, and must not
  /// share mutable state between indices (each run builds its own world).
  /// On retry the job is simply invoked again, so any per-run state it
  /// creates must be re-created from scratch inside the call.
  using Job = std::function<std::uint64_t(std::size_t index)>;

  /// Executes runs [0, count), each exactly once (plus retries), and
  /// returns their outcomes indexed by run.
  std::vector<RunOutcome> run(std::size_t count, const Job& job) const;

 private:
  unsigned jobs_;
  unsigned max_attempts_;
  unsigned progress_interval_ms_;
  std::string progress_label_;
  std::function<std::string()> progress_note_;
  std::function<void(std::size_t, const RunOutcome&)> on_run_done_;
};

}  // namespace specnoc::sim
