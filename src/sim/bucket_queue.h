// Hierarchical bucket queue: the scheduler's pending-event store.
//
// Two tiers, both keyed on picosecond timestamps and both preserving the
// kernel's exact (time, insertion sequence) pop order:
//
//  * Near tier — a ring of kNumBuckets one-picosecond-wide buckets covering
//    the window [base, base + kNumBuckets). Each bucket is an intrusive
//    FIFO list of slab entries; because a bucket spans exactly one
//    picosecond, FIFO order *is* sequence order, so schedule and pop are
//    O(1). A two-level bitmap (one summary word over 64 occupancy words)
//    finds the next non-empty bucket with a handful of countr_zero ops.
//    The window only ever slides forward (base tracks the last popped /
//    advanced-to time), so a circular scan starting at base's bucket is
//    time-ordered despite the wrap-around indexing.
//
//  * Overflow tier — a binary min-heap on (time, seq) for events beyond
//    the window (watchdog timeouts, low-rate open-loop arrivals). Whenever
//    base advances, every overflow event that now falls inside the window
//    is eagerly promoted into its bucket, in heap order. Eager promotion
//    is what keeps mixed-tier ordering exact: a ring insertion at time T
//    can only happen once T is inside the window, by which point any
//    earlier-scheduled (lower-seq) overflow event at T has already been
//    promoted ahead of it.
//
// Event entries live in a slab of fixed-size chunks with a free list:
// after warm-up the queue performs zero heap allocations per event, and
// reserve() can pre-size the slab to eliminate even the warm-up growth.
// Chunking keeps entry addresses stable, which lets the scheduler invoke a
// popped event *in place* — no relocation per pop — even while the handler
// schedules new events into the slab.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.h"
#include "util/contract.h"
#include "util/units.h"

namespace specnoc::sim {

class BucketQueue {
 public:
  /// Near-tier window size in picoseconds (= number of 1 ps buckets).
  /// 4096 covers every switch/channel handshake delay in
  /// nodes/characteristics.cpp (tens to hundreds of ps) and the default
  /// fanin watchdog (900 ps) with slack; only far-future events (low-rate
  /// open-loop arrivals, long horizons) touch the overflow heap.
  static constexpr std::uint32_t kNumBuckets = 4096;

  BucketQueue();
  BucketQueue(const BucketQueue&) = delete;
  BucketQueue& operator=(const BucketQueue&) = delete;

  bool empty() const { return ring_size_ == 0 && overflow_.empty(); }
  std::size_t size() const { return ring_size_ + overflow_.size(); }
  /// Entries parked in the far-future overflow heap (telemetry only).
  std::size_t overflow_size() const { return overflow_.size(); }

  /// Pre-sizes the slab (and overflow heap) for `events` concurrently
  /// pending events, eliminating warm-up vector growth.
  void reserve(std::size_t events);

  /// Inserts `fn` at time `t`, constructing the callable directly inside
  /// the slab entry (no intermediate moves). Requires t >= the current
  /// window base (the scheduler guarantees this via its t >= now()
  /// precondition).
  template <typename F>
  void push(TimePs t, F&& fn) {
    SPECNOC_EXPECTS(t >= base_);
    std::uint32_t slot = free_head_;
    Entry* ep;
    if (slot != kNpos) {
      ep = &entry(slot);
      free_head_ = ep->next;
    } else {
      if (slab_size_ == slab_capacity_) add_chunk();
      slot = slab_size_++;
      ep = &entry(slot);
    }
    Entry& e = *ep;
    if constexpr (std::is_same_v<std::decay_t<F>, InplaceEvent>) {
      e.fn = std::forward<F>(fn);
    } else {
      e.fn.emplace(std::forward<F>(fn));
    }
    e.time = t;
    e.next = kNpos;
    if (t - base_ < kNumBuckets) {
      // Near tier: the bucket spans exactly 1 ps, so FIFO append preserves
      // insertion-sequence order without storing a sequence number.
      const std::uint32_t b = static_cast<std::uint32_t>(t) & kMask;
      Bucket& bucket = buckets_[b];
      if (bucket.tail == kNpos) {
        bucket.head = slot;
        set_bit(b);
      } else {
        entry(bucket.tail).next = slot;
      }
      bucket.tail = slot;
      ++ring_size_;
    } else {
      // Overflow tier: ordered by (time, seq); seqs are only assigned
      // here, and stay monotonic in insertion order, which is all the
      // ordering contract needs (ring/overflow mixing at equal times is
      // impossible — see promote_overflow()).
      overflow_.push_back(OverflowRef{t, next_seq_++, slot});
      sift_up(overflow_.size() - 1);
      overflow_min_ = overflow_.front().time;
    }
  }

  /// Time of the earliest pending event. Requires !empty().
  TimePs min_time() const {
    if (ring_size_ != 0) {
      return entry(buckets_[first_occupied_bucket()].head).time;
    }
    SPECNOC_ASSERT(!overflow_.empty());
    return overflow_.front().time;
  }

  /// A slab entry. Public only so PopRef can carry a pointer to one; the
  /// scheduler treats it as opaque.
  struct Entry {
    InplaceEvent fn;
    TimePs time = 0;
    std::uint32_t next = 0xffffffffu;
  };

  /// Handle to a popped-but-not-yet-recycled event. The entry's address is
  /// stable (chunked slab), so the scheduler can fire the event in place
  /// while the handler schedules new events, then recycle the slot.
  struct PopRef {
    TimePs time;
    std::uint32_t slot;
    Entry* entry;
  };

  /// Unlinks the earliest pending event — minimal (time, seq) — advancing
  /// the window to its timestamp. The entry stays alive until recycle().
  /// Requires !empty().
  PopRef pop() {
    SPECNOC_EXPECTS(!empty());
    if (ring_size_ == 0) {
      // Everything pending is far-future: jump the window to the overflow
      // minimum, which promotes at least that event into the ring.
      advance_base(overflow_min_);
      SPECNOC_ASSERT(ring_size_ != 0);
    }
    const std::uint32_t b = first_occupied_bucket();
    Bucket& bucket = buckets_[b];
    const std::uint32_t slot = bucket.head;
    Entry& e = entry(slot);
    if (e.time != base_) {
      // Sliding the window forward may promote overflow events, but only
      // at strictly later times than e.time, never into bucket b.
      advance_base(e.time);
    }
    bucket.head = e.next;
    if (bucket.head == kNpos) {
      bucket.tail = kNpos;
      clear_bit(b);
    }
    --ring_size_;
    return PopRef{e.time, slot, &e};
  }

  /// Fires a popped event in place, destroying its callable (one indirect
  /// call for the whole sequence).
  void invoke_and_dispose(const PopRef& ref) {
    ref.entry->fn.invoke_and_dispose();
  }

  /// Returns a popped (and fired) event's slot to the free list.
  void recycle(const PopRef& ref) {
    ref.entry->next = free_head_;
    free_head_ = ref.slot;
  }

  /// Slides the window base forward to `t`. Requires that no pending event
  /// is earlier than `t` (the scheduler calls this from run_until after
  /// draining all events <= t).
  void advance_to(TimePs t);

 private:
  static constexpr std::uint32_t kMask = kNumBuckets - 1;
  static constexpr std::uint32_t kNumWords = kNumBuckets / 64;
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  /// Slab chunk size (entries). 256 entries ≈ 20 KiB per chunk: small
  /// enough that warm-up growth is cheap, large enough that chunk lookups
  /// stay in one or two cache lines of the chunk table.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

  struct Bucket {
    std::uint32_t head = kNpos;
    std::uint32_t tail = kNpos;
  };
  struct OverflowRef {
    TimePs time;
    std::uint64_t seq;
    std::uint32_t slot;
    bool earlier_than(const OverflowRef& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  Entry& entry(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  const Entry& entry(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  void link_into_bucket(std::uint32_t slot) {
    const std::uint32_t b =
        static_cast<std::uint32_t>(entry(slot).time) & kMask;
    Bucket& bucket = buckets_[b];
    if (bucket.tail == kNpos) {
      bucket.head = slot;
      set_bit(b);
    } else {
      entry(bucket.tail).next = slot;
    }
    bucket.tail = slot;
  }

  void set_bit(std::uint32_t b) {
    words_[b >> 6] |= std::uint64_t{1} << (b & 63u);
    summary_ |= std::uint64_t{1} << (b >> 6);
  }
  void clear_bit(std::uint32_t b) {
    words_[b >> 6] &= ~(std::uint64_t{1} << (b & 63u));
    if (words_[b >> 6] == 0) summary_ &= ~(std::uint64_t{1} << (b >> 6));
  }

  /// Index of the first occupied bucket at or circularly after base's
  /// bucket. Requires ring_size_ != 0.
  std::uint32_t first_occupied_bucket() const {
    const std::uint32_t start = static_cast<std::uint32_t>(base_) & kMask;
    const std::uint32_t w0 = start >> 6;
    const std::uint32_t b0 = start & 63u;
    // Bits at or after the start position within the start word.
    std::uint64_t word = words_[w0] & (~std::uint64_t{0} << b0);
    if (word != 0) {
      return (w0 << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
    }
    // Whole words strictly after the start word.
    std::uint64_t sum =
        w0 + 1 < kNumWords ? summary_ & (~std::uint64_t{0} << (w0 + 1)) : 0;
    if (sum == 0) {
      // Wrapped region: words before the start word, then the low bits of
      // the start word itself (both hold later timestamps than start).
      sum = summary_ & ((std::uint64_t{1} << w0) - 1);
      if (sum == 0) {
        word = words_[w0];
        SPECNOC_ASSERT(word != 0);
        return (w0 << 6) +
               static_cast<std::uint32_t>(std::countr_zero(word));
      }
    }
    const auto w = static_cast<std::uint32_t>(std::countr_zero(sum));
    SPECNOC_ASSERT(words_[w] != 0);
    return (w << 6) + static_cast<std::uint32_t>(std::countr_zero(words_[w]));
  }

  /// Slides the window to `new_base` and eagerly promotes every overflow
  /// event now inside [new_base, new_base + kNumBuckets).
  /// overflow_min_ mirrors the heap top (kNoOverflow when empty) so the
  /// no-promotion fast path is a single comparison.
  void advance_base(TimePs new_base) {
    SPECNOC_ASSERT(new_base >= base_);
    base_ = new_base;
    if (overflow_min_ - new_base < kNumBuckets) {
      promote_overflow();
    }
  }

  void promote_overflow();  // cold paths, bucket_queue.cpp
  void add_chunk();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  /// Sentinel for overflow_min_ when the overflow heap is empty: far
  /// enough ahead that `overflow_min_ - base < kNumBuckets` stays false
  /// for any reachable base, yet never overflows the subtraction.
  static constexpr TimePs kNoOverflow =
      std::numeric_limits<TimePs>::max() / 2;

  TimePs base_ = 0;              ///< window start; only ever advances
  TimePs overflow_min_ = kNoOverflow;  ///< == overflow_.front().time
  std::uint64_t next_seq_ = 0;   ///< assigned to overflow-tier events only
  std::size_t ring_size_ = 0;    ///< pending in the near tier
  std::uint32_t free_head_ = kNpos;
  std::uint32_t slab_size_ = 0;
  std::uint32_t slab_capacity_ = 0;
  std::uint64_t summary_ = 0;
  std::uint64_t words_[kNumWords] = {};
  Bucket buckets_[kNumBuckets];
  std::vector<std::unique_ptr<Entry[]>> chunks_;  ///< stable-address slab
  std::vector<OverflowRef> overflow_;  ///< binary min-heap on (time, seq)
};

}  // namespace specnoc::sim
