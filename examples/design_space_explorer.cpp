// Design-space explorer: evaluate arbitrary speculation placements.
//
// The paper's future work is hybrid architectures for larger MoTs, where
// "more degrees of freedom to mix the speculative and non-speculative
// nodes" open a wide design space (Figure 3(d) shows one 16x16 point).
// This tool sweeps every per-level speculation pattern at a chosen radix
// and ranks the *local* configurations by a simple figure of merit:
// latency improvement per percent of power overhead, relative to the
// non-speculative design.
//
//   $ ./examples/design_space_explorer [n=16] [--jobs N]
//
// Every design point is three independent simulations (saturation anchor,
// latency, power); the sweep batches them on the work-stealing parallel
// runner. Results are keyed by design point, so the ranking is identical
// for any --jobs value (--jobs 1 is the serial path). Large radixes can be
// split across machines with --shard i/K --out shard.jsonl, combined with
// sweep_merge, and ranked from the merged file with --from.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "stats/experiment.h"
#include "stats/serialization.h"
#include "stats/sweep.h"
#include "util/cli.h"
#include "util/json.h"

using namespace specnoc;

namespace {

struct DesignPoint {
  std::string label;
  bool local = false;
  std::uint32_t addr_bits = 0;
  double latency_ns = 0.0;
  double power_mw = 0.0;
  double latency_gain = 0.0;  // vs non-speculative
  double power_cost = 0.0;    // vs non-speculative
};

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t n = 16;
  std::uint64_t seed = 42;
  std::string metrics_path;
  stats::SweepOptions sweep_options;
  sweep_options.tool = "design_space_explorer";

  util::CliParser cli("design_space_explorer",
                      "Sweep every per-level speculation placement and rank "
                      "the local configurations.");
  cli.add_positional_uint32("n", &n, "network radix (default 16)");
  cli.add_unsigned("--jobs", &sweep_options.batch.jobs,
                   "worker threads (0: hardware concurrency, 1: serial)");
  cli.add_uint64("--seed", &seed, "experiment seed");
  cli.add_string("--metrics", &metrics_path,
                 "collect per-run speculation/stall metrics and write them "
                 "to this JSON file (observational; ranking is unchanged)");
  cli.add_unsigned("--progress", &sweep_options.batch.progress_interval_ms,
                   "live progress lines to stderr every N ms (0: off)");
  cli.add_custom("--shard", "i/K",
                 "worker mode: run only shard i of K (requires --out)",
                 [&sweep_options](const std::string& value) {
                   sweep_options.shard = sim::ShardRef::parse(value);
                   sweep_options.mode = stats::SweepMode::kWorker;
                 });
  cli.add_string("--out", &sweep_options.out_path,
                 "worker mode: write this shard's results to a JSONL file");
  cli.add_string("--from", &sweep_options.from_path,
                 "rank from a merged shard file instead of simulating");
  cli.parse_or_exit(argc, argv);
  if (!sweep_options.out_path.empty()) {
    sweep_options.mode = stats::SweepMode::kWorker;
  } else if (!sweep_options.from_path.empty()) {
    sweep_options.mode = stats::SweepMode::kRender;
  }
  sweep_options.seed = seed;
  sweep_options.batch.collect_metrics = !metrics_path.empty();
  if (sweep_options.batch.progress_interval_ms > 0) {
    sweep_options.batch.progress_label = "design_space_explorer";
  }

  core::NetworkConfig config;
  config.n = n;
  stats::ExperimentRunner runner(config, seed);
  auto make_sweep = [&sweep_options]() -> stats::ShardedSweep {
    try {
      return stats::ShardedSweep(sweep_options);
    } catch (const ConfigError& error) {
      std::fprintf(stderr, "design_space_explorer: %s\n", error.what());
      std::exit(2);
    }
  };
  stats::ShardedSweep sweep = make_sweep();
  const mot::MotTopology topology(n);
  const auto bench = traffic::BenchmarkId::kMulticast10;
  const auto windows = traffic::default_windows(bench);

  if (sweep.should_render()) {
    std::printf("Exploring %ux%u speculation placements on %s...\n\n", n, n,
                traffic::to_string(bench));
  }

  std::vector<DesignPoint> points;
  std::vector<stats::SaturationSpec> sat_specs;
  const std::uint32_t free_levels = topology.levels() - 1;
  for (std::uint32_t bits = 0; bits < (1u << free_levels); ++bits) {
    std::vector<std::uint32_t> levels;
    std::string label = "{";
    for (std::uint32_t l = 0; l < free_levels; ++l) {
      if (bits & (1u << l)) {
        if (!levels.empty()) label += ',';
        label += std::to_string(l);
        levels.push_back(l);
      }
    }
    label += "}";

    const auto spec = core::SpeculationMap::from_levels(topology, levels);
    DesignPoint point;
    point.label = label;
    point.local = spec.is_local();
    point.addr_bits =
        mot::SourceRouteEncoder(topology, spec.flags()).address_bits();
    points.push_back(point);
    sat_specs.push_back({.arch = core::Architecture::kCustomHybrid,
                         .bench = bench,
                         .seed = 0,
                         .factory =
                             [config, spec] {
                               return std::make_unique<core::MotNetwork>(
                                   config, spec);
                             },
                         .custom = label});
  }

  // Phase 1: each point's saturation anchor — run in full in every mode so
  // all shard workers derive identical latency/power grids. Phase 2:
  // latency and power at 25% of it, the grids that get sharded.
  const auto sat_outcomes = sweep.anchor_saturation(runner, sat_specs);
  std::vector<stats::LatencySpec> lat_specs;
  std::vector<stats::PowerSpec> power_specs;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double rate = 0.25 * sat_outcomes[i].result.injected_flits_per_ns;
    lat_specs.push_back({.arch = core::Architecture::kCustomHybrid,
                         .bench = bench,
                         .injected_flits_per_ns = rate,
                         .windows = windows,
                         .seed = 0,
                         .factory = sat_specs[i].factory,
                         .custom = points[i].label});
    power_specs.push_back({.arch = core::Architecture::kCustomHybrid,
                           .bench = bench,
                           .injected_flits_per_ns = rate,
                           .windows = windows,
                           .seed = 0,
                           .factory = sat_specs[i].factory,
                           .custom = points[i].label});
  }
  const auto lat_outcomes = sweep.latency_sweep("latency", runner, lat_specs);
  const auto power_outcomes = sweep.power_sweep("power", runner, power_specs);
  if (!metrics_path.empty()) {
    // Same document shape as the harnesses' --metrics files (see
    // EXPERIMENTS.md): one entry per run that carried a snapshot.
    util::Json doc = util::Json::object();
    doc.set("format", "specnoc-metrics");
    doc.set("schema", std::uint64_t{1});
    doc.set("tool", "design_space_explorer");
    doc.set("seed", seed);
    util::Json runs = util::Json::array();
    auto add_all = [&runs](const std::string& grid, const auto& outcomes) {
      for (const auto& outcome : outcomes) {
        if (!outcome.metrics.has_value()) continue;
        util::Json entry = util::Json::object();
        entry.set("grid", grid);
        entry.set("key", stats::spec_key(outcome.spec));
        entry.set("metrics", stats::to_json(*outcome.metrics));
        runs.push_back(std::move(entry));
      }
    };
    add_all("anchor", sat_outcomes);
    add_all("latency", lat_outcomes);
    add_all("power", power_outcomes);
    doc.set("runs", std::move(runs));
    std::ofstream out(metrics_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr,
                   "design_space_explorer: cannot write metrics file '%s'\n",
                   metrics_path.c_str());
      return 2;
    }
    out << util::json_write(doc) << "\n";
  }
  if (!sweep.should_render()) return sweep.finish();
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].latency_ns = lat_outcomes[i].result.mean_latency_ns;
    points[i].power_mw = power_outcomes[i].result.power_mw;
    if (!sat_outcomes[i].run.ok || !lat_outcomes[i].run.ok ||
        !power_outcomes[i].run.ok) {
      std::fprintf(stderr, "point %s failed: %s\n", points[i].label.c_str(),
                   (!sat_outcomes[i].run.ok   ? sat_outcomes[i].run.error
                    : !lat_outcomes[i].run.ok ? lat_outcomes[i].run.error
                                              : power_outcomes[i].run.error)
                       .c_str());
    }
  }

  const DesignPoint& nonspec = points.front();  // bits==0 is {}
  for (auto& point : points) {
    point.latency_gain = 1.0 - point.latency_ns / nonspec.latency_ns;
    point.power_cost = point.power_mw / nonspec.power_mw - 1.0;
  }

  std::printf("%-12s %-6s %-9s %-10s %-10s %-10s %-10s\n", "Spec levels",
              "Local", "AddrBits", "Lat (ns)", "Power(mW)", "LatGain",
              "PowerCost");
  for (const auto& point : points) {
    std::printf("%-12s %-6s %-9u %-10.2f %-10.1f %-+9.1f%% %-+9.1f%%\n",
                point.label.c_str(), point.local ? "yes" : "no",
                point.addr_bits, point.latency_ns, point.power_mw,
                point.latency_gain * 100.0, point.power_cost * 100.0);
  }

  // Rank local configurations by latency gain per % power cost.
  std::vector<const DesignPoint*> local_points;
  for (const auto& point : points) {
    if (point.local && point.power_cost > 0.0) {
      local_points.push_back(&point);
    }
  }
  std::sort(local_points.begin(), local_points.end(),
            [](const DesignPoint* a, const DesignPoint* b) {
              return a->latency_gain / a->power_cost >
                     b->latency_gain / b->power_cost;
            });
  if (!local_points.empty()) {
    std::printf("\nBest local configuration by latency-gain per power-cost: "
                "%s (%.1f%% faster for %.1f%% more power, %u addr bits)\n",
                local_points.front()->label.c_str(),
                local_points.front()->latency_gain * 100.0,
                local_points.front()->power_cost * 100.0,
                local_points.front()->addr_bits);
  }
  return 0;
}
