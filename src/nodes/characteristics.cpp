#include "nodes/characteristics.h"

#include <deque>
#include <mutex>

#include "util/contract.h"

namespace specnoc::nodes {

const NodeCharacteristics& intern_characteristics(
    const NodeCharacteristics& chars) {
  // A deque gives stable addresses across growth. Linear scan is fine: the
  // table holds one entry per distinct value ever seen (typically < 20),
  // and interning happens once per node at build time, not on the hot path.
  static std::mutex mutex;
  static std::deque<NodeCharacteristics> interned;
  const std::lock_guard<std::mutex> lock(mutex);
  for (const NodeCharacteristics& entry : interned) {
    if (entry == chars) return entry;
  }
  interned.push_back(chars);
  return interned.back();
}

TimePs disciplined_delay(TimePs raw, TimePs clock_period, TimePs now) {
  SPECNOC_EXPECTS(raw >= 0 && clock_period >= 0 && now >= 0);
  if (clock_period == 0) {
    return raw;
  }
  const TimePs ready = now + raw;
  const TimePs edges = (ready + clock_period - 1) / clock_period;
  return edges * clock_period - now;
}

const NodeCharacteristics& default_characteristics(noc::NodeKind kind) {
  // {area um^2, fwd header ps, fwd body ps, ack delay ps, throttle ps}
  static const NodeCharacteristics kSourceNi{0.0, 50, 50, 50, 50};
  static const NodeCharacteristics kSinkNi{0.0, 50, 50, 50, 50};
  // Paper Section 5.2(a) for area and forward latency:
  static const NodeCharacteristics kBaseline{342.0, 263, 263, 150, 263};
  static const NodeCharacteristics kSpec{247.0, 52, 52, 120, 52};
  static const NodeCharacteristics kNonSpec{406.0, 299, 299, 150, 120};
  static const NodeCharacteristics kOptSpec{373.0, 120, 120, 130, 110};
  // fwd_body = fast-forward latency through the pre-allocated channel.
  static const NodeCharacteristics kOptNonSpec{366.0, 279, 100, 140, 110};
  // Assumed (not reported in the paper); see DESIGN.md.
  static const NodeCharacteristics kFanin{310.0, 120, 250, 150, 120};
  // 2D-mesh comparison substrate: a VC-less 5-port XY wormhole router
  // (area/timing assumed for a 45 nm single-cycle-class router).
  static const NodeCharacteristics kMeshRouter{2600.0, 350, 350, 150, 350};
  // Speculative mesh router (our extension of local speculation to the
  // mesh): no 4-way route computation or allocation on the through path.
  static const NodeCharacteristics kMeshRouterSpec{1900.0, 150, 150, 120,
                                                   150};

  switch (kind) {
    case noc::NodeKind::kSource: return kSourceNi;
    case noc::NodeKind::kSink: return kSinkNi;
    case noc::NodeKind::kFanoutBaseline: return kBaseline;
    case noc::NodeKind::kFanoutSpeculative: return kSpec;
    case noc::NodeKind::kFanoutNonSpeculative: return kNonSpec;
    case noc::NodeKind::kFanoutOptSpeculative: return kOptSpec;
    case noc::NodeKind::kFanoutOptNonSpeculative: return kOptNonSpec;
    case noc::NodeKind::kFanin: return kFanin;
    case noc::NodeKind::kMeshRouter: return kMeshRouter;
    case noc::NodeKind::kMeshRouterSpec: return kMeshRouterSpec;
  }
  SPECNOC_UNREACHABLE("unknown node kind");
}

}  // namespace specnoc::nodes
