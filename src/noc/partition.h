// Static partition strategies for the conservative PDES kernel.
//
// A strategy maps every endpoint (and therefore every node the builders
// derive from an endpoint) to one scheduler lane. The mapping is a pure
// function of the topology — never of the thread count — which is what
// makes partitioned runs reproducible at any thread count.
#pragma once

#include <string>

namespace specnoc::noc {

enum class PartitionStrategy {
  kAuto,      ///< topology default: kTree for MoT, kRows for mesh
  kNone,      ///< force sequential execution (single lane)
  kTree,      ///< MoT: one lane per source tree (lane = source index)
  kQuadrant,  ///< MoT: four lanes (lane = source * 4 / n)
  kRows,      ///< mesh: one lane per router row (lane = y coordinate)
};

const char* to_string(PartitionStrategy strategy);

/// Parses a strategy name; throws ConfigError naming the valid strategies.
PartitionStrategy partition_strategy_from_string(const std::string& name);

}  // namespace specnoc::noc
