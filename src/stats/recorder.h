// TrafficRecorder: measures message latency and delivered throughput.
//
// Latency of a message = time from its generation (entering the source
// queue) to the arrival of the *last* header at any of its destinations —
// the paper measures "up to the arrival of all headers at destinations",
// which for a serialized Baseline multicast includes the serialization tail.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "noc/hooks.h"
#include "noc/packet.h"

namespace specnoc::stats {

class TrafficRecorder final : public noc::TrafficObserver {
 public:
  explicit TrafficRecorder(const noc::PacketStore& store);

  void on_flit_ejected(const noc::Packet& packet, std::uint32_t dest,
                       noc::FlitKind kind, TimePs when) override;
  void on_packet_injected(const noc::Packet& packet, TimePs when) override;

  /// Throughput window gating (counts all ejected/injected flits inside).
  void open_window(TimePs now);
  void close_window(TimePs now);

  /// Delivered flits per ns per source over the window.
  double delivered_flits_per_ns(std::uint32_t num_sources) const;
  /// Injected flits per ns per source over the window (packets entering the
  /// network; multicast counts once here but once per copy on delivery).
  double injected_flits_per_ns(std::uint32_t num_sources) const;

  std::uint64_t window_flits_ejected() const { return window_ejected_; }
  std::uint64_t window_flits_injected() const { return window_injected_; }
  TimePs window_duration() const;

  /// Completed-measured-message latencies (ps).
  const std::vector<TimePs>& measured_latencies() const {
    return latencies_;
  }
  double mean_latency_ps() const;
  TimePs max_latency_ps() const;
  /// Exact nearest-rank percentile of the measured latencies (ps);
  /// 0 when nothing was measured.
  double latency_percentile_ps(double p) const;

  /// Number of measured messages still awaiting header deliveries.
  std::size_t pending_measured() const { return pending_.size(); }
  std::uint64_t completed_measured() const {
    return static_cast<std::uint64_t>(latencies_.size());
  }

 private:
  /// A measured message with headers still in flight. `last` tracks the
  /// latest header arrival seen so far rather than relying on the final
  /// on_flit_ejected call being the latest: partitioned runs deliver a
  /// message's headers from several scheduler lanes, so the hook call order
  /// is not timestamp order.
  struct PendingMessage {
    noc::DestSet remaining;  ///< destinations still missing a header
    TimePs last = 0;              ///< max header arrival time so far
  };

  const noc::PacketStore& store_;
  std::unordered_map<noc::MessageId, PendingMessage> pending_;
  std::vector<TimePs> latencies_;

  bool window_open_ = false;
  bool window_closed_ = false;
  TimePs window_start_ = 0;
  TimePs window_end_ = 0;
  std::uint64_t window_ejected_ = 0;
  std::uint64_t window_injected_ = 0;
};

}  // namespace specnoc::stats
