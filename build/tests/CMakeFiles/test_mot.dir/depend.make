# Empty dependencies file for test_mot.
# This may be replaced when dependencies are built.
