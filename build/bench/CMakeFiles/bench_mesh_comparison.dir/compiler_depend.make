# Empty compiler generated dependencies file for bench_mesh_comparison.
# This may be replaced when dependencies are built.
