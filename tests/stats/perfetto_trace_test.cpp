#include "stats/perfetto_trace.h"

#include <map>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/mot_network.h"
#include "util/json.h"

namespace specnoc::stats {
namespace {

using noc::DestSet;

using core::Architecture;

/// Congested multicast run on the 8x8 hybrid network with the tracer on
/// all three observer hooks.
PerfettoTracer traced_run() {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kOptHybridSpeculative, cfg);
  PerfettoTracer tracer;
  net.net().hooks().traffic = &tracer;
  net.net().hooks().energy = &tracer;
  net.net().hooks().metrics = &tracer;
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t s = 0; s < 8; ++s) {
      net.send_message(s, DestSet::single(0) | DestSet::single(1), false);
    }
  }
  net.scheduler().run();
  return tracer;
}

TEST(PerfettoTracerTest, EmitsStructurallyValidChromeTrace) {
  const PerfettoTracer tracer = traced_run();
  ASSERT_GT(tracer.num_events(), 0u);

  // The written document must parse back as JSON.
  std::ostringstream out;
  tracer.write(out);
  std::string text = out.str();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  const util::Json doc = util::json_parse(text);

  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
  const auto& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());

  std::set<std::string> track_names;
  std::set<std::uint64_t> named_tids;
  std::map<std::uint64_t, double> last_ts;
  std::set<std::string> event_names;
  for (const util::Json& event : events) {
    EXPECT_EQ(event.at("pid").as_i64(), 1);
    const std::string ph = event.at("ph").as_string();
    const std::uint64_t tid = event.at("tid").as_u64();
    if (ph == "M") {
      // Track metadata: unique tids, unique non-empty names.
      EXPECT_EQ(event.at("name").as_string(), "thread_name");
      const std::string name = event.at("args").at("name").as_string();
      EXPECT_FALSE(name.empty());
      EXPECT_TRUE(track_names.insert(name).second) << name;
      EXPECT_TRUE(named_tids.insert(tid).second) << tid;
      continue;
    }
    ASSERT_TRUE(ph == "i" || ph == "X") << ph;
    // Every event's track was declared.
    EXPECT_TRUE(named_tids.count(tid) > 0) << tid;
    // Timestamps are monotone per track.
    const double ts = event.at("ts").as_double();
    EXPECT_GE(ts, 0.0);
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_ts[tid] = ts;
    if (ph == "X") {
      EXPECT_GE(event.at("dur").as_double(), 0.0);
    }
    event_names.insert(event.at("name").as_string());
  }

  // The run injects multicasts, ejects flits, and (being speculative at
  // level 0 with dests confined to one half) kills redundant copies.
  EXPECT_TRUE(event_names.count("inject.multicast") > 0);
  EXPECT_TRUE(event_names.count("eject.header") > 0);
  EXPECT_TRUE(event_names.count("eject.tail") > 0);
  EXPECT_TRUE(event_names.count("kill") > 0);
  // Congestion on the shared sinks produces backpressure-stall spans.
  EXPECT_TRUE(event_names.count("stall") > 0);
}

TEST(PerfettoTracerTest, KillEventsCarryPacketArgs) {
  const PerfettoTracer tracer = traced_run();
  const util::Json doc = tracer.trace_json();
  std::size_t kills = 0;
  for (const util::Json& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() == "M") continue;
    if (event.at("name").as_string() != "kill") continue;
    ++kills;
    const util::Json* args = event.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_LT(args->at("src").as_u64(), 8u);
  }
  EXPECT_GT(kills, 0u);
}

TEST(PerfettoTracerTest, EmptyTracerWritesValidDocument) {
  const PerfettoTracer tracer;
  EXPECT_EQ(tracer.num_events(), 0u);
  const util::Json doc = tracer.trace_json();
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
  EXPECT_TRUE(doc.at("traceEvents").items().empty());
}

}  // namespace
}  // namespace specnoc::stats
