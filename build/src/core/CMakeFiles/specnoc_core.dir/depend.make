# Empty dependencies file for specnoc_core.
# This may be replaced when dependencies are built.
