#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/error.h"

namespace specnoc::util {

namespace {

[[noreturn]] void kind_error(const char* wanted, Json::Kind got) {
  throw ConfigError(std::string("JSON value is not ") + wanted + " (kind " +
                    std::to_string(static_cast<int>(got)) + ")");
}

}  // namespace

Json Json::array() {
  Json value;
  value.kind_ = Kind::kArray;
  return value;
}

Json Json::object() {
  Json value;
  value.kind_ = Kind::kObject;
  return value;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool", kind_);
  return bool_;
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::kDouble: return double_;
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kNull: return std::numeric_limits<double>::quiet_NaN();
    default: kind_error("a number", kind_);
  }
}

std::int64_t Json::as_i64() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint:
      if (uint_ > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())) {
        throw ConfigError("JSON integer out of int64 range");
      }
      return static_cast<std::int64_t>(uint_);
    default: kind_error("an integer", kind_);
  }
}

std::uint64_t Json::as_u64() const {
  switch (kind_) {
    case Kind::kUint: return uint_;
    case Kind::kInt:
      if (int_ < 0) throw ConfigError("JSON integer is negative");
      return static_cast<std::uint64_t>(int_);
    default: kind_error("an unsigned integer", kind_);
  }
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string", kind_);
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) kind_error("an array", kind_);
  return array_;
}

void Json::push_back(Json value) {
  if (kind_ != Kind::kArray) kind_error("an array", kind_);
  array_.push_back(std::move(value));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) kind_error("an object", kind_);
  return object_;
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) kind_error("an object", kind_);
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("an object", kind_);
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw ConfigError("JSON object has no key '" + std::string(key) + "'");
  }
  return *value;
}

std::string format_double(double value) {
  if (!std::isfinite(value)) {
    // Callers embedding doubles in keys still need *something* canonical;
    // the JSON writer handles non-finite separately (emits null).
    return std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf");
  }
  char buffer[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

namespace {

void write_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_value(const Json& value, std::string& out) {
  switch (value.kind()) {
    case Json::Kind::kNull: out += "null"; break;
    case Json::Kind::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Json::Kind::kDouble: {
      const double d = value.as_double();
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no NaN/Inf; parses back as NaN
      } else {
        out += format_double(d);
      }
      break;
    }
    case Json::Kind::kInt: out += std::to_string(value.as_i64()); break;
    case Json::Kind::kUint: out += std::to_string(value.as_u64()); break;
    case Json::Kind::kString: write_string(value.as_string(), out); break;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : value.items()) {
        if (!first) out += ',';
        first = false;
        write_value(item, out);
      }
      out += ']';
      break;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        write_string(key, out);
        out += ':';
        write_value(member, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("JSON parse error at offset " + std::to_string(pos_) +
                      ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("null")) return Json();
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8 for general inputs.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool is_integer = true;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '+' || c == '-') && pos_ > start &&
                  (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("malformed number");
    char* end = nullptr;
    if (is_integer) {
      // "-0" can only come from the shortest-form writer serializing the
      // double -0.0 (integer zero prints as "0"); keep the sign bit.
      if (token == "-0") return Json(-0.0);
      errno = 0;
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != 0 || end != token.c_str() + token.size()) {
          fail("integer out of range");
        }
        return Json(static_cast<std::int64_t>(v));
      }
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (errno != 0 || end != token.c_str() + token.size()) {
        fail("integer out of range");
      }
      return Json(static_cast<std::uint64_t>(v));
    }
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_write(const Json& value) {
  std::string out;
  write_value(value, out);
  return out;
}

Json json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace specnoc::util
