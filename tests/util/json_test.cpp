#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "util/error.h"

namespace specnoc::util {
namespace {

TEST(JsonTest, WritesScalarsCanonically) {
  EXPECT_EQ(json_write(Json()), "null");
  EXPECT_EQ(json_write(Json(true)), "true");
  EXPECT_EQ(json_write(Json(false)), "false");
  EXPECT_EQ(json_write(Json(std::int64_t{-42})), "-42");
  EXPECT_EQ(json_write(Json(std::uint64_t{18446744073709551615ull})),
            "18446744073709551615");
  EXPECT_EQ(json_write(Json("hi")), "\"hi\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json json = Json::object();
  json.set("zebra", 1);
  json.set("apple", 2);
  json.set("mango", 3);
  EXPECT_EQ(json_write(json), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  json.set("apple", 9);  // overwrite in place, order unchanged
  EXPECT_EQ(json_write(json), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(JsonTest, RoundTripsNestedStructure) {
  Json inner = Json::object();
  inner.set("flag", true);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Json());
  Json json = Json::object();
  json.set("inner", std::move(inner));
  json.set("arr", std::move(arr));

  const std::string text = json_write(json);
  const Json parsed = json_parse(text);
  EXPECT_EQ(json_write(parsed), text);
  EXPECT_TRUE(parsed.at("inner").at("flag").as_bool());
  EXPECT_EQ(parsed.at("arr").items().size(), 3u);
  EXPECT_EQ(parsed.at("arr").items()[1].as_string(), "two");
  EXPECT_TRUE(parsed.at("arr").items()[2].is_null());
}

TEST(JsonTest, IntegersSurviveExactly) {
  const std::int64_t big = (std::int64_t{1} << 62) + 12345;
  const Json parsed = json_parse(json_write(Json(big)));
  EXPECT_EQ(parsed.as_i64(), big);
  const std::uint64_t ubig = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(json_parse(json_write(Json(ubig))).as_u64(), ubig);
}

TEST(JsonTest, DoublesRoundTripBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.26,
                           0.1,
                           1.0 / 3.0,
                           6.02214076e23,
                           -2.2250738585072014e-308,
                           123456789.123456789,
                           std::numeric_limits<double>::denorm_min()};
  for (const double value : values) {
    const Json parsed = json_parse(json_write(Json(value)));
    const double back = parsed.as_double();
    EXPECT_EQ(std::memcmp(&back, &value, sizeof value), 0)
        << "value " << value << " serialized as " << json_write(Json(value));
  }
}

TEST(JsonTest, FormatDoubleIsShortest) {
  EXPECT_EQ(format_double(1.26), "1.26");
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(2.0), "2");
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(json_write(Json(std::numeric_limits<double>::infinity())), "null");
  EXPECT_EQ(json_write(Json(std::nan(""))), "null");
  EXPECT_TRUE(std::isnan(json_parse("null").as_double()));
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const std::string tricky = "line\nbreak \"quoted\" tab\t back\\slash \x01";
  const Json parsed = json_parse(json_write(Json(tricky)));
  EXPECT_EQ(parsed.as_string(), tricky);
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  EXPECT_EQ(json_parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(JsonTest, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), ConfigError);
  EXPECT_THROW(json_parse("{"), ConfigError);
  EXPECT_THROW(json_parse("{\"a\":}"), ConfigError);
  EXPECT_THROW(json_parse("[1,]"), ConfigError);
  EXPECT_THROW(json_parse("12 34"), ConfigError);  // trailing garbage
  EXPECT_THROW(json_parse("\"unterminated"), ConfigError);
  EXPECT_THROW(json_parse("nul"), ConfigError);
  EXPECT_THROW(json_parse("+1"), ConfigError);
}

TEST(JsonTest, AccessorsCheckKinds) {
  const Json json = json_parse("{\"n\":1}");
  EXPECT_THROW(json.as_string(), ConfigError);
  EXPECT_THROW(json.at("n").as_bool(), ConfigError);
  EXPECT_THROW(json.at("missing"), ConfigError);
  EXPECT_EQ(json.find("missing"), nullptr);
  EXPECT_NE(json.find("n"), nullptr);
}

TEST(JsonTest, IntegerConversionsRejectLossy) {
  EXPECT_THROW(json_parse("-1").as_u64(), ConfigError);
  EXPECT_THROW(json_parse("18446744073709551615").as_i64(), ConfigError);
  EXPECT_EQ(json_parse("-1").as_i64(), -1);
}

}  // namespace
}  // namespace specnoc::util
