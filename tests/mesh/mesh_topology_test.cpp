#include "mesh/mesh_topology.h"

#include <bit>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace specnoc::mesh {
namespace {

TEST(MeshTopologyTest, ShapeAndCoords) {
  MeshTopology t(4, 3);
  EXPECT_EQ(t.n(), 12u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.x_of(5), 1u);
  EXPECT_EQ(t.y_of(5), 1u);
  EXPECT_EQ(t.id_at(1, 1), 5u);
  EXPECT_EQ(t.id_at(3, 2), 11u);
}

TEST(MeshTopologyTest, RejectsBadShapes) {
  EXPECT_THROW(MeshTopology(1, 1), ConfigError);
  EXPECT_THROW(MeshTopology(0, 4), ConfigError);
  EXPECT_THROW(MeshTopology(128, 64), ConfigError);  // 8192 > kMaxEndpoints
  EXPECT_NO_THROW(MeshTopology(8, 8));
  EXPECT_NO_THROW(MeshTopology(9, 8));  // 72 endpoints: past the old cap
  EXPECT_NO_THROW(MeshTopology(64, 64));
  EXPECT_NO_THROW(MeshTopology(2, 1));
}

TEST(MeshTopologyTest, NeighborsAndEdges) {
  MeshTopology t(3, 3);
  // Center node 4 has all four neighbors.
  EXPECT_EQ(t.neighbor(4, Port::kNorth), 1u);
  EXPECT_EQ(t.neighbor(4, Port::kSouth), 7u);
  EXPECT_EQ(t.neighbor(4, Port::kEast), 5u);
  EXPECT_EQ(t.neighbor(4, Port::kWest), 3u);
  // Corners lack the outward ports.
  EXPECT_FALSE(t.has_neighbor(0, Port::kNorth));
  EXPECT_FALSE(t.has_neighbor(0, Port::kWest));
  EXPECT_TRUE(t.has_neighbor(0, Port::kEast));
  EXPECT_FALSE(t.has_neighbor(8, Port::kSouth));
  EXPECT_FALSE(t.has_neighbor(8, Port::kEast));
  // Local port never has a neighbor.
  EXPECT_FALSE(t.has_neighbor(4, Port::kLocal));
}

TEST(MeshTopologyTest, ManhattanDistance) {
  MeshTopology t(4, 4);
  EXPECT_EQ(t.distance(0, 15), 6u);
  EXPECT_EQ(t.distance(5, 5), 0u);
  EXPECT_EQ(t.distance(3, 12), 6u);
}

TEST(MeshRouteTest, UnicastXYGoesXFirst) {
  MeshTopology t(4, 4);
  const auto src = t.id_at(0, 0);
  const auto dst = t.id_at(2, 3);
  // At the source: move east (X first).
  EXPECT_EQ(t.route_dirs(src, src, noc::DestSet::single(dst)),
            port_bit(Port::kEast));
  // Mid X-leg.
  EXPECT_EQ(t.route_dirs(t.id_at(1, 0), src, noc::DestSet::single(dst)),
            port_bit(Port::kEast));
  // Turn column: go south.
  EXPECT_EQ(t.route_dirs(t.id_at(2, 0), src, noc::DestSet::single(dst)),
            port_bit(Port::kSouth));
  EXPECT_EQ(t.route_dirs(t.id_at(2, 2), src, noc::DestSet::single(dst)),
            port_bit(Port::kSouth));
  // Destination: local.
  EXPECT_EQ(t.route_dirs(dst, src, noc::DestSet::single(dst)),
            port_bit(Port::kLocal));
}

TEST(MeshRouteTest, OffPathRouterContributesNothing) {
  MeshTopology t(4, 4);
  const auto src = t.id_at(0, 0);
  const auto dst = t.id_at(2, 3);
  // (1,1) is not on the XY path 0,0 -> 2,0 -> 2,3.
  EXPECT_EQ(t.route_dirs(t.id_at(1, 1), src, noc::DestSet::single(dst)), 0);
  EXPECT_EQ(t.route_dirs(t.id_at(3, 0), src, noc::DestSet::single(dst)), 0);
}

TEST(MeshRouteTest, MulticastTreeForksAtColumns) {
  MeshTopology t(4, 4);
  const auto src = t.id_at(1, 1);
  const noc::DestSet dests = noc::DestSet::single(t.id_at(3, 0)) |  // east, north
                              noc::DestSet::single(t.id_at(1, 3)) |  // same col S
                              noc::DestSet::single(t.id_at(0, 1));   // west
  const auto at_src = t.route_dirs(src, src, dests);
  EXPECT_EQ(at_src, port_bit(Port::kEast) | port_bit(Port::kWest) |
                        port_bit(Port::kSouth));
  // East branch at (2,1): continue east only (dest column 3).
  EXPECT_EQ(t.route_dirs(t.id_at(2, 1), src, dests), port_bit(Port::kEast));
  // At (3,1): turn north.
  EXPECT_EQ(t.route_dirs(t.id_at(3, 1), src, dests), port_bit(Port::kNorth));
}

TEST(MeshRouteTest, SelfDestinationIsLocal) {
  MeshTopology t(2, 2);
  EXPECT_EQ(t.route_dirs(0, 0, noc::DestSet::single(0)), port_bit(Port::kLocal));
}

TEST(MeshRouteTest, DestAtTurnWithBranchKeepsBothDirs) {
  MeshTopology t(4, 4);
  const auto src = t.id_at(0, 1);
  // Destination at (2,1) (on the x-leg) and (2,3) (branch at column 2).
  const noc::DestSet dests =
      noc::DestSet::single(t.id_at(2, 1)) | noc::DestSet::single(t.id_at(2, 3));
  // At (2,1): local delivery AND a south branch.
  EXPECT_EQ(t.route_dirs(t.id_at(2, 1), src, dests),
            port_bit(Port::kLocal) | port_bit(Port::kSouth));
}

/// Property: for any src, following route_dirs hop by hop reaches every
/// destination, visiting each router at most once per branch direction.
TEST(MeshRouteTest, TreeCoversAllDestinations) {
  MeshTopology t(8, 8);
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const auto src = static_cast<std::uint32_t>(rng.uniform_below(64));
    noc::DestSet dests = noc::DestSet::from_word(rng());
    if (dests.none()) dests = noc::DestSet::single(0);
    // BFS over the multicast tree.
    noc::DestSet delivered;
    std::vector<std::uint32_t> frontier{src};
    std::vector<bool> visited(64, false);
    while (!frontier.empty()) {
      const auto id = frontier.back();
      frontier.pop_back();
      if (visited[id]) continue;
      visited[id] = true;
      const auto dirs = t.route_dirs(id, src, dests);
      if (dirs & port_bit(Port::kLocal)) delivered.set(id);
      for (const Port port :
           {Port::kNorth, Port::kEast, Port::kSouth, Port::kWest}) {
        if (dirs & port_bit(port)) {
          ASSERT_TRUE(t.has_neighbor(id, port));
          frontier.push_back(t.neighbor(id, port));
        }
      }
    }
    EXPECT_EQ(delivered, dests) << "src=" << src;
  }
}

TEST(MeshPortTest, Names) {
  EXPECT_STREQ(to_string(Port::kLocal), "local");
  EXPECT_STREQ(to_string(Port::kNorth), "north");
  EXPECT_STREQ(to_string(Port::kWest), "west");
}

}  // namespace
}  // namespace specnoc::mesh
