#include "sim/scheduler.h"

// Regression note: the previous kernel (a std::priority_queue of
// std::function entries) moved events out of priority_queue::top() through a
// const_cast — UB-adjacent, and each pop paid an O(log n) sift plus a heap
// allocation for any capture beyond the std::function SBO. The bucket-queue
// pop path moves events out of a mutable slab entry instead; the ASan/UBSan
// CI job exercises this path across the whole test suite.

namespace specnoc::sim {

void Scheduler::set_epoch_hook(TimePs epoch_ps, EpochHook hook) {
  SPECNOC_EXPECTS(epoch_ps > 0);
  SPECNOC_EXPECTS(static_cast<bool>(hook));
  epoch_ps_ = epoch_ps;
  epoch_hook_ = std::move(hook);
  epoch_next_ = (now_ / epoch_ps_ + 1) * epoch_ps_;
}

void Scheduler::clear_epoch_hook() {
  epoch_ps_ = 0;
  epoch_hook_ = nullptr;
  epoch_next_ = kIdleTime;
}

void Scheduler::cross_epoch(TimePs t) {
  const TimePs boundary = t - t % epoch_ps_;
  epoch_next_ = boundary + epoch_ps_;
  epoch_hook_(boundary);
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(TimePs t) {
  SPECNOC_EXPECTS(t >= now_);
  while (!queue_.empty() && queue_.min_time() <= t) {
    step();
  }
  now_ = t;
  // Keep the bucket window tracking the clock so short relative delays
  // scheduled after a long quiet gap still land in the O(1) near tier.
  queue_.advance_to(t);
}

}  // namespace specnoc::sim
