// Shared machinery for all fanout node designs.
//
// A fanout node has one input channel and two output channels. The base
// class implements the handshake protocol common to all five designs:
//
//   deliver(flit)  --fwd latency-->  process(flit)  [subclass decides dirs]
//   forward on each required output as it becomes free
//   once ALL required req-outs are issued  --ack delay-->  input ack
//
// Issuing the input ack only after every required output has fired models
// the C-element join of the speculative node (both outputs) and the
// multi-output case of the non-speculative node; a throttle disposes of the
// flit with no output activity. Output channels free up independently when
// the respective downstream node acks, so a flit can be copied into one
// output register while the other is still waiting — matching the
// normally-opaque / normally-transparent output port modules of the paper.
#pragma once

#include <string>

#include "noc/channel.h"
#include "noc/node.h"
#include "noc/packet.h"
#include "nodes/characteristics.h"

namespace specnoc::nodes {

/// Direction bitset: bit 0 = top output (port 0), bit 1 = bottom output.
using Dirs = std::uint8_t;
inline constexpr Dirs kDirNone = 0b00;
inline constexpr Dirs kDirTop = 0b01;
inline constexpr Dirs kDirBottom = 0b10;
inline constexpr Dirs kDirBoth = 0b11;

class FanoutNodeBase : public noc::Node {
 public:
  /// `top_span` / `bottom_span`: destination ranges reachable through each
  /// output (from MotTopology::subtree_span); they define ground-truth
  /// routing, equivalent to decoding this node's source-routing field.
  /// Ranges (not masks) keep per-node storage at 16 bytes regardless of
  /// radix — a radix-4096 network has ~16.7M fanout nodes.
  FanoutNodeBase(sim::Scheduler& scheduler, noc::SimHooks& hooks,
                 noc::NodeKind kind, std::string name,
                 const NodeCharacteristics& chars, noc::DestRange top_span,
                 noc::DestRange bottom_span);

  void deliver(const noc::Flit& flit, std::uint32_t in_port) final;
  void on_output_ack(std::uint32_t out_port) final;

  const NodeCharacteristics& characteristics() const { return *chars_; }

  /// Introspection (tests, deadlock diagnostics).
  bool input_busy() const { return input_busy_; }
  int sends_remaining() const { return sends_remaining_; }
  bool output_port_free(std::uint32_t dir) const { return out_[dir].free; }
  bool output_has_waiting(std::uint32_t dir) const {
    return out_[dir].has_waiting;
  }

 protected:
  /// Subclass hook: invoked after the forward latency has elapsed; must call
  /// forward() or throttle() exactly once for the flit.
  virtual void process(const noc::Flit& flit) = 0;

  /// Ground-truth direction set for a packet at this node (kDirNone for a
  /// misrouted packet whose destinations lie in neither subtree).
  Dirs true_dirs(const noc::Packet& packet) const;

  /// Sends the flit on every direction in `dirs` (waiting for busy outputs),
  /// then acks the input. `op` labels the energy event.
  void forward(const noc::Flit& flit, Dirs dirs, noc::NodeOp op);

  /// Consumes a misrouted flit: energy-throttle event, then input ack.
  void throttle(const noc::Flit& flit);

  TimePs fwd_latency(const noc::Flit& flit) const;

  /// Input-to-decision latency for this flit. The default is the forward
  /// latency; designs with a fast kill path (non-speculative nodes and the
  /// optimized speculative node's body path) override this to return
  /// throttle_latency for flits they will throttle.
  virtual TimePs processing_latency(const noc::Flit& flit) const;

 private:
  struct OutputState {
    bool free = true;
    bool has_waiting = false;
    noc::Flit waiting;
  };

  void try_send(std::uint32_t dir);
  void send_now(std::uint32_t dir, const noc::Flit& flit);
  void ack_input();

  /// Interned (intern_characteristics): one shared value per distinct
  /// characteristics, not a 48-byte copy per node.
  const NodeCharacteristics* chars_;
  noc::DestRange top_span_;
  noc::DestRange bottom_span_;
  OutputState out_[2];
  bool input_busy_ = false;
  int sends_remaining_ = 0;
};

}  // namespace specnoc::nodes
