#include "nodes/fanin_node.h"

#include <gtest/gtest.h>

#include "../support/test_nodes.h"
#include "noc/channel.h"
#include "sim/scheduler.h"

namespace specnoc::nodes {
namespace {

using noc::DestSet;

using noc::Packet;
using specnoc::testing::DriverEndpoint;
using specnoc::testing::RecordingEndpoint;

class FaninHarness {
 public:
  explicit FaninHarness(TimePs sink_ack_delay = 0,
                        std::uint32_t buffer_flits = 8)
      : node(sched, hooks, "dut",
             {.area_um2 = 100.0, .fwd_header = 50, .fwd_body = 50,
              .ack_delay = 10},
             buffer_flits),
        up0(sched, hooks), up1(sched, hooks),
        sink(sched, hooks, sink_ack_delay),
        in0(sched, hooks, {.delay_fwd = 5, .delay_ack = 5, .length = 0},
            "in0"),
        in1(sched, hooks, {.delay_fwd = 5, .delay_ack = 5, .length = 0},
            "in1"),
        out(sched, hooks, {.delay_fwd = 5, .delay_ack = 5, .length = 0},
            "out") {
    in0.connect(up0, 0, node, 0);
    in1.connect(up1, 0, node, 1);
    out.connect(node, 0, sink, 0);
  }

  const Packet& make_packet(std::uint32_t num_flits = 3) {
    const noc::Message& msg = store.create_message(0, DestSet::single(0), 0, false);
    return store.create_packet(msg, DestSet::single(0), num_flits);
  }

  /// Streams a whole packet from the given driver (handshake-respecting).
  void stream(DriverEndpoint& drv, const Packet& pkt) {
    auto seq = std::make_shared<std::uint32_t>(1);
    drv.on_ack = [&drv, &pkt, seq](std::uint32_t port) {
      if (*seq < pkt.num_flits) {
        drv.send(port, noc::make_flit(pkt, (*seq)++));
      }
    };
    drv.send(0, noc::make_flit(pkt, 0));
  }

  sim::Scheduler sched;
  noc::SimHooks hooks;
  noc::PacketStore store;
  FaninNode node;
  DriverEndpoint up0, up1;
  RecordingEndpoint sink;
  noc::Channel in0, in1, out;
};

TEST(FaninNodeTest, ForwardsSingleInputPacket) {
  FaninHarness h;
  const Packet& pkt = h.make_packet(3);
  h.stream(h.up0, pkt);
  h.sched.run();
  ASSERT_EQ(h.sink.deliveries.size(), 3u);
  // Header: in wire 5 + entry latency 50 + out wire 5 = 60.
  EXPECT_EQ(h.sink.deliveries[0].when, 60);
  EXPECT_TRUE(h.sink.deliveries[2].flit.is_tail());
}

TEST(FaninNodeTest, PerPacketFlitOrderPreserved) {
  FaninHarness h;
  const Packet& a = h.make_packet(4);
  const Packet& b = h.make_packet(4);
  h.stream(h.up0, a);
  h.stream(h.up1, b);
  h.sched.run();
  ASSERT_EQ(h.sink.deliveries.size(), 8u);
  // Flits of a and b may interleave (flit-level arbitration, source tags),
  // but each packet's own flits must arrive in sequence order.
  std::uint32_t next_a = 0, next_b = 0;
  for (const auto& d : h.sink.deliveries) {
    if (d.flit.packet == &a) {
      EXPECT_EQ(d.flit.seq, next_a++);
    } else {
      ASSERT_EQ(d.flit.packet, &b);
      EXPECT_EQ(d.flit.seq, next_b++);
    }
  }
  EXPECT_EQ(next_a, 4u);
  EXPECT_EQ(next_b, 4u);
}

TEST(FaninNodeTest, WormholeStickiness_WinnerStreamsContiguously) {
  FaninHarness h;
  const Packet& a = h.make_packet(6);
  const Packet& b = h.make_packet(6);
  h.stream(h.up0, a);
  h.stream(h.up1, b);
  h.sched.run();
  ASSERT_EQ(h.sink.deliveries.size(), 12u);
  // Packet-sticky arbitration: the winning packet's six flits come out
  // contiguously, then the loser's (wormhole behaviour).
  const Packet* winner = h.sink.deliveries[0].flit.packet;
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(h.sink.deliveries[static_cast<std::size_t>(i)].flit.packet,
              winner);
  }
}

TEST(FaninNodeTest, WatchdogReleasesStarvedHold) {
  // Input 0's packet opens the output but its second flit never comes; the
  // watchdog must release the hold so input 1's packet is not blocked
  // forever (the deadlock-recovery mechanism).
  FaninHarness h;
  const Packet& a = h.make_packet(3);
  const Packet& b = h.make_packet(2);
  h.up0.send(0, noc::make_flit(a, 0));  // header only, body withheld
  h.sched.schedule(300, [&] { h.stream(h.up1, b); });
  h.sched.run_until(200000);
  // b's two flits were delivered despite a's packet being open and
  // starved.
  std::size_t b_flits = 0;
  for (const auto& d : h.sink.deliveries) {
    if (d.flit.packet == &b) ++b_flits;
  }
  EXPECT_EQ(b_flits, 2u);
}

TEST(FaninNodeTest, FcfsGrantsEarlierArrival) {
  FaninHarness h;
  const Packet& a = h.make_packet(2);
  const Packet& b = h.make_packet(2);
  // Input 1's header arrives strictly earlier.
  h.stream(h.up1, b);
  h.sched.schedule(100, [&] { h.stream(h.up0, a); });
  h.sched.run();
  ASSERT_EQ(h.sink.deliveries.size(), 4u);
  EXPECT_EQ(h.sink.deliveries[0].flit.packet, &b);
}

TEST(FaninNodeTest, SingleFlitPackets) {
  FaninHarness h;
  const Packet& a = h.make_packet(1);
  const Packet& b = h.make_packet(1);
  const Packet& c = h.make_packet(1);
  h.stream(h.up0, a);
  h.stream(h.up1, b);
  h.sched.schedule(500, [&] { h.stream(h.up0, c); });
  h.sched.run();
  EXPECT_EQ(h.sink.deliveries.size(), 3u);
}

TEST(FaninNodeTest, BackpressureFromSlowSink) {
  FaninHarness h(/*sink_ack_delay=*/1000);
  const Packet& a = h.make_packet(2);
  h.stream(h.up0, a);
  h.sched.run();
  ASSERT_EQ(h.sink.deliveries.size(), 2u);
  // Second flit cannot be forwarded until the sink acks the first
  // (deliver@60, sink ack@1060, ack wire 5, grant+send@1065, deliver@1070).
  EXPECT_EQ(h.sink.deliveries[1].when, 1070);
}

TEST(FaninNodeTest, LosingPacketIsAbsorbedIntoInputBuffer) {
  // The input FIFO decouples the upstream handshake from arbitration: a
  // packet facing a busy output is buffered (upstream acked promptly) up to
  // the FIFO depth.
  FaninHarness h(/*sink_ack_delay=*/5000, /*buffer_flits=*/8);
  const Packet& a = h.make_packet(5);
  const Packet& b = h.make_packet(5);
  h.stream(h.up0, a);
  h.stream(h.up1, b);
  h.sched.run_until(4000);
  // Both upstreams fully acked even though at most one flit has passed the
  // slow sink.
  EXPECT_EQ(h.up0.ack_times.size(), 5u);
  EXPECT_EQ(h.up1.ack_times.size(), 5u);
  h.sched.run();
  EXPECT_EQ(h.sink.deliveries.size(), 10u);
}

TEST(FaninNodeTest, FullBufferDefersUpstreamAck) {
  // With a buffer of 2 flits, the third flit's ack waits until the head is
  // forwarded.
  FaninHarness h(/*sink_ack_delay=*/5000, /*buffer_flits=*/2);
  const Packet& a = h.make_packet(5);
  h.stream(h.up0, a);
  h.sched.run_until(4000);
  // The header was forwarded into the slow sink; the 2-slot buffer holds
  // flits 2 and 3, with flit 3's ack deferred until a slot frees.
  EXPECT_EQ(h.up0.ack_times.size(), 2u);
  h.sched.run();
  EXPECT_EQ(h.sink.deliveries.size(), 5u);
}

TEST(FaninNodeTest, ArbitrationEnergyCounted) {
  class CountingEnergy : public noc::EnergyObserver {
   public:
    void on_node_op(const noc::Node&, noc::NodeOp op, TimePs) override {
      if (op == noc::NodeOp::kArbitrate) ++arbitrations;
    }
    void on_channel_flit(LengthUm, TimePs) override {}
    int arbitrations = 0;
  };
  FaninHarness h;
  CountingEnergy energy;
  h.hooks.energy = &energy;
  const Packet& a = h.make_packet(4);
  h.stream(h.up0, a);
  h.sched.run();
  EXPECT_EQ(energy.arbitrations, 4);
}

}  // namespace
}  // namespace specnoc::nodes
