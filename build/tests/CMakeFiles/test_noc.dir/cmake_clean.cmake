file(REMOVE_RECURSE
  "CMakeFiles/test_noc.dir/noc/channel_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/channel_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/contract_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/contract_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/network_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/network_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/packet_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/packet_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/source_sink_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/source_sink_test.cpp.o.d"
  "test_noc"
  "test_noc.pdb"
  "test_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
