file(REMOVE_RECURSE
  "CMakeFiles/bench_node_level.dir/bench_node_level.cpp.o"
  "CMakeFiles/bench_node_level.dir/bench_node_level.cpp.o.d"
  "bench_node_level"
  "bench_node_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
