// run_experiment — command-line driver for single simulation runs.
//
// Examples:
//   ./run_experiment --mode saturation --arch OptHybridSpeculative
//                    --bench Multicast10
//   ./run_experiment --mode latency --arch Baseline --bench UniformRandom
//                    --fraction 0.25
//   ./run_experiment --mode power --arch OptAllSpeculative
//                    --bench Multicast5 --n 16 --clock 600
//   ./run_experiment --mode trace --arch OptHybridSpeculative
//                    --bench Multicast10 --trace out.csv --horizon-ns 200
//   ./run_experiment --mode trace --arch OptHybridSpeculative
//                    --bench Multicast10 --perfetto out.json --horizon-ns 200
//   ./run_experiment --mode capture --arch Baseline --bench Multicast10
//                    --dump-trace run.jsonl --horizon-ns 200
//   ./run_experiment --workload run.jsonl --arch OptHybridSpeculative
//   ./run_experiment --synth DnnLayers --arch OptHybridSpeculative
//                    --replay closed --dump-trace dnn.jsonl
//
// --list prints the available architectures, benchmarks, and synthesizers.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "core/registry.h"
#include "noc/hooks.h"
#include "noc/partition.h"
#include "stats/experiment.h"
#include "stats/metrics.h"
#include "stats/perfetto_trace.h"
#include "stats/telemetry.h"
#include "stats/recorder.h"
#include "stats/trace.h"
#include "traffic/driver.h"
#include "util/cli.h"
#include "util/error.h"
#include "workload/record.h"
#include "workload/replay.h"
#include "workload/synth.h"
#include "workload/trace.h"

using namespace specnoc;
using namespace specnoc::literals;

namespace {

struct Options {
  std::string mode = "saturation";
  std::string arch = "OptHybridSpeculative";
  std::string bench = "UniformRandom";
  std::uint32_t n = 8;
  double fraction = 0.25;
  double rate = 0.0;  // explicit flits/ns/source (overrides fraction)
  std::uint64_t seed = 42;
  TimePs clock = 0;
  std::string trace_path;
  std::string perfetto_path;
  TimePs telemetry_epoch = 0;  ///< --telemetry-epoch-ns: counter-track period
  TimePs horizon = 200_ns;
  std::string workload_path;  ///< --workload: replay this trace file
  std::string synth_name;     ///< --synth: synthesize a workload trace
  std::string replay_mode = "closed";
  std::string dump_path;      ///< --dump-trace: write the trace here
  /// --threads: scheduler lanes/worker threads for the partitioned kernel
  /// (1 = the exact sequential path). Honored by the saturation and timed
  /// workload modes; event-order-sensitive modes force 1 with a note.
  unsigned threads = 1;
  noc::PartitionStrategy partition = noc::PartitionStrategy::kAuto;
};

void list_names() {
  std::printf("architectures (core::ArchitectureRegistry):\n");
  for (const auto& name : core::ArchitectureRegistry::global().names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("benchmarks:\n");
  for (const auto bench : traffic::all_benchmarks()) {
    std::printf("  %s\n", traffic::to_string(bench));
  }
  std::printf("workload synthesizers (--synth):\n");
  std::printf("  %s\n", workload::to_string(workload::SynthId::kDnnLayers));
  std::printf("  %s\n", workload::to_string(workload::SynthId::kCoherence));
  std::printf("replay modes (--replay): timed, closed\n");
}

Options parse(int argc, char** argv) {
  Options opts;
  util::CliParser cli("run_experiment",
                      "Run one simulation (saturation, latency, power, or "
                      "trace) and print its results.");
  cli.add_string("--mode", &opts.mode,
                 "saturation | latency | power | trace | workload | capture");
  cli.add_string("--arch", &opts.arch, "architecture name (see --list)");
  cli.add_string("--bench", &opts.bench, "benchmark name (see --list)");
  cli.add_uint32("--n", &opts.n, "network radix");
  cli.add_double("--fraction", &opts.fraction,
                 "operating point as a fraction of saturation");
  cli.add_double("--rate", &opts.rate,
                 "explicit flits/ns/source (overrides --fraction)");
  cli.add_uint64("--seed", &opts.seed, "traffic seed");
  cli.add_int64("--clock", &opts.clock, "clock period in ps (0 = async)");
  cli.add_string("--trace", &opts.trace_path, "trace CSV path (trace mode)");
  cli.add_string("--perfetto", &opts.perfetto_path,
                 "Chrome-trace JSON path (trace mode; open in ui.perfetto.dev "
                 "or chrome://tracing)");
  cli.add_custom("--telemetry-epoch-ns", "NS",
                 "sample epoch-delta counter tracks every NS simulated ns "
                 "(trace mode with --perfetto; 0 = off)",
                 [&opts](const std::string& v) {
                   opts.telemetry_epoch =
                       util::parse_i64(v, "--telemetry-epoch-ns") * 1000;
                 });
  cli.add_custom("--horizon-ns", "NS", "trace horizon in ns",
                 [&opts](const std::string& v) {
                   opts.horizon = util::parse_i64(v, "--horizon-ns") * 1000;
                 });
  cli.add_string("--workload", &opts.workload_path,
                 "replay this workload trace file (implies --mode workload)");
  cli.add_string("--synth", &opts.synth_name,
                 "synthesize a workload trace (see --list) instead of loading "
                 "one (implies --mode workload)");
  cli.add_string("--replay", &opts.replay_mode,
                 "replay mode: timed (open loop, recorded times) or closed "
                 "(dependency-aware)");
  cli.add_string("--dump-trace", &opts.dump_path,
                 "write the workload trace (synthesized, or captured in "
                 "capture mode) to this file");
  cli.add_unsigned("--threads", &opts.threads,
                   "worker threads for the partitioned kernel (1: exact "
                   "sequential path); results are identical for any count");
  cli.add_custom("--partition", "NAME",
                 "partition strategy: auto | none | tree | quadrant | rows",
                 [&opts](const std::string& value) {
                   opts.partition = noc::partition_strategy_from_string(value);
                 });
  cli.add_action("--list",
                 "print available architectures, benchmarks, and synthesizers",
                 [] {
                   list_names();
                   std::exit(0);
                 });
  cli.parse_or_exit(argc, argv);
  if (opts.mode == "saturation" &&
      (!opts.workload_path.empty() || !opts.synth_name.empty())) {
    opts.mode = "workload";
  }
  return opts;
}

int run(const Options& opts) {
  const auto arch = core::architecture_from_string(opts.arch);
  const auto bench = traffic::benchmark_from_string(opts.bench);
  core::NetworkConfig cfg;
  cfg.n = opts.n;
  cfg.clock_period = opts.clock;
  cfg.sim_threads = opts.threads;
  cfg.partition = opts.partition;
  // Event-order-sensitive modes have no windowed equivalent (DESIGN.md §9):
  // latency/power drain event-by-event or accumulate order-dependent
  // doubles, and capture/trace observe the global event interleave.
  if (opts.threads > 1 &&
      (opts.mode == "latency" || opts.mode == "power" ||
       opts.mode == "capture" || opts.mode == "trace")) {
    std::printf("note: %s mode is sequential-only; ignoring --threads %u\n",
                opts.mode.c_str(), opts.threads);
    cfg.sim_threads = 1;
  }
  if (opts.mode == "workload" && opts.replay_mode == "closed" &&
      opts.threads > 1) {
    std::printf("note: closed-loop replay is sequential-only (zero-lookahead "
                "feedback); ignoring --threads %u\n",
                opts.threads);
    cfg.sim_threads = 1;
  }
  stats::ExperimentRunner runner(cfg, opts.seed);

  if (opts.mode == "saturation") {
    const auto& sat = runner.saturation(arch, bench);
    std::printf("%s / %s (n=%u%s)\n", opts.arch.c_str(), opts.bench.c_str(),
                opts.n, opts.clock ? ", clocked" : "");
    std::printf("  delivered: %.3f flits/ns/source\n",
                sat.delivered_flits_per_ns);
    std::printf("  injected:  %.3f flits/ns/source\n",
                sat.injected_flits_per_ns);
    std::printf("  delivery factor: %.3f, serialization expansion: %.3f\n",
                sat.delivery_factor, sat.message_expansion);
    return 0;
  }
  if (opts.mode == "latency") {
    const auto result =
        opts.rate > 0.0
            ? runner.measure_latency(arch, bench, opts.rate,
                                     traffic::default_windows(bench))
            : runner.latency_at_fraction(arch, bench, opts.fraction);
    if (opts.rate > 0.0) {
      std::printf("%s / %s at %.3f flits/ns/src\n", opts.arch.c_str(),
                  opts.bench.c_str(), opts.rate);
    } else {
      std::printf("%s / %s at %.0f%% of own saturation\n",
                  opts.arch.c_str(), opts.bench.c_str(),
                  opts.fraction * 100.0);
    }
    std::printf("  mean latency: %.3f ns   p95: %.3f ns   max: %.3f ns\n",
                result.mean_latency_ns, result.p95_latency_ns,
                result.max_latency_ns);
    std::printf("  messages measured: %llu   drained: %s\n",
                static_cast<unsigned long long>(result.messages_measured),
                result.drained ? "yes" : "NO (saturated)");
    return 0;
  }
  if (opts.mode == "power") {
    const auto result =
        opts.rate > 0.0
            ? runner.measure_power(arch, bench, opts.rate,
                                   traffic::default_windows(bench))
            : runner.power_at_baseline_fraction(arch, bench, opts.fraction);
    std::printf("%s / %s\n", opts.arch.c_str(), opts.bench.c_str());
    std::printf("  total power: %.2f mW (nodes %.2f + wires %.2f)\n",
                result.power_mw, result.node_power_mw, result.wire_power_mw);
    std::printf("  delivered: %.3f flits/ns/src; throttled flits: %llu; "
                "broadcast ops: %llu\n",
                result.delivered_flits_per_ns,
                static_cast<unsigned long long>(result.throttled_flits),
                static_cast<unsigned long long>(result.broadcast_ops));
    return 0;
  }
  if (opts.mode == "workload") {
    if (opts.workload_path.empty() == opts.synth_name.empty()) {
      std::fprintf(stderr,
                   "workload mode needs exactly one of --workload FILE or "
                   "--synth NAME\n");
      return 2;
    }
    const workload::Trace trace =
        opts.workload_path.empty()
            ? workload::make_synth_workload(
                  workload::synth_from_string(opts.synth_name), cfg.n,
                  cfg.flits_per_packet, opts.seed)
            : workload::load_trace(opts.workload_path);
    if (!opts.dump_path.empty()) {
      workload::save_trace(trace, opts.dump_path);
      std::printf("wrote %zu-message trace to %s (hash %s)\n",
                  trace.records.size(), opts.dump_path.c_str(),
                  workload::trace_hash(trace).c_str());
    }
    const auto mode = workload::replay_mode_from_string(opts.replay_mode);
    const auto result = runner.run_workload(
        [arch, cfg] { return std::make_unique<core::MotNetwork>(arch, cfg); },
        trace, mode);
    std::printf("%s / %s replay of %s (%llu messages, trace %s)\n",
                opts.arch.c_str(), workload::to_string(mode),
                trace.meta.generator.empty() ? "<trace>"
                                             : trace.meta.generator.c_str(),
                static_cast<unsigned long long>(result.messages),
                workload::trace_hash(trace).c_str());
    std::printf("  makespan: %.3f ns   delivered: %llu/%llu messages, "
                "%llu flits\n",
                result.makespan_ns,
                static_cast<unsigned long long>(result.messages_delivered),
                static_cast<unsigned long long>(result.messages),
                static_cast<unsigned long long>(result.flits_delivered));
    std::printf("  mean latency: %.3f ns   p95: %.3f ns   max: %.3f ns\n",
                result.mean_latency_ns, result.p95_latency_ns,
                result.max_latency_ns);
    if (!result.completed) {
      std::printf("  WARNING: replay did not complete\n");
      return 1;
    }
    return 0;
  }
  if (opts.mode == "capture") {
    if (opts.dump_path.empty()) {
      std::fprintf(stderr, "capture mode needs --dump-trace FILE\n");
      return 2;
    }
    core::MotNetwork network(arch, cfg);
    workload::TraceRecorder capture(network.net().packets(), cfg.n,
                                    std::string("capture:") + opts.bench);
    stats::TrafficRecorder recorder(network.net().packets());
    noc::TeeTrafficObserver tee{&capture, &recorder};
    network.net().hooks().traffic = &tee;
    auto pattern = traffic::make_benchmark(bench, cfg.n);
    traffic::DriverConfig dcfg;
    dcfg.mode = traffic::InjectionMode::kOpenLoop;
    dcfg.flits_per_ns_per_source = opts.rate > 0.0 ? opts.rate : 0.3;
    dcfg.seed = opts.seed;
    traffic::TrafficDriver driver(network, *pattern, dcfg);
    driver.set_measured(true);
    recorder.open_window(0);
    driver.start();
    network.scheduler().run_until(opts.horizon);
    recorder.close_window(network.scheduler().now());
    const workload::Trace trace = capture.trace();
    workload::save_trace(trace, opts.dump_path);
    std::printf("captured %zu messages (%llu flits delivered, %lld ns) to "
                "%s (hash %s)\n",
                trace.records.size(),
                static_cast<unsigned long long>(
                    recorder.window_flits_ejected()),
                static_cast<long long>(opts.horizon / 1000),
                opts.dump_path.c_str(), workload::trace_hash(trace).c_str());
    return 0;
  }
  if (opts.mode == "trace") {
    if (opts.trace_path.empty() == opts.perfetto_path.empty()) {
      std::fprintf(stderr,
                   "trace mode needs exactly one of --trace FILE (CSV) or "
                   "--perfetto FILE (Chrome-trace JSON)\n");
      return 2;
    }
    const std::string& path =
        opts.trace_path.empty() ? opts.perfetto_path : opts.trace_path;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    stats::TraceFilter filter;
    filter.node_ops = true;
    std::unique_ptr<stats::FlitTracer> csv;
    std::unique_ptr<stats::PerfettoTracer> perfetto;
    std::unique_ptr<stats::TelemetrySampler> sampler;
    stats::MetricsRegistry telemetry_registry;
    noc::TeeMetricsObserver metrics_tee;
    core::MotNetwork network(arch, cfg);
    if (!opts.trace_path.empty()) {
      csv = std::make_unique<stats::FlitTracer>(out, filter);
      network.net().hooks().traffic = csv.get();
      network.net().hooks().energy = csv.get();
    } else {
      perfetto = std::make_unique<stats::PerfettoTracer>();
      network.net().hooks().traffic = perfetto.get();
      network.net().hooks().energy = perfetto.get();
      network.net().hooks().metrics = perfetto.get();
      if (opts.telemetry_epoch > 0) {
        stats::TelemetryOptions topts;
        topts.epoch_ps = opts.telemetry_epoch;
        sampler = std::make_unique<stats::TelemetrySampler>(topts);
        // The sampler diffs a registry's totals, so tee one in beside the
        // tracer's own metrics instants.
        metrics_tee.add(perfetto.get());
        metrics_tee.add(&telemetry_registry);
        network.net().hooks().metrics = &metrics_tee;
        sampler->arm(network.net(), telemetry_registry);
      }
    }
    auto pattern = traffic::make_benchmark(bench, cfg.n);
    traffic::DriverConfig dcfg;
    dcfg.mode = traffic::InjectionMode::kOpenLoop;
    dcfg.flits_per_ns_per_source = opts.rate > 0.0 ? opts.rate : 0.3;
    dcfg.seed = opts.seed;
    traffic::TrafficDriver driver(network, *pattern, dcfg);
    driver.start();
    network.scheduler().run_until(opts.horizon);
    if (csv != nullptr) {
      std::printf("wrote %llu trace rows to %s (%lld ns simulated)\n",
                  static_cast<unsigned long long>(csv->rows_written()),
                  path.c_str(), static_cast<long long>(opts.horizon / 1000));
    } else {
      if (sampler != nullptr) {
        stats::TelemetrySeries series = sampler->finish();
        std::printf("sampled %zu telemetry epochs (%llu ps period)\n",
                    series.epochs.size(),
                    static_cast<unsigned long long>(series.epoch_ps));
        perfetto->set_telemetry(std::move(series));
      }
      perfetto->write(out);
      std::printf("wrote %llu trace events to %s (%lld ns simulated); open "
                  "in ui.perfetto.dev or chrome://tracing\n",
                  static_cast<unsigned long long>(perfetto->num_events()),
                  path.c_str(), static_cast<long long>(opts.horizon / 1000));
    }
    return 0;
  }
  std::fprintf(stderr, "unknown mode '%s'\n", opts.mode.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse(argc, argv));
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::fprintf(stderr, "use --list to see valid names\n");
    return 2;
  }
}
