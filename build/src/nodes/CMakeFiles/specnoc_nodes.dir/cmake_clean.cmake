file(REMOVE_RECURSE
  "CMakeFiles/specnoc_nodes.dir/characteristics.cpp.o"
  "CMakeFiles/specnoc_nodes.dir/characteristics.cpp.o.d"
  "CMakeFiles/specnoc_nodes.dir/fanin_node.cpp.o"
  "CMakeFiles/specnoc_nodes.dir/fanin_node.cpp.o.d"
  "CMakeFiles/specnoc_nodes.dir/fanout_base.cpp.o"
  "CMakeFiles/specnoc_nodes.dir/fanout_base.cpp.o.d"
  "CMakeFiles/specnoc_nodes.dir/fanout_nodes.cpp.o"
  "CMakeFiles/specnoc_nodes.dir/fanout_nodes.cpp.o.d"
  "libspecnoc_nodes.a"
  "libspecnoc_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specnoc_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
