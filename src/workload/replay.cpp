#include "workload/replay.h"

#include <algorithm>

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::workload {

const char* to_string(ReplayMode mode) {
  switch (mode) {
    case ReplayMode::kTimed:
      return "timed";
    case ReplayMode::kClosedLoop:
      return "closed";
  }
  SPECNOC_UNREACHABLE("ReplayMode");
}

ReplayMode replay_mode_from_string(const std::string& name) {
  if (name == "timed") return ReplayMode::kTimed;
  if (name == "closed") return ReplayMode::kClosedLoop;
  throw ConfigError("unknown replay mode '" + name +
                    "' (valid modes: timed, closed)");
}

TraceReplayDriver::TraceReplayDriver(noc::MessageNetwork& network,
                                     const Trace& trace, ReplayConfig config)
    : network_(network), trace_(trace), config_(config) {
  trace_.validate();
  if (trace_.meta.n != network_.endpoints()) {
    throw ConfigError("trace was recorded for n=" +
                      std::to_string(trace_.meta.n) +
                      " endpoints but the network has " +
                      std::to_string(network_.endpoints()));
  }
  const std::uint32_t flits = network_.flits_per_packet();
  states_.resize(trace_.records.size());
  for (std::size_t i = 0; i < trace_.records.size(); ++i) {
    const TraceRecord& rec = trace_.records[i];
    if (rec.size != flits) {
      throw ConfigError("trace message " + std::to_string(rec.id) + " has " +
                        std::to_string(rec.size) +
                        " flits but the network carries fixed " +
                        std::to_string(flits) + "-flit packets");
    }
    states_[i].remaining = rec.dests;
    states_[i].pending_deps = static_cast<std::uint32_t>(rec.deps.size());
  }
  // Invert the dependency lists once; ids are strictly increasing, so a
  // binary search maps each dep id to its record index.
  for (std::size_t i = 0; i < trace_.records.size(); ++i) {
    for (const std::uint64_t dep : trace_.records[i].deps) {
      const auto it = std::lower_bound(
          trace_.records.begin(), trace_.records.end(), dep,
          [](const TraceRecord& r, std::uint64_t id) { return r.id < id; });
      SPECNOC_ASSERT(it != trace_.records.end() && it->id == dep);
      const auto dep_index =
          static_cast<std::size_t>(it - trace_.records.begin());
      states_[dep_index].dependents.push_back(static_cast<std::uint32_t>(i));
    }
  }
  index_of_message_.reserve(trace_.records.size());
}

void TraceReplayDriver::start() {
  SPECNOC_EXPECTS(!started_);
  started_ = true;
  if (config_.mode == ReplayMode::kClosedLoop && network_.net().partitioned()) {
    throw ConfigError(
        "closed-loop replay schedules injections from delivery events — a "
        "zero-lookahead feedback path the partitioned window protocol cannot "
        "honor; build the network with sim_threads = 1");
  }
  for (std::size_t i = 0; i < trace_.records.size(); ++i) {
    const TraceRecord& rec = trace_.records[i];
    TimePs at;
    if (config_.mode == ReplayMode::kTimed) {
      // Open loop: recorded times are the whole schedule. Each injection is
      // scheduled on its source's own lane, so timed replay runs under the
      // partitioned kernel unchanged.
      at = rec.earliest;
    } else {
      if (!rec.deps.empty()) continue;  // injected when the deps deliver
      at = std::max(rec.earliest, rec.delay);
    }
    sim::Scheduler& lane = network_.net().source(rec.src).lane();
    lane.schedule_at(std::max(at, lane.now()), [this, i] { inject(i); });
  }
}

void TraceReplayDriver::inject(std::size_t index) {
  const TraceRecord& rec = trace_.records[index];
  MessageState& state = states_[index];
  SPECNOC_ASSERT(state.injected_at < 0);
  state.injected_at = network_.net().source(rec.src).lane().now();
  const noc::MessageId id =
      network_.send_message(rec.src, rec.dests, config_.measured);
  // Injections run on source lanes (concurrently in partitioned runs);
  // deliveries arrive through the serialized hook path. The id map and the
  // injection counter are the only state both sides touch.
  const std::lock_guard<std::mutex> lock(mutex_);
  index_of_message_.emplace(id, static_cast<std::uint32_t>(index));
  ++injected_;
}

void TraceReplayDriver::on_flit_ejected(const noc::Packet& packet,
                                        std::uint32_t dest, noc::FlitKind kind,
                                        TimePs when) {
  if (downstream_ != nullptr) {
    downstream_->on_flit_ejected(packet, dest, kind, when);
  }
  if (kind != noc::FlitKind::kHeader) return;
  std::uint32_t index;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_of_message_.find(packet.message);
    if (it == index_of_message_.end()) return;  // not a trace message
    index = it->second;
  }
  MessageState& state = states_[index];
  SPECNOC_ASSERT(state.remaining.test(dest));
  state.remaining.reset(dest);
  if (state.remaining.none()) complete(index, when);
}

void TraceReplayDriver::on_packet_injected(const noc::Packet& packet,
                                           TimePs when) {
  if (downstream_ != nullptr) downstream_->on_packet_injected(packet, when);
}

void TraceReplayDriver::complete(std::size_t index, TimePs when) {
  MessageState& state = states_[index];
  state.delivered_at = when;
  ++delivered_;
  completion_time_ = std::max(completion_time_, when);
  if (config_.mode != ReplayMode::kClosedLoop) return;
  sim::Scheduler& scheduler = network_.net().scheduler();
  for (const std::uint32_t dependent : state.dependents) {
    MessageState& dep_state = states_[dependent];
    SPECNOC_ASSERT(dep_state.pending_deps > 0);
    if (--dep_state.pending_deps != 0) continue;
    const TraceRecord& rec = trace_.records[dependent];
    const std::size_t i = dependent;
    scheduler.schedule_at(std::max(rec.earliest, when + rec.delay),
                          [this, i] { inject(i); });
  }
}

}  // namespace specnoc::workload
