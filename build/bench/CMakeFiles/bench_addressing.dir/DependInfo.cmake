
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_addressing.cpp" "bench/CMakeFiles/bench_addressing.dir/bench_addressing.cpp.o" "gcc" "bench/CMakeFiles/bench_addressing.dir/bench_addressing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/specnoc_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/specnoc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/specnoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mot/CMakeFiles/specnoc_mot.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/specnoc_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/specnoc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/nodes/CMakeFiles/specnoc_nodes.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/specnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specnoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specnoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
