file(REMOVE_RECURSE
  "libspecnoc_power.a"
)
