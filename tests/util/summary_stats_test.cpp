#include "util/summary_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace specnoc {
namespace {

TEST(SummaryStatsTest, EmptyMeanIsZero) {
  SummaryStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  // Sample stddev of that classic set: sqrt(32/7).
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryStatsTest, PercentilesNearestRank) {
  SummaryStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(stats.percentile(95.0), 95.0);
  EXPECT_DOUBLE_EQ(stats.percentile(100.0), 100.0);
}

TEST(SummaryStatsTest, PercentileSingleSample) {
  SummaryStats stats;
  stats.add(7.5);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 7.5);
  EXPECT_DOUBLE_EQ(stats.percentile(99.0), 7.5);
}

TEST(SummaryStatsTest, InterleavedAddAndQuery) {
  SummaryStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
  stats.add(9.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.percentile(50.0), 3.0);
}

TEST(SummaryStatsTest, UniformSamplesPercentileSanity) {
  Rng rng(5);
  SummaryStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(rng.uniform01());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.percentile(50.0), 0.5, 0.02);
  EXPECT_NEAR(stats.percentile(99.0), 0.99, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0.0, 1.0, 4);  // bins [0,1) [1,2) [2,3) [3,4)
  h.add(0.5);
  h.add(1.0);
  h.add(1.99);
  h.add(3.5);
  h.add(4.0);   // overflow
  h.add(-1.0);  // clamps to first bin
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(2), 2.0);
}

}  // namespace
}  // namespace specnoc
