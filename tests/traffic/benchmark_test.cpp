#include "traffic/benchmark.h"

#include <bit>

#include <gtest/gtest.h>

#include "util/error.h"

namespace specnoc::traffic {
namespace {

TEST(BenchmarkTest, NamesMatchPaper) {
  EXPECT_STREQ(to_string(BenchmarkId::kUniformRandom), "UniformRandom");
  EXPECT_STREQ(to_string(BenchmarkId::kShuffle), "Shuffle");
  EXPECT_STREQ(to_string(BenchmarkId::kHotspot), "Hotspot");
  EXPECT_STREQ(to_string(BenchmarkId::kMulticast5), "Multicast5");
  EXPECT_STREQ(to_string(BenchmarkId::kMulticast10), "Multicast10");
  EXPECT_STREQ(to_string(BenchmarkId::kMulticastStatic), "Multicast_static");
}

TEST(BenchmarkTest, Groups) {
  EXPECT_EQ(all_benchmarks().size(), 6u);
  EXPECT_EQ(unicast_benchmarks().size(), 3u);
  EXPECT_EQ(multicast_benchmarks().size(), 3u);
  EXPECT_FALSE(is_multicast_benchmark(BenchmarkId::kUniformRandom));
  EXPECT_TRUE(is_multicast_benchmark(BenchmarkId::kMulticast5));
  EXPECT_TRUE(is_multicast_benchmark(BenchmarkId::kMulticastStatic));
}

TEST(BenchmarkTest, FactoryProducesWorkingPatterns) {
  Rng rng(1);
  for (const auto id : all_benchmarks()) {
    auto p = make_benchmark(id, 8);
    ASSERT_NE(p, nullptr);
    for (std::uint32_t s = 0; s < 8; ++s) {
      const auto dests = p->next_dests(s, rng);
      EXPECT_TRUE(dests.any());
      EXPECT_TRUE(dests.within(8));
    }
  }
}

TEST(BenchmarkTest, BenchmarksScaleTo16) {
  Rng rng(2);
  for (const auto id : all_benchmarks()) {
    auto p = make_benchmark(id, 16);
    const auto dests = p->next_dests(5, rng);
    EXPECT_TRUE(dests.any());
    EXPECT_TRUE(dests.within(16));
  }
}

TEST(BenchmarkTest, FromStringRoundTrip) {
  for (const auto id : all_benchmarks()) {
    EXPECT_EQ(benchmark_from_string(to_string(id)), id);
  }
  try {
    benchmark_from_string("NotABenchmark");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    // The error lists every valid name, so a typo on the command line shows
    // the available choices instead of a bare rejection.
    const std::string what = e.what();
    for (const auto id : all_benchmarks()) {
      EXPECT_NE(what.find(to_string(id)), std::string::npos) << what;
    }
  }
}

TEST(BenchmarkTest, DefaultWindowsFollowPaper) {
  using namespace specnoc::literals;
  const auto uniform = default_windows(BenchmarkId::kUniformRandom);
  EXPECT_EQ(uniform.warmup, 320_ns);
  EXPECT_EQ(uniform.measure, 3200_ns);
  const auto stat = default_windows(BenchmarkId::kMulticastStatic);
  EXPECT_EQ(stat.warmup, 640_ns);
  EXPECT_EQ(stat.measure, 6400_ns);
}

TEST(BenchmarkTest, Multicast5FractionRoughly5Percent) {
  auto p = make_benchmark(BenchmarkId::kMulticast5, 8);
  Rng rng(3);
  int multi = 0;
  const int samples = 40000;
  for (int i = 0; i < samples; ++i) {
    if (p->next_dests(0, rng).is_multicast()) ++multi;
  }
  EXPECT_NEAR(static_cast<double>(multi) / samples, 0.05, 0.006);
}

}  // namespace
}  // namespace specnoc::traffic
