#include "util/cli.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace specnoc::util {
namespace {

/// Builds a mutable argv from string literals (argv[0] is the program).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    args_.insert(args_.begin(), "prog");
    for (auto& arg : args_) ptrs_.push_back(arg.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

TEST(ParseNumbersTest, ParsesStrictU64) {
  EXPECT_EQ(parse_u64("42", "--x"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615", "--x"),
            18446744073709551615ull);
  EXPECT_THROW(parse_u64("", "--x"), UsageError);
  EXPECT_THROW(parse_u64("12abc", "--x"), UsageError);
  EXPECT_THROW(parse_u64("-3", "--x"), UsageError);
  EXPECT_THROW(parse_u64(" 12", "--x"), UsageError);
  EXPECT_THROW(parse_u64("18446744073709551616", "--x"), UsageError);
}

TEST(ParseNumbersTest, ParsesStrictI64AndF64) {
  EXPECT_EQ(parse_i64("-42", "--x"), -42);
  EXPECT_THROW(parse_i64("4x", "--x"), UsageError);
  EXPECT_DOUBLE_EQ(parse_f64("0.25", "--x"), 0.25);
  EXPECT_THROW(parse_f64("0.25q", "--x"), UsageError);
  EXPECT_THROW(parse_f64("", "--x"), UsageError);
}

TEST(CliParserTest, ParsesTypedFlags) {
  std::uint64_t seed = 42;
  unsigned jobs = 0;
  double rate = 0.0;
  bool verbose = false;
  std::string path;
  CliParser cli("tool", "summary");
  cli.add_uint64("--seed", &seed, "seed");
  cli.add_unsigned("--jobs", &jobs, "jobs");
  cli.add_double("--rate", &rate, "rate");
  cli.add_flag("--verbose", &verbose, "verbose");
  cli.add_string("--path", &path, "path");

  Argv argv({"--seed", "7", "--jobs", "3", "--rate", "0.5", "--verbose",
             "--path", "out.csv"});
  EXPECT_TRUE(cli.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(seed, 7u);
  EXPECT_EQ(jobs, 3u);
  EXPECT_DOUBLE_EQ(rate, 0.5);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(path, "out.csv");
}

TEST(CliParserTest, RejectsUnknownFlagsAndGarbageValues) {
  std::uint64_t seed = 0;
  CliParser cli("tool", "summary");
  cli.add_uint64("--seed", &seed, "seed");
  {
    Argv argv({"--sneed", "7"});
    EXPECT_THROW(
        static_cast<void>(cli.parse(argv.argc(), argv.argv())), UsageError);
  }
  {
    Argv argv({"--seed", "sevn"});
    EXPECT_THROW(
        static_cast<void>(cli.parse(argv.argc(), argv.argv())), UsageError);
  }
  {
    Argv argv({"--seed"});  // missing value
    EXPECT_THROW(
        static_cast<void>(cli.parse(argv.argc(), argv.argv())), UsageError);
  }
}

TEST(CliParserTest, HelpReturnsFalse) {
  CliParser cli("tool", "summary");
  Argv argv({"--help"});
  EXPECT_FALSE(cli.parse(argv.argc(), argv.argv()));
}

TEST(CliParserTest, PositionalsConsumeInOrder) {
  std::uint32_t cols = 4, rows = 4;
  CliParser cli("tool", "summary");
  cli.add_positional_uint32("cols", &cols, "columns");
  cli.add_positional_uint32("rows", &rows, "rows");
  Argv argv({"8", "2"});
  EXPECT_TRUE(cli.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(cols, 8u);
  EXPECT_EQ(rows, 2u);

  Argv extra({"8", "2", "9"});
  EXPECT_THROW(
      static_cast<void>(cli.parse(extra.argc(), extra.argv())), UsageError);
}

TEST(CliParserTest, PositionalListCollectsTrailingArguments) {
  std::string out;
  std::vector<std::string> files;
  CliParser cli("tool", "summary");
  cli.add_string("--out", &out, "output");
  cli.add_positional_list("file", &files, "input files");
  Argv argv({"a.jsonl", "--out", "m.jsonl", "b.jsonl", "c.jsonl"});
  EXPECT_TRUE(cli.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(out, "m.jsonl");
  EXPECT_EQ(files, (std::vector<std::string>{"a.jsonl", "b.jsonl", "c.jsonl"}));
}

TEST(CliParserTest, CustomAndActionFlags) {
  int calls = 0;
  std::string shard;
  CliParser cli("tool", "summary");
  cli.add_custom("--shard", "i/K", "shard",
                 [&shard](const std::string& v) { shard = v; });
  cli.add_action("--bump", "bump", [&calls] { ++calls; });
  Argv argv({"--bump", "--shard", "1/4", "--bump"});
  EXPECT_TRUE(cli.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(shard, "1/4");
  EXPECT_EQ(calls, 2);
}

TEST(CliParserTest, UsageListsEveryFlag) {
  std::uint64_t seed = 0;
  CliParser cli("tool", "What the tool does.");
  cli.add_uint64("--seed", &seed, "the seed");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("usage: tool"), std::string::npos);
  EXPECT_NE(usage.find("What the tool does."), std::string::npos);
  EXPECT_NE(usage.find("--seed"), std::string::npos);
  EXPECT_NE(usage.find("the seed"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(CliParserTest, DuplicateFlagRegistrationFailsFastNamingTheFlag) {
  std::uint64_t seed = 0;
  double rate = 0.0;
  CliParser cli("tool", "summary");
  cli.add_uint64("--seed", &seed, "the seed");
  try {
    cli.add_double("--seed", &rate, "collides across types too");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--seed"), std::string::npos) << what;
    EXPECT_NE(what.find("tool"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace specnoc::util
