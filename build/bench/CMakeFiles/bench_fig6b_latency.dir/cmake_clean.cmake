file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_latency.dir/bench_fig6b_latency.cpp.o"
  "CMakeFiles/bench_fig6b_latency.dir/bench_fig6b_latency.cpp.o.d"
  "bench_fig6b_latency"
  "bench_fig6b_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
