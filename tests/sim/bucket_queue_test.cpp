// Kernel data-structure tests: InplaceEvent, the hierarchical bucket
// queue, a randomized differential test against a sorted-vector reference
// model, and the zero-allocations-per-event guarantee.
#include "sim/bucket_queue.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event.h"
#include "sim/scheduler.h"

// Count every heap allocation in the binary so the allocation test below
// can assert the kernel's steady state performs none. Counting is the only
// side effect; allocation behavior is otherwise unchanged.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// noinline keeps the malloc/free bodies out of allocator call sites, where
// GCC's -Wmismatched-new-delete would mispair them.
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace specnoc::sim {
namespace {

// ---------------------------------------------------------------------------
// InplaceEvent

static_assert(sizeof(InplaceEvent) <= 64,
              "InplaceEvent should stay within a cache line");

TEST(InplaceEventTest, DefaultConstructedIsEmpty) {
  InplaceEvent e;
  EXPECT_FALSE(static_cast<bool>(e));
}

TEST(InplaceEventTest, InvokesStoredCallable) {
  int calls = 0;
  InplaceEvent e([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(e));
  e();
  e();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceEventTest, MoveTransfersCallableAndEmptiesSource) {
  int calls = 0;
  InplaceEvent a([&calls] { ++calls; });
  InplaceEvent b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  InplaceEvent c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceEventTest, DestroysNonTrivialCapture) {
  auto token = std::make_shared<int>(42);
  {
    InplaceEvent e([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceEventTest, ResetDestroysCapture) {
  auto token = std::make_shared<int>(7);
  InplaceEvent e([token] {});
  EXPECT_EQ(token.use_count(), 2);
  e.reset();
  EXPECT_FALSE(static_cast<bool>(e));
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceEventTest, InvokeAndDisposeFiresOnceAndEmpties) {
  auto token = std::make_shared<int>(0);
  InplaceEvent e([token] { ++*token; });
  e.invoke_and_dispose();
  EXPECT_FALSE(static_cast<bool>(e));
  EXPECT_EQ(*token, 1);
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceEventTest, EmplaceReplacesExistingCallable) {
  auto old_token = std::make_shared<int>(0);
  int calls = 0;
  InplaceEvent e([old_token] {});
  e.emplace([&calls] { ++calls; });
  EXPECT_EQ(old_token.use_count(), 1);  // old capture destroyed
  e();
  EXPECT_EQ(calls, 1);
}

TEST(InplaceEventTest, HoldsCaptureAtFullCapacity) {
  struct Big {
    std::uint64_t words[InplaceEvent::kCapacity / sizeof(std::uint64_t) - 1];
  };
  Big big{};
  big.words[0] = 11;
  big.words[4] = 22;
  std::uint64_t seen = 0;
  // Capture is exactly kCapacity bytes: Big plus one reference.
  InplaceEvent e([big, &seen] { seen = big.words[0] + big.words[4]; });
  static_assert(sizeof(Big) + sizeof(void*) == InplaceEvent::kCapacity,
                "capture should exactly fill the inline storage");
  e();
  EXPECT_EQ(seen, 33u);
}

// ---------------------------------------------------------------------------
// BucketQueue

TEST(BucketQueueTest, PopsInTimeOrderAcrossTiers) {
  BucketQueue q;
  std::vector<int> order;
  q.push(10000, [&order] { order.push_back(3); });  // overflow tier
  q.push(5, [&order] { order.push_back(1); });      // near tier
  q.push(10000, [&order] { order.push_back(4); });  // same time, later seq
  q.push(4095, [&order] { order.push_back(2); });   // last in-window bucket
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.min_time(), 5);
  while (!q.empty()) {
    const BucketQueue::PopRef ref = q.pop();
    q.invoke_and_dispose(ref);
    q.recycle(ref);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(BucketQueueTest, AdvanceToSlidesWindowPastOverflowBoundary) {
  BucketQueue q;
  std::vector<TimePs> times;
  q.push(6000, [&times] { times.push_back(6000); });
  EXPECT_EQ(q.min_time(), 6000);
  q.advance_to(3000);  // 6000 now falls inside [3000, 3000 + 4096)
  EXPECT_EQ(q.min_time(), 6000);
  const BucketQueue::PopRef ref = q.pop();
  EXPECT_EQ(ref.time, 6000);
  q.invoke_and_dispose(ref);
  q.recycle(ref);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, SlotReuseAfterRecycle) {
  BucketQueue q;
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    q.push(i, [&fired] { ++fired; });
    const BucketQueue::PopRef ref = q.pop();
    q.invoke_and_dispose(ref);
    q.recycle(ref);
    EXPECT_EQ(ref.slot, 0u);  // the single slot is reused every cycle
  }
  EXPECT_EQ(fired, 10000);
}

// ---------------------------------------------------------------------------
// Differential fuzz: Scheduler (bucket queue) vs a sorted-vector reference
// model implementing the (time, insertion seq) contract directly.

struct RefModel {
  struct Ev {
    TimePs time;
    std::uint64_t seq;
    int id;
  };
  std::vector<Ev> evs;
  std::uint64_t next_seq = 0;
  TimePs now = 0;

  void schedule_at(TimePs t, int id) { evs.push_back({t, next_seq++, id}); }
  TimePs min_time() const {
    TimePs best = evs.front().time;
    for (const Ev& e : evs) best = e.time < best ? e.time : best;
    return best;
  }
  Ev pop() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < evs.size(); ++i) {
      const bool earlier =
          evs[i].time != evs[best].time ? evs[i].time < evs[best].time
                                        : evs[i].seq < evs[best].seq;
      if (earlier) best = i;
    }
    const Ev e = evs[best];
    evs.erase(evs.begin() + static_cast<std::ptrdiff_t>(best));
    now = e.time;
    return e;
  }
};

// Delays chosen to stress same-time bursts (0), bucket boundaries
// (4094..4097 around the 4096-wide window), wrap-around (8191), and
// overflow promotion (20000, 100000).
constexpr TimePs kDelays[] = {0,    1,    2,    3,    50,    900,  4094,
                              4095, 4096, 4097, 8191, 20000, 100000};
constexpr auto kNumDelays =
    static_cast<std::uint32_t>(sizeof(kDelays) / sizeof(kDelays[0]));

TEST(BucketQueueFuzzTest, MatchesSortedReferenceModel) {
  std::uint64_t rng_state = 0x243f6a8885a308d3ull;
  auto rnd = [&rng_state](std::uint32_t bound) {
    rng_state = rng_state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>((rng_state >> 33) % bound);
  };

  for (int round = 0; round < 8; ++round) {
    Scheduler s;
    RefModel m;
    std::vector<int> fired;        // real kernel fire order
    std::vector<int> fired_model;  // reference model fire order
    int next_id = 0;

    // Events with id % 4 == 0 schedule one follow-up from inside their
    // handler (push-during-pop); children get id + 1000000 and never
    // re-spawn.
    auto schedule_event = [&](TimePs at, int id) {
      s.schedule_at(at, [&fired, &s, id] {
        fired.push_back(id);
        if (id % 4 == 0 && id < 1000000) {
          s.schedule(
              kDelays[static_cast<std::uint32_t>(id) % kNumDelays],
              [&fired, id] { fired.push_back(id + 1000000); });
        }
      });
      m.schedule_at(at, id);
    };
    auto model_step = [&] {
      const RefModel::Ev e = m.pop();
      fired_model.push_back(e.id);
      if (e.id % 4 == 0 && e.id < 1000000) {
        m.schedule_at(
            e.time + kDelays[static_cast<std::uint32_t>(e.id) % kNumDelays],
            e.id + 1000000);
      }
      return e;
    };

    for (int op = 0; op < 400; ++op) {
      const std::uint32_t kind = rnd(100);
      if (kind < 55) {
        // Schedule a burst of 1..4 events, often at the identical time to
        // exercise same-timestamp FIFO ordering.
        TimePs at = s.now() + kDelays[rnd(kNumDelays)];
        const std::uint32_t burst = 1 + rnd(4);
        for (std::uint32_t i = 0; i < burst; ++i) {
          schedule_event(at, next_id++);
          if (rnd(3) == 0) at = s.now() + kDelays[rnd(kNumDelays)];
        }
      } else if (kind < 85) {
        // Single-step both and compare each pop.
        for (std::uint32_t i = 1 + rnd(6); i > 0 && s.pending() > 0; --i) {
          ASSERT_FALSE(m.evs.empty());
          ASSERT_TRUE(s.step());
          const RefModel::Ev e = model_step();
          ASSERT_EQ(fired.back(), e.id);
          ASSERT_EQ(s.now(), e.time);
        }
      } else {
        // run_until a random horizon; drain the model to the same time.
        const TimePs horizon = s.now() + static_cast<TimePs>(rnd(30000));
        s.run_until(horizon);
        while (!m.evs.empty() && m.min_time() <= horizon) model_step();
        m.now = horizon;
        ASSERT_EQ(s.now(), horizon);
        ASSERT_EQ(s.pending(), m.evs.size());
        ASSERT_EQ(fired, fired_model);
      }
    }

    s.run();
    while (!m.evs.empty()) model_step();
    ASSERT_EQ(fired, fired_model) << "round " << round;
    // Every scheduled event fired exactly once: all parents plus one child
    // per id % 4 == 0 parent.
    const auto parents = static_cast<std::size_t>(next_id);
    ASSERT_EQ(fired.size(), parents + (parents + 3) / 4);
  }
}

// ---------------------------------------------------------------------------
// Zero heap allocations per scheduled event (after slab warm-up).

TEST(SchedulerAllocationTest, ZeroAllocationsPerEventAfterWarmup) {
  struct Tick {
    Scheduler* s;
    int* remaining;
    void operator()() const {
      if (--*remaining > 0) s->schedule(3, Tick{s, remaining});
    }
  };

  Scheduler s;
  s.reserve(256);
  // Warm-up: touch every code path once (cascade, burst, overflow tier) so
  // slab chunks and the overflow heap reach steady state.
  {
    int remaining = 1000;
    s.schedule(0, Tick{&s, &remaining});
    for (TimePs i = 0; i < 64; ++i) s.schedule(i, [] {});
    s.schedule(20000, [] {});
    s.run();
  }

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  int remaining = 100000;
  s.schedule(3, Tick{&s, &remaining});
  for (TimePs i = 0; i < 64; ++i) s.schedule(i, [] {});  // same-time burst
  s.schedule(25000, [] {});  // overflow tier push + later promotion
  s.run();
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(after - before, 0u)
      << "kernel allocated on the heap during steady-state event flow";
}

}  // namespace
}  // namespace specnoc::sim
