// Polling helper for files produced by another process (live telemetry
// streams, shard files from remote workers): wait until a path becomes
// readable instead of failing on the race between writer start-up and
// reader start-up.
#pragma once

#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>

namespace specnoc::util {

/// Polls until `path` opens for reading. Returns true as soon as it does;
/// false when `budget_ms` elapses first. Checks every `poll_ms` (clamped
/// to >= 1 ms); a zero budget degenerates to a single immediate check.
inline bool wait_for_file(const std::string& path, unsigned poll_ms,
                          unsigned budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  for (;;) {
    if (std::ifstream(path).good()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(poll_ms, 1u)));
  }
}

}  // namespace specnoc::util
