// E9 — Trace-driven workloads: replay the synthesized application traces
// (DNN-layer dataflow, directory coherence) on all six networks, in both
// replay modes.
//
// Unlike the open-loop harnesses, the figure of merit here is completion
// time: closed-loop replay feeds the network's own latencies back into the
// injection schedule, so a network that multicasts faster finishes the
// whole dependency DAG sooner. The timed columns replay the same trace
// open loop (recorded times, dependencies ignored) as the load-bound
// reference point.
#include <array>
#include <memory>

#include "bench_common.h"
#include "stats/experiment.h"
#include "workload/synth.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

namespace {

constexpr std::array<core::Architecture, 6> kRowOrder = {
    core::Architecture::kBaseline,
    core::Architecture::kBasicNonSpeculative,
    core::Architecture::kBasicHybridSpeculative,
    core::Architecture::kOptNonSpeculative,
    core::Architecture::kOptHybridSpeculative,
    core::Architecture::kOptAllSpeculative,
};

constexpr std::array<workload::SynthId, 2> kWorkloads = {
    workload::SynthId::kDnnLayers,
    workload::SynthId::kCoherence,
};

constexpr std::array<workload::ReplayMode, 2> kModes = {
    workload::ReplayMode::kClosedLoop,
    workload::ReplayMode::kTimed,
};

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_workload",
      "Trace-driven workloads: DNN-layer and coherence traces replayed on "
      "all six networks, closed loop and timed.",
      specnoc::bench::Sharding::kSupported);
  core::NetworkConfig cfg;  // 8x8, 5-flit packets
  opts.apply_kernel(cfg);  // --sim-threads/--partition (default: sequential)
  stats::ExperimentRunner runner(cfg, opts.seed);
  stats::ShardedSweep sweep = specnoc::bench::make_sweep(opts);

  // Every worker of a sweep synthesizes the same traces (pure functions of
  // n/flits/seed), so their spec keys — which embed the trace hash — and
  // grid hash agree; a worker run with a different seed is refused at
  // merge time.
  std::vector<std::shared_ptr<const workload::Trace>> traces;
  for (const auto id : kWorkloads) {
    traces.push_back(std::make_shared<const workload::Trace>(
        workload::make_synth_workload(id, cfg.n, cfg.flits_per_packet,
                                      opts.seed)));
  }

  std::vector<stats::WorkloadSpec> specs;
  for (std::size_t w = 0; w < kWorkloads.size(); ++w) {
    for (const auto mode : kModes) {
      for (const auto arch : kRowOrder) {
        specs.push_back(stats::make_workload_spec(
            arch, workload::to_string(kWorkloads[w]), mode, traces[w]));
      }
    }
  }
  const auto outcomes = sweep.workload_grid("workload", runner, specs);
  specnoc::bench::MetricsReport metrics;
  metrics.add_all("workload", outcomes);
  metrics.write(opts);
  if (!sweep.should_render()) return sweep.finish();

  specnoc::bench::TelemetryTable telemetry;
  for (const auto& outcome : outcomes) {
    telemetry.add(std::string(core::to_string(outcome.spec.arch)) + "/" +
                      outcome.spec.workload + "/" +
                      workload::to_string(outcome.spec.mode),
                  outcome.run);
  }

  // One table per workload: completion time and latency profile per
  // network, closed loop next to timed.
  std::size_t cursor = 0;
  for (std::size_t w = 0; w < kWorkloads.size(); ++w) {
    const std::size_t closed_base = cursor;
    const std::size_t timed_base = cursor + kRowOrder.size();
    cursor += kModes.size() * kRowOrder.size();

    Table table({"Scheme", "Closed makespan (ns)", "Closed mean lat (ns)",
                 "Closed p95 (ns)", "Timed makespan (ns)",
                 "Timed mean lat (ns)", "Delivered flits"});
    for (std::size_t r = 0; r < kRowOrder.size(); ++r) {
      const auto& closed = outcomes[closed_base + r];
      const auto& timed = outcomes[timed_base + r];
      std::vector<std::string> row{core::to_string(kRowOrder[r])};
      if (closed.run.ok && closed.result.completed) {
        row.push_back(cell(closed.result.makespan_ns, 1));
        row.push_back(cell(closed.result.mean_latency_ns, 1));
        row.push_back(cell(closed.result.p95_latency_ns, 1));
      } else {
        row.insert(row.end(), 3, closed.run.ok ? "STALLED" : "FAIL");
      }
      if (timed.run.ok && timed.result.completed) {
        row.push_back(cell(timed.result.makespan_ns, 1));
        row.push_back(cell(timed.result.mean_latency_ns, 1));
      } else {
        row.insert(row.end(), 2, timed.run.ok ? "STALLED" : "FAIL");
      }
      row.push_back(closed.run.ok
                        ? std::to_string(closed.result.flits_delivered)
                        : "-");
      table.add_row(std::move(row));
    }
    const std::string title =
        std::string(workload::to_string(kWorkloads[w])) + " workload (" +
        std::to_string(traces[w]->records.size()) + " messages, trace " +
        specs[closed_base].trace_hash + ")";
    specnoc::bench::emit(table, title, opts);
  }

  // Headline ratio: multicast hardware should finish the dependency DAG
  // faster than serialized multicast under closed-loop replay.
  Table claims({"Claim", "Measured"});
  for (std::size_t w = 0; w < kWorkloads.size(); ++w) {
    const std::size_t closed_base = w * kModes.size() * kRowOrder.size();
    const auto& base = outcomes[closed_base + 0];      // Baseline
    const auto& opt = outcomes[closed_base + 4];       // OptHybridSpeculative
    if (base.run.ok && opt.run.ok && base.result.completed &&
        opt.result.completed && opt.result.makespan_ns > 0.0) {
      claims.add_row(
          {std::string("OptHybrid speedup over Baseline, ") +
               workload::to_string(kWorkloads[w]) + " makespan",
           cell(base.result.makespan_ns / opt.result.makespan_ns, 2) + "x"});
    } else {
      claims.add_row({std::string("OptHybrid speedup over Baseline, ") +
                          workload::to_string(kWorkloads[w]) + " makespan",
                      "n/a"});
    }
  }
  specnoc::bench::emit(claims, "Workload claims", opts);
  telemetry.emit("Workload grid", opts);
  return telemetry.failures() == 0 ? 0 : 1;
}
