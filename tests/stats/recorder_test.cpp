#include "stats/recorder.h"

#include <gtest/gtest.h>

#include "core/mot_network.h"

namespace specnoc::stats {
namespace {

using noc::DestSet;

using core::Architecture;

TEST(TrafficRecorderTest, MeasuresUnicastLatency) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kOptNonSpeculative, cfg);
  TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  net.send_message(0, DestSet::single(4), true);
  net.scheduler().run();
  ASSERT_EQ(rec.measured_latencies().size(), 1u);
  EXPECT_GT(rec.measured_latencies()[0], 0);
  EXPECT_EQ(rec.pending_measured(), 0u);
  EXPECT_DOUBLE_EQ(rec.mean_latency_ps(),
                   static_cast<double>(rec.measured_latencies()[0]));
}

TEST(TrafficRecorderTest, MulticastCompletesOnLastHeader) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kOptHybridSpeculative, cfg);
  TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  net.send_message(1, DestSet::single(0) | DestSet::single(7), true);
  net.scheduler().run();
  ASSERT_EQ(rec.measured_latencies().size(), 1u);
  EXPECT_EQ(rec.completed_measured(), 1u);
}

TEST(TrafficRecorderTest, SerialMulticastLatencyIsLastCopy) {
  // On the Baseline, the message completes only when the last serialized
  // unicast copy's header arrives — much later than the first.
  core::NetworkConfig cfg;
  auto latency_for = [&](Architecture arch, noc::DestSet dests) {
    core::MotNetwork net(arch, cfg);
    TrafficRecorder rec(net.net().packets());
    net.net().hooks().traffic = &rec;
    net.send_message(0, dests, true);
    net.scheduler().run();
    return rec.mean_latency_ps();
  };
  const auto uni = latency_for(Architecture::kBaseline, DestSet::single(3));
  const auto multi = latency_for(
      Architecture::kBaseline,
      DestSet::from_word(0xFF));  // broadcast, 8 serial copies
  EXPECT_GT(multi, 2 * uni);
  // The parallel network's broadcast is barely slower than its unicast.
  const auto par_multi =
      latency_for(Architecture::kBasicNonSpeculative, DestSet::from_word(0xFF));
  EXPECT_LT(par_multi, multi);
}

TEST(TrafficRecorderTest, UnmeasuredMessagesIgnored) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kOptNonSpeculative, cfg);
  TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  net.send_message(0, DestSet::single(1), false);
  net.scheduler().run();
  EXPECT_EQ(rec.measured_latencies().size(), 0u);
  EXPECT_EQ(rec.pending_measured(), 0u);
  EXPECT_DOUBLE_EQ(rec.mean_latency_ps(), 0.0);
  EXPECT_EQ(rec.max_latency_ps(), 0);
}

TEST(TrafficRecorderTest, WindowCountsFlits) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kOptNonSpeculative, cfg);
  TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  rec.open_window(0);
  net.send_message(0, DestSet::single(1), false);
  net.send_message(2, DestSet::single(3) | DestSet::single(5), false);  // 2 copies out
  net.scheduler().run();
  rec.close_window(net.scheduler().now());
  // Injected: 2 packets x 5 flits. Delivered: 5 + 2*5.
  EXPECT_EQ(rec.window_flits_injected(), 10u);
  EXPECT_EQ(rec.window_flits_ejected(), 15u);
  EXPECT_GT(rec.delivered_flits_per_ns(8), 0.0);
  EXPECT_GT(rec.window_duration(), 0);
}

TEST(TrafficRecorderTest, MaxLatencyTracksWorstMessage) {
  core::NetworkConfig cfg;
  core::MotNetwork net(Architecture::kBaseline, cfg);
  TrafficRecorder rec(net.net().packets());
  net.net().hooks().traffic = &rec;
  net.send_message(0, DestSet::single(1), true);
  net.send_message(3, noc::DestSet::from_word(0xFF), true);  // serialized broadcast, slow
  net.scheduler().run();
  ASSERT_EQ(rec.completed_measured(), 2u);
  EXPECT_GT(rec.max_latency_ps(), rec.measured_latencies()[0]);
}

}  // namespace
}  // namespace specnoc::stats
