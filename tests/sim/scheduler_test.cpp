#include "sim/scheduler.h"

#include <vector>

#include <gtest/gtest.h>

namespace specnoc::sim {
namespace {

TEST(SchedulerTest, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(10, [&] { order.push_back(2); });
  s.schedule(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, HandlersCanScheduleMoreEvents) {
  Scheduler s;
  std::vector<TimePs> fire_times;
  s.schedule(5, [&] {
    fire_times.push_back(s.now());
    s.schedule(5, [&] { fire_times.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(fire_times, (std::vector<TimePs>{5, 10}));
}

TEST(SchedulerTest, ZeroDelayFiresAtSameTimeAfterCurrent) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(10, [&] {
    order.push_back(1);
    s.schedule(0, [&] { order.push_back(2); });
  });
  s.schedule(10, [&] { order.push_back(3); });
  s.run();
  // The zero-delay event was inserted after event 3, so fires after it.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(s.now(), 10);
}

TEST(SchedulerTest, RunUntilAdvancesClockExactly) {
  Scheduler s;
  int fired = 0;
  s.schedule(50, [&] { ++fired; });
  s.schedule(150, [&] { ++fired; });
  s.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 100);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(150);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, RunUntilIncludesBoundary) {
  Scheduler s;
  int fired = 0;
  s.schedule(100, [&] { ++fired; });
  s.run_until(100);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) {
    s.schedule(i, [] {});
  }
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(SchedulerTest, ScheduleAtAbsoluteTime) {
  Scheduler s;
  TimePs seen = -1;
  s.schedule(10, [&] { s.schedule_at(25, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 25);
}

TEST(SchedulerTest, FarFutureEventsInterleaveWithNearOnes) {
  // Delays far beyond the bucket-queue window (watchdog/horizon scale)
  // must still interleave correctly with short handshake delays.
  Scheduler s;
  std::vector<TimePs> fire_times;
  auto record = [&] { fire_times.push_back(s.now()); };
  s.schedule(1000000, record);
  s.schedule(50, record);
  s.schedule(5000, record);
  s.schedule(50, [&] {
    record();
    s.schedule(999950, record);  // lands at the same ps as the first event
  });
  s.run();
  EXPECT_EQ(fire_times,
            (std::vector<TimePs>{50, 50, 5000, 1000000, 1000000}));
}

TEST(SchedulerTest, ReserveDoesNotDisturbPendingEvents) {
  Scheduler s;
  int fired = 0;
  s.schedule(10, [&] { ++fired; });
  s.reserve(1024);
  s.schedule(20, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.executed(), 2u);
}

}  // namespace
}  // namespace specnoc::sim
