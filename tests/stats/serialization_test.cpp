#include "stats/serialization.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "stats/experiment.h"
#include "util/error.h"
#include "util/json.h"
#include "workload/synth.h"

namespace specnoc::stats {
namespace {

using core::Architecture;
using traffic::BenchmarkId;
using namespace specnoc::literals;

sim::RunOutcome ok_run(unsigned attempts = 1) {
  sim::RunOutcome run;
  run.ok = true;
  run.telemetry.attempts = attempts;
  run.telemetry.events_executed = 123456789ull;
  run.telemetry.wall_ms = 12.75;
  return run;
}

TEST(SerializationTest, SaturationOutcomeRoundTrips) {
  SaturationOutcome outcome;
  outcome.spec.arch = Architecture::kOptHybridSpeculative;
  outcome.spec.bench = BenchmarkId::kMulticast10;
  outcome.spec.seed = 7;
  outcome.result.delivered_flits_per_ns = 1.26;
  outcome.result.injected_flits_per_ns = 0.42;
  outcome.result.delivery_factor = 3.0;
  outcome.result.message_expansion = 1.0;
  outcome.run = ok_run();

  const auto back =
      saturation_outcome_from_json(util::json_parse(
          util::json_write(to_json(outcome))));
  EXPECT_EQ(back.spec.arch, outcome.spec.arch);
  EXPECT_EQ(back.spec.bench, outcome.spec.bench);
  EXPECT_EQ(back.spec.seed, outcome.spec.seed);
  EXPECT_TRUE(back.spec.custom.empty());
  EXPECT_FALSE(back.spec.factory);  // factories never travel
  EXPECT_EQ(back.result.delivered_flits_per_ns,
            outcome.result.delivered_flits_per_ns);
  EXPECT_EQ(back.result.delivery_factor, outcome.result.delivery_factor);
  EXPECT_TRUE(back.run.ok);
  EXPECT_EQ(back.run.telemetry.events_executed,
            outcome.run.telemetry.events_executed);
  // The round trip is exact: serializing again gives identical bytes.
  EXPECT_EQ(util::json_write(to_json(back)),
            util::json_write(to_json(outcome)));
}

TEST(SerializationTest, LatencyOutcomeRoundTripsExactDoubles) {
  LatencyOutcome outcome;
  outcome.spec.arch = Architecture::kOptAllSpeculative;
  outcome.spec.bench = BenchmarkId::kUniformRandom;
  outcome.spec.injected_flits_per_ns = 0.1 * 3.0;  // not exactly 0.3
  outcome.spec.windows = {.warmup = 100_ns, .measure = 800_ns};
  outcome.spec.seed = 42;
  outcome.result.mean_latency_ns = 1.0 / 3.0;
  outcome.result.p95_latency_ns = 6.62607015;
  outcome.result.max_latency_ns = 9.25;
  outcome.result.messages_measured = 4096;
  outcome.result.offered_flits_per_ns = outcome.spec.injected_flits_per_ns;
  outcome.result.drained = true;
  outcome.run = ok_run(2);

  const auto back = latency_outcome_from_json(
      util::json_parse(util::json_write(to_json(outcome))));
  EXPECT_EQ(back.spec.injected_flits_per_ns,
            outcome.spec.injected_flits_per_ns);
  EXPECT_EQ(back.spec.windows.warmup, outcome.spec.windows.warmup);
  EXPECT_EQ(back.spec.windows.measure, outcome.spec.windows.measure);
  EXPECT_EQ(back.result.mean_latency_ns, outcome.result.mean_latency_ns);
  EXPECT_EQ(back.result.messages_measured, outcome.result.messages_measured);
  EXPECT_EQ(back.run.telemetry.attempts, 2u);
  EXPECT_EQ(util::json_write(to_json(back)),
            util::json_write(to_json(outcome)));
}

TEST(SerializationTest, PowerOutcomeRoundTrips) {
  PowerOutcome outcome;
  outcome.spec.arch = Architecture::kBaseline;
  outcome.spec.bench = BenchmarkId::kMulticast5;
  outcome.spec.injected_flits_per_ns = 0.25;
  outcome.spec.windows = {.warmup = 100_ns, .measure = 800_ns};
  outcome.result.power_mw = 10.5;
  outcome.result.node_power_mw = 7.25;
  outcome.result.wire_power_mw = 3.25;
  outcome.result.throttled_flits = 17;
  outcome.result.broadcast_ops = 99;
  outcome.run = ok_run();

  const auto back = power_outcome_from_json(
      util::json_parse(util::json_write(to_json(outcome))));
  EXPECT_EQ(back.result.power_mw, outcome.result.power_mw);
  EXPECT_EQ(back.result.throttled_flits, outcome.result.throttled_flits);
  EXPECT_EQ(back.result.broadcast_ops, outcome.result.broadcast_ops);
  EXPECT_EQ(util::json_write(to_json(back)),
            util::json_write(to_json(outcome)));
}

TEST(SerializationTest, CustomHybridSpecCarriesLabel) {
  SaturationSpec spec;
  spec.arch = Architecture::kCustomHybrid;
  spec.bench = BenchmarkId::kMulticast10;
  spec.custom = "{0,2}";
  spec.factory = [] { return std::unique_ptr<core::MotNetwork>(); };

  const auto back =
      saturation_spec_from_json(util::json_parse(
          util::json_write(to_json(spec))));
  EXPECT_EQ(back.arch, Architecture::kCustomHybrid);
  EXPECT_EQ(back.custom, "{0,2}");
  EXPECT_FALSE(back.factory);  // must be rebuilt locally from the label
}

TEST(SerializationTest, FailedOutcomeOmitsResult) {
  LatencyOutcome outcome;
  outcome.spec.arch = Architecture::kBaseline;
  outcome.spec.bench = BenchmarkId::kUniformRandom;
  outcome.result.mean_latency_ns = 99.0;  // garbage — run failed
  outcome.run.ok = false;
  outcome.run.error = "did not drain";
  outcome.run.telemetry.attempts = 2;

  const util::Json json = to_json(outcome);
  EXPECT_EQ(json.find("result"), nullptr);
  const auto back = latency_outcome_from_json(json);
  EXPECT_FALSE(back.run.ok);
  EXPECT_EQ(back.run.error, "did not drain");
  // The round trip yields the default result, as the in-process path does
  // for failed cells.
  EXPECT_EQ(back.result.mean_latency_ns, 0.0);
}

TEST(SerializationTest, SpecKeysAreCanonicalAndUnique) {
  SaturationSpec sat;
  sat.arch = Architecture::kBaseline;
  sat.bench = BenchmarkId::kUniformRandom;
  EXPECT_EQ(spec_key(sat), "sat|Baseline|UniformRandom|seed=0");
  sat.custom = "{0,2}";
  EXPECT_EQ(spec_key(sat), "sat|Baseline|UniformRandom|seed=0|{0,2}");

  LatencySpec lat;
  lat.arch = Architecture::kBasicHybridSpeculative;
  lat.bench = BenchmarkId::kMulticast10;
  lat.injected_flits_per_ns = 0.25;
  lat.windows = {.warmup = 100_ns, .measure = 800_ns};
  lat.seed = 42;
  const std::string key = spec_key(lat);
  EXPECT_EQ(key.substr(0, 4), "lat|");
  EXPECT_NE(key.find("rate=0.25"), std::string::npos);
  EXPECT_NE(key.find("seed=42"), std::string::npos);

  // Keys separate cells that differ in any identity field.
  auto lat2 = lat;
  lat2.injected_flits_per_ns = 0.26;
  EXPECT_NE(spec_key(lat2), key);
  auto lat3 = lat;
  lat3.windows.measure = 900_ns;
  EXPECT_NE(spec_key(lat3), key);
  PowerSpec pow;
  pow.arch = lat.arch;
  pow.bench = lat.bench;
  pow.injected_flits_per_ns = lat.injected_flits_per_ns;
  pow.windows = lat.windows;
  pow.seed = lat.seed;
  EXPECT_NE(spec_key(pow), key);  // kind prefix differs
}

TEST(SerializationTest, WorkloadOutcomeRoundTrips) {
  const auto trace = std::make_shared<const workload::Trace>(
      workload::make_synth_workload(workload::SynthId::kCoherence, 8, 5, 7));
  WorkloadOutcome outcome;
  outcome.spec = make_workload_spec(Architecture::kOptHybridSpeculative,
                                    "Coherence",
                                    workload::ReplayMode::kClosedLoop, trace);
  outcome.result.messages = 129;
  outcome.result.messages_delivered = 129;
  outcome.result.flits_delivered = 970;
  outcome.result.makespan_ns = 105.4;
  outcome.result.mean_latency_ns = 7.842;
  outcome.result.p95_latency_ns = 15.448;
  outcome.result.max_latency_ns = 17.996;
  outcome.result.completed = true;
  outcome.run = ok_run();

  const auto back = workload_outcome_from_json(
      util::json_parse(util::json_write(to_json(outcome))));
  EXPECT_EQ(back.spec.arch, outcome.spec.arch);
  EXPECT_EQ(back.spec.workload, "Coherence");
  EXPECT_EQ(back.spec.mode, workload::ReplayMode::kClosedLoop);
  EXPECT_EQ(back.spec.trace_hash, outcome.spec.trace_hash);
  EXPECT_EQ(back.spec.trace, nullptr);  // traces never travel, only hashes
  EXPECT_EQ(back.result.messages, outcome.result.messages);
  EXPECT_EQ(back.result.flits_delivered, outcome.result.flits_delivered);
  EXPECT_EQ(back.result.makespan_ns, outcome.result.makespan_ns);
  EXPECT_TRUE(back.result.completed);
  EXPECT_EQ(util::json_write(to_json(back)),
            util::json_write(to_json(outcome)));
}

TEST(SerializationTest, WorkloadSpecKeyEmbedsTraceIdentity) {
  const auto trace = std::make_shared<const workload::Trace>(
      workload::make_synth_workload(workload::SynthId::kDnnLayers, 8, 5, 0));
  const auto spec = make_workload_spec(Architecture::kBaseline, "DnnLayers",
                                       workload::ReplayMode::kClosedLoop,
                                       trace);
  EXPECT_EQ(spec_key(spec), "wl|Baseline|DnnLayers|closed|trace=" +
                                workload::trace_hash(*trace));

  // Any change to the trace bytes changes the key, so sweep merges refuse
  // to combine outcomes replayed from different traces.
  auto altered = *trace;
  altered.records[0].earliest += 1;
  const auto spec2 = make_workload_spec(
      Architecture::kBaseline, "DnnLayers", workload::ReplayMode::kClosedLoop,
      std::make_shared<const workload::Trace>(altered));
  EXPECT_NE(spec_key(spec2), spec_key(spec));

  auto timed = make_workload_spec(Architecture::kBaseline, "DnnLayers",
                                  workload::ReplayMode::kTimed, trace);
  EXPECT_NE(spec_key(timed), spec_key(spec));
}

TEST(SerializationTest, GridHashIsOrderSensitive) {
  const std::vector<std::string> keys = {"a", "b", "c"};
  const std::vector<std::string> reversed = {"c", "b", "a"};
  EXPECT_EQ(grid_hash(keys), grid_hash(keys));
  EXPECT_NE(grid_hash(keys), grid_hash(reversed));
  EXPECT_NE(grid_hash(keys), grid_hash({"a", "b"}));
  EXPECT_EQ(grid_hash(keys).size(), 16u);  // hex fnv1a64
}

TEST(SerializationTest, RunStatusReflectsAttempts) {
  sim::RunOutcome run;
  run.ok = true;
  run.telemetry.attempts = 1;
  EXPECT_STREQ(run_status(run), "ok");
  run.telemetry.attempts = 2;
  EXPECT_STREQ(run_status(run), "retried");
  run.ok = false;
  EXPECT_STREQ(run_status(run), "failed");
}

TEST(SerializationTest, CmpOutcomeRoundTrips) {
  const auto access = std::make_shared<const workload::AccessTrace>(
      workload::make_access_workload(workload::AccessSynthId::kLuBlocks, 8,
                                     7));
  CmpOutcome outcome;
  outcome.spec = make_cmp_spec(Architecture::kOptHybridSpeculative,
                               "LuBlocks", access);
  outcome.result.accesses = 235;
  outcome.result.makespan_ns = 491.2;
  outcome.result.l1_hits = 17;
  outcome.result.l1_misses = 212;
  outcome.result.mshr_merges = 88;
  outcome.result.inv_messages = 14;
  outcome.result.inv_multicasts = 9;
  outcome.result.inv_targets = 69;
  outcome.result.dram_reads = 120;
  outcome.result.dram_writes = 41;
  outcome.result.dram_conflicts = 59;
  outcome.result.messages = 402;
  outcome.result.flits_delivered = 2410;
  outcome.result.energy_nj = 7.6012;
  outcome.result.completed = true;
  outcome.run = ok_run();

  const auto back = cmp_outcome_from_json(
      util::json_parse(util::json_write(to_json(outcome))));
  EXPECT_EQ(back.spec.arch, outcome.spec.arch);
  EXPECT_EQ(back.spec.workload, "LuBlocks");
  EXPECT_EQ(back.spec.access_hash, outcome.spec.access_hash);
  EXPECT_EQ(back.spec.access, nullptr);  // traces never travel, only hashes
  EXPECT_EQ(back.result.accesses, outcome.result.accesses);
  EXPECT_EQ(back.result.inv_multicasts, outcome.result.inv_multicasts);
  EXPECT_EQ(back.result.energy_nj, outcome.result.energy_nj);
  EXPECT_TRUE(back.result.completed);
  EXPECT_EQ(util::json_write(to_json(back)),
            util::json_write(to_json(outcome)));
}

TEST(SerializationTest, CmpSpecKeyEmbedsAccessTraceIdentity) {
  const auto access = std::make_shared<const workload::AccessTrace>(
      workload::make_access_workload(workload::AccessSynthId::kLuBlocks, 8,
                                     0));
  const auto spec = make_cmp_spec(Architecture::kBaseline, "LuBlocks",
                                  access);
  EXPECT_EQ(spec_key(spec), "cmp|Baseline|LuBlocks|access=" +
                                workload::access_trace_hash(*access));

  auto altered = *access;
  altered.streams[0][0].think += 1;
  const auto spec2 = make_cmp_spec(
      Architecture::kBaseline, "LuBlocks",
      std::make_shared<const workload::AccessTrace>(altered));
  EXPECT_NE(spec_key(spec2), spec_key(spec));
}

TEST(SerializationTest, CmpMetricsRideTheSnapshotOmitWhenEmpty) {
  MetricsSnapshot snapshot;
  const std::string empty = util::json_write(to_json(snapshot));
  // Non-cmp records keep their byte layout.
  EXPECT_EQ(empty.find("\"cmp\""), std::string::npos);

  snapshot.cmp.accesses = 235;
  snapshot.cmp.l1_hits = 17;
  snapshot.cmp.inv_multicasts = 9;
  snapshot.cmp.lock_contended = 3;
  const auto back = metrics_snapshot_from_json(
      util::json_parse(util::json_write(to_json(snapshot))));
  EXPECT_EQ(back.cmp.accesses, 235u);
  EXPECT_EQ(back.cmp.l1_hits, 17u);
  EXPECT_EQ(back.cmp.inv_multicasts, 9u);
  EXPECT_EQ(back.cmp.lock_contended, 3u);
  EXPECT_EQ(util::json_write(to_json(back)),
            util::json_write(to_json(snapshot)));
}

}  // namespace
}  // namespace specnoc::stats
