// E3 — Figure 6(b): design-space-exploration average network latency.
//
// Same protocol as Figure 6(a) but comparing the three optimized networks
// with varying degrees of speculation.
#include <array>

#include "bench_common.h"
#include "stats/experiment.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;

namespace {

constexpr std::array<core::Architecture, 3> kRowOrder =
    core::dse_architectures();

std::vector<std::string> header_row() {
  std::vector<std::string> h{"Scheme"};
  for (const auto bench : traffic::all_benchmarks()) {
    h.emplace_back(traffic::to_string(bench));
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_fig6b_latency",
      "Figure 6(b): design-space-exploration average network latency.",
      specnoc::bench::Sharding::kSupported);
  core::NetworkConfig cfg;
  stats::ExperimentRunner runner(cfg, opts.seed);
  stats::ShardedSweep sweep = specnoc::bench::make_sweep(opts);
  specnoc::bench::TelemetryTable telemetry;

  // Same two-phase parallel grid as Figure 6(a): saturation anchors first
  // (full in every mode), then the sharded 25%-load latency runs, both
  // keyed by spec for determinism.
  std::vector<stats::SaturationSpec> sat_specs;
  for (const auto arch : kRowOrder) {
    for (const auto bench : traffic::all_benchmarks()) {
      sat_specs.push_back({.arch = arch, .bench = bench, .seed = 0,
                          .factory = {}, .custom = {}});
    }
  }
  const auto sat_outcomes = sweep.anchor_saturation(runner, sat_specs);
  // Phase-1 workers stop here: the downstream specs need anchor results
  // this shard did not simulate.
  if (sweep.anchors_only()) return sweep.finish();
  telemetry.add_all(sat_outcomes);
  specnoc::bench::MetricsReport metrics;
  metrics.add_all("anchor", sat_outcomes);

  std::vector<stats::LatencySpec> lat_specs;
  for (std::size_t i = 0; i < sat_specs.size(); ++i) {
    const auto& sat = sat_outcomes[i].result;
    lat_specs.push_back(
        {.arch = sat_specs[i].arch,
         .bench = sat_specs[i].bench,
         .injected_flits_per_ns =
             0.25 * sat.injected_flits_per_ns / sat.message_expansion,
         .windows = traffic::default_windows(sat_specs[i].bench),
         .seed = 0,
         .factory = {},
         .custom = {}});
  }
  const auto lat_outcomes = sweep.latency_sweep("latency", runner, lat_specs);
  metrics.add_all("latency", lat_outcomes);
  metrics.write(opts);
  if (!sweep.should_render()) return sweep.finish();
  telemetry.add_all(lat_outcomes);

  double lat[3][6] = {};
  Table table(header_row());
  std::size_t cursor = 0;
  for (std::size_t r = 0; r < kRowOrder.size(); ++r) {
    std::vector<std::string> row{core::to_string(kRowOrder[r])};
    std::size_t c = 0;
    for ([[maybe_unused]] const auto bench : traffic::all_benchmarks()) {
      const auto& outcome = lat_outcomes[cursor++];
      lat[r][c++] = outcome.result.mean_latency_ns;
      row.push_back(!outcome.run.ok
                        ? "FAIL"
                        : cell(outcome.result.mean_latency_ns, 2) +
                              (outcome.result.drained ? "" : "*"));
    }
    table.add_row(std::move(row));
  }
  specnoc::bench::emit(
      table,
      "Figure 6(b) (measured): avg network latency (ns) at 25% of own "
      "saturation ('*' = did not fully drain)",
      opts);

  // Rows: 0 OptNonSpec, 1 OptHybrid, 2 OptAllSpec.
  auto impr = [&](std::size_t better, std::size_t worse, std::size_t c) {
    return 1.0 - lat[better][c] / lat[worse][c];
  };
  auto range = [&](std::size_t better, std::size_t worse) {
    double lo = 1.0, hi = -1.0;
    for (std::size_t c = 0; c < 6; ++c) {
      const double v = impr(better, worse, c);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return percent_cell(lo) + " .. " + percent_cell(hi);
  };
  Table claims({"Claim (latency reduction)", "Paper", "Measured range"});
  claims.add_row({"OptHybrid vs OptNonSpec", "9.7..11.9%", range(1, 0)});
  claims.add_row({"OptAllSpec vs OptHybrid", "8.7..12.0%", range(2, 1)});
  claims.add_row({"OptAllSpec vs OptNonSpec", "18.5..21.7%", range(2, 0)});
  specnoc::bench::emit(claims, "Figure 6(b) relative claims", opts);
  telemetry.emit("Figure 6(b) grid", opts);
  return telemetry.failures() == 0 ? 0 : 1;
}
