# Empty dependencies file for specnoc_traffic.
# This may be replaced when dependencies are built.
