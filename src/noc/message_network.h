// MessageNetwork: the minimal interface a built network exposes to traffic
// drivers and measurement harnesses — topology-agnostic, so the same
// benchmarks drive the Mesh-of-Trees networks and the 2D-mesh comparison
// substrate.
#pragma once

#include <cstdint>

#include "noc/network.h"
#include "noc/packet.h"

namespace specnoc::noc {

class MessageNetwork {
 public:
  virtual ~MessageNetwork() = default;

  /// The underlying node/channel container (scheduler, hooks, sources).
  virtual Network& net() = 0;

  /// Number of injection endpoints (== ejection endpoints).
  virtual std::uint32_t endpoints() const = 0;

  /// Flits per application packet.
  virtual std::uint32_t flits_per_packet() const = 0;

  /// Sends a message from `src` to the destination set at the current
  /// simulation time; returns the message id. Taken by value: callers
  /// typically move a freshly built set in.
  virtual MessageId send_message(std::uint32_t src, DestSet dests,
                                 bool measured) = 0;
};

}  // namespace specnoc::noc
