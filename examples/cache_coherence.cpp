// Cache-coherence scenario: invalidation multicasts, two ways.
//
// The paper motivates multicast with coherence protocols that send write
// invalidates to the set of sharers (Section 2: "multicast traffic goes
// from processors to caches"). This example models 8 processors over an
// 8x8 MoT and contrasts the two ways the repo can express that protocol:
//
//  1. Precomputed DAG: the directory-coherence synthesizer emits the
//     invalidate/ack dependency graph once, and the closed-loop replay
//     driver plays the same trace on every architecture.
//  2. Reactive directory: the cmp:: subsystem runs real MSI caches and a
//     home-node directory on top of the network; sharers are DestSets
//     accumulated at run time, and each write miss *generates* its
//     invalidation multicast on demand.
//
// Both express the same sharing pattern (every processor reads a line,
// then its owner writes it), so their makespans are directly comparable:
// the DAG fixes the fan-out ahead of time, while the reactive directory's
// fan-out depends on which reads actually retired before the write.
//
//   $ ./examples/cache_coherence [writes_per_proc]
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "cmp/access_source.h"
#include "cmp/system.h"
#include "core/mot_network.h"
#include "util/cli.h"
#include "workload/replay.h"
#include "workload/synth.h"

using namespace specnoc;

namespace {

/// Write-completion latencies: for each write, time from the invalidate
/// entering the network to the last ack header reaching the writer.
std::vector<double> completion_latencies(
    const workload::CoherenceWorkload& workload,
    const workload::TraceReplayDriver& driver) {
  std::vector<double> out;
  out.reserve(workload.writes.size());
  for (const auto& write : workload.writes) {
    const TimePs issued = driver.injection_time(write.inv);
    TimePs done = issued;
    for (const std::size_t ack : write.acks) {
      done = std::max(done, driver.delivery_time(ack));
    }
    out.push_back(ps_to_ns(done - issued));
  }
  return out;
}

/// The reactive twin of the coherence DAG: per round, every processor
/// reads the round's line, then the round-robin owner writes it — a read
/// fan-in that populates the sharer set, then an upgrade that multicasts
/// the invalidation to whoever is still caching the line.
workload::AccessTrace reactive_sharing_trace(std::uint32_t n,
                                             std::uint32_t writes_per_proc) {
  workload::AccessTrace trace;
  trace.n = n;
  trace.generator = "ReactiveSharing";
  trace.streams.resize(n);
  const auto line_addr = [](std::uint32_t round) {
    return 0x40000ull + static_cast<std::uint64_t>(round) * 64;
  };
  const std::uint32_t rounds = n * writes_per_proc;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const std::uint32_t owner = r % n;
    const std::uint64_t addr = line_addr(r % (2 * n));  // reuse a small set
    for (std::uint32_t p = 0; p < n; ++p) {
      if (p != owner) {
        trace.streams[p].push_back(
            {addr, workload::AccessKind::kRead, /*think=*/300});
      }
    }
    trace.streams[owner].push_back(
        {addr, workload::AccessKind::kWrite, /*think=*/600});
  }
  trace.validate();
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t writes_per_proc = 200;
  util::CliParser cli("cache_coherence",
                      "Write-invalidate coherence traffic over an 8x8 MoT.");
  cli.add_positional_uint32("writes", &writes_per_proc,
                            "writes issued per processor (default 200)");
  cli.parse_or_exit(argc, argv);

  workload::CoherenceWorkloadParams params;
  params.writes_per_proc = writes_per_proc;
  params.think_delay = 0;  // back-to-back writes, like the original loop
  params.seed = 2026;
  const auto workload = workload::make_coherence_workload(params);

  const workload::AccessTrace reactive =
      reactive_sharing_trace(8, writes_per_proc);
  const cmp::CmpConfig cmp_config;
  const cmp::AccessTraceSource source(reactive, cmp_config.line_bytes);

  std::printf("Write-invalidate coherence over an 8x8 MoT "
              "(%u writes/processor):\n"
              "precomputed invalidate/ack DAG vs reactive cmp:: directory\n\n",
              writes_per_proc);
  std::printf("%-24s %14s %14s %14s %12s\n", "Network", "DAG mkspan(ns)",
              "write lat(ns)", "cmp mkspan(ns)", "inv fan-out");
  for (const auto arch : core::all_architectures()) {
    // Pass 1: the precomputed DAG, replayed closed-loop.
    core::NetworkConfig config;
    double dag_makespan = 0.0;
    double write_lat = 0.0;
    {
      core::MotNetwork network(arch, config);
      workload::TraceReplayDriver driver(
          network, workload.trace,
          {workload::ReplayMode::kClosedLoop, /*measured=*/false});
      network.net().hooks().traffic = &driver;
      driver.start();
      network.scheduler().run();
      for (std::size_t id = 0; id < workload.trace.records.size(); ++id) {
        dag_makespan = std::max(dag_makespan, ps_to_ns(driver.delivery_time(id)));
      }
      const auto c = completion_latencies(workload, driver);
      write_lat = std::accumulate(c.begin(), c.end(), 0.0) /
                  static_cast<double>(c.size());
    }

    // Pass 2: the same sharing pattern through the reactive directory.
    core::MotNetwork network(arch, config);
    cmp::CmpSystem system(network, source, cmp_config);
    network.net().hooks().traffic = &system;
    system.start();
    network.scheduler().run();
    const auto counters = system.counters();
    const double fan_out =
        counters.inv_messages == 0
            ? 0.0
            : static_cast<double>(counters.inv_targets) /
                  static_cast<double>(counters.inv_messages);
    std::printf("%-24s %14.2f %14.2f %14.2f %12.2f%s\n",
                core::to_string(arch), dag_makespan, write_lat,
                ps_to_ns(system.makespan()), fan_out,
                system.finished() ? "" : "   [stalled]");
  }
  std::printf(
      "\nParallel multicast shortens the invalidate fan-out, which dominates "
      "write completion;\nlocal speculation shaves the per-hop latency on "
      "top. The reactive directory's fan-out\nis history-dependent (only "
      "sharers that raced ahead of the write get invalidated),\nso its "
      "makespan tracks, but does not equal, the precomputed DAG's.\n");
  return 0;
}
