# Empty dependencies file for specnoc_noc.
# This may be replaced when dependencies are built.
