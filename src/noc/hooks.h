// Observation hooks: traffic accounting, switching-energy accounting, and
// speculation-mechanism metrics.
//
// The NoC layer emits events through these interfaces; the stats and power
// layers implement them. Hooks are nullable so bare simulations pay nothing.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/units.h"
#include "noc/flit.h"
#include "noc/packet.h"

namespace specnoc::noc {

class Channel;
class Node;

/// What kind of switch a node models; used to look up its characteristics
/// (area, latency, energy) and to label energy events.
enum class NodeKind : std::uint8_t {
  kSource,
  kSink,
  kFanoutBaseline,
  kFanoutSpeculative,
  kFanoutNonSpeculative,
  kFanoutOptSpeculative,
  kFanoutOptNonSpeculative,
  kFanin,
  kMeshRouter,  ///< 5-port XY router of the 2D-mesh comparison substrate
  kMeshRouterSpec,  ///< speculative mesh router (local speculation on mesh)
};

const char* to_string(NodeKind kind);

/// Inverse of to_string(NodeKind); throws ConfigError on unknown names.
NodeKind node_kind_from_string(const std::string& name);

/// Every NodeKind enumerator, in declaration order. Keep in sync with the
/// enum; trace_test.cpp fails when an enumerator is missing here or in
/// to_string().
constexpr std::array<NodeKind, 10> all_node_kinds() {
  return {NodeKind::kSource,
          NodeKind::kSink,
          NodeKind::kFanoutBaseline,
          NodeKind::kFanoutSpeculative,
          NodeKind::kFanoutNonSpeculative,
          NodeKind::kFanoutOptSpeculative,
          NodeKind::kFanoutOptNonSpeculative,
          NodeKind::kFanin,
          NodeKind::kMeshRouter,
          NodeKind::kMeshRouterSpec};
}

/// Structural position of a node inside its network, attached by the network
/// builder so observers can aggregate events by tree level. `level < 0`
/// means the node is not part of a levelled tree (network interfaces, mesh
/// routers).
struct NodeSite {
  std::uint32_t tree = 0;   ///< owning fanout/fanin tree, or mesh router id
  std::int32_t level = -1;  ///< tree level, 0 = root; -1 = unlevelled
  std::uint32_t index = 0;  ///< node index within its level
};

/// A switching operation inside a node. Energy cost = node base energy x an
/// op-specific activity factor (see power/energy_model.h).
enum class NodeOp : std::uint8_t {
  kRouteForward,   ///< route computation + forward on 1-2 channels (non-spec)
  kBroadcast,      ///< transparent broadcast on both channels (speculative)
  kFastForward,    ///< pre-allocated body/tail forward (opt non-spec)
  kThrottle,       ///< misrouted flit consumed and acked
  kArbitrate,      ///< fanin arbitration + forward
  kSourceSend,     ///< network-interface send
  kSinkConsume,    ///< network-interface receive
};

const char* to_string(NodeOp op);

/// Every NodeOp enumerator, in declaration order (see all_node_kinds()).
constexpr std::array<NodeOp, 7> all_node_ops() {
  return {NodeOp::kRouteForward, NodeOp::kBroadcast, NodeOp::kFastForward,
          NodeOp::kThrottle,     NodeOp::kArbitrate, NodeOp::kSourceSend,
          NodeOp::kSinkConsume};
}

/// Traffic-side events, implemented by the stats layer.
class TrafficObserver {
 public:
  virtual ~TrafficObserver() = default;

  /// A flit was consumed by destination `dest` at time `when`.
  virtual void on_flit_ejected(const Packet& packet, std::uint32_t dest,
                               FlitKind kind, TimePs when) = 0;

  /// A packet's header left its source queue and entered the network.
  virtual void on_packet_injected(const Packet& packet, TimePs when) = 0;
};

/// Fans one traffic-event stream out to several observers, in registration
/// order (deterministic: observers always see events in the same order).
/// SimHooks holds a single traffic pointer; point it at a tee when more
/// than one consumer wants the stream — e.g. a workload::TraceRecorder
/// capturing a run that a stats::TrafficRecorder is also measuring.
class TeeTrafficObserver final : public TrafficObserver {
 public:
  TeeTrafficObserver() = default;
  TeeTrafficObserver(std::initializer_list<TrafficObserver*> observers)
      : observers_(observers) {}

  void add(TrafficObserver* observer) { observers_.push_back(observer); }

  void on_flit_ejected(const Packet& packet, std::uint32_t dest, FlitKind kind,
                       TimePs when) override {
    for (TrafficObserver* observer : observers_) {
      observer->on_flit_ejected(packet, dest, kind, when);
    }
  }

  void on_packet_injected(const Packet& packet, TimePs when) override {
    for (TrafficObserver* observer : observers_) {
      observer->on_packet_injected(packet, when);
    }
  }

 private:
  std::vector<TrafficObserver*> observers_;
};

/// Switching-activity events, implemented by the power layer.
class EnergyObserver {
 public:
  virtual ~EnergyObserver() = default;

  /// A node performed `op` on one flit.
  virtual void on_node_op(const Node& node, NodeOp op, TimePs when) = 0;

  /// One flit traversed a channel of the given wire length.
  virtual void on_channel_flit(LengthUm length, TimePs when) = 0;
};

/// Speculation-mechanism events, implemented by the metrics layer
/// (stats::MetricsRegistry, stats::PerfettoTracer). Every node event
/// carries the emitting node, whose kind() and site() key the aggregation.
class MetricsObserver {
 public:
  virtual ~MetricsObserver() = default;

  /// A misrouted (redundant speculative) flit was consumed and acked — the
  /// paper's kill/throttle. Fires once per throttled flit.
  virtual void on_flit_killed(const Node& node, const Flit& flit,
                              TimePs when) = 0;

  /// An opt-node pre-allocation check: `hit` means a body/tail flit rode
  /// the channel its header already allocated (fast-forward path); a miss
  /// is the header itself doing the route computation. Speculative mesh
  /// routers reuse the event for flits whose route was fully covered by
  /// earlier speculative copies.
  virtual void on_prealloc(const Node& node, bool hit, TimePs when) = 0;

  /// An arbiter granted a flit while at least one other input was also
  /// waiting (the grant actually resolved contention).
  virtual void on_contended_grant(const Node& node, TimePs when) = 0;

  /// A packet-sticky arbiter hold was broken by the starvation watchdog.
  virtual void on_watchdog_release(const Node& node, TimePs when) = 0;

  /// The channel's upstream was backpressure-stalled from `start` to `end`:
  /// a send filled the pipe to capacity and the upstream had to wait for
  /// the ack that freed a slot.
  virtual void on_channel_stall(const Channel& channel, TimePs start,
                                TimePs end) = 0;
};

/// Fans one metrics-event stream out to several observers, in registration
/// order (deterministic, like TeeTrafficObserver). SimHooks holds a single
/// metrics pointer; point it at a tee when more than one consumer wants the
/// stream — e.g. a stats::MetricsRegistry aggregating run totals while a
/// stats::TelemetrySampler slices the same events into time epochs.
class TeeMetricsObserver final : public MetricsObserver {
 public:
  TeeMetricsObserver() = default;
  TeeMetricsObserver(std::initializer_list<MetricsObserver*> observers)
      : observers_(observers) {}

  void add(MetricsObserver* observer) { observers_.push_back(observer); }

  void on_flit_killed(const Node& node, const Flit& flit,
                      TimePs when) override {
    for (MetricsObserver* observer : observers_) {
      observer->on_flit_killed(node, flit, when);
    }
  }

  void on_prealloc(const Node& node, bool hit, TimePs when) override {
    for (MetricsObserver* observer : observers_) {
      observer->on_prealloc(node, hit, when);
    }
  }

  void on_contended_grant(const Node& node, TimePs when) override {
    for (MetricsObserver* observer : observers_) {
      observer->on_contended_grant(node, when);
    }
  }

  void on_watchdog_release(const Node& node, TimePs when) override {
    for (MetricsObserver* observer : observers_) {
      observer->on_watchdog_release(node, when);
    }
  }

  void on_channel_stall(const Channel& channel, TimePs start,
                        TimePs end) override {
    for (MetricsObserver* observer : observers_) {
      observer->on_channel_stall(channel, start, end);
    }
  }

 private:
  std::vector<MetricsObserver*> observers_;
};

/// Bundle handed to every node and channel at construction.
struct SimHooks {
  TrafficObserver* traffic = nullptr;
  EnergyObserver* energy = nullptr;
  MetricsObserver* metrics = nullptr;
};

}  // namespace specnoc::noc
