#include "mot/addressing.h"

#include "util/contract.h"
#include "util/error.h"

namespace specnoc::mot {

const char* to_string(RouteSymbol symbol) {
  switch (symbol) {
    case RouteSymbol::kThrottle: return "throttle";
    case RouteSymbol::kTop: return "top";
    case RouteSymbol::kBottom: return "bottom";
    case RouteSymbol::kBoth: return "both";
  }
  return "?";
}

std::uint8_t symbol_dirs(RouteSymbol symbol) {
  switch (symbol) {
    case RouteSymbol::kThrottle: return 0b00;
    case RouteSymbol::kTop: return 0b01;
    case RouteSymbol::kBottom: return 0b10;
    case RouteSymbol::kBoth: return 0b11;
  }
  return 0;
}

SourceRouteEncoder::SourceRouteEncoder(const MotTopology& topology,
                                       std::vector<bool> speculative_by_heap_id)
    : topology_(topology), speculative_(std::move(speculative_by_heap_id)) {
  if (speculative_.size() != topology_.nodes_per_tree()) {
    throw ConfigError("speculation map size " +
                      std::to_string(speculative_.size()) +
                      " does not match tree size " +
                      std::to_string(topology_.nodes_per_tree()));
  }
  slot_by_heap_id_.assign(speculative_.size(), -1);
  for (std::uint32_t id = 0; id < speculative_.size(); ++id) {
    if (!speculative_[id]) {
      slot_by_heap_id_[id] = static_cast<std::int32_t>(addressed_++);
    }
  }
}

RouteSymbol SourceRouteEncoder::symbol_for(std::uint32_t level,
                                           std::uint32_t index,
                                           const noc::DestSet& dests) const {
  const bool top = dests.intersects(topology_.subtree_span(level, index, 0));
  const bool bottom =
      dests.intersects(topology_.subtree_span(level, index, 1));
  if (top && bottom) return RouteSymbol::kBoth;
  if (top) return RouteSymbol::kTop;
  if (bottom) return RouteSymbol::kBottom;
  return RouteSymbol::kThrottle;
}

std::vector<RouteSymbol> SourceRouteEncoder::encode(
    const noc::DestSet& dests) const {
  SPECNOC_EXPECTS(dests.any());
  std::vector<RouteSymbol> fields;
  fields.reserve(addressed_);
  for (std::uint32_t id = 0; id < speculative_.size(); ++id) {
    if (speculative_[id]) continue;
    const auto [level, index] = MotTopology::from_heap_id(id);
    fields.push_back(symbol_for(level, index, dests));
  }
  SPECNOC_ENSURES(fields.size() == addressed_);
  return fields;
}

RouteSymbol SourceRouteEncoder::decode(const std::vector<RouteSymbol>& fields,
                                       std::uint32_t field_slot) {
  SPECNOC_EXPECTS(field_slot < fields.size());
  return fields[field_slot];
}

std::int32_t SourceRouteEncoder::field_slot(std::uint32_t level,
                                            std::uint32_t index) const {
  return slot_by_heap_id_.at(MotTopology::heap_id(level, index));
}

std::uint32_t SourceRouteEncoder::addressed_nodes() const {
  return addressed_;
}

std::uint32_t SourceRouteEncoder::baseline_unicast_bits(
    const MotTopology& topology) {
  return topology.levels();
}

}  // namespace specnoc::mot
