#include <vector>

#include <gtest/gtest.h>

#include "../support/test_nodes.h"
#include "noc/channel.h"
#include "noc/sink.h"
#include "noc/source.h"

namespace specnoc::noc {
namespace {

using specnoc::testing::RecordingEndpoint;

/// Collects traffic-observer events.
class CollectingObserver : public TrafficObserver {
 public:
  struct Ejection {
    PacketId packet;
    std::uint32_t dest;
    FlitKind kind;
    TimePs when;
  };
  void on_flit_ejected(const Packet& packet, std::uint32_t dest,
                       FlitKind kind, TimePs when) override {
    ejections.push_back({packet.id, dest, kind, when});
  }
  void on_packet_injected(const Packet& packet, TimePs when) override {
    injections.push_back({packet.id, when});
  }
  std::vector<Ejection> ejections;
  std::vector<std::pair<PacketId, TimePs>> injections;
};

TEST(SourceNodeTest, InjectsAllFlitsOfQueuedPacket) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 5);

  SourceNode src(sched, hooks, 0, /*issue_delay=*/10);
  RecordingEndpoint down(sched, hooks, /*ack_delay=*/0);
  Channel ch(sched, hooks, {.delay_fwd = 5, .delay_ack = 5, .length = 0},
             "ch");
  ch.connect(src, 0, down, 0);

  src.enqueue_packet(pkt);
  EXPECT_EQ(src.queued_packets(), 1u);
  sched.run();
  ASSERT_EQ(down.deliveries.size(), 5u);
  EXPECT_TRUE(down.deliveries.front().flit.is_header());
  EXPECT_TRUE(down.deliveries.back().flit.is_tail());
  EXPECT_EQ(src.queued_packets(), 0u);
  EXPECT_EQ(src.flits_enqueued(), 5u);
}

TEST(SourceNodeTest, ReportsInjectionAtHeaderIssue) {
  sim::Scheduler sched;
  SimHooks hooks;
  CollectingObserver obs;
  hooks.traffic = &obs;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 3);

  SourceNode src(sched, hooks, 0, /*issue_delay=*/25);
  RecordingEndpoint down(sched, hooks, 0);
  Channel ch(sched, hooks, {.delay_fwd = 0, .delay_ack = 0, .length = 0},
             "ch");
  ch.connect(src, 0, down, 0);
  src.enqueue_packet(pkt);
  sched.run();
  ASSERT_EQ(obs.injections.size(), 1u);
  EXPECT_EQ(obs.injections[0].first, pkt.id);
  EXPECT_EQ(obs.injections[0].second, 25);  // issue delay before req
}

TEST(SourceNodeTest, PacketsSerializeInFifoOrder) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg =
      store.create_message(0, DestSet::single(0) | DestSet::single(1), 0, false);
  const Packet& p0 = store.create_packet(msg, DestSet::single(0), 2);
  const Packet& p1 = store.create_packet(msg, DestSet::single(1), 2);

  SourceNode src(sched, hooks, 0, 0);
  RecordingEndpoint down(sched, hooks, 0);
  Channel ch(sched, hooks, {.delay_fwd = 1, .delay_ack = 1, .length = 0},
             "ch");
  ch.connect(src, 0, down, 0);
  src.enqueue_packet(p0);
  src.enqueue_packet(p1);
  sched.run();
  ASSERT_EQ(down.deliveries.size(), 4u);
  EXPECT_EQ(down.deliveries[0].flit.packet, &p0);
  EXPECT_EQ(down.deliveries[1].flit.packet, &p0);
  EXPECT_EQ(down.deliveries[2].flit.packet, &p1);
  EXPECT_EQ(down.deliveries[3].flit.packet, &p1);
}

TEST(SourceNodeTest, RefillCallbackKeepsSourceBacklogged) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);

  SourceNode src(sched, hooks, 0, 0);
  RecordingEndpoint down(sched, hooks, 0);
  Channel ch(sched, hooks, {.delay_fwd = 1, .delay_ack = 1, .length = 0},
             "ch");
  ch.connect(src, 0, down, 0);

  int generated = 0;
  src.set_refill(2, [&] {
    if (generated < 6) {
      ++generated;
      src.enqueue_packet(store.create_packet(msg, DestSet::single(0), 1));
    }
  });
  sched.run();
  EXPECT_EQ(generated, 6);
  EXPECT_EQ(down.deliveries.size(), 6u);
}

TEST(SinkNodeTest, ConsumesAndReportsEjection) {
  sim::Scheduler sched;
  SimHooks hooks;
  CollectingObserver obs;
  hooks.traffic = &obs;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(3), 0, true);
  const Packet& pkt = store.create_packet(msg, DestSet::single(3), 2);

  SourceNode src(sched, hooks, 0, 0);
  SinkNode sink(sched, hooks, /*dest_id=*/3, /*consume_delay=*/40);
  Channel ch(sched, hooks, {.delay_fwd = 10, .delay_ack = 10, .length = 0},
             "ch");
  ch.connect(src, 0, sink, 0);
  src.enqueue_packet(pkt);
  sched.run();
  ASSERT_EQ(obs.ejections.size(), 2u);
  EXPECT_EQ(obs.ejections[0].dest, 3u);
  EXPECT_EQ(obs.ejections[0].kind, FlitKind::kHeader);
  // issue 0 + fwd 10 + consume 40 = 50.
  EXPECT_EQ(obs.ejections[0].when, 50);
  EXPECT_EQ(obs.ejections[1].kind, FlitKind::kTail);
  EXPECT_EQ(sink.flits_consumed(), 2u);
}

TEST(SinkNodeTest, BackpressuresWhileConsuming) {
  sim::Scheduler sched;
  SimHooks hooks;
  PacketStore store;
  const Message& msg = store.create_message(0, DestSet::single(0), 0, false);
  const Packet& pkt = store.create_packet(msg, DestSet::single(0), 3);

  SourceNode src(sched, hooks, 0, 0);
  SinkNode sink(sched, hooks, 0, /*consume_delay=*/100);
  Channel ch(sched, hooks, {.delay_fwd = 0, .delay_ack = 0, .length = 0},
             "ch");
  ch.connect(src, 0, sink, 0);
  src.enqueue_packet(pkt);
  sched.run();
  // Each flit takes consume_delay before ack; total = 3 * 100.
  EXPECT_EQ(sched.now(), 300);
  EXPECT_EQ(sink.flits_consumed(), 3u);
}

}  // namespace
}  // namespace specnoc::noc
