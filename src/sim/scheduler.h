// Discrete-event simulation kernel.
//
// A single-threaded scheduler ordered by (time, insertion sequence). The
// sequence tie-breaker makes runs bit-reproducible: two events at the same
// picosecond always fire in the order they were scheduled, which matters for
// arbitration fairness in the fanin nodes.
//
// The pending set is a hierarchical bucket queue (bucket_queue.h): O(1)
// schedule/pop for the short-delay handshake events that dominate the
// simulator, an overflow heap for far-future timers, and zero heap
// allocations per event — callbacks are sim::InplaceEvent (event.h), whose
// captures must fit 48 bytes of inline storage by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>

#include "sim/bucket_queue.h"
#include "sim/event.h"
#include "util/contract.h"
#include "util/units.h"

namespace specnoc::sim {

/// Callback invoked when an event fires. Move-only, fixed-capacity inline
/// storage — oversized captures are a compile error, not a heap allocation.
using EventFn = InplaceEvent;

/// A deterministic discrete-event scheduler with picosecond resolution.
class Scheduler {
 public:
  /// next_time() when the queue is empty: later than any real event.
  static constexpr TimePs kIdleTime = std::numeric_limits<TimePs>::max();

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.
  TimePs now() const { return now_; }

  /// Schedules `fn` to run `delay` picoseconds from now (delay >= 0).
  /// The callable is constructed directly into the kernel's event slab —
  /// its captures must fit InplaceEvent's inline storage (compile error
  /// otherwise; see event.h).
  template <typename F>
  void schedule(TimePs delay, F&& fn) {
    SPECNOC_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  template <typename F>
  void schedule_at(TimePs at, F&& fn) {
    SPECNOC_EXPECTS(at >= now_);
    if constexpr (std::is_same_v<std::decay_t<F>, InplaceEvent>) {
      SPECNOC_EXPECTS(static_cast<bool>(fn));
    }
    queue_.push(at, std::forward<F>(fn));
  }

  /// Runs the earliest pending event. Returns false if none are pending.
  bool step() {
    if (queue_.empty()) return false;
    const BucketQueue::PopRef ref = queue_.pop();
    SPECNOC_ASSERT(ref.time >= now_);
    now_ = ref.time;
    ++executed_;
    // Fire in place: the chunked slab keeps the entry's address stable
    // while the handler schedules new events; recycle only afterwards.
    queue_.invoke_and_dispose(ref);
    queue_.recycle(ref);
    return true;
  }

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with time <= `t`, then advances the clock to exactly `t`.
  void run_until(TimePs t);

  /// Pre-sizes internal storage for `events` concurrently pending events
  /// (optional; the slab grows on demand and is reused thereafter).
  void reserve(std::size_t events) { queue_.reserve(events); }

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Timestamp of the earliest pending event, or kIdleTime when none are
  /// pending (used by the partitioned scheduler's window computation).
  TimePs next_time() const {
    return queue_.empty() ? kIdleTime : queue_.min_time();
  }

  /// Total number of events executed so far (for kernel benchmarks).
  std::uint64_t executed() const { return executed_; }

 private:
  TimePs now_ = 0;
  std::uint64_t executed_ = 0;
  BucketQueue queue_;
};

}  // namespace specnoc::sim
