// Banked DRAM backend: fixed array access time, line-interleaved banks,
// FIFO serialization behind a busy bank (the role libDRAMSim2 plays behind
// sesc-pleasetm, collapsed to a fixed-latency conflict model).
#pragma once

#include <cstdint>
#include <vector>

#include "util/contract.h"
#include "util/units.h"

namespace specnoc::cmp {

class BankedDram {
 public:
  BankedDram(std::uint32_t banks, TimePs access_ps)
      : banks_(banks), access_ps_(access_ps) {
    SPECNOC_EXPECTS(banks > 0 && access_ps >= 0);
  }

  /// Issues one line access at `now`; returns its completion time. A busy
  /// bank serializes: the access starts when the bank frees and counts as a
  /// conflict.
  TimePs access(std::uint64_t line, TimePs now, bool write) {
    TimePs& busy_until = banks_[line % banks_.size()];
    const TimePs start = busy_until > now ? busy_until : now;
    if (start > now) ++conflicts_;
    busy_until = start + access_ps_;
    if (write) {
      ++writes_;
    } else {
      ++reads_;
    }
    return busy_until;
  }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t conflicts() const { return conflicts_; }

 private:
  std::vector<TimePs> banks_;  ///< busy-until per bank
  TimePs access_ps_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t conflicts_ = 0;
};

}  // namespace specnoc::cmp
