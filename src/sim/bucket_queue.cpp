#include "sim/bucket_queue.h"

#include <utility>

namespace specnoc::sim {

BucketQueue::BucketQueue() = default;

void BucketQueue::reserve(std::size_t events) {
  while (slab_capacity_ < events) add_chunk();
  overflow_.reserve(events);
}

void BucketQueue::add_chunk() {
  chunks_.push_back(std::make_unique<Entry[]>(std::size_t{1} << kChunkShift));
  slab_capacity_ += 1u << kChunkShift;
}

void BucketQueue::advance_to(TimePs t) {
  SPECNOC_EXPECTS(t >= base_);
  SPECNOC_ASSERT(empty() || min_time() >= t);
  advance_base(t);
}

void BucketQueue::promote_overflow() {
  // Pop (time, seq)-ascending so same-time promotions append in sequence
  // order, preserving the FIFO-equals-seq invariant of each bucket.
  const TimePs horizon = base_ + kNumBuckets;
  while (!overflow_.empty() && overflow_.front().time < horizon) {
    const std::uint32_t slot = overflow_.front().slot;
    overflow_.front() = overflow_.back();
    overflow_.pop_back();
    if (!overflow_.empty()) sift_down(0);
    link_into_bucket(slot);
    ++ring_size_;
  }
  overflow_min_ = overflow_.empty() ? kNoOverflow : overflow_.front().time;
}

void BucketQueue::sift_up(std::size_t i) {
  OverflowRef item = overflow_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!item.earlier_than(overflow_[parent])) break;
    overflow_[i] = overflow_[parent];
    i = parent;
  }
  overflow_[i] = item;
}

void BucketQueue::sift_down(std::size_t i) {
  OverflowRef item = overflow_[i];
  const std::size_t n = overflow_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && overflow_[child + 1].earlier_than(overflow_[child])) {
      ++child;
    }
    if (!overflow_[child].earlier_than(item)) break;
    overflow_[i] = overflow_[child];
    i = child;
  }
  overflow_[i] = item;
}

}  // namespace specnoc::sim
