// Fanin (arbitration) node: two input channels, one output channel.
//
// Reused unmodified across all six networks (the paper changes only fanout
// nodes). Arbitration is per flit but *packet-sticky*: once a header is
// granted, grants stay with that input until its tail passes, holding the
// output even through the winner's inter-flit gaps — wormhole behaviour,
// with the loser stalled for the winner's whole packet.
//
// The one departure from a strict wormhole lock is that the hold is
// *bounded*: if the open packet's next flit has not arrived within a
// watchdog timeout (config: fanin sticky timeout, default well above any
// normal inter-flit gap), the arbiter releases the output and serves the
// other input. This is a deadlock-recovery mechanism in the DISHA
// tradition, and it is necessary: with tree-replicated multicast, a
// packet's branches progress in lockstep through the fanout forks
// (C-element), so unbounded per-packet fanin locks couple *different*
// fanin trees, and two multicasts locking overlapping destination sets in
// opposite orders deadlock permanently — we reproduced exactly this with
// a strict-lock arbiter under sustained Multicast_static load, including
// with packet-sized VCT input buffers (see
// tests/integration/deadlock_test.cpp and DESIGN.md "Multicast deadlock
// freedom"). With the bounded hold every arbiter wait is finite, so the
// starvation cycles resolve; the rare post-timeout interleavings are
// disambiguated by a small source tag on each flit (log2 N bits), in the
// spirit of the baseline MoT NoC's self-contained single-word transfers
// (Horak et al., TCAD'11).
//
// Each input has a small asynchronous FIFO (default 2 flits) decoupling the
// input handshake from the arbiter grant.
#pragma once

#include <cstdint>
#include <string>

#include "util/ring.h"
#include "noc/channel.h"
#include "noc/node.h"
#include "noc/packet.h"
#include "nodes/characteristics.h"

namespace specnoc::nodes {

class FaninNode final : public noc::Node {
 public:
  FaninNode(sim::Scheduler& scheduler, noc::SimHooks& hooks, std::string name,
            const NodeCharacteristics& chars,
            std::uint32_t input_buffer_flits = 2,
            TimePs sticky_timeout = 1200);

  void deliver(const noc::Flit& flit, std::uint32_t in_port) override;
  void on_output_ack(std::uint32_t out_port) override;

  const NodeCharacteristics& characteristics() const { return *chars_; }

  /// Introspection (tests, diagnostics).
  bool output_port_free() const { return output_free_; }
  std::size_t buffered(std::uint32_t port) const {
    return in_[port].fifo.size();
  }
  /// Input whose packet is currently streaming (-1 if none).
  int open_packet_input() const { return open_packet_input_; }

 private:
  struct BufferedFlit {
    noc::Flit flit;
    std::uint64_t seq;  ///< FCFS grant order
  };

  struct InputState {
    bool channel_busy = false;  ///< a delivery is in the entry stage
    bool ack_deferred = false;  ///< FIFO was full; channel ack postponed
    /// Bounded by buffer_capacity_ (default 2): inline, no per-node heap.
    util::BoundedRing<BufferedFlit, 2> fifo;
  };

  void enqueue(const noc::Flit& flit, std::uint32_t port);
  void ack_input(std::uint32_t port);
  void try_grant();
  void forward_head(std::uint32_t port);

  const NodeCharacteristics* chars_;  ///< interned, shared across nodes
  std::uint32_t buffer_capacity_;
  TimePs sticky_timeout_;
  InputState in_[2];
  int open_packet_input_ = -1;  ///< sticky hold until tail passes
  bool output_free_ = true;
  bool arbiter_ready_ = true;
  std::uint64_t arrival_seq_ = 0;
  std::uint64_t grant_epoch_ = 0;  ///< invalidates stale watchdog events
  bool watchdog_armed_ = false;
};

}  // namespace specnoc::nodes
