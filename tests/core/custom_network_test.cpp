// Custom speculation placements through MotNetwork's second constructor
// (the API the 16x16 design-space exploration uses).
#include <map>

#include <gtest/gtest.h>

#include "core/mot_network.h"
#include "util/error.h"

namespace specnoc::core {
namespace {

using noc::DestSet;


class HeaderCount : public noc::TrafficObserver {
 public:
  void on_flit_ejected(const noc::Packet&, std::uint32_t dest,
                       noc::FlitKind kind, TimePs) override {
    if (kind == noc::FlitKind::kHeader) ++headers[dest];
  }
  void on_packet_injected(const noc::Packet&, TimePs) override {}
  std::map<std::uint32_t, int> headers;
};

TEST(CustomNetworkTest, ReportsCustomHybridArchitecture) {
  NetworkConfig cfg;
  cfg.n = 16;
  const mot::MotTopology topo(16);
  MotNetwork net(cfg, SpeculationMap::from_levels(topo, {1}));
  EXPECT_EQ(net.architecture(), Architecture::kCustomHybrid);
  EXPECT_STREQ(to_string(net.architecture()), "CustomHybrid");
  EXPECT_EQ(net.speculation().speculative_count(), 2u);  // level 1 has 2
}

TEST(CustomNetworkTest, CustomPlacementRoutesExactly) {
  NetworkConfig cfg;
  cfg.n = 16;
  const mot::MotTopology topo(16);
  // An unusual placement: speculate at level 1 only.
  MotNetwork net(cfg, SpeculationMap::from_levels(topo, {1}));
  HeaderCount rec;
  net.net().hooks().traffic = &rec;
  net.send_message(3, DestSet::single(0) | DestSet::single(8) | DestSet::single(15), false);
  net.scheduler().run();
  EXPECT_EQ(rec.headers.size(), 3u);
  for (const auto& [dest, count] : rec.headers) {
    EXPECT_EQ(count, 1) << dest;
  }
}

TEST(CustomNetworkTest, AddressBitsFollowPlacement) {
  NetworkConfig cfg;
  cfg.n = 16;
  const mot::MotTopology topo(16);
  // 15 nodes - 2 speculative (level 1) = 13 addressed -> 26 bits.
  MotNetwork net(cfg, SpeculationMap::from_levels(topo, {1}));
  EXPECT_EQ(net.address_bits(), 26u);
}

TEST(CustomNetworkTest, RadixMismatchRejected) {
  NetworkConfig cfg;
  cfg.n = 16;
  const mot::MotTopology topo8(8);
  EXPECT_THROW(MotNetwork(cfg, SpeculationMap::hybrid(topo8)), ConfigError);
}

TEST(CustomNetworkTest, NonLocalCustomMapStillRoutesCorrectly) {
  // Adjacent speculative levels (0 and 1) are legal (leaves non-spec),
  // just not "local"; correctness must hold regardless.
  NetworkConfig cfg;  // n = 8
  const mot::MotTopology topo(8);
  const auto map = SpeculationMap::from_levels(topo, {0, 1});
  EXPECT_FALSE(map.is_local());
  MotNetwork net(cfg, map);
  HeaderCount rec;
  net.net().hooks().traffic = &rec;
  net.send_message(0, noc::DestSet::from_word(0xFF), false);
  net.scheduler().run();
  EXPECT_EQ(rec.headers.size(), 8u);
}

}  // namespace
}  // namespace specnoc::core
