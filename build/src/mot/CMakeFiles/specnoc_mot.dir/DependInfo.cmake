
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mot/addressing.cpp" "src/mot/CMakeFiles/specnoc_mot.dir/addressing.cpp.o" "gcc" "src/mot/CMakeFiles/specnoc_mot.dir/addressing.cpp.o.d"
  "/root/repo/src/mot/layout.cpp" "src/mot/CMakeFiles/specnoc_mot.dir/layout.cpp.o" "gcc" "src/mot/CMakeFiles/specnoc_mot.dir/layout.cpp.o.d"
  "/root/repo/src/mot/topology.cpp" "src/mot/CMakeFiles/specnoc_mot.dir/topology.cpp.o" "gcc" "src/mot/CMakeFiles/specnoc_mot.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/specnoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/specnoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specnoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
