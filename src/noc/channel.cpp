#include "noc/channel.h"

#include <algorithm>
#include <utility>

#include "sim/partitioned_scheduler.h"
#include "noc/node.h"

namespace specnoc::noc {

Channel::Channel(sim::Scheduler& scheduler, SimHooks& hooks,
                 ChannelParams params, std::string name)
    : scheduler_(scheduler), hooks_(hooks), params_(params),
      name_(std::move(name)) {
  SPECNOC_EXPECTS(params_.delay_fwd >= 0 && params_.delay_ack >= 0);
  SPECNOC_EXPECTS(params_.capacity >= 1);
  queue_.reserve(params_.capacity);
  down_sched_ = &scheduler_;
}

void Channel::connect(Node& up, std::uint32_t up_port, Node& down,
                      std::uint32_t down_port) {
  SPECNOC_EXPECTS(up_ == nullptr && down_ == nullptr);
  up_ = &up;
  down_ = &down;
  up_port_ = up_port;
  down_port_ = down_port;
  up.attach_output(up_port, *this);
  down.attach_input(down_port, *this);
}

void Channel::make_cross_partition(sim::PartitionedScheduler& psched,
                                   std::uint32_t up_lane,
                                   std::uint32_t down_lane) {
  SPECNOC_EXPECTS(cross_ == nullptr && queue_.empty() && !send_outstanding_);
  SPECNOC_EXPECTS(up_lane != down_lane);
  cross_ = std::make_unique<CrossState>();
  cross_->psched = &psched;
  cross_->up_lane = up_lane;
  cross_->down_lane = down_lane;
  down_sched_ = &psched.lane(down_lane);
  cross_->fwd_drain = psched.add_drain([this] { drain_forward(); });
  cross_->credit_drain = psched.add_drain([this] { drain_credits(); });
}

std::uint32_t Channel::occupancy() const {
  return queue_.size() + (awaiting_node_ack_ ? 1u : 0u);
}

void Channel::send(const Flit& flit) {
  SPECNOC_EXPECTS(down_ != nullptr);
  SPECNOC_EXPECTS(!send_outstanding_);
  send_outstanding_ = true;
  ++flits_carried_;
  if (hooks_.energy != nullptr) {
    hooks_.energy->on_channel_flit(params_.length, scheduler_.now());
  }
  if (cross_ != nullptr) {
    send_cross(flit);
    return;
  }
  SPECNOC_EXPECTS(occupancy() < params_.capacity);
  queue_.push_back({flit, scheduler_.now() + params_.delay_fwd});
  // If a slot remains behind this flit, the first FIFO stage hands the ack
  // straight back; otherwise the upstream waits for the head to drain.
  if (occupancy() < params_.capacity) {
    release_upstream();
  } else {
    stalled_ = true;
    stall_start_ = scheduler_.now();
  }
  try_deliver();
}

void Channel::send_cross(const Flit& flit) {
  const TimePs now = scheduler_.now();
  CrossState& x = *cross_;
  if (x.fwd_box.empty()) x.psched->note_dirty(x.up_lane, x.fwd_drain);
  x.fwd_box.push_back({flit, now + params_.delay_fwd});
  const std::uint64_t k = ++x.sends;
  // Credit-counted mirror of the sequential occupancy check: the k-th flit
  // finds a free FIFO slot iff at least k - capacity + 1 downstream acks
  // have already happened. Acks from the current window are still in the
  // mailbox; deferring the release to the credit drain yields the identical
  // release time max(send, ack) + delay_ack either way.
  if (x.credits_seen + params_.capacity >= k + 1) {
    release_upstream();
  } else {
    SPECNOC_ASSERT(!x.release_pending);
    x.release_pending = true;
    x.release_needs = k + 1 - params_.capacity;
    x.release_send_time = now;
  }
}

void Channel::drain_forward() {
  CrossState& x = *cross_;
  for (const QueuedFlit& queued : x.fwd_box) queue_.push_back(queued);
  x.fwd_box.clear();
  try_deliver();
}

void Channel::drain_credits() {
  CrossState& x = *cross_;
  for (const TimePs when : x.credit_box) {
    ++x.credits_seen;
    if (!x.release_pending || x.credits_seen != x.release_needs) continue;
    x.release_pending = false;
    // The upstream genuinely stalled only if the freeing ack came after the
    // send. (A same-picosecond tie is counted as no stall; the sequential
    // kernel's answer would depend on intra-tick event order, which has no
    // cross-lane equivalent — see DESIGN.md.)
    if (when > x.release_send_time && hooks_.metrics != nullptr) {
      hooks_.metrics->on_channel_stall(*this, x.release_send_time, when);
    }
    const TimePs at = std::max(x.release_send_time, when) + params_.delay_ack;
    SPECNOC_ASSERT(send_outstanding_);
    scheduler_.schedule_at(at, [this] {
      send_outstanding_ = false;
      up_->on_output_ack(up_port_);
    });
  }
  x.credit_box.clear();
}

void Channel::try_deliver() {
  if (head_scheduled_ || awaiting_node_ack_ || queue_.empty()) {
    return;
  }
  head_scheduled_ = true;
  const TimePs at = std::max(down_sched_->now(), queue_.front().ready_at);
  down_sched_->schedule_at(at, [this] {
    SPECNOC_ASSERT(head_scheduled_ && !awaiting_node_ack_);
    SPECNOC_ASSERT(!queue_.empty());
    head_scheduled_ = false;
    awaiting_node_ack_ = true;
    const Flit flit = queue_.front().flit;
    queue_.pop_front();
    down_->deliver(flit, down_port_);
  });
}

void Channel::ack() {
  SPECNOC_EXPECTS(awaiting_node_ack_);
  awaiting_node_ack_ = false;
  if (cross_ != nullptr) {
    // Every ack is a credit for the upstream half, consumed at the next
    // window barrier.
    CrossState& x = *cross_;
    if (x.credit_box.empty()) x.psched->note_dirty(x.down_lane, x.credit_drain);
    x.credit_box.push_back(down_sched_->now());
  } else if (send_outstanding_ && occupancy() + 1 == params_.capacity) {
    // The upstream was stalled on a full pipe; this ack frees a slot.
    if (stalled_) {
      stalled_ = false;
      if (hooks_.metrics != nullptr) {
        hooks_.metrics->on_channel_stall(*this, stall_start_,
                                         scheduler_.now());
      }
    }
    release_upstream();
  }
  try_deliver();
}

void Channel::release_upstream() {
  SPECNOC_ASSERT(send_outstanding_);
  scheduler_.schedule(params_.delay_ack, [this] {
    send_outstanding_ = false;
    up_->on_output_ack(up_port_);
  });
}

}  // namespace specnoc::noc
