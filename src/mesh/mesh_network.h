// MeshNetwork: a cols x rows 2D-mesh NoC with XY routing and
// dimension-ordered tree multicast — the comparison substrate for the
// paper's "alternative topologies (e.g. 2D-mesh)" future work.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh_router.h"
#include "mesh/mesh_topology.h"
#include "noc/message_network.h"
#include "noc/partition.h"

namespace specnoc::mesh {

enum class MulticastMode : std::uint8_t {
  kTree,    ///< one packet, replicated along the XY multicast tree
  kSerial,  ///< one unicast packet per destination (baseline-style)
};

struct MeshConfig {
  std::uint32_t cols = 4;
  std::uint32_t rows = 4;
  std::uint32_t flits_per_packet = 5;
  MulticastMode multicast = MulticastMode::kTree;

  std::uint32_t router_buffer_flits = 2;
  TimePs sticky_timeout = 900;

  /// Bitmask of router ids built as speculative routers (local speculation
  /// carried to the mesh; see SpecMeshRouter). Two speculative routers must
  /// not be adjacent — redundant copies must meet a non-speculative filter
  /// one hop from where they are created — validated at build time.
  std::uint64_t speculative_routers = 0;

  /// Inter-router link: one mesh hop of a die comparable to the MoT's
  /// (1800 um across `cols` columns).
  LengthUm link_length_um = 450.0;
  double wire_delay_ps_per_um = 0.2;
  LengthUm interface_link_um = 100.0;

  TimePs source_issue_delay = 50;
  TimePs sink_consume_delay = 50;
  /// 0 = asynchronous routers; otherwise clocked (see core::NetworkConfig).
  TimePs clock_period = 0;

  /// PDES worker threads (1 = classic single-scheduler network, 0 = auto)
  /// and the row-band lane mapping; see core::NetworkConfig::sim_threads.
  unsigned sim_threads = 1;
  noc::PartitionStrategy partition = noc::PartitionStrategy::kAuto;
};

class MeshNetwork final : public noc::MessageNetwork {
 public:
  explicit MeshNetwork(MeshConfig config);

  noc::Network& net() override { return net_; }
  std::uint32_t endpoints() const override { return topology_.n(); }
  std::uint32_t flits_per_packet() const override {
    return config_.flits_per_packet;
  }
  noc::MessageId send_message(std::uint32_t src, noc::DestSet dests,
                              bool measured) override;

  sim::Scheduler& scheduler() { return net_.scheduler(); }
  const MeshTopology& topology() const { return topology_; }
  const MeshConfig& config() const { return config_; }

  MeshRouter& router(std::uint32_t id) { return *routers_.at(id); }
  bool speculative(std::uint32_t id) const {
    return (config_.speculative_routers >> id) & 1u;
  }

  /// Sum of characterized switch areas.
  AreaUm2 total_node_area() const;

  /// Maximum-density legal speculative placement: routers with even x+y
  /// (a checkerboard), guaranteeing every neighbor is non-speculative.
  static std::uint64_t checkerboard_speculation(const MeshTopology& topology);

 private:
  void build();

  MeshConfig config_;
  MeshTopology topology_;
  noc::Network net_;
  std::vector<MeshRouter*> routers_;
};

}  // namespace specnoc::mesh
