#include "util/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/contract.h"

namespace specnoc::util {

namespace {

void check_numeric_preconditions(const std::string& text,
                                 const std::string& what) {
  if (text.empty()) throw UsageError(what + ": empty value");
  if (text.front() == ' ' || text.back() == ' ') {
    throw UsageError(what + ": '" + text + "' is not a number");
  }
}

}  // namespace

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  check_numeric_preconditions(text, what);
  if (text.front() == '-') {
    throw UsageError(what + ": '" + text + "' must be non-negative");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0) throw UsageError(what + ": '" + text + "' is out of range");
  if (end != text.c_str() + text.size()) {
    throw UsageError(what + ": '" + text + "' is not a number");
  }
  return static_cast<std::uint64_t>(value);
}

std::int64_t parse_i64(const std::string& text, const std::string& what) {
  check_numeric_preconditions(text, what);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0) throw UsageError(what + ": '" + text + "' is out of range");
  if (end != text.c_str() + text.size()) {
    throw UsageError(what + ": '" + text + "' is not a number");
  }
  return static_cast<std::int64_t>(value);
}

double parse_f64(const std::string& text, const std::string& what) {
  check_numeric_preconditions(text, what);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0) throw UsageError(what + ": '" + text + "' is out of range");
  if (end != text.c_str() + text.size()) {
    throw UsageError(what + ": '" + text + "' is not a number");
  }
  return value;
}

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

const CliParser::Flag* CliParser::find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

void CliParser::add(Flag flag) {
  if (find(flag.name) != nullptr) {
    throw ConfigError("cli: flag '" + flag.name +
                      "' registered twice in program '" + program_ +
                      "' — each flag name may be added only once");
  }
  SPECNOC_EXPECTS(flag.name.size() > 2 && flag.name[0] == '-' &&
                  flag.name[1] == '-');
  flags_.push_back(std::move(flag));
}

void CliParser::add_flag(const std::string& name, bool* target,
                         const std::string& help) {
  add({name, "", help, nullptr, [target] { *target = true; }});
}

void CliParser::add_uint64(const std::string& name, std::uint64_t* target,
                           const std::string& help) {
  add({name, "N", help,
       [target, name](const std::string& v) { *target = parse_u64(v, name); },
       nullptr});
}

void CliParser::add_uint32(const std::string& name, std::uint32_t* target,
                           const std::string& help) {
  add({name, "N", help,
       [target, name](const std::string& v) {
         const std::uint64_t value = parse_u64(v, name);
         if (value > std::numeric_limits<std::uint32_t>::max()) {
           throw UsageError(name + ": '" + v + "' is out of range");
         }
         *target = static_cast<std::uint32_t>(value);
       },
       nullptr});
}

void CliParser::add_unsigned(const std::string& name, unsigned* target,
                             const std::string& help) {
  add({name, "N", help,
       [target, name](const std::string& v) {
         const std::uint64_t value = parse_u64(v, name);
         if (value > std::numeric_limits<unsigned>::max()) {
           throw UsageError(name + ": '" + v + "' is out of range");
         }
         *target = static_cast<unsigned>(value);
       },
       nullptr});
}

void CliParser::add_int64(const std::string& name, std::int64_t* target,
                          const std::string& help) {
  add({name, "N", help,
       [target, name](const std::string& v) { *target = parse_i64(v, name); },
       nullptr});
}

void CliParser::add_double(const std::string& name, double* target,
                           const std::string& help) {
  add({name, "X", help,
       [target, name](const std::string& v) { *target = parse_f64(v, name); },
       nullptr});
}

void CliParser::add_string(const std::string& name, std::string* target,
                           const std::string& help) {
  add({name, "VALUE", help,
       [target](const std::string& v) { *target = v; }, nullptr});
}

void CliParser::add_custom(const std::string& name,
                           const std::string& value_name,
                           const std::string& help,
                           std::function<void(const std::string&)> parse) {
  add({name, value_name, help, std::move(parse), nullptr});
}

void CliParser::add_action(const std::string& name, const std::string& help,
                           std::function<void()> action) {
  add({name, "", help, nullptr, std::move(action)});
}

void CliParser::add_positional_uint32(const std::string& name,
                                      std::uint32_t* target,
                                      const std::string& help) {
  positionals_.push_back(
      {name, help, [target, name](const std::string& v) {
         const std::uint64_t value = parse_u64(v, name);
         if (value > std::numeric_limits<std::uint32_t>::max()) {
           throw UsageError(name + ": '" + v + "' is out of range");
         }
         *target = static_cast<std::uint32_t>(value);
       }});
}

void CliParser::add_positional_list(const std::string& name,
                                    std::vector<std::string>* target,
                                    const std::string& help) {
  SPECNOC_EXPECTS(rest_.name.empty());
  rest_ = {name, help,
           [target](const std::string& v) { target->push_back(v); }};
}

bool CliParser::parse(int argc, char** argv) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      const Flag* flag = find(arg);
      if (flag == nullptr) throw UsageError("unknown flag '" + arg + "'");
      if (flag->action) {
        flag->action();
        continue;
      }
      if (i + 1 >= argc) {
        throw UsageError(arg + " requires a value");
      }
      flag->parse(argv[++i]);
      continue;
    }
    if (next_positional < positionals_.size()) {
      positionals_[next_positional++].parse(arg);
      continue;
    }
    if (rest_.name.empty()) {
      throw UsageError("unexpected argument '" + arg + "'");
    }
    rest_.parse(arg);
  }
  return true;
}

void CliParser::parse_or_exit(int argc, char** argv) {
  try {
    if (!parse(argc, argv)) std::exit(0);
  } catch (const ConfigError& error) {
    std::fprintf(stderr, "%s: %s\n", program_.c_str(), error.what());
    std::fputs(usage().c_str(), stderr);
    std::exit(2);
  }
}

std::string CliParser::usage() const {
  std::string out = "usage: " + program_;
  for (const auto& positional : positionals_) {
    out += " [" + positional.name + "]";
  }
  if (!rest_.name.empty()) out += " [" + rest_.name + "...]";
  if (!flags_.empty()) out += " [flags]";
  out += "\n";
  if (!summary_.empty()) out += summary_ + "\n";
  if (!positionals_.empty() || !rest_.name.empty()) {
    out += "arguments:\n";
    for (const auto& positional : positionals_) {
      out += "  " + positional.name;
      out.append(positional.name.size() < 22 ? 22 - positional.name.size() : 1,
                 ' ');
      out += positional.help + "\n";
    }
    if (!rest_.name.empty()) {
      const std::string shown = rest_.name + "...";
      out += "  " + shown;
      out.append(shown.size() < 22 ? 22 - shown.size() : 1, ' ');
      out += rest_.help + "\n";
    }
  }
  out += "flags:\n";
  for (const auto& flag : flags_) {
    std::string lhs = "  " + flag.name;
    if (!flag.value_name.empty()) lhs += " <" + flag.value_name + ">";
    out += lhs;
    out.append(lhs.size() < 24 ? 24 - lhs.size() : 1, ' ');
    out += flag.help + "\n";
  }
  out += "  --help                print this help and exit\n";
  return out;
}

}  // namespace specnoc::util
