// BoundedRing: a fixed-capacity FIFO with inline storage for small bounds.
//
// Channels and fanin input FIFOs are bounded by construction (channel
// capacity, fanin buffer depth — both 2 by default), yet they were held in
// std::deque, whose libstdc++ representation is an 80-byte object plus a
// ~600-byte heap map even when empty. At 1024 endpoints that is ~3M channel
// deques and ~2M fanin FIFOs — gigabytes of heap for queues that never hold
// more than two 24-byte entries. BoundedRing stores up to InlineCap elements
// inside the object and touches the heap only when reserve() asks for more.
//
// The capacity is fixed once by reserve() (callers know their bound at
// construction); push_back beyond it is a contract violation, matching the
// occupancy preconditions the simulator already enforces.
#pragma once

#include <cstdint>
#include <new>
#include <type_traits>

#include "util/contract.h"

namespace specnoc::util {

template <typename T, std::uint32_t InlineCap>
class BoundedRing {
  // Entries are stored in raw byte slots and copied in/out by value, so T
  // must not own resources or need destruction.
  static_assert(std::is_trivially_copyable_v<T>,
                "BoundedRing is for small POD queue entries");
  static_assert(std::is_trivially_destructible_v<T>,
                "BoundedRing never runs element destructors");
  static_assert(InlineCap >= 1);

 public:
  BoundedRing() = default;
  ~BoundedRing() {
    if (capacity_ > InlineCap) ::operator delete(heap_);
  }
  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  /// Fixes the capacity. Call once, before any push (idempotent while
  /// empty). Capacities up to InlineCap stay inline.
  void reserve(std::uint32_t capacity) {
    SPECNOC_EXPECTS(size_ == 0);
    SPECNOC_EXPECTS(capacity >= 1);
    if (capacity <= InlineCap) {
      if (capacity_ > InlineCap) {
        ::operator delete(heap_);
        capacity_ = InlineCap;
      }
      return;
    }
    if (capacity == capacity_) return;
    if (capacity_ > InlineCap) ::operator delete(heap_);
    heap_ = static_cast<unsigned char*>(
        ::operator new(static_cast<std::size_t>(capacity) * sizeof(T)));
    capacity_ = capacity;
  }

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& front() const {
    SPECNOC_EXPECTS(size_ > 0);
    return *std::launder(reinterpret_cast<const T*>(slot(head_)));
  }

  void push_back(const T& value) {
    SPECNOC_EXPECTS(size_ < capacity_);
    // Conditional wrap instead of %: capacity is rarely a power of two and
    // this is on the per-flit path of every channel and fanin FIFO.
    std::uint32_t tail = head_ + size_;
    if (tail >= capacity_) tail -= capacity_;
    ::new (slot(tail)) T(value);
    ++size_;
  }

  void pop_front() {
    SPECNOC_EXPECTS(size_ > 0);
    ++head_;
    if (head_ == capacity_) head_ = 0;
    --size_;
  }

 private:
  unsigned char* slot(std::uint32_t i) {
    return (capacity_ <= InlineCap ? inline_ : heap_) + i * sizeof(T);
  }
  const unsigned char* slot(std::uint32_t i) const {
    return (capacity_ <= InlineCap ? inline_ : heap_) + i * sizeof(T);
  }

  union {
    alignas(T) unsigned char inline_[InlineCap * sizeof(T)];
    unsigned char* heap_;
  };
  std::uint32_t capacity_ = InlineCap;
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;
};

}  // namespace specnoc::util
