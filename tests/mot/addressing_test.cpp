#include "mot/addressing.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace specnoc::mot {
namespace {

std::vector<bool> no_speculation(const MotTopology& t) {
  return std::vector<bool>(t.nodes_per_tree(), false);
}

/// Speculative at the given levels (helper mirroring core::SpeculationMap,
/// which is tested separately; addressing is level-agnostic).
std::vector<bool> spec_levels(const MotTopology& t,
                              std::initializer_list<std::uint32_t> levels) {
  std::vector<bool> flags(t.nodes_per_tree(), false);
  for (const auto level : levels) {
    for (std::uint32_t i = 0; i < t.nodes_at_level(level); ++i) {
      flags[MotTopology::heap_id(level, i)] = true;
    }
  }
  return flags;
}

TEST(AddressingTest, PaperAddressSizes8x8) {
  MotTopology t(8);
  // Section 5.2(d): non-spec 14 bits, hybrid 12 bits, almost-full 8 bits.
  EXPECT_EQ(SourceRouteEncoder(t, no_speculation(t)).address_bits(), 14u);
  EXPECT_EQ(SourceRouteEncoder(t, spec_levels(t, {0})).address_bits(), 12u);
  EXPECT_EQ(SourceRouteEncoder(t, spec_levels(t, {0, 1})).address_bits(), 8u);
  EXPECT_EQ(SourceRouteEncoder::baseline_unicast_bits(t), 3u);
}

TEST(AddressingTest, PaperAddressSizes16x16) {
  MotTopology t(16);
  // Section 5.2(d): 30 bits non-spec, 20 hybrid, 16 almost-full; baseline 4.
  EXPECT_EQ(SourceRouteEncoder(t, no_speculation(t)).address_bits(), 30u);
  EXPECT_EQ(SourceRouteEncoder(t, spec_levels(t, {0, 2})).address_bits(),
            20u);
  EXPECT_EQ(
      SourceRouteEncoder(t, spec_levels(t, {0, 1, 2})).address_bits(), 16u);
  EXPECT_EQ(SourceRouteEncoder::baseline_unicast_bits(t), 4u);
}

TEST(AddressingTest, RejectsWrongFlagVectorSize) {
  MotTopology t(8);
  EXPECT_THROW(SourceRouteEncoder(t, std::vector<bool>(3, false)),
               ConfigError);
}

TEST(AddressingTest, SymbolForUnicastPath) {
  MotTopology t(8);
  SourceRouteEncoder enc(t, no_speculation(t));
  // Destination 5 = 0b101: bottom at root, top at (1,1), bottom at (2,2).
  const noc::DestSet d5 = noc::DestSet::single(5);
  EXPECT_EQ(enc.symbol_for(0, 0, d5), RouteSymbol::kBottom);
  EXPECT_EQ(enc.symbol_for(1, 1, d5), RouteSymbol::kTop);
  EXPECT_EQ(enc.symbol_for(2, 2, d5), RouteSymbol::kBottom);
  // Off-path nodes read throttle.
  EXPECT_EQ(enc.symbol_for(1, 0, d5), RouteSymbol::kThrottle);
  EXPECT_EQ(enc.symbol_for(2, 0, d5), RouteSymbol::kThrottle);
  EXPECT_EQ(enc.symbol_for(2, 3, d5), RouteSymbol::kThrottle);
}

TEST(AddressingTest, SymbolForBroadcastIsBothEverywhere) {
  MotTopology t(8);
  SourceRouteEncoder enc(t, no_speculation(t));
  const noc::DestSet all = noc::DestSet::first_n(8);
  for (std::uint32_t level = 0; level < 3; ++level) {
    for (std::uint32_t i = 0; i < t.nodes_at_level(level); ++i) {
      EXPECT_EQ(enc.symbol_for(level, i, all), RouteSymbol::kBoth);
    }
  }
}

TEST(AddressingTest, EncodeSkipsSpeculativeNodes) {
  MotTopology t(8);
  SourceRouteEncoder enc(t, spec_levels(t, {0}));
  const auto fields = enc.encode(noc::DestSet::single(0));
  EXPECT_EQ(fields.size(), 6u);  // 7 nodes - 1 speculative root
  EXPECT_EQ(enc.field_slot(0, 0), -1);
  EXPECT_EQ(enc.field_slot(1, 0), 0);
  EXPECT_EQ(enc.field_slot(1, 1), 1);
  EXPECT_EQ(enc.field_slot(2, 3), 5);
}

TEST(AddressingTest, DecodeMatchesSymbolFor) {
  MotTopology t(16);
  Rng rng(99);
  SourceRouteEncoder enc(t, spec_levels(t, {0, 2}));
  for (int trial = 0; trial < 200; ++trial) {
    noc::DestSet dests = noc::DestSet::from_word(rng() & 0xFFFF);
    if (dests.none()) dests = noc::DestSet::single(0);
    const auto fields = enc.encode(dests);
    for (std::uint32_t level = 0; level < t.levels(); ++level) {
      for (std::uint32_t i = 0; i < t.nodes_at_level(level); ++i) {
        const auto slot = enc.field_slot(level, i);
        if (slot < 0) continue;
        EXPECT_EQ(SourceRouteEncoder::decode(
                      fields, static_cast<std::uint32_t>(slot)),
                  enc.symbol_for(level, i, dests));
      }
    }
  }
}

TEST(AddressingTest, SymbolDirsMapping) {
  EXPECT_EQ(symbol_dirs(RouteSymbol::kThrottle), 0b00);
  EXPECT_EQ(symbol_dirs(RouteSymbol::kTop), 0b01);
  EXPECT_EQ(symbol_dirs(RouteSymbol::kBottom), 0b10);
  EXPECT_EQ(symbol_dirs(RouteSymbol::kBoth), 0b11);
}

TEST(AddressingTest, RouteSymbolNames) {
  EXPECT_STREQ(to_string(RouteSymbol::kThrottle), "throttle");
  EXPECT_STREQ(to_string(RouteSymbol::kBoth), "both");
}

/// Property: on a unicast packet, exactly the L on-path nodes have non-kill
/// symbols, and they spell the destination's route bits.
TEST(AddressingTest, UnicastPropertyAllSizes) {
  for (std::uint32_t n : {4u, 8u, 16u, 32u}) {
    MotTopology t(n);
    SourceRouteEncoder enc(t, no_speculation(t));
    for (std::uint32_t d = 0; d < n; ++d) {
      std::uint32_t non_kill = 0;
      for (std::uint32_t level = 0; level < t.levels(); ++level) {
        for (std::uint32_t i = 0; i < t.nodes_at_level(level); ++i) {
          const auto sym = enc.symbol_for(level, i, noc::DestSet::single(d));
          if (sym == RouteSymbol::kThrottle) continue;
          ++non_kill;
          EXPECT_EQ(i, t.path_index(d, level));
          EXPECT_EQ(sym, t.route_bit(d, level) == 0 ? RouteSymbol::kTop
                                                    : RouteSymbol::kBottom);
        }
      }
      EXPECT_EQ(non_kill, t.levels());
    }
  }
}

}  // namespace
}  // namespace specnoc::mot
