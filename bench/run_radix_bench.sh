#!/usr/bin/env sh
# Runs the E10 radix-scaling grid and refreshes BENCH_radix.json at the
# repo root. The JSON is committed alongside addressing changes so scaling
# regressions show up in review; absolute rates are machine-dependent —
# compare shapes, not numbers, across hosts.
set -e
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo_root/build}"
out="${2:-$repo_root/BENCH_radix.json}"
"$build/bench/bench_radix" --max-radix 1024 --json-out "$out"
echo "wrote $out"
