// Extension — MoT vs 2D-mesh comparison (paper future work; also echoes
// ref [18]'s MoT-vs-mesh results).
//
// Both substrates are built with the same endpoint count (16), the same
// packet size, NI delays, and wire-delay constants, and driven by the same
// benchmarks and measurement protocols. Reported: zero-ish-load latency,
// saturation throughput, switch area, and the serial-vs-tree multicast gap
// on each topology.
#include <memory>

#include "bench_common.h"
#include "core/mot_network.h"
#include "mesh/mesh_network.h"
#include "stats/recorder.h"
#include "traffic/benchmark.h"
#include "traffic/driver.h"

using namespace specnoc;
using specnoc::bench::HarnessOptions;
using namespace specnoc::literals;

namespace {

struct Measured {
  double saturation = 0.0;
  double latency_ns = 0.0;
};

Measured measure(noc::MessageNetwork& saturation_net,
                 noc::MessageNetwork& latency_net,
                 traffic::BenchmarkId bench, std::uint64_t seed) {
  Measured out;
  // Saturation: backlogged.
  {
    stats::TrafficRecorder rec(saturation_net.net().packets());
    saturation_net.net().hooks().traffic = &rec;
    auto pattern = traffic::make_benchmark(bench, saturation_net.endpoints());
    traffic::DriverConfig cfg;
    cfg.mode = traffic::InjectionMode::kBacklogged;
    cfg.seed = seed;
    traffic::TrafficDriver driver(saturation_net, *pattern, cfg);
    driver.start();
    auto& sched = saturation_net.net().scheduler();
    sched.run_until(1000_ns);
    rec.open_window(sched.now());
    sched.run_until(5000_ns);
    rec.close_window(sched.now());
    out.saturation = rec.delivered_flits_per_ns(saturation_net.endpoints());
  }
  // Latency at a fixed light load (0.2 flits/ns/source) for a like-for-like
  // zero-ish-load comparison across topologies.
  {
    stats::TrafficRecorder rec(latency_net.net().packets());
    latency_net.net().hooks().traffic = &rec;
    auto pattern = traffic::make_benchmark(bench, latency_net.endpoints());
    traffic::DriverConfig cfg;
    cfg.mode = traffic::InjectionMode::kOpenLoop;
    cfg.flits_per_ns_per_source = 0.2;
    cfg.seed = seed;
    traffic::TrafficDriver driver(latency_net, *pattern, cfg);
    driver.start();
    auto& sched = latency_net.net().scheduler();
    sched.run_until(300_ns);
    driver.set_measured(true);
    sched.run_until(2300_ns);
    driver.set_measured(false);
    while (rec.pending_measured() > 0 && sched.now() < 40000_ns) {
      if (!sched.step()) break;
    }
    out.latency_ns = rec.mean_latency_ps() / 1e3;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions opts = specnoc::bench::parse_args(
      argc, argv, "bench_mesh_comparison",
      "MoT vs mesh: saturation, latency, and cost comparison.");

  core::NetworkConfig mot_cfg;
  mot_cfg.n = 16;
  mesh::MeshConfig mesh_cfg;  // 4x4 = 16 endpoints
  mesh::MeshConfig mesh_serial_cfg;
  mesh_serial_cfg.multicast = mesh::MulticastMode::kSerial;

  struct RowSpec {
    const char* name;
    std::function<std::unique_ptr<noc::MessageNetwork>()> make;
  };
  const RowSpec rows[] = {
      {"MoT-16 OptHybridSpeculative",
       [&] {
         return std::make_unique<core::MotNetwork>(
             core::Architecture::kOptHybridSpeculative, mot_cfg);
       }},
      {"MoT-16 Baseline (serial mcast)",
       [&] {
         return std::make_unique<core::MotNetwork>(
             core::Architecture::kBaseline, mot_cfg);
       }},
      {"Mesh-4x4 tree mcast",
       [&] { return std::make_unique<mesh::MeshNetwork>(mesh_cfg); }},
      {"Mesh-4x4 serial mcast",
       [&] { return std::make_unique<mesh::MeshNetwork>(mesh_serial_cfg); }},
  };

  const traffic::BenchmarkId benches[] = {
      traffic::BenchmarkId::kUniformRandom,
      traffic::BenchmarkId::kMulticast10,
      traffic::BenchmarkId::kMulticastStatic,
  };

  // The 12 (network, benchmark) cells are independent simulations; run them
  // on the work-stealing pool and collect results keyed by cell index.
  constexpr std::size_t kNumRows = std::size(rows);
  constexpr std::size_t kNumBenches = std::size(benches);
  Measured grid[kNumRows][kNumBenches] = {};
  const sim::ParallelRunner pool({.jobs = opts.jobs});
  const auto runs =
      pool.run(kNumRows * kNumBenches, [&](std::size_t index) {
        const auto& row = rows[index / kNumBenches];
        const auto bench = benches[index % kNumBenches];
        auto sat_net = row.make();
        auto lat_net = row.make();
        grid[index / kNumBenches][index % kNumBenches] =
            measure(*sat_net, *lat_net, bench, opts.seed);
        return sat_net->net().scheduler().executed() +
               lat_net->net().scheduler().executed();
      });
  specnoc::bench::TelemetryTable telemetry;
  for (std::size_t index = 0; index < runs.size(); ++index) {
    telemetry.add(std::string(rows[index / kNumBenches].name) + "/" +
                      traffic::to_string(benches[index % kNumBenches]),
                  runs[index]);
  }

  Table sat({"Network", "Uniform sat", "Mcast10 sat", "Mcast_static sat"});
  Table lat({"Network", "Uniform lat (ns)", "Mcast10 lat (ns)",
             "Mcast_static lat (ns)"});
  for (std::size_t r = 0; r < kNumRows; ++r) {
    std::vector<std::string> sat_row{rows[r].name};
    std::vector<std::string> lat_row{rows[r].name};
    for (std::size_t b = 0; b < kNumBenches; ++b) {
      const bool ok = runs[r * kNumBenches + b].ok;
      sat_row.push_back(ok ? cell(grid[r][b].saturation, 2) : "FAIL");
      lat_row.push_back(ok ? cell(grid[r][b].latency_ns, 2) : "FAIL");
    }
    sat.add_row(std::move(sat_row));
    lat.add_row(std::move(lat_row));
  }
  specnoc::bench::emit(sat,
                       "MoT vs mesh, saturation (delivered flits/ns/source, "
                       "16 endpoints)",
                       opts);
  specnoc::bench::emit(lat, "MoT vs mesh, latency at 0.2 flits/ns/source",
                       opts);

  Table area({"Network", "Switch area (um^2)", "Hops (min..max)"});
  area.add_row({"MoT-16 OptHybridSpeculative",
                cell(core::MotNetwork(core::Architecture::kOptHybridSpeculative,
                                      mot_cfg)
                         .total_node_area(),
                     0),
                "8..8"});
  area.add_row({"Mesh-4x4",
                cell(mesh::MeshNetwork(mesh_cfg).total_node_area(), 0),
                "1..7"});
  specnoc::bench::emit(area, "Cost comparison", opts);
  specnoc::bench::note(
      "The MoT's constant log-depth paths give it flat latency and high "
      "multicast saturation; the mesh wins on switch area at this size but "
      "pays distance-dependent latency and serializes at hot rows/columns.");
  telemetry.emit("MoT vs mesh grid", opts);
  return telemetry.failures() == 0 ? 0 : 1;
}
