// NetworkArena behavior and the determinism contract it must uphold.
//
// The arena replaced per-object heap allocation for every node and channel;
// the refactor is only sound if it is invisible to the simulation. Two
// constructions of the same network spec must produce the same node
// iteration order (builders and tests pin behavior to it) and, when driven
// by identical traffic, byte-identical measurement output. The unit layer
// checks the slab mechanics directly: stable addresses, per-type pools,
// label and usage accounting.
#include "noc/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/mot_network.h"
#include "stats/metrics.h"
#include "stats/serialization.h"
#include "traffic/driver.h"
#include "util/json.h"
#include "util/units.h"

namespace specnoc::noc {
namespace {

using namespace specnoc::literals;

struct Tracked {
  explicit Tracked(int v, int* counter) : value(v), destroyed(counter) {}
  ~Tracked() { ++*destroyed; }
  int value;
  int* destroyed;
};

struct Wide {
  explicit Wide(double v) : value(v) {}
  alignas(64) double value;
};

TEST(NetworkArenaTest, AddressesAreStableAcrossChunkGrowth) {
  NetworkArena arena;
  int destroyed = 0;
  std::vector<Tracked*> objects;
  // Far past several chunk doublings.
  for (int i = 0; i < 5000; ++i) {
    objects.push_back(arena.create<Tracked>(i, &destroyed));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(objects[static_cast<std::size_t>(i)]->value, i);
  }
  EXPECT_EQ(arena.total_objects(), 5000u);
  EXPECT_GE(arena.total_bytes(), 5000 * sizeof(Tracked));
  arena.clear();
  EXPECT_EQ(destroyed, 5000);
  EXPECT_EQ(arena.total_objects(), 0u);
}

TEST(NetworkArenaTest, PoolsAreLabeledAndAccounted) {
  NetworkArena arena;
  int destroyed = 0;
  arena.create<Tracked>(1, &destroyed);
  arena.create<Tracked>(2, &destroyed);
  arena.create<Wide>(3.0);
  arena.label_pool<Tracked>("tracked");
  arena.label_pool<Tracked>("ignored-second-label");
  arena.label_pool<Wide>("wide");
  const auto usage = arena.usage();
  ASSERT_EQ(usage.size(), 2u);
  // usage() sorts by label.
  EXPECT_EQ(usage[0].label, "tracked");
  EXPECT_EQ(usage[0].objects, 2u);
  EXPECT_EQ(usage[0].bytes, 2 * sizeof(Tracked));
  EXPECT_GE(usage[0].reserved_bytes, usage[0].bytes);
  EXPECT_EQ(usage[1].label, "wide");
  EXPECT_EQ(usage[1].objects, 1u);
}

TEST(NetworkArenaTest, RespectsOverAlignedTypes) {
  NetworkArena arena;
  for (int i = 0; i < 100; ++i) {
    Wide* w = arena.create<Wide>(static_cast<double>(i));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(Wide), 0u);
  }
}

// ---------------------------------------------------------------------------
// Determinism contract.

std::vector<std::string> node_order(core::MotNetwork& network) {
  std::vector<std::string> order;
  for (const Node* node : network.net().nodes()) {
    order.push_back(std::string(to_string(node->kind())) + ":" +
                    node->name());
  }
  return order;
}

TEST(ArenaDeterminismTest, SameSpecBuildsIdenticalNodeOrder) {
  core::NetworkConfig cfg;
  cfg.n = 64;
  const core::Architecture arch = core::Architecture::kOptHybridSpeculative;
  core::MotNetwork first(arch, cfg);
  core::MotNetwork second(arch, cfg);
  EXPECT_EQ(node_order(first), node_order(second));
  EXPECT_EQ(first.net().channels().size(), second.net().channels().size());
  // The arena shape is part of the deterministic build: same pools, same
  // object counts, same bytes.
  const auto a = first.net().arena().usage();
  const auto b = second.net().arena().usage();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].objects, b[i].objects);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
}

/// Builds, saturates, and serializes one network; the returned string
/// captures every measured byte (metrics snapshot JSON + event count).
std::string saturation_fingerprint() {
  core::NetworkConfig cfg;
  cfg.n = 64;
  core::MotNetwork network(core::Architecture::kOptHybridSpeculative, cfg);
  stats::MetricsRegistry registry;
  network.net().hooks().metrics = &registry;
  auto pattern =
      traffic::make_benchmark(traffic::BenchmarkId::kMulticast10, 64);
  traffic::DriverConfig driver_cfg;
  driver_cfg.mode = traffic::InjectionMode::kBacklogged;
  driver_cfg.seed = 17;
  traffic::TrafficDriver driver(network, *pattern, driver_cfg);
  driver.start();
  network.net().run_until(200_ns);
  return util::json_write(stats::to_json(registry.snapshot())) + "#" +
         std::to_string(network.net().executed());
}

TEST(ArenaDeterminismTest, SaturationOutputIsByteIdenticalAcrossBuilds) {
  EXPECT_EQ(saturation_fingerprint(), saturation_fingerprint());
}

}  // namespace
}  // namespace specnoc::noc
